// Command oo7gen generates the OO7 benchmark database [CDN93] in a
// simulated object store and prints the registration-time statistics a
// wrapper would export for it — the triplets of paper §3.2.
//
// Usage:
//
//	oo7gen [-parts N] [-seed S] [-clustered]
package main

import (
	"flag"
	"fmt"
	"os"

	"disco/internal/objstore"
	"disco/internal/oo7"
)

func main() {
	parts := flag.Int("parts", 70000, "AtomicParts cardinality")
	seed := flag.Int64("seed", 1, "generator seed")
	clustered := flag.Bool("clustered", false, "store AtomicParts in id order (clustered placement)")
	flag.Parse()

	scale := oo7.PaperScale()
	scale.AtomicParts = *parts
	scale.ShuffledPlacement = !*clustered

	store := objstore.Open(objstore.DefaultConfig(), nil)
	if err := oo7.Generate(store, scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "oo7gen:", err)
		os.Exit(1)
	}

	fmt.Printf("OO7 database (seed %d, %s placement):\n\n", *seed,
		map[bool]string{true: "clustered", false: "shuffled"}[*clustered])
	for _, name := range store.Collections() {
		c, _ := store.Collection(name)
		ext := c.ExtentStats()
		fmt.Printf("%s:\n", name)
		fmt.Printf("  extent: CountObject=%d TotalSize=%d ObjectSize=%d (%d pages)\n",
			ext.CountObject, ext.TotalSize, ext.ObjectSize, c.PageCount())
		schema := c.Schema()
		for i := 0; i < schema.Len(); i++ {
			attr := schema.Field(i).Name
			st, err := c.AttributeStats(attr, 0)
			if err != nil {
				continue
			}
			idx := " "
			if st.Indexed {
				idx = "indexed"
				if st.Clustered {
					idx = "clustered index"
				}
			}
			fmt.Printf("  attribute %-10s CountDistinct=%-8d Min=%-12s Max=%-12s %s\n",
				attr, st.CountDistinct, st.Min, st.Max, idx)
		}
		fmt.Println()
	}
}
