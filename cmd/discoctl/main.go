// Command discoctl is the interactive client for a discod mediator
// server: a small SQL shell over the JSON line protocol.
//
// Usage:
//
//	discoctl [-connect localhost:4077] [query]
//
// With a query argument it runs once and exits; otherwise it reads
// queries from standard input. Shell commands:
//
//	\explain <sql>   show the chosen plan with cost annotations
//	\analyze <sql>   execute and show the plan with estimated vs actual
//	\catalog         dump the mediator catalog
//	\history         dump the recorded cost-vector database
//	\feedback        dump the execution-feedback q-error table
//	\stats           dump the serving counters (JSON), including the
//	                 plan-cache and result-cache hit/miss/eviction view
//	\reregister <w>  re-run the registration phase for wrapper <w>
//	\setlink <w> <latencyMS> <perByteMS>  perturb a wrapper's link
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"disco/internal/proto"
)

func main() {
	addr := flag.String("connect", "localhost:4077", "mediator address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		os.Exit(1)
	}
	defer conn.Close()
	r := proto.NewReader(conn)

	if q := strings.Join(flag.Args(), " "); strings.TrimSpace(q) != "" {
		if !roundtrip(conn, r, parseLine(q)) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("connected to", *addr, "— \\quit to exit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("disco> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Print("disco> ")
			continue
		}
		if line == `\quit` || line == `\q` {
			return
		}
		roundtrip(conn, r, parseLine(line))
		fmt.Print("disco> ")
	}
}

func parseLine(line string) *proto.Request {
	switch {
	case strings.HasPrefix(line, `\explain `):
		return &proto.Request{Op: "explain", SQL: strings.TrimPrefix(line, `\explain `)}
	case strings.HasPrefix(line, `\analyze `):
		return &proto.Request{Op: "explain-analyze", SQL: strings.TrimPrefix(line, `\analyze `)}
	case strings.HasPrefix(line, "explain-analyze "):
		return &proto.Request{Op: "explain-analyze", SQL: strings.TrimPrefix(line, "explain-analyze ")}
	case line == `\catalog`:
		return &proto.Request{Op: "catalog"}
	case line == `\history`:
		return &proto.Request{Op: "history"}
	case line == `\feedback`:
		return &proto.Request{Op: "feedback"}
	case line == `\stats`:
		return &proto.Request{Op: "stats"}
	case strings.HasPrefix(line, `\reregister `):
		return &proto.Request{Op: "reregister", Arg: strings.TrimSpace(strings.TrimPrefix(line, `\reregister `))}
	case strings.HasPrefix(line, `\setlink `):
		return &proto.Request{Op: "setlink", Arg: strings.TrimSpace(strings.TrimPrefix(line, `\setlink `))}
	default:
		return &proto.Request{Op: "query", SQL: line}
	}
}

func roundtrip(conn net.Conn, r *proto.Reader, req *proto.Request) bool {
	if err := proto.Write(conn, req); err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		return false
	}
	resp, err := r.ReadResponse()
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		return false
	}
	if !resp.OK {
		if resp.Overloaded {
			fmt.Println("overloaded:", resp.Error, "(retry after backoff)")
		} else {
			fmt.Println("error:", resp.Error)
		}
		return false
	}
	if resp.Text != "" {
		fmt.Println(resp.Text)
	}
	if len(resp.Columns) > 0 {
		printTable(resp)
	}
	return true
}

func printTable(resp *proto.Response) {
	widths := make([]int, len(resp.Columns))
	for i, c := range resp.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(resp.Rows))
	for ri, row := range resp.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprint(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range resp.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range resp.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	const maxRows = 40
	for ri, row := range cells {
		if ri == maxRows {
			fmt.Printf("... (%d more rows)\n", len(cells)-maxRows)
			break
		}
		for ci, s := range row {
			fmt.Printf("%-*s  ", widths[ci], s)
		}
		fmt.Println()
	}
	if resp.Partial {
		fmt.Printf("(%d rows, %.1f virtual ms; PARTIAL — unavailable: %s)\n",
			len(resp.Rows), resp.ElapsedMS, strings.Join(resp.Excluded, ", "))
		return
	}
	fmt.Printf("(%d rows, %.1f virtual ms)\n", len(resp.Rows), resp.ElapsedMS)
}
