// Command discoctl is the interactive client for a discod mediator
// server: a small SQL shell over the JSON line protocol.
//
// Usage:
//
//	discoctl [-connect localhost:4077[,host2:4177...]] [query]
//
// With a query argument it runs once and exits; otherwise it reads
// queries from standard input. -connect accepts a comma-separated list
// of addresses — a replica set, typically the replicas behind a
// discorouter: queries and admin ops go to the first address, while
// \stats scrapes every address and renders one aggregated table (one
// row per replica plus a TOTAL row) instead of per-server JSON.
// Shell commands:
//
//	\explain <sql>   show the chosen plan with cost annotations
//	\analyze <sql>   execute and show the plan with estimated vs actual
//	\catalog         dump the mediator catalog
//	\history         dump the recorded cost-vector database
//	\feedback        dump the execution-feedback q-error table
//	\stats           dump the serving counters (JSON), including the
//	                 plan-cache and result-cache hit/miss/eviction view
//	\reregister <w>  re-run the registration phase for wrapper <w>
//	\setlink <w> <latencyMS> <perByteMS>  perturb a wrapper's link
//	\quit            exit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"disco/internal/proto"
)

func main() {
	addr := flag.String("connect", "localhost:4077", "mediator address, or a comma-separated replica list")
	flag.Parse()

	addrs := splitAddrs(*addr)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "discoctl: no addresses in -connect")
		os.Exit(1)
	}
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		os.Exit(1)
	}
	defer conn.Close()
	r := proto.NewReader(conn)

	dispatch := func(line string) bool {
		req := parseLine(line)
		if req.Op == "stats" && len(addrs) > 1 {
			return aggregateStats(addrs)
		}
		return roundtrip(conn, r, req)
	}

	if q := strings.Join(flag.Args(), " "); strings.TrimSpace(q) != "" {
		if !dispatch(q) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("connected to", strings.Join(addrs, ", "), "— \\quit to exit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("disco> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Print("disco> ")
			continue
		}
		if line == `\quit` || line == `\q` {
			return
		}
		dispatch(line)
		fmt.Print("disco> ")
	}
}

func splitAddrs(spec string) []string {
	var out []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// statsView is the slice of a discod stats payload the aggregated table
// renders. Mediator counters are serialized under their Go field names
// (mediator.Stats carries no JSON tags).
type statsView struct {
	Mediator struct {
		QueriesServed    int64
		QueryErrors      int64
		Shed             int64
		InFlight         int
		PartialAnswers   int64
		PlanCacheHits    int64
		PlanCacheMisses  int64
		ResultCacheHits  int64
		AdaptiveSwitches int64
	} `json:"mediator"`
	Accepted    int64  `json:"accepted"`
	ActiveConns int    `json:"active_conns"`
	Epoch       uint64 `json:"epoch"`
}

// aggregateStats scrapes every replica's stats op and renders one table:
// a row per replica and a TOTAL row, the fleet view a federation
// operator reads instead of n JSON dumps.
func aggregateStats(addrs []string) bool {
	header := []string{"replica", "served", "errors", "shed", "inflight", "partials",
		"plan-hits", "rc-hits", "adapt-sw", "conns", "epoch"}
	rows := [][]string{header}
	var total statsView
	ok := true
	for _, a := range addrs {
		var v statsView
		if err := scrapeInto(a, &v); err != nil {
			fmt.Fprintf(os.Stderr, "discoctl: %s: %v\n", a, err)
			rows = append(rows, []string{a, "-", "-", "-", "-", "-", "-", "-", "-", "-", "-"})
			ok = false
			continue
		}
		m := &v.Mediator
		rows = append(rows, []string{a,
			fmt.Sprint(m.QueriesServed), fmt.Sprint(m.QueryErrors), fmt.Sprint(m.Shed),
			fmt.Sprint(m.InFlight), fmt.Sprint(m.PartialAnswers),
			fmt.Sprint(m.PlanCacheHits), fmt.Sprint(m.ResultCacheHits),
			fmt.Sprint(m.AdaptiveSwitches),
			fmt.Sprint(v.ActiveConns), fmt.Sprint(v.Epoch)})
		total.Mediator.QueriesServed += m.QueriesServed
		total.Mediator.QueryErrors += m.QueryErrors
		total.Mediator.Shed += m.Shed
		total.Mediator.InFlight += m.InFlight
		total.Mediator.PartialAnswers += m.PartialAnswers
		total.Mediator.PlanCacheHits += m.PlanCacheHits
		total.Mediator.ResultCacheHits += m.ResultCacheHits
		total.Mediator.AdaptiveSwitches += m.AdaptiveSwitches
		total.ActiveConns += v.ActiveConns
	}
	tm := &total.Mediator
	rows = append(rows, []string{"TOTAL",
		fmt.Sprint(tm.QueriesServed), fmt.Sprint(tm.QueryErrors), fmt.Sprint(tm.Shed),
		fmt.Sprint(tm.InFlight), fmt.Sprint(tm.PartialAnswers),
		fmt.Sprint(tm.PlanCacheHits), fmt.Sprint(tm.ResultCacheHits),
		fmt.Sprint(tm.AdaptiveSwitches),
		fmt.Sprint(total.ActiveConns), "-"})

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for ci, cell := range row {
			fmt.Printf("%-*s  ", widths[ci], cell)
		}
		fmt.Println()
		if ri == 0 {
			for _, w := range widths {
				fmt.Print(strings.Repeat("-", w), "  ")
			}
			fmt.Println()
		}
	}
	return ok
}

// scrapeInto runs one stats op against addr on a fresh connection.
func scrapeInto(addr string, v *statsView) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := proto.Write(conn, &proto.Request{Op: "stats"}); err != nil {
		return err
	}
	resp, err := proto.NewReader(conn).ReadResponse()
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("stats op: %s", resp.Error)
	}
	return json.Unmarshal([]byte(resp.Text), v)
}

func parseLine(line string) *proto.Request {
	switch {
	case strings.HasPrefix(line, `\explain `):
		return &proto.Request{Op: "explain", SQL: strings.TrimPrefix(line, `\explain `)}
	case strings.HasPrefix(line, `\analyze `):
		return &proto.Request{Op: "explain-analyze", SQL: strings.TrimPrefix(line, `\analyze `)}
	case strings.HasPrefix(line, "explain-analyze "):
		return &proto.Request{Op: "explain-analyze", SQL: strings.TrimPrefix(line, "explain-analyze ")}
	case line == `\catalog`:
		return &proto.Request{Op: "catalog"}
	case line == `\history`:
		return &proto.Request{Op: "history"}
	case line == `\feedback`:
		return &proto.Request{Op: "feedback"}
	case line == `\stats`:
		return &proto.Request{Op: "stats"}
	case strings.HasPrefix(line, `\reregister `):
		return &proto.Request{Op: "reregister", Arg: strings.TrimSpace(strings.TrimPrefix(line, `\reregister `))}
	case strings.HasPrefix(line, `\setlink `):
		return &proto.Request{Op: "setlink", Arg: strings.TrimSpace(strings.TrimPrefix(line, `\setlink `))}
	default:
		return &proto.Request{Op: "query", SQL: line}
	}
}

func roundtrip(conn net.Conn, r *proto.Reader, req *proto.Request) bool {
	if err := proto.Write(conn, req); err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		return false
	}
	resp, err := r.ReadResponse()
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoctl:", err)
		return false
	}
	if !resp.OK {
		if resp.Overloaded {
			fmt.Println("overloaded:", resp.Error, "(retry after backoff)")
		} else {
			fmt.Println("error:", resp.Error)
		}
		return false
	}
	if resp.Text != "" {
		fmt.Println(resp.Text)
	}
	if len(resp.Columns) > 0 {
		printTable(resp)
	}
	return true
}

func printTable(resp *proto.Response) {
	widths := make([]int, len(resp.Columns))
	for i, c := range resp.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(resp.Rows))
	for ri, row := range resp.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprint(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range resp.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
	}
	fmt.Println()
	for i := range resp.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	const maxRows = 40
	for ri, row := range cells {
		if ri == maxRows {
			fmt.Printf("... (%d more rows)\n", len(cells)-maxRows)
			break
		}
		for ci, s := range row {
			fmt.Printf("%-*s  ", widths[ci], s)
		}
		fmt.Println()
	}
	if resp.Partial {
		fmt.Printf("(%d rows, %.1f virtual ms; PARTIAL — unavailable: %s)\n",
			len(resp.Rows), resp.ElapsedMS, strings.Join(resp.Excluded, ", "))
		return
	}
	fmt.Printf("(%d rows, %.1f virtual ms)\n", len(resp.Rows), resp.ElapsedMS)
}
