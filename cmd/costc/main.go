// Command costc is the cost-communication-language compiler: it checks a
// rule file (the language of paper §3, Figure 9), reports what each rule
// provides, and optionally disassembles the compiled bytecode that would
// be shipped to the mediator at registration time.
//
// Usage:
//
//	costc [-S] [file.cdl ...]
//
// With no files, costc reads standard input. -S prints the bytecode of
// every formula.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"disco/internal/costlang"
	"disco/internal/costvm"
)

func main() {
	disasm := flag.Bool("S", false, "disassemble compiled formulas")
	flag.Parse()

	exit := 0
	args := flag.Args()
	if len(args) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costc:", err)
			os.Exit(1)
		}
		if !check("<stdin>", string(src), *disasm) {
			exit = 1
		}
	}
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costc:", err)
			exit = 1
			continue
		}
		if !check(path, string(src), *disasm) {
			exit = 1
		}
	}
	os.Exit(exit)
}

func check(name, src string, disasm bool) bool {
	file, err := costlang.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return false
	}
	fmt.Printf("%s: %d global lets, %d functions, %d rules\n",
		name, len(file.Lets), len(file.Funcs), len(file.Rules))

	ok := true
	compile := func(what string, e costlang.Expr) *costvm.Program {
		prog, err := costvm.Compile(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", name, what, err)
			ok = false
			return nil
		}
		return prog
	}
	for _, let := range file.Lets {
		if p := compile("let "+let.Name, let.Expr); p != nil && disasm {
			fmt.Printf("let %s:\n%s", let.Name, indent(p.Disassemble()))
		}
	}
	for _, def := range file.Funcs {
		if p := compile("def "+def.Name, def.Body); p != nil && disasm {
			fmt.Printf("def %s/%d:\n%s", def.Name, len(def.Params), indent(p.Disassemble()))
		}
	}
	for i, rule := range file.Rules {
		vars := make([]string, 0, len(rule.Assigns))
		for _, a := range rule.Assigns {
			vars = append(vars, a.Name)
		}
		head := rule.Op + "("
		for j, t := range rule.Args {
			if j > 0 {
				head += ", "
			}
			head += t.String()
		}
		head += ")"
		fmt.Printf("rule %d (line %d): %s -> {%s}\n", i+1, rule.Line, head, strings.Join(vars, ", "))
		for _, a := range append(append([]costlang.Assign(nil), rule.Lets...), rule.Assigns...) {
			if p := compile(a.Name, a.Expr); p != nil && disasm {
				fmt.Printf("  %s:\n%s", a.Name, indent(p.Disassemble()))
			}
		}
	}
	return ok
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
