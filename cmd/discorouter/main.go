// Command discorouter fronts a set of discod replicas with the
// federation router: cost-based plan-affine routing, catalog gossip for
// epoch-bumping admin ops, and scatter-gather execution of partitioned
// scans. It speaks the same JSON line protocol as discod, so discoctl
// and discoload connect to it unchanged.
//
// Usage:
//
//	discorouter [-listen :4078] -replicas host:4077,host:4177@2,host:4277
//	            [-demo-partitions 14000] [-partition Coll:col:lo:hi,...]
//	            [-poll-interval 2s] [-warm-limit 32] [-vnodes 64]
//	            [-dial-timeout 2s] [-request-timeout 30s]
//	            [-idle-timeout 5m] [-drain-timeout 5s]
//
// -replicas lists the replica addresses; an optional @N suffix declares
// static relative capacity (default 1). -demo-partitions declares the
// demo federation's partitionable collections at the given AtomicParts
// cardinality, enabling scatter-gather; -partition declares explicit
// Collection:column:lo:hi ranges instead. The router polls every
// replica's stats endpoint on -poll-interval to feed the cost model
// (measured latency, replica-reported load and sheds, catalog epoch)
// and re-warms hot statements into replicas that restarted or missed a
// gossip.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"disco/internal/router"
	"disco/internal/serving"
)

// parseReplicas splits "addr[@capacity],..." into replica configs.
func parseReplicas(spec string) ([]router.ReplicaConfig, error) {
	var out []router.ReplicaConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rc := router.ReplicaConfig{Addr: part, Capacity: 1}
		if at := strings.LastIndex(part, "@"); at >= 0 {
			cap, err := strconv.ParseFloat(part[at+1:], 64)
			if err != nil || cap <= 0 {
				return nil, fmt.Errorf("replica %q: bad capacity %q", part, part[at+1:])
			}
			rc.Addr, rc.Capacity = part[:at], cap
		}
		out = append(out, rc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas in %q", spec)
	}
	return out, nil
}

// parsePartitions splits "Collection:column:lo:hi,..." into partition
// declarations.
func parsePartitions(spec string) ([]router.Partition, error) {
	var out []router.Partition
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) != 4 {
			return nil, fmt.Errorf("partition %q: want Collection:column:lo:hi", part)
		}
		lo, err1 := strconv.ParseInt(f[2], 10, 64)
		hi, err2 := strconv.ParseInt(f[3], 10, 64)
		if err1 != nil || err2 != nil || hi <= lo {
			return nil, fmt.Errorf("partition %q: bad range [%s,%s)", part, f[2], f[3])
		}
		out = append(out, router.Partition{Collection: f[0], Column: f[1], Lo: lo, Hi: hi})
	}
	return out, nil
}

func main() {
	listen := flag.String("listen", ":4078", "address to listen on")
	replicas := flag.String("replicas", "", "comma-separated replica addresses, each addr[@capacity]")
	demoParts := flag.Int("demo-partitions", 0, "declare demo federation partitions at this AtomicParts cardinality (0 = off)")
	partitions := flag.String("partition", "", "explicit partitions, comma-separated Collection:column:lo:hi")
	pollInterval := flag.Duration("poll-interval", 2*time.Second, "replica stats poll pacing the cost model")
	warmLimit := flag.Int("warm-limit", 32, "hot statements re-warmed after gossip or replica restart")
	vnodes := flag.Int("vnodes", router.DefaultVnodesPerUnit, "ring virtual nodes per unit of replica weight")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "replica dial timeout")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "replica request/response timeout")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "drop client connections idle longer than this (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "shutdown wait for in-flight connections")
	flag.Parse()

	if *replicas == "" {
		log.Fatal("discorouter: -replicas is required")
	}
	reps, err := parseReplicas(*replicas)
	if err != nil {
		log.Fatalf("discorouter: %v", err)
	}
	var parts []router.Partition
	if *demoParts > 0 {
		parts = router.DemoPartitions(*demoParts)
	}
	if *partitions != "" {
		extra, err := parsePartitions(*partitions)
		if err != nil {
			log.Fatalf("discorouter: %v", err)
		}
		parts = append(parts, extra...)
	}

	rt, err := router.New(router.Config{
		Replicas:       reps,
		Partitions:     parts,
		VnodesPerUnit:  *vnodes,
		DialTimeout:    *dialTimeout,
		RequestTimeout: *reqTimeout,
		PollInterval:   *pollInterval,
		WarmLimit:      *warmLimit,
	})
	if err != nil {
		log.Fatalf("discorouter: %v", err)
	}
	srv := serving.NewConnServer(rt, *idleTimeout, func() error { return rt.Close() })
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("discorouter: draining (up to %s)", *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			log.Printf("discorouter: shutdown: %v", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	log.Printf("discorouter: routing %d replicas on %s (scatter partitions: %d)", len(reps), ln.Addr(), len(parts))
	if err := srv.Serve(ln); err != nil && !errors.Is(err, serving.ErrServerClosed) {
		log.Fatal(err)
	}
}
