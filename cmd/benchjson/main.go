// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive benchmark runs (e.g. as a
// BENCH_pr.json artifact) and diff them across commits without scraping
// the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_pr.json
//
// Every `Benchmark*` result line becomes one entry with its iteration
// count and every reported "value unit" pair (ns/op, B/op, allocs/op and
// custom b.ReportMetric units alike). Header lines (goos, goarch, pkg,
// cpu) are captured into the context block.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

type benchResult struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// The three standard testing metrics are promoted to named fields so
	// cross-commit diffs of time and allocation behaviour need no map
	// spelunking. Pointers distinguish "not reported" (absent, e.g. a run
	// without -benchmem) from a genuine zero (a zero-allocation path).
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// QError is the feedback suite's headline accuracy metric (the final
	// round's median cardinality q-error), promoted for the same reason.
	QError  *float64           `json:"q_error,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	rep := report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name echo, not a result line
		}
		res := benchResult{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = &v
			case "B/op":
				res.BytesPerOp = &v
			case "allocs/op":
				res.AllocsPerOp = &v
			case "q-error":
				res.QError = &v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
