// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive benchmark runs (e.g. as a
// BENCH_pr.json artifact) and diff them across commits without scraping
// the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_pr.json
//	discoload -demo -bench Soak | benchjson -merge BENCH_pr.json > merged.json
//
// Every `Benchmark*` result line becomes one entry with its iteration
// count and every reported "value unit" pair (ns/op, B/op, allocs/op and
// custom b.ReportMetric units alike). Header lines (goos, goarch, pkg,
// cpu) are captured into the context block.
//
// With -merge FILE the existing report in FILE is loaded first (a
// missing file reads as empty) and the stdin results are merged into
// it: same-name benchmarks are replaced in place, new ones appended.
// This is how cmd/discoload's serving-latency line joins the
// optimizer benchmarks already archived by `make ci-bench`.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

type benchResult struct {
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// The three standard testing metrics are promoted to named fields so
	// cross-commit diffs of time and allocation behaviour need no map
	// spelunking. Pointers distinguish "not reported" (absent, e.g. a run
	// without -benchmem) from a genuine zero (a zero-allocation path).
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// QError is the feedback suite's headline accuracy metric (the final
	// round's median cardinality q-error), promoted for the same reason.
	QError *float64 `json:"q_error,omitempty"`
	// The serving-latency metrics reported by the soak harness
	// (cmd/discoload and BenchmarkSoakServing): latency percentiles in
	// wall-clock milliseconds, sustained throughput, and the fraction of
	// requests shed by admission control.
	P50MS    *float64 `json:"p50_ms,omitempty"`
	P99MS    *float64 `json:"p99_ms,omitempty"`
	P999MS   *float64 `json:"p999_ms,omitempty"`
	QPS      *float64 `json:"qps,omitempty"`
	ShedRate *float64 `json:"shed_rate,omitempty"`
	// ResultCacheHitRate is the soak's semantic-result-cache hit
	// fraction, promoted so cache-on vs cache-off runs diff directly.
	ResultCacheHitRate *float64 `json:"result_cache_hit_rate,omitempty"`
	// RowsPerSec is the vectorized engine's pipeline throughput
	// (BenchmarkExecPipeline's b.ReportMetric), promoted so the morsel
	// scaling series diffs across commits without map spelunking.
	RowsPerSec *float64           `json:"rows_per_sec,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// promote copies a parsed "value unit" pair into its named field, if it
// is one of the promoted units.
func (r *benchResult) promote(unit string, v float64) {
	switch unit {
	case "ns/op":
		r.NsPerOp = &v
	case "B/op":
		r.BytesPerOp = &v
	case "allocs/op":
		r.AllocsPerOp = &v
	case "q-error":
		r.QError = &v
	case "p50-ms":
		r.P50MS = &v
	case "p99-ms":
		r.P99MS = &v
	case "p999-ms":
		r.P999MS = &v
	case "qps":
		r.QPS = &v
	case "shed-rate":
		r.ShedRate = &v
	case "result-cache-hit-rate":
		r.ResultCacheHitRate = &v
	case "rows/sec":
		r.RowsPerSec = &v
	}
}

// parseReport scans go-bench text into a report.
func parseReport(in io.Reader) (report, error) {
	rep := report{Context: map[string]string{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Context[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name echo, not a result line
		}
		res := benchResult{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
			res.promote(fields[i+1], v)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, sc.Err()
}

// merge folds incoming results into base: same-name benchmarks are
// replaced in place (latest run wins), new ones appended, and incoming
// context keys override.
func merge(base, in report) report {
	byName := make(map[string]int, len(base.Benchmarks))
	for i, b := range base.Benchmarks {
		byName[b.Name] = i
	}
	for _, b := range in.Benchmarks {
		if i, ok := byName[b.Name]; ok {
			base.Benchmarks[i] = b
		} else {
			byName[b.Name] = len(base.Benchmarks)
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if base.Context == nil {
		base.Context = map[string]string{}
	}
	for k, v := range in.Context {
		base.Context[k] = v
	}
	return base
}

// loadReport reads a previously written JSON report; a missing file is
// an empty report, so first runs need no special casing.
func loadReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return report{Context: map[string]string{}}, nil
	}
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	mergePath := flag.String("merge", "", "merge stdin results into the JSON report at this path (missing file = empty)")
	flag.Parse()

	rep, err := parseReport(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *mergePath != "" {
		base, err := loadReport(*mergePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		rep = merge(base, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
