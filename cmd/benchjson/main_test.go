package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: disco
cpu: whatever model
BenchmarkOptimizeSequential-8   	       1	  5379219 ns/op	  1043 plans	       0 memoHits	 2801712 B/op	   22192 allocs/op
BenchmarkFeedback
BenchmarkFeedbackConvergence-8  	       1	 93712375 ns/op	     1.52 q-error
PASS
`

const soakOut = `BenchmarkDiscoloadDemoSoak	     320	4523003 ns/op	4.479 p50-ms	9.215 p99-ms	10.227 p999-ms	3351.8 qps	0.0250 shed-rate	0.0000 partial-rate	0.4120 result-cache-hit-rate
`

const execOut = `BenchmarkExecPipeline/workers=4-8	      50	 21034567 ns/op	 5311072 rows/sec	       3 allocs/op
`

func TestParseReportPromotesRowsPerSec(t *testing.T) {
	rep, err := parseReport(strings.NewReader(execOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.RowsPerSec == nil || *b.RowsPerSec != 5311072 {
		t.Errorf("rows_per_sec not promoted: %+v", b.RowsPerSec)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("allocs_per_op = %+v", b.AllocsPerOp)
	}
}

func TestParseReportPromotesStandardMetrics(t *testing.T) {
	rep, err := parseReport(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Context["goos"] != "linux" || rep.Context["cpu"] != "whatever model" {
		t.Errorf("context = %v", rep.Context)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (the name echo must be skipped)", len(rep.Benchmarks))
	}
	opt := rep.Benchmarks[0]
	if opt.Name != "BenchmarkOptimizeSequential-8" || opt.Runs != 1 {
		t.Errorf("first benchmark = %+v", opt)
	}
	if opt.NsPerOp == nil || *opt.NsPerOp != 5379219 {
		t.Errorf("ns_per_op not promoted: %+v", opt.NsPerOp)
	}
	if opt.BytesPerOp == nil || opt.AllocsPerOp == nil {
		t.Error("benchmem metrics not promoted")
	}
	if opt.Metrics["plans"] != 1043 || opt.Metrics["memoHits"] != 0 {
		t.Errorf("custom metrics = %v", opt.Metrics)
	}
	if opt.QError != nil {
		t.Error("q_error promoted on a benchmark that never reported it")
	}
	fb := rep.Benchmarks[1]
	if fb.QError == nil || *fb.QError != 1.52 {
		t.Errorf("q_error not promoted: %+v", fb.QError)
	}
}

func TestParseReportPromotesServingMetrics(t *testing.T) {
	rep, err := parseReport(strings.NewReader(soakOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	for name, got := range map[string]*float64{
		"p50_ms": b.P50MS, "p99_ms": b.P99MS, "p999_ms": b.P999MS,
		"qps": b.QPS, "shed_rate": b.ShedRate,
		"result_cache_hit_rate": b.ResultCacheHitRate,
	} {
		if got == nil {
			t.Errorf("%s not promoted from the soak line", name)
		}
	}
	if b.P99MS != nil && *b.P99MS != 9.215 {
		t.Errorf("p99_ms = %v, want 9.215", *b.P99MS)
	}
	if b.QPS != nil && *b.QPS != 3351.8 {
		t.Errorf("qps = %v, want 3351.8", *b.QPS)
	}
	// shed-rate is promoted even at zero: pointer present, value zero —
	// "no shedding observed" is a result, not a missing metric.
	if b.ShedRate != nil && *b.ShedRate != 0.025 {
		t.Errorf("shed_rate = %v, want 0.025", *b.ShedRate)
	}
	if b.Metrics["partial-rate"] != 0 {
		t.Errorf("partial-rate missing from metrics map: %v", b.Metrics)
	}
	if b.ResultCacheHitRate != nil && *b.ResultCacheHitRate != 0.412 {
		t.Errorf("result_cache_hit_rate = %v, want 0.412", *b.ResultCacheHitRate)
	}
}

func TestMergeReplacesAndAppends(t *testing.T) {
	base, err := parseReport(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	update := `BenchmarkOptimizeSequential-8   	       1	  9999 ns/op
` + soakOut
	in, err := parseReport(strings.NewReader(update))
	if err != nil {
		t.Fatal(err)
	}
	got := merge(base, in)
	if len(got.Benchmarks) != 3 {
		t.Fatalf("merged %d benchmarks, want 3", len(got.Benchmarks))
	}
	// Replaced in place, position preserved.
	if got.Benchmarks[0].Name != "BenchmarkOptimizeSequential-8" || *got.Benchmarks[0].NsPerOp != 9999 {
		t.Errorf("replacement: %+v", got.Benchmarks[0])
	}
	// Untouched entry survives.
	if got.Benchmarks[1].Name != "BenchmarkFeedbackConvergence-8" || got.Benchmarks[1].QError == nil {
		t.Errorf("untouched entry lost: %+v", got.Benchmarks[1])
	}
	// New entry appended.
	if got.Benchmarks[2].Name != "BenchmarkDiscoloadDemoSoak" {
		t.Errorf("appended entry: %+v", got.Benchmarks[2])
	}
	// Context survives when the incoming report has none.
	if got.Context["goos"] != "linux" {
		t.Errorf("context lost in merge: %v", got.Context)
	}
}

func TestLoadReportMissingFile(t *testing.T) {
	rep, err := loadReport(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file must read as empty: %v", err)
	}
	if len(rep.Benchmarks) != 0 || rep.Context == nil {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestLoadReportRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(path); err == nil {
		t.Error("corrupt report must not be silently replaced")
	}
}
