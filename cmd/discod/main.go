// Command discod runs a DISCO mediator as a TCP server speaking the JSON
// line protocol of internal/proto. It assembles the demo federation —
// the OO7 object database, a relational catalog of suppliers, and a flat
// file of inspection notes — registers the wrappers, and serves queries.
// Connections are handled concurrently: the mediator pipeline is
// thread-safe, repeated statements hit the prepared-plan cache, and
// admission control sheds excess load instead of queueing unboundedly.
//
// Usage:
//
//	discod [-listen :4077] [-parts 14000] [-feedback] [-feedback-snapshot file]
//	       [-max-inflight 32] [-queue-timeout 1s] [-idle-timeout 5m]
//
// With -feedback (the default) every executed query is profiled and fed
// back into the cost model; -feedback-snapshot names a JSON file that
// persists the learned corrections across restarts (saves are debounced
// and flushed on shutdown). -max-inflight bounds concurrently executing
// queries (0 = unlimited); a query that cannot be admitted within
// -queue-timeout is shed with an `overloaded` error. -idle-timeout drops
// connections that stay silent — including half-open peers that will
// never speak again.
//
// Try it with cmd/discoctl.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disco"
	"disco/internal/oo7"
	"disco/internal/proto"
)

func main() {
	listen := flag.String("listen", ":4077", "address to listen on")
	parts := flag.Int("parts", 14000, "OO7 AtomicParts cardinality")
	fb := flag.Bool("feedback", true, "absorb execution feedback into the cost model")
	fbSnap := flag.String("feedback-snapshot", "", "JSON file persisting learned corrections across restarts")
	maxInFlight := flag.Int("max-inflight", 32, "maximum concurrently executing queries (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "admission queue wait before shedding a query")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "drop connections idle longer than this (0 = never)")
	flag.Parse()

	srv, err := newServer(serverOptions{
		parts:        *parts,
		feedback:     *fb,
		fbSnapshot:   *fbSnap,
		maxInFlight:  *maxInFlight,
		queueTimeout: *queueTimeout,
		idleTimeout:  *idleTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	// Flush the debounced feedback snapshot on shutdown.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		if err := srv.med.Close(); err != nil {
			log.Printf("discod: flushing feedback snapshot: %v", err)
		}
		os.Exit(0)
	}()

	log.Printf("discod: serving the demo federation on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "discod:", err)
			continue
		}
		go srv.serve(conn)
	}
}

// serverOptions configure a demo-federation server.
type serverOptions struct {
	parts        int
	feedback     bool
	fbSnapshot   string
	maxInFlight  int
	queueTimeout time.Duration
	idleTimeout  time.Duration
}

// server wraps the mediator with a connection handler. The mediator is
// safe for concurrent use, so connections are served without a global
// lock; note the virtual clock is shared, so measured virtual times
// interleave across concurrent sessions.
type server struct {
	med         *disco.Mediator
	idleTimeout time.Duration
}

func newServer(opts serverOptions) (*server, error) {
	cfg := disco.DefaultConfig()
	cfg.Feedback = opts.feedback
	if opts.fbSnapshot != "" {
		cfg.FeedbackStore = disco.NewFeedbackFileStore(opts.fbSnapshot)
	}
	cfg.MaxInFlight = opts.maxInFlight
	cfg.AdmissionTimeout = opts.queueTimeout
	m, err := disco.NewMediator(cfg)
	if err != nil {
		return nil, err
	}

	// OO7 object database.
	scfg := disco.DefaultObjectStoreConfig()
	scfg.BufferPages = opts.parts/70 + 64
	ostore := disco.OpenObjectStore(m, scfg)
	scale := oo7.PaperScale()
	scale.AtomicParts = opts.parts
	if err := oo7.Generate(ostore, scale, 1); err != nil {
		return nil, err
	}
	if err := m.Register(disco.NewObjectWrapper("oo7", ostore)); err != nil {
		return nil, err
	}

	// Relational suppliers.
	rstore := disco.OpenRelationalStore(m, disco.DefaultRelationalStoreConfig())
	sup, err := rstore.CreateTable("Suppliers", disco.NewSchema(
		disco.Field("Suppliers", "sid", disco.KindInt),
		disco.Field("Suppliers", "sname", disco.KindString),
		disco.Field("Suppliers", "region", disco.KindInt),
	), 64)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 500; i++ {
		if err := sup.Insert(disco.Row{
			disco.Int(int64(i)),
			disco.Str(fmt.Sprintf("supplier-%03d", i)),
			disco.Int(int64(i % 12)),
		}); err != nil {
			return nil, err
		}
	}
	if err := sup.CreateHashIndex("sid"); err != nil {
		return nil, err
	}
	if err := m.Register(disco.NewRelationalWrapper("suppliers", rstore)); err != nil {
		return nil, err
	}

	// Flat-file inspection notes.
	fstore := disco.OpenFileStore(m, disco.DefaultFileStoreConfig())
	notes, err := fstore.CreateFile("Inspections", disco.NewSchema(
		disco.Field("Inspections", "part", disco.KindInt),
		disco.Field("Inspections", "passed", disco.KindBool),
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		if err := notes.Append(disco.Row{
			disco.Int(int64(i * 17 % opts.parts)),
			disco.Bool(i%7 != 0),
		}); err != nil {
			return nil, err
		}
	}
	if err := m.Register(disco.NewFileWrapper("inspections", fstore)); err != nil {
		return nil, err
	}

	return &server{med: m, idleTimeout: opts.idleTimeout}, nil
}

func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	r := proto.NewReader(conn)
	for {
		// The read deadline covers the idle wait for the next request; a
		// half-open connection (peer gone without FIN) times out here
		// instead of pinning the goroutine and its buffers forever.
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		req, err := r.ReadRequest()
		if err != nil {
			return
		}
		resp := s.handle(req)
		if s.idleTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.idleTimeout))
		}
		if err := proto.Write(conn, resp); err != nil {
			return
		}
	}
}

// errorResponse renders an error, marking admission-control shedding so
// clients can back off and retry instead of failing the statement.
func errorResponse(err error) *proto.Response {
	return &proto.Response{
		Error:      err.Error(),
		Overloaded: errors.Is(err, disco.ErrOverloaded),
	}
}

func (s *server) handle(req *proto.Request) *proto.Response {
	switch req.Op {
	case "ping":
		return &proto.Response{OK: true, Text: "pong"}

	case "query":
		res, err := s.med.Query(req.SQL)
		if err != nil {
			return errorResponse(err)
		}
		resp := &proto.Response{OK: true, ElapsedMS: res.ElapsedMS,
			Partial: res.Partial, Excluded: res.Excluded}
		for i := 0; i < res.Schema.Len(); i++ {
			resp.Columns = append(resp.Columns, res.Schema.Field(i).QualifiedName())
		}
		for _, row := range res.Rows {
			resp.Rows = append(resp.Rows, proto.EncodeRow(row))
		}
		return resp

	case "explain":
		out, err := s.med.Explain(req.SQL)
		if err != nil {
			return errorResponse(err)
		}
		return &proto.Response{OK: true, Text: out}

	case "explain-analyze":
		out, err := s.med.ExplainAnalyze(req.SQL)
		if err != nil {
			return errorResponse(err)
		}
		return &proto.Response{OK: true, Text: out}

	case "feedback":
		out, err := s.med.FeedbackSummary()
		if err != nil {
			return errorResponse(err)
		}
		return &proto.Response{OK: true, Text: out}

	case "catalog":
		return &proto.Response{OK: true, Text: s.med.Catalog.String()}

	case "history":
		if s.med.History == nil {
			return &proto.Response{Error: "history recording is disabled"}
		}
		return &proto.Response{OK: true, Text: s.med.History.Summary()}

	default:
		return &proto.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
