// Command discod runs a DISCO mediator as a TCP server speaking the JSON
// line protocol of internal/proto. It assembles the demo federation —
// the OO7 object database, a relational catalog of suppliers, and a flat
// file of inspection notes — registers the wrappers, and serves queries
// (one session at a time per connection; the mediator pipeline itself is
// serial, like the paper's prototype).
//
// Usage:
//
//	discod [-listen :4077] [-parts 14000] [-feedback] [-feedback-snapshot file]
//
// With -feedback (the default) every executed query is profiled and fed
// back into the cost model; -feedback-snapshot names a JSON file that
// persists the learned corrections across restarts.
//
// Try it with cmd/discoctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"

	"disco"
	"disco/internal/oo7"
	"disco/internal/proto"
)

func main() {
	listen := flag.String("listen", ":4077", "address to listen on")
	parts := flag.Int("parts", 14000, "OO7 AtomicParts cardinality")
	fb := flag.Bool("feedback", true, "absorb execution feedback into the cost model")
	fbSnap := flag.String("feedback-snapshot", "", "JSON file persisting learned corrections across restarts")
	flag.Parse()

	srv, err := newServer(*parts, *fb, *fbSnap)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("discod: serving the demo federation on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "discod:", err)
			continue
		}
		go srv.serve(conn)
	}
}

// server wraps the mediator with a connection handler. Queries are
// serialized through a mutex: the virtual clock and stores are
// single-session state.
type server struct {
	mu  sync.Mutex
	med *disco.Mediator
}

func newServer(parts int, fb bool, fbSnap string) (*server, error) {
	cfg := disco.DefaultConfig()
	cfg.Feedback = fb
	if fbSnap != "" {
		cfg.FeedbackStore = disco.NewFeedbackFileStore(fbSnap)
	}
	m, err := disco.NewMediator(cfg)
	if err != nil {
		return nil, err
	}

	// OO7 object database.
	scfg := disco.DefaultObjectStoreConfig()
	scfg.BufferPages = parts/70 + 64
	ostore := disco.OpenObjectStore(m, scfg)
	scale := oo7.PaperScale()
	scale.AtomicParts = parts
	if err := oo7.Generate(ostore, scale, 1); err != nil {
		return nil, err
	}
	if err := m.Register(disco.NewObjectWrapper("oo7", ostore)); err != nil {
		return nil, err
	}

	// Relational suppliers.
	rstore := disco.OpenRelationalStore(m, disco.DefaultRelationalStoreConfig())
	sup, err := rstore.CreateTable("Suppliers", disco.NewSchema(
		disco.Field("Suppliers", "sid", disco.KindInt),
		disco.Field("Suppliers", "sname", disco.KindString),
		disco.Field("Suppliers", "region", disco.KindInt),
	), 64)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 500; i++ {
		if err := sup.Insert(disco.Row{
			disco.Int(int64(i)),
			disco.Str(fmt.Sprintf("supplier-%03d", i)),
			disco.Int(int64(i % 12)),
		}); err != nil {
			return nil, err
		}
	}
	if err := sup.CreateHashIndex("sid"); err != nil {
		return nil, err
	}
	if err := m.Register(disco.NewRelationalWrapper("suppliers", rstore)); err != nil {
		return nil, err
	}

	// Flat-file inspection notes.
	fstore := disco.OpenFileStore(m, disco.DefaultFileStoreConfig())
	notes, err := fstore.CreateFile("Inspections", disco.NewSchema(
		disco.Field("Inspections", "part", disco.KindInt),
		disco.Field("Inspections", "passed", disco.KindBool),
	))
	if err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		if err := notes.Append(disco.Row{
			disco.Int(int64(i * 17 % parts)),
			disco.Bool(i%7 != 0),
		}); err != nil {
			return nil, err
		}
	}
	if err := m.Register(disco.NewFileWrapper("inspections", fstore)); err != nil {
		return nil, err
	}

	return &server{med: m}, nil
}

func (s *server) serve(conn net.Conn) {
	defer conn.Close()
	r := proto.NewReader(conn)
	for {
		req, err := r.ReadRequest()
		if err != nil {
			return
		}
		resp := s.handle(req)
		if err := proto.Write(conn, resp); err != nil {
			return
		}
	}
}

func (s *server) handle(req *proto.Request) *proto.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case "ping":
		return &proto.Response{OK: true, Text: "pong"}

	case "query":
		res, err := s.med.Query(req.SQL)
		if err != nil {
			return &proto.Response{Error: err.Error()}
		}
		resp := &proto.Response{OK: true, ElapsedMS: res.ElapsedMS,
			Partial: res.Partial, Excluded: res.Excluded}
		for i := 0; i < res.Schema.Len(); i++ {
			resp.Columns = append(resp.Columns, res.Schema.Field(i).QualifiedName())
		}
		for _, row := range res.Rows {
			resp.Rows = append(resp.Rows, proto.EncodeRow(row))
		}
		return resp

	case "explain":
		out, err := s.med.Explain(req.SQL)
		if err != nil {
			return &proto.Response{Error: err.Error()}
		}
		return &proto.Response{OK: true, Text: out}

	case "explain-analyze":
		out, err := s.med.ExplainAnalyze(req.SQL)
		if err != nil {
			return &proto.Response{Error: err.Error()}
		}
		return &proto.Response{OK: true, Text: out}

	case "feedback":
		out, err := s.med.FeedbackSummary()
		if err != nil {
			return &proto.Response{Error: err.Error()}
		}
		return &proto.Response{OK: true, Text: out}

	case "catalog":
		return &proto.Response{OK: true, Text: s.med.Catalog.String()}

	case "history":
		if s.med.History == nil {
			return &proto.Response{Error: "history recording is disabled"}
		}
		return &proto.Response{OK: true, Text: s.med.History.Summary()}

	default:
		return &proto.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
