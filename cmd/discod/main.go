// Command discod runs a DISCO mediator as a TCP server speaking the JSON
// line protocol of internal/proto. It assembles the demo federation —
// the OO7 object database, a relational catalog of suppliers, and a flat
// file of inspection notes — registers the wrappers, and serves queries.
// Connections are handled concurrently: the mediator pipeline is
// thread-safe, repeated statements hit the prepared-plan cache, and
// admission control sheds excess load instead of queueing unboundedly.
//
// Usage:
//
//	discod [-listen :4077] [-parts 14000] [-feedback] [-feedback-snapshot file]
//	       [-max-inflight 32] [-queue-timeout 1s] [-idle-timeout 5m]
//	       [-drain-timeout 5s] [-result-cache] [-result-cache-entries 1024]
//	       [-result-cache-bytes 67108864] [-result-cache-ttl-ms 0]
//	       [-exec-workers 4] [-exec-mem-bytes 0] [-exec-spill-dir dir]
//	       [-adaptive]
//
// With -feedback (the default) every executed query is profiled and fed
// back into the cost model; -feedback-snapshot names a JSON file that
// persists the learned corrections across restarts (saves are debounced
// and flushed on shutdown). -max-inflight bounds concurrently executing
// queries (0 = unlimited); a query that cannot be admitted within
// -queue-timeout is shed with an `overloaded` error. -idle-timeout drops
// connections that stay silent — including half-open peers that will
// never speak again. On SIGINT/SIGTERM the server stops accepting,
// drains in-flight connections for up to -drain-timeout, and flushes
// the feedback snapshot.
//
// -result-cache enables the semantic result cache: materialized answers
// keyed by structural plan hash, served for repeated (sub)queries and
// invalidated by re-registration, wrapper outages and feedback
// corrections. -result-cache-entries / -result-cache-bytes bound it and
// -result-cache-ttl-ms ages entries on the virtual clock (0 = no TTL).
// Hit/miss/eviction counters appear in the `stats` admin op.
//
// -exec-workers turns on morsel-parallel execution inside the mediator's
// pipeline breakers (hash join, aggregation, sort, duplicate
// elimination); answers stay bit-identical to sequential runs.
// -exec-mem-bytes bounds the memory those breakers may hold before
// Grace-style spilling to -exec-spill-dir (0 = never spill).
//
// -adaptive turns on mid-flight adaptive re-optimization: execution
// pauses at materialization boundaries, compares observed cardinalities
// against the optimizer's predictions, and when they diverge badly
// re-costs the remaining plan with the finished subtrees pinned as exact
// leaves, switching plans mid-query when the re-cost wins. Replan and
// switch counters appear in the `stats` admin op.
//
// The serving machinery (federation assembly, protocol loop, graceful
// shutdown, stats/reregister/setlink admin ops) lives in
// internal/serving; this command is the flag wrapper. Try it with
// cmd/discoctl, or load-test it with cmd/discoload.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disco/internal/resultcache"
	"disco/internal/serving"
)

func main() {
	listen := flag.String("listen", ":4077", "address to listen on")
	parts := flag.Int("parts", 14000, "OO7 AtomicParts cardinality")
	fb := flag.Bool("feedback", true, "absorb execution feedback into the cost model")
	fbSnap := flag.String("feedback-snapshot", "", "JSON file persisting learned corrections across restarts")
	maxInFlight := flag.Int("max-inflight", 32, "maximum concurrently executing queries (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "admission queue wait before shedding a query")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "drop connections idle longer than this (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "shutdown wait for in-flight connections")
	rcOn := flag.Bool("result-cache", false, "enable the semantic result cache")
	rcEntries := flag.Int("result-cache-entries", resultcache.DefaultEntries, "result cache entry bound")
	rcBytes := flag.Int64("result-cache-bytes", resultcache.DefaultMaxBytes, "result cache byte budget")
	rcTTL := flag.Float64("result-cache-ttl-ms", 0, "result cache entry TTL in virtual ms (0 = none)")
	execWorkers := flag.Int("exec-workers", 0, "morsel-parallel workers for mediator pipeline breakers (<2 = sequential)")
	execMem := flag.Int64("exec-mem-bytes", 0, "spill budget for mediator hash joins/aggregations (0 = never spill)")
	execSpillDir := flag.String("exec-spill-dir", "", "directory for spill partitions (default: OS temp dir)")
	adaptive := flag.Bool("adaptive", false, "re-optimize running queries mid-flight when observed cardinalities diverge from estimates")
	flag.Parse()

	fed, err := serving.NewDemoFederation(serving.Options{
		Parts:            *parts,
		Feedback:         *fb,
		FeedbackSnapshot: *fbSnap,
		MaxInFlight:      *maxInFlight,
		QueueTimeout:     *queueTimeout,
		ResultCache: resultcache.Config{
			Enabled:  *rcOn,
			Entries:  *rcEntries,
			MaxBytes: *rcBytes,
			TTLMS:    *rcTTL,
		},
		ExecWorkers:  *execWorkers,
		ExecMemBytes: *execMem,
		ExecSpillDir: *execSpillDir,
		Adaptive:     *adaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := serving.NewServer(fed, *idleTimeout)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("discod: draining (up to %s)", *drainTimeout)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			log.Printf("discod: shutdown: %v", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	log.Printf("discod: serving the demo federation on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, serving.ErrServerClosed) {
		log.Fatal(err)
	}
}
