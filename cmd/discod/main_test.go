package main

import (
	"path/filepath"
	"strings"
	"testing"

	"disco/internal/proto"
)

func TestHandleFeedbackOps(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.json")
	srv, err := newServer(serverOptions{parts: 500, feedback: true, fbSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	sql := `SELECT sname FROM Suppliers WHERE region = 3`

	resp := srv.handle(&proto.Request{Op: "explain-analyze", SQL: sql})
	if !resp.OK {
		t.Fatalf("explain-analyze: %s", resp.Error)
	}
	for _, want := range []string{"estimated TotalTime", "act=", "q="} {
		if !strings.Contains(resp.Text, want) {
			t.Errorf("explain-analyze output missing %q:\n%s", want, resp.Text)
		}
	}

	resp = srv.handle(&proto.Request{Op: "feedback"})
	if !resp.OK {
		t.Fatalf("feedback: %s", resp.Error)
	}
	if !strings.Contains(resp.Text, "suppliers/submit") {
		t.Errorf("feedback summary missing observed scope:\n%s", resp.Text)
	}
}

func TestHandleFeedbackDisabled(t *testing.T) {
	srv, err := newServer(serverOptions{parts: 500})
	if err != nil {
		t.Fatal(err)
	}
	if resp := srv.handle(&proto.Request{Op: "feedback"}); resp.OK || !strings.Contains(resp.Error, "disabled") {
		t.Errorf("feedback op with feedback off should error, got %+v", resp)
	}
	if resp := srv.handle(&proto.Request{Op: "explain-analyze", SQL: `SELECT sid FROM Suppliers WHERE sid = 1`}); !resp.OK {
		t.Errorf("explain-analyze should work without feedback: %s", resp.Error)
	}
}
