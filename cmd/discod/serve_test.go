package main

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"disco"
	"disco/internal/proto"
)

// testServer builds one small federation for the connection tests.
func testServer(t *testing.T, opts serverOptions) *server {
	t.Helper()
	if opts.parts == 0 {
		opts.parts = 500
	}
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// dialServed starts a TCP listener serving srv and dials one client
// connection to it.
func dialServed(t *testing.T, srv *server) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.serve(conn)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestIdleTimeoutDropsSilentConnection pins satellite 4: a connection
// that goes silent — the shape of a half-open peer whose FIN never
// arrives — is dropped by the idle read deadline instead of pinning its
// goroutine forever.
func TestIdleTimeoutDropsSilentConnection(t *testing.T) {
	srv := testServer(t, serverOptions{idleTimeout: 150 * time.Millisecond})
	conn := dialServed(t, srv)
	r := proto.NewReader(conn)

	// The connection works while traffic flows.
	if err := proto.Write(conn, &proto.Request{Op: "ping"}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ReadResponse()
	if err != nil || !resp.OK {
		t.Fatalf("ping: %v %+v", err, resp)
	}

	// Now stay silent. The server must close the connection: the next
	// read on our side finishes with an error (EOF/reset) well before
	// the watchdog fires.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := r.ReadResponse(); err == nil {
		t.Fatal("server kept a silent connection open past the idle timeout")
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("connection dropped after %v, before the idle timeout", waited)
	}
}

// TestConcurrentConnections serves several sessions at once — the
// serialized-handler regression test: all queries succeed with correct
// results, none deadlocks.
func TestConcurrentConnections(t *testing.T) {
	srv := testServer(t, serverOptions{idleTimeout: 5 * time.Second})

	const sessions = 4
	const queriesPerSession = 3
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		conn := dialServed(t, srv)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			r := proto.NewReader(conn)
			for q := 0; q < queriesPerSession; q++ {
				if err := proto.Write(conn, &proto.Request{
					Op: "query", SQL: `SELECT sname FROM Suppliers WHERE region = 3`,
				}); err != nil {
					errs <- err
					return
				}
				resp, err := r.ReadResponse()
				if err != nil {
					errs <- err
					return
				}
				if !resp.OK || len(resp.Rows) != 42 {
					t.Errorf("session query: ok=%v rows=%d error=%q", resp.OK, len(resp.Rows), resp.Error)
					return
				}
			}
		}(conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if st := srv.med.Stats(); st.PlanCacheHits == 0 {
		t.Errorf("identical statements across sessions should share cached plans, stats = %+v", st)
	}
}

// TestOverloadedResponseShape pins the wire mapping: an admission-shed
// error carries the Overloaded marker so clients back off and retry,
// while ordinary failures do not. (The shedding behaviour itself is
// covered by the mediator's admission tests.)
func TestOverloadedResponseShape(t *testing.T) {
	resp := errorResponse(fmt.Errorf("serving: %w", disco.ErrOverloaded))
	if resp.OK || !resp.Overloaded || resp.Error == "" {
		t.Errorf("shed error response = %+v, want !OK with Overloaded set", resp)
	}
	resp = errorResponse(errors.New("parse error"))
	if resp.Overloaded {
		t.Errorf("ordinary error must not be marked overloaded: %+v", resp)
	}
}
