// Command wrapperd runs one data-source wrapper as a standalone TCP
// server speaking the wrapper wire protocol — the DISCO architecture's
// wrapper component as its own process. A mediator registers it with
// wrapper.DialRemote (discod does not do this by default; wrapperd exists
// for distributed experiments and as the reference server implementation).
//
// Usage:
//
//	wrapperd [-listen :4078] [-name oo7] [-parts 14000] [-faults spec]
//
// The served source is an OO7 object database. -faults injects failures
// at the transport for resilience experiments, in netsim.ParseFaultSpec
// syntax: "oo7:drop=0.1,error=0.05,delay=20,seed=7" (or "*:..." to match
// any name). Entries for other wrapper names are ignored.
package main

import (
	"flag"
	"log"
	"net"

	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/oo7"
	"disco/internal/wrapper"
)

func main() {
	listen := flag.String("listen", ":4078", "address to listen on")
	name := flag.String("name", "oo7", "registered wrapper name")
	parts := flag.Int("parts", 14000, "OO7 AtomicParts cardinality")
	faults := flag.String("faults", "", "fault injection spec (wrapper:drop=0.1,delay=50,...)")
	flag.Parse()

	faultSet, err := netsim.ParseFaultSpec(*faults)
	if err != nil {
		log.Fatalf("wrapperd: -faults: %v", err)
	}
	var inj *netsim.Injector
	if plan, ok := faultSet.PlanFor(*name); ok && !plan.IsZero() {
		inj = netsim.NewInjector(plan)
		log.Printf("wrapperd: injecting faults: %s", plan)
	}

	clock := netsim.NewClock()
	cfg := objstore.DefaultConfig()
	cfg.BufferPages = *parts/70 + 64
	store := objstore.Open(cfg, clock)
	scale := oo7.PaperScale()
	scale.AtomicParts = *parts
	if err := oo7.Generate(store, scale, 1); err != nil {
		log.Fatal(err)
	}
	w := wrapper.NewObjWrapper(*name, store)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrapperd: serving wrapper %q (%d parts) on %s", *name, *parts, ln.Addr())
	if err := wrapper.ServeFaulty(ln, w, inj); err != nil {
		log.Fatal(err)
	}
}
