// Command wrapperd runs one data-source wrapper as a standalone TCP
// server speaking the wrapper wire protocol — the DISCO architecture's
// wrapper component as its own process. A mediator registers it with
// wrapper.DialRemote (discod does not do this by default; wrapperd exists
// for distributed experiments and as the reference server implementation).
//
// Usage:
//
//	wrapperd [-listen :4078] [-name oo7] [-parts 14000]
//
// The served source is an OO7 object database.
package main

import (
	"flag"
	"log"
	"net"

	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/oo7"
	"disco/internal/wrapper"
)

func main() {
	listen := flag.String("listen", ":4078", "address to listen on")
	name := flag.String("name", "oo7", "registered wrapper name")
	parts := flag.Int("parts", 14000, "OO7 AtomicParts cardinality")
	flag.Parse()

	clock := netsim.NewClock()
	cfg := objstore.DefaultConfig()
	cfg.BufferPages = *parts/70 + 64
	store := objstore.Open(cfg, clock)
	scale := oo7.PaperScale()
	scale.AtomicParts = *parts
	if err := oo7.Generate(store, scale, 1); err != nil {
		log.Fatal(err)
	}
	w := wrapper.NewObjWrapper(*name, store)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrapperd: serving wrapper %q (%d parts) on %s", *name, *parts, ln.Addr())
	if err := wrapper.Serve(ln, w); err != nil {
		log.Fatal(err)
	}
}
