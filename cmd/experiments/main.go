// Command experiments regenerates the paper's evaluation artifacts: the
// Figure 12 index-scan study (E1), its error summary (E2), and the
// ablation tables E3-E7 of DESIGN.md. Every run is deterministic.
//
// Usage:
//
//	experiments [-exp all|fig12|planquality|ruleoverhead|history|pruning|joincross|feedback|adaptive|resilience] [-scale N]
//
// -scale sets the AtomicParts cardinality (default: the paper's 70000;
// use a smaller value like 14000 for quick runs). -faults feeds the
// resilience study custom fault scenarios in netsim.ParseFaultSpec syntax
// (e.g. "flaky:drop=0.3,seed=7;slow:delay=100"); without it the study
// runs the built-in matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"disco/internal/experiments"
	"disco/internal/netsim"
	"disco/internal/oo7"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig12, planquality, ruleoverhead, history, pruning, joincross, clustering, oo7suite, feedback, adaptive, resilience")
	scaleN := flag.Int("scale", 70000, "AtomicParts cardinality (70000 = paper scale)")
	csv := flag.Bool("csv", false, "emit fig12 as CSV instead of a table (for plotting)")
	workers := flag.Int("workers", 0, "optimizer search goroutines (0 = GOMAXPROCS, 1 = sequential)")
	memo := flag.Bool("memo", false, "enable the optimizer's plan-cost memo table")
	faults := flag.String("faults", "", "fault scenarios for -exp resilience (wrapper:drop=0.1,delay=50,...;... syntax)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when the run completes")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	faultSet, err := netsim.ParseFaultSpec(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -faults: %v\n", err)
		os.Exit(1)
	}

	scale := oo7.PaperScale()
	scale.AtomicParts = *scaleN
	experiments.Search.Workers = *workers
	experiments.Search.Memo = *memo

	run := func(name string, fn func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("fig12", func() (fmt.Stringer, error) {
		r, err := experiments.Figure12(scale, nil, nil)
		if err == nil && *csv {
			return csvFig12{r}, nil
		}
		return tbl{r}, err
	})
	run("planquality", func() (fmt.Stringer, error) {
		r, err := experiments.PlanQuality(scale)
		return tbl{r}, err
	})
	run("ruleoverhead", func() (fmt.Stringer, error) {
		r, err := experiments.RuleOverhead(nil, 0)
		return tbl{r}, err
	})
	run("history", func() (fmt.Stringer, error) {
		r, err := experiments.History(scale)
		return tbl{r}, err
	})
	run("pruning", func() (fmt.Stringer, error) {
		r, err := experiments.Pruning()
		return tbl{r}, err
	})
	run("joincross", func() (fmt.Stringer, error) {
		r, err := experiments.JoinCrossover(nil)
		return tbl{r}, err
	})
	run("clustering", func() (fmt.Stringer, error) {
		r, err := experiments.Clustering(scale, nil)
		return tbl{r}, err
	})
	run("oo7suite", func() (fmt.Stringer, error) {
		r, err := experiments.OO7Suite(scale)
		return tbl{r}, err
	})
	run("feedback", func() (fmt.Stringer, error) {
		r, err := experiments.Feedback()
		return tbl{r}, err
	})
	run("adaptive", func() (fmt.Stringer, error) {
		r, err := experiments.Adaptive()
		return tbl{r}, err
	})
	// The resilience study injects faults by definition, so it only runs
	// when asked for explicitly — "-exp all" keeps producing exactly the
	// fault-free evaluation artifacts.
	if *exp == "resilience" {
		run("resilience", func() (fmt.Stringer, error) {
			r, err := experiments.Resilience(experiments.ScenariosFromSpec(faultSet))
			return tbl{r}, err
		})
	}
}

// csvFig12 renders the figure's series as CSV for external plotting.
type csvFig12 struct {
	r *experiments.Figure12Result
}

func (c csvFig12) String() string {
	var b strings.Builder
	b.WriteString("selectivity,objects,experiment_s,calibration_s,yao_s\n")
	for _, row := range c.r.Rows {
		fmt.Fprintf(&b, "%.3f,%d,%.3f,%.3f,%.3f\n",
			row.Selectivity, row.K, row.ExperimentS, row.CalibrationS, row.YaoS)
	}
	return strings.TrimRight(b.String(), "\n")
}

// tbl adapts the experiment results' Table method to fmt.Stringer.
type tbl struct {
	t interface{ Table() string }
}

func (t tbl) String() string { return t.t.Table() }
