// Command discoload is the workload-scale load generator for discod: it
// drives thousands of concurrent clients over real TCP sockets against
// one or more mediator servers, records per-request wall-clock latency
// into an HDR-style histogram, and reports p50/p99/p999 latency, qps,
// overload-shed rate and partial-answer rate.
//
// Usage:
//
//	discoload -addrs host:4077[,host2:4077...] [flags]
//	discoload -demo [-parts 2000] [flags]
//
// With -addrs it targets running discod processes (client c connects to
// address c mod len). With -demo it starts an in-process demo-federation
// server on an ephemeral port and tears it down after the run — the
// single-binary soak mode CI uses. Demo mode accepts -result-cache (plus
// -result-cache-bytes / -result-cache-ttl-ms) to serve the zipf-hot pool
// from the semantic result cache; the scraped hit rate lands in the
// report as result_cache_hit_rate and on the -bench line. -exec-workers
// and -exec-mem-bytes switch the mediator's vectorized engine into
// morsel-parallel and spill-bounded modes respectively; -adaptive turns
// on mid-flight adaptive re-optimization. -replicas N
// (N > 1) brings up N identical demo replicas fronted by an in-process
// federation router (internal/router) with scatter-gather partitions
// declared — the scale-out soak mode; the report's per_target section
// then breaks the run down by serving replica.
//
// The workload is deterministic in -seed: a zipf-skewed hot pool of
// prepared statements (plan-cache hits), a stream of ad-hoc statements
// with fresh literals (cache misses), and chaos events — explains,
// wrapper re-registrations (catalog epoch churn) and netsim link
// perturbations — at -mix weights per 10000 requests. Every -sample'th
// query records an order-insensitive result digest for offline oracle
// verification.
//
// Output is the JSON report on stdout; with -bench NAME it instead
// emits one `go test -bench`-style line that cmd/benchjson ingests
// (`discoload -bench Soak | benchjson -merge BENCH_pr.json`), and the
// JSON report moves to stderr. Exit status is non-zero when any client
// wedged (timed out or hit an I/O error mid-schedule).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"disco/internal/loadgen"
	"disco/internal/resultcache"
	"disco/internal/router"
	"disco/internal/serving"
)

func main() {
	var (
		addrs    = flag.String("addrs", "", "comma-separated discod addresses (client c dials addrs[c mod n])")
		demo     = flag.Bool("demo", false, "serve an in-process demo federation instead of dialing -addrs")
		parts    = flag.Int("parts", 2000, "demo mode: OO7 AtomicParts cardinality")
		feedback = flag.Bool("feedback", true, "demo mode: absorb execution feedback into the cost model")
		inflight = flag.Int("max-inflight", 32, "demo mode: admission-control bound (0 = unlimited)")
		queue    = flag.Duration("queue-timeout", time.Second, "demo mode: admission queue wait before shedding")
		rcOn     = flag.Bool("result-cache", false, "demo mode: enable the semantic result cache")
		rcBytes  = flag.Int64("result-cache-bytes", resultcache.DefaultMaxBytes, "demo mode: result cache byte budget")
		rcTTL    = flag.Float64("result-cache-ttl-ms", 0, "demo mode: result cache TTL in virtual ms (0 = none)")
		execW    = flag.Int("exec-workers", 0, "demo mode: morsel-parallel breaker workers (<2 = sequential)")
		execMem  = flag.Int64("exec-mem-bytes", 0, "demo mode: breaker spill budget in bytes (0 = never spill)")
		adaptive = flag.Bool("adaptive", false, "demo mode: re-optimize running queries mid-flight on cardinality divergence")
		replicas = flag.Int("replicas", 1, "demo mode: identical replicas fronted by an in-process federation router (1 = single server)")

		clients  = flag.Int("clients", 64, "concurrent client connections")
		requests = flag.Int("requests", 100, "requests per client")
		seed     = flag.Int64("seed", 1, "workload seed (same seed, same schedule)")
		hot      = flag.Float64("hot", loadgen.DefaultHotRatio, "fraction of queries drawn from the hot statement pool")
		hotPool  = flag.Int("hot-pool", loadgen.DefaultHotPool, "hot statement pool size")
		zipfS    = flag.Float64("zipf", loadgen.DefaultZipfS, "zipf skew parameter s (> 1) over the hot pool")
		mix      = flag.String("mix", "explain=200,analyze=100,reregister=20,setlink=30", "per-10000 event weights")
		sample   = flag.Int("sample", 0, "record an oracle digest every n-th query (0 = never)")
		timeout  = flag.Duration("timeout", loadgen.DefaultTimeout, "per-request wedge bound")
		bench    = flag.String("bench", "", "emit a go-bench result line named Benchmark<NAME> instead of JSON on stdout")
	)
	flag.Parse()

	mixWeights, err := loadgen.ParseMix(*mix)
	if err != nil {
		log.Fatal("discoload: ", err)
	}

	var targets []string
	if *demo {
		if *addrs != "" {
			log.Fatal("discoload: -demo and -addrs are mutually exclusive")
		}
		if *replicas < 1 {
			log.Fatal("discoload: -replicas must be at least 1")
		}
		// Every replica is the same deterministic demo federation, so a
		// router may scatter partitioned scans across them and bag-union
		// the shards into exact answers.
		repConfigs := make([]router.ReplicaConfig, 0, *replicas)
		for i := 0; i < *replicas; i++ {
			fed, err := serving.NewDemoFederation(serving.Options{
				Parts:        *parts,
				Feedback:     *feedback,
				MaxInFlight:  *inflight,
				QueueTimeout: *queue,
				ResultCache: resultcache.Config{
					Enabled:  *rcOn,
					MaxBytes: *rcBytes,
					TTLMS:    *rcTTL,
				},
				ExecWorkers:  *execW,
				ExecMemBytes: *execMem,
				Adaptive:     *adaptive,
			})
			if err != nil {
				log.Fatal("discoload: ", err)
			}
			srv := serving.NewServer(fed, 5*time.Minute)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal("discoload: ", err)
			}
			go srv.Serve(ln)
			defer srv.Shutdown(5 * time.Second)
			repConfigs = append(repConfigs, router.ReplicaConfig{Addr: ln.Addr().String()})
		}
		if *replicas == 1 {
			targets = []string{repConfigs[0].Addr}
			fmt.Fprintf(os.Stderr, "discoload: demo server on %s (parts=%d, max-inflight=%d)\n",
				targets[0], *parts, *inflight)
		} else {
			rt, err := router.New(router.Config{
				Replicas:   repConfigs,
				Partitions: router.DemoPartitions(*parts),
			})
			if err != nil {
				log.Fatal("discoload: ", err)
			}
			rsrv := serving.NewConnServer(rt, 5*time.Minute, rt.Close)
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal("discoload: ", err)
			}
			go rsrv.Serve(rln)
			defer rsrv.Shutdown(5 * time.Second)
			targets = []string{rln.Addr().String()}
			fmt.Fprintf(os.Stderr, "discoload: demo router on %s fronting %d replicas (parts=%d, max-inflight=%d)\n",
				targets[0], *replicas, *parts, *inflight)
		}
	} else {
		targets = strings.Split(*addrs, ",")
		if *addrs == "" || len(targets) == 0 {
			log.Fatal("discoload: need -addrs or -demo")
		}
	}

	sched, err := loadgen.Generate(loadgen.Config{
		Seed:        *seed,
		Clients:     *clients,
		Requests:    *requests,
		Templates:   loadgen.DemoTemplates(*parts),
		HotRatio:    *hot,
		HotPool:     *hotPool,
		ZipfS:       *zipfS,
		Mix:         mixWeights,
		SampleEvery: *sample,
	})
	if err != nil {
		log.Fatal("discoload: ", err)
	}
	fmt.Fprintf(os.Stderr, "discoload: driving %d clients × %d requests (seed %d) against %s\n",
		*clients, *requests, *seed, strings.Join(targets, ", "))

	rep, err := loadgen.Drive(sched, loadgen.DriveOptions{
		Addrs:          targets,
		RequestTimeout: *timeout,
	})
	if err != nil {
		log.Fatal("discoload: ", err)
	}
	if stats, err := loadgen.ScrapeStats(targets[0], *timeout); err == nil {
		rep.AttachServerStats(stats)
	} else {
		fmt.Fprintf(os.Stderr, "discoload: stats scrape failed: %v\n", err)
	}
	for _, ts := range rep.PerTarget {
		fmt.Fprintf(os.Stderr, "discoload: target %-24s ok=%-6d shed=%-5d errors=%-5d partials=%-5d p50=%.2fms p99=%.2fms mean=%.2fms",
			ts.Target, ts.OK, ts.Shed, ts.Errors, ts.Partials, ts.P50MS, ts.P99MS, ts.MeanMS)
		if ts.ShardsServed > 0 {
			fmt.Fprintf(os.Stderr, " shards=%d shard-rows=%d shard-mean=%.2fms",
				ts.ShardsServed, ts.ShardRows, ts.ShardMeanMS)
		}
		fmt.Fprintln(os.Stderr)
	}

	jsonDst := os.Stdout
	if *bench != "" {
		fmt.Println(rep.BenchLine(*bench))
		jsonDst = os.Stderr
	}
	enc := json.NewEncoder(jsonDst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal("discoload: ", err)
	}
	if rep.Wedged > 0 {
		fmt.Fprintf(os.Stderr, "discoload: FAIL — %d wedged clients\n", rep.Wedged)
		os.Exit(1)
	}
}
