package main

import (
	"net"
	"testing"
	"time"

	"disco/internal/loadgen"
	"disco/internal/proto"
	"disco/internal/resultcache"
	"disco/internal/serving"
)

// soakParts keeps the demo federation small enough that the race
// detector's overhead stays affordable at 256 clients.
const soakParts = 1500

// TestSoak is the CI soak gate (`make ci-soak`): a fixed-seed workload
// of 256 concurrent clients — zipf-skewed hot statements, ad-hoc
// statements, explains, catalog re-registrations and link perturbations
// — driven over real sockets against an in-process demo server, under
// the race detector. The gate asserts:
//
//   - zero wedged connections (no request ever hit the wedge timeout),
//   - zero error responses and zero partial answers,
//   - every sampled result matches a sequential oracle re-execution on
//     a fresh, feedback-off federation (order-insensitive digest),
//   - p99 latency under a deliberately generous bound — a liveness
//     backstop, not a performance SLO.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak gate is not a -short test")
	}
	fed, err := serving.NewDemoFederation(serving.Options{
		Parts:        soakParts,
		Feedback:     true,
		MaxInFlight:  64,
		QueueTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(fed, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(10 * time.Second)

	const clients, perClient = 256, 20
	sched, err := loadgen.Generate(loadgen.Config{
		Seed:      42,
		Clients:   clients,
		Requests:  perClient,
		Templates: loadgen.DemoTemplates(soakParts),
		Mix:       loadgen.DefaultMix(),
		// Sampling is per client; with ~14 queries per client a 7-spacing
		// yields about two oracle samples each.
		SampleEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Drive(sched, loadgen.DriveOptions{
		Addrs:          []string{ln.Addr().String()},
		RequestTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: ok=%d shed=%d errors=%d partials=%d p50=%.1fms p99=%.1fms qps=%.0f elapsed=%.1fs",
		rep.OK, rep.Shed, rep.Errors, rep.Partials, rep.P50MS, rep.P99MS, rep.QPS, rep.ElapsedS)

	// No wedged connections: every client completed its full schedule.
	if rep.Wedged != 0 {
		t.Fatalf("%d wedged clients: %v", rep.Wedged, rep.WedgedClients)
	}
	if rep.Requests != clients*perClient {
		t.Errorf("attempted %d requests, schedule had %d", rep.Requests, clients*perClient)
	}
	// Every statement the generator emits is valid against the demo
	// federation, and nothing in the chaos mix takes a wrapper down, so
	// errors and partial answers both gate at zero.
	if rep.Errors != 0 {
		t.Errorf("%d error responses", rep.Errors)
	}
	if rep.Partials != 0 {
		t.Errorf("%d partial answers without an injected outage", rep.Partials)
	}
	if rep.OK < rep.Requests/2 {
		t.Errorf("only %d/%d requests succeeded (shed=%d)", rep.OK, rep.Requests, rep.Shed)
	}
	// Liveness backstop, far above any healthy run.
	if rep.P99MS > 20000 {
		t.Errorf("p99 = %.1f ms exceeds the 20s soak bound", rep.P99MS)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no oracle samples recorded")
	}

	// Server-side counters agree with the client-side view.
	stats := srv.Stats()
	if stats.Mediator.Shed != int64(rep.Shed) {
		t.Errorf("server shed %d, clients saw %d", stats.Mediator.Shed, rep.Shed)
	}
	if stats.Mediator.QueryErrors != 0 {
		t.Errorf("server counted %d execution errors", stats.Mediator.QueryErrors)
	}
	if stats.Mediator.PlanCacheHits == 0 {
		t.Error("hot statements never hit the plan cache")
	}

	// Oracle pass: replay each distinct sampled statement sequentially on
	// a fresh federation with feedback off — same data, no learned
	// corrections, no concurrency — and compare the order-insensitive
	// result digests. Plans may differ (the loaded server's model drifted
	// under feedback); the row multisets must not.
	oracle, err := serving.NewDemoFederation(serving.Options{Parts: soakParts})
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[string]uint64)
	mismatches := 0
	for _, s := range rep.Samples {
		want, ok := digests[s.SQL]
		if !ok {
			res, err := oracle.Med.Query(s.SQL)
			if err != nil {
				t.Fatalf("oracle: %s: %v", s.SQL, err)
			}
			rows := make([][]any, len(res.Rows))
			for i, row := range res.Rows {
				rows[i] = proto.EncodeRow(row)
			}
			want = loadgen.HashRows(rows)
			digests[s.SQL] = want
		}
		if s.Hash != want {
			mismatches++
			t.Errorf("result mismatch: client %d request %d %q: digest %x, oracle %x (%d rows)",
				s.Client, s.Request, s.SQL, s.Hash, want, s.Rows)
		}
	}
	t.Logf("oracle: %d samples over %d distinct statements, %d mismatches",
		len(rep.Samples), len(digests), mismatches)
}

// TestSoakExecParallel is the vectorized-engine soak gate (`make
// ci-exec`): the fixed-seed chaos workload against a server running the
// mediator's breakers morsel-parallel (4 workers) under a deliberately
// tiny spill budget, so hash joins and aggregations Grace-partition to
// disk mid-serving, under the race detector. On top of the TestSoak
// liveness invariants it asserts the execution mode is invisible to
// clients: every sampled result digest matches a sequential,
// spill-free, feedback-off oracle re-execution. Digests are
// order-insensitive, which is exactly the guarantee spilled execution
// keeps (multiset-identical, bit-exact values).
func TestSoakExecParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("soak gate is not a -short test")
	}
	fed, err := serving.NewDemoFederation(serving.Options{
		Parts:        soakParts,
		Feedback:     true,
		MaxInFlight:  64,
		QueueTimeout: 2 * time.Second,
		ExecWorkers:  4,
		ExecMemBytes: 64 << 10, // tiny: force spills at soak scale
		ExecSpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(fed, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(10 * time.Second)

	const clients, perClient = 128, 20
	sched, err := loadgen.Generate(loadgen.Config{
		Seed:        42,
		Clients:     clients,
		Requests:    perClient,
		Templates:   loadgen.DemoTemplates(soakParts),
		Mix:         loadgen.DefaultMix(),
		SampleEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Drive(sched, loadgen.DriveOptions{
		Addrs:          []string{ln.Addr().String()},
		RequestTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exec soak: ok=%d shed=%d errors=%d partials=%d p50=%.1fms p99=%.1fms qps=%.0f",
		rep.OK, rep.Shed, rep.Errors, rep.Partials, rep.P50MS, rep.P99MS, rep.QPS)

	if rep.Wedged != 0 {
		t.Fatalf("%d wedged clients: %v", rep.Wedged, rep.WedgedClients)
	}
	if rep.Errors != 0 {
		t.Errorf("%d error responses", rep.Errors)
	}
	if rep.Partials != 0 {
		t.Errorf("%d partial answers without an injected outage", rep.Partials)
	}
	if stats := srv.Stats(); stats.Mediator.QueryErrors != 0 {
		t.Errorf("server counted %d execution errors", stats.Mediator.QueryErrors)
	}
	if rep.P99MS > 20000 {
		t.Errorf("p99 = %.1f ms exceeds the 20s soak bound", rep.P99MS)
	}
	if len(rep.Samples) == 0 {
		t.Fatal("no oracle samples recorded")
	}

	// Oracle pass: a fresh federation with the vectorized engine in its
	// default sequential spill-free mode and feedback off. Parallel and
	// spilled answers must be indistinguishable digest-for-digest.
	oracle, err := serving.NewDemoFederation(serving.Options{Parts: soakParts})
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[string]uint64)
	mismatches := 0
	for _, s := range rep.Samples {
		want, ok := digests[s.SQL]
		if !ok {
			res, err := oracle.Med.Query(s.SQL)
			if err != nil {
				t.Fatalf("oracle: %s: %v", s.SQL, err)
			}
			rows := make([][]any, len(res.Rows))
			for i, row := range res.Rows {
				rows[i] = proto.EncodeRow(row)
			}
			want = loadgen.HashRows(rows)
			digests[s.SQL] = want
		}
		if s.Hash != want {
			mismatches++
			t.Errorf("result mismatch: client %d request %d %q: digest %x, oracle %x (%d rows)",
				s.Client, s.Request, s.SQL, s.Hash, want, s.Rows)
		}
	}
	t.Logf("oracle: %d samples over %d distinct statements, %d mismatches",
		len(rep.Samples), len(digests), mismatches)
}

// TestSoakResultCache is the result-cache soak gate (`make
// ci-resultcache`): the same fixed-seed chaos workload — zipf-hot
// statements, re-registrations, link perturbations — against a server
// with the semantic result cache enabled. On top of the TestSoak
// invariants it asserts the cache actually works under churn: a material
// hit rate on the hot pool, and zero oracle-digest mismatches — a cached
// answer must be indistinguishable from a re-execution even while
// re-registration keeps invalidating entries mid-run.
func TestSoakResultCache(t *testing.T) {
	if testing.Short() {
		t.Skip("soak gate is not a -short test")
	}
	fed, err := serving.NewDemoFederation(serving.Options{
		Parts:        soakParts,
		Feedback:     true,
		MaxInFlight:  64,
		QueueTimeout: 2 * time.Second,
		ResultCache:  resultcache.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(fed, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(10 * time.Second)

	const clients, perClient = 256, 20
	sched, err := loadgen.Generate(loadgen.Config{
		Seed:        42,
		Clients:     clients,
		Requests:    perClient,
		Templates:   loadgen.DemoTemplates(soakParts),
		Mix:         loadgen.DefaultMix(),
		SampleEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Drive(sched, loadgen.DriveOptions{
		Addrs:          []string{ln.Addr().String()},
		RequestTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	stats := srv.Stats()
	hits, misses := stats.Mediator.ResultCacheHits, stats.Mediator.ResultCacheMisses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	t.Logf("result-cache soak: ok=%d shed=%d errors=%d partials=%d p99=%.1fms qps=%.0f "+
		"rc-hits=%d rc-misses=%d rc-stale=%d rc-inval=%d hit-rate=%.3f",
		rep.OK, rep.Shed, rep.Errors, rep.Partials, rep.P99MS, rep.QPS,
		hits, misses, stats.Mediator.ResultCacheStale, stats.Mediator.ResultCacheInvalidations, hitRate)

	if rep.Wedged != 0 {
		t.Fatalf("%d wedged clients: %v", rep.Wedged, rep.WedgedClients)
	}
	if rep.Errors != 0 {
		t.Errorf("%d error responses", rep.Errors)
	}
	if rep.Partials != 0 {
		t.Errorf("%d partial answers without an injected outage", rep.Partials)
	}
	if stats.Mediator.QueryErrors != 0 {
		t.Errorf("server counted %d execution errors", stats.Mediator.QueryErrors)
	}
	// The cache gate: the zipf-hot pool must be served from memory a
	// material fraction of the time despite the chaos mix invalidating
	// the cache throughout the run.
	if hits == 0 {
		t.Error("the hot pool never hit the result cache")
	}
	if hitRate < 0.05 {
		t.Errorf("result-cache hit rate %.3f below the 0.05 soak floor", hitRate)
	}

	// Oracle pass, identical to TestSoak: every sampled answer — cached
	// or executed — must match a fresh cache-off, feedback-off replay.
	if len(rep.Samples) == 0 {
		t.Fatal("no oracle samples recorded")
	}
	oracle, err := serving.NewDemoFederation(serving.Options{Parts: soakParts})
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[string]uint64)
	mismatches := 0
	for _, s := range rep.Samples {
		want, ok := digests[s.SQL]
		if !ok {
			res, err := oracle.Med.Query(s.SQL)
			if err != nil {
				t.Fatalf("oracle: %s: %v", s.SQL, err)
			}
			rows := make([][]any, len(res.Rows))
			for i, row := range res.Rows {
				rows[i] = proto.EncodeRow(row)
			}
			want = loadgen.HashRows(rows)
			digests[s.SQL] = want
		}
		if s.Hash != want {
			mismatches++
			t.Errorf("result mismatch: client %d request %d %q: digest %x, oracle %x (%d rows)",
				s.Client, s.Request, s.SQL, s.Hash, want, s.Rows)
		}
	}
	t.Logf("oracle: %d samples over %d distinct statements, %d mismatches",
		len(rep.Samples), len(digests), mismatches)
}
