package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/loadgen"
	"disco/internal/proto"
	"disco/internal/router"
	"disco/internal/serving"
)

// replicaOpts is the per-replica federation configuration of the router
// soak: identical across replicas (the replication premise) and across
// restarts (so a revived replica answers exactly like its predecessor).
func replicaOpts() serving.Options {
	return serving.Options{
		Parts:        soakParts,
		Feedback:     true,
		MaxInFlight:  64,
		QueueTimeout: 2 * time.Second,
	}
}

// startSoakReplica serves one demo federation on addr ("" = ephemeral).
func startSoakReplica(t *testing.T, addr string) (string, *serving.Server) {
	t.Helper()
	fed, err := serving.NewDemoFederation(replicaOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(fed, time.Minute)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// Rebinding the address of a just-closed listener can transiently
	// fail; retry briefly.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 50 {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

// TestSoakRouter is the federation chaos gate (`make ci-router`): the
// fixed-seed chaos workload driven through a discorouter-fronted
// replica set of three, over real sockets, under the race detector —
// with one replica killed mid-run and restarted on the same address
// before the run ends. The gate asserts:
//
//   - zero wedged clients: the router's retry/failover discipline rides
//     out the outage without any request hitting the wedge timeout,
//   - zero error responses and zero partial answers: every statement —
//     routed, scattered, or failed over — returns a complete answer,
//   - zero digest mismatches: every sampled result (including
//     scatter-gather merges and post-failover re-executions) matches a
//     fresh single-mediator oracle,
//   - the failover path actually ran (the kill was not a no-op).
func TestSoakRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("soak gate is not a -short test")
	}
	addrs := make([]string, 3)
	srvs := make([]*serving.Server, 3)
	for i := range addrs {
		addrs[i], srvs[i] = startSoakReplica(t, "")
	}
	defer func() {
		for _, srv := range srvs {
			srv.Shutdown(10 * time.Second)
		}
	}()

	rt, err := router.New(router.Config{
		Replicas: []router.ReplicaConfig{
			{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]},
		},
		Partitions:   router.DemoPartitions(soakParts),
		PollInterval: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rsrv := serving.NewConnServer(rt, time.Minute, rt.Close)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve(rln)
	defer rsrv.Shutdown(10 * time.Second)

	const clients, perClient = 128, 20
	sched, err := loadgen.Generate(loadgen.Config{
		Seed:        42,
		Clients:     clients,
		Requests:    perClient,
		Templates:   loadgen.DemoTemplates(soakParts),
		Mix:         loadgen.DefaultMix(),
		SampleEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Chaos: kill replica 1 a second into the run, bring a fresh replica
	// up on the same address two seconds later. The router must mark it
	// down, reroute its ring share, then revive it via the stats poll
	// (and re-warm it — the restart resets its catalog epoch history).
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		time.Sleep(1 * time.Second)
		srvs[1].Shutdown(5 * time.Second)
		time.Sleep(2 * time.Second)
		_, srvs[1] = startSoakReplica(t, addrs[1])
	}()

	rep, err := loadgen.Drive(sched, loadgen.DriveOptions{
		Addrs:          []string{rln.Addr().String()},
		RequestTimeout: 60 * time.Second,
	})
	chaos.Wait()
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	t.Logf("router soak: ok=%d shed=%d errors=%d partials=%d p50=%.1fms p99=%.1fms qps=%.0f "+
		"routed=%d scattered=%d failovers=%d shed-retries=%d gossips=%d warms=%d",
		rep.OK, rep.Shed, rep.Errors, rep.Partials, rep.P50MS, rep.P99MS, rep.QPS,
		st.Routed, st.Scattered, st.Failovers, st.ShedRetries, st.Gossips, st.Warms)
	for _, ts := range rep.PerTarget {
		t.Logf("router soak: target %-24s ok=%-6d shed=%-5d errors=%-5d p99=%.1fms shards=%d shard-rows=%d",
			ts.Target, ts.OK, ts.Shed, ts.Errors, ts.P99MS, ts.ShardsServed, ts.ShardRows)
	}

	if rep.Wedged != 0 {
		t.Fatalf("%d wedged clients: %v", rep.Wedged, rep.WedgedClients)
	}
	if rep.Requests != clients*perClient {
		t.Errorf("attempted %d requests, schedule had %d", rep.Requests, clients*perClient)
	}
	if rep.Errors != 0 {
		t.Errorf("%d error responses", rep.Errors)
	}
	if rep.Partials != 0 {
		t.Errorf("%d partial answers — failover should cover a single-replica outage", rep.Partials)
	}
	if rep.OK < rep.Requests/2 {
		t.Errorf("only %d/%d requests succeeded (shed=%d)", rep.OK, rep.Requests, rep.Shed)
	}
	if rep.P99MS > 20000 {
		t.Errorf("p99 = %.1f ms exceeds the 20s soak bound", rep.P99MS)
	}
	if st.Failovers == 0 {
		t.Error("the killed replica never forced a failover — the outage was a no-op")
	}
	if st.Scattered == 0 {
		t.Error("no statement took the scatter-gather path")
	}
	// Shard attribution: the scan work behind every scatter-gather merge
	// is credited to real replica addresses, never to the synthetic
	// rollup targets.
	shardCredits := 0
	for _, ts := range rep.PerTarget {
		if ts.ShardsServed == 0 {
			continue
		}
		if strings.HasPrefix(ts.Target, "scatter:") || ts.Target == "gossip" {
			t.Errorf("shard work credited to synthetic target %q", ts.Target)
		}
		shardCredits += ts.ShardsServed
	}
	if shardCredits == 0 {
		t.Error("scatter-gather ran but no shard work was attributed to any replica")
	}

	// Oracle pass: every sampled answer — single-replica, scattered, or
	// re-executed after failover — must match a fresh, feedback-off,
	// single-mediator replay digest-for-digest.
	if len(rep.Samples) == 0 {
		t.Fatal("no oracle samples recorded")
	}
	oracle, err := serving.NewDemoFederation(serving.Options{Parts: soakParts})
	if err != nil {
		t.Fatal(err)
	}
	digests := make(map[string]uint64)
	mismatches := 0
	for _, s := range rep.Samples {
		want, ok := digests[s.SQL]
		if !ok {
			res, err := oracle.Med.Query(s.SQL)
			if err != nil {
				t.Fatalf("oracle: %s: %v", s.SQL, err)
			}
			rows := make([][]any, len(res.Rows))
			for i, row := range res.Rows {
				rows[i] = proto.EncodeRow(row)
			}
			want = loadgen.HashRows(rows)
			digests[s.SQL] = want
		}
		if s.Hash != want {
			mismatches++
			t.Errorf("result mismatch: client %d request %d %q: digest %x, oracle %x (%d rows)",
				s.Client, s.Request, s.SQL, s.Hash, want, s.Rows)
		}
	}
	t.Logf("oracle: %d samples over %d distinct statements, %d mismatches",
		len(rep.Samples), len(digests), mismatches)
}
