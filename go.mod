module disco

go 1.22
