package feedback

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// SnapshotVersion is the current snapshot format version. Snapshots with
// a different version load as empty: corrections are cheap to relearn,
// silently misreading a foreign format is not.
const SnapshotVersion = 1

// ScopeState is one q-error accumulator's persisted state.
type ScopeState struct {
	Count  int64     `json:"count"`
	Max    float64   `json:"max"`
	Window []float64 `json:"window,omitempty"`
}

// Snapshot is the JSON-serializable state of the feedback loop: learned
// cardinality corrections, fitted coefficients and q-error accumulators.
type Snapshot struct {
	Version int                   `json:"version"`
	Cards   []CardCorrection      `json:"cards,omitempty"`
	Coeffs  map[string]float64    `json:"coeffs,omitempty"`
	Scopes  map[string]ScopeState `json:"scopes,omitempty"`
}

// Store persists feedback snapshots across mediator restarts.
type Store interface {
	// Save replaces the persisted snapshot.
	Save(*Snapshot) error
	// Load returns the persisted snapshot. A missing or corrupt snapshot
	// loads as an empty one with no error: learned corrections are an
	// optimization, never a reason to refuse startup.
	Load() (*Snapshot, error)
}

// MemStore is the in-memory Store: snapshots survive re-wiring within a
// process but not a restart. The zero value is ready to use.
type MemStore struct {
	snap *Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store.
func (s *MemStore) Save(snap *Snapshot) error {
	s.snap = snap
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (*Snapshot, error) {
	if s.snap == nil {
		return &Snapshot{Version: SnapshotVersion}, nil
	}
	return s.snap, nil
}

// FileStore persists snapshots as a JSON file, written atomically
// (temp file + rename) so a crash mid-save never corrupts the previous
// snapshot.
type FileStore struct {
	Path string
}

// NewFileStore returns a file-backed store at path.
func NewFileStore(path string) *FileStore { return &FileStore{Path: path} }

// Save implements Store.
func (s *FileStore) Save(snap *Snapshot) error {
	if snap == nil {
		snap = &Snapshot{}
	}
	snap.Version = SnapshotVersion
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, ".feedback-*.json")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, s.Path)
}

// Load implements Store. Any unreadable, unparsable or wrong-version file
// yields an empty snapshot and no error.
func (s *FileStore) Load() (*Snapshot, error) {
	empty := &Snapshot{Version: SnapshotVersion}
	data, err := os.ReadFile(s.Path)
	if err != nil {
		return empty, nil
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return empty, nil
	}
	if snap.Version != SnapshotVersion {
		return empty, nil
	}
	return sanitize(&snap), nil
}

// sanitize drops snapshot entries no statistic should absorb (negative
// counts, non-finite factors); a hand-edited or bit-rotted snapshot
// degrades to fewer corrections, never to a poisoned model or a panic.
func sanitize(s *Snapshot) *Snapshot {
	out := &Snapshot{Version: s.Version, Coeffs: make(map[string]float64)}
	for _, c := range s.Cards {
		if c.Wrapper == "" || c.Collection == "" || c.Base < 0 ||
			c.Factor <= 0 || isBad(c.Factor) || c.Samples < 0 || c.ObjectSize < 0 {
			continue
		}
		out.Cards = append(out.Cards, c)
	}
	for name, v := range s.Coeffs {
		if name == "" || v <= 0 || isBad(v) {
			continue
		}
		out.Coeffs[name] = v
	}
	if len(s.Scopes) > 0 {
		out.Scopes = make(map[string]ScopeState, len(s.Scopes))
		for key, st := range s.Scopes {
			if key == "" || st.Count < 0 || isBad(st.Max) {
				continue
			}
			w := st.Window[:0:0]
			for _, q := range st.Window {
				if q >= 1 && !isBad(q) {
					w = append(w, q)
				}
			}
			st.Window = w
			out.Scopes[key] = st
		}
	}
	return out
}

// Capture assembles a snapshot from the live recorder and adjuster
// (either may be nil).
func Capture(rec *Recorder, adj *Adjuster, globals map[string]float64) *Snapshot {
	snap := &Snapshot{Version: SnapshotVersion}
	if adj != nil {
		snap.Cards = adj.Corrections()
	}
	if len(globals) > 0 {
		snap.Coeffs = globals
	}
	if rec != nil {
		snap.Scopes = rec.scopeStates()
	}
	return snap
}

// Restore loads a snapshot into the recorder and adjuster (either may be
// nil). Catalog statistics are not touched here: the adjuster re-applies
// its corrections when collections register (Adjuster.Reapply).
func Restore(snap *Snapshot, rec *Recorder, adj *Adjuster) {
	if snap == nil {
		return
	}
	if adj != nil {
		adj.restoreCards(snap.Cards)
	}
	if rec != nil && len(snap.Scopes) > 0 {
		rec.restoreScopes(snap.Scopes)
	}
}
