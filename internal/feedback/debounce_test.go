package feedback

import (
	"testing"
	"time"
)

func snapWithCoeff(v float64) func() *Snapshot {
	return func() *Snapshot {
		return &Snapshot{Version: SnapshotVersion, Coeffs: map[string]float64{"x": v}}
	}
}

func TestDebouncerCoalesces(t *testing.T) {
	store := NewMemStore()
	d := NewDebouncer(store, time.Hour)
	for i := 0; i < 50; i++ {
		if err := d.Mark(snapWithCoeff(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Saves(); got != 1 {
		t.Errorf("saves inside the window = %d, want 1", got)
	}
	// The store holds the first capture until a flush.
	snap, _ := store.Load()
	if snap.Coeffs["x"] != 0 {
		t.Errorf("pre-flush store coeff = %v, want 0 (first mark)", snap.Coeffs["x"])
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := d.Saves(); got != 2 {
		t.Errorf("saves after flush = %d, want 2", got)
	}
	snap, _ = store.Load()
	if snap.Coeffs["x"] != 49 {
		t.Errorf("flushed coeff = %v, want 49 (latest mark)", snap.Coeffs["x"])
	}
	// Nothing dirty: a second flush writes nothing.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := d.Saves(); got != 2 {
		t.Errorf("clean flush must not save, saves = %d", got)
	}
}

func TestDebouncerNegativeIntervalSavesEveryMark(t *testing.T) {
	store := NewMemStore()
	d := NewDebouncer(store, -1)
	for i := 0; i < 5; i++ {
		if err := d.Mark(snapWithCoeff(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Saves(); got != 5 {
		t.Errorf("saves = %d, want 5", got)
	}
}

func TestDebouncerReopensWindow(t *testing.T) {
	store := NewMemStore()
	d := NewDebouncer(store, 20*time.Millisecond)
	if err := d.Mark(snapWithCoeff(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Mark(snapWithCoeff(2)); err != nil {
		t.Fatal(err)
	}
	if got := d.Saves(); got != 1 {
		t.Fatalf("saves inside window = %d, want 1", got)
	}
	time.Sleep(25 * time.Millisecond)
	if err := d.Mark(snapWithCoeff(3)); err != nil {
		t.Fatal(err)
	}
	if got := d.Saves(); got != 2 {
		t.Errorf("mark past the window must save, saves = %d", got)
	}
	snap, _ := store.Load()
	if snap.Coeffs["x"] != 3 {
		t.Errorf("coeff = %v, want 3", snap.Coeffs["x"])
	}
}
