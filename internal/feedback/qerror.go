package feedback

import "sort"

// Accumulator maintains the q-error distribution of one scope: a lifetime
// count and maximum plus a ring-buffered window of recent observations
// from which percentiles are answered. The ring bounds memory on
// long-running daemons while keeping quantiles responsive to the current
// workload rather than diluted by ancient history.
type Accumulator struct {
	ring   []float64
	next   int
	filled int
	count  int64
	max    float64
}

// defaultWindow is the ring size when none is given: large enough for
// stable percentiles, small enough to forget a superseded regime.
const defaultWindow = 256

// NewAccumulator builds an accumulator with the given ring window
// (window <= 0 uses the default).
func NewAccumulator(window int) *Accumulator {
	if window <= 0 {
		window = defaultWindow
	}
	return &Accumulator{ring: make([]float64, window)}
}

// Add records one q-error observation.
func (a *Accumulator) Add(q float64) {
	if q < 1 { // q-errors are >= 1 by construction; guard foreign input
		q = 1
	}
	a.ring[a.next] = q
	a.next = (a.next + 1) % len(a.ring)
	if a.filled < len(a.ring) {
		a.filled++
	}
	a.count++
	if q > a.max {
		a.max = q
	}
}

// Count is the lifetime number of observations.
func (a *Accumulator) Count() int64 { return a.count }

// Max is the lifetime maximum q-error.
func (a *Accumulator) Max() float64 { return a.max }

// Quantile answers the p-quantile (0 <= p <= 1) over the ring window
// using nearest-rank; 0 when nothing has been observed.
func (a *Accumulator) Quantile(p float64) float64 {
	if a.filled == 0 {
		return 0
	}
	w := make([]float64, a.filled)
	copy(w, a.ring[:a.filled])
	sort.Float64s(w)
	i := int(p*float64(len(w)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(w) {
		i = len(w) - 1
	}
	return w[i]
}

// Median is the 0.5-quantile over the window.
func (a *Accumulator) Median() float64 { return a.Quantile(0.5) }

// Window returns a copy of the ring contents, oldest first.
func (a *Accumulator) Window() []float64 {
	out := make([]float64, 0, a.filled)
	if a.filled == len(a.ring) {
		out = append(out, a.ring[a.next:]...)
		out = append(out, a.ring[:a.next]...)
		return out
	}
	return append(out, a.ring[:a.filled]...)
}

// state captures the accumulator for a snapshot.
func (a *Accumulator) state() ScopeState {
	return ScopeState{Count: a.count, Max: a.max, Window: a.Window()}
}

// restore loads a snapshot state; invalid entries are dropped.
func (a *Accumulator) restore(s ScopeState) {
	a.count = s.Count
	if a.count < 0 {
		a.count = 0
	}
	a.max = s.Max
	if a.max < 0 {
		a.max = 0
	}
	a.next, a.filled = 0, 0
	for _, q := range s.Window {
		if q >= 1 && !isBad(q) {
			a.ring[a.next] = q
			a.next = (a.next + 1) % len(a.ring)
			if a.filled < len(a.ring) {
				a.filled++
			}
		}
	}
}
