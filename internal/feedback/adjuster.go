package feedback

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"disco/internal/algebra"
	"disco/internal/calibration"
	"disco/internal/catalog"
	"disco/internal/stats"
	"disco/internal/types"
)

// Adjuster feeds execution observations back into the cost model: it
// refines catalog extent cardinalities, attribute selectivities and
// histogram bucket weights toward observed cardinalities, and re-fits the
// calibrated mediator coefficients from observed per-operator times.
// Every correction is bounded and exponentially decayed so a single
// outlier observation cannot poison the model.
type Adjuster struct {
	// Gain is the fraction of each observed log-ratio applied per update
	// (exponential smoothing in log space); 1 jumps to the implied value.
	Gain float64
	// MaxStep bounds one update's multiplicative change.
	MaxStep float64
	// MaxFactor bounds the total correction applied to any registered
	// statistic, keeping a broken feedback signal recoverable.
	MaxFactor float64

	mu     sync.Mutex
	cards  map[string]*CardCorrection
	coeffs map[string]*coeffFit
}

// NewAdjuster returns an adjuster with moderate damping: half of each
// observed log-error is applied, no single update moves a statistic by
// more than 4x, and no statistic drifts further than 64x from its
// registered value.
func NewAdjuster() *Adjuster {
	return &Adjuster{
		Gain:      0.5,
		MaxStep:   4,
		MaxFactor: 64,
		cards:     make(map[string]*CardCorrection),
		coeffs:    make(map[string]*coeffFit),
	}
}

// CardCorrection is the learned cardinality correction of one registered
// collection: the catalog's extent is held at round(Base*Factor), where
// Base is the wrapper-registered count and Factor the exponentially
// smoothed actual/estimated ratio.
type CardCorrection struct {
	Wrapper    string  `json:"wrapper"`
	Collection string  `json:"collection"`
	Base       int64   `json:"base"`
	Factor     float64 `json:"factor"`
	Samples    int64   `json:"samples"`
	// ObjectSize is the learned average shipped object size for a source
	// that registered no extent of its own (0 otherwise): it lets a
	// restart reinstate the learned extent with a usable TotalSize.
	ObjectSize int64 `json:"objectSize,omitempty"`

	// applied is the extent value this adjuster last wrote, so Reapply
	// can tell its own writes from a fresh (re-)registration to rebase
	// against. Not persisted: after a restore the first Reapply rebases.
	applied int64
}

// coeffFit accumulates recent (work, own-time) samples of one mediator
// coefficient; the ring is the decay (old samples fall out).
type coeffFit struct {
	xs, ys []float64
	next   int
	filled int
	count  int64
}

const coeffWindow = 64

func (c *coeffFit) add(x, y float64) {
	if len(c.xs) == 0 {
		c.xs = make([]float64, coeffWindow)
		c.ys = make([]float64, coeffWindow)
	}
	c.xs[c.next], c.ys[c.next] = x, y
	c.next = (c.next + 1) % len(c.xs)
	if c.filled < len(c.xs) {
		c.filled++
	}
	c.count++
}

// Adjustment describes one applied correction, for experiment tables and
// diagnostics.
type Adjustment struct {
	Kind   string // "extent", "extent-learned", "distinct", "histogram" or "coeff"
	Target string
	Old    float64
	New    float64
}

// CostOnly reports whether the correction touched only the calibrated
// time model (a "coeff" refit) and not the catalog statistics. Cost-only
// corrections change which plan the optimizer prefers but not what any
// plan returns, so consumers invalidating materialized results on
// feedback can skip them — coefficient refits converge asymptotically
// and fire on almost every absorbed execution.
func (a Adjustment) CostOnly() bool { return a.Kind == "coeff" }

func (a Adjustment) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g", a.Kind, a.Target, a.Old, a.New)
}

// Apply folds one execution report into the model: submit-boundary
// cardinalities correct the source collections' extents (and rescale
// their histograms), mediator-side selection cardinalities refine
// attribute selectivities, and mediator-side operator times re-fit the
// Med* coefficients in the estimator's globals. It returns the applied
// corrections.
func (a *Adjuster) Apply(rep *Report, cat *catalog.Catalog, globals map[string]types.Constant) []Adjustment {
	if rep == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Adjustment
	for i := range rep.Obs {
		o := &rep.Obs[i]
		if o.Excluded {
			continue
		}
		switch {
		case o.Node.Kind == algebra.OpSubmit:
			if cat != nil {
				out = append(out, a.correctExtent(o, cat)...)
			}
		case o.Site == "mediator" && o.Node.Kind == algebra.OpSelect:
			if cat != nil {
				out = append(out, a.refineSelectivity(o, cat)...)
			}
			if globals != nil {
				out = append(out, a.refitCoeff(o, globals)...)
			}
		case o.Site == "mediator":
			if globals != nil {
				out = append(out, a.refitCoeff(o, globals)...)
			}
		}
	}
	return out
}

// correctExtent attributes a submit boundary's actual/estimated
// cardinality ratio to the extent of the collection the subtree derives
// from. Subtrees combining several collections (joins, unions) carry no
// single attributable extent and are skipped.
func (a *Adjuster) correctExtent(o *Obs, cat *catalog.Catalog) []Adjustment {
	scan := derivedScan(o.Node)
	if scan == nil {
		return nil
	}
	wrapperName := o.Node.Wrapper
	if wrapperName == "" {
		wrapperName = scan.Wrapper
	}
	info := lookupCollection(cat, wrapperName, scan.Collection)
	if info == nil {
		return nil
	}
	key := wrapperName + "\x00" + scan.Collection
	if !info.HasExtent {
		// The source registered no statistics at all (flat files "export
		// no statistics"): adopt the observed cardinality as a learned
		// extent so estimation has something better than the defaults.
		// The chain is selection-free, so ActRows IS the extent.
		n := int64(math.Round(math.Max(o.ActRows, 1)))
		c := &CardCorrection{
			Wrapper: wrapperName, Collection: scan.Collection,
			Base: n, Factor: 1, Samples: 1,
		}
		if o.Bytes > 0 {
			c.ObjectSize = o.Bytes / n
		}
		a.cards[key] = c
		info.HasExtent = true
		info.Extent.ObjectSize = c.ObjectSize
		a.writeExtent(info, c)
		return []Adjustment{{
			Kind:   "extent-learned",
			Target: wrapperName + "/" + scan.Collection,
			Old:    0,
			New:    float64(info.Extent.CountObject),
		}}
	}
	c, ok := a.cards[key]
	if !ok {
		c = &CardCorrection{
			Wrapper:    wrapperName,
			Collection: scan.Collection,
			Base:       info.Extent.CountObject,
			Factor:     1,
		}
		a.cards[key] = c
	} else if c.applied != info.Extent.CountObject {
		// The collection was re-registered since our last write: the
		// current catalog value is the wrapper's fresh claim. Rebase.
		c.Base = info.Extent.CountObject
	}
	ratio := math.Max(o.ActRows, 1) / math.Max(o.EstRows, 1)
	step := math.Exp(a.Gain * math.Log(ratio))
	step = clampF(step, 1/a.MaxStep, a.MaxStep)
	c.Factor = clampF(c.Factor*step, 1/a.MaxFactor, a.MaxFactor)
	c.Samples++
	old := float64(info.Extent.CountObject)
	a.writeExtent(info, c)
	if info.Extent.CountObject == int64(old) {
		return nil
	}
	return []Adjustment{{
		Kind:   "extent",
		Target: wrapperName + "/" + scan.Collection,
		Old:    old,
		New:    float64(info.Extent.CountObject),
	}}
}

// writeExtent installs a correction into the catalog entry, keeping the
// derived statistics consistent: TotalSize tracks the corrected count and
// every histogram is rescaled so its mass matches the corrected extent.
func (a *Adjuster) writeExtent(info *catalog.CollectionInfo, c *CardCorrection) {
	n := int64(math.Round(float64(c.Base) * c.Factor))
	if n < 1 {
		n = 1
	}
	prev := info.Extent.CountObject
	info.Extent.CountObject = n
	if info.Extent.ObjectSize == 0 && c.ObjectSize > 0 {
		info.Extent.ObjectSize = c.ObjectSize
	}
	if info.Extent.ObjectSize > 0 {
		info.Extent.TotalSize = n * info.Extent.ObjectSize
	} else if prev > 0 {
		info.Extent.TotalSize = int64(math.Round(float64(info.Extent.TotalSize) * float64(n) / float64(prev)))
	}
	c.applied = n
	for attr, ast := range info.Attrs {
		if ast.Histogram == nil || ast.Histogram.Total == n || ast.Histogram.Total <= 0 {
			continue
		}
		ast.Histogram = scaleHistogram(ast.Histogram, n)
		info.Attrs[attr] = ast
	}
}

// scaleHistogram returns a copy whose total mass is target, bucket counts
// scaled proportionally. The original is never mutated: the catalog may
// share histogram pointers with the wrapper's own statistics.
func scaleHistogram(h *stats.Histogram, target int64) *stats.Histogram {
	out := &stats.Histogram{Buckets: make([]stats.Bucket, len(h.Buckets))}
	copy(out.Buckets, h.Buckets)
	scale := float64(target) / float64(h.Total)
	var total int64
	for i := range out.Buckets {
		b := &out.Buckets[i]
		b.Count = int64(math.Round(float64(b.Count) * scale))
		if b.Count < 0 {
			b.Count = 0
		}
		if b.Distinct > b.Count && b.Count > 0 {
			b.Distinct = b.Count
		}
		total += b.Count
	}
	out.Total = total
	return out
}

// refineSelectivity nudges an attribute's statistics toward the observed
// selectivity of a mediator-side selection (rows out / rows in). Only
// single-comparison predicates against a constant are attributable.
func (a *Adjuster) refineSelectivity(o *Obs, cat *catalog.Catalog) []Adjustment {
	n := o.Node
	if n.Pred == nil || len(n.Pred.Conjuncts) != 1 || o.ActIn <= 0 {
		return nil
	}
	cmp := n.Pred.Conjuncts[0]
	if cmp.RightAttr != nil || cmp.RightConst.IsNull() {
		return nil
	}
	scan := findScan(n, cmp.Left)
	if scan == nil {
		return nil
	}
	info := lookupCollection(cat, scan.Wrapper, scan.Collection)
	if info == nil {
		return nil
	}
	key := lowerASCII(cmp.Left.Attr)
	ast, ok := info.Attrs[key]
	if !ok {
		return nil
	}
	estSel := ast.Selectivity(cmp.Op, cmp.RightConst)
	obsSel := o.ActRows / o.ActIn
	if estSel <= 0 || isBad(obsSel) {
		return nil
	}
	// Damped in log space, floored so an empty result cannot zero the
	// statistic out.
	lo := math.Max(obsSel, 1e-6)
	newSel := math.Exp(math.Log(estSel) + a.Gain*(math.Log(lo)-math.Log(estSel)))
	newSel = clampF(newSel, estSel/a.MaxStep, estSel*a.MaxStep)
	newSel = clampF(newSel, 1e-9, 1)
	target := scan.Wrapper + "/" + scan.Collection + "." + key

	switch cmp.Op {
	case stats.CmpEQ:
		if ast.Histogram != nil {
			h, changed := retuneBucketDistinct(ast.Histogram, cmp.RightConst, newSel)
			if !changed {
				return nil
			}
			ast.Histogram = h
			info.Attrs[key] = ast
			return []Adjustment{{Kind: "histogram", Target: target, Old: estSel, New: newSel}}
		}
		old := ast.CountDistinct
		d := int64(math.Round(1 / newSel))
		if d < 1 {
			d = 1
		}
		if d == old {
			return nil
		}
		ast.CountDistinct = d
		info.Attrs[key] = ast
		return []Adjustment{{Kind: "distinct", Target: target, Old: float64(old), New: float64(d)}}
	case stats.CmpLT, stats.CmpLE, stats.CmpGT, stats.CmpGE:
		if ast.Histogram == nil {
			return nil // uniform min/max model: nothing safely adjustable
		}
		below := newSel
		if cmp.Op == stats.CmpGT || cmp.Op == stats.CmpGE {
			below = 1 - newSel
		}
		h, changed := reweightHistogram(ast.Histogram, cmp.RightConst, below)
		if !changed {
			return nil
		}
		ast.Histogram = h
		info.Attrs[key] = ast
		return []Adjustment{{Kind: "histogram", Target: target, Old: estSel, New: newSel}}
	default:
		return nil
	}
}

// retuneBucketDistinct adjusts the distinct count of the bucket holding
// value so the histogram's equality selectivity approaches sel. Works on
// a copy; reports whether anything changed.
func retuneBucketDistinct(h *stats.Histogram, value types.Constant, sel float64) (*stats.Histogram, bool) {
	if h.Total <= 0 || sel <= 0 {
		return h, false
	}
	out := &stats.Histogram{Buckets: make([]stats.Bucket, len(h.Buckets)), Total: h.Total}
	copy(out.Buckets, h.Buckets)
	for i := range out.Buckets {
		b := &out.Buckets[i]
		if !bucketContains(out, i, value) || b.Count <= 0 {
			continue
		}
		// sel = Count/Distinct/Total  =>  Distinct = Count/(sel*Total).
		d := int64(math.Round(float64(b.Count) / (sel * float64(h.Total))))
		if d < 1 {
			d = 1
		}
		if d > b.Count {
			d = b.Count
		}
		if d == b.Distinct {
			return h, false
		}
		b.Distinct = d
		return out, true
	}
	return h, false
}

// bucketContains mirrors the histogram's bucket membership rule: buckets
// are half-open [Lo, Hi) except the last, which is closed.
func bucketContains(h *stats.Histogram, i int, v types.Constant) bool {
	b := h.Buckets[i]
	if v.Compare(b.Lo) < 0 {
		return false
	}
	if i == len(h.Buckets)-1 {
		return v.Compare(b.Hi) <= 0
	}
	return v.Compare(b.Hi) < 0
}

// reweightHistogram shifts bucket mass so the cumulative fraction below
// the cut approaches target, preserving the total. Works on a copy.
func reweightHistogram(h *stats.Histogram, cut types.Constant, target float64) (*stats.Histogram, bool) {
	if h.Total <= 0 {
		return h, false
	}
	target = clampF(target, 0.001, 0.999)
	// Current split around the cut, counting partial buckets by the
	// uniform within-bucket assumption.
	var below float64
	for _, b := range h.Buckets {
		switch {
		case cut.Compare(b.Hi) >= 0:
			below += float64(b.Count)
		case cut.Compare(b.Lo) <= 0:
		default:
			below += types.Fraction(cut, b.Lo, b.Hi) * float64(b.Count)
		}
	}
	total := float64(h.Total)
	cur := below / total
	if cur <= 0 || cur >= 1 || math.Abs(cur-target) < 1e-9 {
		return h, false
	}
	wBelow := target / cur
	wAbove := (1 - target) / (1 - cur)
	out := &stats.Histogram{Buckets: make([]stats.Bucket, len(h.Buckets))}
	copy(out.Buckets, h.Buckets)
	var sum int64
	for i := range out.Buckets {
		b := &out.Buckets[i]
		var w float64
		switch {
		case cut.Compare(b.Hi) >= 0:
			w = wBelow
		case cut.Compare(b.Lo) <= 0:
			w = wAbove
		default:
			f := types.Fraction(cut, b.Lo, b.Hi)
			w = f*wBelow + (1-f)*wAbove
		}
		b.Count = int64(math.Round(float64(b.Count) * w))
		if b.Count < 0 {
			b.Count = 0
		}
		if b.Distinct > b.Count && b.Count > 0 {
			b.Distinct = b.Count
		}
		sum += b.Count
	}
	out.Total = sum
	if out.Total <= 0 {
		return h, false
	}
	return out, true
}

// medCoeff maps a mediator-side operator to the generic-model coefficient
// its engine cost mirrors and the work measure x such that
// own-time = coeff * x. Operators charging several coefficients at once
// (join, aggregate, union) are not attributable to a single one.
func medCoeff(o *Obs) (name string, x float64, ok bool) {
	switch o.Node.Kind {
	case algebra.OpSelect:
		return "MedPerPred", o.ActIn, true
	case algebra.OpProject:
		return "MedProjPerObj", o.ActIn, true
	case algebra.OpSort:
		return "MedSortPerObj", nLogN(o.ActIn), true
	case algebra.OpDupElim:
		return "MedHashPerObj", o.ActIn, true
	default:
		return "", 0, false
	}
}

// refitCoeff folds one mediator-side operator observation into the
// through-origin fit of its coefficient and installs a damped, bounded
// update into the estimator's globals.
func (a *Adjuster) refitCoeff(o *Obs, globals map[string]types.Constant) []Adjustment {
	name, x, ok := medCoeff(o)
	if !ok || x <= 0 || o.OwnMS < 0 || isBad(o.OwnMS) {
		return nil
	}
	cur, ok := globals[name]
	if !ok {
		return nil
	}
	curF := cur.AsFloat()
	if curF <= 0 {
		return nil
	}
	f := a.coeffs[name]
	if f == nil {
		f = &coeffFit{}
		a.coeffs[name] = f
	}
	f.add(x, o.OwnMS)
	slope, ok := calibration.FitThroughOrigin(f.xs[:f.filled], f.ys[:f.filled], nil)
	if !ok || slope <= 0 {
		return nil
	}
	ratio := clampF(slope/curF, 1/a.MaxStep, a.MaxStep)
	next := curF * math.Exp(a.Gain*math.Log(ratio))
	if next <= 0 || isBad(next) || next == curF {
		return nil
	}
	globals[name] = types.Float(next)
	return []Adjustment{{Kind: "coeff", Target: name, Old: curF, New: next}}
}

// Reapply installs every learned cardinality correction into the catalog
// (after a snapshot restore or a wrapper re-registration) and returns the
// number of collections touched. Fresh registrations become the new
// correction base.
func (a *Adjuster) Reapply(cat *catalog.Catalog) int {
	if cat == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.cards {
		info := lookupCollection(cat, c.Wrapper, c.Collection)
		if info == nil {
			continue
		}
		switch {
		case !info.HasExtent:
			// The source still exports no statistics: reinstate the
			// learned extent as-is.
			info.HasExtent = true
		case c.applied != info.Extent.CountObject:
			c.Base = info.Extent.CountObject
		}
		a.writeExtent(info, c)
		n++
	}
	return n
}

// Corrections returns the learned cardinality corrections, sorted by
// wrapper then collection.
func (a *Adjuster) Corrections() []CardCorrection {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]CardCorrection, 0, len(a.cards))
	for _, c := range a.cards {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wrapper != out[j].Wrapper {
			return out[i].Wrapper < out[j].Wrapper
		}
		return out[i].Collection < out[j].Collection
	})
	return out
}

// FittedCoeffs returns the currently fitted coefficient values.
func (a *Adjuster) FittedCoeffs(globals map[string]types.Constant) map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.coeffs))
	for name := range a.coeffs {
		if v, ok := globals[name]; ok {
			out[name] = v.AsFloat()
		}
	}
	return out
}

// restoreCards loads card corrections from a snapshot, dropping invalid
// entries rather than failing.
func (a *Adjuster) restoreCards(cards []CardCorrection) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range cards {
		if c.Wrapper == "" || c.Collection == "" || c.Base < 0 ||
			c.Factor <= 0 || isBad(c.Factor) || c.ObjectSize < 0 {
			continue
		}
		cc := c
		cc.Factor = clampF(cc.Factor, 1/a.MaxFactor, a.MaxFactor)
		cc.applied = 0 // force a rebase on the next Reapply
		a.cards[cc.Wrapper+"\x00"+cc.Collection] = &cc
	}
}

// derivedScan returns the single scan a submit's subtree derives from,
// walking through cardinality-preserving single-child chains; nil when
// the subtree changes cardinality at all — selections included. A
// selective chain's actual rows confound predicate selectivity error
// with extent error: attributing them to the extent makes the two
// corrections fight each other (the factor oscillates between the
// equilibria of differently selective queries), so only selection-free
// subtrees, whose row count IS the extent, correct it.
func derivedScan(n *algebra.Node) *algebra.Node {
	for n != nil {
		switch n.Kind {
		case algebra.OpScan:
			return n
		case algebra.OpProject, algebra.OpSort, algebra.OpSubmit:
			if len(n.Children) != 1 {
				return nil
			}
			n = n.Children[0]
		default:
			return nil
		}
	}
	return nil
}

// findScan locates the scan a selection's attribute reference resolves
// against: the unique scan of the subtree, or the one matching the
// reference's collection qualifier.
func findScan(n *algebra.Node, ref algebra.Ref) *algebra.Node {
	scans := n.Scans()
	if len(scans) == 1 {
		return scans[0]
	}
	if ref.Collection == "" {
		return nil
	}
	var found *algebra.Node
	for _, s := range scans {
		if equalFold(s.Collection, ref.Collection) {
			if found != nil {
				return nil
			}
			found = s
		}
	}
	return found
}

func lookupCollection(cat *catalog.Catalog, wrapperName, collection string) *catalog.CollectionInfo {
	e, ok := cat.Entry(wrapperName)
	if !ok {
		return nil
	}
	if info, ok := e.Collections[collection]; ok {
		return info
	}
	for name, info := range e.Collections {
		if equalFold(name, collection) {
			return info
		}
	}
	return nil
}

// nLogN mirrors engine.nLogN: the work measure of the mediator's sort.
func nLogN(nf float64) float64 {
	n := int(nf)
	if n < 2 {
		return nf
	}
	l := 0.0
	for x := n + 2; x > 1; x >>= 1 {
		l++
	}
	return float64(n) * l
}

func clampF(x, lo, hi float64) float64 {
	if x < lo || isBad(x) {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func equalFold(a, b string) bool { return lowerASCII(a) == lowerASCII(b) }
