package feedback

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/algebra"
	"disco/internal/core"
)

// Obs is one joined (prediction, actual) observation for a plan node —
// the unit both the q-error accumulators and the Adjuster consume.
type Obs struct {
	Node *algebra.Node
	// Site is the executing location: a wrapper name for submits and the
	// operators below them, "mediator" for mediator-side operators.
	Site string
	// Scope is the accumulator key, "site/operator".
	Scope string

	EstRows float64
	ActRows float64
	ActIn   float64 // rows the operator consumed (actual)
	EstMS   float64 // estimated subtree TotalTime
	ActMS   float64 // measured subtree virtual time
	OwnMS   float64 // measured own (non-subtree) virtual time
	Bytes   int64   // bytes shipped (submit boundaries only)

	QRows float64
	QMS   float64

	// Excluded marks a submit skipped because its wrapper was down: the
	// zero actuals describe an outage, not an estimation error, so the
	// accumulators and the Adjuster ignore the observation.
	Excluded bool
}

// Report is the joined record of one executed plan.
type Report struct {
	Plan      *algebra.Node
	Obs       []Obs
	ElapsedMS float64
	EstMS     float64
	Partial   bool
}

// MedianCardQ is the median cardinality q-error across this report's
// usable observations (0 when none).
func (r *Report) MedianCardQ() float64 {
	qs := make([]float64, 0, len(r.Obs))
	for _, o := range r.Obs {
		if !o.Excluded {
			qs = append(qs, o.QRows)
		}
	}
	if len(qs) == 0 {
		return 0
	}
	sort.Float64s(qs)
	return qs[len(qs)/2]
}

// MaxCardQ is the maximum cardinality q-error across usable observations.
func (r *Report) MaxCardQ() float64 {
	max := 0.0
	for _, o := range r.Obs {
		if !o.Excluded && o.QRows > max {
			max = o.QRows
		}
	}
	return max
}

// Recorder joins execution profiles against the estimator's per-node
// predictions and maintains per-scope q-error accumulators. Scopes follow
// the cost model's specialization idea: estimation quality is tracked per
// executing site and operator, so a drifting source stands out instead of
// drowning in the global average.
type Recorder struct {
	mu     sync.Mutex
	window int
	cards  map[string]*Accumulator
	times  map[string]*Accumulator
}

// NewRecorder builds a recorder with the given ring window per scope
// (<= 0 uses the default).
func NewRecorder(window int) *Recorder {
	return &Recorder{
		window: window,
		cards:  make(map[string]*Accumulator),
		times:  make(map[string]*Accumulator),
	}
}

// Observe joins one executed plan's profile against its predicted costs
// and folds the q-errors into the per-scope accumulators. Wrapper-side
// operators below a submit execute opaquely inside the source, so only
// the boundary (the submit itself) and the mediator-side operators above
// it yield actuals.
func (r *Recorder) Observe(plan *algebra.Node, pc *core.PlanCost, prof *Profile) *Report {
	rep := &Report{Plan: plan}
	if prof != nil {
		rep.ElapsedMS = prof.ElapsedMS
		rep.Partial = prof.Partial
	}
	if plan == nil || pc == nil || prof == nil {
		return rep
	}
	if rc, ok := pc.ByNode[plan]; ok {
		rep.EstMS = rc.TotalTime()
	}
	r.walk(plan, "mediator", pc, prof, rep)

	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range rep.Obs {
		o := &rep.Obs[i]
		if o.Excluded {
			continue
		}
		r.scope(r.cards, o.Scope).Add(o.QRows)
		r.scope(r.times, o.Scope).Add(o.QMS)
	}
	return rep
}

func (r *Recorder) walk(n *algebra.Node, site string, pc *core.PlanCost, prof *Profile, rep *Report) {
	if n.Kind == algebra.OpSubmit || n.Kind == algebra.OpScan {
		if n.Wrapper != "" {
			site = n.Wrapper
		}
	}
	act, okA := prof.ByNode[n]
	est, okE := pc.ByNode[n]
	if okA && okE {
		o := Obs{
			Node:     n,
			Site:     site,
			Scope:    site + "/" + n.Kind.String(),
			EstRows:  est.Var("CountObject", 0),
			ActRows:  float64(act.RowsOut),
			ActIn:    float64(act.RowsIn),
			EstMS:    est.TotalTime(),
			ActMS:    act.SubtreeMS,
			OwnMS:    act.OwnMS,
			Bytes:    act.Bytes,
			Excluded: act.Excluded,
		}
		o.QRows = QError(o.EstRows, o.ActRows, 1)
		o.QMS = QError(o.EstMS, o.ActMS, timeFloor)
		rep.Obs = append(rep.Obs, o)
	}
	for _, c := range n.Children {
		r.walk(c, site, pc, prof, rep)
	}
}

func (r *Recorder) scope(m map[string]*Accumulator, key string) *Accumulator {
	a, ok := m[key]
	if !ok {
		a = NewAccumulator(r.window)
		m[key] = a
	}
	return a
}

// ScopeStats is a point-in-time view of one scope's q-error accumulators.
type ScopeStats struct {
	Scope                        string
	Count                        int64
	CardMedian, CardP95, CardMax float64
	TimeMedian, TimeP95, TimeMax float64
}

// Scopes returns the tracked scopes' statistics, sorted by scope name.
func (r *Recorder) Scopes() []ScopeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ScopeStats, 0, len(r.cards))
	for key, c := range r.cards {
		s := ScopeStats{
			Scope:      key,
			Count:      c.Count(),
			CardMedian: c.Median(),
			CardP95:    c.Quantile(0.95),
			CardMax:    c.Max(),
		}
		if t, ok := r.times[key]; ok {
			s.TimeMedian, s.TimeP95, s.TimeMax = t.Median(), t.Quantile(0.95), t.Max()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out
}

// Summary renders the per-scope q-error table for diagnostics (the
// discoctl \feedback view).
func (r *Recorder) Summary() string {
	scopes := r.Scopes()
	if len(scopes) == 0 {
		return "feedback: no executions observed yet\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s  %24s  %24s\n", "scope", "n", "q(card) med/p95/max", "q(time) med/p95/max")
	for _, s := range scopes {
		fmt.Fprintf(&b, "%-28s %6d  %7.2f %7.2f %8.2f  %7.2f %7.2f %8.2f\n",
			s.Scope, s.Count, s.CardMedian, s.CardP95, s.CardMax,
			s.TimeMedian, s.TimeP95, s.TimeMax)
	}
	return b.String()
}

// scopeStates snapshots every accumulator (cards and times are stored
// under "c " / "t " prefixed keys of one map to keep the snapshot flat).
func (r *Recorder) scopeStates() map[string]ScopeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]ScopeState, len(r.cards)+len(r.times))
	for k, a := range r.cards {
		out["c "+k] = a.state()
	}
	for k, a := range r.times {
		out["t "+k] = a.state()
	}
	return out
}

// restoreScopes loads accumulator states from a snapshot.
func (r *Recorder) restoreScopes(scopes map[string]ScopeState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, s := range scopes {
		kind, key, ok := strings.Cut(k, " ")
		if !ok || key == "" {
			continue
		}
		switch kind {
		case "c":
			r.scope(r.cards, key).restore(s)
		case "t":
			r.scope(r.times, key).restore(s)
		}
	}
}
