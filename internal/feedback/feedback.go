// Package feedback closes the loop from actual execution back into the
// mediator's cost model. The paper's wrappers export statistics and cost
// rules once, at registration time (§2.4), so the blended model silently
// drifts as sources grow and change. This subsystem measures every
// executed plan (the engine attaches a Profile of per-operator actuals to
// each Result), joins the actuals against the estimator's per-node
// predictions (Recorder), and feeds bounded, exponentially decayed
// corrections back into the catalog statistics and the calibrated
// mediator coefficients (Adjuster). A Store snapshots the learned
// corrections so a daemon survives restarts without relearning.
package feedback

import (
	"math"

	"disco/internal/algebra"
)

// OpActual is the measured execution record of one plan operator: what
// the operator really did, against which the estimator's predictions are
// judged.
type OpActual struct {
	// RowsOut is the operator's output cardinality.
	RowsOut int64
	// RowsIn is the number of rows consumed from the operator's inputs
	// (for a submit: the rows the wrapper delivered across the boundary).
	RowsIn int64
	// OwnMS is the virtual-clock time charged by this operator itself,
	// excluding its children's subtrees.
	OwnMS float64
	// SubtreeMS is the cumulative virtual-clock time of the whole subtree
	// rooted here — directly comparable to the estimator's TotalTime.
	SubtreeMS float64
	// Wrapper names the executing source for submit and scan nodes.
	Wrapper string
	// RoundTrips counts wrapper round-trips performed by a submit (1 per
	// attempted boundary crossing; 0 when the wrapper was known dead and
	// the transport was never touched).
	RoundTrips int
	// Bytes is the result volume a submit shipped back to the mediator.
	Bytes int64
	// Excluded marks a submit whose wrapper was unavailable: the subtree
	// contributed no rows and the answer is partial. Profiles from
	// degraded runs record these explicitly rather than staying empty.
	Excluded bool
	// FromCache marks a submit served from the mediator's semantic result
	// cache: no wrapper was contacted and the measured time is the cache
	// lookup, not the source. The adjuster must not learn from such runs
	// — a cache-served submit would teach the model that sources are
	// free.
	FromCache bool
}

// Profile is the per-operator execution record of one plan run, keyed by
// the identity of the executed plan's nodes — the same pointers the
// optimizer's PlanCost.ByNode uses, so predictions and actuals join
// without any tree matching.
type Profile struct {
	ByNode    map[*algebra.Node]*OpActual
	ElapsedMS float64
	// Partial mirrors engine.Result.Partial: at least one wrapper was
	// excluded from the answer.
	Partial bool
	// CacheServed counts submits answered from the semantic result cache
	// in this run. Profiles with CacheServed > 0 are not absorbed into
	// the model: their timings measure the cache, not the sources.
	CacheServed int
}

// NewProfile returns an empty profile ready for recording.
func NewProfile() *Profile {
	return &Profile{ByNode: make(map[*algebra.Node]*OpActual)}
}

// Actual returns the recorded actuals of a plan node.
func (p *Profile) Actual(n *algebra.Node) (*OpActual, bool) {
	if p == nil {
		return nil, false
	}
	a, ok := p.ByNode[n]
	return a, ok
}

// Len reports the number of recorded operators.
func (p *Profile) Len() int {
	if p == nil {
		return 0
	}
	return len(p.ByNode)
}

// QError is the symmetric estimation-error ratio max(est/act, act/est),
// the standard cardinality-estimation quality metric: 1 is a perfect
// estimate, q both over- and underestimates on the same scale. Values
// below floor are clamped up so empty results do not divide by zero
// (cardinalities use floor 1 — "off by less than one object" is perfect).
func QError(est, act, floor float64) float64 {
	if floor <= 0 {
		floor = 1
	}
	if est < floor || math.IsNaN(est) {
		est = floor
	}
	if act < floor || math.IsNaN(act) {
		act = floor
	}
	if est > act {
		return est / act
	}
	return act / est
}

// timeFloor is the q-error floor for virtual times: below a hundredth of
// a millisecond the clock charges are quantization noise, not signal.
const timeFloor = 0.01

// isBad reports a value no statistic should absorb.
func isBad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
