package feedback

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/wrapper"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, floor, want float64
	}{
		{100, 100, 1, 1},
		{10, 100, 1, 10},
		{100, 10, 1, 10},
		{0, 0, 1, 1},   // both floored: perfect
		{0, 5, 1, 5},   // est floored to 1
		{0.5, 2, 1, 2}, // est floored to 1
		{math.NaN(), 10, 1, 10},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act, c.floor); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v, %v, %v) = %v, want %v", c.est, c.act, c.floor, got, c.want)
		}
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(4)
	for _, q := range []float64{1, 2, 3, 10} {
		a.Add(q)
	}
	if a.Count() != 4 || a.Max() != 10 {
		t.Fatalf("count=%d max=%v", a.Count(), a.Max())
	}
	if med := a.Median(); med < 2 || med > 3 {
		t.Errorf("median = %v, want within [2,3]", med)
	}
	// The ring forgets: four more small observations push the 10 out.
	for i := 0; i < 4; i++ {
		a.Add(1.5)
	}
	if q := a.Quantile(1); q != 1.5 {
		t.Errorf("window max after overwrite = %v, want 1.5", q)
	}
	if a.Max() != 10 {
		t.Errorf("lifetime max = %v, want 10", a.Max())
	}
	if a.Count() != 8 {
		t.Errorf("lifetime count = %d, want 8", a.Count())
	}
	// Snapshot round trip.
	st := a.state()
	b := NewAccumulator(4)
	b.restore(st)
	if b.Count() != a.Count() || b.Max() != a.Max() || b.Median() != a.Median() {
		t.Errorf("restored accumulator differs: %+v vs %+v", b, a)
	}
}

func TestAccumulatorEmptyQuantile(t *testing.T) {
	a := NewAccumulator(0)
	if a.Quantile(0.5) != 0 || a.Max() != 0 || a.Count() != 0 {
		t.Error("empty accumulator should answer zeros")
	}
}

// buildJoinedPlan returns a plan select(submit(scan)) with matching
// predictions and actuals for recorder tests.
func buildJoinedPlan() (*algebra.Node, *core.PlanCost, *Profile) {
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	sel := algebra.Select(sub, algebra.NewSelPred(
		algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(100)))

	pc := &core.PlanCost{ByNode: map[*algebra.Node]*core.NodeCost{
		scan: {Vars: map[string]float64{"CountObject": 1000, "TotalTime": 50}},
		sub:  {Vars: map[string]float64{"CountObject": 1000, "TotalTime": 80}},
		sel:  {Vars: map[string]float64{"CountObject": 10, "TotalTime": 86}},
	}}
	pc.Root = pc.ByNode[sel]

	prof := NewProfile()
	prof.ByNode[sub] = &OpActual{RowsOut: 1000, RowsIn: 1000, OwnMS: 80, SubtreeMS: 80, Wrapper: "w1", RoundTrips: 1, Bytes: 4096}
	prof.ByNode[sel] = &OpActual{RowsOut: 100, RowsIn: 1000, OwnMS: 6, SubtreeMS: 86}
	prof.ElapsedMS = 86
	return sel, pc, prof
}

func TestRecorderObserve(t *testing.T) {
	plan, pc, prof := buildJoinedPlan()
	r := NewRecorder(0)
	rep := r.Observe(plan, pc, prof)
	if len(rep.Obs) != 2 {
		t.Fatalf("observations = %d, want 2 (scan has no actuals)", len(rep.Obs))
	}
	// Pre-order: the select first, then the submit.
	if rep.Obs[0].Scope != "mediator/select" || rep.Obs[1].Scope != "w1/submit" {
		t.Errorf("scopes = %q, %q", rep.Obs[0].Scope, rep.Obs[1].Scope)
	}
	if q := rep.Obs[0].QRows; math.Abs(q-10) > 1e-9 {
		t.Errorf("select card q-error = %v, want 10 (est 10, act 100)", q)
	}
	if q := rep.Obs[1].QRows; q != 1 {
		t.Errorf("submit card q-error = %v, want 1", q)
	}
	if med := rep.MedianCardQ(); med != 10 {
		t.Errorf("report median = %v, want 10 (upper median of {1,10})", med)
	}
	scopes := r.Scopes()
	if len(scopes) != 2 {
		t.Fatalf("scopes = %d, want 2", len(scopes))
	}
	if s := r.Summary(); s == "" {
		t.Error("summary should render")
	}
}

func TestRecorderSkipsExcluded(t *testing.T) {
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	pc := &core.PlanCost{ByNode: map[*algebra.Node]*core.NodeCost{
		sub: {Vars: map[string]float64{"CountObject": 1000, "TotalTime": 80}},
	}}
	pc.Root = pc.ByNode[sub]
	prof := NewProfile()
	prof.ByNode[sub] = &OpActual{Wrapper: "w1", Excluded: true}
	prof.Partial = true

	r := NewRecorder(0)
	rep := r.Observe(sub, pc, prof)
	if len(rep.Obs) != 1 || !rep.Obs[0].Excluded {
		t.Fatalf("want one excluded observation, got %+v", rep.Obs)
	}
	if len(r.Scopes()) != 0 {
		t.Error("excluded observations must not reach the accumulators")
	}
	if rep.MedianCardQ() != 0 {
		t.Error("excluded-only report has no usable median")
	}
}

// fakeWrapper is the minimal registration-capable wrapper for catalog
// tests; it never executes plans.
type fakeWrapper struct {
	name  string
	colls map[string]fakeColl
	clock *netsim.Clock
}

type fakeColl struct {
	schema *types.Schema
	ext    stats.ExtentStats
	attrs  map[string]stats.AttributeStats
}

func (f *fakeWrapper) Name() string { return f.name }
func (f *fakeWrapper) Collections() []string {
	out := make([]string, 0, len(f.colls))
	for n := range f.colls {
		out = append(out, n)
	}
	return out
}
func (f *fakeWrapper) Schema(c string) (*types.Schema, error) { return f.colls[c].schema, nil }
func (f *fakeWrapper) Capabilities() wrapper.Capabilities     { return wrapper.AllCapabilities() }
func (f *fakeWrapper) ExtentStats(c string) (stats.ExtentStats, bool) {
	cc, ok := f.colls[c]
	return cc.ext, ok
}
func (f *fakeWrapper) AttributeStats(c, a string) (stats.AttributeStats, bool) {
	cc, ok := f.colls[c]
	if !ok {
		return stats.AttributeStats{}, false
	}
	ast, ok := cc.attrs[a]
	return ast, ok
}
func (f *fakeWrapper) CostRules() string                              { return "" }
func (f *fakeWrapper) Execute(*algebra.Node) (*wrapper.Result, error) { return nil, fmt.Errorf("fake") }
func (f *fakeWrapper) Clock() *netsim.Clock                           { return f.clock }

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	hist := stats.NewEquiWidth([]types.Constant{
		types.Int(0), types.Int(1), types.Int(2), types.Int(3), types.Int(4),
		types.Int(5), types.Int(6), types.Int(7), types.Int(8), types.Int(9),
	}, 2)
	// Inflate the histogram to the claimed 1000-object extent.
	for i := range hist.Buckets {
		hist.Buckets[i].Count *= 100
	}
	hist.Total = 1000
	w := &fakeWrapper{
		name:  "w1",
		clock: netsim.NewClock(),
		colls: map[string]fakeColl{
			"Employee": {
				schema: types.NewSchema(
					types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
					types.Field{Name: "dept", Collection: "Employee", Type: types.KindInt},
				),
				ext: stats.ExtentStats{CountObject: 1000, TotalSize: 64000, ObjectSize: 64},
				attrs: map[string]stats.AttributeStats{
					"id":   {CountDistinct: 1000, Min: types.Int(0), Max: types.Int(999)},
					"dept": {CountDistinct: 10, Min: types.Int(0), Max: types.Int(9), Histogram: hist},
				},
			},
		},
	}
	cat := catalog.New()
	if err := cat.Register(w); err != nil {
		t.Fatal(err)
	}
	return cat
}

// submitObs builds the observation stream of a submit(scan(Employee))
// boundary that estimated est rows but saw act.
func submitObs(est, act float64) *Report {
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	o := Obs{Node: sub, Site: "w1", Scope: "w1/submit", EstRows: est, ActRows: act, ActIn: act}
	o.QRows = QError(est, act, 1)
	return &Report{Plan: sub, Obs: []Obs{o}}
}

func TestAdjusterExtentConverges(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	// The wrapper claimed 1000 objects; the source actually holds 100.
	// Estimates track the (corrected) catalog: est = current extent.
	for i := 0; i < 12; i++ {
		info, _ := cat.Entry("w1")
		est := float64(info.Collections["Employee"].Extent.CountObject)
		adj.Apply(submitObs(est, 100), cat, nil)
	}
	info, _ := cat.Entry("w1")
	got := info.Collections["Employee"].Extent.CountObject
	if got < 90 || got > 115 {
		t.Errorf("corrected extent = %d, want ~100", got)
	}
	// TotalSize tracks the corrected count.
	if ts := info.Collections["Employee"].Extent.TotalSize; ts != got*64 {
		t.Errorf("TotalSize = %d, want %d", ts, got*64)
	}
	// Histograms rescale with the extent.
	h := info.Collections["Employee"].Attrs["dept"].Histogram
	if h.Total < 90 || h.Total > 115 {
		t.Errorf("histogram total = %d, want ~100", h.Total)
	}
	cors := adj.Corrections()
	if len(cors) != 1 || cors[0].Base != 1000 {
		t.Fatalf("corrections = %+v", cors)
	}
	if f := cors[0].Factor; f < 0.08 || f > 0.13 {
		t.Errorf("factor = %v, want ~0.1", f)
	}
}

func TestAdjusterBoundedStep(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	// A single wild outlier (claimed 1000, observed 1) may move the
	// extent by at most MaxStep per update.
	adj.Apply(submitObs(1000, 1), cat, nil)
	info, _ := cat.Entry("w1")
	got := info.Collections["Employee"].Extent.CountObject
	if got < int64(1000/adj.MaxStep) {
		t.Errorf("extent = %d dropped below the per-update bound %v", got, 1000/adj.MaxStep)
	}
}

func TestAdjusterReapplyAfterReregistration(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	for i := 0; i < 12; i++ {
		info, _ := cat.Entry("w1")
		est := float64(info.Collections["Employee"].Extent.CountObject)
		adj.Apply(submitObs(est, 100), cat, nil)
	}
	// Re-registration resets the catalog to the wrapper's stale claim …
	fresh := testCatalog(t)
	if n := adj.Reapply(fresh); n != 1 {
		t.Fatalf("reapplied %d corrections, want 1", n)
	}
	info, _ := fresh.Entry("w1")
	got := info.Collections["Employee"].Extent.CountObject
	if got < 90 || got > 115 {
		t.Errorf("reapplied extent = %d, want ~100", got)
	}
}

func TestAdjusterRefinesSelectivity(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	sel := algebra.Select(sub, algebra.NewSelPred(
		algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpEQ, types.Int(7)))
	// Claimed 1000 distinct ids (sel 0.001); observed: 1000 in, 100 out.
	for i := 0; i < 12; i++ {
		rep := &Report{Plan: sel, Obs: []Obs{{
			Node: sel, Site: "mediator", Scope: "mediator/select",
			EstRows: 1, ActRows: 100, ActIn: 1000,
		}}}
		adj.Apply(rep, cat, nil)
	}
	info, _ := cat.Entry("w1")
	d := info.Collections["Employee"].Attrs["id"].CountDistinct
	if d < 8 || d > 13 {
		t.Errorf("CountDistinct = %d, want ~10 (observed selectivity 0.1)", d)
	}
}

func TestAdjusterReweightsHistogram(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	// dept < 5 estimated from the uniform histogram at ~0.5; the source
	// actually returns 90% of rows below the cut.
	sel := algebra.Select(sub, algebra.NewSelPred(
		algebra.Ref{Collection: "Employee", Attr: "dept"}, stats.CmpLT, types.Int(5)))
	before, _ := cat.Attribute("w1", "Employee", "dept")
	selBefore := before.Selectivity(stats.CmpLT, types.Int(5))
	for i := 0; i < 10; i++ {
		rep := &Report{Plan: sel, Obs: []Obs{{
			Node: sel, Site: "mediator", Scope: "mediator/select",
			EstRows: 500, ActRows: 900, ActIn: 1000,
		}}}
		adj.Apply(rep, cat, nil)
	}
	after, _ := cat.Attribute("w1", "Employee", "dept")
	selAfter := after.Selectivity(stats.CmpLT, types.Int(5))
	if selAfter <= selBefore {
		t.Errorf("selectivity did not move toward observation: %v -> %v", selBefore, selAfter)
	}
	if math.Abs(selAfter-0.9) > 0.1 {
		t.Errorf("selectivity = %v, want ~0.9", selAfter)
	}
	// Mass is conserved (modulo rounding).
	h := after.Histogram
	var sum int64
	for _, b := range h.Buckets {
		sum += b.Count
	}
	if sum != h.Total {
		t.Errorf("histogram total %d != bucket sum %d", h.Total, sum)
	}
}

func TestAdjusterRefitsCoefficient(t *testing.T) {
	adj := NewAdjuster()
	globals := map[string]types.Constant{"MedPerPred": types.Float(0.6)} // 100x too high
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(scan, "w1")
	sel := algebra.Select(sub, algebra.NewSelPred(
		algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(100)))
	for i := 0; i < 16; i++ {
		n := float64(500 + 100*(i%3))
		rep := &Report{Plan: sel, Obs: []Obs{{
			Node: sel, Site: "mediator", Scope: "mediator/select",
			EstRows: 100, ActRows: 100, ActIn: n, OwnMS: n * 0.006,
		}}}
		adj.Apply(rep, nil, globals)
	}
	got := globals["MedPerPred"].AsFloat()
	if math.Abs(got-0.006) > 0.002 {
		t.Errorf("refitted MedPerPred = %v, want ~0.006", got)
	}
}

func TestDerivedScan(t *testing.T) {
	scan := algebra.Scan("w1", "Employee")
	chain := algebra.Submit(algebra.Project(scan, "id"), "w1")
	if derivedScan(chain) != scan {
		t.Error("project chain should derive from its scan")
	}
	selChain := algebra.Submit(algebra.Project(algebra.Select(scan, algebra.NewSelPred(
		algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(5))), "id"), "w1")
	if derivedScan(selChain) != nil {
		t.Error("a selection confounds selectivity with extent error; no attribution")
	}
	l := algebra.Scan("w1", "A")
	r := algebra.Scan("w1", "B")
	j := algebra.Submit(algebra.Join(l, r, nil), "w1")
	if derivedScan(j) != nil {
		t.Error("a join derives from no single collection")
	}
	d := algebra.Submit(algebra.DupElim(scan), "w1")
	if derivedScan(d) != nil {
		t.Error("dupelim changes cardinality semantics; no extent attribution")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := NewFileStore(filepath.Join(dir, "snap.json"))

	rec := NewRecorder(8)
	adj := NewAdjuster()
	cat := testCatalog(t)
	for i := 0; i < 6; i++ {
		info, _ := cat.Entry("w1")
		est := float64(info.Collections["Employee"].Extent.CountObject)
		rep := submitObs(est, 100)
		rec.Observe(rep.Plan, &core.PlanCost{
			Root:   &core.NodeCost{Vars: map[string]float64{"TotalTime": 1}},
			ByNode: map[*algebra.Node]*core.NodeCost{},
		}, NewProfile())
		adj.Apply(rep, cat, nil)
	}
	snap := Capture(rec, adj, map[string]float64{"MedPerPred": 0.007})
	if err := store.Save(snap); err != nil {
		t.Fatal(err)
	}

	loaded, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cards) != 1 || loaded.Cards[0].Collection != "Employee" {
		t.Fatalf("loaded cards = %+v", loaded.Cards)
	}
	if loaded.Coeffs["MedPerPred"] != 0.007 {
		t.Errorf("loaded coeffs = %+v", loaded.Coeffs)
	}

	// Restore into a fresh loop and reapply to a stale catalog.
	rec2, adj2 := NewRecorder(8), NewAdjuster()
	Restore(loaded, rec2, adj2)
	fresh := testCatalog(t)
	adj2.Reapply(fresh)
	info, _ := fresh.Entry("w1")
	got := info.Collections["Employee"].Extent.CountObject
	want := loaded.Cards[0].Factor * 1000
	if math.Abs(float64(got)-want) > 1.5 {
		t.Errorf("restored extent = %d, want ~%.0f", got, want)
	}
}

func TestStoreCorruptLoadsEmpty(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"missing.json": "", // not written at all
		"garbage.json": "{not json",
		"badver.json":  `{"version": 99, "cards": [{"wrapper":"w","collection":"c","base":1,"factor":2}]}`,
		"poison.json":  `{"version": 1, "cards": [{"wrapper":"w","collection":"c","base":-5,"factor":-1}]}`,
	} {
		store := NewFileStore(filepath.Join(dir, name))
		if name != "missing.json" {
			if err := writeFile(store.Path, content); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := store.Load()
		if err != nil {
			t.Fatalf("%s: Load must not fail: %v", name, err)
		}
		if len(snap.Cards) != 0 || len(snap.Scopes) != 0 {
			t.Errorf("%s: corrupt snapshot must load as empty, got %+v", name, snap)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	snap, err := s.Load()
	if err != nil || len(snap.Cards) != 0 {
		t.Fatalf("empty mem store: %+v, %v", snap, err)
	}
	if err := s.Save(&Snapshot{Cards: []CardCorrection{{Wrapper: "w", Collection: "c", Base: 1, Factor: 2}}}); err != nil {
		t.Fatal(err)
	}
	snap, _ = s.Load()
	if len(snap.Cards) != 1 {
		t.Errorf("mem store lost the snapshot: %+v", snap)
	}
}

func TestAdjusterLearnsMissingExtent(t *testing.T) {
	cat := testCatalog(t)
	e, _ := cat.Entry("w1")
	info := e.Collections["Employee"]
	// The source registered no statistics at all.
	info.HasExtent = false
	info.Extent = stats.ExtentStats{}

	adj := NewAdjuster()
	rep := submitObs(1000, 100)
	rep.Obs[0].Bytes = 6400
	adjs := adj.Apply(rep, cat, nil)
	if len(adjs) != 1 || adjs[0].Kind != "extent-learned" {
		t.Fatalf("adjustments = %v", adjs)
	}
	if !info.HasExtent || info.Extent.CountObject != 100 ||
		info.Extent.ObjectSize != 64 || info.Extent.TotalSize != 6400 {
		t.Errorf("learned extent = %+v", info.Extent)
	}

	// A restart restores the learned extent into a fresh, still
	// statistics-less registration.
	snap := Capture(nil, adj, nil)
	adj2 := NewAdjuster()
	Restore(snap, nil, adj2)
	info.HasExtent = false
	info.Extent = stats.ExtentStats{}
	if n := adj2.Reapply(cat); n != 1 {
		t.Fatalf("Reapply = %d, want 1", n)
	}
	if !info.HasExtent || info.Extent.CountObject != 100 || info.Extent.TotalSize != 6400 {
		t.Errorf("reinstated extent = %+v", info.Extent)
	}
}

func TestAdjusterSkipsSelectiveSubmitChains(t *testing.T) {
	cat := testCatalog(t)
	adj := NewAdjuster()
	scan := algebra.Scan("w1", "Employee")
	sub := algebra.Submit(algebra.Select(scan, algebra.NewSelPred(
		algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(5))), "w1")
	o := Obs{Node: sub, Site: "w1", Scope: "w1/submit", EstRows: 500, ActRows: 5, ActIn: 5}
	o.QRows = QError(500, 5, 1)
	if adjs := adj.Apply(&Report{Plan: sub, Obs: []Obs{o}}, cat, nil); len(adjs) != 0 {
		t.Errorf("selective chain must not correct the extent, got %v", adjs)
	}
	if len(adj.Corrections()) != 0 {
		t.Errorf("corrections = %v", adj.Corrections())
	}
}
