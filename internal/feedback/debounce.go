package feedback

import (
	"sync"
	"time"
)

// DefaultSaveInterval is the debounce window when the caller does not
// configure one.
const DefaultSaveInterval = 5 * time.Second

// Debouncer coalesces snapshot saves so a stream of absorbed executions
// does not write the store once per query. The first Mark after
// construction (or after an interval has elapsed since the last save)
// persists immediately; Marks inside the window only record that state
// is dirty and stash the capture closure. Flush writes the pending
// snapshot, making close-time persistence complete regardless of where
// the window stood.
//
// The capture closure is invoked synchronously inside Mark/Flush, under
// the debouncer's mutex; callers already serialize model mutation (the
// mediator holds its write lock around absorption), so captures always
// see a consistent model. There is no background goroutine: saves ride
// on the query path, at most once per interval.
type Debouncer struct {
	store    Store
	interval time.Duration

	mu       sync.Mutex
	capture  func() *Snapshot
	dirty    bool
	lastSave time.Time
	saves    int64
}

// NewDebouncer wraps a store with a save window. interval == 0 uses
// DefaultSaveInterval; interval < 0 disables debouncing (every Mark
// saves — the pre-debounce behaviour).
func NewDebouncer(store Store, interval time.Duration) *Debouncer {
	if interval == 0 {
		interval = DefaultSaveInterval
	}
	return &Debouncer{store: store, interval: interval}
}

// Mark records that the model changed. capture must build the snapshot
// to persist; it runs only when a save is actually due (or later, from
// Flush).
func (d *Debouncer) Mark(capture func() *Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.capture = capture
	d.dirty = true
	if d.interval >= 0 && !d.lastSave.IsZero() && time.Since(d.lastSave) < d.interval {
		return nil
	}
	return d.saveLocked()
}

// Flush persists the pending snapshot if any mark is outstanding. The
// mediator calls it from Close so the final state always lands in the
// store.
func (d *Debouncer) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirty {
		return nil
	}
	return d.saveLocked()
}

// saveLocked captures and writes the snapshot; callers hold d.mu.
func (d *Debouncer) saveLocked() error {
	if d.capture == nil {
		return nil
	}
	err := d.store.Save(d.capture())
	d.dirty = false
	d.lastSave = time.Now()
	d.saves++
	return err
}

// Saves reports how many snapshot writes reached the store.
func (d *Debouncer) Saves() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.saves
}
