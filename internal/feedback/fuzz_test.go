package feedback

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzFeedbackSnapshot feeds arbitrary bytes through the JSON file store:
// whatever is on disk, Load must return a usable (possibly empty)
// snapshot and never panic, and a snapshot that does load must survive a
// Save/Load round trip unchanged — the sanitizer is idempotent.
func FuzzFeedbackSnapshot(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"cards":[{"wrapper":"w1","collection":"Employee","base":1000,"factor":0.1,"samples":4}]}`))
	f.Add([]byte(`{"version":1,"cards":[{"wrapper":"","collection":"c","base":-1,"factor":1e999}]}`))
	f.Add([]byte(`{"version":1,"coeffs":{"MedPerPred":0.006,"bad":-1}}`))
	f.Add([]byte(`{"version":1,"scopes":{"c w1/submit":{"count":3,"max":10,"window":[1,2,10]}}}`))
	f.Add([]byte(`{"version":99,"cards":[{"wrapper":"w","collection":"c","base":1,"factor":2}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		store := NewFileStore(path)
		snap, err := store.Load()
		if err != nil {
			t.Fatalf("Load must never fail, got %v", err)
		}
		if snap == nil {
			t.Fatal("Load must never return nil")
		}
		// Whatever loaded must be absorbable without a panic …
		rec := NewRecorder(8)
		adj := NewAdjuster()
		Restore(snap, rec, adj)

		// … and must round-trip bit-stable through Save/Load: sanitize is
		// a fixpoint, so nothing survives the first load that the second
		// would still want to drop.
		if err := store.Save(snap); err != nil {
			t.Fatalf("Save of a loaded snapshot must work: %v", err)
		}
		again, err := store.Load()
		if err != nil {
			t.Fatalf("reload: %v", err)
		}
		if !snapshotsEqual(snap, again) {
			a, _ := json.Marshal(snap)
			b, _ := json.Marshal(again)
			t.Fatalf("snapshot not stable under Save/Load:\n first=%s\nsecond=%s", a, b)
		}
	})
}

// snapshotsEqual compares snapshots through their JSON form, which
// normalizes nil-vs-empty containers.
func snapshotsEqual(a, b *Snapshot) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	if errA != nil || errB != nil {
		return false
	}
	var ma, mb any
	if json.Unmarshal(ja, &ma) != nil || json.Unmarshal(jb, &mb) != nil {
		return false
	}
	return reflect.DeepEqual(ma, mb)
}
