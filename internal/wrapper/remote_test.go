package wrapper

import (
	"net"
	"testing"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// startRemote serves an object wrapper on a loopback listener and returns
// its address.
func startRemote(t *testing.T, w Wrapper) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go Serve(ln, w)
	return ln.Addr().String()
}

func TestRemoteWrapperEndToEnd(t *testing.T) {
	backend := newObjWrapper(t, 400)
	addr := startRemote(t, backend)

	medClock := netsim.NewClock()
	rw, err := DialRemote(addr, medClock)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	// Registration payload round-tripped.
	if rw.Name() != "obj1" {
		t.Errorf("name = %q", rw.Name())
	}
	if got := rw.Collections(); len(got) != 1 || got[0] != "Employee" {
		t.Errorf("collections = %v", got)
	}
	ext, ok := rw.ExtentStats("Employee")
	if !ok || ext.CountObject != 400 {
		t.Errorf("extent = %+v, %v", ext, ok)
	}
	ast, ok := rw.AttributeStats("Employee", "id")
	if !ok || !ast.Indexed || ast.CountDistinct != 400 ||
		ast.Min.AsInt() != 0 || ast.Max.AsInt() != 399 {
		t.Errorf("id stats = %+v", ast)
	}
	if rw.CostRules() == "" {
		t.Error("cost rules should cross the wire")
	}
	if !rw.Capabilities().Join {
		t.Error("capabilities should cross the wire")
	}
	schema, err := rw.Schema("Employee")
	if err != nil || schema.Len() != 3 {
		t.Fatalf("schema = %v, %v", schema, err)
	}
	if _, err := rw.Schema("Nope"); err == nil {
		t.Error("unknown collection should fail")
	}

	// Execute a subplan remotely.
	plan := algebra.Select(algebra.Scan("obj1", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(7)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{rw}); err != nil {
		t.Fatal(err)
	}
	before := medClock.Now()
	res, err := rw.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Kind() != types.KindString {
		t.Errorf("string fields should decode as strings: %v", res.Rows[0])
	}
	// The remote's virtual time merged into the mediator clock.
	if medClock.Now() <= before {
		t.Error("mediator clock should advance by the remote virtual time")
	}

	// Execution errors propagate.
	bad := algebra.Submit(plan.Clone(), "obj1")
	bad.OutSchema = plan.OutSchema
	if _, err := rw.Execute(bad); err == nil {
		t.Error("remote nested submit should fail")
	}
}

func TestRemoteWrapperRowsMatchLocal(t *testing.T) {
	backend := newObjWrapper(t, 200)
	addr := startRemote(t, backend)
	rw, err := DialRemote(addr, netsim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	plan := func() *algebra.Node {
		p := algebra.Project(
			algebra.Select(algebra.Scan("obj1", "Employee"),
				algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "salary"}, stats.CmpGE, types.Int(1090))),
			"Employee.name", "Employee.salary")
		if err := algebra.Resolve(p, wrapperSchemaSource{backend}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	local, err := backend.Execute(plan())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := rw.Execute(plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Rows) != len(remote.Rows) {
		t.Fatalf("local %d rows, remote %d", len(local.Rows), len(remote.Rows))
	}
	for i := range local.Rows {
		if !local.Rows[i].Equal(remote.Rows[i]) {
			t.Errorf("row %d differs: %v vs %v", i, local.Rows[i], remote.Rows[i])
		}
	}
}
