package wrapper

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/stats"
	"disco/internal/types"
)

// ObjWrapper exposes a simulated object store (internal/objstore) to the
// mediator. It is the "sophisticated" wrapper of the reproduction: it
// exports full statistics and the Yao-based cost rules of the paper's
// Figure 13, with a clustering-aware variant — exactly the knowledge a
// generic mediator model cannot have.
type ObjWrapper struct {
	name      string
	store     *objstore.Store
	histogram int // equi-depth buckets per attribute; 0 disables
}

// NewObjWrapper wraps a store under the given registered name.
func NewObjWrapper(name string, store *objstore.Store) *ObjWrapper {
	return &ObjWrapper{name: name, store: store}
}

// EnableHistograms makes the wrapper export equi-depth histograms with
// the given bucket count.
func (w *ObjWrapper) EnableHistograms(buckets int) { w.histogram = buckets }

// Store exposes the underlying store (experiments reset its buffer pool
// between runs).
func (w *ObjWrapper) Store() *objstore.Store { return w.store }

// Name implements Wrapper.
func (w *ObjWrapper) Name() string { return w.name }

// Clock implements Wrapper.
func (w *ObjWrapper) Clock() *netsim.Clock { return w.store.Clock() }

// Collections implements Wrapper.
func (w *ObjWrapper) Collections() []string { return w.store.Collections() }

// Capabilities implements Wrapper: the object source executes the full
// algebra.
func (w *ObjWrapper) Capabilities() Capabilities { return AllCapabilities() }

// Schema implements Wrapper.
func (w *ObjWrapper) Schema(collection string) (*types.Schema, error) {
	c, ok := w.store.Collection(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: %s has no collection %q", w.name, collection)
	}
	return c.Schema(), nil
}

// ExtentStats implements Wrapper.
func (w *ObjWrapper) ExtentStats(collection string) (stats.ExtentStats, bool) {
	c, ok := w.store.Collection(collection)
	if !ok {
		return stats.ExtentStats{}, false
	}
	return c.ExtentStats(), true
}

// AttributeStats implements Wrapper.
func (w *ObjWrapper) AttributeStats(collection, attr string) (stats.AttributeStats, bool) {
	c, ok := w.store.Collection(collection)
	if !ok {
		return stats.AttributeStats{}, false
	}
	st, err := c.AttributeStats(attr, w.histogram)
	if err != nil {
		return stats.AttributeStats{}, false
	}
	return st, true
}

// CostRules implements Wrapper: the exported cost model, parameterized by
// the store's measured constants. The select rules are the paper's
// Figure 13 generalization: Yao page fetches for unclustered indexes,
// linear page range for clustered ones, with require() guards so the rule
// declines (and the hierarchy falls back) when no index applies.
func (w *ObjWrapper) CostRules() string {
	cfg := w.store.Config()
	header := fmt.Sprintf(`
let PageSize = %d;
let IO = %g;
let Output = %g;
let CPU = %g;
let Probe = %g;
`, cfg.PageSize, cfg.IOTimeMS, cfg.OutputTimeMS, cfg.CPUTimeMS, cfg.ProbeTimeMS)

	const body = `
# Sequential scan: every page once, CPU per object.
scan(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = IO;
  TotalTime   = C.CountPage * IO + C.CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Index selection (equality and ranges): page fetches follow Yao's
# function for unclustered placement, a linear fraction for clustered.
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IO + Probe);
  TotalTime   = require(C.A.Indexed,
      IO * C.CountPage * if(C.A.Clustered,
          CountObject / max(C.CountObject, 1),
          1 - exp(0 - CountObject / C.CountPage))
      + CountObject * (CPU + Probe));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A < V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IO + Probe);
  TotalTime   = require(C.A.Indexed,
      IO * C.CountPage * if(C.A.Clustered,
          CountObject / max(C.CountObject, 1),
          1 - exp(0 - CountObject / C.CountPage))
      + CountObject * (CPU + Probe));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A <= V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IO + Probe);
  TotalTime   = require(C.A.Indexed,
      IO * C.CountPage * if(C.A.Clustered,
          CountObject / max(C.CountObject, 1),
          1 - exp(0 - CountObject / C.CountPage))
      + CountObject * (CPU + Probe));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A > V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IO + Probe);
  TotalTime   = require(C.A.Indexed,
      IO * C.CountPage * if(C.A.Clustered,
          CountObject / max(C.CountObject, 1),
          1 - exp(0 - CountObject / C.CountPage))
      + CountObject * (CPU + Probe));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A >= V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IO + Probe);
  TotalTime   = require(C.A.Indexed,
      IO * C.CountPage * if(C.A.Clustered,
          CountObject / max(C.CountObject, 1),
          1 - exp(0 - CountObject / C.CountPage))
      + CountObject * (CPU + Probe));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Sequential selection fallback: full scan plus filter.
select(C, P) {
  CountObject = C.CountObject * predsel();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = IO;
  TotalTime   = C.CountPage * IO + C.CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Local equi-join: the source hash-joins materialized inputs.
join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TimeFirst;
  TotalTime   = C1.TotalTime + C2.TotalTime
              + (C1.CountObject + C2.CountObject) * CPU * 4
              + CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Result delivery at the wrapper boundary.
submit(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = C.TimeFirst + Net.Latency;
  TotalTime   = C.TotalTime + C.CountObject * Output + Net.Latency + C.TotalSize * Net.PerByte;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
`
	return header + body
}

// objSource adapts the store to the shared evaluator.
type objSource struct{ store *objstore.Store }

func (s objSource) scanAll(collection string) ([]types.Row, error) {
	c, ok := s.store.Collection(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: no collection %q", collection)
	}
	var rows []types.Row
	it := c.SeqScan()
	for {
		row, ok := it.Next()
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func (s objSource) indexSelect(collection string, cmp algebra.Comparison) ([]types.Row, bool, error) {
	c, ok := s.store.Collection(collection)
	if !ok {
		return nil, false, fmt.Errorf("wrapper: no collection %q", collection)
	}
	if indexed, _ := c.HasIndex(cmp.Left.Attr); !indexed || cmp.Op == stats.CmpNE {
		return nil, false, nil
	}
	it, err := c.IndexScan(cmp.Left.Attr, cmp.Op, cmp.RightConst)
	if err != nil {
		return nil, false, nil
	}
	var rows []types.Row
	for {
		row, ok := it.Next()
		if !ok {
			return rows, true, nil
		}
		rows = append(rows, row)
	}
}

func (s objSource) deliver(n int) { s.store.DeliverOutput(n) }

// Execute implements Wrapper.
func (w *ObjWrapper) Execute(plan *algebra.Node) (*Result, error) {
	if err := checkCapabilities(w, plan); err != nil {
		return nil, err
	}
	return runSubplan(objSource{store: w.store}, plan)
}
