// Package wrapper implements the DISCO wrapper framework (paper §2): the
// interface a data source presents to the mediator — schema, capabilities,
// statistics and cost rules exported at registration time (Figure 1), and
// subplan execution during the query phase (Figure 2) — plus wrapper
// implementations for the three source classes of the reproduction
// (object store, relational store, record files).
package wrapper

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/rowops"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/vexec"
)

// Capabilities lists the algebra operators a wrapper can execute locally.
// The mediator pushes down only what a wrapper advertises (the paper
// assumes all wrappers execute all operations and defers the general
// problem to [KTV97]; the flag set keeps the reproduction honest about
// the file source, which can only scan).
type Capabilities struct {
	Select    bool
	Project   bool
	Join      bool
	Sort      bool
	Aggregate bool
	Union     bool
	DupElim   bool
}

// AllCapabilities advertises every operator.
func AllCapabilities() Capabilities {
	return Capabilities{Select: true, Project: true, Join: true, Sort: true,
		Aggregate: true, Union: true, DupElim: true}
}

// Supports reports whether the operator kind may be pushed into the
// wrapper.
func (c Capabilities) Supports(k algebra.OpKind) bool {
	switch k {
	case algebra.OpScan:
		return true
	case algebra.OpSelect:
		return c.Select
	case algebra.OpProject:
		return c.Project
	case algebra.OpJoin:
		return c.Join
	case algebra.OpSort:
		return c.Sort
	case algebra.OpAggregate:
		return c.Aggregate
	case algebra.OpUnion:
		return c.Union
	case algebra.OpDupElim:
		return c.DupElim
	default:
		return false
	}
}

// Result is the materialized answer of one wrapper subquery.
type Result struct {
	Rows   []types.Row
	Schema *types.Schema
	// Bytes is the estimated wire size the network layer ships.
	Bytes int64
}

// Wrapper is the registration- and query-phase interface of a data source.
type Wrapper interface {
	// Name is the wrapper's registered identity.
	Name() string
	// Collections lists the exported collection names.
	Collections() []string
	// Schema returns the row schema of a collection.
	Schema(collection string) (*types.Schema, error)
	// Capabilities advertises the executable operator set.
	Capabilities() Capabilities
	// ExtentStats returns the exported extent statistics; ok is false
	// when the wrapper exports none for the collection.
	ExtentStats(collection string) (stats.ExtentStats, bool)
	// AttributeStats returns the exported statistics of one attribute.
	AttributeStats(collection, attr string) (stats.AttributeStats, bool)
	// CostRules returns the wrapper's cost-language source exported at
	// registration time; empty means the mediator's generic model alone
	// covers this source.
	CostRules() string
	// Execute runs a resolved subplan against the source and returns the
	// materialized result, advancing the source's virtual clock.
	Execute(plan *algebra.Node) (*Result, error)
	// Clock exposes the source's virtual clock.
	Clock() *netsim.Clock
}

// planSource is the access-path interface the shared subplan evaluator
// needs from a concrete store.
type planSource interface {
	scanAll(collection string) ([]types.Row, error)
	// indexSelect attempts to answer `collection WHERE cmp` through an
	// index; ok is false when no suitable access path exists.
	indexSelect(collection string, cmp algebra.Comparison) ([]types.Row, bool, error)
	deliver(n int)
}

// execPlan evaluates a resolved subplan against a source through the
// vectorized batch pipeline. The source-specific access paths live in
// the pipeline's Leaf hook: scans read the store, and selections
// directly over scans try an index access path for one sargable
// conjunct, mirroring source autonomy — the wrapper, not the mediator,
// picks its access method. Everything else (projections, sorts, joins a
// capable wrapper accepted) runs on the generic batch operators,
// sequentially: morsel parallelism and spilling are mediator-side
// features, and a wrapper's virtual time is charged by its store, not
// by operator formulas.
func execPlan(src planSource, n *algebra.Node) ([]types.Row, error) {
	return vexec.Run(n, &vexec.Env{Leaf: func(n *algebra.Node) ([]types.Row, bool, error) {
		switch n.Kind {
		case algebra.OpScan:
			rows, err := src.scanAll(n.Collection)
			return rows, true, err

		case algebra.OpSelect:
			child := n.Children[0]
			if child.Kind != algebra.OpScan || n.Pred == nil {
				return nil, false, nil
			}
			for i, cmp := range n.Pred.Conjuncts {
				if cmp.IsJoin() {
					continue
				}
				rows, ok, err := src.indexSelect(child.Collection, cmp)
				if err != nil {
					return nil, true, err
				}
				if !ok {
					continue
				}
				rest := &algebra.Predicate{}
				for j, c := range n.Pred.Conjuncts {
					if j != i {
						rest.Conjuncts = append(rest.Conjuncts, c.Clone())
					}
				}
				return rowops.Filter(n.OutSchema, rows, rest), true, nil
			}
			return nil, false, nil

		case algebra.OpSubmit:
			return nil, false, fmt.Errorf("wrapper: nested submit in a wrapper subplan")
		}
		return nil, false, nil
	}})
}

// runSubplan executes a subplan and wraps the result, charging delivery.
func runSubplan(src planSource, plan *algebra.Node) (*Result, error) {
	rows, err := execPlan(src, plan)
	if err != nil {
		return nil, err
	}
	src.deliver(len(rows))
	return &Result{Rows: rows, Schema: plan.OutSchema, Bytes: rowops.RowBytes(rows)}, nil
}

// checkCapabilities walks a subplan and verifies the wrapper advertises
// every operator in it.
func checkCapabilities(w Wrapper, plan *algebra.Node) error {
	caps := w.Capabilities()
	var bad algebra.OpKind
	ok := true
	plan.Walk(func(n *algebra.Node) bool {
		if !caps.Supports(n.Kind) {
			bad = n.Kind
			ok = false
		}
		return ok
	})
	if !ok {
		return fmt.Errorf("wrapper: %s does not support operator %s", w.Name(), bad)
	}
	return nil
}
