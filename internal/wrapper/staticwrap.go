package wrapper

import (
	"fmt"
	"strings"

	"disco/internal/algebra"
	"disco/internal/idl"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// StaticWrapper is a wrapper declared entirely by the wrapper implementor,
// the way the paper's §3 envisions: a CORBA-IDL subset interface file
// defines the collections, hand-written cardinality methods return the
// statistics (Figure 6), and cost sections carry the exported rules. Data
// lives in in-memory rows; execution charges a flat per-record time. It
// is the reproduction's stand-in for bespoke sources such as bibliographic
// or multimedia files (§7).
type StaticWrapper struct {
	name  string
	clock *netsim.Clock
	file  *idl.File
	colls map[string]*staticCollection
	// PerRecordMS is the scan cost per record; delivery is free (the
	// declared rules describe whatever the implementor wants).
	PerRecordMS float64
}

type staticCollection struct {
	iface  *idl.Interface
	schema *types.Schema
	rows   []types.Row
	extent *stats.ExtentStats
	attrs  map[string]stats.AttributeStats
}

// NewStaticWrapper parses the IDL source and prepares one collection per
// interface.
func NewStaticWrapper(name, idlSrc string, clock *netsim.Clock) (*StaticWrapper, error) {
	if clock == nil {
		clock = netsim.NewClock()
	}
	file, err := idl.Parse(idlSrc)
	if err != nil {
		return nil, err
	}
	w := &StaticWrapper{
		name:        name,
		clock:       clock,
		file:        file,
		colls:       make(map[string]*staticCollection),
		PerRecordMS: 0.5,
	}
	for _, iface := range file.Interfaces {
		w.colls[strings.ToLower(iface.Name)] = &staticCollection{
			iface:  iface,
			schema: iface.Schema(),
			attrs:  make(map[string]stats.AttributeStats),
		}
	}
	return w, nil
}

func (w *StaticWrapper) collection(name string) (*staticCollection, error) {
	c, ok := w.colls[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("wrapper: %s has no collection %q", w.name, name)
	}
	return c, nil
}

// Load stores the rows of one collection.
func (w *StaticWrapper) Load(collection string, rows []types.Row) error {
	c, err := w.collection(collection)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != c.schema.Len() {
			return fmt.Errorf("wrapper: %s/%s: row arity %d, schema %d",
				w.name, collection, len(r), c.schema.Len())
		}
	}
	c.rows = append(c.rows, rows...)
	return nil
}

// DeclareExtent sets the collection's exported extent statistics — the
// implementor's hand-written extent method (paper Figure 6). The IDL must
// declare the cardinality extent method.
func (w *StaticWrapper) DeclareExtent(collection string, e stats.ExtentStats) error {
	c, err := w.collection(collection)
	if err != nil {
		return err
	}
	if !c.iface.HasExtentCard {
		return fmt.Errorf("wrapper: %s/%s declares no cardinality extent method", w.name, collection)
	}
	c.extent = &e
	return nil
}

// DeclareAttribute sets one attribute's exported statistics — the
// implementor's attribute method.
func (w *StaticWrapper) DeclareAttribute(collection, attr string, a stats.AttributeStats) error {
	c, err := w.collection(collection)
	if err != nil {
		return err
	}
	if !c.iface.HasAttributeCard {
		return fmt.Errorf("wrapper: %s/%s declares no cardinality attribute method", w.name, collection)
	}
	if _, ok := c.schema.Lookup(attr); !ok {
		return fmt.Errorf("wrapper: %s/%s has no attribute %q", w.name, collection, attr)
	}
	c.attrs[strings.ToLower(attr)] = a
	return nil
}

// Name implements Wrapper.
func (w *StaticWrapper) Name() string { return w.name }

// Clock implements Wrapper.
func (w *StaticWrapper) Clock() *netsim.Clock { return w.clock }

// Collections implements Wrapper (declaration order).
func (w *StaticWrapper) Collections() []string {
	out := make([]string, 0, len(w.file.Interfaces))
	for _, iface := range w.file.Interfaces {
		out = append(out, iface.Name)
	}
	return out
}

// Capabilities implements Wrapper: a declared source scans, filters and
// projects.
func (w *StaticWrapper) Capabilities() Capabilities {
	return Capabilities{Select: true, Project: true}
}

// Schema implements Wrapper.
func (w *StaticWrapper) Schema(collection string) (*types.Schema, error) {
	c, err := w.collection(collection)
	if err != nil {
		return nil, err
	}
	return c.schema, nil
}

// ExtentStats implements Wrapper: only declared statistics are exported.
func (w *StaticWrapper) ExtentStats(collection string) (stats.ExtentStats, bool) {
	c, err := w.collection(collection)
	if err != nil || c.extent == nil {
		return stats.ExtentStats{}, false
	}
	return *c.extent, true
}

// AttributeStats implements Wrapper.
func (w *StaticWrapper) AttributeStats(collection, attr string) (stats.AttributeStats, bool) {
	c, err := w.collection(collection)
	if err != nil {
		return stats.AttributeStats{}, false
	}
	a, ok := c.attrs[strings.ToLower(attr)]
	return a, ok
}

// CostRules implements Wrapper: the IDL cost sections, merged.
func (w *StaticWrapper) CostRules() string {
	return strings.TrimSpace(w.file.AllRules())
}

// staticSource adapts the wrapper to the shared evaluator.
type staticSource struct{ w *StaticWrapper }

func (s staticSource) scanAll(collection string) ([]types.Row, error) {
	c, err := s.w.collection(collection)
	if err != nil {
		return nil, err
	}
	s.w.clock.Advance(float64(len(c.rows)) * s.w.PerRecordMS)
	return c.rows, nil
}

func (s staticSource) indexSelect(string, algebra.Comparison) ([]types.Row, bool, error) {
	return nil, false, nil // declared sources expose no physical indexes
}

func (s staticSource) deliver(int) {}

// Execute implements Wrapper.
func (w *StaticWrapper) Execute(plan *algebra.Node) (*Result, error) {
	if err := checkCapabilities(w, plan); err != nil {
		return nil, err
	}
	return runSubplan(staticSource{w: w}, plan)
}
