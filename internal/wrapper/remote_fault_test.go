package wrapper

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/proto"
	"disco/internal/stats"
	"disco/internal/types"
)

// testPolicy retries fast so fault tests stay quick; the backoff is
// virtual so wall time is unaffected anyway.
func testPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BackoffMS: 10, BackoffMult: 2, MaxBackoffMS: 80, IOTimeout: 2 * time.Second}
}

// startFaultyRemote serves a wrapper through a fault injector and returns
// the address plus a redial function for clients.
func startFaultyRemote(t *testing.T, w Wrapper, inj *netsim.Injector) (string, func() (net.Conn, error)) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeFaulty(ln, w, inj)
	addr := ln.Addr().String()
	return addr, func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// dialFaulty connects a hardened client to a served wrapper.
func dialFaulty(t *testing.T, dial func() (net.Conn, error), clock *netsim.Clock) *RemoteWrapper {
	t.Helper()
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRemoteWrapperPolicy(conn, clock, dial, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rw.Close() })
	return rw
}

// idPlan builds and resolves the canonical test subplan (id < n).
func idPlan(t *testing.T, w Wrapper, n int64) *algebra.Node {
	t.Helper()
	plan := algebra.Select(algebra.Scan("obj1", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(n)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{w}); err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestRemoteTruncatedFrameRedial is the regression test for the stream
// desync bug: the server cuts the first execute response mid-frame (a
// truncated JSON line, then close). The old client kept the half-read
// connection and wedged every later request; the hardened client must
// discard it, redial, and answer correctly.
func TestRemoteTruncatedFrameRedial(t *testing.T) {
	backend := newObjWrapper(t, 100)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var clockMu sync.Mutex
	var connSeq int
	var seqMu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			seqMu.Lock()
			connSeq++
			first := connSeq == 1
			seqMu.Unlock()
			go func(conn net.Conn, truncateExecutes bool) {
				defer conn.Close()
				r := proto.NewReader(conn)
				for {
					req, err := r.ReadWrapperRequest()
					if err != nil {
						return
					}
					resp := handleWrapperRequest(req, backend, &clockMu)
					if truncateExecutes && req.Op == "execute" {
						proto.WriteTruncated(conn, resp, 0.6)
						return
					}
					if err := proto.Write(conn, resp); err != nil {
						return
					}
				}
			}(conn, first)
		}
	}()

	addr := ln.Addr().String()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	clock := netsim.NewClock()
	rw := dialFaulty(t, dial, clock)

	res, err := rw.Execute(idPlan(t, rw, 7))
	if err != nil {
		t.Fatalf("execute through a cut connection should self-heal: %v", err)
	}
	if len(res.Rows) != 7 {
		t.Errorf("rows = %d, want 7", len(res.Rows))
	}
	st := rw.Stats()
	if st.Redials < 1 || st.Retries < 1 {
		t.Errorf("stats = %+v; expected at least one retry and one redial", st)
	}
	// The healed connection keeps working.
	res, err = rw.Execute(idPlan(t, rw, 3))
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("second execute after heal = %d rows, %v", len(res.Rows), err)
	}
}

// TestRemoteStaleResponseNotReused covers the other half of the desync
// bug: a response that arrives after the client's deadline must never be
// read as the answer to a later request. The first connection delays its
// execute responses past the client deadline (but still writes them); the
// client must abandon that stream entirely.
func TestRemoteStaleResponseNotReused(t *testing.T) {
	backend := newObjWrapper(t, 100)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var clockMu sync.Mutex
	var connSeq int
	var seqMu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			seqMu.Lock()
			connSeq++
			slow := connSeq == 1
			seqMu.Unlock()
			go func(conn net.Conn, slow bool) {
				defer conn.Close()
				r := proto.NewReader(conn)
				for {
					req, err := r.ReadWrapperRequest()
					if err != nil {
						return
					}
					resp := handleWrapperRequest(req, backend, &clockMu)
					if slow && req.Op == "execute" {
						time.Sleep(250 * time.Millisecond) // past the client deadline
					}
					if err := proto.Write(conn, resp); err != nil {
						return
					}
				}
			}(conn, slow)
		}
	}()

	addr := ln.Addr().String()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	policy := testPolicy()
	policy.IOTimeout = 50 * time.Millisecond
	rw, err := NewRemoteWrapperPolicy(conn, netsim.NewClock(), dial, policy)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	// First execute times out on the slow connection, then heals. A
	// desynced client would later decode the stale 7-row response as the
	// answer to the 3-row query.
	res, err := rw.Execute(idPlan(t, rw, 7))
	if err != nil || len(res.Rows) != 7 {
		t.Fatalf("first execute = %d rows, %v", len(res.Rows), err)
	}
	res, err = rw.Execute(idPlan(t, rw, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("second execute = %d rows, want 3 (stale response reused?)", len(res.Rows))
	}
}

// TestRemoteNoRedialBecomesUnavailable: without a redial target a torn
// connection makes the wrapper unavailable — the client must report that
// crisply instead of reusing the dead stream.
func TestRemoteNoRedialBecomesUnavailable(t *testing.T) {
	backend := newObjWrapper(t, 50)
	client, server := net.Pipe()
	var clockMu sync.Mutex
	go func() {
		defer server.Close()
		r := proto.NewReader(server)
		for {
			req, err := r.ReadWrapperRequest()
			if err != nil {
				return
			}
			resp := handleWrapperRequest(req, backend, &clockMu)
			if req.Op == "execute" {
				proto.WriteTruncated(server, resp, 0.5)
				return
			}
			if err := proto.Write(server, resp); err != nil {
				return
			}
		}
	}()
	rw, err := NewRemoteWrapperPolicy(client, netsim.NewClock(), nil, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if _, err := rw.Execute(idPlan(t, rw, 7)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("execute over a dead pipe = %v, want ErrUnavailable", err)
	}
	// Later requests fail fast the same way instead of wedging.
	if _, err := rw.Execute(idPlan(t, rw, 3)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second execute = %v, want ErrUnavailable", err)
	}
}

// TestRemoteInjectedTransientErrors: retryable error responses are
// absorbed by bounded retry on the same connection.
func TestRemoteInjectedTransientErrors(t *testing.T) {
	backend := newObjWrapper(t, 100)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var clockMu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := proto.NewReader(conn)
				failures := 0
				for {
					req, err := r.ReadWrapperRequest()
					if err != nil {
						return
					}
					if req.Op == "execute" && failures < 2 {
						failures++
						if err := proto.Write(conn, &proto.WrapperResponse{
							Error: "try again", Retryable: true,
						}); err != nil {
							return
						}
						continue
					}
					if err := proto.Write(conn, handleWrapperRequest(req, backend, &clockMu)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	addr := ln.Addr().String()
	clock := netsim.NewClock()
	rw := dialFaulty(t, func() (net.Conn, error) { return net.Dial("tcp", addr) }, clock)
	before := clock.Now()
	res, err := rw.Execute(idPlan(t, rw, 7))
	if err != nil || len(res.Rows) != 7 {
		t.Fatalf("execute = %d rows, %v", len(res.Rows), err)
	}
	st := rw.Stats()
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
	if st.Redials != 0 {
		t.Errorf("redials = %d; transient errors should not tear the connection down", st.Redials)
	}
	// Backoff was charged to the virtual clock: 10 + 20 ms.
	if got := clock.Now() - before; got < 30 {
		t.Errorf("virtual time for two backoffs = %v ms, want >= 30", got)
	}
}

// TestRemoteInjectedDelay: ServeFaulty's delay faults surface as wrapper
// virtual time merged into the mediator clock.
func TestRemoteInjectedDelay(t *testing.T) {
	backend := newObjWrapper(t, 50)
	inj := netsim.NewInjector(netsim.FaultPlan{DelayMS: 123})
	_, dial := startFaultyRemote(t, backend, inj)
	clock := netsim.NewClock()
	rw := dialFaulty(t, dial, clock) // meta: +123 ms
	afterDial := clock.Now()
	if afterDial < 123 {
		t.Errorf("clock after dial = %v, want >= 123", afterDial)
	}
	if _, err := rw.Execute(idPlan(t, rw, 5)); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - afterDial; got < 123 {
		t.Errorf("execute advanced %v ms, want >= 123 (injected delay)", got)
	}
}

// TestRemoteInjectedDropsRecover: a flaky transport (seeded, deterministic
// drop faults) is healed by teardown-and-redial; answers stay correct.
func TestRemoteInjectedDropsRecover(t *testing.T) {
	backend := newObjWrapper(t, 100)
	inj := netsim.NewInjector(netsim.FaultPlan{DropProb: 0.4, Seed: 11})
	_, dial := startFaultyRemote(t, backend, inj)
	rw := dialFaulty(t, dial, netsim.NewClock())
	for i := 0; i < 8; i++ {
		n := int64(2 + i)
		res, err := rw.Execute(idPlan(t, rw, n))
		if err != nil {
			t.Fatalf("execute %d: %v (stats %+v)", i, err, rw.Stats())
		}
		if int64(len(res.Rows)) != n {
			t.Fatalf("execute %d: %d rows, want %d", i, len(res.Rows), n)
		}
	}
	if st := rw.Stats(); st.Redials == 0 {
		t.Errorf("stats = %+v; the seeded plan should have dropped at least one connection", st)
	}
}

// TestRemoteUnavailableAfter: the unavailable latch surfaces as
// ErrUnavailable without burning the whole retry budget, and stays
// latched across redials.
func TestRemoteUnavailableAfter(t *testing.T) {
	backend := newObjWrapper(t, 50)
	inj := netsim.NewInjector(netsim.FaultPlan{UnavailableAfter: 2})
	_, dial := startFaultyRemote(t, backend, inj)
	rw := dialFaulty(t, dial, netsim.NewClock()) // meta = request 1
	if _, err := rw.Execute(idPlan(t, rw, 5)); err != nil {
		t.Fatalf("request 2 should still be served: %v", err)
	}
	_, err := rw.Execute(idPlan(t, rw, 5))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("request 3 = %v, want ErrUnavailable", err)
	}
	if _, err := rw.Execute(idPlan(t, rw, 5)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("request after latch = %v, want ErrUnavailable", err)
	}
}
