package wrapper

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/relstore"
	"disco/internal/stats"
	"disco/internal/types"
)

// RelWrapper exposes a relational heap-file store. Its exported cost
// rules describe a source whose behaviour the generic object model gets
// wrong in both directions: equality probes through hash indexes are far
// cheaper than a generic index scan, while range predicates always pay a
// full sequential scan (hash indexes cannot serve ranges).
type RelWrapper struct {
	name      string
	store     *relstore.Store
	histogram int
}

// NewRelWrapper wraps a store under the registered name.
func NewRelWrapper(name string, store *relstore.Store) *RelWrapper {
	return &RelWrapper{name: name, store: store}
}

// EnableHistograms makes the wrapper export equi-depth histograms.
func (w *RelWrapper) EnableHistograms(buckets int) { w.histogram = buckets }

// Store exposes the underlying store.
func (w *RelWrapper) Store() *relstore.Store { return w.store }

// Name implements Wrapper.
func (w *RelWrapper) Name() string { return w.name }

// Clock implements Wrapper.
func (w *RelWrapper) Clock() *netsim.Clock { return w.store.Clock() }

// Collections implements Wrapper.
func (w *RelWrapper) Collections() []string { return w.store.Tables() }

// Capabilities implements Wrapper.
func (w *RelWrapper) Capabilities() Capabilities { return AllCapabilities() }

// Schema implements Wrapper.
func (w *RelWrapper) Schema(collection string) (*types.Schema, error) {
	t, ok := w.store.Table(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: %s has no table %q", w.name, collection)
	}
	return t.Schema(), nil
}

// ExtentStats implements Wrapper.
func (w *RelWrapper) ExtentStats(collection string) (stats.ExtentStats, bool) {
	t, ok := w.store.Table(collection)
	if !ok {
		return stats.ExtentStats{}, false
	}
	return t.ExtentStats(), true
}

// AttributeStats implements Wrapper.
func (w *RelWrapper) AttributeStats(collection, attr string) (stats.AttributeStats, bool) {
	t, ok := w.store.Table(collection)
	if !ok {
		return stats.AttributeStats{}, false
	}
	st, err := t.AttributeStats(attr, w.histogram)
	if err != nil {
		return stats.AttributeStats{}, false
	}
	return st, true
}

// CostRules implements Wrapper.
func (w *RelWrapper) CostRules() string {
	cfg := w.store.Config()
	header := fmt.Sprintf(`
let PageSize = %d;
let IO = %g;
let CPU = %g;
let HProbe = %g;
let Output = %g;
`, cfg.PageSize, cfg.IOTimeMS, cfg.CPUTimeMS, cfg.HashProbeMS, cfg.OutputTimeMS)

	const body = `
scan(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = IO;
  TotalTime   = C.CountPage * IO + C.CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Hash probe: equality on an indexed attribute only. Matches may each
# fault a page, capped at the table's page count.
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, HProbe + IO);
  TotalTime   = require(C.A.Indexed,
      HProbe + min(CountObject, C.CountPage) * IO + CountObject * CPU);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Any other predicate pays a full scan: hash indexes serve no ranges.
select(C, P) {
  CountObject = C.CountObject * predsel();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = IO;
  TotalTime   = C.CountPage * IO + C.CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TimeFirst;
  TotalTime   = C1.TotalTime + C2.TotalTime
              + (C1.CountObject + C2.CountObject) * CPU * 4
              + CountObject * CPU;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

submit(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = C.TimeFirst + Net.Latency;
  TotalTime   = C.TotalTime + C.CountObject * Output + Net.Latency + C.TotalSize * Net.PerByte;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
`
	return header + body
}

// relSource adapts the store to the shared evaluator.
type relSource struct{ store *relstore.Store }

func (s relSource) scanAll(collection string) ([]types.Row, error) {
	t, ok := s.store.Table(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: no table %q", collection)
	}
	var rows []types.Row
	it := t.Scan()
	for {
		row, ok := it.Next()
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func (s relSource) indexSelect(collection string, cmp algebra.Comparison) ([]types.Row, bool, error) {
	t, ok := s.store.Table(collection)
	if !ok {
		return nil, false, fmt.Errorf("wrapper: no table %q", collection)
	}
	if cmp.Op != stats.CmpEQ || !t.HasIndex(cmp.Left.Attr) {
		return nil, false, nil
	}
	it, err := t.Probe(cmp.Left.Attr, cmp.Op, cmp.RightConst)
	if err != nil {
		return nil, false, nil
	}
	var rows []types.Row
	for {
		row, ok := it.Next()
		if !ok {
			return rows, true, nil
		}
		rows = append(rows, row)
	}
}

func (s relSource) deliver(n int) { s.store.DeliverOutput(n) }

// Execute implements Wrapper.
func (w *RelWrapper) Execute(plan *algebra.Node) (*Result, error) {
	if err := checkCapabilities(w, plan); err != nil {
		return nil, err
	}
	return runSubplan(relSource{store: w.store}, plan)
}
