package wrapper

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/filestore"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// FileWrapper exposes flat record files. It is the degenerate wrapper of
// the spectrum: it exports NO statistics and NO cost rules, and can only
// scan and filter — the mediator must carry the whole estimate with its
// default scope and "standard values" (paper §6).
type FileWrapper struct {
	name  string
	store *filestore.Store
}

// NewFileWrapper wraps a file store under the registered name.
func NewFileWrapper(name string, store *filestore.Store) *FileWrapper {
	return &FileWrapper{name: name, store: store}
}

// Store exposes the underlying store.
func (w *FileWrapper) Store() *filestore.Store { return w.store }

// Name implements Wrapper.
func (w *FileWrapper) Name() string { return w.name }

// Clock implements Wrapper.
func (w *FileWrapper) Clock() *netsim.Clock { return w.store.Clock() }

// Collections implements Wrapper.
func (w *FileWrapper) Collections() []string { return w.store.Files() }

// Capabilities implements Wrapper: files can be scanned, filtered and
// projected, nothing more.
func (w *FileWrapper) Capabilities() Capabilities {
	return Capabilities{Select: true, Project: true}
}

// Schema implements Wrapper.
func (w *FileWrapper) Schema(collection string) (*types.Schema, error) {
	f, ok := w.store.File(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: %s has no file %q", w.name, collection)
	}
	return f.Schema(), nil
}

// ExtentStats implements Wrapper: files export no statistics.
func (w *FileWrapper) ExtentStats(string) (stats.ExtentStats, bool) {
	return stats.ExtentStats{}, false
}

// AttributeStats implements Wrapper: files export no statistics.
func (w *FileWrapper) AttributeStats(string, string) (stats.AttributeStats, bool) {
	return stats.AttributeStats{}, false
}

// CostRules implements Wrapper: files export no rules.
func (w *FileWrapper) CostRules() string { return "" }

// fileSource adapts the store to the shared evaluator.
type fileSource struct{ store *filestore.Store }

func (s fileSource) scanAll(collection string) ([]types.Row, error) {
	f, ok := s.store.File(collection)
	if !ok {
		return nil, fmt.Errorf("wrapper: no file %q", collection)
	}
	var rows []types.Row
	it := f.Scan()
	for {
		row, ok := it.Next()
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func (s fileSource) indexSelect(string, algebra.Comparison) ([]types.Row, bool, error) {
	return nil, false, nil // files have no indexes
}

func (s fileSource) deliver(n int) { s.store.DeliverOutput(n) }

// Execute implements Wrapper.
func (w *FileWrapper) Execute(plan *algebra.Node) (*Result, error) {
	if err := checkCapabilities(w, plan); err != nil {
		return nil, err
	}
	return runSubplan(fileSource{store: w.store}, plan)
}
