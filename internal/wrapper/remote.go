package wrapper

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/proto"
	"disco/internal/stats"
	"disco/internal/types"
)

// ErrUnavailable marks a wrapper as unreachable after the self-healing
// machinery gave up: retries were exhausted, redialing failed, or the
// remote declared itself down. The engine treats a submit failing with
// this error as a source outage and degrades to a partial answer rather
// than failing the query.
var ErrUnavailable = errors.New("wrapper unavailable")

// RetryPolicy governs RemoteWrapper's per-request resilience: every
// request runs under a wall-clock I/O deadline, transport failures tear
// the connection down and redial, and retries back off exponentially.
// Backoff is charged to the mediator's virtual clock so that waiting out
// a flaky source costs simulated time, exactly like any other work.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per request (minimum 1).
	MaxAttempts int
	// BackoffMS is the virtual-clock backoff before the first retry.
	BackoffMS float64
	// BackoffMult scales the backoff on each further retry.
	BackoffMult float64
	// MaxBackoffMS caps the per-retry backoff.
	MaxBackoffMS float64
	// IOTimeout is the wall-clock deadline for one send+receive; zero
	// disables deadlines (not recommended outside tests).
	IOTimeout time.Duration
}

// DefaultRetryPolicy absorbs transient faults without masking a truly
// dead source for long: four attempts, 25 ms starting backoff doubling to
// a 400 ms ceiling, 5 s I/O deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BackoffMS: 25, BackoffMult: 2, MaxBackoffMS: 400, IOTimeout: 5 * time.Second}
}

// backoffMS returns the virtual backoff before the given retry (1-based).
func (p RetryPolicy) backoffMS(retry int) float64 {
	b := p.BackoffMS
	for i := 1; i < retry; i++ {
		b *= p.BackoffMult
	}
	if p.MaxBackoffMS > 0 && b > p.MaxBackoffMS {
		b = p.MaxBackoffMS
	}
	return b
}

// RemoteStats counts the self-healing machinery's interventions.
type RemoteStats struct {
	// Retries is the number of request re-attempts (any cause).
	Retries int
	// Redials is the number of reconnects after a torn-down transport.
	Redials int
}

// RemoteWrapper exposes a wrapper running in another process (served by
// Serve / cmd/wrapperd) to a local mediator. The registration payload is
// fetched once at dial time; subplans are shipped as serialized plans and
// the remote's measured virtual time is merged into the mediator's clock,
// so response-time accounting stays consistent across processes.
//
// The transport self-heals: requests run under an I/O deadline, any
// send/receive failure discards the connection (never reusing a half-read
// stream) and redials, and failed attempts retry with exponential backoff
// until RetryPolicy.MaxAttempts is exhausted — at which point the error
// wraps ErrUnavailable so the mediator can degrade gracefully.
type RemoteWrapper struct {
	clock  *netsim.Clock
	policy RetryPolicy
	dial   func() (net.Conn, error) // nil: connection cannot be re-established

	mu      sync.Mutex
	conn    net.Conn
	r       *proto.Reader
	stats   RemoteStats
	meta    *proto.WrapperMeta
	schemas map[string]*types.Schema
	caps    Capabilities
}

// DialRemote connects to a wrapper server with the default retry policy
// and fetches its registration payload. clock is the mediator's virtual
// clock.
func DialRemote(addr string, clock *netsim.Clock) (*RemoteWrapper, error) {
	return DialRemotePolicy(addr, clock, DefaultRetryPolicy())
}

// DialRemotePolicy is DialRemote with an explicit retry policy.
func DialRemotePolicy(addr string, clock *netsim.Clock, policy RetryPolicy) (*RemoteWrapper, error) {
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("wrapper: dialing %s: %w", addr, err)
	}
	return newRemote(conn, clock, dial, policy)
}

// NewRemoteWrapper wraps an established connection (tests use net.Pipe).
// Without a dialer the wrapper cannot redial: the first transport failure
// after the initial handshake makes it unavailable.
func NewRemoteWrapper(conn net.Conn, clock *netsim.Clock) (*RemoteWrapper, error) {
	return newRemote(conn, clock, nil, DefaultRetryPolicy())
}

// NewRemoteWrapperPolicy wraps an established connection with an explicit
// redial function (nil disables reconnecting) and retry policy.
func NewRemoteWrapperPolicy(conn net.Conn, clock *netsim.Clock, dial func() (net.Conn, error), policy RetryPolicy) (*RemoteWrapper, error) {
	return newRemote(conn, clock, dial, policy)
}

func newRemote(conn net.Conn, clock *netsim.Clock, dial func() (net.Conn, error), policy RetryPolicy) (*RemoteWrapper, error) {
	if clock == nil {
		clock = netsim.NewClock()
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	w := &RemoteWrapper{clock: clock, policy: policy, dial: dial, conn: conn, r: proto.NewReader(conn)}
	resp, err := w.roundtrip(&proto.WrapperRequest{Op: "meta"})
	if err != nil {
		w.Close()
		return nil, err
	}
	if resp.Meta == nil {
		w.Close()
		return nil, fmt.Errorf("wrapper: remote returned no registration payload")
	}
	w.meta = resp.Meta
	w.caps = Capabilities{
		Select:    resp.Meta.Capabilities.Select,
		Project:   resp.Meta.Capabilities.Project,
		Join:      resp.Meta.Capabilities.Join,
		Sort:      resp.Meta.Capabilities.Sort,
		Aggregate: resp.Meta.Capabilities.Aggregate,
		Union:     resp.Meta.Capabilities.Union,
		DupElim:   resp.Meta.Capabilities.DupElim,
	}
	w.schemas = make(map[string]*types.Schema, len(resp.Meta.Collections))
	for _, c := range resp.Meta.Collections {
		schema, err := proto.DecodeSchema(c.Schema)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("wrapper: remote schema of %s: %w", c.Name, err)
		}
		w.schemas[c.Name] = schema
	}
	return w, nil
}

// Close shuts the connection down.
func (w *RemoteWrapper) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn == nil {
		return nil
	}
	err := w.conn.Close()
	w.conn, w.r = nil, nil
	return err
}

// Stats reports how often the transport retried and redialed.
func (w *RemoteWrapper) Stats() RemoteStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// teardown discards the connection after a transport failure. The stream
// may hold a half-written request or a half-read response; reusing it
// would desync every subsequent exchange (the next reply would answer the
// previous request), so the connection is closed and redialed instead.
func (w *RemoteWrapper) teardown() {
	if w.conn != nil {
		w.conn.Close()
	}
	w.conn, w.r = nil, nil
}

// roundtrip sends one request and decodes its response, healing the
// transport as needed: backoff (virtual time) between attempts, redial
// after teardown, bounded by the retry policy. Responses marked
// Unavailable, and exhausted retries, return an error wrapping
// ErrUnavailable.
func (w *RemoteWrapper) roundtrip(req *proto.WrapperRequest) (*proto.WrapperResponse, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= w.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			// Waiting out a flaky source costs simulated time.
			w.clock.Advance(w.policy.backoffMS(attempt - 1))
			w.stats.Retries++
		}
		if w.conn == nil {
			if w.dial == nil {
				return nil, fmt.Errorf("wrapper: connection lost and no redial target (last error: %v): %w",
					lastErr, ErrUnavailable)
			}
			conn, err := w.dial()
			if err != nil {
				lastErr = err
				continue
			}
			w.conn, w.r = conn, proto.NewReader(conn)
			w.stats.Redials++
		}
		resp, err := w.attempt(req)
		if err != nil {
			// Transport failure: the stream state is unknown — discard it.
			lastErr = err
			w.teardown()
			continue
		}
		// The remote measured virtual time even for failed attempts;
		// merge it so injected delays and wasted work stay accounted.
		w.clock.Advance(resp.VirtualMS)
		switch {
		case resp.Unavailable:
			w.teardown()
			return nil, fmt.Errorf("wrapper: remote declared itself down: %s: %w", resp.Error, ErrUnavailable)
		case resp.OK:
			return resp, nil
		case resp.Retryable:
			lastErr = fmt.Errorf("wrapper: remote transient error: %s", resp.Error)
		default:
			// Semantic failure: retrying cannot help.
			return nil, fmt.Errorf("wrapper: remote: %s", resp.Error)
		}
	}
	return nil, fmt.Errorf("wrapper: request failed after %d attempts (last error: %v): %w",
		w.policy.MaxAttempts, lastErr, ErrUnavailable)
}

// attempt performs one deadline-bounded send+receive on the live
// connection.
func (w *RemoteWrapper) attempt(req *proto.WrapperRequest) (*proto.WrapperResponse, error) {
	if w.policy.IOTimeout > 0 {
		w.conn.SetDeadline(time.Now().Add(w.policy.IOTimeout))
		defer w.conn.SetDeadline(time.Time{})
	}
	if err := proto.Write(w.conn, req); err != nil {
		return nil, fmt.Errorf("wrapper: remote send: %w", err)
	}
	resp, err := w.r.ReadWrapperResponse()
	if err != nil {
		return nil, fmt.Errorf("wrapper: remote receive: %w", err)
	}
	return resp, nil
}

// Name implements Wrapper.
func (w *RemoteWrapper) Name() string { return w.meta.Name }

// Clock implements Wrapper: the mediator's clock (remote time merges into
// it on every execute).
func (w *RemoteWrapper) Clock() *netsim.Clock { return w.clock }

// Collections implements Wrapper.
func (w *RemoteWrapper) Collections() []string {
	out := make([]string, 0, len(w.meta.Collections))
	for _, c := range w.meta.Collections {
		out = append(out, c.Name)
	}
	return out
}

// Capabilities implements Wrapper.
func (w *RemoteWrapper) Capabilities() Capabilities { return w.caps }

// Schema implements Wrapper.
func (w *RemoteWrapper) Schema(collection string) (*types.Schema, error) {
	if s, ok := w.schemas[collection]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("wrapper: remote %s has no collection %q", w.meta.Name, collection)
}

func (w *RemoteWrapper) collMeta(collection string) (*proto.CollectionMeta, bool) {
	for i := range w.meta.Collections {
		if w.meta.Collections[i].Name == collection {
			return &w.meta.Collections[i], true
		}
	}
	return nil, false
}

// ExtentStats implements Wrapper.
func (w *RemoteWrapper) ExtentStats(collection string) (stats.ExtentStats, bool) {
	c, ok := w.collMeta(collection)
	if !ok || c.Extent == nil {
		return stats.ExtentStats{}, false
	}
	return stats.ExtentStats{
		CountObject: c.Extent.CountObject,
		TotalSize:   c.Extent.TotalSize,
		ObjectSize:  c.Extent.ObjectSize,
	}, true
}

// AttributeStats implements Wrapper.
func (w *RemoteWrapper) AttributeStats(collection, attr string) (stats.AttributeStats, bool) {
	c, ok := w.collMeta(collection)
	if !ok {
		return stats.AttributeStats{}, false
	}
	a, ok := c.Attrs[attr]
	if !ok {
		return stats.AttributeStats{}, false
	}
	return proto.DecodeAttrStats(a), true
}

// CostRules implements Wrapper.
func (w *RemoteWrapper) CostRules() string { return w.meta.CostRules }

// Execute implements Wrapper: ships the subplan and decodes the rows. The
// remote's measured virtual time (roundtrip merges it) advances the
// mediator clock.
func (w *RemoteWrapper) Execute(plan *algebra.Node) (*Result, error) {
	resp, err := w.roundtrip(&proto.WrapperRequest{Op: "execute", Plan: proto.EncodePlan(plan)})
	if err != nil {
		return nil, err
	}
	rows := make([]types.Row, len(resp.Rows))
	for i, enc := range resp.Rows {
		row := make(types.Row, len(enc))
		for j, v := range enc {
			row[j] = proto.DecodeConstant(v)
		}
		rows[i] = row
	}
	return &Result{Rows: rows, Schema: plan.OutSchema, Bytes: resp.Bytes}, nil
}

// Serve answers the wrapper wire protocol for one local wrapper,
// accepting connections until the listener closes. Each connection is
// served on its own goroutine.
func Serve(ln net.Listener, w Wrapper) error { return ServeFaulty(ln, w, nil) }

// ServeFaulty is Serve through a fault injector: each request first
// consults inj (nil injects nothing) and the decided fault is applied at
// the transport — delays are billed as wrapper virtual time, errors
// answer with a retryable failure, drops cut the connection mid-frame,
// and unavailability refuses the request and every later one. cmd/wrapperd
// wires its -faults flag here; in-process test servers drive the fault
// matrix through the same path.
//
// Locking is scoped per request type. Only "execute" takes clockMu: the
// virtual clock is per-process state shared by every connection, and the
// elapsed-time measurement (Now, Execute, Now) must not interleave with
// another execute or both would bill each other's virtual time — so the
// lock is process-wide by design, not an accident of plumbing. "meta" and
// "ping" read only the wrapper's immutable registration state and run
// lock-free, so catalog refreshes on one connection never stall behind a
// long-running execute on another.
func ServeFaulty(ln net.Listener, w Wrapper, inj *netsim.Injector) error {
	var clockMu sync.Mutex
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, w, &clockMu, inj)
	}
}

func serveConn(conn net.Conn, w Wrapper, clockMu *sync.Mutex, inj *netsim.Injector) {
	defer conn.Close()
	r := proto.NewReader(conn)
	for {
		req, err := r.ReadWrapperRequest()
		if err != nil {
			return
		}
		fault := inj.Next()
		switch fault.Kind {
		case netsim.FaultUnavailable:
			// Answer once so the client can stop retrying, then cut the
			// connection; later connections hit the latched injector too.
			proto.Write(conn, &proto.WrapperResponse{
				Error: "injected fault: wrapper unavailable", Unavailable: true,
			})
			return
		case netsim.FaultError:
			resp := &proto.WrapperResponse{
				Error: "injected fault: transient error", Retryable: true, VirtualMS: fault.DelayMS,
			}
			if err := proto.Write(conn, resp); err != nil {
				return
			}
			continue
		}
		resp := handleWrapperRequest(req, w, clockMu)
		// A slow source bills its delay as virtual time the client merges.
		resp.VirtualMS += fault.DelayMS
		if fault.Kind == netsim.FaultDrop {
			// The connection dies while the response is in flight: the
			// client observes a mid-frame cut and must discard the stream.
			proto.WriteTruncated(conn, resp, 0.5)
			return
		}
		if err := proto.Write(conn, resp); err != nil {
			return
		}
	}
}

func handleWrapperRequest(req *proto.WrapperRequest, w Wrapper, clockMu *sync.Mutex) *proto.WrapperResponse {
	switch req.Op {
	case "ping":
		return &proto.WrapperResponse{OK: true}

	case "meta":
		meta := &proto.WrapperMeta{Name: w.Name(), CostRules: w.CostRules()}
		caps := w.Capabilities()
		meta.Capabilities = proto.CapsJSON{
			Select: caps.Select, Project: caps.Project, Join: caps.Join,
			Sort: caps.Sort, Aggregate: caps.Aggregate, Union: caps.Union,
			DupElim: caps.DupElim,
		}
		for _, coll := range w.Collections() {
			schema, err := w.Schema(coll)
			if err != nil {
				return &proto.WrapperResponse{Error: err.Error()}
			}
			cm := proto.CollectionMeta{Name: coll, Schema: proto.EncodeSchema(schema)}
			if ext, ok := w.ExtentStats(coll); ok {
				cm.Extent = &proto.ExtentJSON{
					CountObject: ext.CountObject, TotalSize: ext.TotalSize, ObjectSize: ext.ObjectSize,
				}
			}
			for i := 0; i < schema.Len(); i++ {
				attr := schema.Field(i).Name
				if st, ok := w.AttributeStats(coll, attr); ok {
					if cm.Attrs == nil {
						cm.Attrs = make(map[string]proto.AttrStatsJSON)
					}
					cm.Attrs[attr] = proto.EncodeAttrStats(st)
				}
			}
			meta.Collections = append(meta.Collections, cm)
		}
		return &proto.WrapperResponse{OK: true, Meta: meta}

	case "execute":
		plan, err := proto.DecodePlan(req.Plan)
		if err != nil {
			return &proto.WrapperResponse{Error: err.Error()}
		}
		if plan == nil {
			return &proto.WrapperResponse{Error: "execute needs a plan"}
		}
		// Plan decoding stays outside the critical section; only the
		// clock-bracketed execution is serialized.
		clockMu.Lock()
		start := w.Clock().Now()
		res, err := w.Execute(plan)
		elapsed := w.Clock().Now() - start
		clockMu.Unlock()
		if err != nil {
			return &proto.WrapperResponse{Error: err.Error()}
		}
		resp := &proto.WrapperResponse{OK: true, Bytes: res.Bytes, VirtualMS: elapsed}
		for _, row := range res.Rows {
			resp.Rows = append(resp.Rows, proto.EncodeRow(row))
		}
		return resp

	default:
		return &proto.WrapperResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
