package wrapper

import (
	"fmt"
	"net"
	"sync"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/proto"
	"disco/internal/stats"
	"disco/internal/types"
)

// RemoteWrapper exposes a wrapper running in another process (served by
// Serve / cmd/wrapperd) to a local mediator. The registration payload is
// fetched once at dial time; subplans are shipped as serialized plans and
// the remote's measured virtual time is merged into the mediator's clock,
// so response-time accounting stays consistent across processes.
type RemoteWrapper struct {
	clock *netsim.Clock

	mu      sync.Mutex
	conn    net.Conn
	r       *proto.Reader
	meta    *proto.WrapperMeta
	schemas map[string]*types.Schema
	caps    Capabilities
}

// DialRemote connects to a wrapper server and fetches its registration
// payload. clock is the mediator's virtual clock.
func DialRemote(addr string, clock *netsim.Clock) (*RemoteWrapper, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wrapper: dialing %s: %w", addr, err)
	}
	return NewRemoteWrapper(conn, clock)
}

// NewRemoteWrapper wraps an established connection (tests use net.Pipe).
func NewRemoteWrapper(conn net.Conn, clock *netsim.Clock) (*RemoteWrapper, error) {
	if clock == nil {
		clock = netsim.NewClock()
	}
	w := &RemoteWrapper{clock: clock, conn: conn, r: proto.NewReader(conn)}
	resp, err := w.roundtrip(&proto.WrapperRequest{Op: "meta"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Meta == nil {
		conn.Close()
		return nil, fmt.Errorf("wrapper: remote returned no registration payload")
	}
	w.meta = resp.Meta
	w.caps = Capabilities{
		Select:    resp.Meta.Capabilities.Select,
		Project:   resp.Meta.Capabilities.Project,
		Join:      resp.Meta.Capabilities.Join,
		Sort:      resp.Meta.Capabilities.Sort,
		Aggregate: resp.Meta.Capabilities.Aggregate,
		Union:     resp.Meta.Capabilities.Union,
		DupElim:   resp.Meta.Capabilities.DupElim,
	}
	w.schemas = make(map[string]*types.Schema, len(resp.Meta.Collections))
	for _, c := range resp.Meta.Collections {
		schema, err := proto.DecodeSchema(c.Schema)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("wrapper: remote schema of %s: %w", c.Name, err)
		}
		w.schemas[c.Name] = schema
	}
	return w, nil
}

// Close shuts the connection down.
func (w *RemoteWrapper) Close() error { return w.conn.Close() }

func (w *RemoteWrapper) roundtrip(req *proto.WrapperRequest) (*proto.WrapperResponse, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := proto.Write(w.conn, req); err != nil {
		return nil, fmt.Errorf("wrapper: remote send: %w", err)
	}
	resp, err := w.r.ReadWrapperResponse()
	if err != nil {
		return nil, fmt.Errorf("wrapper: remote receive: %w", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("wrapper: remote: %s", resp.Error)
	}
	return resp, nil
}

// Name implements Wrapper.
func (w *RemoteWrapper) Name() string { return w.meta.Name }

// Clock implements Wrapper: the mediator's clock (remote time merges into
// it on every execute).
func (w *RemoteWrapper) Clock() *netsim.Clock { return w.clock }

// Collections implements Wrapper.
func (w *RemoteWrapper) Collections() []string {
	out := make([]string, 0, len(w.meta.Collections))
	for _, c := range w.meta.Collections {
		out = append(out, c.Name)
	}
	return out
}

// Capabilities implements Wrapper.
func (w *RemoteWrapper) Capabilities() Capabilities { return w.caps }

// Schema implements Wrapper.
func (w *RemoteWrapper) Schema(collection string) (*types.Schema, error) {
	if s, ok := w.schemas[collection]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("wrapper: remote %s has no collection %q", w.meta.Name, collection)
}

func (w *RemoteWrapper) collMeta(collection string) (*proto.CollectionMeta, bool) {
	for i := range w.meta.Collections {
		if w.meta.Collections[i].Name == collection {
			return &w.meta.Collections[i], true
		}
	}
	return nil, false
}

// ExtentStats implements Wrapper.
func (w *RemoteWrapper) ExtentStats(collection string) (stats.ExtentStats, bool) {
	c, ok := w.collMeta(collection)
	if !ok || c.Extent == nil {
		return stats.ExtentStats{}, false
	}
	return stats.ExtentStats{
		CountObject: c.Extent.CountObject,
		TotalSize:   c.Extent.TotalSize,
		ObjectSize:  c.Extent.ObjectSize,
	}, true
}

// AttributeStats implements Wrapper.
func (w *RemoteWrapper) AttributeStats(collection, attr string) (stats.AttributeStats, bool) {
	c, ok := w.collMeta(collection)
	if !ok {
		return stats.AttributeStats{}, false
	}
	a, ok := c.Attrs[attr]
	if !ok {
		return stats.AttributeStats{}, false
	}
	return proto.DecodeAttrStats(a), true
}

// CostRules implements Wrapper.
func (w *RemoteWrapper) CostRules() string { return w.meta.CostRules }

// Execute implements Wrapper: ships the subplan, decodes the rows, and
// advances the mediator clock by the remote's measured virtual time.
func (w *RemoteWrapper) Execute(plan *algebra.Node) (*Result, error) {
	resp, err := w.roundtrip(&proto.WrapperRequest{Op: "execute", Plan: proto.EncodePlan(plan)})
	if err != nil {
		return nil, err
	}
	rows := make([]types.Row, len(resp.Rows))
	for i, enc := range resp.Rows {
		row := make(types.Row, len(enc))
		for j, v := range enc {
			row[j] = proto.DecodeConstant(v)
		}
		rows[i] = row
	}
	w.clock.Advance(resp.VirtualMS)
	return &Result{Rows: rows, Schema: plan.OutSchema, Bytes: resp.Bytes}, nil
}

// Serve answers the wrapper wire protocol for one local wrapper,
// accepting connections until the listener closes. Each connection is
// served on its own goroutine.
//
// Locking is scoped per request type. Only "execute" takes clockMu: the
// virtual clock is per-process state shared by every connection, and the
// elapsed-time measurement (Now, Execute, Now) must not interleave with
// another execute or both would bill each other's virtual time — so the
// lock is process-wide by design, not an accident of plumbing. "meta" and
// "ping" read only the wrapper's immutable registration state and run
// lock-free, so catalog refreshes on one connection never stall behind a
// long-running execute on another.
func Serve(ln net.Listener, w Wrapper) error {
	var clockMu sync.Mutex
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, w, &clockMu)
	}
}

func serveConn(conn net.Conn, w Wrapper, clockMu *sync.Mutex) {
	defer conn.Close()
	r := proto.NewReader(conn)
	for {
		req, err := r.ReadWrapperRequest()
		if err != nil {
			return
		}
		resp := handleWrapperRequest(req, w, clockMu)
		if err := proto.Write(conn, resp); err != nil {
			return
		}
	}
}

func handleWrapperRequest(req *proto.WrapperRequest, w Wrapper, clockMu *sync.Mutex) *proto.WrapperResponse {
	switch req.Op {
	case "ping":
		return &proto.WrapperResponse{OK: true}

	case "meta":
		meta := &proto.WrapperMeta{Name: w.Name(), CostRules: w.CostRules()}
		caps := w.Capabilities()
		meta.Capabilities = proto.CapsJSON{
			Select: caps.Select, Project: caps.Project, Join: caps.Join,
			Sort: caps.Sort, Aggregate: caps.Aggregate, Union: caps.Union,
			DupElim: caps.DupElim,
		}
		for _, coll := range w.Collections() {
			schema, err := w.Schema(coll)
			if err != nil {
				return &proto.WrapperResponse{Error: err.Error()}
			}
			cm := proto.CollectionMeta{Name: coll, Schema: proto.EncodeSchema(schema)}
			if ext, ok := w.ExtentStats(coll); ok {
				cm.Extent = &proto.ExtentJSON{
					CountObject: ext.CountObject, TotalSize: ext.TotalSize, ObjectSize: ext.ObjectSize,
				}
			}
			for i := 0; i < schema.Len(); i++ {
				attr := schema.Field(i).Name
				if st, ok := w.AttributeStats(coll, attr); ok {
					if cm.Attrs == nil {
						cm.Attrs = make(map[string]proto.AttrStatsJSON)
					}
					cm.Attrs[attr] = proto.EncodeAttrStats(st)
				}
			}
			meta.Collections = append(meta.Collections, cm)
		}
		return &proto.WrapperResponse{OK: true, Meta: meta}

	case "execute":
		plan, err := proto.DecodePlan(req.Plan)
		if err != nil {
			return &proto.WrapperResponse{Error: err.Error()}
		}
		if plan == nil {
			return &proto.WrapperResponse{Error: "execute needs a plan"}
		}
		// Plan decoding stays outside the critical section; only the
		// clock-bracketed execution is serialized.
		clockMu.Lock()
		start := w.Clock().Now()
		res, err := w.Execute(plan)
		elapsed := w.Clock().Now() - start
		clockMu.Unlock()
		if err != nil {
			return &proto.WrapperResponse{Error: err.Error()}
		}
		resp := &proto.WrapperResponse{OK: true, Bytes: res.Bytes, VirtualMS: elapsed}
		for _, row := range res.Rows {
			resp.Rows = append(resp.Rows, proto.EncodeRow(row))
		}
		return resp

	default:
		return &proto.WrapperResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
