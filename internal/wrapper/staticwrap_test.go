package wrapper

import (
	"testing"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// figure6IDL is the paper's Employee interface (Figures 3/4) with a cost
// section attached.
const figure6IDL = `
interface Employee {
  attribute Long salary;
  attribute String Name;
  short age();
  cardinality extent(out long CountObject, out long TotalSize, out long ObjectSize);
  cardinality attribute(in String AttributeName, out Boolean Indexed,
                        out Long CountDistinct, out Constant Min, out Constant Max);
  cost {
    select(Employee, salary = V) {
      CountObject = Employee.CountObject * selectivity(salary, V);
      TotalTime   = 120 + Employee.TotalSize * 0.012;
    }
  }
};
`

func newStatic(t *testing.T) *StaticWrapper {
	t.Helper()
	w, err := NewStaticWrapper("legacy", figure6IDL, netsim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 6 statistics, hand-declared.
	if err := w.DeclareExtent("Employee", stats.ExtentStats{
		CountObject: 10000, TotalSize: 1_200_000, ObjectSize: 120}); err != nil {
		t.Fatal(err)
	}
	if err := w.DeclareAttribute("Employee", "salary", stats.AttributeStats{
		Indexed: true, CountDistinct: 10000,
		Min: types.Int(1000), Max: types.Int(30000)}); err != nil {
		t.Fatal(err)
	}
	if err := w.DeclareAttribute("Employee", "Name", stats.AttributeStats{
		Indexed: true, CountDistinct: 10000,
		Min: types.Str("Adiba"), Max: types.Str("Valduriez")}); err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, types.Row{types.Int(int64(1000 + i*290)), types.Str("emp")})
	}
	if err := w.Load("Employee", rows); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStaticWrapperDeclaration(t *testing.T) {
	w := newStatic(t)
	if got := w.Collections(); len(got) != 1 || got[0] != "Employee" {
		t.Errorf("collections = %v", got)
	}
	ext, ok := w.ExtentStats("Employee")
	if !ok || ext.CountObject != 10000 || ext.ObjectSize != 120 {
		t.Errorf("extent = %+v, %v", ext, ok)
	}
	ast, ok := w.AttributeStats("Employee", "salary")
	if !ok || !ast.Indexed || ast.Min.AsInt() != 1000 || ast.Max.AsInt() != 30000 {
		t.Errorf("salary stats = %+v", ast)
	}
	name, ok := w.AttributeStats("employee", "name")
	if !ok || name.Min.AsString() != "Adiba" {
		t.Errorf("name stats = %+v, %v", name, ok)
	}
	if w.CostRules() == "" {
		t.Error("cost section should be exported")
	}
	if w.Capabilities().Join {
		t.Error("declared wrapper should not join")
	}
}

func TestStaticWrapperExecute(t *testing.T) {
	w := newStatic(t)
	plan := algebra.Select(algebra.Scan("legacy", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "salary"},
			stats.CmpLT, types.Int(2000)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{w}); err != nil {
		t.Fatal(err)
	}
	start := w.Clock().Now()
	res, err := w.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 1000, 1290, 1580, 1870
		t.Errorf("rows = %d", len(res.Rows))
	}
	if w.Clock().Now()-start != 100*0.5 {
		t.Errorf("scan cost = %v, want 50", w.Clock().Now()-start)
	}
}

func TestStaticWrapperErrors(t *testing.T) {
	if _, err := NewStaticWrapper("x", `interface T { attribute bogus x; };`, nil); err == nil {
		t.Error("bad IDL should fail")
	}
	w := newStatic(t)
	if err := w.Load("Nope", nil); err == nil {
		t.Error("unknown collection should fail")
	}
	if err := w.Load("Employee", []types.Row{{types.Int(1)}}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := w.DeclareExtent("Nope", stats.ExtentStats{}); err == nil {
		t.Error("unknown collection extent should fail")
	}
	if err := w.DeclareAttribute("Employee", "bogus", stats.AttributeStats{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	// IDL without cardinality methods cannot declare statistics.
	w2, err := NewStaticWrapper("bare", `interface T { attribute long x; };`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.DeclareExtent("T", stats.ExtentStats{}); err == nil {
		t.Error("extent without cardinality method should fail")
	}
	if err := w2.DeclareAttribute("T", "x", stats.AttributeStats{}); err == nil {
		t.Error("attribute without cardinality method should fail")
	}
	if w2.CostRules() != "" {
		t.Error("bare IDL exports no rules")
	}
}
