package wrapper

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/costlang"
	"disco/internal/filestore"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/relstore"
	"disco/internal/stats"
	"disco/internal/types"
)

func empSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Employee", Type: types.KindString},
		types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
	)
}

func newObjWrapper(t *testing.T, n int) *ObjWrapper {
	t.Helper()
	store := objstore.Open(objstore.DefaultConfig(), netsim.NewClock())
	c, err := store.CreateCollection("Employee", empSchema(), 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{types.Int(int64(i)),
			types.Str([]string{"ana", "bob", "cyd", "dee"}[i%4]),
			types.Int(int64(1000 + i%100))}
		if err := c.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateIndex("id", true); err != nil {
		t.Fatal(err)
	}
	return NewObjWrapper("obj1", store)
}

func resolveAt(t *testing.T, w Wrapper, plan *algebra.Node) *algebra.Node {
	t.Helper()
	src := wrapperSchemaSource{w}
	if err := algebra.Resolve(plan, src); err != nil {
		t.Fatal(err)
	}
	return plan
}

// wrapperSchemaSource resolves plans directly against one wrapper.
type wrapperSchemaSource struct{ w Wrapper }

func (s wrapperSchemaSource) CollectionSchema(_, collection string) (*types.Schema, error) {
	return s.w.Schema(collection)
}

func selPred(attr string, op stats.CmpOp, v int64) *algebra.Predicate {
	return algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: attr}, op, types.Int(v))
}

func TestObjWrapperRegistration(t *testing.T) {
	w := newObjWrapper(t, 400)
	if w.Name() != "obj1" {
		t.Error("name")
	}
	if got := w.Collections(); len(got) != 1 || got[0] != "Employee" {
		t.Errorf("collections = %v", got)
	}
	if _, err := w.Schema("Nope"); err == nil {
		t.Error("unknown collection should fail")
	}
	ext, ok := w.ExtentStats("Employee")
	if !ok || ext.CountObject != 400 {
		t.Errorf("extent = %+v, %v", ext, ok)
	}
	ast, ok := w.AttributeStats("Employee", "id")
	if !ok || !ast.Indexed || !ast.Clustered || ast.CountDistinct != 400 {
		t.Errorf("id stats = %+v, %v", ast, ok)
	}
	if _, ok := w.AttributeStats("Employee", "zzz"); ok {
		t.Error("unknown attribute stats should miss")
	}
	// The exported rules must parse.
	f, err := costlang.Parse(w.CostRules())
	if err != nil {
		t.Fatalf("exported rules do not parse: %v", err)
	}
	if len(f.Rules) < 8 {
		t.Errorf("exported %d rules, expected a full set", len(f.Rules))
	}
}

func TestObjWrapperExecuteScanSelect(t *testing.T) {
	w := newObjWrapper(t, 400)
	plan := resolveAt(t, w, algebra.Select(
		algebra.Scan("obj1", "Employee"), selPred("salary", stats.CmpGE, 1090)))
	res, err := w.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 { // salary in 1000..1099 uniform, >=1090 -> 10%
		t.Errorf("rows = %d, want 40", len(res.Rows))
	}
	if res.Schema.Len() != 3 || res.Bytes <= 0 {
		t.Errorf("result meta = %v, %d", res.Schema, res.Bytes)
	}
	if w.Clock().Now() <= 0 {
		t.Error("execution should advance the clock")
	}
}

func TestObjWrapperIndexVsSeqTiming(t *testing.T) {
	w := newObjWrapper(t, 4000)
	clock := w.Clock()

	w.Store().ResetBuffer()
	start := clock.Now()
	planIdx := resolveAt(t, w, algebra.Select(
		algebra.Scan("obj1", "Employee"), selPred("id", stats.CmpEQ, 7)))
	res, err := w.Execute(planIdx)
	if err != nil {
		t.Fatal(err)
	}
	idxTime := clock.Now() - start
	if len(res.Rows) != 1 {
		t.Fatalf("index probe rows = %d", len(res.Rows))
	}

	w.Store().ResetBuffer()
	start = clock.Now()
	planSeq := resolveAt(t, w, algebra.Select(
		algebra.Scan("obj1", "Employee"), selPred("salary", stats.CmpEQ, 1007)))
	if _, err := w.Execute(planSeq); err != nil {
		t.Fatal(err)
	}
	seqTime := clock.Now() - start
	if idxTime*10 > seqTime {
		t.Errorf("index probe (%v ms) should be much cheaper than seq scan (%v ms)", idxTime, seqTime)
	}
}

func TestObjWrapperFullPlanShapes(t *testing.T) {
	w := newObjWrapper(t, 400)
	// project(sort(dupelim(select)))
	plan := resolveAt(t, w,
		algebra.Project(
			algebra.Sort(
				algebra.DupElim(
					algebra.Project(
						algebra.Select(algebra.Scan("obj1", "Employee"), selPred("salary", stats.CmpLT, 1010)),
						"Employee.name")),
				algebra.SortKey{Attr: algebra.Ref{Attr: "name"}, Desc: true}),
			"name"))
	res, err := w.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("distinct names = %d, want 4: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].AsString() != "dee" {
		t.Errorf("desc sort first = %v", res.Rows[0])
	}

	// aggregate
	agg := resolveAt(t, w, algebra.Aggregate(
		algebra.Scan("obj1", "Employee"),
		[]algebra.Ref{{Collection: "Employee", Attr: "name"}},
		[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}}))
	res, err = w.Execute(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][1].AsInt() != 100 {
		t.Errorf("aggregate = %v", res.Rows)
	}

	// union + join
	u := resolveAt(t, w, algebra.Union(
		algebra.Select(algebra.Scan("obj1", "Employee"), selPred("id", stats.CmpLT, 10)),
		algebra.Select(algebra.Scan("obj1", "Employee"), selPred("id", stats.CmpGE, 390))))
	res, err = w.Execute(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Errorf("union = %d rows", len(res.Rows))
	}

	j := resolveAt(t, w, algebra.Join(
		algebra.Select(algebra.Scan("obj1", "Employee"), selPred("id", stats.CmpLT, 5)),
		algebra.Scan("obj1", "Employee"),
		algebra.NewJoinPred(algebra.Ref{Collection: "Employee", Attr: "id"}, algebra.Ref{Attr: "id"})))
	res, err = w.Execute(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || len(res.Rows[0]) != 6 {
		t.Errorf("join = %d rows of width %d", len(res.Rows), len(res.Rows[0]))
	}
}

func TestObjWrapperRejectsNestedSubmit(t *testing.T) {
	w := newObjWrapper(t, 10)
	plan := resolveAt(t, w, algebra.Scan("obj1", "Employee"))
	bad := algebra.Submit(plan, "obj1")
	bad.OutSchema = plan.OutSchema
	if _, err := w.Execute(bad); err == nil {
		t.Error("nested submit should be rejected")
	}
}

func TestRelWrapperExecuteAndRules(t *testing.T) {
	store := relstore.Open(relstore.DefaultConfig(), netsim.NewClock())
	tb, err := store.CreateTable("Book", types.NewSchema(
		types.Field{Name: "id", Collection: "Book", Type: types.KindInt},
		types.Field{Name: "author", Collection: "Book", Type: types.KindInt},
	), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tb.Insert(types.Row{types.Int(int64(i)), types.Int(int64(i % 50))})
	}
	if err := tb.CreateHashIndex("author"); err != nil {
		t.Fatal(err)
	}
	w := NewRelWrapper("rel1", store)
	if _, err := costlang.Parse(w.CostRules()); err != nil {
		t.Fatalf("rel rules do not parse: %v", err)
	}
	plan := algebra.Select(algebra.Scan("rel1", "Book"),
		algebra.NewSelPred(algebra.Ref{Collection: "Book", Attr: "author"}, stats.CmpEQ, types.Int(7)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{w}); err != nil {
		t.Fatal(err)
	}
	res, err := w.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("probe rows = %d, want 10", len(res.Rows))
	}
	ext, ok := w.ExtentStats("Book")
	if !ok || ext.CountObject != 500 {
		t.Errorf("extent = %+v", ext)
	}
}

func TestFileWrapperIsOpaque(t *testing.T) {
	store := filestore.Open(filestore.DefaultConfig(), netsim.NewClock())
	f, err := store.CreateFile("Docs", types.NewSchema(
		types.Field{Name: "id", Collection: "Docs", Type: types.KindInt},
		types.Field{Name: "title", Collection: "Docs", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.LoadCSV("1,alpha\n2,beta\n3,gamma"); err != nil {
		t.Fatal(err)
	}
	w := NewFileWrapper("files", store)
	if w.CostRules() != "" {
		t.Error("file wrapper must export no rules")
	}
	if _, ok := w.ExtentStats("Docs"); ok {
		t.Error("file wrapper must export no stats")
	}
	if w.Capabilities().Join {
		t.Error("file wrapper must not advertise joins")
	}
	plan := algebra.Select(algebra.Scan("files", "Docs"),
		algebra.NewSelPred(algebra.Ref{Collection: "Docs", Attr: "id"}, stats.CmpGT, types.Int(1)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{w}); err != nil {
		t.Fatal(err)
	}
	res, err := w.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// A join pushed at the file wrapper must be refused.
	j := algebra.Join(algebra.Scan("files", "Docs"), algebra.Scan("files", "Docs"),
		algebra.NewJoinPred(algebra.Ref{Attr: "id"}, algebra.Ref{Attr: "id"}))
	if err := algebra.Resolve(j, wrapperSchemaSource{w}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(j); err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Errorf("join at file wrapper: err = %v", err)
	}
}

func TestCapabilitiesSupports(t *testing.T) {
	all := AllCapabilities()
	kinds := []algebra.OpKind{algebra.OpScan, algebra.OpSelect, algebra.OpProject,
		algebra.OpSort, algebra.OpJoin, algebra.OpUnion, algebra.OpDupElim, algebra.OpAggregate}
	for _, k := range kinds {
		if !all.Supports(k) {
			t.Errorf("all capabilities should support %s", k)
		}
	}
	if all.Supports(algebra.OpSubmit) {
		t.Error("submit is never wrapper-executable")
	}
	var none Capabilities
	if !none.Supports(algebra.OpScan) {
		t.Error("every wrapper can scan")
	}
	if none.Supports(algebra.OpSelect) {
		t.Error("empty capabilities should refuse select")
	}
}

func TestExecuteUnresolvedPlanFails(t *testing.T) {
	w := newObjWrapper(t, 10)
	if _, err := w.Execute(algebra.Scan("obj1", "Employee")); err == nil {
		t.Error("unresolved plan should be rejected")
	}
}
