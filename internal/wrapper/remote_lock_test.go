package wrapper

import (
	"sync"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// blockingWrapper delegates to a real wrapper but parks every Execute
// until released, so tests can hold the server's clock lock open.
type blockingWrapper struct {
	Wrapper
	entered chan struct{} // receives one value per Execute that started
	release chan struct{} // closed to let executes proceed
}

func (b *blockingWrapper) Execute(plan *algebra.Node) (*Result, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Wrapper.Execute(plan)
}

// TestMetaNotSerializedBehindExecute is the regression test for the
// Serve lock scoping: "meta" (and "ping") must not queue behind the
// clock lock an in-flight "execute" holds. A blocked execute on one
// connection must not stall a fresh dial — which performs a meta
// roundtrip — on another.
func TestMetaNotSerializedBehindExecute(t *testing.T) {
	backend := newObjWrapper(t, 50)
	bw := &blockingWrapper{
		Wrapper: backend,
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	addr := startRemote(t, bw)

	rw, err := DialRemote(addr, netsim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	plan := algebra.Select(algebra.Scan("obj1", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(5)))
	if err := algebra.Resolve(plan, wrapperSchemaSource{rw}); err != nil {
		t.Fatal(err)
	}

	execDone := make(chan error, 1)
	go func() {
		_, err := rw.Execute(plan)
		execDone <- err
	}()
	<-bw.entered // the execute now holds clockMu on the server

	// A second connection's dial-time meta must complete while the
	// execute is parked.
	dialed := make(chan error, 1)
	go func() {
		rw2, err := DialRemote(addr, netsim.NewClock())
		if err == nil {
			rw2.Close()
		}
		dialed <- err
	}()
	select {
	case err := <-dialed:
		if err != nil {
			t.Fatalf("meta during blocked execute: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("meta request queued behind the execute clock lock")
	}

	close(bw.release)
	if err := <-execDone; err != nil {
		t.Fatalf("released execute: %v", err)
	}
}

// TestConcurrentExecutesSerializeOnClock drives executes from several
// connections at once: the shared virtual clock must stay race-free (run
// under -race) and every connection must get its full result set.
func TestConcurrentExecutesSerializeOnClock(t *testing.T) {
	backend := newObjWrapper(t, 300)
	addr := startRemote(t, backend)

	const conns = 4
	clock := netsim.NewClock()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	rows := make([]int, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rw, err := DialRemote(addr, clock)
			if err != nil {
				errs[i] = err
				return
			}
			defer rw.Close()
			plan := algebra.Select(algebra.Scan("obj1", "Employee"),
				algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(10)))
			if err := algebra.Resolve(plan, wrapperSchemaSource{rw}); err != nil {
				errs[i] = err
				return
			}
			for k := 0; k < 5; k++ {
				res, err := rw.Execute(plan)
				if err != nil {
					errs[i] = err
					return
				}
				rows[i] += len(res.Rows)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if errs[i] != nil {
			t.Fatalf("conn %d: %v", i, errs[i])
		}
		if rows[i] != 50 {
			t.Errorf("conn %d: %d rows, want 50", i, rows[i])
		}
	}
}
