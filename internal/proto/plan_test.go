package proto

import (
	"bytes"
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

func samplePlan() *algebra.Node {
	schema := types.NewSchema(
		types.Field{Collection: "T", Name: "a", Type: types.KindInt},
		types.Field{Collection: "T", Name: "b", Type: types.KindString},
	)
	scan := algebra.Scan("w1", "T")
	scan.OutSchema = schema
	sel := algebra.Select(scan,
		algebra.NewSelPred(algebra.Ref{Collection: "T", Attr: "a"}, stats.CmpLT, types.Int(10)).
			And(algebra.NewSelPred(algebra.Ref{Attr: "b"}, stats.CmpEQ, types.Str("x"))))
	sel.OutSchema = schema
	agg := algebra.Aggregate(sel,
		[]algebra.Ref{{Collection: "T", Attr: "b"}},
		[]algebra.AggSpec{
			{Func: algebra.AggCount, Star: true, As: "n"},
			{Func: algebra.AggAvg, Attr: algebra.Ref{Attr: "a"}, As: "avga"},
		})
	agg.OutSchema = types.NewSchema(
		types.Field{Collection: "T", Name: "b", Type: types.KindString},
		types.Field{Name: "n", Type: types.KindInt},
		types.Field{Name: "avga", Type: types.KindFloat},
	)
	sorted := algebra.Sort(agg, algebra.SortKey{Attr: algebra.Ref{Attr: "n"}, Desc: true})
	sorted.OutSchema = agg.OutSchema
	return sorted
}

func TestPlanRoundTrip(t *testing.T) {
	orig := samplePlan()
	enc := EncodePlan(orig)
	// Through actual JSON to catch marshalling surprises.
	var buf bytes.Buffer
	if err := Write(&buf, enc); err != nil {
		t.Fatal(err)
	}
	var decJSON PlanJSON
	if err := NewReader(&buf).read(&decJSON); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodePlan(&decJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(dec) {
		t.Fatalf("round-trip changed the plan:\n%s\nvs\n%s", orig, dec)
	}
	// Schemas survive too.
	if dec.OutSchema == nil || dec.OutSchema.Len() != 3 {
		t.Errorf("schema = %v", dec.OutSchema)
	}
	if dec.Children[0].Children[0].OutSchema.Len() != 2 {
		t.Error("leaf schema lost")
	}
	// Constant kinds preserved (int stays int through JSON).
	c := dec.Children[0].Children[0] // select? no: agg->sel: children[0]=agg
	_ = c
	sel := dec.Children[0].Children[0]
	if sel.Kind != algebra.OpSelect {
		t.Fatalf("tree shape: %s", dec)
	}
	if sel.Pred.Conjuncts[0].RightConst.Kind() != types.KindInt {
		t.Errorf("int constant widened: %v", sel.Pred.Conjuncts[0].RightConst)
	}
}

func TestPlanJoinUnionRoundTrip(t *testing.T) {
	s := types.NewSchema(types.Field{Collection: "T", Name: "a", Type: types.KindInt})
	mk := func() *algebra.Node {
		n := algebra.Scan("w", "T")
		n.OutSchema = s
		return n
	}
	join := algebra.Join(mk(), mk(),
		algebra.NewJoinPred(algebra.Ref{Collection: "T", Attr: "a"}, algebra.Ref{Attr: "a"}))
	join.OutSchema = s.Concat(s)
	union := algebra.Union(
		algebra.Project(join, "a"),
		algebra.DupElim(mk()))
	sub := algebra.Submit(union, "w")
	dec, err := DecodePlan(EncodePlan(sub))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Equal(dec) {
		t.Errorf("round-trip changed plan:\n%s\nvs\n%s", sub, dec)
	}
}

func TestDecodePlanErrors(t *testing.T) {
	if _, err := DecodePlan(&PlanJSON{Op: "frobnicate"}); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := DecodePlan(&PlanJSON{Op: "scan", Schema: []FieldJSON{{Name: "x", Kind: "blob"}}}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := DecodePlan(&PlanJSON{Op: "select", Pred: &PredJSON{
		Conjuncts: []CmpJSON{{Op: "~"}}}}); err == nil {
		t.Error("unknown comparison should fail")
	}
	if _, err := DecodePlan(&PlanJSON{Op: "aggregate", Aggs: []AggJSON{{Func: "median"}}}); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if p, err := DecodePlan(nil); p != nil || err != nil {
		t.Error("nil round-trips to nil")
	}
}

func TestAttrStatsRoundTrip(t *testing.T) {
	orig := stats.AttributeStats{
		Indexed: true, Clustered: true, CountDistinct: 42,
		Min: types.Int(-5), Max: types.Int(100),
	}
	dec := DecodeAttrStats(EncodeAttrStats(orig))
	if dec.Indexed != orig.Indexed || dec.Clustered != orig.Clustered ||
		dec.CountDistinct != orig.CountDistinct ||
		!dec.Min.Equal(orig.Min) || !dec.Max.Equal(orig.Max) {
		t.Errorf("round-trip = %+v", dec)
	}
	strStats := stats.AttributeStats{Min: types.Str("Adiba"), Max: types.Str("Valduriez")}
	dec2 := DecodeAttrStats(EncodeAttrStats(strStats))
	if dec2.Min.AsString() != "Adiba" || dec2.Max.Kind() != types.KindString {
		t.Errorf("string stats = %+v", dec2)
	}
}
