// Package proto defines the JSON line protocol spoken between the discod
// mediator server and its clients (cmd/discoctl): one JSON request per
// line in, one JSON response per line out. It corresponds to the paper's
// client-mediator interface (Figure 2, steps 3 and 6).
package proto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"disco/internal/types"
)

// Request is one client message.
type Request struct {
	// Op selects the action: "query", "explain", "explain-analyze",
	// "catalog", "history", "feedback", "stats", "reregister",
	// "setlink", "warm" (prime the plan/result caches for SQL without a
	// client waiting), or "ping".
	Op string `json:"op"`
	// SQL carries the query text for query/explain/explain-analyze.
	SQL string `json:"sql,omitempty"`
	// Arg carries the non-SQL operand of administrative ops: the wrapper
	// name for reregister, "wrapper latencyMS perByteMS" for setlink.
	Arg string `json:"arg,omitempty"`
}

// Response is one server message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Overloaded marks an error produced by admission control shedding
	// the query (server at max in-flight capacity): the query was never
	// run and a retry after backoff is appropriate.
	Overloaded bool `json:"overloaded,omitempty"`
	// Query results.
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	ElapsedMS float64  `json:"elapsedMs,omitempty"`
	// Partial marks an answer missing the contribution of unavailable
	// wrappers, listed in Excluded. A federation router reuses the pair
	// for scatter-gather degradation: a shard that failed on every
	// healthy replica marks the merged answer Partial and lists the
	// replicas tried in Excluded.
	Partial  bool     `json:"partial,omitempty"`
	Excluded []string `json:"excluded,omitempty"`
	// Replica attributes the answer when a router fronted the request:
	// the replica address that served it, or "scatter:<n>" for an answer
	// merged from n partitioned shards (Shards then counts them).
	Replica string `json:"replica,omitempty"`
	Shards  int    `json:"shards,omitempty"`
	// ShardDetail attributes a scatter-gather answer to the replicas
	// that actually served its shards, one entry per successful shard.
	// Load reports use it to credit shard work to real replicas instead
	// of burying everything under the synthetic "scatter:<n>" target.
	ShardDetail []ShardServed `json:"shardDetail,omitempty"`
	// Free-form text payload (explain output, catalog dump, ...).
	Text string `json:"text,omitempty"`
}

// ShardServed records one shard of a scatter-gather answer: the replica
// that served it, the shard's own elapsed time, and how many rows it
// contributed to the merged result.
type ShardServed struct {
	Replica   string  `json:"replica"`
	ElapsedMS float64 `json:"elapsedMs,omitempty"`
	Rows      int     `json:"rows,omitempty"`
}

// EncodeRow converts a result row into JSON-safe values.
func EncodeRow(row types.Row) []any {
	out := make([]any, len(row))
	for i, c := range row {
		out[i] = EncodeConstant(c)
	}
	return out
}

// EncodeConstant converts one constant into a JSON-safe value.
func EncodeConstant(c types.Constant) any {
	switch c.Kind() {
	case types.KindInt:
		return c.AsInt()
	case types.KindFloat:
		return c.AsFloat()
	case types.KindString:
		return c.AsString()
	case types.KindBool:
		return c.AsBool()
	default:
		return nil
	}
}

// DecodeConstant converts a decoded JSON value back into a constant.
// JSON numbers arrive as float64; integral ones become Int.
func DecodeConstant(v any) types.Constant {
	switch x := v.(type) {
	case nil:
		return types.Null
	case bool:
		return types.Bool(x)
	case string:
		return types.Str(x)
	case int:
		return types.Int(int64(x))
	case int64:
		return types.Int(x)
	case float64:
		if x == float64(int64(x)) {
			return types.Int(int64(x))
		}
		return types.Float(x)
	case json.Number:
		if n, err := x.Int64(); err == nil {
			return types.Int(n)
		}
		f, _ := x.Float64()
		return types.Float(f)
	default:
		return types.Str(fmt.Sprint(v))
	}
}

// EncodeFrame renders one message as its wire frame: the JSON encoding
// followed by the newline delimiter.
func EncodeFrame(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write sends one message as a JSON line.
func Write(w io.Writer, v any) error {
	data, err := EncodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteTruncated writes only a prefix of the message's frame — at least
// one byte, never the whole frame — leaving the peer mid-read. The fault
// injector uses it to model a connection dropped while a response is in
// flight, the failure mode that used to desync RemoteWrapper's stream.
func WriteTruncated(w io.Writer, v any, frac float64) error {
	data, err := EncodeFrame(v)
	if err != nil {
		return err
	}
	// Cut inside the JSON body, not merely before the newline: a frame
	// missing only its delimiter would still decode once the connection
	// closes and the reader sees EOF.
	n := int(float64(len(data)) * frac)
	if n > len(data)-2 {
		n = len(data) - 2
	}
	if n < 1 {
		n = 1
	}
	_, err = w.Write(data[:n])
	return err
}

// Reader reads JSON lines into messages.
type Reader struct {
	sc *bufio.Scanner
}

// NewReader wraps a connection for line reading; lines up to 16 MiB are
// accepted (result sets are shipped inline).
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// ReadRequest reads the next request; io.EOF at end of stream.
func (r *Reader) ReadRequest() (*Request, error) {
	var req Request
	if err := r.read(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// ReadResponse reads the next response; io.EOF at end of stream.
func (r *Reader) ReadResponse() (*Response, error) {
	var resp Response
	if err := r.read(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (r *Reader) read(v any) error {
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return err
			}
			return io.EOF
		}
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		return json.Unmarshal(line, v)
	}
}
