package proto

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// FieldJSON serializes one schema field.
type FieldJSON struct {
	Collection string `json:"coll,omitempty"`
	Name       string `json:"name"`
	Kind       string `json:"kind"`
}

// EncodeSchema serializes a row schema.
func EncodeSchema(s *types.Schema) []FieldJSON {
	if s == nil {
		return nil
	}
	out := make([]FieldJSON, s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		out[i] = FieldJSON{Collection: f.Collection, Name: f.Name, Kind: f.Type.String()}
	}
	return out
}

// DecodeSchema rebuilds a row schema.
func DecodeSchema(fields []FieldJSON) (*types.Schema, error) {
	if fields == nil {
		return nil, nil
	}
	out := make([]types.Field, len(fields))
	for i, f := range fields {
		kind, err := decodeKind(f.Kind)
		if err != nil {
			return nil, err
		}
		out[i] = types.Field{Collection: f.Collection, Name: f.Name, Type: kind}
	}
	return types.NewSchema(out...), nil
}

func decodeKind(name string) (types.Kind, error) {
	for _, k := range []types.Kind{types.KindNull, types.KindInt, types.KindFloat,
		types.KindString, types.KindBool} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("proto: unknown kind %q", name)
}

// RefJSON serializes an attribute reference.
type RefJSON struct {
	Collection string `json:"coll,omitempty"`
	Attr       string `json:"attr"`
}

func encodeRef(r algebra.Ref) RefJSON {
	return RefJSON{Collection: r.Collection, Attr: r.Attr}
}

func decodeRef(r RefJSON) algebra.Ref {
	return algebra.Ref{Collection: r.Collection, Attr: r.Attr}
}

// CmpJSON serializes one predicate comparison.
type CmpJSON struct {
	Left      RefJSON  `json:"left"`
	Op        string   `json:"op"`
	RightAttr *RefJSON `json:"rightAttr,omitempty"`
	RightVal  any      `json:"rightVal,omitempty"`
	// RightKind disambiguates the constant kind across JSON.
	RightKind string `json:"rightKind,omitempty"`
}

var opByName = map[string]stats.CmpOp{
	"=": stats.CmpEQ, "<>": stats.CmpNE, "<": stats.CmpLT,
	"<=": stats.CmpLE, ">": stats.CmpGT, ">=": stats.CmpGE,
}

// PredJSON serializes a conjunctive predicate.
type PredJSON struct {
	Conjuncts []CmpJSON `json:"conjuncts"`
}

// EncodePred serializes a predicate (nil stays nil).
func EncodePred(p *algebra.Predicate) *PredJSON {
	if p == nil {
		return nil
	}
	out := &PredJSON{}
	for _, c := range p.Conjuncts {
		cj := CmpJSON{Left: encodeRef(c.Left), Op: c.Op.String()}
		if c.RightAttr != nil {
			r := encodeRef(*c.RightAttr)
			cj.RightAttr = &r
		} else {
			cj.RightVal = EncodeConstant(c.RightConst)
			cj.RightKind = c.RightConst.Kind().String()
		}
		out.Conjuncts = append(out.Conjuncts, cj)
	}
	return out
}

// DecodePred rebuilds a predicate.
func DecodePred(p *PredJSON) (*algebra.Predicate, error) {
	if p == nil {
		return nil, nil
	}
	out := &algebra.Predicate{}
	for _, cj := range p.Conjuncts {
		op, ok := opByName[cj.Op]
		if !ok {
			return nil, fmt.Errorf("proto: unknown comparison operator %q", cj.Op)
		}
		c := algebra.Comparison{Left: decodeRef(cj.Left), Op: op}
		if cj.RightAttr != nil {
			r := decodeRef(*cj.RightAttr)
			c.RightAttr = &r
		} else {
			c.RightConst = DecodeConstant(cj.RightVal)
			// Kind fix-up: JSON may widen ints to floats; respect the
			// declared kind.
			if cj.RightKind == types.KindInt.String() {
				c.RightConst = types.Int(c.RightConst.AsInt())
			}
			if cj.RightKind == types.KindFloat.String() {
				c.RightConst = types.Float(c.RightConst.AsFloat())
			}
		}
		out.Conjuncts = append(out.Conjuncts, c)
	}
	return out, nil
}

// SortKeyJSON serializes one sort key.
type SortKeyJSON struct {
	Attr RefJSON `json:"attr"`
	Desc bool    `json:"desc,omitempty"`
}

// AggJSON serializes one aggregate spec.
type AggJSON struct {
	Func string  `json:"func"`
	Attr RefJSON `json:"attr"`
	Star bool    `json:"star,omitempty"`
	As   string  `json:"as,omitempty"`
}

var aggByName = map[string]algebra.AggFunc{
	"count": algebra.AggCount, "sum": algebra.AggSum, "avg": algebra.AggAvg,
	"min": algebra.AggMin, "max": algebra.AggMax,
}

// PlanJSON serializes an algebra plan tree, including resolved schemas so
// the remote side can execute directly.
type PlanJSON struct {
	Op         string        `json:"op"`
	Collection string        `json:"collection,omitempty"`
	Wrapper    string        `json:"wrapper,omitempty"`
	Pred       *PredJSON     `json:"pred,omitempty"`
	Cols       []string      `json:"cols,omitempty"`
	Keys       []SortKeyJSON `json:"keys,omitempty"`
	GroupBy    []RefJSON     `json:"groupBy,omitempty"`
	Aggs       []AggJSON     `json:"aggs,omitempty"`
	Children   []*PlanJSON   `json:"children,omitempty"`
	Schema     []FieldJSON   `json:"schema,omitempty"`
}

// EncodePlan serializes a plan tree.
func EncodePlan(n *algebra.Node) *PlanJSON {
	if n == nil {
		return nil
	}
	out := &PlanJSON{
		Op:         n.Kind.String(),
		Collection: n.Collection,
		Wrapper:    n.Wrapper,
		Pred:       EncodePred(n.Pred),
		Cols:       append([]string(nil), n.Cols...),
		Schema:     EncodeSchema(n.OutSchema),
	}
	for _, k := range n.Keys {
		out.Keys = append(out.Keys, SortKeyJSON{Attr: encodeRef(k.Attr), Desc: k.Desc})
	}
	for _, g := range n.GroupBy {
		out.GroupBy = append(out.GroupBy, encodeRef(g))
	}
	for _, a := range n.Aggs {
		out.Aggs = append(out.Aggs, AggJSON{Func: a.Func.String(), Attr: encodeRef(a.Attr), Star: a.Star, As: a.As})
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, EncodePlan(c))
	}
	return out
}

// DecodePlan rebuilds a plan tree.
func DecodePlan(p *PlanJSON) (*algebra.Node, error) {
	if p == nil {
		return nil, nil
	}
	kind, ok := algebra.OpKindByName(p.Op)
	if !ok {
		return nil, fmt.Errorf("proto: unknown operator %q", p.Op)
	}
	pred, err := DecodePred(p.Pred)
	if err != nil {
		return nil, err
	}
	schema, err := DecodeSchema(p.Schema)
	if err != nil {
		return nil, err
	}
	n := &algebra.Node{
		Kind:       kind,
		Collection: p.Collection,
		Wrapper:    p.Wrapper,
		Pred:       pred,
		Cols:       append([]string(nil), p.Cols...),
		OutSchema:  schema,
	}
	for _, k := range p.Keys {
		n.Keys = append(n.Keys, algebra.SortKey{Attr: decodeRef(k.Attr), Desc: k.Desc})
	}
	for _, g := range p.GroupBy {
		n.GroupBy = append(n.GroupBy, decodeRef(g))
	}
	for _, a := range p.Aggs {
		fn, ok := aggByName[a.Func]
		if !ok {
			return nil, fmt.Errorf("proto: unknown aggregate %q", a.Func)
		}
		n.Aggs = append(n.Aggs, algebra.AggSpec{Func: fn, Attr: decodeRef(a.Attr), Star: a.Star, As: a.As})
	}
	for _, c := range p.Children {
		child, err := DecodePlan(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}
