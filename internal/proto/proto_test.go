package proto

import (
	"bytes"
	"io"
	"testing"

	"disco/internal/types"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []*Request{
		{Op: "ping"},
		{Op: "query", SQL: "SELECT * FROM T"},
		{Op: "explain", SQL: "SELECT x FROM T WHERE a = 'multi\nline'"},
	}
	for _, r := range reqs {
		if err := Write(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	for _, want := range reqs {
		got, err := rd.ReadRequest()
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != want.Op || got.SQL != want.SQL {
			t.Errorf("got %+v, want %+v", got, want)
		}
	}
	if _, err := rd.ReadRequest(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	resp := &Response{
		OK:        true,
		Columns:   []string{"a", "b"},
		Rows:      [][]any{EncodeRow(types.Row{types.Int(1), types.Str("x")})},
		ElapsedMS: 12.5,
	}
	if err := Write(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || len(got.Rows) != 1 || got.ElapsedMS != 12.5 {
		t.Errorf("got %+v", got)
	}
	if DecodeConstant(got.Rows[0][0]).AsInt() != 1 {
		t.Errorf("int round-trip = %v", got.Rows[0][0])
	}
	if DecodeConstant(got.Rows[0][1]).AsString() != "x" {
		t.Errorf("string round-trip = %v", got.Rows[0][1])
	}
}

func TestEncodeDecodeConstants(t *testing.T) {
	cases := []types.Constant{
		types.Int(42), types.Float(2.5), types.Str("hello"),
		types.Bool(true), types.Null,
	}
	for _, c := range cases {
		enc := EncodeConstant(c)
		dec := DecodeConstant(enc)
		if c.IsNull() {
			if !dec.IsNull() {
				t.Errorf("null round-trip = %v", dec)
			}
			continue
		}
		if !dec.Equal(c) {
			t.Errorf("round-trip %v -> %v -> %v", c, enc, dec)
		}
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte("\n\n{\"op\":\"ping\"}\n")))
	req, err := rd.ReadRequest()
	if err != nil || req.Op != "ping" {
		t.Errorf("req = %+v, %v", req, err)
	}
}

func TestReaderBadJSON(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte("{bogus\n")))
	if _, err := rd.ReadRequest(); err == nil {
		t.Error("bad JSON should fail")
	}
}
