package proto

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFrameDecode drives the frame reader with arbitrary byte streams:
// decoding must never panic, and every frame EncodeFrame produces must
// decode back (the CI fuzz-smoke job runs this for 15 s). The reader is
// exercised through both message types since they share the line-scanning
// core but unmarshal into different shapes.
func FuzzFrameDecode(f *testing.F) {
	seed := func(v any) {
		data, err := EncodeFrame(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed(&WrapperRequest{Op: "meta"})
	seed(&WrapperResponse{OK: true, Rows: [][]any{{int64(1), "x", 2.5, nil, true}}, VirtualMS: 3.25})
	seed(&WrapperResponse{Error: "boom", Retryable: true})
	seed(&Request{Op: "query", SQL: "select * from Employee"})
	f.Add([]byte("{\"op\":\n\n{bad json}\n"))
	f.Add([]byte(strings.Repeat("a", 4096)))
	f.Add([]byte{0, '\n', 0xff, 0xfe, '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, read := range []func(r *Reader) error{
			func(r *Reader) error { _, err := r.ReadWrapperRequest(); return err },
			func(r *Reader) error { _, err := r.ReadWrapperResponse(); return err },
			func(r *Reader) error { _, err := r.ReadRequest(); return err },
			func(r *Reader) error { _, err := r.ReadResponse(); return err },
		} {
			r := NewReader(bytes.NewReader(data))
			for i := 0; i < 64; i++ { // bounded: a frame per line at most
				if read(r) != nil {
					break
				}
			}
		}
	})
}

func TestWriteTruncatedNeverWhole(t *testing.T) {
	resp := &WrapperResponse{OK: true, Bytes: 123, VirtualMS: 4.5}
	full, err := EncodeFrame(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{-1, 0, 0.5, 1, 2} {
		var buf bytes.Buffer
		if err := WriteTruncated(&buf, resp, frac); err != nil {
			t.Fatal(err)
		}
		if buf.Len() < 1 || buf.Len() >= len(full) {
			t.Errorf("frac %v: wrote %d of %d bytes; must be a strict non-empty prefix",
				frac, buf.Len(), len(full))
		}
		if !bytes.HasPrefix(full, buf.Bytes()) {
			t.Errorf("frac %v: output is not a prefix of the frame", frac)
		}
	}
	// A truncated frame must leave the reader without a decodable message.
	var buf bytes.Buffer
	if err := WriteTruncated(&buf, resp, 0.5); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadWrapperResponse(); err == nil {
		t.Error("truncated frame decoded cleanly")
	}
}
