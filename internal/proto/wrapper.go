package proto

import (
	"disco/internal/stats"
	"disco/internal/types"
)

// The wrapper wire protocol: a mediator speaks JSON lines to a remote
// wrapper process (cmd/wrapperd). Two operations exist, mirroring the
// paper's two phases: "meta" uploads the registration payload (schema,
// capabilities, statistics, cost rules — Figure 1 steps 1-2) and
// "execute" runs one subplan (Figure 2 steps 4-5).

// WrapperRequest is one mediator-to-wrapper message.
type WrapperRequest struct {
	// Op is "meta", "execute" or "ping".
	Op string `json:"op"`
	// Plan carries the resolved subplan for execute.
	Plan *PlanJSON `json:"plan,omitempty"`
}

// ExtentJSON serializes exported extent statistics.
type ExtentJSON struct {
	CountObject int64 `json:"countObject"`
	TotalSize   int64 `json:"totalSize"`
	ObjectSize  int64 `json:"objectSize"`
}

// AttrStatsJSON serializes exported attribute statistics. Histograms are
// summarized by their buckets.
type AttrStatsJSON struct {
	Indexed       bool   `json:"indexed,omitempty"`
	Clustered     bool   `json:"clustered,omitempty"`
	CountDistinct int64  `json:"countDistinct"`
	Min           any    `json:"min,omitempty"`
	Max           any    `json:"max,omitempty"`
	MinKind       string `json:"minKind,omitempty"`
	MaxKind       string `json:"maxKind,omitempty"`
}

// EncodeAttrStats serializes attribute statistics (histograms do not
// cross the wire; the summary statistics do).
func EncodeAttrStats(a stats.AttributeStats) AttrStatsJSON {
	return AttrStatsJSON{
		Indexed:       a.Indexed,
		Clustered:     a.Clustered,
		CountDistinct: a.CountDistinct,
		Min:           EncodeConstant(a.Min),
		Max:           EncodeConstant(a.Max),
		MinKind:       a.Min.Kind().String(),
		MaxKind:       a.Max.Kind().String(),
	}
}

// DecodeAttrStats rebuilds attribute statistics.
func DecodeAttrStats(a AttrStatsJSON) stats.AttributeStats {
	fix := func(v any, kind string) types.Constant {
		c := DecodeConstant(v)
		switch kind {
		case types.KindInt.String():
			return types.Int(c.AsInt())
		case types.KindFloat.String():
			return types.Float(c.AsFloat())
		default:
			return c
		}
	}
	return stats.AttributeStats{
		Indexed:       a.Indexed,
		Clustered:     a.Clustered,
		CountDistinct: a.CountDistinct,
		Min:           fix(a.Min, a.MinKind),
		Max:           fix(a.Max, a.MaxKind),
	}
}

// CollectionMeta is the registration payload of one collection.
type CollectionMeta struct {
	Name   string                   `json:"name"`
	Schema []FieldJSON              `json:"schema"`
	Extent *ExtentJSON              `json:"extent,omitempty"`
	Attrs  map[string]AttrStatsJSON `json:"attrs,omitempty"`
}

// CapsJSON serializes wrapper capabilities.
type CapsJSON struct {
	Select    bool `json:"select,omitempty"`
	Project   bool `json:"project,omitempty"`
	Join      bool `json:"join,omitempty"`
	Sort      bool `json:"sort,omitempty"`
	Aggregate bool `json:"aggregate,omitempty"`
	Union     bool `json:"union,omitempty"`
	DupElim   bool `json:"dupelim,omitempty"`
}

// WrapperMeta is the full registration payload.
type WrapperMeta struct {
	Name         string           `json:"name"`
	Collections  []CollectionMeta `json:"collections"`
	Capabilities CapsJSON         `json:"capabilities"`
	CostRules    string           `json:"costRules,omitempty"`
}

// WrapperResponse is one wrapper-to-mediator message.
type WrapperResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks a failed response as transient: the client may
	// retry the same request (with backoff) and expect it to succeed.
	// Semantic failures (bad plan, unknown op) are not retryable.
	Retryable bool `json:"retryable,omitempty"`
	// Unavailable marks the wrapper as permanently gone for this run;
	// the client should stop retrying and report the source as down.
	Unavailable bool `json:"unavailable,omitempty"`
	// Meta answers "meta".
	Meta *WrapperMeta `json:"meta,omitempty"`
	// Execute results.
	Rows  [][]any `json:"rows,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
	// VirtualMS is the wrapper-side virtual time the subquery consumed;
	// the mediator advances its clock by it.
	VirtualMS float64 `json:"virtualMs,omitempty"`
}

// ReadWrapperRequest reads the next wrapper request.
func (r *Reader) ReadWrapperRequest() (*WrapperRequest, error) {
	var req WrapperRequest
	if err := r.read(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// ReadWrapperResponse reads the next wrapper response.
func (r *Reader) ReadWrapperResponse() (*WrapperResponse, error) {
	var resp WrapperResponse
	if err := r.read(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
