package rowops

import (
	"math"

	"disco/internal/types"
)

// This file holds the hashing/encoding machinery behind the hash join,
// duplicate elimination and grouping. The previous implementation rendered
// every row and join key to a fresh string (fmt-style kind names, decimal
// float formatting); the encoder below appends a compact binary form to a
// reused buffer instead, and the join hashes constants straight to a
// uint64 without materializing a key at all.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// JoinKeyHash hashes one join attribute value to its hash-table bucket.
// Numerics are canonicalized through their float64 value so Int(3) and
// Float(3) land in the same bucket (they must join). Bucket collisions are
// harmless: HashJoin re-verifies every candidate pair with the full
// predicate before emitting it. Exported for the vectorized engine, whose
// partitioned hash joins and Grace spill partitioning must bucket values
// exactly like this reference implementation.
func JoinKeyHash(c types.Constant) uint64 {
	h := uint64(fnvOffset64)
	switch {
	case c.IsNull():
		return fnvByte(h, 'z')
	case c.IsNumeric():
		return fnvU64(fnvByte(h, 'n'), math.Float64bits(c.AsFloat()))
	case c.Kind() == types.KindString:
		return fnvStr(fnvByte(h, 's'), c.AsString())
	default:
		if c.AsBool() {
			return fnvByte(h, 't')
		}
		return fnvByte(h, 'f')
	}
}

// keyEnc encodes rows into a reused byte buffer for use as grouping /
// dedup map keys. The encoding is exact and kind-distinguishing — a tag
// byte per value, fixed-width numerics, length-framed strings — so equal
// encodings mean equal (same-kind) values; unlike a separator-joined
// string it cannot collide on embedded separator bytes. Lookups via
// m[string(enc.buf)] do not allocate (the compiler elides the conversion);
// only a first-seen insertion materializes the key string.
type keyEnc struct {
	buf []byte
}

func (e *keyEnc) reset() { e.buf = e.buf[:0] }

func (e *keyEnc) u64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (e *keyEnc) constant(c types.Constant) {
	switch c.Kind() {
	case types.KindNull:
		e.buf = append(e.buf, 'z')
	case types.KindInt:
		e.buf = append(e.buf, 'i')
		e.u64(uint64(c.AsInt()))
	case types.KindFloat:
		e.buf = append(e.buf, 'd')
		e.u64(math.Float64bits(c.AsFloat()))
	case types.KindString:
		s := c.AsString()
		e.buf = append(e.buf, 's')
		e.u64(uint64(len(s)))
		e.buf = append(e.buf, s...)
	case types.KindBool:
		if c.AsBool() {
			e.buf = append(e.buf, 't')
		} else {
			e.buf = append(e.buf, 'f')
		}
	default:
		e.buf = append(e.buf, '?')
	}
}

func (e *keyEnc) row(r types.Row) {
	for _, c := range r {
		e.constant(c)
	}
}

// KeyEncoder is the exported face of keyEnc for the vectorized engine:
// its grouping and duplicate-elimination operators must produce exactly
// the same map keys as the reference operators above. The zero value is
// ready to use; Bytes aliases an internal buffer that the next Reset
// invalidates, but an indexing conversion m[string(e.Bytes())] does not
// allocate.
type KeyEncoder struct {
	enc keyEnc
}

// Reset clears the buffer for the next key.
func (e *KeyEncoder) Reset() { e.enc.reset() }

// Constant appends one value's exact, kind-distinguishing encoding.
func (e *KeyEncoder) Constant(c types.Constant) { e.enc.constant(c) }

// Row appends every value of the row.
func (e *KeyEncoder) Row(r types.Row) { e.enc.row(r) }

// Bytes returns the encoded key, valid until the next Reset.
func (e *KeyEncoder) Bytes() []byte { return e.enc.buf }
