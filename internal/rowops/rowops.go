// Package rowops implements the row-level operator algorithms shared by
// the wrapper-side subplan evaluator and the mediator's physical engine:
// filtering, projection, sorting, nested-loop and hash joins, duplicate
// elimination, grouping and aggregation. The operators here are
// materializing and single-threaded — they are the reference semantics
// the pipelined batch engine in internal/vexec must reproduce
// bit-identically, and they remain the equivalence oracle in its tests.
// Timing is charged by the callers through the simulation clock.
package rowops

import (
	"fmt"
	"slices"
	"strings"

	"disco/internal/algebra"
	"disco/internal/types"
)

// Filter returns the rows satisfying the predicate.
func Filter(schema *types.Schema, rows []types.Row, pred *algebra.Predicate) []types.Row {
	if pred == nil || len(pred.Conjuncts) == 0 {
		return rows
	}
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		if pred.Eval(schema, r) {
			out = append(out, r)
		}
	}
	return out
}

// Project maps each row onto the named columns. Columns resolve with
// the same qualified-then-bare fallback sort keys get (a rel.col ref a
// sort key accepts is equally valid as a projection column).
func Project(schema *types.Schema, rows []types.Row, cols []string) ([]types.Row, error) {
	idx, err := ProjectIndex(schema, cols)
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, len(rows))
	for ri, r := range rows {
		nr := make(types.Row, len(idx))
		for i, pos := range idx {
			nr[i] = r[pos]
		}
		out[ri] = nr
	}
	return out, nil
}

// ProjectIndex resolves projection columns to row positions via ColIndex.
func ProjectIndex(schema *types.Schema, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		pos, ok := ColIndex(schema, c)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown projection column %q", c)
		}
		idx[i] = pos
	}
	return idx, nil
}

// ColIndex resolves a column name, possibly written in qualified rel.col
// form, against a schema: the qualified name first, then the bare
// attribute — algebra.RefIndex semantics, so every column spelling a
// sort key accepts resolves here too.
func ColIndex(schema *types.Schema, col string) (int, bool) {
	if coll, attr, ok := strings.Cut(col, "."); ok {
		return algebra.RefIndex(schema, algebra.Ref{Collection: coll, Attr: attr})
	}
	return schema.Lookup(col)
}

// Sort orders rows by the keys (stable). The comparator is compiled once
// over resolved key positions instead of a closure resolving names per
// comparison; BenchmarkSort tracks the allocation delta.
func Sort(schema *types.Schema, rows []types.Row, keys []algebra.SortKey) ([]types.Row, error) {
	cmp, err := CompileComparator(schema, keys)
	if err != nil {
		return nil, err
	}
	out := append([]types.Row(nil), rows...)
	slices.SortStableFunc(out, cmp.Compare)
	return out, nil
}

// keyPos is one compiled sort key: a resolved position and a direction.
type keyPos struct {
	pos  int
	desc bool
}

// RowComparator is a precompiled multi-key row comparator: sort keys are
// resolved to row positions once, so each comparison is two index loads
// and a Constant.Compare with no name lookups and no captured state.
type RowComparator struct {
	keys []keyPos
}

// CompileComparator resolves sort keys against the schema into a
// position-based comparator.
func CompileComparator(schema *types.Schema, keys []algebra.SortKey) (RowComparator, error) {
	kps := make([]keyPos, len(keys))
	for i, k := range keys {
		pos, ok := algebra.RefIndex(schema, k.Attr)
		if !ok {
			return RowComparator{}, fmt.Errorf("rowops: unknown sort key %s", k.Attr)
		}
		kps[i] = keyPos{pos: pos, desc: k.Desc}
	}
	return RowComparator{keys: kps}, nil
}

// Compare orders a against b: negative when a sorts first, positive when
// b does, zero when the keys tie.
func (rc RowComparator) Compare(a, b types.Row) int {
	for _, kp := range rc.keys {
		c := a[kp.pos].Compare(b[kp.pos])
		if c == 0 {
			continue
		}
		if kp.desc {
			return -c
		}
		return c
	}
	return 0
}

// Less reports whether a sorts strictly before b.
func (rc RowComparator) Less(a, b types.Row) bool { return rc.Compare(a, b) < 0 }

// NestedLoopJoin joins left and right under the predicate, concatenating
// matching rows. cb, when non-nil, is invoked once per considered pair
// (for cost charging).
func NestedLoopJoin(joined *types.Schema, left, right []types.Row,
	pred *algebra.Predicate, cb func()) []types.Row {
	var out []types.Row
	for _, l := range left {
		for _, r := range right {
			if cb != nil {
				cb()
			}
			row := l.Concat(r)
			if pred.Eval(joined, row) {
				out = append(out, row)
			}
		}
	}
	return out
}

// HashJoin performs an equi-join on the first join conjunct, verifying
// remaining conjuncts, and returns ok=false when the predicate has no
// equi-join conjunct (the caller then falls back to nested loops). cb,
// when non-nil, runs once per row processed.
func HashJoin(leftSchema, rightSchema, joined *types.Schema,
	left, right []types.Row, pred *algebra.Predicate, cb func()) ([]types.Row, bool) {
	lpos, rpos, ok := EquiJoinCols(leftSchema, rightSchema, pred)
	if !ok {
		return nil, false
	}
	// Buckets are keyed by a uint64 hash of the join value (numerics
	// canonicalized so Int(3) joins Float(3)); the predicate re-check on
	// every candidate pair makes bucket collisions harmless.
	table := make(map[uint64][]types.Row, len(right))
	for _, r := range right {
		if cb != nil {
			cb()
		}
		k := JoinKeyHash(r[rpos])
		table[k] = append(table[k], r)
	}
	var out []types.Row
	for _, l := range left {
		if cb != nil {
			cb()
		}
		for _, r := range table[JoinKeyHash(l[lpos])] {
			row := l.Concat(r)
			if pred.Eval(joined, row) {
				out = append(out, row)
			}
		}
	}
	return out, true
}

// EquiJoinCols finds the first `=` conjunct joining an attribute of
// leftSchema to one of rightSchema (either writing orientation) and
// returns the two resolved positions. ok=false means the predicate has
// no usable equi-join conjunct and the caller must fall back to nested
// loops.
func EquiJoinCols(leftSchema, rightSchema *types.Schema, pred *algebra.Predicate) (lpos, rpos int, ok bool) {
	for _, c := range pred.JoinComparisons() {
		if c.Op.String() != "=" {
			continue
		}
		lp, lok := algebra.RefIndex(leftSchema, c.Left)
		rp, rok := algebra.RefIndex(rightSchema, *c.RightAttr)
		if lok && rok {
			return lp, rp, true
		}
		// The conjunct may be written right-to-left.
		lp, lok = algebra.RefIndex(leftSchema, *c.RightAttr)
		rp, rok = algebra.RefIndex(rightSchema, c.Left)
		if lok && rok {
			return lp, rp, true
		}
	}
	return -1, -1, false
}

// Union concatenates two row sets (bag semantics).
func Union(left, right []types.Row) []types.Row {
	out := make([]types.Row, 0, len(left)+len(right))
	out = append(out, left...)
	return append(out, right...)
}

// DupElim removes duplicate rows, keeping first occurrences in order.
func DupElim(rows []types.Row) []types.Row {
	seen := make(map[string]struct{}, len(rows))
	out := make([]types.Row, 0, len(rows))
	var enc keyEnc
	for _, r := range rows {
		enc.reset()
		enc.row(r)
		if _, dup := seen[string(enc.buf)]; dup {
			continue
		}
		seen[string(enc.buf)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Aggregate groups rows by the groupBy attributes and computes the
// aggregate specs, producing one row per group with grouping values first.
// With no grouping attributes it produces exactly one row (aggregates over
// an empty input yield count 0 and null extrema).
func Aggregate(schema *types.Schema, rows []types.Row,
	groupBy []algebra.Ref, aggs []algebra.AggSpec) ([]types.Row, error) {

	gpos := make([]int, len(groupBy))
	for i, g := range groupBy {
		pos, ok := algebra.RefIndex(schema, g)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown group-by attribute %s", g)
		}
		gpos[i] = pos
	}
	apos := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Star {
			apos[i] = -1
			continue
		}
		pos, ok := algebra.RefIndex(schema, a.Attr)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown aggregate attribute %s", a.Attr)
		}
		apos[i] = pos
	}

	type group struct {
		key    types.Row
		states []AggState
	}
	groups := make(map[string]*group)
	var order []*group
	var enc keyEnc
	for _, r := range rows {
		// Encode the grouping values into the reused buffer; the grouping
		// key row is only materialized when a new group is born.
		enc.reset()
		for _, p := range gpos {
			enc.constant(r[p])
		}
		g, ok := groups[string(enc.buf)]
		if !ok {
			key := make(types.Row, len(gpos))
			for i, p := range gpos {
				key[i] = r[p]
			}
			g = &group{key: key, states: NewAggStates(aggs)}
			groups[string(enc.buf)] = g
			order = append(order, g)
		}
		for i := range aggs {
			v := types.Null
			if apos[i] >= 0 {
				v = r[apos[i]]
			}
			g.states[i].Add(v)
		}
	}
	if len(groupBy) == 0 && len(groups) == 0 {
		g := &group{key: types.Row{}, states: NewAggStates(aggs)}
		groups[""] = g
		order = append(order, g)
	}
	out := make([]types.Row, 0, len(groups))
	for _, g := range order {
		row := append(types.Row(nil), g.key...)
		for i := range aggs {
			row = append(row, g.states[i].Result())
		}
		out = append(out, row)
	}
	return out, nil
}

// AggState accumulates one aggregate function. Accumulation order
// matters for the float sum (addition is not associative), so callers
// needing bit-exact results must feed rows in input order.
type AggState struct {
	fn    algebra.AggFunc
	count int64
	sum   float64
	min   types.Constant
	max   types.Constant
}

// NewAggStates builds one fresh accumulator per aggregate spec.
func NewAggStates(aggs []algebra.AggSpec) []AggState {
	out := make([]AggState, len(aggs))
	for i, a := range aggs {
		out[i] = AggState{fn: a.Func, min: types.Null, max: types.Null}
	}
	return out
}

// Add folds one value into the accumulator. Only the fields the
// function's Result reads are maintained — the extrema comparisons are
// the expensive part, and a COUNT/SUM accumulator never looks at them.
func (s *AggState) Add(v types.Constant) {
	switch s.fn {
	case algebra.AggCount:
		s.count++
	case algebra.AggSum:
		s.sum += v.AsFloat()
	case algebra.AggAvg:
		s.count++
		s.sum += v.AsFloat()
	case algebra.AggMin:
		if s.min.IsNull() || v.Less(s.min) {
			s.min = v
		}
	case algebra.AggMax:
		if s.max.IsNull() || s.max.Less(v) {
			s.max = v
		}
	}
}

// Result finalizes the accumulator into the aggregate's value.
func (s *AggState) Result() types.Constant {
	switch s.fn {
	case algebra.AggCount:
		return types.Int(s.count)
	case algebra.AggSum:
		return types.Float(s.sum)
	case algebra.AggAvg:
		if s.count == 0 {
			return types.Null
		}
		return types.Float(s.sum / float64(s.count))
	case algebra.AggMin:
		return s.min
	case algebra.AggMax:
		return s.max
	default:
		return types.Null
	}
}

// RowBytes estimates the wire size of a row set: 8 bytes per numeric or
// boolean field, string length plus 8 per string field.
func RowBytes(rows []types.Row) int64 {
	var total int64
	for _, r := range rows {
		for _, c := range r {
			if c.Kind() == types.KindString {
				total += int64(len(c.AsString())) + 8
			} else {
				total += 8
			}
		}
	}
	return total
}
