// Package rowops implements the row-level operator algorithms shared by
// the wrapper-side subplan evaluator and the mediator's physical engine:
// filtering, projection, sorting, nested-loop and hash joins, duplicate
// elimination, grouping and aggregation. All operators are materializing
// (the reproduction favours determinism and simplicity over pipelining;
// timing is charged by the callers through the simulation clock).
package rowops

import (
	"fmt"
	"sort"

	"disco/internal/algebra"
	"disco/internal/types"
)

// Filter returns the rows satisfying the predicate.
func Filter(schema *types.Schema, rows []types.Row, pred *algebra.Predicate) []types.Row {
	if pred == nil || len(pred.Conjuncts) == 0 {
		return rows
	}
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		if pred.Eval(schema, r) {
			out = append(out, r)
		}
	}
	return out
}

// Project maps each row onto the named columns.
func Project(schema *types.Schema, rows []types.Row, cols []string) ([]types.Row, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		pos, ok := schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown projection column %q", c)
		}
		idx[i] = pos
	}
	out := make([]types.Row, len(rows))
	for ri, r := range rows {
		nr := make(types.Row, len(idx))
		for i, pos := range idx {
			nr[i] = r[pos]
		}
		out[ri] = nr
	}
	return out, nil
}

// Sort orders rows by the keys (stable).
func Sort(schema *types.Schema, rows []types.Row, keys []algebra.SortKey) ([]types.Row, error) {
	type keyPos struct {
		pos  int
		desc bool
	}
	kps := make([]keyPos, len(keys))
	for i, k := range keys {
		pos, ok := algebra.RefIndex(schema, k.Attr)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown sort key %s", k.Attr)
		}
		kps[i] = keyPos{pos: pos, desc: k.Desc}
	}
	out := append([]types.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		for _, kp := range kps {
			c := out[i][kp.pos].Compare(out[j][kp.pos])
			if c == 0 {
				continue
			}
			if kp.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

// NestedLoopJoin joins left and right under the predicate, concatenating
// matching rows. cb, when non-nil, is invoked once per considered pair
// (for cost charging).
func NestedLoopJoin(joined *types.Schema, left, right []types.Row,
	pred *algebra.Predicate, cb func()) []types.Row {
	var out []types.Row
	for _, l := range left {
		for _, r := range right {
			if cb != nil {
				cb()
			}
			row := l.Concat(r)
			if pred.Eval(joined, row) {
				out = append(out, row)
			}
		}
	}
	return out
}

// HashJoin performs an equi-join on the first join conjunct, verifying
// remaining conjuncts, and returns ok=false when the predicate has no
// equi-join conjunct (the caller then falls back to nested loops). cb,
// when non-nil, runs once per row processed.
func HashJoin(leftSchema, rightSchema, joined *types.Schema,
	left, right []types.Row, pred *algebra.Predicate, cb func()) ([]types.Row, bool) {
	var lpos, rpos = -1, -1
	for _, c := range pred.JoinComparisons() {
		if c.Op.String() != "=" {
			continue
		}
		lp, lok := algebra.RefIndex(leftSchema, c.Left)
		rp, rok := algebra.RefIndex(rightSchema, *c.RightAttr)
		if lok && rok {
			lpos, rpos = lp, rp
			break
		}
		// The conjunct may be written right-to-left.
		lp, lok = algebra.RefIndex(leftSchema, *c.RightAttr)
		rp, rok = algebra.RefIndex(rightSchema, c.Left)
		if lok && rok {
			lpos, rpos = lp, rp
			break
		}
	}
	if lpos < 0 {
		return nil, false
	}
	// Buckets are keyed by a uint64 hash of the join value (numerics
	// canonicalized so Int(3) joins Float(3)); the predicate re-check on
	// every candidate pair makes bucket collisions harmless.
	table := make(map[uint64][]types.Row, len(right))
	for _, r := range right {
		if cb != nil {
			cb()
		}
		k := joinKeyHash(r[rpos])
		table[k] = append(table[k], r)
	}
	var out []types.Row
	for _, l := range left {
		if cb != nil {
			cb()
		}
		for _, r := range table[joinKeyHash(l[lpos])] {
			row := l.Concat(r)
			if pred.Eval(joined, row) {
				out = append(out, row)
			}
		}
	}
	return out, true
}

// Union concatenates two row sets (bag semantics).
func Union(left, right []types.Row) []types.Row {
	out := make([]types.Row, 0, len(left)+len(right))
	out = append(out, left...)
	return append(out, right...)
}

// DupElim removes duplicate rows, keeping first occurrences in order.
func DupElim(rows []types.Row) []types.Row {
	seen := make(map[string]struct{}, len(rows))
	out := make([]types.Row, 0, len(rows))
	var enc keyEnc
	for _, r := range rows {
		enc.reset()
		enc.row(r)
		if _, dup := seen[string(enc.buf)]; dup {
			continue
		}
		seen[string(enc.buf)] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Aggregate groups rows by the groupBy attributes and computes the
// aggregate specs, producing one row per group with grouping values first.
// With no grouping attributes it produces exactly one row (aggregates over
// an empty input yield count 0 and null extrema).
func Aggregate(schema *types.Schema, rows []types.Row,
	groupBy []algebra.Ref, aggs []algebra.AggSpec) ([]types.Row, error) {

	gpos := make([]int, len(groupBy))
	for i, g := range groupBy {
		pos, ok := algebra.RefIndex(schema, g)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown group-by attribute %s", g)
		}
		gpos[i] = pos
	}
	apos := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Star {
			apos[i] = -1
			continue
		}
		pos, ok := algebra.RefIndex(schema, a.Attr)
		if !ok {
			return nil, fmt.Errorf("rowops: unknown aggregate attribute %s", a.Attr)
		}
		apos[i] = pos
	}

	type group struct {
		key    types.Row
		states []aggState
	}
	groups := make(map[string]*group)
	var order []*group
	var enc keyEnc
	for _, r := range rows {
		// Encode the grouping values into the reused buffer; the grouping
		// key row is only materialized when a new group is born.
		enc.reset()
		for _, p := range gpos {
			enc.constant(r[p])
		}
		g, ok := groups[string(enc.buf)]
		if !ok {
			key := make(types.Row, len(gpos))
			for i, p := range gpos {
				key[i] = r[p]
			}
			g = &group{key: key, states: newAggStates(aggs)}
			groups[string(enc.buf)] = g
			order = append(order, g)
		}
		for i := range aggs {
			v := types.Null
			if apos[i] >= 0 {
				v = r[apos[i]]
			}
			g.states[i].add(v)
		}
	}
	if len(groupBy) == 0 && len(groups) == 0 {
		g := &group{key: types.Row{}, states: newAggStates(aggs)}
		groups[""] = g
		order = append(order, g)
	}
	out := make([]types.Row, 0, len(groups))
	for _, g := range order {
		row := append(types.Row(nil), g.key...)
		for i := range aggs {
			row = append(row, g.states[i].result())
		}
		out = append(out, row)
	}
	return out, nil
}

// aggState accumulates one aggregate function.
type aggState struct {
	fn    algebra.AggFunc
	count int64
	sum   float64
	min   types.Constant
	max   types.Constant
}

func newAggStates(aggs []algebra.AggSpec) []aggState {
	out := make([]aggState, len(aggs))
	for i, a := range aggs {
		out[i] = aggState{fn: a.Func, min: types.Null, max: types.Null}
	}
	return out
}

func (s *aggState) add(v types.Constant) {
	s.count++
	s.sum += v.AsFloat()
	if s.min.IsNull() || v.Less(s.min) {
		s.min = v
	}
	if s.max.IsNull() || s.max.Less(v) {
		s.max = v
	}
}

func (s *aggState) result() types.Constant {
	switch s.fn {
	case algebra.AggCount:
		return types.Int(s.count)
	case algebra.AggSum:
		return types.Float(s.sum)
	case algebra.AggAvg:
		if s.count == 0 {
			return types.Null
		}
		return types.Float(s.sum / float64(s.count))
	case algebra.AggMin:
		return s.min
	case algebra.AggMax:
		return s.max
	default:
		return types.Null
	}
}

// RowBytes estimates the wire size of a row set: 8 bytes per numeric or
// boolean field, string length plus 8 per string field.
func RowBytes(rows []types.Row) int64 {
	var total int64
	for _, r := range rows {
		for _, c := range r {
			if c.Kind() == types.KindString {
				total += int64(len(c.AsString())) + 8
			} else {
				total += 8
			}
		}
	}
	return total
}
