package rowops

import (
	"testing"
	"testing/quick"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

func schemaAB() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "a", Collection: "T", Type: types.KindInt},
		types.Field{Name: "b", Collection: "T", Type: types.KindString},
	)
}

func rowsAB() []types.Row {
	return []types.Row{
		{types.Int(3), types.Str("x")},
		{types.Int(1), types.Str("y")},
		{types.Int(2), types.Str("x")},
		{types.Int(1), types.Str("y")},
	}
}

func TestFilter(t *testing.T) {
	s := schemaAB()
	got := Filter(s, rowsAB(), algebra.NewSelPred(algebra.Ref{Attr: "a"}, stats.CmpGE, types.Int(2)))
	if len(got) != 2 {
		t.Errorf("filtered = %v", got)
	}
	if out := Filter(s, rowsAB(), nil); len(out) != 4 {
		t.Error("nil predicate keeps everything")
	}
}

func TestProject(t *testing.T) {
	s := schemaAB()
	got, err := Project(s, rowsAB(), []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].AsString() != "x" || got[0][1].AsInt() != 3 {
		t.Errorf("projected = %v", got[0])
	}
	if _, err := Project(s, rowsAB(), []string{"zzz"}); err == nil {
		t.Error("unknown column should fail")
	}
}

// TestProjectQualifiedRefs: projection columns resolve like sort keys do
// — the qualified rel.col form first, then the bare attribute — so a
// join output with the same attribute name in two collections projects
// unambiguously.
func TestProjectQualifiedRefs(t *testing.T) {
	s := types.NewSchema(
		types.Field{Name: "id", Collection: "Emp", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Emp", Type: types.KindString},
		types.Field{Name: "id", Collection: "Dept", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Dept", Type: types.KindString},
	)
	rows := []types.Row{{types.Int(7), types.Str("ana"), types.Int(4), types.Str("sales")}}

	got, err := Project(s, rows, []string{"Dept.name", "Emp.id"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].AsString() != "sales" || got[0][1].AsInt() != 7 {
		t.Errorf("qualified projection = %v", got[0])
	}
	// A bare ambiguous name resolves to whatever position Schema.Lookup
	// indexes for it — the fallback step of algebra.RefIndex. The same
	// holds for an unknown qualifier with a known bare attribute, so
	// Emp.name and Nowhere.name need not agree; only a fully unknown
	// attribute fails.
	wantBare, ok := ColIndex(s, "name")
	if !ok {
		t.Fatal("bare ambiguous name should resolve")
	}
	bare, err := Project(s, rows, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	if bare[0][0] != rows[0][wantBare] {
		t.Errorf("bare projection = %v, want %v", bare[0][0], rows[0][wantBare])
	}
	if _, err := Project(s, rows, []string{"Nowhere.bogus"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

// TestCompileComparator pins the precompiled comparator's contract:
// position-resolved keys, direction flips, and tie fall-through.
func TestCompileComparator(t *testing.T) {
	s := schemaAB()
	cmp, err := CompileComparator(s, []algebra.SortKey{
		{Attr: algebra.Ref{Attr: "b"}},
		{Attr: algebra.Ref{Attr: "a"}, Desc: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := rowsAB()
	if c := cmp.Compare(rows[0], rows[1]); c >= 0 { // "x" < "y"
		t.Errorf("Compare = %d, want < 0", c)
	}
	if !cmp.Less(rows[0], rows[2]) { // tie on "x", 3 > 2 desc
		t.Error("desc tiebreak: want row{3,x} before row{2,x}")
	}
	if c := cmp.Compare(rows[1], rows[3]); c != 0 {
		t.Errorf("equal rows Compare = %d, want 0", c)
	}
	if _, err := CompileComparator(s, []algebra.SortKey{{Attr: algebra.Ref{Attr: "zz"}}}); err == nil {
		t.Error("unknown key should fail to compile")
	}
}

func TestSort(t *testing.T) {
	s := schemaAB()
	got, err := Sort(s, rowsAB(), []algebra.SortKey{{Attr: algebra.Ref{Attr: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 2, 3}
	for i, w := range want {
		if got[i][0].AsInt() != w {
			t.Fatalf("sorted = %v", got)
		}
	}
	desc, _ := Sort(s, rowsAB(), []algebra.SortKey{{Attr: algebra.Ref{Attr: "a"}, Desc: true}})
	if desc[0][0].AsInt() != 3 {
		t.Errorf("desc sorted = %v", desc)
	}
	// Multi-key: b asc then a desc.
	multi, _ := Sort(s, rowsAB(), []algebra.SortKey{
		{Attr: algebra.Ref{Attr: "b"}},
		{Attr: algebra.Ref{Attr: "a"}, Desc: true},
	})
	if multi[0][1].AsString() != "x" || multi[0][0].AsInt() != 3 {
		t.Errorf("multi sorted = %v", multi)
	}
	if _, err := Sort(s, rowsAB(), []algebra.SortKey{{Attr: algebra.Ref{Attr: "zzz"}}}); err == nil {
		t.Error("unknown sort key should fail")
	}
	// Input must not be mutated.
	orig := rowsAB()
	Sort(s, orig, []algebra.SortKey{{Attr: algebra.Ref{Attr: "a"}}})
	if orig[0][0].AsInt() != 3 {
		t.Error("Sort mutated its input")
	}
}

func joinFixture() (l, r *types.Schema, joined *types.Schema, lrows, rrows []types.Row, pred *algebra.Predicate) {
	l = types.NewSchema(
		types.Field{Name: "id", Collection: "E", Type: types.KindInt},
		types.Field{Name: "name", Collection: "E", Type: types.KindString})
	r = types.NewSchema(
		types.Field{Name: "author", Collection: "B", Type: types.KindInt},
		types.Field{Name: "title", Collection: "B", Type: types.KindString})
	joined = l.Concat(r)
	lrows = []types.Row{
		{types.Int(1), types.Str("ana")},
		{types.Int(2), types.Str("bob")},
		{types.Int(3), types.Str("cyd")},
	}
	rrows = []types.Row{
		{types.Int(1), types.Str("t1")},
		{types.Int(1), types.Str("t2")},
		{types.Int(3), types.Str("t3")},
		{types.Int(9), types.Str("t9")},
	}
	pred = algebra.NewJoinPred(algebra.Ref{Collection: "E", Attr: "id"}, algebra.Ref{Collection: "B", Attr: "author"})
	return
}

func TestJoinsAgree(t *testing.T) {
	l, r, joined, lrows, rrows, pred := joinFixture()
	nl := NestedLoopJoin(joined, lrows, rrows, pred, nil)
	hj, ok := HashJoin(l, r, joined, lrows, rrows, pred, nil)
	if !ok {
		t.Fatal("hash join should apply to an equi-join")
	}
	if len(nl) != 3 || len(hj) != 3 {
		t.Fatalf("nl=%d hj=%d, want 3", len(nl), len(hj))
	}
	// Same multisets.
	key := func(rows []types.Row) map[string]int {
		m := map[string]int{}
		for _, row := range rows {
			m[row.Key()]++
		}
		return m
	}
	knl, khj := key(nl), key(hj)
	for k, n := range knl {
		if khj[k] != n {
			t.Errorf("join results differ at %q", k)
		}
	}
}

func TestHashJoinFlippedConjunct(t *testing.T) {
	l, r, joined, lrows, rrows, _ := joinFixture()
	// Predicate written right-to-left: B.author = E.id.
	pred := algebra.NewJoinPred(algebra.Ref{Collection: "B", Attr: "author"}, algebra.Ref{Collection: "E", Attr: "id"})
	hj, ok := HashJoin(l, r, joined, lrows, rrows, pred, nil)
	if !ok || len(hj) != 3 {
		t.Errorf("flipped hash join = %v, %v", len(hj), ok)
	}
}

func TestHashJoinNoEquiConjunct(t *testing.T) {
	l, r, joined, lrows, rrows, _ := joinFixture()
	pred := &algebra.Predicate{Conjuncts: []algebra.Comparison{{
		Left: algebra.Ref{Collection: "E", Attr: "id"}, Op: stats.CmpLT,
		RightAttr: &algebra.Ref{Collection: "B", Attr: "author"}}}}
	if _, ok := HashJoin(l, r, joined, lrows, rrows, pred, nil); ok {
		t.Error("hash join should refuse a non-equi predicate")
	}
	nl := NestedLoopJoin(joined, lrows, rrows, pred, nil)
	// id < author: (1,3),(1,9),(2,3),(2,9),(3,9).
	if len(nl) != 5 {
		t.Errorf("theta join = %d rows, want 5", len(nl))
	}
}

func TestJoinCallbackCount(t *testing.T) {
	_, _, joined, lrows, rrows, pred := joinFixture()
	pairs := 0
	NestedLoopJoin(joined, lrows, rrows, pred, func() { pairs++ })
	if pairs != len(lrows)*len(rrows) {
		t.Errorf("pairs = %d, want %d", pairs, len(lrows)*len(rrows))
	}
}

func TestNumericCrossKindHashJoin(t *testing.T) {
	// Int(3) on one side must join Float(3) on the other.
	l := types.NewSchema(types.Field{Name: "x", Type: types.KindInt})
	r := types.NewSchema(types.Field{Name: "y", Type: types.KindFloat})
	joined := l.Concat(r)
	pred := algebra.NewJoinPred(algebra.Ref{Attr: "x"}, algebra.Ref{Attr: "y"})
	hj, ok := HashJoin(l, r, joined,
		[]types.Row{{types.Int(3)}}, []types.Row{{types.Float(3)}}, pred, nil)
	if !ok || len(hj) != 1 {
		t.Errorf("cross-kind numeric join = %v, %v", hj, ok)
	}
}

func TestUnionDupElim(t *testing.T) {
	u := Union(rowsAB()[:2], rowsAB()[2:])
	if len(u) != 4 {
		t.Errorf("union = %d", len(u))
	}
	d := DupElim(rowsAB())
	if len(d) != 3 {
		t.Errorf("dupelim = %d, want 3", len(d))
	}
	// First occurrence is kept.
	if d[1][0].AsInt() != 1 {
		t.Errorf("order = %v", d)
	}
}

func TestAggregate(t *testing.T) {
	s := schemaAB()
	got, err := Aggregate(s, rowsAB(),
		[]algebra.Ref{{Attr: "b"}},
		[]algebra.AggSpec{
			{Func: algebra.AggCount, Star: true},
			{Func: algebra.AggSum, Attr: algebra.Ref{Attr: "a"}},
			{Func: algebra.AggMin, Attr: algebra.Ref{Attr: "a"}},
			{Func: algebra.AggMax, Attr: algebra.Ref{Attr: "a"}},
			{Func: algebra.AggAvg, Attr: algebra.Ref{Attr: "a"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	// Group "x": rows a=3, a=2.
	var x types.Row
	for _, g := range got {
		if g[0].AsString() == "x" {
			x = g
		}
	}
	if x[1].AsInt() != 2 || x[2].AsFloat() != 5 || x[3].AsInt() != 2 || x[4].AsInt() != 3 || x[5].AsFloat() != 2.5 {
		t.Errorf("group x = %v", x)
	}
}

func TestAggregateNoGroupsEmptyInput(t *testing.T) {
	s := schemaAB()
	got, err := Aggregate(s, nil, nil, []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true},
		{Func: algebra.AggAvg, Attr: algebra.Ref{Attr: "a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].AsInt() != 0 || !got[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", got)
	}
	// With grouping, empty input yields no groups.
	got, _ = Aggregate(s, nil, []algebra.Ref{{Attr: "b"}}, []algebra.AggSpec{{Func: algebra.AggCount, Star: true}})
	if len(got) != 0 {
		t.Errorf("grouped empty aggregate = %v", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	s := schemaAB()
	if _, err := Aggregate(s, rowsAB(), []algebra.Ref{{Attr: "zzz"}}, nil); err == nil {
		t.Error("unknown group-by should fail")
	}
	if _, err := Aggregate(s, rowsAB(), nil,
		[]algebra.AggSpec{{Func: algebra.AggSum, Attr: algebra.Ref{Attr: "zzz"}}}); err == nil {
		t.Error("unknown aggregate attr should fail")
	}
}

// Property: DupElim is idempotent and never grows the input.
func TestDupElimProperties(t *testing.T) {
	f := func(vals []int8) bool {
		rows := make([]types.Row, len(vals))
		for i, v := range vals {
			rows[i] = types.Row{types.Int(int64(v % 4))}
		}
		once := DupElim(rows)
		twice := DupElim(once)
		if len(once) > len(rows) || len(twice) != len(once) {
			return false
		}
		for i := range once {
			if !once[i].Equal(twice[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hash join and nested-loop join agree on random equi-join
// inputs.
func TestJoinEquivalenceProperty(t *testing.T) {
	l := types.NewSchema(types.Field{Name: "x", Type: types.KindInt})
	r := types.NewSchema(types.Field{Name: "y", Type: types.KindInt})
	joined := l.Concat(r)
	pred := algebra.NewJoinPred(algebra.Ref{Attr: "x"}, algebra.Ref{Attr: "y"})
	f := func(ls, rs []uint8) bool {
		lrows := make([]types.Row, len(ls))
		for i, v := range ls {
			lrows[i] = types.Row{types.Int(int64(v % 8))}
		}
		rrows := make([]types.Row, len(rs))
		for i, v := range rs {
			rrows[i] = types.Row{types.Int(int64(v % 8))}
		}
		nl := NestedLoopJoin(joined, lrows, rrows, pred, nil)
		hj, ok := HashJoin(l, r, joined, lrows, rrows, pred, nil)
		if !ok {
			return false
		}
		if len(nl) != len(hj) {
			return false
		}
		count := func(rows []types.Row) map[string]int {
			m := map[string]int{}
			for _, row := range rows {
				m[row.Key()]++
			}
			return m
		}
		a, b := count(nl), count(hj)
		for k, n := range a {
			if b[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRowBytes(t *testing.T) {
	rows := []types.Row{
		{types.Int(1), types.Str("abc")},
		{types.Int(2), types.Str("")},
	}
	// 8 + (3+8) + 8 + (0+8) = 35.
	if got := RowBytes(rows); got != 35 {
		t.Errorf("RowBytes = %d, want 35", got)
	}
	if RowBytes(nil) != 0 {
		t.Error("empty row set should be 0 bytes")
	}
}
