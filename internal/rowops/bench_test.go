package rowops

import (
	"fmt"
	"slices"
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// benchJoinInputs builds two row sets joined on an int key with skew: the
// probe side mixes Int and Float keys so numeric canonicalization is
// exercised, and a string payload column keeps rows realistic.
func benchJoinInputs(nLeft, nRight int) (ls, rs, joined *types.Schema, left, right []types.Row, pred *algebra.Predicate) {
	ls = types.NewSchema(
		types.Field{Name: "id", Collection: "L", Type: types.KindInt},
		types.Field{Name: "tag", Collection: "L", Type: types.KindString},
	)
	rs = types.NewSchema(
		types.Field{Name: "fk", Collection: "R", Type: types.KindInt},
		types.Field{Name: "val", Collection: "R", Type: types.KindString},
	)
	joined = ls.Concat(rs)
	left = make([]types.Row, nLeft)
	for i := range left {
		var key types.Constant
		if i%3 == 0 {
			key = types.Float(float64(i % 100))
		} else {
			key = types.Int(int64(i % 100))
		}
		left[i] = types.Row{key, types.Str(fmt.Sprintf("tag-%d", i%7))}
	}
	right = make([]types.Row, nRight)
	for i := range right {
		right[i] = types.Row{types.Int(int64(i % 100)), types.Str(fmt.Sprintf("val-%d", i%11))}
	}
	r := algebra.Ref{Collection: "R", Attr: "fk"}
	pred = &algebra.Predicate{Conjuncts: []algebra.Comparison{{
		Left:      algebra.Ref{Collection: "L", Attr: "id"},
		Op:        stats.CmpEQ,
		RightAttr: &r,
	}}}
	return
}

// BenchmarkHashJoin measures the equi-join hot path: key encoding on the
// build and probe sides dominates for narrow rows.
func BenchmarkHashJoin(b *testing.B) {
	ls, rs, joined, left, right, pred := benchJoinInputs(2000, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := HashJoin(ls, rs, joined, left, right, pred, nil)
		if !ok || len(out) == 0 {
			b.Fatal("join failed")
		}
	}
}

// BenchmarkDupElim measures duplicate elimination over rows with heavy
// duplication (the key encoder runs once per input row).
func BenchmarkDupElim(b *testing.B) {
	_, _, _, left, _, _ := benchJoinInputs(5000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := DupElim(left)
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// sortKeysForBench orders by payload string then key desc — two keys so
// the comparator's multi-key loop is exercised.
func sortKeysForBench() []algebra.SortKey {
	return []algebra.SortKey{
		{Attr: algebra.Ref{Collection: "L", Attr: "tag"}},
		{Attr: algebra.Ref{Collection: "L", Attr: "id"}, Desc: true},
	}
}

// BenchmarkSort measures the precompiled-comparator sort path. Compare
// with BenchmarkSortNameResolving: the compiled comparator resolves sort
// keys to positions once per Sort call, so the per-comparison work is
// two index loads — no name lookups, no per-key closure state.
func BenchmarkSort(b *testing.B) {
	ls, _, _, left, _, _ := benchJoinInputs(5000, 1)
	keys := sortKeysForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Sort(ls, left, keys)
		if err != nil || len(out) != len(left) {
			b.Fatal("sort failed")
		}
	}
}

// BenchmarkSortNameResolving is the pre-refactor baseline: a closure
// comparator that re-resolves each sort key by name on every comparison.
// Kept as the yardstick for the compiled comparator's win.
func BenchmarkSortNameResolving(b *testing.B) {
	ls, _, _, left, _, _ := benchJoinInputs(5000, 1)
	keys := sortKeysForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := append([]types.Row(nil), left...)
		slices.SortStableFunc(out, func(x, y types.Row) int {
			for _, k := range keys {
				px, _ := algebra.RefIndex(ls, k.Attr)
				c := x[px].Compare(y[px])
				if c == 0 {
					continue
				}
				if k.Desc {
					return -c
				}
				return c
			}
			return 0
		})
		if len(out) != len(left) {
			b.Fatal("sort failed")
		}
	}
}

// BenchmarkAggregate measures grouped aggregation (group-key encoding plus
// aggregate accumulation per input row).
func BenchmarkAggregate(b *testing.B) {
	ls, _, _, left, _, _ := benchJoinInputs(5000, 1)
	groupBy := []algebra.Ref{{Collection: "L", Attr: "tag"}}
	aggs := []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true},
		{Func: algebra.AggMax, Attr: algebra.Ref{Collection: "L", Attr: "id"}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Aggregate(ls, left, groupBy, aggs)
		if err != nil || len(out) == 0 {
			b.Fatal("aggregate failed")
		}
	}
}
