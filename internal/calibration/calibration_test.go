package calibration

import (
	"math"
	"testing"
	"testing/quick"

	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/oo7"
	"disco/internal/wrapper"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x fits perfectly.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9, 11}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-3) > 1e-9 || math.Abs(fit.Slope-2) > 1e-9 || fit.R2 < 0.9999 {
		t.Errorf("fit = %s", fit)
	}
	if got := fit.Predict(10); math.Abs(got-23) > 1e-9 {
		t.Errorf("Predict(10) = %v", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
}

// Property: FitLinear recovers a noiseless line for random coefficients.
func TestFitLinearRecovery(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 5, 9}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Intercept-a) < 1e-6 && math.Abs(fit.Slope-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErrorMetrics(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(5, 0); got != 5 {
		t.Errorf("zero-actual RelativeError = %v", got)
	}
	rms, err := RMSRelativeError([]float64{110, 90}, []float64{100, 100})
	if err != nil || math.Abs(rms-0.1) > 1e-12 {
		t.Errorf("RMS = %v, %v", rms, err)
	}
	if _, err := RMSRelativeError(nil, nil); err == nil {
		t.Error("empty series should fail")
	}
}

// TestCalibrateOnSimulatedStore runs the actual calibrating procedure of
// [GST96] against the simulated OO7 store: probe index scans at a few
// selectivities, fit the linear model, and confirm what the paper
// reports — the line fits the probes reasonably but UNDERESTIMATES the
// midrange where Yao-shaped page fetches dominate.
func TestCalibrateOnSimulatedStore(t *testing.T) {
	clock := netsim.NewClock()
	cfg := objstore.DefaultConfig()
	cfg.BufferPages = 1200
	store := objstore.Open(cfg, clock)
	scale := oo7.TinyScale()
	scale.AtomicParts = 14000 // 200 pages
	if err := oo7.Generate(store, scale, 11); err != nil {
		t.Fatal(err)
	}
	w := wrapper.NewObjWrapper("obj1", store)

	samples, err := ProbeIndexScan(w, clock, oo7.AtomicParts, "id", 0, int64(scale.AtomicParts),
		[]float64{0.001, 0.01, 0.3, 0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	fit, err := CalibrateIndexScan(samples)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Errorf("fit = %s", fit)
	}
	// Measure an unseen midrange selectivity and compare.
	mid, err := ProbeIndexScan(w, clock, oo7.AtomicParts, "id", 0, int64(scale.AtomicParts),
		[]float64{0.08})
	if err != nil {
		t.Fatal(err)
	}
	actual := mid[0].TimeMS
	predicted := fit.Predict(mid[0].K)
	if predicted >= actual {
		t.Errorf("calibrated line should underestimate the Yao midrange: predicted %v, actual %v",
			predicted, actual)
	}
}

func TestProbeSeqScanFits(t *testing.T) {
	clock := netsim.NewClock()
	store := objstore.Open(objstore.DefaultConfig(), clock)
	if err := oo7.Generate(store, oo7.TinyScale(), 5); err != nil {
		t.Fatal(err)
	}
	w := wrapper.NewObjWrapper("obj1", store)
	fit, err := ProbeSeqScan(w, clock, []string{oo7.AtomicParts, oo7.CompositeParts, oo7.Documents})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Errorf("seq scan fit = %s", fit)
	}
}
