// Package calibration implements the paper's baseline: the calibrating
// approach of [DKS92]/[GST96]. A set of probe queries runs against a data
// source; least squares fits the coefficients of the mediator's generic
// (linear) cost formulas to the measurements. The fitted model "assumes
// that the number of pages fetched is proportional to the selectivity" —
// the assumption whose failure Figure 12 exhibits.
package calibration

import (
	"fmt"
	"math"

	"disco/internal/algebra"
	"disco/internal/core"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/relstore"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// LinearFit is the least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Predict evaluates the fitted line.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// String renders the fit.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*x (R²=%.4f)", f.Intercept, f.Slope, f.R2)
}

// FitLinear computes the least-squares line through the points. It needs
// at least two distinct x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("calibration: need >= 2 paired samples, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("calibration: degenerate samples (all x equal)")
	}
	fit := LinearFit{}
	fit.Slope = (n*sxy - sx*sy) / den
	fit.Intercept = (sy - fit.Slope*sx) / n
	// R².
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
		r := ys[i] - fit.Predict(xs[i])
		ssRes += r * r
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// FitThroughOrigin computes the weighted least-squares slope of the line
// y = Slope*x constrained through the origin. The mediator's per-operator
// cost formulas are proportional (no fixed term), so the execution
// feedback subsystem re-fits their coefficients with this form. Weights
// may be nil (uniform); samples with non-positive weight or x are
// ignored. ok is false when no usable sample remains.
func FitThroughOrigin(xs, ys, weights []float64) (slope float64, ok bool) {
	var sxx, sxy float64
	for i := range xs {
		if i >= len(ys) {
			break
		}
		w := 1.0
		if weights != nil && i < len(weights) {
			w = weights[i]
		}
		if w <= 0 || xs[i] <= 0 || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		sxx += w * xs[i] * xs[i]
		sxy += w * xs[i] * ys[i]
	}
	if sxx == 0 {
		return 0, false
	}
	return sxy / sxx, true
}

// Sample is one probe measurement: a query returning K objects took
// TimeMS of virtual time.
type Sample struct {
	Selectivity float64
	K           float64
	TimeMS      float64
}

// BufferResetter is implemented by wrappers whose store can drop its
// cache so each probe starts cold (the calibrating procedure measures
// cold-start costs).
type BufferResetter interface {
	ResetBuffer()
}

// ProbeIndexScan measures an attribute-range access path at each
// selectivity: it executes select(scan(coll), attr < cut) through the
// wrapper and records (k, elapsed virtual ms). The attribute must be
// integer-valued and uniformly distributed in [min, max] for cut
// placement.
func ProbeIndexScan(w wrapper.Wrapper, clock *netsim.Clock, collection, attr string,
	min, max int64, sels []float64) ([]Sample, error) {

	schemaSrc := singleWrapperSchemas{w}
	var out []Sample
	for _, sel := range sels {
		cut := min + int64(sel*float64(max-min))
		plan := algebra.Select(
			algebra.Scan(w.Name(), collection),
			algebra.NewSelPred(algebra.Ref{Collection: collection, Attr: attr},
				stats.CmpLT, types.Int(cut)))
		if err := algebra.Resolve(plan, schemaSrc); err != nil {
			return nil, err
		}
		resetBuffers(w)
		start := clock.Now()
		res, err := w.Execute(plan)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{
			Selectivity: sel,
			K:           float64(len(res.Rows)),
			TimeMS:      clock.Now() - start,
		})
	}
	return out, nil
}

// CalibrateIndexScan fits the linear index-scan model TotalTime =
// IdxFirst + k*IdxPerObj from probe samples — the classical calibration
// of the generic model's coefficients.
func CalibrateIndexScan(samples []Sample) (LinearFit, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.K
		ys[i] = s.TimeMS
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		return fit, err
	}
	if fit.Intercept < 0 {
		fit.Intercept = 0
	}
	if fit.Slope < 0 {
		return fit, fmt.Errorf("calibration: negative slope %.4g — samples inconsistent", fit.Slope)
	}
	return fit, nil
}

// Apply installs a fitted index-scan line into an estimator's generic
// coefficients (IdxFirst, IdxPerObj).
func Apply(est *core.Estimator, fit LinearFit) {
	est.Globals["IdxFirst"] = types.Float(fit.Intercept)
	est.Globals["IdxPerObj"] = types.Float(fit.Slope)
}

// ProbeSeqScan measures full sequential scans of several collections and
// fits TotalTime = a + b*CountObject, calibrating the generic scan
// coefficients for a source class.
func ProbeSeqScan(w wrapper.Wrapper, clock *netsim.Clock, collections []string) (LinearFit, error) {
	schemaSrc := singleWrapperSchemas{w}
	var xs, ys []float64
	for _, coll := range collections {
		plan := algebra.Scan(w.Name(), coll)
		if err := algebra.Resolve(plan, schemaSrc); err != nil {
			return LinearFit{}, err
		}
		start := clock.Now()
		res, err := w.Execute(plan)
		if err != nil {
			return LinearFit{}, err
		}
		xs = append(xs, float64(len(res.Rows)))
		ys = append(ys, clock.Now()-start)
	}
	return FitLinear(xs, ys)
}

// RelativeError reports |est-actual| / actual; RMS aggregates it over
// sample pairs. The E2 experiment reports these.
func RelativeError(est, actual float64) float64 {
	if actual == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-actual) / math.Abs(actual)
}

// RMSRelativeError aggregates relative errors across pairs.
func RMSRelativeError(ests, actuals []float64) (float64, error) {
	if len(ests) != len(actuals) || len(ests) == 0 {
		return 0, fmt.Errorf("calibration: mismatched error series")
	}
	var acc float64
	for i := range ests {
		e := RelativeError(ests[i], actuals[i])
		acc += e * e
	}
	return math.Sqrt(acc / float64(len(ests))), nil
}

// resetBuffers drops the wrapper store's page cache when it has one, so
// each probe measures a cold start.
func resetBuffers(w wrapper.Wrapper) {
	switch v := w.(type) {
	case interface{ Store() *objstore.Store }:
		v.Store().ResetBuffer()
	case interface{ Store() *relstore.Store }:
		v.Store().ResetBuffer()
	case BufferResetter:
		v.ResetBuffer()
	}
}

// singleWrapperSchemas resolves plans against one wrapper.
type singleWrapperSchemas struct{ w wrapper.Wrapper }

// CollectionSchema implements algebra.SchemaSource.
func (s singleWrapperSchemas) CollectionSchema(_, collection string) (*types.Schema, error) {
	return s.w.Schema(collection)
}
