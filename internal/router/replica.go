package router

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"disco/internal/proto"
)

// ewmaAlpha is the smoothing factor of the per-replica latency estimate:
// each observation moves the estimate 20% of the way — reactive enough
// to track a replica that degrades mid-run, smooth enough not to chase
// single outliers. It mirrors the blending discipline of the mediator's
// feedback loop: measured actuals folded into a prior, never replacing
// it wholesale.
const ewmaAlpha = 0.2

// consecFailsDown is how many consecutive transport failures mark a
// replica down. Down replicas leave the ring (weight 0) until a probe
// or stats poll reaches them again.
const consecFailsDown = 2

// replicaConn pairs a pooled connection with its protocol reader: the
// reader buffers, so it must survive with the connection it read from.
type replicaConn struct {
	c net.Conn
	r *proto.Reader
}

// replicaState is the router's view of one discod replica: transport
// (a small connection pool), liveness, and the cost-model inputs — the
// EWMA of measured wall latency, the replica's self-reported in-flight
// and shed counters from its stats endpoint, and the derived ring
// weight.
type replicaState struct {
	addr     string
	capacity float64 // static relative capacity (ReplicaConfig.Capacity)

	pool chan *replicaConn

	// Router-side counters (atomics: the hot dispatch path).
	inflight  atomic.Int64 // requests this router currently has on the wire
	routed    atomic.Int64 // requests dispatched (including failures)
	failures  atomic.Int64 // transport-level failures observed
	shedSeen  atomic.Int64 // Overloaded responses observed
	scattered atomic.Int64 // shard sub-requests dispatched

	mu          sync.Mutex
	down        bool
	consecFails int
	ewmaMS      float64 // measured request latency estimate (0 = no data)
	obs         int64   // observations folded into ewmaMS
	weight      float64 // current ring weight (recomputeWeights)
	lastEpoch   uint64  // catalog epoch last seen in a stats poll
	repInFlight int64   // replica-reported admitted queries
	repShed     int64   // replica-reported shed total
	prevShed    int64   // repShed at the previous poll (step penalty)
}

func newReplicaState(addr string, capacity float64, poolSize int) *replicaState {
	if capacity <= 0 {
		capacity = 1
	}
	if poolSize <= 0 {
		poolSize = 4
	}
	return &replicaState{
		addr:     addr,
		capacity: capacity,
		weight:   capacity,
		pool:     make(chan *replicaConn, poolSize),
	}
}

// send performs one request/response exchange, pooling the connection on
// success and closing it on any transport error (the reader may be
// desynced). The caller decides what an Overloaded response means; here
// it is a successful exchange.
func (r *replicaState) send(req *proto.Request, dialTimeout, reqTimeout time.Duration) (*proto.Response, error) {
	rc, err := r.getConn(dialTimeout)
	if err != nil {
		return nil, err
	}
	if reqTimeout > 0 {
		_ = rc.c.SetDeadline(time.Now().Add(reqTimeout))
	}
	if err := proto.Write(rc.c, req); err != nil {
		rc.c.Close()
		return nil, err
	}
	resp, err := rc.r.ReadResponse()
	if err != nil {
		rc.c.Close()
		return nil, err
	}
	select {
	case r.pool <- rc:
	default:
		rc.c.Close()
	}
	return resp, nil
}

func (r *replicaState) getConn(dialTimeout time.Duration) (*replicaConn, error) {
	select {
	case rc := <-r.pool:
		return rc, nil
	default:
	}
	c, err := net.DialTimeout("tcp", r.addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &replicaConn{c: c, r: proto.NewReader(c)}, nil
}

// drainPool closes every pooled connection (shutdown, or a down mark —
// pooled connections to a dead replica would each cost a failed request
// to discover).
func (r *replicaState) drainPool() {
	for {
		select {
		case rc := <-r.pool:
			rc.c.Close()
		default:
			return
		}
	}
}

// observe folds one measured request latency into the EWMA.
func (r *replicaState) observe(ms float64) {
	r.mu.Lock()
	if r.obs == 0 {
		r.ewmaMS = ms
	} else {
		r.ewmaMS += ewmaAlpha * (ms - r.ewmaMS)
	}
	r.obs++
	r.mu.Unlock()
}

// markSuccess resets the consecutive-failure streak and revives a down
// replica (any successful exchange proves liveness).
func (r *replicaState) markSuccess() {
	r.mu.Lock()
	r.consecFails = 0
	r.down = false
	r.mu.Unlock()
}

// markFailure counts one transport failure; the streak crossing
// consecFailsDown marks the replica down. Reports whether the replica is
// down after the mark.
func (r *replicaState) markFailure() bool {
	r.failures.Add(1)
	r.mu.Lock()
	r.consecFails++
	wasUp := !r.down
	if r.consecFails >= consecFailsDown {
		r.down = true
	}
	down := r.down
	r.mu.Unlock()
	if down && wasUp {
		r.drainPool()
	}
	return down
}

func (r *replicaState) isDown() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down
}

// cost prices dispatching one more request to this replica right now:
// the queue it would join (router-side in-flight plus the replica's
// self-reported admitted queries, plus this request) times the expected
// per-request latency, discounted by static capacity. It is the
// router-tier analogue of the mediator's cost formulas — load times
// latency over capacity — and drives the affinity-overload escape hatch
// in pick(). fallbackMS prices a replica with no latency observations
// yet; callers pass the fleet's mean measured latency so an unmeasured
// replica is priced as typical rather than implausibly fast (which
// would bounce affinity away from every replica that has ever been
// measured).
func (r *replicaState) cost(fallbackMS float64) float64 {
	r.mu.Lock()
	ewma := r.ewmaMS
	rep := r.repInFlight
	r.mu.Unlock()
	if ewma <= 0 {
		ewma = fallbackMS
	}
	if ewma <= 0 {
		ewma = 1 // nothing measured anywhere: load alone decides
	}
	queue := float64(r.inflight.Load()+rep) + 1
	return queue * ewma / r.capacity
}

// meanEwmaMS is the mean measured latency across replicas with data
// (0 = nothing measured), the cost fallback for unmeasured replicas.
func meanEwmaMS(replicas []*replicaState) float64 {
	var sum float64
	var n int
	for _, r := range replicas {
		r.mu.Lock()
		if r.obs > 0 && r.ewmaMS > 0 {
			sum += r.ewmaMS
			n++
		}
		r.mu.Unlock()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
