// Package router is the multi-mediator federation tier: a cost-based
// request router fronting N discod replicas. It extends the paper's
// mediator cost-model discipline one level up — just as the mediator
// prices heterogeneous *sources* with a blended cost hierarchy, the
// router prices heterogeneous *replicas* with feedback-measured speed
// and live load, and routes each statement to the replica the pricing
// says will answer it cheapest, preferring the replica whose caches
// already hold the statement's plan.
//
// Three mechanisms (DESIGN.md §13):
//
//   - plan-affine consistent hashing: statements hash by their
//     normalized text (mediator.NormalizeSQL — the plan-cache key) onto
//     a weighted ring, so a repeated statement lands on the replica
//     that already prepared and cached it. Weights blend static
//     capacity with EWMA-measured speed, so a slow replica owns
//     proportionally less of the ring.
//   - catalog gossip: epoch-bumping operations (reregister, setlink)
//     fan out to every replica, keeping the replicated catalogs
//     aligned; the router then re-warms hot statements so the flushed
//     caches recover without client-visible cold misses.
//   - scatter-gather partitioned scans: eligible single-collection
//     scans split into per-replica range shards merged through the
//     vexec batch pipeline, trading one replica's latency for the
//     fan-out of many.
package router

import (
	"fmt"
	"math"
	"sort"
)

// DefaultVnodesPerUnit is the ring resolution: virtual nodes per unit of
// replica weight. Higher values smooth the key distribution at the cost
// of a larger (still tiny) sorted point array.
const DefaultVnodesPerUnit = 64

// ringPoint is one virtual node: a position on the hash circle owned by
// a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is a weighted consistent-hash ring over replica indices. A
// replica with weight w owns ~round(w*vnodesPerUnit) virtual nodes whose
// positions derive only from the replica name and vnode ordinal — so
// changing a weight adds or removes a suffix of that replica's vnode
// list and every other point stays fixed (minimal key movement).
type Ring struct {
	points []ringPoint
	counts []int
}

// fnv64a is the 64-bit FNV-1a string hash keying both vnode positions
// and lookups, passed through a finalizer: raw FNV of short, similar
// strings ("addr#0", "addr#1", ...) clusters on the circle, and
// clustered vnodes skew arc lengths far from the weights. The
// splitmix64 finalizer avalanches every input bit across the output,
// restoring uniform placement.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// BuildRing places names[i] on the circle with round(weights[i] *
// vnodesPerUnit) virtual nodes (minimum 1 for any positive weight).
// A non-positive weight excludes the replica entirely — the down state.
// vnodesPerUnit <= 0 uses DefaultVnodesPerUnit.
func BuildRing(names []string, weights []float64, vnodesPerUnit int) *Ring {
	if vnodesPerUnit <= 0 {
		vnodesPerUnit = DefaultVnodesPerUnit
	}
	r := &Ring{counts: make([]int, len(names))}
	for i, name := range names {
		if i >= len(weights) || weights[i] <= 0 {
			continue
		}
		vn := int(math.Round(weights[i] * float64(vnodesPerUnit)))
		if vn < 1 {
			vn = 1
		}
		r.counts[i] = vn
		for j := 0; j < vn; j++ {
			r.points = append(r.points, ringPoint{hash: fnv64a(fmt.Sprintf("%s#%d", name, j)), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Lookup returns the replica owning key: the successor vnode clockwise
// from the key's hash. Returns -1 on an empty ring.
func (r *Ring) Lookup(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Successors returns up to n distinct replicas in clockwise vnode order
// starting at key's owner — the failover preference order for the key.
func (r *Ring) Successors(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	seen := make(map[int]struct{}, n)
	var out []int
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.replica]; dup {
			continue
		}
		seen[p.replica] = struct{}{}
		out = append(out, p.replica)
	}
	return out
}

// VnodeCount reports replica i's virtual-node population (0 = excluded).
func (r *Ring) VnodeCount(i int) int {
	if i < 0 || i >= len(r.counts) {
		return 0
	}
	return r.counts[i]
}

// Size reports the total virtual-node population.
func (r *Ring) Size() int { return len(r.points) }
