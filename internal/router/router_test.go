package router

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"disco/internal/loadgen"
	"disco/internal/proto"
	"disco/internal/resultcache"
	"disco/internal/serving"
	"disco/internal/sqlparser"
)

const testParts = 800

// startReplica brings up one demo federation replica on an ephemeral
// TCP port. All replicas built from the same options hold identical
// data (NewDemoFederation is deterministic), which is the replication
// premise of the scatter tier.
func startReplica(t *testing.T, opts serving.Options) (string, *serving.Server) {
	t.Helper()
	if opts.Parts == 0 {
		opts.Parts = testParts
	}
	fed, err := serving.NewDemoFederation(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(fed, time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(2 * time.Second) })
	return ln.Addr().String(), srv
}

func startRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func mustQuery(t *testing.T, rt *Router, sql string) *proto.Response {
	t.Helper()
	resp := rt.Handle(&proto.Request{Op: "query", SQL: sql})
	if !resp.OK {
		t.Fatalf("query %q: %s", sql, resp.Error)
	}
	return resp
}

// TestRouterAffinityAndFailover: repeated statements stick to one
// replica (plan affinity), distinct statements spread, and a killed
// replica's statements fail over without a client-visible error.
func TestRouterAffinityAndFailover(t *testing.T) {
	addrs := make([]string, 3)
	srvs := make([]*serving.Server, 3)
	for i := range addrs {
		addrs[i], srvs[i] = startReplica(t, serving.Options{})
	}
	// A stepping virtual clock (see TestRouterCostBiasAgainstSlowReplica)
	// keeps every replica's measured EWMA identical, so the two-choices
	// load escape never overrides ring affinity: the killed replica's
	// statement must reach it, fail, and take the counted failover path —
	// under the wall clock, scheduler noise could inflate the home
	// replica's EWMA past 2x the cheapest and dodge the dead replica
	// without a failover.
	var tick atomic.Int64
	now := func() time.Time { return time.Unix(0, tick.Add(500_000)) }
	rt := startRouter(t, Config{
		Replicas:     []ReplicaConfig{{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]}},
		PollInterval: -1,
		Now:          now,
	})

	const hotSQL = `SELECT sname FROM Suppliers WHERE region = 3`
	first := mustQuery(t, rt, hotSQL)
	if len(first.Rows) != 42 {
		t.Fatalf("rows = %d, want 42", len(first.Rows))
	}
	if first.Replica == "" {
		t.Fatal("response missing replica attribution")
	}
	for i := 0; i < 9; i++ {
		if resp := mustQuery(t, rt, hotSQL); resp.Replica != first.Replica {
			t.Fatalf("repeat %d routed to %s, first went to %s — affinity broken", i, resp.Replica, first.Replica)
		}
	}

	seen := make(map[string]bool)
	for i := 0; i < 60; i++ {
		resp := mustQuery(t, rt, fmt.Sprintf(`SELECT docId FROM AtomicParts WHERE AtomicParts.id = %d`, i))
		seen[resp.Replica] = true
	}
	if len(seen) < 2 {
		t.Errorf("60 distinct statements all routed to %v — no spread", seen)
	}

	// Kill the hot statement's home replica; the statement must fail
	// over to a survivor.
	for i, a := range addrs {
		if a == first.Replica {
			srvs[i].Shutdown(time.Second)
		}
	}
	resp := mustQuery(t, rt, hotSQL)
	if resp.Replica == first.Replica {
		t.Fatalf("statement still attributed to the killed replica %s", first.Replica)
	}
	if len(resp.Rows) != 42 {
		t.Errorf("failover answer has %d rows, want 42", len(resp.Rows))
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Error("failover counter did not move")
	}

	if resp := rt.Handle(&proto.Request{Op: "nonsense"}); resp.OK {
		t.Error("unknown op succeeded")
	}
}

// TestRouterCostBiasAgainstSlowReplica is the pinned weight test: a
// replica the router has measured at 25ms must end up with a weight
// well below its peers after a poll, and receive a disproportionately
// small share of subsequent distinct statements. The latency picture is
// injected through Config.Now — a stepping virtual clock makes every
// real exchange observe exactly the step, and the slow replica's EWMA
// is fed directly — so the test is deterministic on any CI load, unlike
// its earlier incarnation that slept 25ms of wall time behind a TCP
// proxy and raced the scheduler.
func TestRouterCostBiasAgainstSlowReplica(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i], _ = startReplica(t, serving.Options{})
	}

	// Every Now() call advances half a millisecond, and exchange calls
	// Now exactly twice per request — so with sequential driving every
	// replica measures a uniform, deterministic 0.5ms.
	var tick atomic.Int64
	now := func() time.Time { return time.Unix(0, tick.Add(500_000)) }

	rt := startRouter(t, Config{
		Replicas:     []ReplicaConfig{{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]}},
		PollInterval: -1,
		Now:          now,
	})

	// Warm-up: enough distinct statements that every replica's EWMA has
	// data, then make replica 1 look 25ms slow — the picture a congested
	// link would have painted — and fold the measurements into the
	// weights.
	for i := 0; i < 60; i++ {
		rt.Handle(&proto.Request{Op: "query",
			SQL: fmt.Sprintf(`SELECT docId FROM AtomicParts WHERE AtomicParts.id = %d`, i)})
	}
	for i := 0; i < 40; i++ {
		rt.replicas[1].observe(25)
	}
	rt.PollNow()

	st := rt.Stats()
	slow := st.Replicas[1]
	for i, rs := range st.Replicas {
		if i == 1 {
			continue
		}
		if slow.Weight >= 0.5*rs.Weight {
			t.Errorf("slow replica weight %.3f not well below replica %d's %.3f", slow.Weight, i, rs.Weight)
		}
		if slow.Vnodes >= rs.Vnodes {
			t.Errorf("slow replica owns %d vnodes, replica %d owns %d", slow.Vnodes, i, rs.Vnodes)
		}
	}
	if slow.EwmaMS < 20 {
		t.Errorf("slow replica EWMA %.2fms did not register the injected 25ms", slow.EwmaMS)
	}

	// Measurement phase: fresh distinct statements; the slow replica
	// must receive proportionally less work than a fair third — partly
	// its shrunken ring share, partly the two-choices escape hatch
	// re-routing statements it still owns.
	for i := 0; i < 400; i++ {
		rt.Handle(&proto.Request{Op: "query",
			SQL: fmt.Sprintf(`SELECT docId FROM AtomicParts WHERE AtomicParts.id = %d`, 1000+i)})
	}
	after := rt.Stats()
	var total, slowRouted int64
	for i, rs := range after.Replicas {
		routed := rs.Routed - st.Replicas[i].Routed
		total += routed
		if i == 1 {
			slowRouted = routed
		}
	}
	if total == 0 {
		t.Fatal("no statements routed in the measurement phase")
	}
	share := float64(slowRouted) / float64(total)
	if share > 0.22 {
		t.Errorf("slow replica received %.1f%% of routed work, want well under a fair 33%%", 100*share)
	}
}

// TestRouterGossipReplicatesEpochAndWarms: an epoch-bumping op through
// the router reaches every replica, and the router re-warms its hot
// statements into the flushed caches.
func TestRouterGossipReplicatesEpochAndWarms(t *testing.T) {
	opts := serving.Options{ResultCache: resultcache.Config{Enabled: true}}
	addr0, srv0 := startReplica(t, opts)
	addr1, srv1 := startReplica(t, opts)
	rt := startRouter(t, Config{
		Replicas:     []ReplicaConfig{{Addr: addr0}, {Addr: addr1}},
		PollInterval: -1,
	})

	const hotSQL = `SELECT sname FROM Suppliers WHERE region = 3`
	for i := 0; i < 3; i++ {
		mustQuery(t, rt, hotSQL)
	}
	epochBefore := srv0.Stats().Epoch

	resp := rt.Handle(&proto.Request{Op: "reregister", Arg: "oo7"})
	if !resp.OK {
		t.Fatalf("reregister: %s", resp.Error)
	}
	if !strings.Contains(resp.Text, "gossiped to 2/2") {
		t.Errorf("gossip fanout not reported: %q", resp.Text)
	}
	for i, srv := range []*serving.Server{srv0, srv1} {
		if e := srv.Stats().Epoch; e != epochBefore+1 {
			t.Errorf("replica %d epoch %d, want %d — gossip missed it", i, e, epochBefore+1)
		}
	}
	st := rt.Stats()
	if st.Gossips != 1 {
		t.Errorf("gossips = %d, want 1", st.Gossips)
	}
	if st.Warms == 0 {
		t.Error("no hot statements were re-warmed after the gossip")
	}
	// The warm landed in the statement's owner: its plan cache is
	// populated again even though the reregistration just flushed it.
	warmed := false
	for _, srv := range []*serving.Server{srv0, srv1} {
		if srv.Stats().Mediator.PlanCacheEntries > 0 {
			warmed = true
		}
	}
	if !warmed {
		t.Error("no replica has a warmed plan cache after gossip")
	}

	if resp := rt.Handle(&proto.Request{Op: "reregister", Arg: "nope"}); resp.OK {
		t.Error("gossiping an invalid reregister succeeded")
	}
	if resp := mustQuery(t, rt, hotSQL); len(resp.Rows) != 42 {
		t.Errorf("post-gossip query: %d rows, want 42", len(resp.Rows))
	}
}

// TestScatterGatherMatchesOracle: eligible scans scatter across the
// replica set and the merged answer is digest-identical to a single
// mediator's; ineligible statements route normally; a killed replica's
// shards fail over with no partial answer.
func TestScatterGatherMatchesOracle(t *testing.T) {
	oracleFed, err := serving.NewDemoFederation(serving.Options{Parts: testParts})
	if err != nil {
		t.Fatal(err)
	}
	oracle := serving.NewServer(oracleFed, time.Minute)
	defer oracle.Shutdown(time.Second)

	addrs := make([]string, 3)
	srvs := make([]*serving.Server, 3)
	for i := range addrs {
		addrs[i], srvs[i] = startReplica(t, serving.Options{})
	}
	rt := startRouter(t, Config{
		Replicas:     []ReplicaConfig{{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]}},
		Partitions:   DemoPartitions(testParts),
		PollInterval: -1,
	})

	scans := []string{
		`SELECT part, passed FROM Inspections WHERE part < 300`,
		`SELECT x, y FROM AtomicParts WHERE AtomicParts.id < 85`,
		`SELECT sname FROM Suppliers WHERE region = 3`,
	}
	for _, sql := range scans {
		got := mustQuery(t, rt, sql)
		want := oracle.Handle(&proto.Request{Op: "query", SQL: sql})
		if !want.OK {
			t.Fatalf("oracle %q: %s", sql, want.Error)
		}
		if !strings.HasPrefix(got.Replica, "scatter:") {
			t.Errorf("%q: replica = %q, want scatter attribution", sql, got.Replica)
		}
		if got.Shards != 3 {
			t.Errorf("%q: shards = %d, want 3", sql, got.Shards)
		}
		// Every shard is attributed to the real replica that served it,
		// and the attributed rows add up to the merged answer.
		if len(got.ShardDetail) != 3 {
			t.Errorf("%q: %d shard details, want 3", sql, len(got.ShardDetail))
		}
		shardRows := 0
		for _, sd := range got.ShardDetail {
			shardRows += sd.Rows
			found := false
			for _, a := range addrs {
				if sd.Replica == a {
					found = true
				}
			}
			if !found {
				t.Errorf("%q: shard attributed to unknown replica %q", sql, sd.Replica)
			}
		}
		if shardRows != len(got.Rows) {
			t.Errorf("%q: shard details account for %d rows, merged answer has %d", sql, shardRows, len(got.Rows))
		}
		if got.Partial {
			t.Errorf("%q: partial answer with all replicas up", sql)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("%q: %d rows, oracle has %d", sql, len(got.Rows), len(want.Rows))
		}
		if loadgen.HashRows(got.Rows) != loadgen.HashRows(want.Rows) {
			t.Errorf("%q: scatter digest diverged from the oracle", sql)
		}
	}

	// Point lookup on the partition column: plan-affine, not scattered.
	point := mustQuery(t, rt, `SELECT docId FROM AtomicParts WHERE AtomicParts.id = 5`)
	if strings.HasPrefix(point.Replica, "scatter:") {
		t.Error("point lookup was scattered")
	}
	// Aggregation: needs a global view, not scattered.
	group := mustQuery(t, rt, `SELECT region, count(*) AS n FROM Suppliers WHERE sid < 400 GROUP BY region`)
	if strings.HasPrefix(group.Replica, "scatter:") {
		t.Error("grouped aggregate was scattered")
	}

	// Kill one replica: its shards rotate to survivors and the answer
	// stays exact — degradation to Partial is reserved for shards that
	// fail on every live replica.
	srvs[2].Shutdown(time.Second)
	sql := scans[0]
	got := mustQuery(t, rt, sql)
	want := oracle.Handle(&proto.Request{Op: "query", SQL: sql})
	if got.Partial {
		t.Error("partial answer though two replicas could cover every shard")
	}
	if loadgen.HashRows(got.Rows) != loadgen.HashRows(want.Rows) {
		t.Error("post-kill scatter digest diverged from the oracle")
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Error("shard failover did not count")
	}
}

// TestScatterExcludedCanonical pins the degraded-answer contract: the
// exclusion list a scatter merge reports is deduped and sorted, however
// many shards named the same replica and in whatever order the shard
// goroutines completed.
func TestScatterExcludedCanonical(t *testing.T) {
	got := canonExcluded([]string{"rep:9002", "rep:9000", "rep:9002", "rep:9001", "rep:9000", "rep:9002"})
	want := "rep:9000,rep:9001,rep:9002"
	if strings.Join(got, ",") != want {
		t.Errorf("canonExcluded = %q, want %q", strings.Join(got, ","), want)
	}
	if canonExcluded(nil) != nil {
		t.Error("canonExcluded(nil) != nil")
	}
	// Already-canonical input is a fixed point.
	again := canonExcluded(got)
	if strings.Join(again, ",") != want {
		t.Errorf("canonExcluded not idempotent: %q", strings.Join(again, ","))
	}
}

// TestShardSQLBoundsAndEligibility: unit coverage of the shard
// rewriting and the eligibility gate.
func TestShardSQLBoundsAndEligibility(t *testing.T) {
	parts := DemoPartitions(900)
	q, err := sqlparser.Parse(`SELECT part, passed FROM Inspections WHERE part < 300`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := scatterEligible(q, parts)
	if !ok || p.Collection != "Inspections" {
		t.Fatalf("range scan not eligible (part=%+v ok=%v)", p, ok)
	}
	shards := []string{shardSQL(q, p, 0, 3), shardSQL(q, p, 1, 3), shardSQL(q, p, 2, 3)}
	if strings.Contains(shards[0], ">=") {
		t.Errorf("first shard must keep its lower bound open: %q", shards[0])
	}
	if !strings.Contains(shards[1], "part >= 300") || !strings.Contains(shards[1], "part < 600") {
		t.Errorf("middle shard bounds wrong: %q", shards[1])
	}
	if !strings.Contains(shards[2], "part >= 600") || strings.Contains(shards[2], "part < 900") {
		t.Errorf("last shard must keep its upper bound open: %q", shards[2])
	}
	for _, s := range shards {
		if _, err := sqlparser.Parse(s); err != nil {
			t.Errorf("shard SQL does not re-parse: %q: %v", s, err)
		}
		if !strings.Contains(s, "part < 300") {
			t.Errorf("shard dropped the original predicate: %q", s)
		}
	}

	ineligible := []string{
		`SELECT docId FROM AtomicParts WHERE AtomicParts.id = 5`,            // point on partition column
		`SELECT DISTINCT part FROM Inspections`,                             // DISTINCT
		`SELECT region, count(*) AS n FROM Suppliers GROUP BY region`,       // aggregate
		`SELECT sname FROM Suppliers ORDER BY sname`,                        // ORDER BY
		`SELECT sname, passed FROM Suppliers, Inspections WHERE part = sid`, // join
		`SELECT doc FROM Documents WHERE id < 5`,                            // unpartitioned collection
	}
	for _, sql := range ineligible {
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, ok := scatterEligible(q, parts); ok {
			t.Errorf("%q must not scatter", sql)
		}
	}
	eligible := []string{
		`SELECT part, passed FROM Inspections WHERE part < 10`,
		`SELECT sname FROM Suppliers WHERE region = 3`, // equality, but not on the partition column
		`SELECT x, y FROM AtomicParts`,                 // full scan
	}
	for _, sql := range eligible {
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, ok := scatterEligible(q, parts); !ok {
			t.Errorf("%q must scatter", sql)
		}
	}
}
