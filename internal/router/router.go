package router

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"disco/internal/mediator"
	"disco/internal/proto"
	"disco/internal/serving"
	"disco/internal/sqlparser"
)

// ReplicaConfig names one discod replica and its static relative
// capacity (1 = baseline; 2 = provisioned to serve twice the load).
type ReplicaConfig struct {
	Addr     string
	Capacity float64
}

// RetryPolicy governs the router's per-request resilience, mirroring
// the wrapper tier's discipline (wrapper.RetryPolicy): transport
// failures and sheds burn attempts against other replicas with
// exponential wall-clock backoff between tries.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per request (0 = replicas + 1).
	MaxAttempts int
	// Backoff before the first retry; doubled (BackoffMult) per retry up
	// to MaxBackoff.
	Backoff     time.Duration
	BackoffMult float64
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy matches the wrapper tier's shape scaled to wall
// time: a quick first retry, exponential growth, a tight cap — enough
// to ride out a replica restart without wedging the client.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Backoff: 25 * time.Millisecond, BackoffMult: 2, MaxBackoff: 400 * time.Millisecond}
}

func (p RetryPolicy) backoff(retry int) time.Duration {
	b := p.Backoff
	mult := p.BackoffMult
	if mult <= 0 {
		mult = 2
	}
	for i := 0; i < retry; i++ {
		b = time.Duration(float64(b) * mult)
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// Config assembles a Router.
type Config struct {
	// Replicas is the replica set (at least one).
	Replicas []ReplicaConfig
	// Partitions declares the partitionable collections for
	// scatter-gather scans (nil = scatter disabled).
	Partitions []Partition
	// VnodesPerUnit is the ring resolution (0 = DefaultVnodesPerUnit).
	VnodesPerUnit int
	// DialTimeout bounds replica dials (0 = 2s); RequestTimeout bounds a
	// full request/response exchange (0 = 30s).
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// Retry is the failover policy (zero value = DefaultRetryPolicy).
	Retry RetryPolicy
	// PollInterval paces the background stats poll that feeds the cost
	// model (0 = 2s; negative disables the loop — tests drive PollNow).
	PollInterval time.Duration
	// WarmLimit bounds hot statements re-warmed after a gossip or a
	// replica epoch change (0 = 32).
	WarmLimit int
	// PoolSize bounds pooled connections per replica (0 = 4).
	PoolSize int
	// Now supplies the timestamps the router uses to measure replica
	// request latency (nil = time.Now). The rest of the system bills
	// I/O to the netsim virtual clock; the router fronts real TCP
	// replicas, so its clock is injected rather than shared — tests
	// substitute a deterministic source and production uses wall time.
	Now func() time.Time
}

// hotCap bounds the tracked hot-statement LRU.
const hotCap = 64

// Router fronts a replica set with cost-based routing, catalog gossip
// and scatter-gather scans. It implements serving.Handler, so it mounts
// on the same ConnServer transport as a single mediator.
type Router struct {
	cfg      Config
	replicas []*replicaState
	names    []string

	ringMu      sync.Mutex
	ring        *Ring
	ringWeights []float64

	hot hotTracker

	routedTotal    atomic.Int64
	scatteredTotal atomic.Int64
	failovers      atomic.Int64
	shedRetries    atomic.Int64
	gossips        atomic.Int64
	warms          atomic.Int64
	partials       atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	loopWG   sync.WaitGroup
}

// New builds a router over cfg's replica set and starts the stats-poll
// loop (unless PollInterval < 0). Close releases it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: at least one replica required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = len(cfg.Replicas) + 1
	}
	if cfg.WarmLimit <= 0 {
		cfg.WarmLimit = 32
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	rt := &Router{cfg: cfg, stop: make(chan struct{})}
	rt.hot.cap = hotCap
	weights := make([]float64, len(cfg.Replicas))
	for _, rc := range cfg.Replicas {
		rt.replicas = append(rt.replicas, newReplicaState(rc.Addr, rc.Capacity, cfg.PoolSize))
		rt.names = append(rt.names, rc.Addr)
	}
	for i, r := range rt.replicas {
		weights[i] = r.capacity
	}
	rt.ring = BuildRing(rt.names, weights, cfg.VnodesPerUnit)
	rt.ringWeights = weights
	if cfg.PollInterval >= 0 {
		interval := cfg.PollInterval
		if interval == 0 {
			interval = 2 * time.Second
		}
		rt.loopWG.Add(1)
		go rt.pollLoop(interval)
	}
	return rt, nil
}

// Close stops the background loop and drops pooled connections. The
// ConnServer Shutdown hook calls it.
func (rt *Router) Close() error {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.loopWG.Wait()
	for _, r := range rt.replicas {
		r.drainPool()
	}
	return nil
}

func (rt *Router) pollLoop(interval time.Duration) {
	defer rt.loopWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.PollNow()
		}
	}
}

// Handle implements serving.Handler: the router speaks the same line
// protocol as a single discod, so clients need no changes.
func (rt *Router) Handle(req *proto.Request) *proto.Response {
	switch req.Op {
	case "ping":
		return &proto.Response{OK: true, Text: "pong (router)"}

	case "stats":
		data, err := json.Marshal(rt.Stats())
		if err != nil {
			return &proto.Response{Error: err.Error()}
		}
		return &proto.Response{OK: true, Text: string(data)}

	case "reregister", "setlink":
		return rt.gossip(req)

	case "query":
		if resp := rt.tryScatter(req); resp != nil {
			return resp
		}
		key := mediator.NormalizeSQL(req.SQL)
		rt.hot.note(key, req.SQL)
		return rt.forward(req, key)

	case "explain", "explain-analyze", "warm":
		// Plan-affine: the same replica that would serve the query
		// explains or warms it, so the output reflects the caches the
		// query would actually hit.
		return rt.forward(req, mediator.NormalizeSQL(req.SQL))

	case "catalog", "history", "feedback":
		// Replica-local diagnostics: any healthy replica answers; route
		// to the cheapest.
		return rt.forward(req, "")

	default:
		return &proto.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// forward dispatches one request with consistent-hash affinity (key) and
// failover: transport failures and sheds burn retry attempts against the
// next-preferred replicas with backoff in between. An empty key skips
// affinity and goes straight to the cheapest replica.
func (rt *Router) forward(req *proto.Request, key string) *proto.Response {
	tried := make(map[int]bool, len(rt.replicas))
	var lastErr error
	sheds, fails := 0, 0
	for attempt := 0; attempt < rt.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(rt.cfg.Retry.backoff(attempt - 1))
		}
		idx := rt.pick(key, tried)
		if idx < 0 {
			// Every live replica tried: clear the exclusions so later
			// attempts may revisit (a shed replica may admit after
			// backoff; a down one may have revived).
			tried = make(map[int]bool, len(rt.replicas))
			idx = rt.pick(key, tried)
			if idx < 0 {
				break
			}
		}
		r := rt.replicas[idx]
		resp, err := rt.exchange(r, req)
		if err != nil {
			tried[idx] = true
			lastErr = err
			fails++
			rt.failovers.Add(1)
			continue
		}
		if resp.Overloaded {
			tried[idx] = true
			sheds++
			rt.shedRetries.Add(1)
			continue
		}
		if resp.Replica == "" {
			resp.Replica = r.addr
		}
		return resp
	}
	if lastErr == nil && sheds > 0 {
		return &proto.Response{
			Error:      fmt.Sprintf("router: all %d attempts shed by admission control", rt.cfg.Retry.MaxAttempts),
			Overloaded: true,
		}
	}
	if lastErr != nil {
		return &proto.Response{Error: fmt.Sprintf("router: no replica answered after %d attempts (%d transport failures, %d sheds): %v",
			rt.cfg.Retry.MaxAttempts, fails, sheds, lastErr)}
	}
	return &proto.Response{Error: "router: no replica available"}
}

// exchange performs one priced request on a replica: in-flight tracking,
// latency observation (on the injected clock) into the EWMA, liveness
// marking.
func (rt *Router) exchange(r *replicaState, req *proto.Request) (*proto.Response, error) {
	rt.routedTotal.Add(1)
	r.routed.Add(1)
	r.inflight.Add(1)
	start := rt.cfg.Now()
	resp, err := r.send(req, rt.cfg.DialTimeout, rt.cfg.RequestTimeout)
	r.inflight.Add(-1)
	if err != nil {
		r.markFailure()
		return nil, err
	}
	r.markSuccess()
	r.observe(float64(rt.cfg.Now().Sub(start).Microseconds()) / 1000)
	if resp.Overloaded {
		r.shedSeen.Add(1)
	}
	return resp, nil
}

// pick chooses the replica for key among live, untried replicas: the
// ring owner (plan-cache affinity) unless its dispatch cost exceeds
// twice the cheapest candidate's — the two-choices escape hatch that
// sheds load off a replica the cost model says is drowning without
// giving up affinity in the common case. An empty key is pure least-cost.
func (rt *Router) pick(key string, tried map[int]bool) int {
	fallback := meanEwmaMS(rt.replicas)
	best, primary := -1, -1
	var bestCost float64
	for i, r := range rt.replicas {
		if tried[i] || r.isDown() {
			continue
		}
		c := r.cost(fallback)
		if best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	if best < 0 {
		return -1
	}
	if key != "" {
		rt.ringMu.Lock()
		order := rt.ring.Successors(key, len(rt.replicas))
		rt.ringMu.Unlock()
		for _, idx := range order {
			if !tried[idx] && !rt.replicas[idx].isDown() {
				primary = idx
				break
			}
		}
	}
	if primary < 0 || primary == best {
		return best
	}
	if rt.replicas[primary].cost(fallback) > 2*bestCost {
		return best
	}
	return primary
}

// gossip fans an epoch-bumping administrative op (reregister, setlink)
// to every replica in parallel — the catalog-replication path. The op
// succeeds if at least one replica acked (stragglers are caught up by
// the poll loop's epoch check); afterwards the router re-warms hot
// statements so the flushed caches recover before clients notice.
func (rt *Router) gossip(req *proto.Request) *proto.Response {
	rt.gossips.Add(1)
	type ack struct {
		resp *proto.Response
		err  error
	}
	acks := make([]ack, len(rt.replicas))
	var wg sync.WaitGroup
	for i, r := range rt.replicas {
		wg.Add(1)
		go func(i int, r *replicaState) {
			defer wg.Done()
			resp, err := rt.exchange(r, req)
			acks[i] = ack{resp, err}
		}(i, r)
	}
	wg.Wait()
	oks := 0
	var firstOK, firstBad *proto.Response
	for _, a := range acks {
		switch {
		case a.err != nil:
			// transport failure: counted by exchange, nothing to render
		case a.resp.OK:
			oks++
			if firstOK == nil {
				firstOK = a.resp
			}
		case firstBad == nil:
			firstBad = a.resp
		}
	}
	if oks == 0 {
		if firstBad != nil {
			return firstBad
		}
		return &proto.Response{Error: fmt.Sprintf("router: %s reached no replica", req.Op)}
	}
	rt.warmStatements(rt.hot.snapshot(rt.cfg.WarmLimit), nil)
	return &proto.Response{
		OK:      true,
		Text:    fmt.Sprintf("%s (gossiped to %d/%d replicas)", firstOK.Text, oks, len(rt.replicas)),
		Replica: "gossip",
	}
}

// warmStatements re-warms hot statements. With only == nil each goes to
// its ring owner (the replica whose caches clients will hit); with a
// specific replica — one that restarted or missed an epoch — everything
// warms there. Warming is synchronous and admission-controlled at the
// replica, so a storm cannot starve queries.
func (rt *Router) warmStatements(sqls []string, only *replicaState) {
	for _, sql := range sqls {
		req := &proto.Request{Op: "warm", SQL: sql}
		r := only
		if r == nil {
			key := mediator.NormalizeSQL(sql)
			rt.ringMu.Lock()
			idx := rt.ring.Lookup(key)
			rt.ringMu.Unlock()
			if idx < 0 || rt.replicas[idx].isDown() {
				continue
			}
			r = rt.replicas[idx]
		}
		if resp, err := rt.exchange(r, req); err == nil && resp.OK {
			rt.warms.Add(1)
		}
	}
}

// PollNow polls every replica's stats endpoint once, synchronously:
// liveness, self-reported load and shed counters, catalog epoch. A
// replica whose epoch changed (restart, missed gossip) gets its caches
// re-warmed with the hot set. Weights recompute afterwards. The
// background loop calls this on PollInterval; tests call it directly.
func (rt *Router) PollNow() {
	var wg sync.WaitGroup
	for _, r := range rt.replicas {
		wg.Add(1)
		go func(r *replicaState) {
			defer wg.Done()
			resp, err := rt.exchange(r, &proto.Request{Op: "stats"})
			if err != nil || !resp.OK {
				return
			}
			var st serving.Stats
			if json.Unmarshal([]byte(resp.Text), &st) != nil {
				return
			}
			r.mu.Lock()
			epochChanged := r.lastEpoch != 0 && st.Epoch != r.lastEpoch
			r.lastEpoch = st.Epoch
			r.repInFlight = int64(st.Mediator.InFlight)
			r.repShed = st.Mediator.Shed
			r.mu.Unlock()
			if epochChanged {
				rt.warmStatements(rt.hot.snapshot(rt.cfg.WarmLimit), r)
			}
		}(r)
	}
	wg.Wait()
	rt.recomputeWeights()
}

// weightClamp bounds how far measured speed can swing a replica's
// weight from its static capacity, mirroring the estimator's guard
// against feedback overcorrection.
const (
	weightRatioMin = 0.25
	weightRatioMax = 4.0
	// shedPenalty discounts a replica that shed queries since the last
	// poll: its admission controller is telling us it is saturated.
	shedPenalty = 0.7
	// rebuildDrift is the relative weight change that triggers a ring
	// rebuild; smaller drifts keep the ring (and plan affinity) stable.
	rebuildDrift = 0.15
)

// recomputeWeights derives each replica's ring weight from static
// capacity blended with feedback-measured speed (inverse EWMA latency,
// normalized by the replica mean and clamped) and the shed step
// penalty, then rebuilds the ring when any weight drifted enough to
// matter. This is the router-tier cost model: capacity is the prior,
// measurement refines it, clamps keep a noisy measurement from
// evicting a replica outright.
func (rt *Router) recomputeWeights() {
	type obs struct {
		speed float64
		ok    bool
	}
	obsv := make([]obs, len(rt.replicas))
	var speedSum float64
	var speedN int
	for i, r := range rt.replicas {
		r.mu.Lock()
		if r.obs > 0 && r.ewmaMS > 0 && !r.down {
			obsv[i] = obs{speed: 1 / r.ewmaMS, ok: true}
			speedSum += obsv[i].speed
			speedN++
		}
		r.mu.Unlock()
	}
	meanSpeed := 0.0
	if speedN > 0 {
		meanSpeed = speedSum / float64(speedN)
	}
	weights := make([]float64, len(rt.replicas))
	for i, r := range rt.replicas {
		r.mu.Lock()
		if r.down {
			weights[i] = 0
			r.weight = 0
			r.mu.Unlock()
			continue
		}
		w := r.capacity
		if obsv[i].ok && meanSpeed > 0 {
			ratio := obsv[i].speed / meanSpeed
			if ratio < weightRatioMin {
				ratio = weightRatioMin
			}
			if ratio > weightRatioMax {
				ratio = weightRatioMax
			}
			w *= ratio
		}
		if r.repShed > r.prevShed {
			w *= shedPenalty
		}
		r.prevShed = r.repShed
		r.weight = w
		weights[i] = w
		r.mu.Unlock()
	}
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	if !weightsDrifted(rt.ringWeights, weights) {
		return
	}
	rt.ring = BuildRing(rt.names, weights, rt.cfg.VnodesPerUnit)
	rt.ringWeights = weights
}

// weightsDrifted reports whether any weight moved more than rebuildDrift
// relative to the ring's build-time weights, or flipped between zero
// (excluded) and positive.
func weightsDrifted(old, cur []float64) bool {
	for i := range cur {
		o, c := old[i], cur[i]
		if (o == 0) != (c == 0) {
			return true
		}
		if o == 0 {
			continue
		}
		d := (c - o) / o
		if d < 0 {
			d = -d
		}
		if d > rebuildDrift {
			return true
		}
	}
	return false
}

// hotTracker is a small LRU of recently routed statements (normalized
// key → raw SQL): the working set the router re-warms after gossip and
// replica restarts.
type hotTracker struct {
	mu    sync.Mutex
	cap   int
	order list.List // of *hotEntry, front = most recent
	byKey map[string]*list.Element
}

type hotEntry struct {
	key string
	sql string
}

func (h *hotTracker) note(key, sql string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.byKey == nil {
		h.byKey = make(map[string]*list.Element, h.cap)
	}
	if el, ok := h.byKey[key]; ok {
		h.order.MoveToFront(el)
		return
	}
	h.byKey[key] = h.order.PushFront(&hotEntry{key: key, sql: sql})
	for h.order.Len() > h.cap {
		last := h.order.Back()
		delete(h.byKey, last.Value.(*hotEntry).key)
		h.order.Remove(last)
	}
}

// snapshot returns up to limit raw statements, most recent first.
func (h *hotTracker) snapshot(limit int) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, limit)
	for el := h.order.Front(); el != nil && len(out) < limit; el = el.Next() {
		out = append(out, el.Value.(*hotEntry).sql)
	}
	return out
}

func (h *hotTracker) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.order.Len()
}

// ReplicaStats is the observable per-replica slice of Stats: the cost
// model's inputs and outputs, inspectable via discoctl \stats.
type ReplicaStats struct {
	Addr            string  `json:"addr"`
	Capacity        float64 `json:"capacity"`
	Weight          float64 `json:"weight"`
	EwmaMS          float64 `json:"ewma_ms"`
	Vnodes          int     `json:"vnodes"`
	Down            bool    `json:"down"`
	Routed          int64   `json:"routed"`
	Scattered       int64   `json:"scattered"`
	Failures        int64   `json:"failures"`
	InFlight        int64   `json:"inflight"`
	ReplicaInFlight int64   `json:"replica_inflight"`
	ReplicaShed     int64   `json:"replica_shed"`
	Epoch           uint64  `json:"epoch"`
}

// Stats is the router-level snapshot the stats op returns.
type Stats struct {
	Routed      int64          `json:"routed"`
	Scattered   int64          `json:"scattered"`
	Failovers   int64          `json:"failovers"`
	ShedRetries int64          `json:"shed_retries"`
	Gossips     int64          `json:"gossips"`
	Warms       int64          `json:"warms"`
	Partials    int64          `json:"partials"`
	HotTracked  int            `json:"hot_tracked"`
	Replicas    []ReplicaStats `json:"replicas"`
}

// Stats snapshots the router counters and every replica's cost-model
// state.
func (rt *Router) Stats() Stats {
	rt.ringMu.Lock()
	ring := rt.ring
	rt.ringMu.Unlock()
	s := Stats{
		Routed:      rt.routedTotal.Load(),
		Scattered:   rt.scatteredTotal.Load(),
		Failovers:   rt.failovers.Load(),
		ShedRetries: rt.shedRetries.Load(),
		Gossips:     rt.gossips.Load(),
		Warms:       rt.warms.Load(),
		Partials:    rt.partials.Load(),
		HotTracked:  rt.hot.len(),
	}
	for i, r := range rt.replicas {
		r.mu.Lock()
		rs := ReplicaStats{
			Addr:            r.addr,
			Capacity:        r.capacity,
			Weight:          r.weight,
			EwmaMS:          r.ewmaMS,
			Vnodes:          ring.VnodeCount(i),
			Down:            r.down,
			ReplicaInFlight: r.repInFlight,
			ReplicaShed:     r.repShed,
			Epoch:           r.lastEpoch,
		}
		r.mu.Unlock()
		rs.Routed = r.routed.Load()
		rs.Scattered = r.scattered.Load()
		rs.Failures = r.failures.Load()
		rs.InFlight = r.inflight.Load()
		s.Replicas = append(s.Replicas, rs)
	}
	return s
}

// tryScatter parses a query and, when it is an eligible partitioned
// scan over ≥2 live replicas, runs it scatter-gather. A nil return
// means "route normally" (ineligible, unparseable — the replica will
// render the real error — or too few replicas).
func (rt *Router) tryScatter(req *proto.Request) *proto.Response {
	if len(rt.cfg.Partitions) == 0 {
		return nil
	}
	q, err := sqlparser.Parse(req.SQL)
	if err != nil {
		return nil
	}
	part, ok := scatterEligible(q, rt.cfg.Partitions)
	if !ok {
		return nil
	}
	healthy := rt.healthyIndices()
	if len(healthy) < 2 {
		return nil
	}
	return rt.scatter(q, part, healthy)
}

func (rt *Router) healthyIndices() []int {
	var out []int
	for i, r := range rt.replicas {
		if !r.isDown() {
			out = append(out, i)
		}
	}
	return out
}
