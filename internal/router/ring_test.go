package router

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("SELECT x FROM t WHERE id = %d", i)
	}
	return keys
}

// TestRingDistributionTracksWeights: with weights 1:2:3 the key shares
// must track the weights within a generous tolerance (consistent
// hashing is statistical, not exact).
func TestRingDistributionTracksWeights(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	weights := []float64{1, 2, 3}
	r := BuildRing(names, weights, 160)
	counts := make([]int, len(names))
	keys := ringKeys(30000)
	for _, k := range keys {
		idx := r.Lookup(k)
		if idx < 0 || idx >= len(names) {
			t.Fatalf("Lookup returned %d", idx)
		}
		counts[idx]++
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for i, c := range counts {
		want := weights[i] / wsum
		got := float64(c) / float64(len(keys))
		if math.Abs(got-want)/want > 0.30 {
			t.Errorf("replica %d: share %.3f, want %.3f ±30%%", i, got, want)
		}
	}
	if r.VnodeCount(1) != 2*r.VnodeCount(0) || r.VnodeCount(2) != 3*r.VnodeCount(0) {
		t.Errorf("vnode counts %d:%d:%d not proportional to 1:2:3",
			r.VnodeCount(0), r.VnodeCount(1), r.VnodeCount(2))
	}
}

// TestRingJoinMovesKeysOnlyToJoiner: adding a replica may only move
// keys TO the new replica (the consistent-hash property), and moves
// roughly its fair share.
func TestRingJoinMovesKeysOnlyToJoiner(t *testing.T) {
	names3 := []string{"a:1", "b:1", "c:1"}
	names4 := []string{"a:1", "b:1", "c:1", "d:1"}
	before := BuildRing(names3, []float64{1, 1, 1}, 128)
	after := BuildRing(names4, []float64{1, 1, 1, 1}, 128)
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		was, now := before.Lookup(k), after.Lookup(k)
		if was == now {
			continue
		}
		moved++
		if now != 3 {
			t.Fatalf("key %q moved from %d to %d, not to the joiner", k, was, now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("join moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}
}

// TestRingLeaveKeepsSurvivorKeys: excluding a replica (weight 0) must
// not move any key owned by a survivor.
func TestRingLeaveKeepsSurvivorKeys(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	before := BuildRing(names, []float64{1, 1, 1}, 128)
	after := BuildRing(names, []float64{1, 0, 1}, 128)
	keys := ringKeys(20000)
	reassigned := 0
	for _, k := range keys {
		was, now := before.Lookup(k), after.Lookup(k)
		if now == 1 {
			t.Fatalf("key %q assigned to the departed replica", k)
		}
		if was != 1 && now != was {
			t.Fatalf("key %q owned by survivor %d moved to %d on an unrelated leave", k, was, now)
		}
		if was == 1 {
			reassigned++
		}
	}
	if reassigned == 0 {
		t.Fatal("departed replica owned no keys before leaving")
	}
}

// TestRingWeightDecreaseIsPrefixStable: lowering one replica's weight
// may only move keys AWAY from that replica — its vnode list shrinks by
// a suffix and every other point is untouched.
func TestRingWeightDecreaseIsPrefixStable(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	before := BuildRing(names, []float64{1, 1, 1}, 128)
	after := BuildRing(names, []float64{1, 0.5, 1}, 128)
	for _, k := range ringKeys(20000) {
		was, now := before.Lookup(k), after.Lookup(k)
		if was != now && was != 1 {
			t.Fatalf("key %q moved from %d to %d though only replica 1 shrank", k, was, now)
		}
	}
}

// TestRingSeededWeightProperty: random weight vectors (seeded) must
// yield weight-proportional shares within a loose factor, zero-weight
// replicas owning nothing, and every key resolving.
func TestRingSeededWeightProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := ringKeys(12000)
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5)
		names := make([]string, n)
		weights := make([]float64, n)
		var wsum float64
		for i := range names {
			names[i] = fmt.Sprintf("replica-%d:%d", trial, i)
			if rng.Float64() < 0.2 {
				weights[i] = 0 // excluded
			} else {
				weights[i] = 0.5 + 3*rng.Float64()
				wsum += weights[i]
			}
		}
		if wsum == 0 {
			weights[0] = 1
			wsum = 1
		}
		r := BuildRing(names, weights, 128)
		counts := make([]int, n)
		for _, k := range keys {
			idx := r.Lookup(k)
			if idx < 0 {
				t.Fatalf("trial %d: lookup failed on a populated ring", trial)
			}
			counts[idx]++
		}
		for i := range names {
			share := float64(counts[i]) / float64(len(keys))
			want := weights[i] / wsum
			switch {
			case weights[i] == 0 && counts[i] > 0:
				t.Errorf("trial %d: excluded replica %d owns %d keys", trial, i, counts[i])
			case weights[i] > 0 && (share < want/2.5 || share > want*2.5):
				t.Errorf("trial %d: replica %d share %.3f, want ~%.3f (weights %v)",
					trial, i, share, want, weights)
			}
		}
	}
}

// TestRingSuccessorsDistinct: the failover order lists each replica at
// most once, starting with the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	r := BuildRing(names, []float64{1, 1, 1, 1}, 64)
	for _, k := range ringKeys(200) {
		order := r.Successors(k, len(names))
		if len(order) != len(names) {
			t.Fatalf("Successors returned %d replicas, want %d", len(order), len(names))
		}
		if order[0] != r.Lookup(k) {
			t.Fatalf("Successors[0] = %d, Lookup = %d", order[0], r.Lookup(k))
		}
		seen := make(map[int]bool)
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("replica %d repeated in successor order %v", idx, order)
			}
			seen[idx] = true
		}
	}
}
