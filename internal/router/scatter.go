package router

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"disco/internal/algebra"
	"disco/internal/proto"
	"disco/internal/sqlparser"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/vexec"
)

// Partition declares one collection's partitionable integer column and
// its value domain [Lo, Hi). Every replica holds the full collection
// (replicated demo federations), so range-slicing the domain across
// replicas and unioning the shard answers reproduces the single-replica
// answer exactly — the scatter tier trades one replica's scan latency
// for the fan-out of many.
type Partition struct {
	Collection string
	Column     string
	Lo, Hi     int64
}

// DemoPartitions declares the partitionable collections of the demo
// federation (serving.NewDemoFederation at the given AtomicParts
// cardinality).
func DemoPartitions(parts int) []Partition {
	return []Partition{
		{Collection: "AtomicParts", Column: "id", Lo: 0, Hi: int64(parts)},
		{Collection: "Inspections", Column: "part", Lo: 0, Hi: int64(parts)},
		{Collection: "Suppliers", Column: "sid", Lo: 0, Hi: 500},
	}
}

// scatterEligible decides whether q can scatter: a plain scan of one
// partitioned collection. Aggregates, grouping, DISTINCT and ORDER BY
// all need a global view (their shard-merge is not a bag union), joins
// would multiply shards, a wrapper pin overrides placement, and an
// equality conjunct on the partition column means a point lookup —
// exactly the statement plan-affine routing serves best from one
// replica's caches.
func scatterEligible(q *sqlparser.Query, parts []Partition) (Partition, bool) {
	if len(q.From) != 1 || q.From[0].Wrapper != "" {
		return Partition{}, false
	}
	if q.Distinct || len(q.GroupBy) > 0 || len(q.OrderBy) > 0 {
		return Partition{}, false
	}
	for _, it := range q.Items {
		if it.Agg != nil {
			return Partition{}, false
		}
	}
	var part Partition
	found := false
	for _, p := range parts {
		if strings.EqualFold(p.Collection, q.From[0].Collection) && p.Hi > p.Lo {
			part = p
			found = true
			break
		}
	}
	if !found {
		return Partition{}, false
	}
	for _, c := range q.Where.SelectionComparisons() {
		if c.Op == stats.CmpEQ && strings.EqualFold(c.Left.Attr, part.Column) &&
			(c.Left.Collection == "" || strings.EqualFold(c.Left.Collection, part.Collection)) {
			return Partition{}, false
		}
	}
	return part, true
}

// shardSQL renders shard k of n: q with the partition column bounded to
// the k-th slice of the domain. The first shard's lower bound and the
// last's upper bound stay open, so the shards cover the whole domain —
// rows outside the declared [Lo, Hi) land in the edge shards and the
// union stays exact even if the declaration underestimates the data.
func shardSQL(q *sqlparser.Query, p Partition, k, n int) string {
	shard := *q
	shard.Where = q.Where.Clone()
	col := algebra.Ref{Collection: q.From[0].Collection, Attr: p.Column}
	span := p.Hi - p.Lo
	if shard.Where == nil {
		shard.Where = &algebra.Predicate{}
	}
	if k > 0 {
		lo := p.Lo + span*int64(k)/int64(n)
		shard.Where.Conjuncts = append(shard.Where.Conjuncts,
			algebra.Comparison{Left: col, Op: stats.CmpGE, RightConst: types.Int(lo)})
	}
	if k < n-1 {
		hi := p.Lo + span*int64(k+1)/int64(n)
		shard.Where.Conjuncts = append(shard.Where.Conjuncts,
			algebra.Comparison{Left: col, Op: stats.CmpLT, RightConst: types.Int(hi)})
	}
	return shard.String()
}

// shardResult is one shard's outcome.
type shardResult struct {
	resp  *proto.Response // nil if the shard failed everywhere
	addr  string          // replica addr that served the shard
	tried []string        // replica addrs that failed the shard
}

// scatter executes q as len(healthy) range shards, one per live replica,
// and merges the answers through the vexec batch pipeline (bag union in
// shard order). A shard whose home replica fails rotates through the
// other live replicas; only a shard that fails everywhere degrades the
// answer to Partial, with the replicas it tried listed in Excluded —
// the same partial-answer contract the mediator uses for dead wrappers.
func (rt *Router) scatter(q *sqlparser.Query, part Partition, healthy []int) *proto.Response {
	n := len(healthy)
	rt.scatteredTotal.Add(1)
	results := make([]shardResult, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sreq := &proto.Request{Op: "query", SQL: shardSQL(q, part, k, n)}
			for off := 0; off < n; off++ {
				r := rt.replicas[healthy[(k+off)%n]]
				if r.isDown() {
					continue
				}
				r.scattered.Add(1)
				resp, err := rt.exchange(r, sreq)
				if err != nil || resp.Overloaded {
					results[k].tried = append(results[k].tried, r.addr)
					if err != nil {
						rt.failovers.Add(1)
					} else {
						rt.shedRetries.Add(1)
					}
					continue
				}
				// A semantic failure (parse/bind error) is identical on
				// every replica: report it, don't fail over.
				results[k].resp = resp
				results[k].addr = r.addr
				return
			}
		}(k)
	}
	wg.Wait()

	merged := &proto.Response{OK: true, Replica: "", Shards: n}
	var sources []vexec.Op
	var excluded []string
	succeeded := 0
	for _, res := range results {
		if res.resp == nil {
			excluded = append(excluded, res.tried...)
			continue
		}
		if !res.resp.OK {
			return res.resp // semantic error, same answer everywhere
		}
		succeeded++
		merged.ShardDetail = append(merged.ShardDetail, proto.ShardServed{
			Replica:   res.addr,
			ElapsedMS: res.resp.ElapsedMS,
			Rows:      len(res.resp.Rows),
		})
		if merged.Columns == nil {
			merged.Columns = res.resp.Columns
		}
		if res.resp.ElapsedMS > merged.ElapsedMS {
			// Shards run in parallel: the merged latency is the slowest
			// shard, matching how the optimizer prices concurrent submits.
			merged.ElapsedMS = res.resp.ElapsedMS
		}
		if res.resp.Partial {
			merged.Partial = true
			merged.Excluded = append(merged.Excluded, res.resp.Excluded...)
		}
		rows := make([]types.Row, len(res.resp.Rows))
		for i, wire := range res.resp.Rows {
			row := make(types.Row, len(wire))
			for j, v := range wire {
				row[j] = proto.DecodeConstant(v)
			}
			rows[i] = row
		}
		sources = append(sources, vexec.NewSliceSource(rows, 0))
	}
	if succeeded == 0 {
		return &proto.Response{Error: "router: every shard failed on every live replica"}
	}
	out, err := vexec.Drain(vexec.NewUnionAll(sources...), vexec.DefaultBatchSize)
	if err != nil {
		return &proto.Response{Error: "router: shard merge: " + err.Error()}
	}
	for _, row := range out {
		merged.Rows = append(merged.Rows, proto.EncodeRow(row))
	}
	if len(excluded) > 0 {
		merged.Partial = true
		merged.Excluded = append(merged.Excluded, excluded...)
	}
	merged.Excluded = canonExcluded(merged.Excluded)
	if merged.Partial {
		rt.partials.Add(1)
	}
	merged.Replica = "scatter:" + strconv.Itoa(succeeded)
	return merged
}

// canonExcluded canonicalizes a merged exclusion list. It merges two
// sources — the Excluded lists of partial shard answers and the tried
// lists of shards that failed everywhere — so the same name can show up
// several times, in whatever order the shard goroutines completed.
// Collapsing duplicates and sorting makes the degraded-answer contract
// deterministic: equal failures yield equal responses.
func canonExcluded(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := dedupe(in)
	sort.Strings(out)
	return out
}

func dedupe(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	var out []string
	for _, s := range in {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}
