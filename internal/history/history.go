// Package history implements the paper's §4.3.1 extension: HERMES-style
// [ACPS96] historical costs. After a wrapper subquery executes, its
// observed cost vector (TimeFirst, TotalTime, cardinality, size) is
// recorded as a query-scope rule at the very top of the specialization
// hierarchy, so the next estimation of the identical subquery returns the
// real cost. A parameter-adjustment variant nudges an existing wrapper
// coefficient toward observations instead of storing per-query rules,
// solving HERMES's proliferation problem the way §4.3.1 proposes.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/algebra"
	"disco/internal/core"
	"disco/internal/costvm"
	"disco/internal/types"
)

// Vector is the observed cost of one subquery execution, averaged over
// repetitions (the paper assumes identical subqueries cost the same
// regardless of time).
type Vector struct {
	TimeFirstMS float64
	TotalTimeMS float64
	CountObject float64
	TotalSize   float64
	Samples     int
}

// Recorder stores cost vectors and maintains the corresponding
// query-scope rules in the registry.
type Recorder struct {
	mu      sync.Mutex
	reg     *core.Registry
	entries map[string]*entry
}

type entry struct {
	vec  Vector
	rule *core.Rule
}

// NewRecorder attaches a recorder to the registry rules are injected
// into.
func NewRecorder(reg *core.Registry) *Recorder {
	return &Recorder{reg: reg, entries: make(map[string]*entry)}
}

// Len reports the number of recorded subquery shapes.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// signature canonically identifies a subquery at a wrapper.
func signature(wrapper string, plan *algebra.Node) string {
	return wrapper + "\x00" + plan.String()
}

// Record stores the observed execution of a wrapper subquery and injects
// (or updates) its query-scope rule. plan is the subplan below the
// submit; elapsed covers the whole boundary — wrapper work, result
// delivery and shipping — so the injected rule is keyed to the submit
// node itself and replaces the submit estimate wholesale (no double
// counting of delivery).
func (r *Recorder) Record(wrapper string, plan *algebra.Node, elapsedMS float64, rows int64, bytes int64) error {
	if wrapper == "" || plan == nil {
		return fmt.Errorf("history: record needs a wrapper and plan")
	}
	plan = algebra.Submit(plan.Clone(), wrapper)
	r.mu.Lock()
	defer r.mu.Unlock()
	sig := signature(wrapper, plan)
	e, ok := r.entries[sig]
	if !ok {
		e = &entry{}
		r.entries[sig] = e
	}
	// Running mean over repetitions.
	n := float64(e.vec.Samples)
	e.vec.TotalTimeMS = (e.vec.TotalTimeMS*n + elapsedMS) / (n + 1)
	e.vec.TimeFirstMS = e.vec.TotalTimeMS // materialized results: first == last
	e.vec.CountObject = (e.vec.CountObject*n + float64(rows)) / (n + 1)
	e.vec.TotalSize = (e.vec.TotalSize*n + float64(bytes)) / (n + 1)
	e.vec.Samples++

	formulas, err := constFormulas(e.vec)
	if err != nil {
		return err
	}
	// Published rules are immutable — concurrent estimations may be
	// matching against them — so repeat observations build a fresh rule
	// and swap the registry pointer instead of rewriting formulas in
	// place.
	fresh := &core.Rule{
		Op:       plan.Kind,
		Exact:    plan.Clone(),
		Formulas: formulas,
		Source:   fmt.Sprintf("history %s (%d samples)", wrapper, e.vec.Samples),
	}
	if e.rule != nil && r.reg.ReplaceQueryRule(wrapper, e.rule, fresh) {
		e.rule = fresh
		return nil
	}
	e.rule = fresh
	r.reg.AddQueryRule(wrapper, fresh)
	return nil
}

// Lookup returns the recorded vector for a subquery shape; plan is the
// subplan below the submit, as passed to Record.
func (r *Recorder) Lookup(wrapper string, plan *algebra.Node) (Vector, bool) {
	wrapped := algebra.Submit(plan.Clone(), wrapper)
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[signature(wrapper, wrapped)]
	if !ok {
		return Vector{}, false
	}
	return e.vec, true
}

// Summary renders the recorded vectors, most expensive first.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	type row struct {
		sig string
		vec Vector
	}
	rows := make([]row, 0, len(r.entries))
	for sig, e := range r.entries {
		rows = append(rows, row{sig, e.vec})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].vec.TotalTimeMS > rows[j].vec.TotalTimeMS })
	var b strings.Builder
	for _, rw := range rows {
		parts := strings.SplitN(rw.sig, "\x00", 2)
		fmt.Fprintf(&b, "%8.1f ms  %6.0f objects  x%d  @%s  %s\n",
			rw.vec.TotalTimeMS, rw.vec.CountObject, rw.vec.Samples, parts[0],
			strings.ReplaceAll(strings.TrimSpace(parts[1]), "\n", " / "))
	}
	return b.String()
}

func constFormulas(v Vector) ([]core.Formula, error) {
	mk := func(name string, val float64) (core.Formula, error) {
		prog, err := costvm.CompileString(types.Float(val).String())
		if err != nil {
			return core.Formula{}, err
		}
		return core.Formula{Var: name, Prog: prog}, nil
	}
	timeNext := 0.0
	if v.CountObject > 0 {
		timeNext = (v.TotalTimeMS - v.TimeFirstMS) / v.CountObject
	}
	objectSize := 0.0
	if v.CountObject > 0 {
		objectSize = v.TotalSize / v.CountObject
	}
	specs := []struct {
		name string
		val  float64
	}{
		{"CountObject", v.CountObject},
		{"ObjectSize", objectSize},
		{"TotalSize", v.TotalSize},
		{"TimeFirst", v.TimeFirstMS},
		{"TotalTime", v.TotalTimeMS},
		{"TimeNext", timeNext},
	}
	out := make([]core.Formula, 0, len(specs))
	for _, s := range specs {
		f, err := mk(s.name, s.val)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Adjuster implements the parameter-adjustment variant: instead of
// storing one rule per subquery, it fits an existing input parameter of a
// wrapper's rules so the formulas reproduce observed costs (paper §4.3.1:
// "we store only the adjusted parameters instead of new formulas").
type Adjuster struct {
	// Damping blends each observation into the parameter: 1 jumps to the
	// implied value, smaller values converge smoothly.
	Damping float64
}

// NewAdjuster returns an adjuster with 0.5 damping.
func NewAdjuster() *Adjuster { return &Adjuster{Damping: 0.5} }

// Adjust scales the named global of a wrapper's rules by the
// estimate-to-actual ratio, damped. It mutates the shared Globals table
// of that wrapper's rules; subsequent estimations see the adjusted
// parameter. Returns the new value.
func (a *Adjuster) Adjust(reg *core.Registry, wrapper, name string, estimatedMS, actualMS float64) (float64, error) {
	if estimatedMS <= 0 || actualMS <= 0 {
		return 0, fmt.Errorf("history: adjust needs positive estimate and actual")
	}
	rules := reg.WrapperRules(wrapper)
	for _, rule := range rules {
		if rule.Globals == nil {
			continue
		}
		cur, ok := rule.Globals[name]
		if !ok {
			continue
		}
		ratio := actualMS / estimatedMS
		factor := 1 + a.Damping*(ratio-1)
		next := cur.AsFloat() * factor
		rule.Globals[name] = types.Float(next)
		return next, nil
	}
	return 0, fmt.Errorf("history: wrapper %s has no global %q", wrapper, name)
}
