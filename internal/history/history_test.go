package history

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/core"
	"disco/internal/costlang"
	"disco/internal/stats"
	"disco/internal/types"
)

// histView is a minimal CatalogView for these tests.
type histView struct{}

func (histView) HasCollection(w, c string) bool { return c == "Employee" }
func (histView) HasAttribute(w, c, a string) bool {
	return a == "id" || a == "salary"
}
func (histView) Extent(w, c string) (stats.ExtentStats, bool) {
	return stats.ExtentStats{CountObject: 1000, TotalSize: 100000, ObjectSize: 100}, true
}
func (histView) Attribute(w, c, a string) (stats.AttributeStats, bool) {
	return stats.AttributeStats{Indexed: a == "id", CountDistinct: 1000,
		Min: types.Int(0), Max: types.Int(1000)}, true
}

func subplan() *algebra.Node {
	return algebra.Select(algebra.Scan("w1", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "salary"}, stats.CmpEQ, types.Int(42)))
}

func resolveHist(t *testing.T, n *algebra.Node) *algebra.Node {
	t.Helper()
	schemas := algebra.FixedSchemas{"w1/Employee": types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
	)}
	if err := algebra.Resolve(n, schemas); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRecordInjectsQueryRule(t *testing.T) {
	reg := core.MustDefaultRegistry()
	rec := NewRecorder(reg)
	if err := rec.Record("w1", subplan(), 1234, 50, 5000); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	est := core.NewEstimator(reg, histView{}, core.UniformNet{})
	plan := resolveHist(t, algebra.Submit(subplan(), "w1"))
	pc, err := est.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.Root.TotalTime(); got != 1234 {
		t.Errorf("historical estimate = %v, want 1234", got)
	}
	if got := pc.Root.Var("CountObject", -1); got != 50 {
		t.Errorf("historical cardinality = %v, want 50", got)
	}
	// A *different* subquery (other constant) must not match the
	// query-scope rule.
	other := resolveHist(t, algebra.Submit(
		algebra.Select(algebra.Scan("w1", "Employee"),
			algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "salary"}, stats.CmpEQ, types.Int(99))),
		"w1"))
	pc2, err := est.Estimate(other)
	if err != nil {
		t.Fatal(err)
	}
	if pc2.Root.TotalTime() == 1234 {
		t.Error("query-scope rule leaked to a different subquery")
	}
}

func TestRecordAveragesRepetitions(t *testing.T) {
	reg := core.MustDefaultRegistry()
	rec := NewRecorder(reg)
	if err := rec.Record("w1", subplan(), 1000, 50, 5000); err != nil {
		t.Fatal(err)
	}
	if err := rec.Record("w1", subplan(), 2000, 50, 5000); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("repetitions should share one entry, Len = %d", rec.Len())
	}
	v, ok := rec.Lookup("w1", subplan())
	if !ok || v.TotalTimeMS != 1500 || v.Samples != 2 {
		t.Errorf("vector = %+v, %v", v, ok)
	}
	// The injected rule was updated in place.
	est := core.NewEstimator(reg, histView{}, core.UniformNet{})
	plan := resolveHist(t, algebra.Submit(subplan(), "w1"))
	pc, err := est.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.Root.TotalTime(); got != 1500 {
		t.Errorf("updated estimate = %v, want 1500", got)
	}
}

func TestRecordErrors(t *testing.T) {
	rec := NewRecorder(core.MustDefaultRegistry())
	if err := rec.Record("", subplan(), 1, 1, 1); err == nil {
		t.Error("empty wrapper should fail")
	}
	if err := rec.Record("w1", nil, 1, 1, 1); err == nil {
		t.Error("nil plan should fail")
	}
	if _, ok := rec.Lookup("w1", subplan()); ok {
		t.Error("lookup of unrecorded plan should miss")
	}
}

func TestSummary(t *testing.T) {
	rec := NewRecorder(core.MustDefaultRegistry())
	rec.Record("w1", subplan(), 500, 10, 100)
	s := rec.Summary()
	if !strings.Contains(s, "@w1") || !strings.Contains(s, "500.0 ms") {
		t.Errorf("summary = %q", s)
	}
}

func TestAdjusterMovesParameter(t *testing.T) {
	reg := core.MustDefaultRegistry()
	view := histView{}
	file, err := costlang.Parse(`
let IO = 10;
scan(C) { TotalTime = C.CountPage * IO; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.IntegrateWrapper("w1", file, view); err != nil {
		t.Fatal(err)
	}
	adj := NewAdjuster()
	// Estimated 250 ms but observed 500 ms: IO should rise.
	next, err := adj.Adjust(reg, "w1", "IO", 250, 500)
	if err != nil {
		t.Fatal(err)
	}
	if next <= 10 {
		t.Errorf("IO after adjustment = %v, want > 10", next)
	}
	// Damping 0.5 and ratio 2 -> factor 1.5 -> 15.
	if next != 15 {
		t.Errorf("IO = %v, want 15", next)
	}
	// Repeated convergent adjustments approach the true value.
	for i := 0; i < 20; i++ {
		est := next * 25 // pretend the model is linear in IO: est = pages*IO
		next, err = adj.Adjust(reg, "w1", "IO", est, 500)
		if err != nil {
			t.Fatal(err)
		}
	}
	if next < 19 || next > 21 {
		t.Errorf("converged IO = %v, want ~20", next)
	}
	// Errors.
	if _, err := adj.Adjust(reg, "w1", "Nope", 1, 1); err == nil {
		t.Error("unknown parameter should fail")
	}
	if _, err := adj.Adjust(reg, "w1", "IO", 0, 1); err == nil {
		t.Error("zero estimate should fail")
	}
}
