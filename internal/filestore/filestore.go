// Package filestore implements the simplest data-source class of the
// reproduction: flat record files (CSV-like), scanned sequentially
// record by record. A file source exports NO statistics and NO cost rules
// — querying it exercises the mediator's pure default-scope path ("in
// case they are not provided, standard values are given, as usual",
// paper §6).
package filestore

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"disco/internal/netsim"
	"disco/internal/types"
)

// Config holds the timing profile of the file source.
type Config struct {
	ReadRecordMS float64 // per record parsed
	OpenMS       float64 // per file open
	OutputTimeMS float64 // per record delivered
}

// DefaultConfig models a slow, parse-heavy source.
func DefaultConfig() Config {
	return Config{ReadRecordMS: 0.4, OpenMS: 50, OutputTimeMS: 2}
}

// Store holds named record files.
type Store struct {
	cfg   Config
	clock *netsim.Clock
	files map[string]*File
}

// Open creates a store on the clock (nil allocates one).
func Open(cfg Config, clock *netsim.Clock) *Store {
	if clock == nil {
		clock = netsim.NewClock()
	}
	return &Store{cfg: cfg, clock: clock, files: make(map[string]*File)}
}

// Clock returns the store's virtual clock.
func (s *Store) Clock() *netsim.Clock { return s.clock }

// Files lists file names, sorted.
func (s *Store) Files() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// File returns a file by name.
func (s *Store) File(name string) (*File, bool) {
	f, ok := s.files[name]
	return f, ok
}

// File is one record file with a declared schema.
type File struct {
	store  *Store
	name   string
	schema *types.Schema
	rows   []types.Row
}

// CreateFile registers an empty record file.
func (s *Store) CreateFile(name string, schema *types.Schema) (*File, error) {
	if _, dup := s.files[name]; dup {
		return nil, fmt.Errorf("filestore: file %q already exists", name)
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("filestore: file %q needs a schema", name)
	}
	f := &File{store: s, name: name, schema: schema}
	s.files[name] = f
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Schema returns the record schema.
func (f *File) Schema() *types.Schema { return f.schema }

// Count reports the number of records.
func (f *File) Count() int { return len(f.rows) }

// Append adds one record (loading is not timed).
func (f *File) Append(row types.Row) error {
	if len(row) != f.schema.Len() {
		return fmt.Errorf("filestore: %s: record arity %d, schema %d", f.name, len(row), f.schema.Len())
	}
	f.rows = append(f.rows, row)
	return nil
}

// LoadCSV parses comma-separated lines against the schema, coercing each
// field to its declared kind. Lines beginning with '#' and blank lines
// are skipped.
func (f *File) LoadCSV(data string) error {
	sc := bufio.NewScanner(strings.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != f.schema.Len() {
			return fmt.Errorf("filestore: %s line %d: %d fields, schema has %d",
				f.name, lineNo, len(fields), f.schema.Len())
		}
		row := make(types.Row, len(fields))
		for i, raw := range fields {
			raw = strings.TrimSpace(raw)
			v, err := coerce(raw, f.schema.Field(i).Type)
			if err != nil {
				return fmt.Errorf("filestore: %s line %d field %d: %w", f.name, lineNo, i+1, err)
			}
			row[i] = v
		}
		f.rows = append(f.rows, row)
	}
	return sc.Err()
}

func coerce(raw string, kind types.Kind) (types.Constant, error) {
	switch kind {
	case types.KindInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("bad int %q", raw)
		}
		return types.Int(n), nil
	case types.KindFloat:
		x, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return types.Null, fmt.Errorf("bad float %q", raw)
		}
		return types.Float(x), nil
	case types.KindBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return types.Null, fmt.Errorf("bad bool %q", raw)
		}
		return types.Bool(b), nil
	default:
		return types.Str(raw), nil
	}
}

// Iter reads records sequentially, charging per-record parse time.
type Iter struct {
	file   *File
	i      int
	opened bool
}

// Scan starts reading the file from the beginning.
func (f *File) Scan() *Iter { return &Iter{file: f} }

// Next returns the next record.
func (it *Iter) Next() (types.Row, bool) {
	f := it.file
	if !it.opened {
		f.store.clock.Advance(f.store.cfg.OpenMS)
		it.opened = true
	}
	if it.i >= len(f.rows) {
		return nil, false
	}
	row := f.rows[it.i]
	it.i++
	f.store.clock.Advance(f.store.cfg.ReadRecordMS)
	return row, true
}

// DeliverOutput charges per-record delivery for n result records.
func (s *Store) DeliverOutput(n int) {
	s.clock.Advance(float64(n) * s.cfg.OutputTimeMS)
}
