package filestore

import (
	"math"
	"testing"

	"disco/internal/netsim"
	"disco/internal/types"
)

func docSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Collection: "Doc", Type: types.KindInt},
		types.Field{Name: "title", Collection: "Doc", Type: types.KindString},
		types.Field{Name: "score", Collection: "Doc", Type: types.KindFloat},
		types.Field{Name: "public", Collection: "Doc", Type: types.KindBool},
	)
}

func TestLoadCSVAndScan(t *testing.T) {
	clock := netsim.NewClock()
	cfg := DefaultConfig()
	s := Open(cfg, clock)
	f, err := s.CreateFile("Doc", docSchema())
	if err != nil {
		t.Fatal(err)
	}
	err = f.LoadCSV(`# a comment
1, intro to mediators , 4.5, true

2,cost models,3.25,false
3,wrappers,5,true`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Count() != 3 {
		t.Fatalf("Count = %d", f.Count())
	}
	start := clock.Now()
	it := f.Scan()
	var rows []types.Row
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("scanned %d", len(rows))
	}
	if rows[0][1].AsString() != "intro to mediators" {
		t.Errorf("trimmed string = %q", rows[0][1].AsString())
	}
	if rows[1][2].AsFloat() != 3.25 || !rows[2][3].AsBool() {
		t.Error("field coercion wrong")
	}
	want := cfg.OpenMS + 3*cfg.ReadRecordMS
	if got := clock.Now() - start; math.Abs(got-want) > 1e-9 {
		t.Errorf("scan cost = %v, want %v", got, want)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	s := Open(DefaultConfig(), nil)
	f, _ := s.CreateFile("Doc", docSchema())
	cases := []string{
		"1,only,two",        // arity
		"x,title,1.5,true",  // bad int
		"1,title,abc,true",  // bad float
		"1,title,1.5,maybe", // bad bool
	}
	for _, src := range cases {
		if err := f.LoadCSV(src); err == nil {
			t.Errorf("LoadCSV(%q) should fail", src)
		}
	}
}

func TestCreateAppendErrors(t *testing.T) {
	s := Open(DefaultConfig(), nil)
	if _, err := s.CreateFile("x", nil); err == nil {
		t.Error("nil schema should fail")
	}
	f, err := s.CreateFile("Doc", docSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateFile("Doc", docSchema()); err == nil {
		t.Error("duplicate file should fail")
	}
	if err := f.Append(types.Row{types.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := f.Append(types.Row{types.Int(1), types.Str("t"), types.Float(1), types.Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Files(); len(got) != 1 || got[0] != "Doc" {
		t.Errorf("Files = %v", got)
	}
	if _, ok := s.File("Doc"); !ok {
		t.Error("File lookup failed")
	}
}

func TestDeliverOutput(t *testing.T) {
	clock := netsim.NewClock()
	s := Open(DefaultConfig(), clock)
	s.DeliverOutput(5)
	if clock.Now() != 10 {
		t.Errorf("output = %v, want 10", clock.Now())
	}
}
