package costvm

import (
	"fmt"
	"math"
	"strings"

	"disco/internal/costlang"
	"disco/internal/stats"
	"disco/internal/types"
)

// Builtin is a Go-implemented cost-language function.
type Builtin func(args []types.Constant) (types.Constant, error)

// FuncRegistry maps function names (case-insensitive) to implementations.
// Wrapper `def` functions are compiled and registered next to the
// builtins; the standard library below is available to every rule, the
// analogue of the paper's "entire library of code in the mediator ...
// available to the wrapper implementor" (§2.4).
type FuncRegistry struct {
	funcs map[string]Builtin
}

// NewFuncRegistry returns a registry preloaded with the standard builtins.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{funcs: make(map[string]Builtin, 32)}
	r.registerStdlib()
	return r
}

// Register adds or replaces a function.
func (r *FuncRegistry) Register(name string, fn Builtin) {
	r.funcs[strings.ToLower(name)] = fn
}

// Has reports whether name is registered.
func (r *FuncRegistry) Has(name string) bool {
	_, ok := r.funcs[strings.ToLower(name)]
	return ok
}

// Call invokes a registered function.
func (r *FuncRegistry) Call(name string, args []types.Constant) (types.Constant, error) {
	fn, ok := r.funcs[strings.ToLower(name)]
	if !ok {
		return types.Null, fmt.Errorf("unknown function %q", name)
	}
	return fn(args)
}

// Clone returns an independent copy; per-wrapper registries are clones of
// the mediator's base registry so wrapper defs cannot leak across sources.
func (r *FuncRegistry) Clone() *FuncRegistry {
	out := &FuncRegistry{funcs: make(map[string]Builtin, len(r.funcs))}
	for k, v := range r.funcs {
		out.funcs[k] = v
	}
	return out
}

// RegisterDef compiles a wrapper-defined `def` function and registers it.
// The body may reference the function parameters by name and anything the
// enclosing environment resolves.
func (r *FuncRegistry) RegisterDef(def *costlang.FuncDef) error {
	prog, err := Compile(def.Body)
	if err != nil {
		return fmt.Errorf("costvm: compiling def %s: %w", def.Name, err)
	}
	params := append([]string(nil), def.Params...)
	name := def.Name
	r.Register(name, func(args []types.Constant) (types.Constant, error) {
		if len(args) != len(params) {
			return types.Null, fmt.Errorf("%s expects %d args, got %d", name, len(params), len(args))
		}
		// Parameters shadow the outer environment; the outer env is not
		// visible from inside a def (defs are pure functions of their
		// arguments plus other functions).
		env := &defEnv{params: params, args: args, reg: r}
		return prog.Eval(env)
	})
	return nil
}

type defEnv struct {
	params []string
	args   []types.Constant
	reg    *FuncRegistry
}

func (e *defEnv) Lookup(path []string) (types.Constant, bool) {
	if len(path) == 1 {
		for i, p := range e.params {
			if strings.EqualFold(p, path[0]) {
				return e.args[i], true
			}
		}
	}
	return types.Null, false
}

func (e *defEnv) Call(name string, args []types.Constant) (types.Constant, error) {
	return e.reg.Call(name, args)
}

func (r *FuncRegistry) registerStdlib() {
	unary := func(name string, fn func(float64) float64) {
		r.Register(name, func(args []types.Constant) (types.Constant, error) {
			if len(args) != 1 {
				return types.Null, fmt.Errorf("%s expects 1 arg", name)
			}
			if !args[0].IsNumeric() {
				return types.Null, fmt.Errorf("%s expects a numeric arg, got %s", name, args[0])
			}
			v := fn(args[0].AsFloat())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return types.Null, fmt.Errorf("%s(%s) is not finite", name, args[0])
			}
			return types.Float(v), nil
		})
	}
	unary("exp", math.Exp)
	unary("ln", math.Log)
	unary("log", math.Log)
	unary("log2", math.Log2)
	unary("log10", math.Log10)
	unary("sqrt", math.Sqrt)
	unary("ceil", math.Ceil)
	unary("floor", math.Floor)
	unary("abs", math.Abs)

	variadicFold := func(name string, pick func(a, b float64) float64) {
		r.Register(name, func(args []types.Constant) (types.Constant, error) {
			if len(args) == 0 {
				return types.Null, fmt.Errorf("%s expects at least 1 arg", name)
			}
			acc := args[0].AsFloat()
			for _, a := range args[1:] {
				if !a.IsNumeric() {
					return types.Null, fmt.Errorf("%s expects numeric args", name)
				}
				acc = pick(acc, a.AsFloat())
			}
			return types.Float(acc), nil
		})
	}
	variadicFold("min", math.Min)
	variadicFold("max", math.Max)

	r.Register("pow", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 2 {
			return types.Null, fmt.Errorf("pow expects 2 args")
		}
		return types.Float(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	})

	// require(cond, value): value when cond is truthy, an error otherwise.
	// A failing formula falls back to the next less-specific rule in the
	// scope hierarchy, so require() is how a rule opts out of situations
	// it does not cover (e.g. an index-scan formula when no index
	// exists).
	r.Register("require", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 2 {
			return types.Null, fmt.Errorf("require expects 2 args (condition, value)")
		}
		if !args[0].AsBool() {
			return types.Null, fmt.Errorf("require condition not satisfied")
		}
		return args[1], nil
	})

	// if(cond, then, else): cond is truthy when nonzero/non-empty.
	r.Register("if", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 3 {
			return types.Null, fmt.Errorf("if expects 3 args")
		}
		if args[0].AsBool() {
			return args[1], nil
		}
		return args[2], nil
	})

	cmp := func(name string, want func(int) bool) {
		r.Register(name, func(args []types.Constant) (types.Constant, error) {
			if len(args) != 2 {
				return types.Null, fmt.Errorf("%s expects 2 args", name)
			}
			if want(args[0].Compare(args[1])) {
				return types.Int(1), nil
			}
			return types.Int(0), nil
		})
	}
	cmp("lt", func(c int) bool { return c < 0 })
	cmp("le", func(c int) bool { return c <= 0 })
	cmp("gt", func(c int) bool { return c > 0 })
	cmp("ge", func(c int) bool { return c >= 0 })
	r.Register("eq", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 2 {
			return types.Null, fmt.Errorf("eq expects 2 args")
		}
		if args[0].Equal(args[1]) {
			return types.Int(1), nil
		}
		return types.Int(0), nil
	})

	// yao(countObject, countPage, k): exact Yao page-touch fraction.
	r.Register("yao", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 3 {
			return types.Null, fmt.Errorf("yao expects 3 args (countObject, countPage, k)")
		}
		return types.Float(stats.Yao(args[0].AsInt(), args[1].AsInt(), args[2].AsInt())), nil
	})
	// yaoapprox(countObject, countPage, sel): the paper's exponential form.
	r.Register("yaoapprox", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 3 {
			return types.Null, fmt.Errorf("yaoapprox expects 3 args (countObject, countPage, sel)")
		}
		return types.Float(stats.YaoApprox(args[0].AsInt(), args[1].AsInt(), args[2].AsFloat())), nil
	})
	// frac(v, lo, hi): position of v within [lo, hi], any comparable kind.
	r.Register("frac", func(args []types.Constant) (types.Constant, error) {
		if len(args) != 3 {
			return types.Null, fmt.Errorf("frac expects 3 args (v, lo, hi)")
		}
		return types.Float(types.Fraction(args[0], args[1], args[2])), nil
	})
}
