// Package costvm compiles cost-language expressions (internal/costlang
// ASTs) into a compact bytecode and evaluates them on a small stack
// machine. The paper (§2.4, §7) ships wrapper cost formulas to the
// mediator "semi-compiled in bytecode" so that evaluation during the
// computationally intensive optimization phase is fast; this package is
// that mechanism. A tree-walking interpreter is also provided as the
// baseline for the E4 ablation experiment.
package costvm

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"disco/internal/costlang"
	"disco/internal/types"
)

// ErrUnknownParam reports that a formula referenced a parameter the
// environment cannot resolve — the routine estimation failure that makes
// the estimator fall back to a less specific rule.
var ErrUnknownParam = errors.New("costvm: unknown parameter")

// Env resolves parameter references and function calls during evaluation.
// The cost model supplies an Env wired to the plan node being estimated
// (paper Figure 7 name scheme: C.CountObject, C.A.Min, bare result names).
type Env interface {
	// Lookup resolves a dotted path to a value; ok is false when the path
	// is unknown, which aborts the formula (the caller then falls back to
	// a less specific rule).
	Lookup(path []string) (types.Constant, bool)
	// Call invokes a named function with evaluated arguments.
	Call(name string, args []types.Constant) (types.Constant, error)
}

// Op is a bytecode opcode.
type Op uint8

// The instruction set.
const (
	opConst Op = iota // push Consts[A]
	opLoad            // push Lookup(Paths[A])
	opAdd
	opSub
	opMul
	opDiv
	opNeg
	opCall // call Names[A] with B args popped from the stack
)

// Instr is one instruction; A and B are operands (constant/path/name
// indexes and argument counts).
type Instr struct {
	Op   Op
	A, B uint16
}

// Program is a compiled expression: a linear instruction sequence plus its
// constant, path, and name pools. Programs are immutable after compilation
// and safe for concurrent evaluation (each Eval uses its own stack).
type Program struct {
	Code   []Instr
	Consts []types.Constant
	Paths  [][]string
	Names  []string
	// MaxStack is the stack depth the program needs.
	MaxStack int
	// Source is the original expression text, kept for diagnostics.
	Source string
}

// Compile translates an expression AST into a Program, folding constant
// arithmetic subtrees at compile time (pure-literal `let PageSize = 4096 * 2`
// style expressions become single constants).
func Compile(e costlang.Expr) (*Program, error) {
	p := &Program{Source: e.String()}
	depth, err := p.emit(fold(e), 0)
	if err != nil {
		return nil, err
	}
	_ = depth
	return p, nil
}

// fold evaluates literal-only arithmetic at compile time. Calls are never
// folded (builtins may be replaced per wrapper), and folding is skipped
// when evaluation would error (division by zero surfaces at run time with
// its source context).
func fold(e costlang.Expr) costlang.Expr {
	switch v := e.(type) {
	case *costlang.Neg:
		x := fold(v.X)
		if n, ok := x.(costlang.NumLit); ok {
			return costlang.NumLit(-float64(n))
		}
		return &costlang.Neg{X: x}
	case *costlang.Binary:
		l, r := fold(v.L), fold(v.R)
		ln, lok := l.(costlang.NumLit)
		rn, rok := r.(costlang.NumLit)
		if lok && rok {
			switch v.Op {
			case costlang.OpAdd:
				return costlang.NumLit(float64(ln) + float64(rn))
			case costlang.OpSub:
				return costlang.NumLit(float64(ln) - float64(rn))
			case costlang.OpMul:
				return costlang.NumLit(float64(ln) * float64(rn))
			case costlang.OpDiv:
				if float64(rn) != 0 {
					return costlang.NumLit(float64(ln) / float64(rn))
				}
			}
		}
		return &costlang.Binary{Op: v.Op, L: l, R: r}
	case *costlang.Call:
		args := make([]costlang.Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = fold(a)
		}
		return &costlang.Call{Name: v.Name, Args: args}
	default:
		return e
	}
}

// MustCompile is Compile that panics on error; for statically known
// expressions such as the generic cost model's own rules.
func MustCompile(e costlang.Expr) *Program {
	p, err := Compile(e)
	if err != nil {
		panic("costvm: " + err.Error())
	}
	return p
}

// CompileString parses and compiles an expression in one step.
func CompileString(src string) (*Program, error) {
	e, err := costlang.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return Compile(e)
}

// emit appends code for e; cur is the stack depth before e executes, and
// the depth after (always cur+1) is returned.
func (p *Program) emit(e costlang.Expr, cur int) (int, error) {
	switch v := e.(type) {
	case costlang.NumLit:
		p.push(Instr{Op: opConst, A: p.constIdx(numConst(float64(v)))}, cur+1)
		return cur + 1, nil
	case costlang.StrLit:
		p.push(Instr{Op: opConst, A: p.constIdx(types.Str(string(v)))}, cur+1)
		return cur + 1, nil
	case costlang.PathRef:
		p.push(Instr{Op: opLoad, A: p.pathIdx([]string(v))}, cur+1)
		return cur + 1, nil
	case *costlang.Neg:
		d, err := p.emit(v.X, cur)
		if err != nil {
			return 0, err
		}
		p.push(Instr{Op: opNeg}, d)
		return d, nil
	case *costlang.Binary:
		d, err := p.emit(v.L, cur)
		if err != nil {
			return 0, err
		}
		d2, err := p.emit(v.R, d)
		if err != nil {
			return 0, err
		}
		var op Op
		switch v.Op {
		case costlang.OpAdd:
			op = opAdd
		case costlang.OpSub:
			op = opSub
		case costlang.OpMul:
			op = opMul
		case costlang.OpDiv:
			op = opDiv
		default:
			return 0, fmt.Errorf("costvm: unknown binary operator %q", v.Op)
		}
		p.push(Instr{Op: op}, d2)
		return d2 - 1, nil
	case *costlang.Call:
		if len(v.Args) > math.MaxUint16 {
			return 0, fmt.Errorf("costvm: too many call arguments")
		}
		d := cur
		for _, a := range v.Args {
			var err error
			d, err = p.emit(a, d)
			if err != nil {
				return 0, err
			}
		}
		p.push(Instr{Op: opCall, A: p.nameIdx(v.Name), B: uint16(len(v.Args))}, d+1)
		return cur + 1, nil
	default:
		return 0, fmt.Errorf("costvm: cannot compile %T", e)
	}
}

func (p *Program) push(in Instr, depth int) {
	p.Code = append(p.Code, in)
	if depth > p.MaxStack {
		p.MaxStack = depth
	}
}

func (p *Program) constIdx(c types.Constant) uint16 {
	for i, e := range p.Consts {
		if e.Equal(c) && e.Kind() == c.Kind() {
			return uint16(i)
		}
	}
	p.Consts = append(p.Consts, c)
	return uint16(len(p.Consts) - 1)
}

func (p *Program) pathIdx(path []string) uint16 {
	for i, e := range p.Paths {
		if pathEqual(e, path) {
			return uint16(i)
		}
	}
	p.Paths = append(p.Paths, path)
	return uint16(len(p.Paths) - 1)
}

func (p *Program) nameIdx(name string) uint16 {
	for i, e := range p.Names {
		if e == name {
			return uint16(i)
		}
	}
	p.Names = append(p.Names, name)
	return uint16(len(p.Names) - 1)
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Eval runs the program against env and returns the resulting value.
func (p *Program) Eval(env Env) (types.Constant, error) {
	stack := make([]types.Constant, 0, p.MaxStack)
	return p.evalWith(env, stack)
}

// EvalStack is Eval with a caller-provided stack to avoid per-call
// allocation in the optimizer's hot loop; the slice is used from index 0
// and must have capacity >= MaxStack (it is grown otherwise).
func (p *Program) EvalStack(env Env, stack []types.Constant) (types.Constant, error) {
	return p.evalWith(env, stack[:0])
}

func (p *Program) evalWith(env Env, stack []types.Constant) (val types.Constant, err error) {
	// A Program normally comes out of Compile and is well-formed, but
	// wrapper-supplied rules travel through registration and could arrive
	// corrupt (bad pool index, underflowing code, a panicking Env.Call).
	// Evaluation must never panic out into the optimizer — a malformed
	// rule becomes an error, and the caller falls back to a less specific
	// cost model.
	defer func() {
		if r := recover(); r != nil {
			val, err = types.Null, fmt.Errorf("costvm: panic evaluating %q: %v", p.Source, r)
		}
	}()
	for _, in := range p.Code {
		switch in.Op {
		case opConst:
			if int(in.A) >= len(p.Consts) {
				return types.Null, fmt.Errorf("costvm: constant index %d out of range in %q", in.A, p.Source)
			}
			stack = append(stack, p.Consts[in.A])
		case opLoad:
			if int(in.A) >= len(p.Paths) {
				return types.Null, fmt.Errorf("costvm: path index %d out of range in %q", in.A, p.Source)
			}
			v, ok := env.Lookup(p.Paths[in.A])
			if !ok {
				// The usual estimation failure (a missing statistic): the
				// estimator's level-fallback machinery catches it, so a
				// static sentinel avoids formatting an error on every miss.
				return types.Null, ErrUnknownParam
			}
			stack = append(stack, v)
		case opNeg:
			top := len(stack) - 1
			if top < 0 {
				return types.Null, fmt.Errorf("costvm: stack underflow in %q", p.Source)
			}
			v := stack[top]
			if !v.IsNumeric() {
				return types.Null, fmt.Errorf("costvm: negation of non-numeric %s in %q", v, p.Source)
			}
			stack[top] = types.Float(-v.AsFloat())
		case opAdd, opSub, opMul, opDiv:
			top := len(stack) - 1
			if top < 1 {
				return types.Null, fmt.Errorf("costvm: stack underflow in %q", p.Source)
			}
			a, b := stack[top-1], stack[top]
			stack = stack[:top]
			v, err := arith(in.Op, a, b, p.Source)
			if err != nil {
				return types.Null, err
			}
			stack[top-1] = v
		case opCall:
			n := int(in.B)
			if int(in.A) >= len(p.Names) {
				return types.Null, fmt.Errorf("costvm: name index %d out of range in %q", in.A, p.Source)
			}
			if n > len(stack) {
				return types.Null, fmt.Errorf("costvm: stack underflow in %q", p.Source)
			}
			args := stack[len(stack)-n:]
			v, err := env.Call(p.Names[in.A], args)
			if err != nil {
				return types.Null, fmt.Errorf("costvm: %s in %q: %w", p.Names[in.A], p.Source, err)
			}
			stack = stack[:len(stack)-n]
			stack = append(stack, v)
		default:
			return types.Null, fmt.Errorf("costvm: bad opcode %d", in.Op)
		}
	}
	if len(stack) != 1 {
		return types.Null, fmt.Errorf("costvm: program left %d values on stack", len(stack))
	}
	return stack[0], nil
}

func arith(op Op, a, b types.Constant, src string) (types.Constant, error) {
	if op == opAdd && (a.Kind() == types.KindString || b.Kind() == types.KindString) {
		return types.Str(a.AsString() + b.AsString()), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return types.Null, fmt.Errorf("costvm: arithmetic on non-numeric operands %s, %s in %q", a, b, src)
	}
	x, y := a.AsFloat(), b.AsFloat()
	var r float64
	switch op {
	case opAdd:
		r = x + y
	case opSub:
		r = x - y
	case opMul:
		r = x * y
	case opDiv:
		if y == 0 {
			return types.Null, fmt.Errorf("costvm: division by zero in %q", src)
		}
		r = x / y
	}
	return types.Float(r), nil
}

// EvalAST evaluates an expression by walking its tree directly — the
// interpreter baseline that the bytecode VM is benchmarked against (E4).
func EvalAST(e costlang.Expr, env Env) (types.Constant, error) {
	switch v := e.(type) {
	case costlang.NumLit:
		return numConst(float64(v)), nil
	case costlang.StrLit:
		return types.Str(string(v)), nil
	case costlang.PathRef:
		val, ok := env.Lookup([]string(v))
		if !ok {
			return types.Null, fmt.Errorf("costvm: unknown parameter %s", v)
		}
		return val, nil
	case *costlang.Neg:
		x, err := EvalAST(v.X, env)
		if err != nil {
			return types.Null, err
		}
		if !x.IsNumeric() {
			return types.Null, fmt.Errorf("costvm: negation of non-numeric %s", x)
		}
		return types.Float(-x.AsFloat()), nil
	case *costlang.Binary:
		l, err := EvalAST(v.L, env)
		if err != nil {
			return types.Null, err
		}
		r, err := EvalAST(v.R, env)
		if err != nil {
			return types.Null, err
		}
		var op Op
		switch v.Op {
		case costlang.OpAdd:
			op = opAdd
		case costlang.OpSub:
			op = opSub
		case costlang.OpMul:
			op = opMul
		case costlang.OpDiv:
			op = opDiv
		}
		return arith(op, l, r, v.String())
	case *costlang.Call:
		args := make([]types.Constant, len(v.Args))
		for i, a := range v.Args {
			x, err := EvalAST(a, env)
			if err != nil {
				return types.Null, err
			}
			args[i] = x
		}
		return env.Call(v.Name, args)
	default:
		return types.Null, fmt.Errorf("costvm: cannot evaluate %T", e)
	}
}

func numConst(f float64) types.Constant {
	if f == float64(int64(f)) && math.Abs(f) < 1e15 {
		return types.Int(int64(f))
	}
	return types.Float(f)
}

// Disassemble renders the program's instructions for the costc tool and
// debugging.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s\n", p.Source)
	for i, in := range p.Code {
		switch in.Op {
		case opConst:
			fmt.Fprintf(&b, "%3d  const  %s\n", i, p.Consts[in.A])
		case opLoad:
			fmt.Fprintf(&b, "%3d  load   %s\n", i, strings.Join(p.Paths[in.A], "."))
		case opAdd:
			fmt.Fprintf(&b, "%3d  add\n", i)
		case opSub:
			fmt.Fprintf(&b, "%3d  sub\n", i)
		case opMul:
			fmt.Fprintf(&b, "%3d  mul\n", i)
		case opDiv:
			fmt.Fprintf(&b, "%3d  div\n", i)
		case opNeg:
			fmt.Fprintf(&b, "%3d  neg\n", i)
		case opCall:
			fmt.Fprintf(&b, "%3d  call   %s/%d\n", i, p.Names[in.A], in.B)
		}
	}
	return b.String()
}
