package costvm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"disco/internal/costlang"
	"disco/internal/types"
)

// mapEnv is a test Env over a flat map keyed by the joined path.
type mapEnv struct {
	vars map[string]types.Constant
	reg  *FuncRegistry
}

func newMapEnv(vars map[string]types.Constant) *mapEnv {
	return &mapEnv{vars: vars, reg: NewFuncRegistry()}
}

func (e *mapEnv) Lookup(path []string) (types.Constant, bool) {
	v, ok := e.vars[strings.Join(path, ".")]
	return v, ok
}

func (e *mapEnv) Call(name string, args []types.Constant) (types.Constant, error) {
	return e.reg.Call(name, args)
}

func evalStr(t *testing.T, src string, env Env) types.Constant {
	t.Helper()
	p, err := CompileString(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := p.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := newMapEnv(nil)
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"-5 + 3", -2},
		{"2 - -3", 5},
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"exp(0)", 1},
		{"ln(exp(2))", 2},
		{"sqrt(16)", 4},
		{"ceil(1.2)", 2},
		{"floor(1.8)", 1},
		{"abs(-7)", 7},
		{"pow(2, 10)", 1024},
		{"if(gt(3, 2), 10, 20)", 10},
		{"if(lt(3, 2), 10, 20)", 20},
		{"eq(3, 3) + eq(3, 4)", 1},
		{"le(2,2) + ge(2,2)", 2},
		{"log2(8)", 3},
		{"log10(1000)", 3},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, env)
		if math.Abs(got.AsFloat()-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPathLookup(t *testing.T) {
	env := newMapEnv(map[string]types.Constant{
		"C.CountObject": types.Int(70000),
		"C.TotalSize":   types.Int(4096000),
		"C.Id.Min":      types.Int(0),
		"C.Id.Max":      types.Int(70000),
		"PageSize":      types.Int(4096),
	})
	got := evalStr(t, "C.TotalSize / PageSize", env)
	if got.AsFloat() != 1000 {
		t.Errorf("pages = %v", got)
	}
	got = evalStr(t, "(35000 - C.Id.Min) / (C.Id.Max - C.Id.Min)", env)
	if got.AsFloat() != 0.5 {
		t.Errorf("selectivity = %v", got)
	}
}

func TestPaperYaoFormula(t *testing.T) {
	// The full Figure 13 TotalTime expression with the paper's constants.
	env := newMapEnv(map[string]types.Constant{
		"CountObject": types.Float(35000), // sel = 0.5
		"CountPage":   types.Int(1000),
		"IO":          types.Int(25),
		"Output":      types.Int(9),
	})
	src := `IO * CountPage * (1 - exp(-1 * (CountObject / CountPage))) + CountObject * Output`
	got := evalStr(t, src, env).AsFloat()
	// 25*1000*(1 - e^-35) + 35000*9 = 25000 + 315000 = 340000 ms.
	if math.Abs(got-340000) > 1 {
		t.Errorf("Yao TotalTime = %v, want ~340000", got)
	}
}

func TestErrors(t *testing.T) {
	env := newMapEnv(map[string]types.Constant{"s": types.Str("x")})
	bad := []string{
		"1 / 0",
		"unknown.path",
		"s * 2",
		"-s",
		"nosuchfn(1)",
		"exp(1, 2)",
		"min()",
		"exp('a')",
		"ln(0) * 0", // -Inf is rejected as non-finite
		"sqrt(-1)",  // NaN rejected
	}
	for _, src := range bad {
		p, err := CompileString(src)
		if err != nil {
			continue // compile-time rejection also fine
		}
		if _, err := p.Eval(env); err == nil {
			t.Errorf("eval %q should fail", src)
		}
	}
}

func TestStringConcat(t *testing.T) {
	env := newMapEnv(nil)
	got := evalStr(t, `"foo" + "bar"`, env)
	if got.AsString() != "foobar" {
		t.Errorf("concat = %v", got)
	}
}

func TestDefFunctions(t *testing.T) {
	f, err := costlang.Parse(`def double(x) = x * 2;
def hyp(a, b) = sqrt(a*a + b*b);
def twice(x) = double(double(x));
scan(C) { TotalTime = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewFuncRegistry()
	for _, d := range f.Funcs {
		if err := reg.RegisterDef(d); err != nil {
			t.Fatal(err)
		}
	}
	env := &mapEnv{vars: nil, reg: reg}
	if got := evalStr(t, "double(21)", env); got.AsFloat() != 42 {
		t.Errorf("double = %v", got)
	}
	if got := evalStr(t, "hyp(3, 4)", env); got.AsFloat() != 5 {
		t.Errorf("hyp = %v", got)
	}
	if got := evalStr(t, "twice(10)", env); got.AsFloat() != 40 {
		t.Errorf("twice (nested defs) = %v", got)
	}
	// Arity mismatch.
	if _, err := reg.Call("double", []types.Constant{types.Int(1), types.Int(2)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Def params do not leak to the outer env.
	if _, err := CompileString("x"); err != nil {
		t.Fatal(err)
	}
	p, _ := CompileString("x")
	if _, err := p.Eval(env); err == nil {
		t.Error("def param should not be visible outside the def")
	}
}

func TestRegistryClone(t *testing.T) {
	base := NewFuncRegistry()
	clone := base.Clone()
	clone.Register("special", func([]types.Constant) (types.Constant, error) {
		return types.Int(7), nil
	})
	if base.Has("special") {
		t.Error("clone registration leaked to base")
	}
	if !clone.Has("special") || !clone.Has("exp") {
		t.Error("clone should have both special and stdlib")
	}
}

// Property: the bytecode VM and the tree-walking interpreter agree on
// random arithmetic expressions over bounded integers.
func TestVMMatchesInterpreter(t *testing.T) {
	f := func(a, b, c int16, pick uint8) bool {
		srcs := []string{
			"A + B * C",
			"(A - B) * (C + 2)",
			"A * A - B * B + C",
			"min(A, B) + max(B, C)",
			"abs(A - B) + abs(C)",
			"if(gt(A, B), A, B) - C",
		}
		src := srcs[int(pick)%len(srcs)]
		env := newMapEnv(map[string]types.Constant{
			"A": types.Int(int64(a)),
			"B": types.Int(int64(b)),
			"C": types.Int(int64(c)),
		})
		expr, err := costlang.ParseExpr(src)
		if err != nil {
			return false
		}
		prog, err := Compile(expr)
		if err != nil {
			return false
		}
		v1, err1 := prog.Eval(env)
		v2, err2 := EvalAST(expr, env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(v1.AsFloat()-v2.AsFloat()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDisassemble(t *testing.T) {
	p, err := CompileString("1 + C.x * exp(2)")
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, want := range []string{"const", "load   C.x", "call   exp/1", "mul", "add"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestConstantPoolDedup(t *testing.T) {
	p, err := CompileString("2 + 2 + 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Consts) != 1 {
		t.Errorf("constant pool = %d entries, want 1 (deduped)", len(p.Consts))
	}
}

func TestEvalStackReuse(t *testing.T) {
	p, err := CompileString("1 + 2 * 3 - 4")
	if err != nil {
		t.Fatal(err)
	}
	stack := make([]types.Constant, 0, p.MaxStack)
	for i := 0; i < 3; i++ {
		v, err := p.EvalStack(newMapEnv(nil), stack)
		if err != nil || v.AsFloat() != 3 {
			t.Fatalf("EvalStack = %v, %v", v, err)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	p, err := CompileString("1 + 2 * 3 - 4 / 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 1 {
		t.Errorf("constant expression should fold to one instruction, got %d:\n%s",
			len(p.Code), p.Disassemble())
	}
	v, err := p.Eval(newMapEnv(nil))
	if err != nil || v.AsFloat() != 5 {
		t.Errorf("folded value = %v, %v", v, err)
	}
	// Partial folding inside a larger expression.
	p2, err := CompileString("x * (2 + 3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Code) != 3 { // load x, const 5, mul
		t.Errorf("partial fold = %d instructions:\n%s", len(p2.Code), p2.Disassemble())
	}
	// Division by zero is NOT folded; it errors at run time.
	p3, err := CompileString("1 / 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Eval(newMapEnv(nil)); err == nil {
		t.Error("1/0 should error at evaluation")
	}
	// Calls are not folded (their bindings are per-wrapper).
	p4, err := CompileString("exp(0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p4.Code) != 2 {
		t.Errorf("call should not fold: %d instructions", len(p4.Code))
	}
	// Unary folding.
	p5, err := CompileString("-(2 + 3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p5.Code) != 1 {
		t.Errorf("negated constant should fold: %d instructions", len(p5.Code))
	}
}

// panicEnv panics on every call, standing in for a buggy per-wrapper
// function binding.
type panicEnv struct{}

func (panicEnv) Lookup(path []string) (types.Constant, bool) { return types.Int(1), true }
func (panicEnv) Call(name string, args []types.Constant) (types.Constant, error) {
	panic("boom: " + name)
}

// Corrupt programs (bad pool indexes, underflowing code) and panicking
// environments must surface as returned errors, never as panics escaping
// into the optimizer.
func TestEvalCorruptProgramsError(t *testing.T) {
	env := newMapEnv(nil)
	cases := []struct {
		name string
		p    *Program
	}{
		{"const index out of range", &Program{
			Code: []Instr{{Op: opConst, A: 7}}, MaxStack: 1, Source: "corrupt-const"}},
		{"path index out of range", &Program{
			Code: []Instr{{Op: opLoad, A: 3}}, MaxStack: 1, Source: "corrupt-load"}},
		{"name index out of range", &Program{
			Code: []Instr{{Op: opCall, A: 2, B: 0}}, MaxStack: 1, Source: "corrupt-call"}},
		{"neg underflow", &Program{
			Code: []Instr{{Op: opNeg}}, Source: "corrupt-neg"}},
		{"arith underflow", &Program{
			Code:   []Instr{{Op: opConst, A: 0}, {Op: opAdd}},
			Consts: []types.Constant{types.Int(1)}, MaxStack: 1, Source: "corrupt-add"}},
		{"call arg underflow", &Program{
			Code:  []Instr{{Op: opCall, A: 0, B: 4}},
			Names: []string{"min"}, MaxStack: 1, Source: "corrupt-argc"}},
		{"empty program", &Program{Source: "corrupt-empty"}},
		{"bad opcode", &Program{
			Code: []Instr{{Op: Op(200)}}, Source: "corrupt-op"}},
		{"leftover stack", &Program{
			Code:   []Instr{{Op: opConst, A: 0}, {Op: opConst, A: 0}},
			Consts: []types.Constant{types.Int(1)}, MaxStack: 2, Source: "corrupt-left"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.p.Eval(env); err == nil {
				t.Errorf("%s: Eval should return an error", c.name)
			}
		})
	}
}

func TestEvalRecoversEnvPanic(t *testing.T) {
	p, err := CompileString("1 + f(2)")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Eval(panicEnv{})
	if err == nil {
		t.Fatal("panicking Env.Call should become an error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should carry the panic value: %v", err)
	}
	if v != types.Null {
		t.Errorf("value on error = %v, want Null", v)
	}
}
