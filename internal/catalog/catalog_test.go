package catalog

import (
	"strings"
	"testing"

	"disco/internal/filestore"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/types"
	"disco/internal/wrapper"
)

func buildCatalog(t *testing.T) (*Catalog, *netsim.Clock) {
	t.Helper()
	clock := netsim.NewClock()

	ostore := objstore.Open(objstore.DefaultConfig(), clock)
	emp, err := ostore.CreateCollection("Employee", types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
	), 56)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		emp.Insert(types.Row{types.Int(int64(i)), types.Int(int64(1000 + i))})
	}
	if err := emp.CreateIndex("id", true); err != nil {
		t.Fatal(err)
	}

	fstore := filestore.Open(filestore.DefaultConfig(), clock)
	doc, err := fstore.CreateFile("Docs", types.NewSchema(
		types.Field{Name: "id", Collection: "Docs", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	doc.Append(types.Row{types.Int(1)})

	cat := New()
	if err := cat.Register(wrapper.NewObjWrapper("obj1", ostore)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(wrapper.NewFileWrapper("files", fstore)); err != nil {
		t.Fatal(err)
	}
	return cat, clock
}

func TestRegisterAndLookups(t *testing.T) {
	cat, _ := buildCatalog(t)
	if got := cat.Wrappers(); len(got) != 2 || got[0] != "files" || got[1] != "obj1" {
		t.Errorf("Wrappers = %v", got)
	}
	if !cat.HasCollection("obj1", "Employee") || cat.HasCollection("obj1", "Nope") {
		t.Error("HasCollection")
	}
	if !cat.HasCollection("obj1", "employee") {
		t.Error("collection lookup should be case-insensitive")
	}
	if !cat.HasAttribute("obj1", "Employee", "salary") {
		t.Error("HasAttribute qualified")
	}
	if !cat.HasAttribute("obj1", "", "salary") {
		t.Error("HasAttribute any-collection")
	}
	if cat.HasAttribute("obj1", "", "zzz") {
		t.Error("HasAttribute should miss")
	}
	s, err := cat.CollectionSchema("obj1", "Employee")
	if err != nil || s.Len() != 2 {
		t.Errorf("schema = %v, %v", s, err)
	}
	if _, err := cat.CollectionSchema("obj1", "Nope"); err == nil {
		t.Error("unknown schema should fail")
	}
}

func TestStatsExposure(t *testing.T) {
	cat, _ := buildCatalog(t)
	ext, ok := cat.Extent("obj1", "Employee")
	if !ok || ext.CountObject != 100 {
		t.Errorf("extent = %+v, %v", ext, ok)
	}
	ast, ok := cat.Attribute("obj1", "Employee", "id")
	if !ok || !ast.Indexed || ast.CountDistinct != 100 {
		t.Errorf("attribute = %+v, %v", ast, ok)
	}
	// The stats-less file wrapper exposes nothing.
	if _, ok := cat.Extent("files", "Docs"); ok {
		t.Error("file wrapper should expose no extent stats")
	}
	if _, ok := cat.Attribute("files", "Docs", "id"); ok {
		t.Error("file wrapper should expose no attribute stats")
	}
	// But its schema is known.
	if !cat.HasCollection("files", "Docs") {
		t.Error("file collection should be registered")
	}
}

func TestCapabilitiesAndFind(t *testing.T) {
	cat, _ := buildCatalog(t)
	caps, ok := cat.Capabilities("files")
	if !ok || caps.Join {
		t.Errorf("files caps = %+v", caps)
	}
	if _, ok := cat.Capabilities("nope"); ok {
		t.Error("unknown wrapper should miss")
	}
	if got := cat.FindCollection("Employee"); len(got) != 1 || got[0] != "obj1" {
		t.Errorf("FindCollection = %v", got)
	}
	if got := cat.FindCollection("docs"); len(got) != 1 || got[0] != "files" {
		t.Errorf("case-insensitive FindCollection = %v", got)
	}
	if got := cat.FindCollection("zzz"); got != nil {
		t.Errorf("missing collection = %v", got)
	}
}

func TestDeregisterAndReplace(t *testing.T) {
	cat, _ := buildCatalog(t)
	cat.Deregister("files")
	if cat.HasCollection("files", "Docs") {
		t.Error("deregistered wrapper still visible")
	}
	if len(cat.Wrappers()) != 1 {
		t.Error("wrapper count after deregister")
	}
}

func TestCatalogString(t *testing.T) {
	cat, _ := buildCatalog(t)
	s := cat.String()
	for _, want := range []string{"wrapper obj1", "Employee", "[100 objects"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestEntryCostRules(t *testing.T) {
	cat, _ := buildCatalog(t)
	e, ok := cat.Entry("obj1")
	if !ok || e.CostRules == "" {
		t.Error("obj wrapper rules should be captured at registration")
	}
	f, ok := cat.Entry("files")
	if !ok || f.CostRules != "" {
		t.Error("file wrapper should have no rules")
	}
}
