// Package catalog implements the mediator catalog: the registration-phase
// store of wrapper schemas, capabilities and statistics (paper §2.1,
// Figure 1 steps 1-2). It implements both the schema source the plan
// resolver needs and the CatalogView the cost model reads statistics
// through.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// CollectionInfo is the registered knowledge about one collection.
type CollectionInfo struct {
	Schema    *types.Schema
	Extent    stats.ExtentStats
	HasExtent bool
	Attrs     map[string]stats.AttributeStats // lower-cased attribute name
}

// Entry is the registered knowledge about one wrapper.
type Entry struct {
	Name        string
	Caps        wrapper.Capabilities
	Collections map[string]*CollectionInfo
	CostRules   string
}

// Catalog stores registration results. It is not internally synchronized:
// the mediator serializes mutation (Register/Deregister and the feedback
// adjuster's statistics writes) behind its write lock and reads behind its
// read lock. The epoch counter lets cached artifacts derived from catalog
// state (prepared plans, most importantly) detect that a (re-)registration
// happened since they were built.
type Catalog struct {
	entries map[string]*Entry
	epoch   uint64
}

// New returns an empty catalog at epoch zero.
func New() *Catalog { return &Catalog{entries: make(map[string]*Entry)} }

// Epoch returns the registration epoch: it starts at zero and is bumped by
// every Register and Deregister call. Two reads returning the same epoch
// bracket a span in which no wrapper was added, replaced or removed, so any
// plan bound against the catalog at that epoch is still executable.
func (c *Catalog) Epoch() uint64 { return c.epoch }

// Register uploads a wrapper's schema, capabilities and statistics into
// the catalog (the paper's registration phase: the mediator calls the
// wrapper's extent and attribute cardinality methods and stores the
// results). Re-registering a name replaces the previous entry.
func (c *Catalog) Register(w wrapper.Wrapper) error {
	name := w.Name()
	if name == "" {
		return fmt.Errorf("catalog: wrapper has no name")
	}
	e := &Entry{
		Name:        name,
		Caps:        w.Capabilities(),
		Collections: make(map[string]*CollectionInfo),
		CostRules:   w.CostRules(),
	}
	for _, coll := range w.Collections() {
		schema, err := w.Schema(coll)
		if err != nil {
			return fmt.Errorf("catalog: registering %s/%s: %w", name, coll, err)
		}
		info := &CollectionInfo{Schema: schema, Attrs: make(map[string]stats.AttributeStats)}
		if ext, ok := w.ExtentStats(coll); ok {
			info.Extent = ext
			info.HasExtent = true
		}
		for i := 0; i < schema.Len(); i++ {
			attr := schema.Field(i).Name
			if ast, ok := w.AttributeStats(coll, attr); ok {
				info.Attrs[strings.ToLower(attr)] = ast
			}
		}
		e.Collections[coll] = info
	}
	c.entries[name] = e
	c.epoch++
	return nil
}

// Deregister removes a wrapper.
func (c *Catalog) Deregister(name string) {
	delete(c.entries, name)
	c.epoch++
}

// Wrappers lists registered wrapper names, sorted.
func (c *Catalog) Wrappers() []string {
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Entry returns a wrapper's registration record.
func (c *Catalog) Entry(name string) (*Entry, bool) {
	e, ok := c.entries[name]
	return e, ok
}

// Capabilities returns a wrapper's advertised operator set.
func (c *Catalog) Capabilities(name string) (wrapper.Capabilities, bool) {
	e, ok := c.entries[name]
	if !ok {
		return wrapper.Capabilities{}, false
	}
	return e.Caps, true
}

// Collections lists a wrapper's collections, sorted.
func (c *Catalog) Collections(name string) []string {
	e, ok := c.entries[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(e.Collections))
	for n := range e.Collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FindCollection locates a collection by name across all wrappers,
// returning the owning wrapper names (a collection name may exist at
// several sources).
func (c *Catalog) FindCollection(collection string) []string {
	var out []string
	for name, e := range c.entries {
		for coll := range e.Collections {
			if strings.EqualFold(coll, collection) {
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (c *Catalog) collection(wrapperName, collection string) (*CollectionInfo, bool) {
	e, ok := c.entries[wrapperName]
	if !ok {
		return nil, false
	}
	if info, ok := e.Collections[collection]; ok {
		return info, true
	}
	// Case-insensitive fallback.
	for name, info := range e.Collections {
		if strings.EqualFold(name, collection) {
			return info, true
		}
	}
	return nil, false
}

// CollectionSchema implements algebra.SchemaSource.
func (c *Catalog) CollectionSchema(wrapperName, collection string) (*types.Schema, error) {
	info, ok := c.collection(wrapperName, collection)
	if !ok {
		return nil, fmt.Errorf("catalog: unknown collection %s@%s", collection, wrapperName)
	}
	return info.Schema, nil
}

// HasCollection implements core.CatalogView.
func (c *Catalog) HasCollection(wrapperName, collection string) bool {
	_, ok := c.collection(wrapperName, collection)
	return ok
}

// HasAttribute implements core.CatalogView.
func (c *Catalog) HasAttribute(wrapperName, collection, attr string) bool {
	if collection != "" {
		info, ok := c.collection(wrapperName, collection)
		if !ok {
			return false
		}
		_, ok = info.Schema.Lookup(attr)
		return ok
	}
	e, ok := c.entries[wrapperName]
	if !ok {
		return false
	}
	for _, info := range e.Collections {
		if _, ok := info.Schema.Lookup(attr); ok {
			return true
		}
	}
	return false
}

// Extent implements core.CatalogView.
func (c *Catalog) Extent(wrapperName, collection string) (stats.ExtentStats, bool) {
	info, ok := c.collection(wrapperName, collection)
	if !ok || !info.HasExtent {
		return stats.ExtentStats{}, false
	}
	return info.Extent, true
}

// Attribute implements core.CatalogView.
func (c *Catalog) Attribute(wrapperName, collection, attr string) (stats.AttributeStats, bool) {
	info, ok := c.collection(wrapperName, collection)
	if !ok {
		return stats.AttributeStats{}, false
	}
	ast, ok := info.Attrs[strings.ToLower(attr)]
	return ast, ok
}

// String summarizes the catalog for diagnostics.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, w := range c.Wrappers() {
		e := c.entries[w]
		fmt.Fprintf(&b, "wrapper %s:\n", w)
		for _, coll := range c.Collections(w) {
			info := e.Collections[coll]
			fmt.Fprintf(&b, "  %s %s", coll, info.Schema)
			if info.HasExtent {
				fmt.Fprintf(&b, " [%d objects, %d bytes]", info.Extent.CountObject, info.Extent.TotalSize)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
