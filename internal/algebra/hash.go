package algebra

import (
	"math"
	"strconv"
	"unicode"
	"unicode/utf8"

	"disco/internal/types"
)

// This file implements the 128-bit incremental structural hash that the
// optimizer's plan-cost memo keys on. The hash encodes exactly the
// information Signature() encodes — operator kinds, case-folded attribute
// references and projection columns, exact collection/wrapper names and
// aggregate aliases, canonicalized constants — but it is computed
// bottom-up: a node's hash mixes its local fields with its children's
// already-computed hashes, so hashing a candidate plan whose subtrees are
// shared with earlier candidates costs O(fresh nodes), not O(tree), and
// allocates nothing.
//
// Contract (probabilistic analogue of the Signature contract):
//
//	a.Equal(b)  =>  a.StructuralHash() == b.StructuralHash()
//	!a.Equal(b) =>  hashes differ except with probability ~2^-128
//
// The memo therefore uses the hash alone as its key by default and keeps
// the exact signature-string key behind optimizer.Options.ExactMemo for
// debugging; the randomized agreement test in hash_test.go checks the
// hash against Signature() over generated plan trees.

// Hash128 is a 128-bit structural plan hash, used as a comparable map key.
type Hash128 struct {
	Lo, Hi uint64
}

// The two lanes use independent mixing so that a collision in one lane is
// uncorrelated with the other: lane A is FNV-1a, lane B is a
// rotate-xor-multiply scheme with a golden-ratio multiplier.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	mixPrime  = 0x9E3779B97F4A7C15
)

// structHasher accumulates bytes into the two hash lanes.
type structHasher struct {
	a, b uint64
}

func newStructHasher() structHasher {
	return structHasher{a: fnvOffset, b: mixPrime}
}

func (h *structHasher) byte(c byte) {
	h.a = (h.a ^ uint64(c)) * fnvPrime
	h.b = ((h.b << 13) | (h.b >> 51)) ^ uint64(c)
	h.b *= mixPrime
}

func (h *structHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v))
		v >>= 8
	}
}

// str hashes a string with a length prefix, so variable-length fields
// cannot run into each other (the framing role strconv.Quote plays in the
// signature encoding).
func (h *structHasher) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// foldedStr hashes a string case-folded the same way the signature
// encoder folds it (strings.ToLower), without allocating: ASCII bytes are
// lowered in place, multi-byte runes go through unicode.ToLower. Framing
// uses a trailing 0xFF sentinel rather than a length prefix because
// folding can change a string's byte length (Kelvin sign → 'k') without
// changing its signature encoding; 0xFF never occurs in UTF-8 output.
func (h *structHasher) foldedStr(s string) {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			h.byte(c)
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		lr := unicode.ToLower(r)
		var buf [utf8.UTFMax]byte
		n := utf8.EncodeRune(buf[:], lr)
		for j := 0; j < n; j++ {
			h.byte(buf[j])
		}
		i += size
	}
	h.byte(0xFF)
}

func (h *structHasher) ref(r Ref) {
	h.foldedStr(r.Collection)
	h.byte('.')
	h.foldedStr(r.Attr)
}

// constant hashes a constant with the same canonicalization the signature
// uses: numerics (int and float alike) collapse to their float64 bits, the
// rest carry a kind tag.
func (h *structHasher) constant(c types.Constant) {
	switch {
	case c.IsNumeric():
		h.byte('n')
		h.u64(math.Float64bits(c.AsFloat()))
	case c.Kind() == types.KindString:
		h.byte('s')
		h.str(c.AsString())
	case c.Kind() == types.KindBool:
		if c.AsBool() {
			h.byte('t')
		} else {
			h.byte('f')
		}
	default:
		h.byte('_')
	}
}

func (h *structHasher) pred(p *Predicate) {
	// Equal treats nil and the empty predicate alike; both hash as the
	// empty conjunct list.
	if p == nil {
		h.u64(0)
		return
	}
	h.u64(uint64(len(p.Conjuncts)))
	for _, c := range p.Conjuncts {
		h.ref(c.Left)
		h.byte(byte(c.Op))
		if c.RightAttr != nil {
			h.byte('r')
			h.ref(*c.RightAttr)
		} else {
			h.byte('v')
			h.constant(c.RightConst)
		}
	}
}

// StructuralHash returns the 128-bit structural hash of the plan tree,
// computing and caching missing node hashes bottom-up. The cache is filled
// lazily and copied by Clone (a clone is structurally equal by
// construction); OutSchema is excluded, so Resolve never invalidates it.
//
// Callers that mutate a node's structural fields after hashing must call
// InvalidateHashes on every tree containing it before rehashing; nothing
// in the optimizer mutates plans after construction, so in practice the
// cache is write-once. Lazy cache fills are not synchronized — concurrent
// hashers must pre-hash shared subtrees from one goroutine first (the
// parallel search hashes candidates during its sequential enumeration).
func (n *Node) StructuralHash() Hash128 {
	if n == nil {
		return Hash128{}
	}
	if n.hashOK {
		return Hash128{Lo: n.hashLo, Hi: n.hashHi}
	}
	h := newStructHasher()
	h.byte(byte(n.Kind))
	switch n.Kind {
	case OpScan, OpSubmit:
		h.str(n.Collection)
		h.byte('@')
		h.str(n.Wrapper)
	}
	if n.Pred != nil || n.Kind == OpSelect || n.Kind == OpJoin {
		h.byte('p')
		h.pred(n.Pred)
	}
	if len(n.Cols) > 0 {
		h.byte('c')
		h.u64(uint64(len(n.Cols)))
		for _, c := range n.Cols {
			h.foldedStr(c)
		}
	}
	if len(n.Keys) > 0 {
		h.byte('k')
		h.u64(uint64(len(n.Keys)))
		for _, k := range n.Keys {
			h.ref(k.Attr)
			if k.Desc {
				h.byte('-')
			} else {
				h.byte('+')
			}
		}
	}
	if len(n.GroupBy) > 0 {
		h.byte('g')
		h.u64(uint64(len(n.GroupBy)))
		for _, g := range n.GroupBy {
			h.ref(g)
		}
	}
	if len(n.Aggs) > 0 {
		h.byte('a')
		h.u64(uint64(len(n.Aggs)))
		for _, a := range n.Aggs {
			h.byte(byte(a.Func))
			if a.Star {
				h.byte('*')
			} else {
				h.ref(a.Attr)
			}
			h.str(a.As)
		}
	}
	// Children: combine the cached child hashes instead of re-walking
	// their subtrees — the incremental step.
	h.u64(uint64(len(n.Children)))
	for _, c := range n.Children {
		ch := c.StructuralHash()
		h.u64(ch.Lo)
		h.u64(ch.Hi)
	}
	n.hashLo, n.hashHi = h.a, h.b
	n.hashOK = true
	return Hash128{Lo: n.hashLo, Hi: n.hashHi}
}

// InvalidateHashes clears the cached structural hash of every node in the
// subtree. Call it after mutating structural fields of already-hashed
// nodes (note that ancestors outside the receiver's subtree must be
// invalidated too — invalidate from the root of any tree that shares the
// mutated node).
func (n *Node) InvalidateHashes() {
	n.Walk(func(m *Node) bool {
		m.hashOK = false
		return true
	})
}

// String renders the hash as 32 hex digits, for diagnostics.
func (h Hash128) String() string {
	var buf [32]byte
	hex := func(dst []byte, v uint64) {
		s := strconv.FormatUint(v, 16)
		for i := range dst {
			dst[i] = '0'
		}
		copy(dst[len(dst)-len(s):], s)
	}
	hex(buf[:16], h.Hi)
	hex(buf[16:], h.Lo)
	return string(buf[:])
}
