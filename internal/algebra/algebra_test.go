package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	"disco/internal/stats"
	"disco/internal/types"
)

func employeeSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Employee", Type: types.KindString},
		types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
	)
}

func bookSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Collection: "Book", Type: types.KindInt},
		types.Field{Name: "title", Collection: "Book", Type: types.KindString},
		types.Field{Name: "author", Collection: "Book", Type: types.KindInt},
	)
}

func testSource() FixedSchemas {
	return FixedSchemas{
		"w1/Employee": employeeSchema(),
		"w2/Book":     bookSchema(),
	}
}

func TestPredicateString(t *testing.T) {
	p := NewSelPred(Ref{Collection: "Employee", Attr: "salary"}, stats.CmpEQ, types.Int(10))
	if p.String() != "Employee.salary = 10" {
		t.Errorf("String = %q", p.String())
	}
	j := NewJoinPred(Ref{Attr: "a"}, Ref{Attr: "b"})
	if j.String() != "a = b" {
		t.Errorf("String = %q", j.String())
	}
	var nilPred *Predicate
	if nilPred.String() != "true" {
		t.Errorf("nil predicate = %q", nilPred.String())
	}
	both := p.And(j)
	if both.String() != "Employee.salary = 10 AND a = b" {
		t.Errorf("And = %q", both.String())
	}
}

func TestPredicateAndNil(t *testing.T) {
	p := NewSelPred(Ref{Attr: "x"}, stats.CmpGT, types.Int(1))
	if got := (*Predicate)(nil).And(p); !got.Equal(p) {
		t.Error("nil.And(p) should equal p")
	}
	if got := p.And(nil); !got.Equal(p) {
		t.Error("p.And(nil) should equal p")
	}
	// And must deep-copy: mutating result must not affect p.
	q := p.And(nil)
	q.Conjuncts[0].RightConst = types.Int(99)
	if p.Conjuncts[0].RightConst.AsInt() != 1 {
		t.Error("And should deep-copy conjuncts")
	}
}

func TestPredicateEval(t *testing.T) {
	s := employeeSchema()
	row := types.Row{types.Int(1), types.Str("ana"), types.Int(1500)}
	cases := []struct {
		pred *Predicate
		want bool
	}{
		{NewSelPred(Ref{Attr: "salary"}, stats.CmpGT, types.Int(1000)), true},
		{NewSelPred(Ref{Attr: "salary"}, stats.CmpLT, types.Int(1000)), false},
		{NewSelPred(Ref{Collection: "Employee", Attr: "name"}, stats.CmpEQ, types.Str("ana")), true},
		{NewSelPred(Ref{Attr: "salary"}, stats.CmpGT, types.Int(1000)).
			And(NewSelPred(Ref{Attr: "id"}, stats.CmpEQ, types.Int(1))), true},
		{NewSelPred(Ref{Attr: "salary"}, stats.CmpGT, types.Int(1000)).
			And(NewSelPred(Ref{Attr: "id"}, stats.CmpEQ, types.Int(2))), false},
		{nil, true},
		{NewSelPred(Ref{Attr: "missing"}, stats.CmpEQ, types.Int(1)), false},
	}
	for i, c := range cases {
		if got := c.pred.Eval(s, row); got != c.want {
			t.Errorf("case %d (%s): Eval = %v, want %v", i, c.pred, got, c.want)
		}
	}
}

func TestPredicateEvalJoinComparison(t *testing.T) {
	s := employeeSchema().Concat(bookSchema())
	row := types.Row{types.Int(7), types.Str("ana"), types.Int(1500),
		types.Int(3), types.Str("Go"), types.Int(7)}
	p := NewJoinPred(Ref{Collection: "Employee", Attr: "id"}, Ref{Collection: "Book", Attr: "author"})
	if !p.Eval(s, row) {
		t.Error("join predicate should hold: Employee.id = Book.author = 7")
	}
	p2 := NewJoinPred(Ref{Collection: "Employee", Attr: "id"}, Ref{Collection: "Book", Attr: "id"})
	if p2.Eval(s, row) {
		t.Error("join predicate should fail: 7 != 3")
	}
}

func TestPredicateSplit(t *testing.T) {
	p := NewSelPred(Ref{Attr: "x"}, stats.CmpEQ, types.Int(1)).
		And(NewJoinPred(Ref{Attr: "a"}, Ref{Attr: "b"}))
	if len(p.SelectionComparisons()) != 1 || len(p.JoinComparisons()) != 1 {
		t.Errorf("split = %d sel, %d join", len(p.SelectionComparisons()), len(p.JoinComparisons()))
	}
}

func TestNodeConstructorsAndString(t *testing.T) {
	plan := Project(
		Select(
			Join(
				Submit(Scan("w1", "Employee"), "w1"),
				Submit(Scan("w2", "Book"), "w2"),
				NewJoinPred(Ref{Collection: "Employee", Attr: "id"}, Ref{Collection: "Book", Attr: "author"}),
			),
			NewSelPred(Ref{Collection: "Employee", Attr: "salary"}, stats.CmpGT, types.Int(1000)),
		),
		"Employee.name", "Book.title",
	)
	s := plan.String()
	for _, want := range []string{"project(Employee.name, Book.title)", "select(", "join(", "submit(@w1)", "scan(Employee@w1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	if plan.Count() != 7 {
		t.Errorf("Count = %d, want 7", plan.Count())
	}
	if len(plan.Scans()) != 2 {
		t.Errorf("Scans = %d, want 2", len(plan.Scans()))
	}
}

func TestNodeCloneIndependence(t *testing.T) {
	orig := Select(Scan("w1", "Employee"),
		NewSelPred(Ref{Attr: "salary"}, stats.CmpEQ, types.Int(10)))
	cl := orig.Clone()
	if !orig.Equal(cl) {
		t.Fatal("clone should be structurally equal")
	}
	cl.Pred.Conjuncts[0].RightConst = types.Int(99)
	cl.Children[0].Collection = "Other"
	if orig.Pred.Conjuncts[0].RightConst.AsInt() != 10 {
		t.Error("clone shares predicate")
	}
	if orig.Children[0].Collection != "Employee" {
		t.Error("clone shares children")
	}
	if orig.Equal(cl) {
		t.Error("mutated clone should differ")
	}
}

func TestEnclosingWrapper(t *testing.T) {
	scan1 := Scan("w1", "Employee")
	sel := Select(scan1, NewSelPred(Ref{Attr: "salary"}, stats.CmpGT, types.Int(0)))
	sub := Submit(sel, "w1")
	scan2 := Scan("w2", "Book")
	sub2 := Submit(scan2, "w2")
	join := Join(sub, sub2, NewJoinPred(Ref{Attr: "id"}, Ref{Attr: "author"}))
	if w := join.EnclosingWrapper(sel); w != "w1" {
		t.Errorf("EnclosingWrapper(sel) = %q, want w1", w)
	}
	if w := join.EnclosingWrapper(scan2); w != "w2" {
		t.Errorf("EnclosingWrapper(scan2) = %q, want w2", w)
	}
	if w := join.EnclosingWrapper(join); w != "" {
		t.Errorf("EnclosingWrapper(join) = %q, want mediator", w)
	}
}

func TestResolveJoinPlan(t *testing.T) {
	plan := Project(
		Join(
			Scan("w1", "Employee"),
			Scan("w2", "Book"),
			NewJoinPred(Ref{Collection: "Employee", Attr: "id"}, Ref{Collection: "Book", Attr: "author"}),
		),
		"Employee.name", "Book.title",
	)
	if err := Resolve(plan, testSource()); err != nil {
		t.Fatal(err)
	}
	if plan.OutSchema.Len() != 2 {
		t.Errorf("projected schema = %s", plan.OutSchema)
	}
	join := plan.Children[0]
	if join.OutSchema.Len() != 6 {
		t.Errorf("join schema = %s", join.OutSchema)
	}
}

func TestResolveErrors(t *testing.T) {
	src := testSource()
	cases := []*Node{
		Scan("w1", "Nope"),
		Select(Scan("w1", "Employee"), NewSelPred(Ref{Attr: "bogus"}, stats.CmpEQ, types.Int(1))),
		Project(Scan("w1", "Employee"), "bogus"),
		Sort(Scan("w1", "Employee"), SortKey{Attr: Ref{Attr: "bogus"}}),
		Join(Scan("w1", "Employee"), Scan("w2", "Book"),
			NewJoinPred(Ref{Attr: "bogus"}, Ref{Attr: "author"})),
		Union(Scan("w1", "Employee"), Project(Scan("w2", "Book"), "title")),
		Aggregate(Scan("w1", "Employee"), []Ref{{Attr: "bogus"}}, nil),
		Aggregate(Scan("w1", "Employee"), nil, []AggSpec{{Func: AggSum, Attr: Ref{Attr: "bogus"}}}),
	}
	for i, plan := range cases {
		if err := Resolve(plan, src); err == nil {
			t.Errorf("case %d: Resolve should fail\n%s", i, plan)
		}
	}
}

func TestResolveAggregateSchema(t *testing.T) {
	plan := Aggregate(Scan("w1", "Employee"),
		[]Ref{{Collection: "Employee", Attr: "name"}},
		[]AggSpec{
			{Func: AggCount, Star: true, As: "n"},
			{Func: AggSum, Attr: Ref{Attr: "salary"}, As: "total"},
			{Func: AggMax, Attr: Ref{Attr: "name"}, As: "maxname"},
		})
	if err := Resolve(plan, testSource()); err != nil {
		t.Fatal(err)
	}
	s := plan.OutSchema
	if s.Len() != 4 {
		t.Fatalf("schema = %s", s)
	}
	if s.Field(1).Type != types.KindInt {
		t.Errorf("count type = %v, want int", s.Field(1).Type)
	}
	if s.Field(2).Type != types.KindFloat {
		t.Errorf("sum type = %v, want float", s.Field(2).Type)
	}
	if s.Field(3).Type != types.KindString {
		t.Errorf("max(name) type = %v, want string (propagated)", s.Field(3).Type)
	}
}

func TestOpKindByName(t *testing.T) {
	for _, k := range []OpKind{OpScan, OpSelect, OpProject, OpSort, OpJoin, OpUnion, OpDupElim, OpAggregate, OpSubmit} {
		got, ok := OpKindByName(k.String())
		if !ok || got != k {
			t.Errorf("round-trip %s failed: %v %v", k, got, ok)
		}
	}
	if _, ok := OpKindByName("frobnicate"); ok {
		t.Error("unknown name should not resolve")
	}
}

// Property: Clone is always Equal to the original, for a family of
// generated select-over-scan plans.
func TestCloneEqualProperty(t *testing.T) {
	f := func(val int32, attr uint8, opRaw uint8) bool {
		names := []string{"id", "salary", "name"}
		ops := []stats.CmpOp{stats.CmpEQ, stats.CmpLT, stats.CmpGT, stats.CmpNE}
		p := Select(Scan("w1", "Employee"),
			NewSelPred(Ref{Attr: names[int(attr)%len(names)]},
				ops[int(opRaw)%len(ops)], types.Int(int64(val))))
		return p.Equal(p.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeadRenderingAllOperators(t *testing.T) {
	scan := Scan("w", "T")
	cases := []struct {
		node *Node
		want string
	}{
		{Sort(scan, SortKey{Attr: Ref{Attr: "a"}, Desc: true}), "sort(a DESC)"},
		{Union(scan, scan), "union"},
		{DupElim(scan), "dupelim"},
		{Aggregate(scan, []Ref{{Attr: "g"}}, []AggSpec{
			{Func: AggSum, Attr: Ref{Attr: "x"}, As: "s"},
			{Func: AggCount, Star: true},
		}), "aggregate(g, sum(x) AS s, count(*))"},
	}
	for _, c := range cases {
		got := strings.SplitN(c.node.String(), "\n", 2)[0]
		if got != c.want {
			t.Errorf("head = %q, want %q", got, c.want)
		}
	}
}

func TestWalkPrunesSubtrees(t *testing.T) {
	plan := Select(DupElim(Scan("w", "T")), nil)
	visited := 0
	plan.Walk(func(n *Node) bool {
		visited++
		return n.Kind != OpDupElim // prune below dupelim
	})
	if visited != 2 {
		t.Errorf("visited = %d, want 2 (scan pruned)", visited)
	}
}

func TestAggFuncStrings(t *testing.T) {
	want := map[AggFunc]string{
		AggCount: "count", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max",
	}
	for fn, s := range want {
		if fn.String() != s {
			t.Errorf("%v.String() = %q", fn, fn.String())
		}
	}
}
