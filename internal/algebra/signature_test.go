package algebra

import (
	"testing"

	"disco/internal/stats"
	"disco/internal/types"
)

// sigPlans builds a family of small plans that differ pairwise in exactly
// one structural aspect, so signature uniqueness is exercised field by
// field.
func sigPlans() map[string]*Node {
	scan := func() *Node { return Scan("w1", "Emp") }
	join := func(p *Predicate) *Node { return Join(Scan("w1", "Emp"), Scan("w2", "Dept"), p) }
	eq := NewJoinPred(Ref{Collection: "Emp", Attr: "dept"}, Ref{Collection: "Dept", Attr: "dno"})
	return map[string]*Node{
		"scan":          scan(),
		"scanOtherColl": Scan("w1", "Emp2"),
		"scanOtherWrap": Scan("w2", "Emp"),
		"select":        Select(scan(), NewSelPred(Ref{Collection: "Emp", Attr: "id"}, stats.CmpLT, types.Int(7))),
		"selectOtherOp": Select(scan(), NewSelPred(Ref{Collection: "Emp", Attr: "id"}, stats.CmpLE, types.Int(7))),
		"selectOtherVal": Select(scan(),
			NewSelPred(Ref{Collection: "Emp", Attr: "id"}, stats.CmpLT, types.Int(8))),
		"selectStrVal": Select(scan(),
			NewSelPred(Ref{Collection: "Emp", Attr: "id"}, stats.CmpLT, types.Str("7"))),
		"project":      Project(scan(), "Emp.id"),
		"projectOther": Project(scan(), "Emp.name"),
		"sortAsc":      Sort(scan(), SortKey{Attr: Ref{Collection: "Emp", Attr: "id"}}),
		"sortDesc":     Sort(scan(), SortKey{Attr: Ref{Collection: "Emp", Attr: "id"}, Desc: true}),
		"join":         join(eq),
		"joinCross":    join(nil),
		"joinFlipped":  Join(Scan("w2", "Dept"), Scan("w1", "Emp"), eq),
		"union":        Union(Scan("w1", "Emp"), Scan("w2", "Dept")),
		"dupelim":      DupElim(scan()),
		"aggregate":    Aggregate(scan(), []Ref{{Collection: "Emp", Attr: "dept"}}, []AggSpec{{Func: AggCount, Star: true, As: "n"}}),
		"aggregateSum": Aggregate(scan(), []Ref{{Collection: "Emp", Attr: "dept"}}, []AggSpec{{Func: AggSum, Attr: Ref{Collection: "Emp", Attr: "salary"}, As: "n"}}),
		"submit":       Submit(scan(), "w1"),
		"submitOther":  Submit(scan(), "w2"),
	}
}

func TestSignatureMatchesEqual(t *testing.T) {
	plans := sigPlans()
	for na, a := range plans {
		for nb, b := range plans {
			wantEq := a.Equal(b)
			gotEq := a.Signature() == b.Signature()
			if wantEq != gotEq {
				t.Errorf("%s vs %s: Equal=%v but signature match=%v\nsigA=%s\nsigB=%s",
					na, nb, wantEq, gotEq, a.Signature(), b.Signature())
			}
		}
	}
}

func TestSignatureCaseFolding(t *testing.T) {
	// Equal folds case on refs and projection columns but not on
	// collection/wrapper names; the signature must agree exactly.
	a := Project(Scan("w1", "Emp"), "Emp.ID")
	b := Project(Scan("w1", "Emp"), "emp.id")
	if !a.Equal(b) || a.Signature() != b.Signature() {
		t.Errorf("column case folding mismatch: Equal=%v sigEq=%v", a.Equal(b), a.Signature() == b.Signature())
	}
	c := Scan("w1", "emp")
	d := Scan("w1", "Emp")
	if c.Equal(d) || c.Signature() == d.Signature() {
		t.Errorf("collection names are case-sensitive: Equal=%v sigEq=%v", c.Equal(d), c.Signature() == d.Signature())
	}
}

func TestSignatureNumericConstants(t *testing.T) {
	// Constant.Equal identifies Int(1) and Float(1): so must signatures.
	a := Select(Scan("w", "C"), NewSelPred(Ref{Attr: "x"}, stats.CmpEQ, types.Int(1)))
	b := Select(Scan("w", "C"), NewSelPred(Ref{Attr: "x"}, stats.CmpEQ, types.Float(1)))
	if !a.Equal(b) {
		t.Fatal("Equal should identify numerically equal constants")
	}
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ for numerically equal constants:\n%s\n%s", a.Signature(), b.Signature())
	}
}

func TestSignatureAdversarialNames(t *testing.T) {
	// Names containing the encoding's own delimiters must not collide.
	a := Scan(`w"1`, `c`)
	b := Scan(`w`, `"1c`)
	if a.Signature() == b.Signature() {
		t.Error("quoted fields should prevent delimiter injection collisions")
	}
}

func TestFingerprintStable(t *testing.T) {
	p := Submit(Select(Scan("w1", "Emp"),
		NewSelPred(Ref{Collection: "Emp", Attr: "id"}, stats.CmpLT, types.Int(7))), "w1")
	if p.Fingerprint() != p.Clone().Fingerprint() {
		t.Error("clone should fingerprint identically")
	}
	if p.Fingerprint() != SignatureFingerprint(p.Signature()) {
		t.Error("Fingerprint must hash the Signature encoding")
	}
}
