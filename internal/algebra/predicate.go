// Package algebra defines the mediator's logical algebra (paper §2.2): the
// operator trees that plans are made of — scan, select, project, sort,
// join, union, duplicate elimination, aggregation, and submit (the
// operator that models shipping a subplan to a wrapper) — together with
// the predicate language, plan printing, cloning, and traversal used by
// the optimizer and the cost model.
package algebra

import (
	"strings"

	"disco/internal/stats"
	"disco/internal/types"
)

// Ref names an attribute, optionally qualified by its collection, e.g.
// Employee.salary. The empty Collection means "resolve against whatever
// schema is in scope".
type Ref struct {
	Collection string
	Attr       string
}

// String renders the reference in dotted form.
func (r Ref) String() string {
	if r.Collection == "" {
		return r.Attr
	}
	return r.Collection + "." + r.Attr
}

// Equal reports case-insensitive equality of two references.
func (r Ref) Equal(o Ref) bool {
	return strings.EqualFold(r.Collection, o.Collection) && strings.EqualFold(r.Attr, o.Attr)
}

// Comparison is one atomic predicate: Left op Right, where Right is either
// another attribute (a join predicate, RightAttr non-nil) or a constant (a
// selection predicate).
type Comparison struct {
	Left       Ref
	Op         stats.CmpOp
	RightAttr  *Ref
	RightConst types.Constant
}

// IsJoin reports whether the comparison relates two attributes.
func (c Comparison) IsJoin() bool { return c.RightAttr != nil }

// String renders the comparison in SQL-ish syntax.
func (c Comparison) String() string {
	right := c.RightConst.String()
	if c.RightAttr != nil {
		right = c.RightAttr.String()
	}
	return c.Left.String() + " " + c.Op.String() + " " + right
}

// Clone returns an independent copy.
func (c Comparison) Clone() Comparison {
	out := c
	if c.RightAttr != nil {
		r := *c.RightAttr
		out.RightAttr = &r
	}
	return out
}

// Equal reports structural equality.
func (c Comparison) Equal(o Comparison) bool {
	if !c.Left.Equal(o.Left) || c.Op != o.Op || c.IsJoin() != o.IsJoin() {
		return false
	}
	if c.IsJoin() {
		return c.RightAttr.Equal(*o.RightAttr)
	}
	return c.RightConst.Equal(o.RightConst)
}

// Predicate is a conjunction of comparisons. A nil or empty predicate is
// trivially true.
type Predicate struct {
	Conjuncts []Comparison
}

// NewSelPred builds a single-comparison selection predicate attr op value.
func NewSelPred(attr Ref, op stats.CmpOp, value types.Constant) *Predicate {
	return &Predicate{Conjuncts: []Comparison{{Left: attr, Op: op, RightConst: value}}}
}

// NewJoinPred builds a single-comparison equi-join predicate a = b.
func NewJoinPred(left, right Ref) *Predicate {
	r := right
	return &Predicate{Conjuncts: []Comparison{{Left: left, Op: stats.CmpEQ, RightAttr: &r}}}
}

// And returns a predicate combining p's and q's conjuncts; either may be
// nil.
func (p *Predicate) And(q *Predicate) *Predicate {
	switch {
	case p == nil || len(p.Conjuncts) == 0:
		return q.Clone()
	case q == nil || len(q.Conjuncts) == 0:
		return p.Clone()
	}
	out := &Predicate{Conjuncts: make([]Comparison, 0, len(p.Conjuncts)+len(q.Conjuncts))}
	for _, c := range p.Conjuncts {
		out.Conjuncts = append(out.Conjuncts, c.Clone())
	}
	for _, c := range q.Conjuncts {
		out.Conjuncts = append(out.Conjuncts, c.Clone())
	}
	return out
}

// Clone returns an independent deep copy; nil stays nil.
func (p *Predicate) Clone() *Predicate {
	if p == nil {
		return nil
	}
	out := &Predicate{Conjuncts: make([]Comparison, len(p.Conjuncts))}
	for i, c := range p.Conjuncts {
		out.Conjuncts[i] = c.Clone()
	}
	return out
}

// Equal reports structural equality (order-sensitive); nil equals an empty
// predicate.
func (p *Predicate) Equal(q *Predicate) bool {
	pn, qn := 0, 0
	if p != nil {
		pn = len(p.Conjuncts)
	}
	if q != nil {
		qn = len(q.Conjuncts)
	}
	if pn != qn {
		return false
	}
	for i := 0; i < pn; i++ {
		if !p.Conjuncts[i].Equal(q.Conjuncts[i]) {
			return false
		}
	}
	return true
}

// String renders the conjunction joined by AND; the trivial predicate
// renders as "true".
func (p *Predicate) String() string {
	if p == nil || len(p.Conjuncts) == 0 {
		return "true"
	}
	parts := make([]string, len(p.Conjuncts))
	for i, c := range p.Conjuncts {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// Eval evaluates the predicate against a row under a schema. Unresolvable
// references evaluate to false (a conservative choice the executor relies
// on).
func (p *Predicate) Eval(schema *types.Schema, row types.Row) bool {
	if p == nil {
		return true
	}
	for _, c := range p.Conjuncts {
		li, ok := schema.Lookup(c.Left.String())
		if !ok {
			li, ok = schema.Lookup(c.Left.Attr)
		}
		if !ok {
			return false
		}
		var right types.Constant
		if c.RightAttr != nil {
			ri, ok := schema.Lookup(c.RightAttr.String())
			if !ok {
				ri, ok = schema.Lookup(c.RightAttr.Attr)
			}
			if !ok {
				return false
			}
			right = row[ri]
		} else {
			right = c.RightConst
		}
		if !c.Op.Eval(row[li], right) {
			return false
		}
	}
	return true
}

// JoinComparisons returns the conjuncts relating two attributes.
func (p *Predicate) JoinComparisons() []Comparison {
	if p == nil {
		return nil
	}
	var out []Comparison
	for _, c := range p.Conjuncts {
		if c.IsJoin() {
			out = append(out, c)
		}
	}
	return out
}

// SelectionComparisons returns the conjuncts comparing an attribute to a
// constant.
func (p *Predicate) SelectionComparisons() []Comparison {
	if p == nil {
		return nil
	}
	var out []Comparison
	for _, c := range p.Conjuncts {
		if !c.IsJoin() {
			out = append(out, c)
		}
	}
	return out
}
