package algebra

import (
	"fmt"

	"disco/internal/types"
)

// SchemaSource supplies base-collection schemas during plan resolution;
// the mediator catalog implements it.
type SchemaSource interface {
	// CollectionSchema returns the row schema of a collection at a
	// wrapper.
	CollectionSchema(wrapper, collection string) (*types.Schema, error)
}

// Resolve computes and stores the output schema of every node in the plan,
// bottom-up, validating attribute references along the way. It must be run
// before execution and before cost estimation (estimation uses attribute
// positions for statistics lookups).
//
// Resolve is idempotent: a node with an output schema is skipped, subtree
// included. The optimizer relies on this — candidate plans share resolved
// subplans, and re-resolution must neither reallocate their schemas nor
// write to nodes other goroutines are reading. The flip side is an
// invariant on callers: structurally mutating a resolved node requires
// clearing its OutSchema (and its ancestors') before resolving again.
func Resolve(n *Node, src SchemaSource) error {
	if n == nil {
		return fmt.Errorf("algebra: resolve of nil plan")
	}
	if n.OutSchema != nil {
		return nil
	}
	for _, c := range n.Children {
		if err := Resolve(c, src); err != nil {
			return err
		}
	}
	switch n.Kind {
	case OpScan:
		s, err := src.CollectionSchema(n.Wrapper, n.Collection)
		if err != nil {
			return fmt.Errorf("algebra: scan %s@%s: %w", n.Collection, n.Wrapper, err)
		}
		n.OutSchema = s

	case OpSelect:
		child := n.Children[0].OutSchema
		for _, c := range n.Pred.SelectionComparisons() {
			if !lookupRef(child, c.Left) {
				return fmt.Errorf("algebra: select references unknown attribute %s in %s", c.Left, child)
			}
		}
		for _, c := range n.Pred.JoinComparisons() {
			if !lookupRef(child, c.Left) || !lookupRef(child, *c.RightAttr) {
				return fmt.Errorf("algebra: select references unknown attribute in %s", c)
			}
		}
		n.OutSchema = child

	case OpProject:
		s, err := n.Children[0].OutSchema.Project(n.Cols)
		if err != nil {
			return fmt.Errorf("algebra: %w", err)
		}
		n.OutSchema = s

	case OpSort:
		child := n.Children[0].OutSchema
		for _, k := range n.Keys {
			if !lookupRef(child, k.Attr) {
				return fmt.Errorf("algebra: sort key %s not in %s", k.Attr, child)
			}
		}
		n.OutSchema = child

	case OpJoin:
		joined := n.Children[0].OutSchema.Concat(n.Children[1].OutSchema)
		for _, c := range n.Pred.JoinComparisons() {
			if !lookupRef(joined, c.Left) || !lookupRef(joined, *c.RightAttr) {
				return fmt.Errorf("algebra: join predicate %s not resolvable in %s", c, joined)
			}
		}
		n.OutSchema = joined

	case OpUnion:
		l, r := n.Children[0].OutSchema, n.Children[1].OutSchema
		if l.Len() != r.Len() {
			return fmt.Errorf("algebra: union arity mismatch: %d vs %d", l.Len(), r.Len())
		}
		n.OutSchema = l

	case OpDupElim, OpSubmit:
		n.OutSchema = n.Children[0].OutSchema

	case OpAggregate:
		child := n.Children[0].OutSchema
		fields := make([]types.Field, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			i, ok := lookupRefIdx(child, g)
			if !ok {
				return fmt.Errorf("algebra: group-by attribute %s not in %s", g, child)
			}
			fields = append(fields, child.Field(i))
		}
		for _, a := range n.Aggs {
			name := a.As
			if name == "" {
				name = a.String()
			}
			ty := types.KindFloat
			if a.Func == AggCount {
				ty = types.KindInt
			}
			if (a.Func == AggMin || a.Func == AggMax) && !a.Star {
				if i, ok := lookupRefIdx(child, a.Attr); ok {
					ty = child.Field(i).Type
				}
			}
			if !a.Star {
				if _, ok := lookupRefIdx(child, a.Attr); !ok {
					return fmt.Errorf("algebra: aggregate attribute %s not in %s", a.Attr, child)
				}
			}
			fields = append(fields, types.Field{Name: name, Type: ty})
		}
		n.OutSchema = types.NewSchema(fields...)

	default:
		return fmt.Errorf("algebra: cannot resolve operator %s", n.Kind)
	}
	return nil
}

func lookupRef(s *types.Schema, r Ref) bool {
	_, ok := lookupRefIdx(s, r)
	return ok
}

func lookupRefIdx(s *types.Schema, r Ref) (int, bool) {
	if i, ok := s.Lookup(r.String()); ok {
		return i, true
	}
	return s.Lookup(r.Attr)
}

// RefIndex resolves an attribute reference to its position in a schema,
// trying the qualified name first. The executor uses it after Resolve has
// validated the plan.
func RefIndex(s *types.Schema, r Ref) (int, bool) { return lookupRefIdx(s, r) }

// FixedSchemas is a SchemaSource backed by a map keyed "wrapper/collection";
// tests and single-wrapper tools use it.
type FixedSchemas map[string]*types.Schema

// CollectionSchema implements SchemaSource.
func (f FixedSchemas) CollectionSchema(wrapper, collection string) (*types.Schema, error) {
	if s, ok := f[wrapper+"/"+collection]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("unknown collection %s@%s", collection, wrapper)
}
