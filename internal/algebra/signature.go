package algebra

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"disco/internal/types"
)

// This file defines the canonical subplan signature used by the
// optimizer's plan-cost memo table. The signature is a total, unambiguous
// textual encoding of a plan tree with the property that
//
//	a.Signature() == b.Signature()  <=>  a.Equal(b)
//
// so the optimizer may key cached costs by signature without false
// sharing between structurally different plans. Fields that Equal
// compares case-insensitively (attribute references, projection columns)
// are case-folded here; fields it compares exactly (collection and
// wrapper names, aggregate aliases) are not. Every variable-length field
// is delimiter-quoted so that adversarial names cannot collide.

// Signature returns the canonical encoding of the plan tree.
func (n *Node) Signature() string {
	var b strings.Builder
	b.Grow(64 * n.Count())
	n.appendSig(&b)
	return b.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of the signature — a cheap
// shard/bucket key. Collisions are possible; use Signature itself as the
// exact map key.
func (n *Node) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(n.Signature()))
	return h.Sum64()
}

// SignatureFingerprint hashes an already-computed signature, so callers
// that keep the signature string around do not re-encode the tree.
func SignatureFingerprint(sig string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return h.Sum64()
}

func (n *Node) appendSig(b *strings.Builder) {
	if n == nil {
		b.WriteString("~")
		return
	}
	b.WriteString(strconv.Itoa(int(n.Kind)))
	b.WriteByte('(')
	switch n.Kind {
	case OpScan, OpSubmit:
		b.WriteString(strconv.Quote(n.Collection))
		b.WriteByte('@')
		b.WriteString(strconv.Quote(n.Wrapper))
	}
	if n.Pred != nil || n.Kind == OpSelect || n.Kind == OpJoin {
		b.WriteString("p[")
		appendPredSig(b, n.Pred)
		b.WriteByte(']')
	}
	if len(n.Cols) > 0 {
		b.WriteString("c[")
		for _, c := range n.Cols {
			b.WriteString(strconv.Quote(strings.ToLower(c)))
			b.WriteByte(',')
		}
		b.WriteByte(']')
	}
	if len(n.Keys) > 0 {
		b.WriteString("k[")
		for _, k := range n.Keys {
			appendRefSig(b, k.Attr)
			if k.Desc {
				b.WriteByte('-')
			} else {
				b.WriteByte('+')
			}
		}
		b.WriteByte(']')
	}
	if len(n.GroupBy) > 0 {
		b.WriteString("g[")
		for _, g := range n.GroupBy {
			appendRefSig(b, g)
			b.WriteByte(',')
		}
		b.WriteByte(']')
	}
	if len(n.Aggs) > 0 {
		b.WriteString("a[")
		for _, a := range n.Aggs {
			b.WriteString(strconv.Itoa(int(a.Func)))
			if a.Star {
				b.WriteByte('*')
			} else {
				appendRefSig(b, a.Attr)
			}
			b.WriteString(strconv.Quote(a.As))
			b.WriteByte(',')
		}
		b.WriteByte(']')
	}
	for _, c := range n.Children {
		c.appendSig(b)
	}
	b.WriteByte(')')
}

func appendPredSig(b *strings.Builder, p *Predicate) {
	// Equal treats nil and the empty predicate as equal; both encode as
	// the empty conjunct list.
	if p == nil {
		return
	}
	for _, c := range p.Conjuncts {
		appendRefSig(b, c.Left)
		b.WriteString(strconv.Itoa(int(c.Op)))
		if c.RightAttr != nil {
			b.WriteByte('r')
			appendRefSig(b, *c.RightAttr)
		} else {
			b.WriteByte('v')
			appendConstSig(b, c.RightConst)
		}
		b.WriteByte(';')
	}
}

func appendRefSig(b *strings.Builder, r Ref) {
	// Ref.Equal folds case on both segments.
	b.WriteString(strconv.Quote(strings.ToLower(r.Collection)))
	b.WriteByte('.')
	b.WriteString(strconv.Quote(strings.ToLower(r.Attr)))
}

// appendConstSig encodes a constant so that exactly the values
// Constant.Equal identifies share an encoding: numerics (int and float
// alike) canonicalize to their float64 bits, the rest carry a kind tag.
func appendConstSig(b *strings.Builder, c types.Constant) {
	switch {
	case c.IsNumeric():
		b.WriteByte('n')
		b.WriteString(strconv.FormatUint(math.Float64bits(c.AsFloat()), 16))
	case c.Kind() == types.KindString:
		b.WriteByte('s')
		b.WriteString(strconv.Quote(c.AsString()))
	case c.Kind() == types.KindBool:
		if c.AsBool() {
			b.WriteString("bt")
		} else {
			b.WriteString("bf")
		}
	default:
		b.WriteByte('_')
	}
}
