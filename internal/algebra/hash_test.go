package algebra

import (
	"math/rand"
	"testing"

	"disco/internal/stats"
	"disco/internal/types"
)

// TestHashMatchesSignaturePairs runs the structural hash over the same
// pairwise-distinct plan family the signature tests use: signatures equal
// iff hashes equal.
func TestHashMatchesSignaturePairs(t *testing.T) {
	plans := sigPlans()
	for na, a := range plans {
		for nb, b := range plans {
			sigEq := a.Signature() == b.Signature()
			hashEq := a.StructuralHash() == b.StructuralHash()
			if sigEq != hashEq {
				t.Errorf("%s vs %s: sigEq=%v hashEq=%v (hashA=%s hashB=%s)",
					na, nb, sigEq, hashEq, a.StructuralHash(), b.StructuralHash())
			}
		}
	}
}

// randPlan generates a random plan tree of the given depth; the generator
// draws from small pools of names, constants and operators so that equal
// trees occur with realistic probability.
func randPlan(r *rand.Rand, depth int) *Node {
	wrappers := []string{"w1", "w2", "W1"}
	colls := []string{"Emp", "Dept", "emp", "Órders"}
	attrs := []string{"id", "ID", "salary", "dept", "ſtraße"}
	consts := []types.Constant{
		types.Int(1), types.Int(7), types.Float(1), types.Float(2.5),
		types.Str("x"), types.Str("1"), types.Bool(true), types.Null,
	}
	ops := []stats.CmpOp{stats.CmpEQ, stats.CmpLT, stats.CmpLE, stats.CmpGT}
	ref := func() Ref {
		return Ref{Collection: colls[r.Intn(len(colls))], Attr: attrs[r.Intn(len(attrs))]}
	}
	cmp := func() Comparison {
		c := Comparison{Left: ref(), Op: ops[r.Intn(len(ops))]}
		if r.Intn(2) == 0 {
			rt := ref()
			c.RightAttr = &rt
		} else {
			c.RightConst = consts[r.Intn(len(consts))]
		}
		return c
	}
	pred := func() *Predicate {
		n := r.Intn(3)
		if n == 0 && r.Intn(2) == 0 {
			return nil
		}
		p := &Predicate{}
		for i := 0; i < n; i++ {
			p.Conjuncts = append(p.Conjuncts, cmp())
		}
		return p
	}
	if depth <= 0 {
		return Scan(wrappers[r.Intn(len(wrappers))], colls[r.Intn(len(colls))])
	}
	switch r.Intn(8) {
	case 0:
		return Scan(wrappers[r.Intn(len(wrappers))], colls[r.Intn(len(colls))])
	case 1:
		return Select(randPlan(r, depth-1), pred())
	case 2:
		cols := make([]string, 1+r.Intn(2))
		for i := range cols {
			cols[i] = attrs[r.Intn(len(attrs))]
		}
		return Project(randPlan(r, depth-1), cols...)
	case 3:
		return Sort(randPlan(r, depth-1), SortKey{Attr: ref(), Desc: r.Intn(2) == 0})
	case 4:
		return Join(randPlan(r, depth-1), randPlan(r, depth-1), pred())
	case 5:
		return Union(randPlan(r, depth-1), randPlan(r, depth-1))
	case 6:
		var aggs []AggSpec
		for i := 0; i <= r.Intn(2); i++ {
			a := AggSpec{Func: AggFunc(r.Intn(5)), As: attrs[r.Intn(len(attrs))]}
			if r.Intn(3) == 0 {
				a.Star = true
			} else {
				a.Attr = ref()
			}
			aggs = append(aggs, a)
		}
		return Aggregate(randPlan(r, depth-1), []Ref{ref()}, aggs)
	default:
		return Submit(randPlan(r, depth-1), wrappers[r.Intn(len(wrappers))])
	}
}

// TestHashSignatureAgreementRandom is the randomized agreement test: over
// generated plan trees, two plans hash equal exactly when their canonical
// signatures are equal. Unicode names in the pools exercise the
// case-folding path.
func TestHashSignatureAgreementRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 300
	plans := make([]*Node, n)
	for i := range plans {
		plans[i] = randPlan(r, 1+r.Intn(3))
	}
	bySig := map[string]Hash128{}
	byHash := map[Hash128]string{}
	for i, p := range plans {
		sig, h := p.Signature(), p.StructuralHash()
		if prev, ok := bySig[sig]; ok && prev != h {
			t.Fatalf("plan %d: equal signatures, different hashes\nsig=%s", i, sig)
		}
		bySig[sig] = h
		if prev, ok := byHash[h]; ok && prev != sig {
			t.Fatalf("plan %d: hash collision between different signatures\n%s\n%s", i, prev, sig)
		}
		byHash[h] = sig
	}
}

// TestHashIncrementalReuse verifies the bottom-up caching: hashing a tree
// caches every subtree, a clone carries the cache, and a parent built over
// a hashed subtree reuses the child hash rather than recomputing it.
func TestHashIncrementalReuse(t *testing.T) {
	child := Select(Scan("w1", "Emp"), NewSelPred(Ref{Attr: "id"}, stats.CmpLT, types.Int(7)))
	h1 := child.StructuralHash()
	if !child.hashOK || !child.Children[0].hashOK {
		t.Fatal("hashing should cache the whole subtree")
	}

	clone := child.Clone()
	if !clone.hashOK || clone.StructuralHash() != h1 {
		t.Error("clone should carry the cached hash")
	}

	// Corrupt the child's cached hash, then hash a new parent: the parent
	// must combine the cached (corrupt) value, proving it did not re-walk
	// the subtree.
	parent := Submit(child, "w1")
	hOrig := parent.StructuralHash()
	parent2 := Submit(clone, "w1")
	clone.hashLo ^= 0xdeadbeef
	if parent2.StructuralHash() == hOrig {
		t.Error("parent hash should be built from the cached child hash")
	}

	// InvalidateHashes restores correctness after mutation.
	clone.InvalidateHashes()
	parent2.InvalidateHashes()
	if parent2.StructuralHash() != hOrig {
		t.Error("invalidate + rehash should agree with the original")
	}
}

// TestHashCaseFoldEdge pins the Kelvin-sign folding edge: ToLower('K')
// (U+212A, 3 bytes) is 'k' (1 byte), so the hash must frame folded
// strings by content, not raw byte length, to agree with Signature.
func TestHashCaseFoldEdge(t *testing.T) {
	a := Project(Scan("w", "C"), "Kelvin")
	b := Project(Scan("w", "C"), "kelvin")
	sigEq := a.Signature() == b.Signature()
	hashEq := a.StructuralHash() == b.StructuralHash()
	if sigEq != hashEq {
		t.Errorf("folding edge: sigEq=%v hashEq=%v", sigEq, hashEq)
	}
}
