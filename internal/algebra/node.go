package algebra

import (
	"fmt"
	"strings"

	"disco/internal/types"
)

// OpKind enumerates the logical operators of the mediator algebra.
type OpKind uint8

// The operator set of paper §2.2: unary scan/select/project/sort, binary
// join/union, aggregate operators (group-by aggregation and duplicate
// elimination), and submit, which models shipping a subplan to a wrapper.
const (
	OpScan OpKind = iota
	OpSelect
	OpProject
	OpSort
	OpJoin
	OpUnion
	OpDupElim
	OpAggregate
	OpSubmit
)

var opNames = [...]string{
	OpScan:      "scan",
	OpSelect:    "select",
	OpProject:   "project",
	OpSort:      "sort",
	OpJoin:      "join",
	OpUnion:     "union",
	OpDupElim:   "dupelim",
	OpAggregate: "aggregate",
	OpSubmit:    "submit",
}

// String returns the lower-case operator name used in cost-rule heads.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// OpKindByName resolves a rule-head operator name; ok is false for unknown
// names.
func OpKindByName(name string) (OpKind, bool) {
	for k, n := range opNames {
		if n == name {
			return OpKind(k), true
		}
	}
	return 0, false
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Supported aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec is one aggregate computation over an input attribute. Attr is
// ignored for COUNT(*).
type AggSpec struct {
	Func AggFunc
	Attr Ref
	Star bool // COUNT(*)
	As   string
}

// String renders e.g. sum(Employee.salary) or count(*).
func (a AggSpec) String() string {
	arg := a.Attr.String()
	if a.Star {
		arg = "*"
	}
	s := a.Func.String() + "(" + arg + ")"
	if a.As != "" {
		s += " AS " + a.As
	}
	return s
}

// SortKey orders by one attribute.
type SortKey struct {
	Attr Ref
	Desc bool
}

// String renders e.g. salary DESC.
func (k SortKey) String() string {
	if k.Desc {
		return k.Attr.String() + " DESC"
	}
	return k.Attr.String()
}

// Node is one operator in a logical plan tree. The same structure is used
// before and after optimization; the optimizer rewrites trees, the cost
// model annotates them (in its own side tables), and Submit nodes mark
// wrapper subplan boundaries.
type Node struct {
	Kind OpKind

	// Scan fields.
	Collection string // collection name at the data source
	Wrapper    string // owning wrapper; set on scans and submits

	// Select / Join predicate.
	Pred *Predicate

	// Project columns.
	Cols []string

	// Sort keys.
	Keys []SortKey

	// Aggregate: grouping attributes and aggregate functions.
	GroupBy []Ref
	Aggs    []AggSpec

	// Children: 0 for scan, 1 for unary operators and submit, 2 for join
	// and union.
	Children []*Node

	// OutSchema is filled by Resolve; nil until then.
	OutSchema *types.Schema

	// Cached structural hash (see hash.go): filled lazily by
	// StructuralHash, copied by Clone, cleared by InvalidateHashes. It
	// covers only the structural fields above — never OutSchema — so
	// Resolve does not invalidate it.
	hashLo, hashHi uint64
	hashOK         bool
}

// Convenience constructors. They keep plan-building code in the optimizer
// and tests declarative.

// Scan builds a scan of a wrapper collection.
func Scan(wrapper, collection string) *Node {
	return &Node{Kind: OpScan, Wrapper: wrapper, Collection: collection}
}

// Select filters child by pred.
func Select(child *Node, pred *Predicate) *Node {
	return &Node{Kind: OpSelect, Pred: pred, Children: []*Node{child}}
}

// Project keeps only cols of child.
func Project(child *Node, cols ...string) *Node {
	return &Node{Kind: OpProject, Cols: cols, Children: []*Node{child}}
}

// Sort orders child by keys.
func Sort(child *Node, keys ...SortKey) *Node {
	return &Node{Kind: OpSort, Keys: keys, Children: []*Node{child}}
}

// Join combines left and right under pred.
func Join(left, right *Node, pred *Predicate) *Node {
	return &Node{Kind: OpJoin, Pred: pred, Children: []*Node{left, right}}
}

// Union concatenates left and right (bag semantics).
func Union(left, right *Node) *Node {
	return &Node{Kind: OpUnion, Children: []*Node{left, right}}
}

// DupElim removes duplicate rows of child.
func DupElim(child *Node) *Node {
	return &Node{Kind: OpDupElim, Children: []*Node{child}}
}

// Aggregate groups child by groupBy and computes aggs.
func Aggregate(child *Node, groupBy []Ref, aggs []AggSpec) *Node {
	return &Node{Kind: OpAggregate, GroupBy: groupBy, Aggs: aggs, Children: []*Node{child}}
}

// Submit ships child to wrapper for execution there.
func Submit(child *Node, wrapper string) *Node {
	return &Node{Kind: OpSubmit, Wrapper: wrapper, Children: []*Node{child}}
}

// Clone deep-copies the plan tree (schemas are shared; they are
// immutable).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Kind:       n.Kind,
		Collection: n.Collection,
		Wrapper:    n.Wrapper,
		Pred:       n.Pred.Clone(),
		OutSchema:  n.OutSchema,
		// A clone is structurally equal by construction, so the cached
		// hash transfers.
		hashLo: n.hashLo,
		hashHi: n.hashHi,
		hashOK: n.hashOK,
	}
	out.Cols = append([]string(nil), n.Cols...)
	out.Keys = append([]SortKey(nil), n.Keys...)
	out.GroupBy = append([]Ref(nil), n.GroupBy...)
	out.Aggs = append([]AggSpec(nil), n.Aggs...)
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Equal reports structural equality of two plans, ignoring schemas.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind || n.Collection != o.Collection || n.Wrapper != o.Wrapper {
		return false
	}
	if !n.Pred.Equal(o.Pred) {
		return false
	}
	if len(n.Cols) != len(o.Cols) || len(n.Keys) != len(o.Keys) ||
		len(n.GroupBy) != len(o.GroupBy) || len(n.Aggs) != len(o.Aggs) ||
		len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Cols {
		if !strings.EqualFold(n.Cols[i], o.Cols[i]) {
			return false
		}
	}
	for i := range n.Keys {
		if n.Keys[i].Desc != o.Keys[i].Desc || !n.Keys[i].Attr.Equal(o.Keys[i].Attr) {
			return false
		}
	}
	for i := range n.GroupBy {
		if !n.GroupBy[i].Equal(o.GroupBy[i]) {
			return false
		}
	}
	for i := range n.Aggs {
		a, b := n.Aggs[i], o.Aggs[i]
		if a.Func != b.Func || a.Star != b.Star || !a.Attr.Equal(b.Attr) || a.As != b.As {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits n and every descendant pre-order; returning false from fn
// prunes the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count reports the number of operator nodes in the tree.
func (n *Node) Count() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Scans returns every scan node in the tree, left to right.
func (n *Node) Scans() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Kind == OpScan {
			out = append(out, m)
		}
		return true
	})
	return out
}

// EnclosingWrapper reports the wrapper a node executes on: for subtrees
// under a Submit this is the submit's wrapper; mediator-resident operators
// return "". It assumes the receiver is the plan root.
func (n *Node) EnclosingWrapper(target *Node) string {
	wrapper := ""
	var visit func(m *Node, w string) bool
	visit = func(m *Node, w string) bool {
		if m == target {
			wrapper = w
			return true
		}
		if m.Kind == OpSubmit {
			w = m.Wrapper
		}
		for _, c := range m.Children {
			if visit(c, w) {
				return true
			}
		}
		return false
	}
	visit(n, "")
	return wrapper
}

// head renders the operator with its arguments, the form used both in
// plan printing and against rule heads.
func (n *Node) head() string {
	switch n.Kind {
	case OpScan:
		return fmt.Sprintf("scan(%s@%s)", n.Collection, n.Wrapper)
	case OpSelect:
		return fmt.Sprintf("select(%s)", n.Pred)
	case OpProject:
		return fmt.Sprintf("project(%s)", strings.Join(n.Cols, ", "))
	case OpSort:
		parts := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			parts[i] = k.String()
		}
		return fmt.Sprintf("sort(%s)", strings.Join(parts, ", "))
	case OpJoin:
		return fmt.Sprintf("join(%s)", n.Pred)
	case OpUnion:
		return "union"
	case OpDupElim:
		return "dupelim"
	case OpAggregate:
		parts := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
		for _, g := range n.GroupBy {
			parts = append(parts, g.String())
		}
		for _, a := range n.Aggs {
			parts = append(parts, a.String())
		}
		return fmt.Sprintf("aggregate(%s)", strings.Join(parts, ", "))
	case OpSubmit:
		return fmt.Sprintf("submit(@%s)", n.Wrapper)
	default:
		return n.Kind.String()
	}
}

// String renders the plan as an indented tree.
func (n *Node) String() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.head())
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.format(b, depth+1)
	}
}
