package vexec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"disco/internal/types"
)

// Grace-style spill partitioning for the hash join and aggregation
// breakers. When a breaker's tracked input exceeds Options.MemBytes it
// redistributes rows into spillFanout tempdir files by key hash,
// processes each partition independently (recursing with a different
// hash-bit window when a join partition is itself over budget), and
// concatenates the partition outputs. Row values stay bit-identical —
// within a partition rows keep their input order, so float accumulation
// order is preserved — but the overall output order becomes
// partition-major, i.e. a multiset-identical permutation of the
// in-memory result.
//
// Spill row format: uvarint column count, then per column a tag byte
// ('z' null, 'i' zigzag-varint int, 'd' 8-byte little-endian float bits,
// 's' uvarint length + bytes, 't'/'f' bool) — the same tags as the
// rowops key encoder.

const (
	// spillFanout is the partition count per spill level.
	spillFanout = 8
	// maxSpillLevels bounds recursive repartitioning; a partition still
	// over budget at the last level (every row sharing one key, say) is
	// processed in memory — correctness over budget adherence.
	maxSpillLevels = 4
)

// testSpillWriteErr, when non-nil, is consulted before every spill row
// write; tests inject write failures through it to prove the error
// surfaces cleanly instead of a partial result. Guarded by design: spill
// partitioning phases are single-threaded.
var testSpillWriteErr func() error

// spillPart selects the partition for a hash at a recursion level; each
// level consumes a different 7-bit window so re-partitioning a skewed
// partition actually splits it.
func spillPart(h uint64, level int) int {
	return int((h >> (7 * uint(level))) % spillFanout)
}

// spillFile is one buffered tempdir spill partition.
type spillFile struct {
	f     *os.File
	w     *bufio.Writer
	buf   []byte
	rows  int64
	bytes int64
}

func createSpill(dir string) (*spillFile, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "disco-exec-spill-*")
	if err != nil {
		return nil, fmt.Errorf("vexec: create spill file: %w", err)
	}
	return &spillFile{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *spillFile) write(r types.Row) error {
	if hook := testSpillWriteErr; hook != nil {
		if err := hook(); err != nil {
			return fmt.Errorf("vexec: spill write: %w", err)
		}
	}
	s.buf = encodeSpillRow(s.buf[:0], r)
	if _, err := s.w.Write(s.buf); err != nil {
		return fmt.Errorf("vexec: spill write: %w", err)
	}
	s.rows++
	s.bytes += int64(len(s.buf))
	return nil
}

// startRead flushes and rewinds the partition for decoding.
func (s *spillFile) startRead() (*spillReader, error) {
	if err := s.w.Flush(); err != nil {
		return nil, fmt.Errorf("vexec: spill flush: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("vexec: spill rewind: %w", err)
	}
	return &spillReader{r: bufio.NewReaderSize(s.f, 1<<16), left: s.rows}, nil
}

// cleanup closes and removes the partition file; safe to call twice.
func (s *spillFile) cleanup() {
	if s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
	s.f = nil
}

// spillReader decodes rows back out of a partition.
type spillReader struct {
	r     *bufio.Reader
	left  int64
	arena arena
	sbuf  []byte
}

// next decodes one row; ok=false at end of partition.
func (sr *spillReader) next() (types.Row, bool, error) {
	if sr.left == 0 {
		return nil, false, nil
	}
	sr.left--
	n, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return nil, false, fmt.Errorf("vexec: spill read: %w", err)
	}
	row := sr.arena.alloc(int(n))
	for i := range row {
		c, err := sr.constant()
		if err != nil {
			return nil, false, err
		}
		row[i] = c
	}
	return row, true, nil
}

func (sr *spillReader) constant() (types.Constant, error) {
	tag, err := sr.r.ReadByte()
	if err != nil {
		return types.Null, fmt.Errorf("vexec: spill read: %w", err)
	}
	switch tag {
	case 'z':
		return types.Null, nil
	case 'i':
		v, err := binary.ReadVarint(sr.r)
		if err != nil {
			return types.Null, fmt.Errorf("vexec: spill read: %w", err)
		}
		return types.Int(v), nil
	case 'd':
		var b [8]byte
		if _, err := io.ReadFull(sr.r, b[:]); err != nil {
			return types.Null, fmt.Errorf("vexec: spill read: %w", err)
		}
		return types.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:]))), nil
	case 's':
		n, err := binary.ReadUvarint(sr.r)
		if err != nil {
			return types.Null, fmt.Errorf("vexec: spill read: %w", err)
		}
		if cap(sr.sbuf) < int(n) {
			sr.sbuf = make([]byte, n)
		}
		sr.sbuf = sr.sbuf[:n]
		if _, err := io.ReadFull(sr.r, sr.sbuf); err != nil {
			return types.Null, fmt.Errorf("vexec: spill read: %w", err)
		}
		return types.Str(string(sr.sbuf)), nil
	case 't':
		return types.Bool(true), nil
	case 'f':
		return types.Bool(false), nil
	default:
		return types.Null, fmt.Errorf("vexec: spill read: unknown value tag %q", tag)
	}
}

func encodeSpillRow(buf []byte, r types.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, c := range r {
		switch c.Kind() {
		case types.KindNull:
			buf = append(buf, 'z')
		case types.KindInt:
			buf = append(buf, 'i')
			buf = binary.AppendVarint(buf, c.AsInt())
		case types.KindFloat:
			buf = append(buf, 'd')
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.AsFloat()))
		case types.KindString:
			s := c.AsString()
			buf = append(buf, 's')
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		case types.KindBool:
			if c.AsBool() {
				buf = append(buf, 't')
			} else {
				buf = append(buf, 'f')
			}
		}
	}
	return buf
}

// spillSet is one level's fan-out of partitions.
type spillSet struct {
	parts [spillFanout]*spillFile
	level int
}

func newSpillSet(dir string, level int) (*spillSet, error) {
	s := &spillSet{level: level}
	for i := range s.parts {
		f, err := createSpill(dir)
		if err != nil {
			s.cleanup()
			return nil, err
		}
		s.parts[i] = f
	}
	return s, nil
}

func (s *spillSet) add(h uint64, r types.Row) error {
	return s.parts[spillPart(h, s.level)].write(r)
}

func (s *spillSet) cleanup() {
	for _, p := range s.parts {
		if p != nil {
			p.cleanup()
		}
	}
}

// readAll materializes one partition.
func (s *spillSet) readAll(i int) ([]types.Row, error) {
	sr, err := s.parts[i].startRead()
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, s.parts[i].rows)
	for {
		row, ok, err := sr.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
