// Package vexec is the mediator's pipelined, vectorized execution
// engine: the batch-iterator replacement for evaluating algebra trees
// one materialized operator at a time. Operators consume and produce
// fixed-size row batches (DefaultBatchSize rows) through a pull-based
// Next(batch) interface; filter, project, union and nested-loop join run
// fully pipelined, while sort, duplicate elimination, hash join and
// aggregation are pipeline breakers with morsel-driven intra-query
// parallelism (Options.Workers) and Grace-style spill-to-disk
// partitioning for inputs larger than the memory budget
// (Options.MemBytes).
//
// Determinism contract (relied on by the engine's bit-identity tests and
// the loadgen digest oracle):
//
//   - Workers <= 1 and no spill: output is bit-identical to the
//     materializing reference operators in internal/rowops.
//   - Workers > 1, no spill: still bit-identical — breakers use
//     partition-owner scheduling (each worker folds the full input in
//     order, keeping only its partition) and morsel-ordered merges, so
//     even float aggregate sums accumulate in exact input order.
//   - Spill: row values stay bit-identical (per-group/per-pair work is
//     still input-ordered inside a partition) but output order becomes
//     partition-major — a multiset-identical permutation.
//
// The engine charges virtual-clock time analytically from the operator
// row counts this package reports (see Counts), so the wall-clock gains
// here never perturb the simulation's measured response times.
package vexec

import (
	"sync"

	"disco/internal/types"
)

// DefaultBatchSize is the target rows-per-batch of the pipeline.
const DefaultBatchSize = 1024

// Options configures one pipeline execution.
type Options struct {
	// Workers is the morsel-driven parallelism inside pipeline breakers;
	// values below 2 mean sequential execution (the bit-identical mode).
	Workers int
	// MemBytes bounds the bytes a hash join build side or an aggregation
	// input may hold in memory before Grace-partitioning to disk.
	// 0 disables spilling.
	MemBytes int64
	// SpillDir is where spill partitions are created ("" = os.TempDir()).
	SpillDir string
	// BatchSize overrides DefaultBatchSize (0 = default).
	BatchSize int
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

// Batch is one vector of rows flowing through the pipeline. The slice
// header is reused across Next calls; the row backing arrays are not, so
// retaining row values across pulls is safe (breakers depend on this),
// retaining the Rows slice itself is not.
type Batch struct {
	// Rows is the batch contents. It may alias upstream storage (a
	// source's row set, a breaker's materialized output) — read-only for
	// the consumer.
	Rows []types.Row
	// buf is the batch's owned backing array. Operators that build output
	// into the caller's batch MUST append into own() and publish with
	// emit(); appending into Rows[:0] would write through whatever
	// storage the batch last aliased (e.g. a source's catalog rows once
	// the batch cycles through the pool).
	buf []types.Row
}

// own returns the batch's owned storage, emptied, for building output.
func (b *Batch) own() []types.Row { return b.buf[:0] }

// emit publishes rows built in own() storage (append may have grown it).
func (b *Batch) emit(rows []types.Row) {
	b.buf = rows
	b.Rows = rows
}

// Op is the pull-based batch iterator every operator implements.
//
// Next fills b.Rows (possibly aliasing upstream storage) and reports
// whether the batch carries any rows; false means the operator is
// exhausted and b.Rows is empty. The batch contents are valid until the
// next Next or Close call on the same operator. Open must be called
// once before Next; Close releases resources (spill files, pooled
// batches) and must be called exactly once, even after an error.
type Op interface {
	Open() error
	Next(b *Batch) (bool, error)
	Close() error
}

// batchPool recycles batch buffers across pipelines so steady-state
// execution performs no per-batch allocations.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getBatch(size int) *Batch {
	b := batchPool.Get().(*Batch)
	if cap(b.buf) < size {
		b.buf = make([]types.Row, 0, size)
	}
	b.Rows = nil
	return b
}

func putBatch(b *Batch) {
	if b == nil {
		return
	}
	b.Rows = nil // drop any alias of upstream storage
	batchPool.Put(b)
}

// Drain opens the pipeline, pulls it to exhaustion and returns every row
// in emission order. It is the materialization boundary the engine and
// wrapper use at the plan root.
func Drain(root Op, batchSize int) ([]types.Row, error) {
	if err := root.Open(); err != nil {
		root.Close()
		return nil, err
	}
	b := getBatch(batchSize)
	defer putBatch(b)
	var out []types.Row
	for {
		ok, err := root.Next(b)
		if err != nil {
			root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, b.Rows...)
	}
	if err := root.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Discard opens the pipeline and pulls it to exhaustion without
// materializing the output. The steady-state allocation gate uses it so
// the measurement sees only the pipeline's own allocations, not the
// result slice growing.
func Discard(root Op, batchSize int) error {
	if err := root.Open(); err != nil {
		root.Close()
		return err
	}
	b := getBatch(batchSize)
	defer putBatch(b)
	for {
		ok, err := root.Next(b)
		if err != nil {
			root.Close()
			return err
		}
		if !ok {
			break
		}
	}
	return root.Close()
}

// arenaChunk is the constants-per-slab granularity of the row arena.
const arenaChunk = 16384

// arena bump-allocates row storage in large slabs so operators that
// build output rows (project, joins) do not allocate per row. By default
// slabs are never recycled: emitted rows reference them, and the arena
// simply drops its pointer when a slab fills (the rows keep it alive).
// An operator marked transient (its consumer provably never retains row
// storage past the next pull — see markTransient) calls reset() at the
// top of each Next instead, reusing one steady-state slab so join- and
// project-heavy pipelines stop allocating per batch.
type arena struct {
	slab []types.Constant
}

// reset rewinds the slab for reuse. Only safe when every row handed out
// since the last reset is already dead (the transient contract).
func (a *arena) reset() { a.slab = a.slab[:0] }

// alloc returns a row of n constants carved from the slab (zeroed when
// the slab is fresh; callers overwrite every position). The full slice
// expression pins the capacity so a later append on the row cannot
// clobber a neighbour.
func (a *arena) alloc(n int) types.Row {
	if len(a.slab)+n > cap(a.slab) {
		c := arenaChunk
		if n > c {
			c = n
		}
		a.slab = make([]types.Constant, 0, c)
	}
	off := len(a.slab)
	a.slab = a.slab[:off+n]
	return types.Row(a.slab[off : off+n : off+n])
}

// concat builds l ++ r in arena storage (the pipelined replacement for
// types.Row.Concat, which allocates per call).
func (a *arena) concat(l, r types.Row) types.Row {
	row := a.alloc(len(l) + len(r))
	copy(row, l)
	copy(row[len(l):], r)
	return row
}
