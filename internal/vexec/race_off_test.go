//go:build !race

package vexec_test

const raceEnabled = false
