package vexec

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"disco/internal/algebra"
	"disco/internal/types"
)

// trickleOp emits rows in deliberately tiny batches and can fail
// mid-stream, exercising the feeder's incremental publication and error
// paths in a way a materialized source cannot.
type trickleOp struct {
	rows  []types.Row
	chunk int
	errAt int // fail once pos reaches this index (-1 = never)
	pos   int
}

func (s *trickleOp) Open() error { s.pos = 0; return nil }

func (s *trickleOp) Next(b *Batch) (bool, error) {
	if s.errAt >= 0 && s.pos >= s.errAt {
		return false, errors.New("trickle: injected failure")
	}
	if s.pos >= len(s.rows) {
		b.Rows = nil
		return false, nil
	}
	n := len(s.rows) - s.pos
	if n > s.chunk {
		n = s.chunk
	}
	b.Rows = s.rows[s.pos : s.pos+n]
	s.pos += n
	return true, nil
}

func (s *trickleOp) Close() error { return nil }

func trickleRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		// Low-cardinality keys force duplicates and populated groups.
		rows[i] = types.Row{types.Int(int64(i % 97)), types.Str(fmt.Sprintf("v%d", i%13))}
	}
	return rows
}

func trickleSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Collection: "T", Name: "k", Type: types.KindInt},
		types.Field{Collection: "T", Name: "v", Type: types.KindString},
	)
}

// TestStreamFeederPublishesAll checks the feeder hands every row to a
// late-arriving consumer, in order.
func TestStreamFeederPublishesAll(t *testing.T) {
	rows := trickleRows(5000)
	f := startFeeder(&trickleOp{rows: rows, chunk: 7, errAt: -1}, 64)
	got, err := f.waitFor(len(rows) + 1) // beyond the end: returns at exhaustion
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("feeder published %d rows, want %d (or order diverged)", len(got), len(rows))
	}
}

// TestStreamFeederErrorPropagation checks a child failure mid-stream
// reaches every streaming breaker as a build error, not a hang or a
// short result.
func TestStreamFeederErrorPropagation(t *testing.T) {
	rows := trickleRows(4000)
	failing := func() Op { return &trickleOp{rows: rows, chunk: 11, errAt: 2500} }
	ops := map[string]Op{
		"dupelim": &dupElimOp{child: failing(), opts: Options{Workers: 4}, size: 64},
		"agg": &aggOp{child: failing(), inSchema: trickleSchema(),
			groupBy: []algebra.Ref{{Collection: "T", Attr: "k"}},
			aggs:    []algebra.AggSpec{{Func: algebra.AggCount, Star: true}},
			opts:    Options{Workers: 4}, stat: &NodeStat{}, size: 64},
		"hashjoin": &hashJoinOp{left: failing(), right: newSource(trickleRows(200), 64),
			lpos: 0, rpos: 0, equiOnly: true,
			opts: Options{Workers: 4}, stat: &NodeStat{}, size: 64},
	}
	for name, op := range ops {
		_, err := Drain(op, 64)
		if err == nil || err.Error() != "trickle: injected failure" {
			t.Errorf("%s: got err %v, want the injected failure", name, err)
		}
	}
}

// TestStreamingBreakersBitIdentical runs the streaming parallel builds
// against their sequential references over a trickling child (chunk
// sizes far below a morsel) and requires bit-identical output.
func TestStreamingBreakersBitIdentical(t *testing.T) {
	rows := trickleRows(7000)
	trickle := func() Op { return &trickleOp{rows: rows, chunk: 5, errAt: -1} }
	build := map[string]func(w int) Op{
		"dupelim": func(w int) Op {
			return &dupElimOp{child: trickle(), opts: Options{Workers: w}, size: 64}
		},
		"agg": func(w int) Op {
			return &aggOp{child: trickle(), inSchema: trickleSchema(),
				groupBy: []algebra.Ref{{Collection: "T", Attr: "k"}, {Collection: "T", Attr: "v"}},
				aggs:    []algebra.AggSpec{{Func: algebra.AggSum, Attr: algebra.Ref{Collection: "T", Attr: "k"}}},
				opts:    Options{Workers: w}, stat: &NodeStat{}, size: 64}
		},
		"hashjoin": func(w int) Op {
			return &hashJoinOp{left: trickle(), right: newSource(trickleRows(300), 64),
				lpos: 0, rpos: 0, equiOnly: true,
				opts: Options{Workers: w}, stat: &NodeStat{}, size: 64}
		},
	}
	for name, mk := range build {
		seq, err := Drain(mk(1), 64)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		if len(seq) == 0 {
			t.Fatalf("%s: sequential reference produced no rows", name)
		}
		for _, w := range []int{2, 4, 7} {
			par, err := Drain(mk(w), 64)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s workers=%d diverged from sequential (%d vs %d rows)",
					name, w, len(par), len(seq))
			}
		}
	}
}

// TestSliceSourceAndUnionAll sanity-checks the exported gather entry
// points: aliasing batch emission and left-to-right bag union.
func TestSliceSourceAndUnionAll(t *testing.T) {
	a := trickleRows(100)
	b := trickleRows(50)
	got, err := Drain(NewUnionAll(NewSliceSource(a, 16), NewSliceSource(b, 16)), 16)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]types.Row(nil), a...), b...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("union-all: got %d rows, want %d in left-to-right order", len(got), len(want))
	}
	empty, err := Drain(NewUnionAll(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty union-all produced %d rows", len(empty))
	}
}
