package vexec

import (
	"sync"

	"disco/internal/types"
)

// streamFeeder incrementally publishes a child pipeline's rows to the
// partition-owner workers of a breaker. A single reader goroutine pulls
// batches from the child and appends the row headers to a shared,
// append-only slice; workers wait on the published prefix and scan it in
// global input order. Because the slice only ever grows and row values
// are immutable once emitted (the Batch contract: backing arrays are not
// reused), a snapshot of the slice header taken under the lock stays
// valid after the lock is released.
//
// This replaces the drain-then-scan build phase of the breakers without
// changing what any worker sees: each worker still visits every row in
// input order with its global index, so partition-owner determinism (and
// with it bit-identical output) is preserved — rows merely become
// visible as the child produces them instead of all at once.
type streamFeeder struct {
	mu   sync.Mutex
	cond sync.Cond
	rows []types.Row
	done bool
	err  error
}

// startFeeder begins draining child on a reader goroutine. The feeder
// owns the child's Next calls until it observes exhaustion or an error;
// callers must consume the feeder to completion (workers do — they exit
// only once done is set) before the operator's Close can touch the
// child, so the reader never races a Close.
func startFeeder(child Op, size int) *streamFeeder {
	f := &streamFeeder{}
	f.cond.L = &f.mu
	go func() {
		b := getBatch(size)
		defer putBatch(b)
		for {
			ok, err := child.Next(b)
			f.mu.Lock()
			if err != nil || !ok {
				f.err = err
				f.done = true
				f.cond.Broadcast()
				f.mu.Unlock()
				return
			}
			f.rows = append(f.rows, b.Rows...)
			f.cond.Broadcast()
			f.mu.Unlock()
		}
	}()
	return f
}

// preloadedFeeder wraps an already materialized input (the budget-tracked
// build path, which must see the whole input before deciding against
// spilling) in the same interface the streaming workers consume.
func preloadedFeeder(rows []types.Row) *streamFeeder {
	f := &streamFeeder{rows: rows, done: true}
	f.cond.L = &f.mu
	return f
}

// waitFor blocks until at least n rows are published or the input is
// exhausted, and returns the currently published prefix. A shorter
// prefix than n means the stream ended; err reports a child failure (the
// prefix then is what was published before it and must be discarded by
// failing the build).
func (f *streamFeeder) waitFor(n int) ([]types.Row, error) {
	f.mu.Lock()
	for len(f.rows) < n && !f.done {
		f.cond.Wait()
	}
	rows, err := f.rows, f.err
	f.mu.Unlock()
	return rows, err
}

// NewSliceSource returns an Op streaming a materialized row set in
// batches that alias rows (no copying); batchSize <= 0 uses the default.
// It is the entry point for hosts that feed externally produced rows —
// e.g. gathered scatter shards — through the batch pipeline.
func NewSliceSource(rows []types.Row, batchSize int) Op {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return newSource(rows, batchSize)
}

// NewUnionAll chains children into a left-to-right bag union (exactly
// rowops.Union semantics, n-ary). No children yields an empty pipeline.
func NewUnionAll(children ...Op) Op {
	if len(children) == 0 {
		return newSource(nil, DefaultBatchSize)
	}
	out := children[0]
	for _, c := range children[1:] {
		out = &unionOp{left: out, right: c}
	}
	return out
}
