package vexec

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/types"
)

// spillTables is the in-package analogue of the external suite's test
// catalog: SchemaSource for Resolve plus a Leaf hook serving scans.
type spillTables map[string]struct {
	schema *types.Schema
	rows   []types.Row
}

func (c spillTables) CollectionSchema(wrapper, collection string) (*types.Schema, error) {
	t, ok := c[collection]
	if !ok {
		return nil, fmt.Errorf("no collection %s", collection)
	}
	return t.schema, nil
}

func (c spillTables) scanLeaf(n *algebra.Node) ([]types.Row, bool, error) {
	if n.Kind != algebra.OpScan {
		return nil, false, nil
	}
	t, ok := c[n.Collection]
	if !ok {
		return nil, false, fmt.Errorf("no collection %s", n.Collection)
	}
	return t.rows, true, nil
}

// Spill correctness property tests: the spilled execution of a breaker
// must produce the exact multiset of rows the in-memory execution does —
// same values to the float bit, any order. Multisets are compared by
// sorting per-row FNV digests (encodeSpillRow is canonical and
// bit-exact, so equal digests mean equal rows).

func rowDigests(rows []types.Row) []uint64 {
	ds := make([]uint64, len(rows))
	var buf []byte
	for i, r := range rows {
		buf = encodeSpillRow(buf[:0], r)
		h := fnv.New64a()
		h.Write(buf)
		ds[i] = h.Sum64()
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

func requireSameMultiset(t *testing.T, want, got []types.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("spilled run emitted %d rows, in-memory %d", len(got), len(want))
	}
	wd, gd := rowDigests(want), rowDigests(got)
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("multisets differ (first digest mismatch at sorted position %d)", i)
		}
	}
}

// spillCatalog builds a skewed joinable dataset big enough to force
// several spill partitions at a small budget.
func spillCatalog(n int, seed int64) spillTables {
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema(
		types.Field{Name: "k", Collection: "fact", Type: types.KindInt},
		types.Field{Name: "v", Collection: "fact", Type: types.KindFloat},
		types.Field{Name: "tag", Collection: "fact", Type: types.KindString},
	)
	rows := make([]types.Row, n)
	for i := range rows {
		k := int64(rng.Intn(n / 8))
		if rng.Intn(10) == 0 {
			k = 7 // hot key: fat buckets and skewed partitions
		}
		rows[i] = types.Row{
			types.Int(k),
			types.Float(rng.NormFloat64() * 1000),
			types.Str(strings.Repeat("x", rng.Intn(20))),
		}
	}
	dimSchema := types.NewSchema(
		types.Field{Name: "k", Collection: "dim", Type: types.KindInt},
		types.Field{Name: "w", Collection: "dim", Type: types.KindFloat},
	)
	dims := make([]types.Row, n/4)
	for i := range dims {
		dims[i] = types.Row{types.Int(int64(rng.Intn(n / 8))), types.Float(rng.Float64())}
	}
	return spillTables{
		"fact": {schema: schema, rows: rows},
		"dim":  {schema: dimSchema, rows: dims},
	}
}

func spillJoinPlan(t *testing.T, cat spillTables) *algebra.Node {
	t.Helper()
	// dim joins fact with fact on the right: the big skewed table is the
	// build side, which is what the memory budget bounds.
	plan := algebra.Join(
		algebra.Scan("src", "dim"),
		algebra.Scan("src", "fact"),
		algebra.NewJoinPred(
			algebra.Ref{Collection: "dim", Attr: "k"},
			algebra.Ref{Collection: "fact", Attr: "k"},
		),
	)
	if err := algebra.Resolve(plan, cat); err != nil {
		t.Fatal(err)
	}
	return plan
}

func spillAggPlan(t *testing.T, cat spillTables) *algebra.Node {
	t.Helper()
	plan := algebra.Aggregate(
		algebra.Scan("src", "fact"),
		[]algebra.Ref{{Collection: "fact", Attr: "k"}},
		[]algebra.AggSpec{
			{Func: algebra.AggCount, Star: true},
			{Func: algebra.AggSum, Attr: algebra.Ref{Collection: "fact", Attr: "v"}},
			{Func: algebra.AggAvg, Attr: algebra.Ref{Collection: "fact", Attr: "v"}},
		},
	)
	if err := algebra.Resolve(plan, cat); err != nil {
		t.Fatal(err)
	}
	return plan
}

// runPlanOpts executes a plan against the catalog with the given options
// and reports whether any breaker spilled.
func runPlanOpts(t *testing.T, plan *algebra.Node, cat spillTables, opts Options) ([]types.Row, bool) {
	t.Helper()
	counts := Counts{}
	rows, err := Run(plan, &Env{Opts: opts, Counts: counts, Leaf: cat.scanLeaf})
	if err != nil {
		t.Fatal(err)
	}
	spilled := false
	for _, s := range counts {
		spilled = spilled || s.Spilled
	}
	return rows, spilled
}

// TestSpillJoinMatchesInMemory: a hash join forced over budget must
// Grace-spill and still produce the in-memory multiset, at several
// budgets (different partition/recursion shapes).
func TestSpillJoinMatchesInMemory(t *testing.T) {
	cat := spillCatalog(4000, 11)
	plan := spillJoinPlan(t, cat)
	want, spilled := runPlanOpts(t, plan, cat, Options{})
	if spilled {
		t.Fatal("unbudgeted run spilled")
	}
	for _, budget := range []int64{32 << 10, 8 << 10, 2 << 10} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			got, spilled := runPlanOpts(t, plan, cat, Options{MemBytes: budget, SpillDir: t.TempDir()})
			if !spilled {
				t.Fatal("budgeted run did not spill")
			}
			requireSameMultiset(t, want, got)
		})
	}
}

// TestSpillAggMatchesInMemory: same property for the aggregation
// breaker — and because partitions accumulate raw rows in input order,
// the float sums/avgs must be bit-identical, which the digest comparison
// (exact float bits) checks for free.
func TestSpillAggMatchesInMemory(t *testing.T) {
	cat := spillCatalog(6000, 13)
	plan := spillAggPlan(t, cat)
	want, spilled := runPlanOpts(t, plan, cat, Options{})
	if spilled {
		t.Fatal("unbudgeted run spilled")
	}
	for _, budget := range []int64{64 << 10, 8 << 10} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			got, spilled := runPlanOpts(t, plan, cat, Options{MemBytes: budget, SpillDir: t.TempDir()})
			if !spilled {
				t.Fatal("budgeted run did not spill")
			}
			requireSameMultiset(t, want, got)
		})
	}
}

// TestSpillRowCodecRoundTrip: every constant kind survives the spill
// file codec bit-exactly.
func TestSpillRowCodecRoundTrip(t *testing.T) {
	rows := []types.Row{
		{types.Int(0), types.Int(-1), types.Int(1 << 62)},
		{types.Float(0), types.Float(-0.0), types.Float(3.141592653589793)},
		{types.Str(""), types.Str("héllo\x00world")},
		{types.Bool(true), types.Bool(false), types.Null},
		{},
	}
	sf, err := createSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sf.cleanup()
	for _, r := range rows {
		if err := sf.write(r); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := sf.startRead()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		got, ok, err := sr.next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
		wd, gd := rowDigests(rows[i:i+1]), rowDigests([]types.Row{got})
		if wd[0] != gd[0] {
			t.Fatalf("row %d: round trip changed row: got %v want %v", i, got, rows[i])
		}
	}
	if _, ok, _ := sr.next(); ok {
		t.Fatal("reader produced extra row")
	}
}

// TestSpillWriteErrorSurfaces: an injected write failure mid-spill must
// surface as a clean wrapped error from Run, not a partial result — and
// Close must still remove every spill temp file.
func TestSpillWriteErrorSurfaces(t *testing.T) {
	cat := spillCatalog(3000, 17)
	dir := t.TempDir()
	boom := errors.New("disk full")
	calls := 0
	testSpillWriteErr = func() error {
		calls++
		if calls > 500 {
			return boom
		}
		return nil
	}
	defer func() { testSpillWriteErr = nil }()

	for name, plan := range map[string]*algebra.Node{
		"join": spillJoinPlan(t, cat),
		"agg":  spillAggPlan(t, cat),
	} {
		t.Run(name, func(t *testing.T) {
			calls = 0
			_, err := Run(plan, &Env{
				Opts: Options{MemBytes: 4 << 10, SpillDir: dir},
				Leaf: cat.scanLeaf,
			})
			if !errors.Is(err, boom) {
				t.Fatalf("error = %v, want wrapped %v", err, boom)
			}
			if err == nil || !strings.Contains(err.Error(), "vexec: spill write") {
				t.Fatalf("error %q not wrapped as a spill write failure", err)
			}
			left, globErr := filepath.Glob(filepath.Join(dir, "disco-exec-spill-*"))
			if globErr != nil {
				t.Fatal(globErr)
			}
			if len(left) != 0 {
				t.Fatalf("%d spill files leaked after error", len(left))
			}
		})
	}
}

// TestSpillDirCreateError: an unusable spill directory fails the query
// cleanly at the moment the budget trips.
func TestSpillDirCreateError(t *testing.T) {
	cat := spillCatalog(3000, 19)
	plan := spillJoinPlan(t, cat)
	dir := filepath.Join(t.TempDir(), "nonexistent", "nested")
	_, err := Run(plan, &Env{
		Opts: Options{MemBytes: 4 << 10, SpillDir: dir},
		Leaf: cat.scanLeaf,
	})
	if err == nil || !strings.Contains(err.Error(), "vexec: create spill file") {
		t.Fatalf("error = %v, want create-spill failure", err)
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		t.Fatalf("spill dir unexpectedly created: %v", statErr)
	}
}

// TestSpillRecursionSkew: every fact row shares one join key, so level-0
// partitions cannot split and recursion must bottom out at
// maxSpillLevels without losing rows.
func TestSpillRecursionSkew(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "k", Collection: "fact", Type: types.KindInt},
		types.Field{Name: "v", Collection: "fact", Type: types.KindFloat},
	)
	rows := make([]types.Row, 2000)
	for i := range rows {
		rows[i] = types.Row{types.Int(7), types.Float(float64(i))}
	}
	dimSchema := types.NewSchema(
		types.Field{Name: "k", Collection: "dim", Type: types.KindInt},
	)
	cat := spillTables{
		"fact": {schema: schema, rows: rows},
		"dim":  {schema: dimSchema, rows: []types.Row{{types.Int(7)}, {types.Int(8)}}},
	}
	plan := spillJoinPlan(t, cat)
	want, _ := runPlanOpts(t, plan, cat, Options{})
	got, spilled := runPlanOpts(t, plan, cat, Options{MemBytes: 2 << 10, SpillDir: t.TempDir()})
	if !spilled {
		t.Fatal("skewed run did not spill")
	}
	requireSameMultiset(t, want, got)
}
