//go:build race

package vexec_test

const raceEnabled = true
