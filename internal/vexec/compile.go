package vexec

import (
	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// This file compiles predicates to position-based evaluators once per
// pipeline. The interpreted algebra.Predicate.Eval resolves attribute
// names per row per conjunct (and Ref.String allocates for qualified
// refs); the compiled form is an index load, maybe a second one, and a
// CmpOp.Eval — the main single-thread win of the vectorized engine.

// cmpSlot is one compiled conjunct: left position, operator, and either
// a right position (join comparison) or a constant.
type cmpSlot struct {
	left  int
	right int // -1 when the right side is a constant
	op    stats.CmpOp
	rc    types.Constant
}

// compiledPred evaluates a conjunction over rows of one fixed schema.
// alwaysFalse preserves Predicate.Eval's contract that a predicate with
// any unresolvable reference rejects every row.
type compiledPred struct {
	slots       []cmpSlot
	alwaysFalse bool
}

// refPos mirrors Predicate.Eval's resolution order exactly: the full
// dotted spelling first, then the bare attribute.
func refPos(s *types.Schema, r algebra.Ref) (int, bool) {
	if i, ok := s.Lookup(r.String()); ok {
		return i, true
	}
	return s.Lookup(r.Attr)
}

// compilePred compiles p against the schema. A nil or empty predicate
// compiles to the trivially-true evaluator.
func compilePred(s *types.Schema, p *algebra.Predicate) compiledPred {
	if p == nil {
		return compiledPred{}
	}
	out := compiledPred{slots: make([]cmpSlot, 0, len(p.Conjuncts))}
	for _, c := range p.Conjuncts {
		li, ok := refPos(s, c.Left)
		if !ok {
			return compiledPred{alwaysFalse: true}
		}
		slot := cmpSlot{left: li, right: -1, op: c.Op}
		if c.RightAttr != nil {
			ri, ok := refPos(s, *c.RightAttr)
			if !ok {
				return compiledPred{alwaysFalse: true}
			}
			slot.right = ri
		} else {
			slot.rc = c.RightConst
		}
		out.slots = append(out.slots, slot)
	}
	return out
}

func (p *compiledPred) trivial() bool { return !p.alwaysFalse && len(p.slots) == 0 }

func (p *compiledPred) eval(r types.Row) bool {
	if p.alwaysFalse {
		return false
	}
	for i := range p.slots {
		s := &p.slots[i]
		right := s.rc
		if s.right >= 0 {
			right = r[s.right]
		}
		if !s.op.Eval(r[s.left], right) {
			return false
		}
	}
	return true
}

// pairPred evaluates a predicate compiled over a joined schema against
// an (unconcatenated) left/right row pair: positions below llen read the
// left row, the rest read the right row. It lets joins verify residual
// conjuncts before paying for the row concatenation.
type pairPred struct {
	p    compiledPred
	llen int
}

func compilePairPred(joined *types.Schema, llen int, pred *algebra.Predicate) pairPred {
	return pairPred{p: compilePred(joined, pred), llen: llen}
}

func (p *pairPred) eval(l, r types.Row) bool {
	if p.p.alwaysFalse {
		return false
	}
	for i := range p.p.slots {
		s := &p.p.slots[i]
		left := pickSide(l, r, s.left, p.llen)
		right := s.rc
		if s.right >= 0 {
			right = pickSide(l, r, s.right, p.llen)
		}
		if !s.op.Eval(left, right) {
			return false
		}
	}
	return true
}

func pickSide(l, r types.Row, pos, llen int) types.Constant {
	if pos < llen {
		return l[pos]
	}
	return r[pos-llen]
}
