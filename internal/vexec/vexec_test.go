package vexec_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"disco/internal/algebra"
	"disco/internal/rowops"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/vexec"
)

// The equivalence suite: every plan shape runs through the vectorized
// pipeline and through a reference evaluator built on the materializing
// rowops operators (the pre-refactor engine semantics), and the outputs
// must be bit-identical — reflect.DeepEqual over the row slices, which
// compares constant kinds and exact float bits, not just Equal-ity.

// testCatalog maps collection -> (schema, rows) and doubles as the
// algebra.SchemaSource for Resolve.
type testCatalog map[string]struct {
	schema *types.Schema
	rows   []types.Row
}

func (c testCatalog) CollectionSchema(wrapper, collection string) (*types.Schema, error) {
	t, ok := c[collection]
	if !ok {
		return nil, fmt.Errorf("no collection %s", collection)
	}
	return t.schema, nil
}

// scanLeaf serves OpScan nodes from the catalog (the role the engine's
// submit hook / wrapper's store hook play in production).
func (c testCatalog) scanLeaf(n *algebra.Node) ([]types.Row, bool, error) {
	if n.Kind != algebra.OpScan {
		return nil, false, nil
	}
	t, ok := c[n.Collection]
	if !ok {
		return nil, false, fmt.Errorf("no collection %s", n.Collection)
	}
	return t.rows, true, nil
}

// refEval is the materializing reference: the exact operator calls (and
// child-schema choices) the row-at-a-time engine made.
func refEval(n *algebra.Node, leaf func(*algebra.Node) ([]types.Row, bool, error)) ([]types.Row, error) {
	if rows, ok, err := leaf(n); err != nil {
		return nil, err
	} else if ok {
		return rows, nil
	}
	switch n.Kind {
	case algebra.OpSelect:
		rows, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.Filter(n.OutSchema, rows, n.Pred), nil
	case algebra.OpProject:
		rows, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.Project(n.Children[0].OutSchema, rows, n.Cols)
	case algebra.OpSort:
		rows, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.Sort(n.OutSchema, rows, n.Keys)
	case algebra.OpDupElim:
		rows, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.DupElim(rows), nil
	case algebra.OpAggregate:
		rows, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.Aggregate(n.Children[0].OutSchema, rows, n.GroupBy, n.Aggs)
	case algebra.OpUnion:
		left, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		right, err := refEval(n.Children[1], leaf)
		if err != nil {
			return nil, err
		}
		return rowops.Union(left, right), nil
	case algebra.OpJoin:
		left, err := refEval(n.Children[0], leaf)
		if err != nil {
			return nil, err
		}
		right, err := refEval(n.Children[1], leaf)
		if err != nil {
			return nil, err
		}
		ls, rs := n.Children[0].OutSchema, n.Children[1].OutSchema
		if out, ok := rowops.HashJoin(ls, rs, n.OutSchema, left, right, n.Pred, nil); ok {
			return out, nil
		}
		return rowops.NestedLoopJoin(n.OutSchema, left, right, n.Pred, nil), nil
	default:
		return nil, fmt.Errorf("refEval: cannot execute %s", n.Kind)
	}
}

// makeCatalog builds the two seeded test tables: parts (wide, skewed
// categories, duplicate-heavy) and suppliers (small, joinable on
// parts.supplier = suppliers.sid).
func makeCatalog(parts, suppliers int, seed int64) testCatalog {
	rng := rand.New(rand.NewSource(seed))
	partsSchema := types.NewSchema(
		types.Field{Name: "id", Collection: "parts", Type: types.KindInt},
		types.Field{Name: "supplier", Collection: "parts", Type: types.KindInt},
		types.Field{Name: "weight", Collection: "parts", Type: types.KindFloat},
		types.Field{Name: "cat", Collection: "parts", Type: types.KindString},
	)
	prows := make([]types.Row, parts)
	for i := range prows {
		prows[i] = types.Row{
			types.Int(int64(i)),
			types.Int(int64(rng.Intn(suppliers))),
			types.Float(rng.Float64() * 100),
			types.Str(fmt.Sprintf("c%d", rng.Intn(7))),
		}
	}
	supSchema := types.NewSchema(
		types.Field{Name: "sid", Collection: "suppliers", Type: types.KindInt},
		types.Field{Name: "region", Collection: "suppliers", Type: types.KindString},
		types.Field{Name: "rating", Collection: "suppliers", Type: types.KindFloat},
	)
	srows := make([]types.Row, suppliers)
	for i := range srows {
		srows[i] = types.Row{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("r%d", rng.Intn(4))),
			types.Float(rng.Float64() * 100),
		}
	}
	return testCatalog{
		"parts":     {schema: partsSchema, rows: prows},
		"suppliers": {schema: supSchema, rows: srows},
	}
}

func ref(coll, attr string) algebra.Ref { return algebra.Ref{Collection: coll, Attr: attr} }

// testPlans builds one resolved plan per operator shape plus composite
// pipelines; returns name -> plan.
func testPlans(t *testing.T, cat testCatalog) map[string]*algebra.Node {
	t.Helper()
	parts := func() *algebra.Node { return algebra.Scan("src", "parts") }
	sups := func() *algebra.Node { return algebra.Scan("src", "suppliers") }
	weightPred := algebra.NewSelPred(ref("parts", "weight"), stats.CmpGT, types.Float(40))
	joinPred := algebra.NewJoinPred(ref("parts", "supplier"), ref("suppliers", "sid"))
	residualJoin := joinPred.And(
		algebra.NewSelPred(ref("parts", "weight"), stats.CmpGT, types.Float(10)))
	thetaPred := &algebra.Predicate{Conjuncts: []algebra.Comparison{{
		Left: ref("parts", "weight"), Op: stats.CmpGT,
		RightAttr: &algebra.Ref{Collection: "suppliers", Attr: "rating"},
	}}}
	plans := map[string]*algebra.Node{
		"scan":      parts(),
		"select":    algebra.Select(parts(), weightPred),
		"project":   algebra.Project(parts(), "parts.id", "cat"),
		"sort":      algebra.Sort(parts(), algebra.SortKey{Attr: ref("parts", "cat")}, algebra.SortKey{Attr: ref("parts", "weight"), Desc: true}),
		"dupelim":   algebra.DupElim(algebra.Project(parts(), "cat", "supplier")),
		"aggGroup":  algebra.Aggregate(parts(), []algebra.Ref{ref("parts", "cat")}, []algebra.AggSpec{{Func: algebra.AggCount, Star: true}, {Func: algebra.AggSum, Attr: ref("parts", "weight")}, {Func: algebra.AggMin, Attr: ref("parts", "weight")}, {Func: algebra.AggAvg, Attr: ref("parts", "weight")}}),
		"aggGlobal": algebra.Aggregate(algebra.Select(parts(), weightPred), nil, []algebra.AggSpec{{Func: algebra.AggCount, Star: true}, {Func: algebra.AggMax, Attr: ref("parts", "weight")}}),
		"hashJoin":  algebra.Join(parts(), sups(), joinPred),
		"residual":  algebra.Join(parts(), sups(), residualJoin),
		"nlj":       algebra.Join(parts(), sups(), thetaPred),
		"union":     algebra.Union(algebra.Select(parts(), weightPred), algebra.Select(parts(), algebra.NewSelPred(ref("parts", "cat"), stats.CmpEQ, types.Str("c2")))),
		"chord": algebra.Sort(
			algebra.Aggregate(
				algebra.Join(algebra.Select(parts(), algebra.NewSelPred(ref("parts", "weight"), stats.CmpGT, types.Float(5))), sups(), joinPred),
				[]algebra.Ref{ref("suppliers", "region")},
				[]algebra.AggSpec{{Func: algebra.AggCount, Star: true}, {Func: algebra.AggSum, Attr: ref("parts", "weight")}},
			),
			algebra.SortKey{Attr: algebra.Ref{Attr: "region"}},
		),
	}
	for name, p := range plans {
		if err := algebra.Resolve(p, cat); err != nil {
			t.Fatalf("resolve %s: %v", name, err)
		}
	}
	return plans
}

func runPlans(t *testing.T, cat testCatalog, opts vexec.Options, check func(t *testing.T, name string, want, got []types.Row, counts vexec.Counts, plan *algebra.Node)) {
	t.Helper()
	for name, plan := range testPlans(t, cat) {
		t.Run(name, func(t *testing.T) {
			want, err := refEval(plan, cat.scanLeaf)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			counts := vexec.Counts{}
			got, err := vexec.Run(plan, &vexec.Env{Opts: opts, Counts: counts, Leaf: cat.scanLeaf})
			if err != nil {
				t.Fatalf("vexec: %v", err)
			}
			check(t, name, want, got, counts, plan)
		})
	}
}

// requireBitIdentical fails unless got is exactly want (kind- and
// bit-exact, order included).
func requireBitIdentical(t *testing.T, name string, want, got []types.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, reference has %d", name, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("%s: first divergence at row %d: got %s want %s", name, i, got[i], want[i])
			}
		}
		t.Fatalf("%s: rows differ", name)
	}
}

// TestBatchSequentialBitIdentical: Workers=1, no spill — the pipeline
// must reproduce the materializing reference bit for bit on every
// operator shape, across batch sizes that do and don't divide the input.
func TestBatchSequentialBitIdentical(t *testing.T) {
	cat := makeCatalog(3000, 40, 1)
	for _, bs := range []int{0, 7, 256} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			runPlans(t, cat, vexec.Options{BatchSize: bs},
				func(t *testing.T, name string, want, got []types.Row, _ vexec.Counts, _ *algebra.Node) {
					requireBitIdentical(t, name, want, got)
				})
		})
	}
}

// TestMorselParallelBitIdentical: Workers>1 — partition-owner breakers
// and morsel-ordered merges must keep the output bit-identical to the
// sequential reference, not merely multiset-equal. Run under -race in
// ci-exec.
func TestMorselParallelBitIdentical(t *testing.T) {
	cat := makeCatalog(5000, 60, 2)
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runPlans(t, cat, vexec.Options{Workers: workers},
				func(t *testing.T, name string, want, got []types.Row, _ vexec.Counts, _ *algebra.Node) {
					requireBitIdentical(t, name, want, got)
				})
		})
	}
}

// TestCountsMatchReference: the per-node row counts the engine's clock
// charging relies on must equal the reference operator output sizes.
func TestCountsMatchReference(t *testing.T) {
	cat := makeCatalog(2000, 30, 3)
	runPlans(t, cat, vexec.Options{},
		func(t *testing.T, name string, want, got []types.Row, counts vexec.Counts, plan *algebra.Node) {
			if out := counts.Out(plan); out != int64(len(want)) {
				t.Fatalf("%s: root count %d, reference emitted %d", name, out, len(want))
			}
			var walk func(n *algebra.Node) error
			walk = func(n *algebra.Node) error {
				wantRows, err := refEval(n, cat.scanLeaf)
				if err != nil {
					return err
				}
				if out := counts.Out(n); out != int64(len(wantRows)) {
					t.Fatalf("%s: node %s count %d, reference %d", name, n.Kind, out, len(wantRows))
				}
				for _, c := range n.Children {
					if err := walk(c); err != nil {
						return err
					}
				}
				return nil
			}
			if err := walk(plan); err != nil {
				t.Fatal(err)
			}
		})
}

// TestEmptyInputs: every operator over empty inputs — the edge the
// batch protocol (false means empty) is easiest to get wrong.
func TestEmptyInputs(t *testing.T) {
	cat := makeCatalog(0, 0, 4)
	runPlans(t, cat, vexec.Options{},
		func(t *testing.T, name string, want, got []types.Row, _ vexec.Counts, _ *algebra.Node) {
			requireBitIdentical(t, name, want, got)
		})
	t.Run("parallel", func(t *testing.T) {
		runPlans(t, cat, vexec.Options{Workers: 4},
			func(t *testing.T, name string, want, got []types.Row, _ vexec.Counts, _ *algebra.Node) {
				requireBitIdentical(t, name, want, got)
			})
	})
}

// TestHashJoinStatRecorded: the join strategy facts the engine charges
// from (hash vs nested loop) are reported faithfully.
func TestHashJoinStatRecorded(t *testing.T) {
	cat := makeCatalog(500, 10, 5)
	plans := testPlans(t, cat)
	for name, wantHash := range map[string]bool{"hashJoin": true, "residual": true, "nlj": false} {
		counts := vexec.Counts{}
		if _, err := vexec.Run(plans[name], &vexec.Env{Counts: counts, Leaf: cat.scanLeaf}); err != nil {
			t.Fatal(err)
		}
		if got := counts.Stat(plans[name]).HashJoin; got != wantHash {
			t.Errorf("%s: HashJoin stat = %v, want %v", name, got, wantHash)
		}
	}
}

// TestLeafErrorPropagates: a leaf hook failure must abort the build with
// its error, not a partial pipeline.
func TestLeafErrorPropagates(t *testing.T) {
	cat := makeCatalog(100, 5, 6)
	plan := testPlans(t, cat)["chord"]
	boom := fmt.Errorf("store exploded")
	_, err := vexec.Run(plan, &vexec.Env{Leaf: func(n *algebra.Node) ([]types.Row, bool, error) {
		if n.Kind == algebra.OpScan && n.Collection == "suppliers" {
			return nil, false, boom
		}
		return cat.scanLeaf(n)
	}})
	if err == nil || err.Error() != boom.Error() {
		t.Fatalf("error = %v, want %v", err, boom)
	}
}
