package vexec

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/rowops"
	"disco/internal/types"
)

// NodeStat is what one operator reports back to the caller after the
// pipeline drains: the engine's analytic clock charging and EXPLAIN
// ANALYZE profiles are computed entirely from these.
type NodeStat struct {
	// Out counts the rows the operator emitted.
	Out int64
	// HashJoin reports a join executed as a hash join (vs nested loops).
	HashJoin bool
	// Spilled reports a breaker that Grace-partitioned to disk.
	Spilled bool
}

// Counts collects per-node stats for one execution.
type Counts map[*algebra.Node]*NodeStat

// Out returns the emitted row count of a node (0 if never executed).
func (c Counts) Out(n *algebra.Node) int64 {
	if s := c[n]; s != nil {
		return s.Out
	}
	return 0
}

// Stat returns the node's stat entry, creating it on first use.
func (c Counts) Stat(n *algebra.Node) *NodeStat {
	if s := c[n]; s != nil {
		return s
	}
	s := &NodeStat{}
	c[n] = s
	return s
}

// Env is the host context a pipeline builds against: execution options,
// the stats sink, and the Leaf hook through which the host supplies
// rows for the nodes it owns (the engine materializes submit subtrees
// through its wrappers; the wrapper-side evaluator serves scans and
// index-backed selections from its store).
type Env struct {
	Opts Options
	// Counts, when non-nil, receives per-node row counts and execution
	// facts. Safe to leave nil (the wrapper does).
	Counts Counts
	// Leaf, when non-nil, is consulted for every node before generic
	// operator construction: handled=true short-circuits the node (and
	// its whole subtree) into a materialized source of the given rows.
	// An error aborts the build.
	Leaf func(n *algebra.Node) (rows []types.Row, handled bool, err error)
}

func (e *Env) stat(n *algebra.Node) *NodeStat {
	if e.Counts == nil {
		return &NodeStat{}
	}
	return e.Counts.Stat(n)
}

// Build compiles a resolved algebra tree into a batch pipeline. Leaf
// hooks run during Build (materializing submits/scans up front, exactly
// like the row-at-a-time engine did); the operator pipeline itself runs
// when the returned Op is pulled.
func Build(n *algebra.Node, env *Env) (Op, error) {
	op, err := env.build(n)
	if err != nil {
		return nil, err
	}
	return op, nil
}

// Run builds and drains a plan in one call.
func Run(n *algebra.Node, env *Env) ([]types.Row, error) {
	op, err := Build(n, env)
	if err != nil {
		return nil, err
	}
	return Drain(op, env.Opts.batchSize())
}

func (e *Env) build(n *algebra.Node) (Op, error) {
	if n.OutSchema == nil {
		return nil, fmt.Errorf("vexec: unresolved plan node %s", n.Kind)
	}
	size := e.Opts.batchSize()
	if e.Leaf != nil {
		rows, handled, err := e.Leaf(n)
		if err != nil {
			return nil, err
		}
		if handled {
			return e.count(n, newSource(rows, size)), nil
		}
	}
	switch n.Kind {
	case algebra.OpSelect:
		child, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		return e.count(n, &filterOp{child: child, pred: compilePred(n.OutSchema, n.Pred), size: size}), nil

	case algebra.OpProject:
		child, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		idx, err := rowops.ProjectIndex(n.Children[0].OutSchema, n.Cols)
		if err != nil {
			return nil, err
		}
		return e.count(n, &projectOp{child: child, idx: idx, size: size}), nil

	case algebra.OpSort:
		child, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		return e.count(n, &sortOp{child: child, schema: n.OutSchema, keys: n.Keys, opts: e.Opts, size: size}), nil

	case algebra.OpDupElim:
		child, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		return e.count(n, &dupElimOp{child: child, opts: e.Opts, size: size}), nil

	case algebra.OpAggregate:
		child, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		// A streaming-mode aggregate folds every row the moment it arrives
		// and never retains input storage, so an arena-producing child may
		// recycle its slab batch-to-batch instead of growing the heap.
		// The parallel and budgeted modes materialize the input first and
		// must keep the default keep-everything arena discipline.
		if len(n.GroupBy) == 0 || (e.Opts.workers() <= 1 && e.Opts.MemBytes <= 0) {
			markTransient(child)
		}
		return e.count(n, &aggOp{child: child, inSchema: n.Children[0].OutSchema,
			groupBy: n.GroupBy, aggs: n.Aggs, opts: e.Opts, stat: e.stat(n), size: size}), nil

	case algebra.OpUnion:
		left, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := e.build(n.Children[1])
		if err != nil {
			return nil, err
		}
		return e.count(n, &unionOp{left: left, right: right}), nil

	case algebra.OpJoin:
		left, err := e.build(n.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := e.build(n.Children[1])
		if err != nil {
			return nil, err
		}
		ls, rs := n.Children[0].OutSchema, n.Children[1].OutSchema
		pred := compilePairPred(n.OutSchema, ls.Len(), n.Pred)
		if lpos, rpos, ok := rowops.EquiJoinCols(ls, rs, n.Pred); ok {
			stat := e.stat(n)
			stat.HashJoin = true
			return e.count(n, &hashJoinOp{left: left, right: right, lpos: lpos, rpos: rpos,
				pred: pred, equiOnly: len(n.Pred.Conjuncts) == 1,
				opts: e.Opts, stat: stat, size: size}), nil
		}
		return e.count(n, &nljOp{left: left, right: right, pred: pred, size: size}), nil

	default:
		return nil, fmt.Errorf("vexec: cannot execute operator %s", n.Kind)
	}
}

// IsBreaker reports whether a node executes as a pipeline breaker: an
// operator that fully materializes (or consumes) its input before
// emitting its first row, so its children's actuals are completely known
// the moment it finishes building. Sort, duplicate elimination and
// aggregation always break; a join breaks exactly when it runs as a hash
// join (the build side materializes), which is the same equi-column test
// build() applies. Breaker boundaries are where mid-flight adaptive
// re-optimization may pause a plan and compare actuals to estimates.
func IsBreaker(n *algebra.Node) bool {
	switch n.Kind {
	case algebra.OpSort, algebra.OpDupElim, algebra.OpAggregate:
		return true
	case algebra.OpJoin:
		_, _, ok := rowops.EquiJoinCols(n.Children[0].OutSchema, n.Children[1].OutSchema, n.Pred)
		return ok
	default:
		return false
	}
}

// markTransient tells a direct arena-producing child that its consumer
// never retains row storage past the next pull, enabling slab recycling.
// It deliberately does NOT descend through pass-through operators like
// filter: a filter accumulates aliased rows across several child pulls
// inside one of its own Next calls, so its child's storage must survive
// pulls even when the filter's consumer is transient-safe.
func markTransient(op Op) {
	if c, ok := op.(*countOp); ok {
		op = c.Op
	}
	switch t := op.(type) {
	case *hashJoinOp:
		t.transient = true
	case *nljOp:
		t.transient = true
	case *projectOp:
		t.transient = true
	}
}

// count wraps an operator so its emitted rows accumulate into the node's
// stat entry.
func (e *Env) count(n *algebra.Node, op Op) Op {
	if e.Counts == nil {
		return op
	}
	return &countOp{Op: op, stat: e.Counts.Stat(n)}
}

type countOp struct {
	Op
	stat *NodeStat
}

func (c *countOp) Next(b *Batch) (bool, error) {
	ok, err := c.Op.Next(b)
	if ok {
		c.stat.Out += int64(len(b.Rows))
	}
	return ok, err
}
