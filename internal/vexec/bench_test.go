package vexec_test

import (
	"fmt"
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/vexec"
)

// The pipeline benchmarks and their CI gates (`make ci-exec`). The
// headline metric is rows/sec — source rows pushed through a
// representative select → hash-join → aggregate pipeline per wall-clock
// second — reported via b.ReportMetric so cmd/benchjson promotes it
// into BENCH_pr.json (rows_per_sec).

// benchParts is the source cardinality of the benchmark pipeline. Large
// enough that per-batch costs dominate per-query setup, small enough
// that -benchtime 1x stays fast in CI.
const benchParts = 100_000

// benchPipeline builds the benchmark plan over a seeded catalog:
//
//	agg(region; count, sum(weight)) ⋈ (σ weight>10 (parts) ⨝ suppliers)
//
// — a selective filter feeding a hash join feeding a grouped aggregate,
// the operator mix the mediator's own plans are made of.
func benchPipeline(tb testing.TB, nParts int) (testCatalog, *algebra.Node) {
	tb.Helper()
	cat := makeCatalog(nParts, 200, 7)
	plan := algebra.Aggregate(
		algebra.Join(
			algebra.Select(algebra.Scan("src", "parts"),
				algebra.NewSelPred(ref("parts", "weight"), stats.CmpGT, types.Float(10))),
			algebra.Scan("src", "suppliers"),
			algebra.NewJoinPred(ref("parts", "supplier"), ref("suppliers", "sid"))),
		[]algebra.Ref{ref("suppliers", "region")},
		[]algebra.AggSpec{
			{Func: algebra.AggCount, Star: true},
			{Func: algebra.AggSum, Attr: ref("parts", "weight")},
		})
	if err := algebra.Resolve(plan, cat); err != nil {
		tb.Fatalf("resolve: %v", err)
	}
	return cat, plan
}

// BenchmarkExecPipeline measures the vectorized engine over the
// benchmark pipeline. The workers=1 case is the single-thread number the
// ci-exec gate compares against BenchmarkExecMaterializing (>= 3x);
// higher worker counts show morsel scaling inside the breakers.
func BenchmarkExecPipeline(b *testing.B) {
	cat, plan := benchPipeline(b, benchParts)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := vexec.Options{Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := vexec.Run(plan, &vexec.Env{Opts: opts, Leaf: cat.scanLeaf})
				if err != nil || len(out) == 0 {
					b.Fatalf("run: %v (%d rows)", err, len(out))
				}
			}
			b.ReportMetric(float64(benchParts)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkExecMaterializing is the pre-refactor baseline: the same plan
// through the materializing row-at-a-time reference operators (one fully
// materialized intermediate per operator, per-row predicate evaluation
// with name resolution). Kept as the yardstick for the pipeline's win.
func BenchmarkExecMaterializing(b *testing.B) {
	cat, plan := benchPipeline(b, benchParts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := refEval(plan, cat.scanLeaf)
		if err != nil || len(out) == 0 {
			b.Fatalf("run: %v (%d rows)", err, len(out))
		}
	}
	b.ReportMetric(float64(benchParts)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// BenchmarkExecSpill measures the spill crossover: the same pipeline
// under shrinking breaker memory budgets (0 = all in memory). The
// rows/sec drop from budget=0 to the smallest budget is the price of
// Grace partitioning; EXPERIMENTS.md E13 tracks it.
func BenchmarkExecSpill(b *testing.B) {
	cat, plan := benchPipeline(b, benchParts)
	for _, budget := range []int64{0, 1 << 20, 1 << 16} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			opts := vexec.Options{MemBytes: budget, SpillDir: b.TempDir()}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := vexec.Run(plan, &vexec.Env{Opts: opts, Leaf: cat.scanLeaf})
				if err != nil || len(out) == 0 {
					b.Fatalf("run: %v (%d rows)", err, len(out))
				}
			}
			b.ReportMetric(float64(benchParts)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// TestExecPipelineSpeedup is the ci-exec throughput gate: the
// single-thread vectorized pipeline must move rows at least 3x faster
// than the materializing baseline on the benchmark plan. Both sides run
// through testing.Benchmark in the same process, so machine noise
// cancels out of the ratio.
func TestExecPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate is not a -short test")
	}
	if raceEnabled {
		t.Skip("throughput ratios are not meaningful under the race detector")
	}
	cat, plan := benchPipeline(t, benchParts)

	vec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vexec.Run(plan, &vexec.Env{Leaf: cat.scanLeaf}); err != nil {
				b.Fatal(err)
			}
		}
	})
	mat := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := refEval(plan, cat.scanLeaf); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(mat.NsPerOp()) / float64(vec.NsPerOp())
	t.Logf("vectorized %v/op, materializing %v/op: %.2fx", vec.NsPerOp(), mat.NsPerOp(), speedup)
	if speedup < 3 {
		t.Errorf("single-thread speedup %.2fx below the 3x gate", speedup)
	}
}

// TestExecSteadyStateAllocs is the ci-exec allocation gate: once the
// batch pool is warm, pulling batches through a filter pipeline must not
// allocate per batch — only the constant per-query build cost (operator
// structs, compiled predicate) remains. The budget is a hard ceiling:
// ~0 allocations per batch on a ~98-batch input.
func TestExecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cat := makeCatalog(benchParts, 200, 7)
	plan := algebra.Select(algebra.Scan("src", "parts"),
		algebra.NewSelPred(ref("parts", "weight"), stats.CmpGT, types.Float(30)))
	if err := algebra.Resolve(plan, cat); err != nil {
		t.Fatal(err)
	}
	batches := benchParts / vexec.DefaultBatchSize

	run := func() {
		op, err := vexec.Build(plan, &vexec.Env{Leaf: cat.scanLeaf})
		if err != nil {
			t.Fatal(err)
		}
		// Drain by hand without accumulating output, so the measurement
		// sees only the pipeline's own allocations.
		if err := vexec.Discard(op, vexec.DefaultBatchSize); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the batch pool
	avg := testing.AllocsPerRun(10, run)
	perBatch := avg / float64(batches)
	t.Logf("allocs/run = %.1f over %d batches (%.3f per batch)", avg, batches, perBatch)
	if perBatch > 0.5 {
		t.Errorf("%.3f allocations per batch; steady state must stay ~0 (total %.1f)", perBatch, avg)
	}
}
