package vexec

import (
	"disco/internal/types"
)

// sourceOp streams a materialized row set (a wrapper answer, a cached
// result, a store scan) in batches. Batches alias the underlying slice
// — no copying.
type sourceOp struct {
	rows []types.Row
	size int
	pos  int
}

func newSource(rows []types.Row, size int) *sourceOp {
	return &sourceOp{rows: rows, size: size}
}

func (s *sourceOp) Open() error { return nil }

func (s *sourceOp) Next(b *Batch) (bool, error) {
	if s.pos >= len(s.rows) {
		b.Rows = nil
		return false, nil
	}
	n := len(s.rows) - s.pos
	if n > s.size {
		n = s.size
	}
	b.Rows = s.rows[s.pos : s.pos+n]
	s.pos += n
	return true, nil
}

func (s *sourceOp) Close() error { return nil }

// filterOp pipelines a compiled predicate over its child's batches. It
// keeps pulling until the output batch is at least half full (selective
// predicates would otherwise trickle tiny batches downstream).
type filterOp struct {
	child Op
	pred  compiledPred
	size  int
	in    *Batch
	done  bool
}

func (f *filterOp) Open() error {
	f.in = getBatch(f.size)
	return f.child.Open()
}

func (f *filterOp) Next(b *Batch) (bool, error) {
	if f.pred.trivial() {
		return f.child.Next(b)
	}
	out := b.own()
	for !f.done {
		ok, err := f.child.Next(f.in)
		if err != nil {
			return false, err
		}
		if !ok {
			f.done = true
			break
		}
		if f.pred.alwaysFalse {
			continue
		}
		for _, r := range f.in.Rows {
			if f.pred.eval(r) {
				out = append(out, r)
			}
		}
		if len(out) >= f.size/2 {
			b.emit(out)
			return true, nil
		}
	}
	b.emit(out)
	return len(out) > 0, nil
}

func (f *filterOp) Close() error {
	putBatch(f.in)
	f.in = nil
	return f.child.Close()
}

// projectOp maps each input batch onto the resolved column positions,
// building output rows in arena storage (no per-row allocation).
type projectOp struct {
	child     Op
	idx       []int
	size      int
	transient bool
	in        *Batch
	arena     arena
}

func (p *projectOp) Open() error {
	p.in = getBatch(p.size)
	return p.child.Open()
}

func (p *projectOp) Next(b *Batch) (bool, error) {
	if p.transient {
		p.arena.reset()
	}
	ok, err := p.child.Next(p.in)
	if err != nil || !ok {
		b.Rows = nil
		return false, err
	}
	out := b.own()
	for _, r := range p.in.Rows {
		nr := p.arena.alloc(len(p.idx))
		for i, pos := range p.idx {
			nr[i] = r[pos]
		}
		out = append(out, nr)
	}
	b.emit(out)
	return true, nil
}

func (p *projectOp) Close() error {
	putBatch(p.in)
	p.in = nil
	return p.child.Close()
}

// unionOp streams the left child to exhaustion, then the right (bag
// semantics, concatenation order — exactly rowops.Union).
type unionOp struct {
	left, right Op
	onRight     bool
}

func (u *unionOp) Open() error {
	if err := u.left.Open(); err != nil {
		return err
	}
	return u.right.Open()
}

func (u *unionOp) Next(b *Batch) (bool, error) {
	if !u.onRight {
		ok, err := u.left.Next(b)
		if err != nil || ok {
			return ok, err
		}
		u.onRight = true
	}
	return u.right.Next(b)
}

func (u *unionOp) Close() error {
	err := u.left.Close()
	if err2 := u.right.Close(); err == nil {
		err = err2
	}
	return err
}

// nljOp is the nested-loop join fallback for predicates without an
// equi-conjunct: the right side materializes once, the left streams, and
// output order is left-major exactly like rowops.NestedLoopJoin.
type nljOp struct {
	left, right Op
	pred        pairPred
	size        int

	in        *Batch
	rightRows []types.Row
	started   bool
	done      bool
	li        int // resume position in the current left batch
	transient bool
	arena     arena
}

func (o *nljOp) Open() error {
	o.in = getBatch(o.size)
	if err := o.left.Open(); err != nil {
		return err
	}
	return o.right.Open()
}

func (o *nljOp) Next(b *Batch) (bool, error) {
	if o.transient {
		o.arena.reset()
	}
	if !o.started {
		rows, err := drainChild(o.right, o.size)
		if err != nil {
			return false, err
		}
		o.rightRows = rows
		o.started = true
		o.in.Rows = o.in.Rows[:0]
	}
	out := b.own()
	for {
		if o.li >= len(o.in.Rows) {
			if o.done {
				break
			}
			ok, err := o.left.Next(o.in)
			if err != nil {
				return false, err
			}
			if !ok {
				o.done = true
				break
			}
			o.li = 0
		}
		for o.li < len(o.in.Rows) {
			l := o.in.Rows[o.li]
			o.li++
			for _, r := range o.rightRows {
				if o.pred.eval(l, r) {
					out = append(out, o.arena.concat(l, r))
				}
			}
			if len(out) >= o.size {
				b.emit(out)
				return true, nil
			}
		}
	}
	b.emit(out)
	return len(out) > 0, nil
}

func (o *nljOp) Close() error {
	putBatch(o.in)
	o.in = nil
	err := o.left.Close()
	if err2 := o.right.Close(); err == nil {
		err = err2
	}
	return err
}

// drainChild materializes a child pipeline (the breakers' build phase).
// Unlike Drain it does not Open or Close the child — the parent operator
// owns that lifecycle.
func drainChild(child Op, batchSize int) ([]types.Row, error) {
	b := getBatch(batchSize)
	defer putBatch(b)
	var out []types.Row
	for {
		ok, err := child.Next(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, b.Rows...)
	}
}
