package vexec

import (
	"fmt"
	"slices"

	"disco/internal/algebra"
	"disco/internal/rowops"
	"disco/internal/types"
)

// aggOp is the grouping/aggregation breaker. Because float sums are not
// associative, every mode accumulates each group's values in exact input
// order (never via merged partial states), so aggregate values are
// bit-identical in all modes:
//
//   - no grouping attributes: a single accumulator folded streamingly —
//     O(1) state, never spills, fully pipelined.
//   - sequential: streaming fold into the group table (grouped output in
//     first-seen order, exactly rowops.Aggregate).
//   - morsel-parallel (Workers > 1): partition-owner workers — each
//     scans the full materialized input in order, folding only groups
//     that hash to its partition and recording each group's first-seen
//     global row index; the final merge sorts groups by that index,
//     restoring the sequential first-seen output order exactly.
//   - Grace spill (input exceeds Options.MemBytes): raw input rows
//     partition to disk by group-key hash (a group never straddles
//     partitions), each partition folds in input order, outputs
//     concatenate partition-major (multiset-identical order, bit-exact
//     values).
type aggOp struct {
	child    Op
	inSchema *types.Schema
	groupBy  []algebra.Ref
	aggs     []algebra.AggSpec
	opts     Options
	stat     *NodeStat
	size     int

	started bool
	out     []types.Row
	pos     int
	spills  []*spillSet
}

func (o *aggOp) Open() error { return o.child.Open() }

func (o *aggOp) Next(b *Batch) (bool, error) {
	if !o.started {
		if err := o.build(); err != nil {
			return false, err
		}
		o.started = true
	}
	return emitSlice(o.out, &o.pos, o.size, b), nil
}

func (o *aggOp) Close() error {
	for _, s := range o.spills {
		s.cleanup()
	}
	o.spills = nil
	return o.child.Close()
}

func (o *aggOp) build() error {
	fold, err := newFoldState(o.inSchema, o.groupBy, o.aggs)
	if err != nil {
		return err
	}
	b := getBatch(o.size)
	defer putBatch(b)
	budget := o.opts.MemBytes
	w := o.opts.workers()

	// Pure streaming: no grouping attributes (single O(1) accumulator,
	// parallelism and spill are pointless), or sequential with no budget
	// to enforce.
	if len(o.groupBy) == 0 || (w <= 1 && budget <= 0) {
		for {
			ok, err := o.child.Next(b)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for _, r := range b.Rows {
				fold.add(r, 0)
			}
		}
		o.out = fold.finish()
		return nil
	}

	// No budget to enforce: the morsel workers can consume the child
	// incrementally instead of waiting for a full materialization.
	if budget <= 0 {
		return o.parallelAgg(startFeeder(o.child, o.size))
	}

	// Materialize the input, tracking bytes against the budget; the
	// moment it exceeds, redistribute everything into spill partitions
	// keyed by group hash and keep draining straight to disk. (A budget
	// precludes streaming into the workers: whether this input spills is
	// only known once it has been seen in full.)
	var rows []types.Row
	var bytes int64
	var sset *spillSet
	for {
		ok, err := o.child.Next(b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if sset != nil {
			for _, r := range b.Rows {
				if err := sset.add(fold.keyHash(r), r); err != nil {
					return err
				}
			}
			continue
		}
		rows = append(rows, b.Rows...)
		if budget > 0 {
			bytes += rowops.RowBytes(b.Rows)
			if bytes > budget {
				sset, err = newSpillSet(o.opts.SpillDir, 0)
				if err != nil {
					return err
				}
				o.spills = append(o.spills, sset)
				for _, r := range rows {
					if err := sset.add(fold.keyHash(r), r); err != nil {
						return err
					}
				}
				rows = nil
			}
		}
	}
	if sset != nil {
		o.stat.Spilled = true
		return o.spillAgg(sset)
	}
	if w > 1 {
		return o.parallelAgg(preloadedFeeder(rows))
	}
	for _, r := range rows {
		fold.add(r, 0)
	}
	o.out = fold.finish()
	return nil
}

// parallelAgg: partition-owner folding over the feeder's input stream
// (live when no spill budget constrains the build, preloaded otherwise).
func (o *aggOp) parallelAgg(in *streamFeeder) error {
	w := o.opts.workers()
	folds := make([]*foldState, w)
	errs := make([]error, w)
	runWorkers(w, func(p int) {
		f, _ := newFoldState(o.inSchema, o.groupBy, o.aggs)
		f.owner, f.ownerOf = p, w
		i := 0
		for {
			rows, err := in.waitFor(i + 1)
			if err != nil {
				errs[p] = err
				return
			}
			if i >= len(rows) {
				break
			}
			for ; i < len(rows); i++ {
				f.add(rows[i], i)
			}
		}
		folds[p] = f
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var all []*foldGroup
	for _, f := range folds {
		all = append(all, f.order...)
	}
	slices.SortFunc(all, func(a, b *foldGroup) int { return a.first - b.first })
	o.out = renderGroups(all, o.aggs)
	return nil
}

// spillAgg folds each disk partition independently, in partition order.
func (o *aggOp) spillAgg(sset *spillSet) error {
	for p := 0; p < spillFanout; p++ {
		sr, err := sset.parts[p].startRead()
		if err != nil {
			return err
		}
		f, err := newFoldState(o.inSchema, o.groupBy, o.aggs)
		if err != nil {
			return err
		}
		for {
			r, ok, err := sr.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			f.add(r, 0)
		}
		o.out = append(o.out, renderGroups(f.order, o.aggs)...)
	}
	return nil
}

// foldGroup is one group under accumulation.
type foldGroup struct {
	key    types.Row
	states []rowops.AggState
	first  int // first-seen global row index (parallel merge order)
}

// foldState replicates rowops.Aggregate's accumulation loop
// incrementally: same key encoding, same first-seen ordering, same
// AggState arithmetic — streaming batches through it yields exactly the
// reference output. With owner/ownerOf set it becomes a partition-owner
// fold: rows whose group hash belongs to another partition are skipped
// (but still encoded, preserving the full-scan input ordering).
type foldState struct {
	gpos, apos []int
	aggs       []algebra.AggSpec
	groups     map[string]*foldGroup
	order      []*foldGroup
	enc        rowops.KeyEncoder
	owner      int
	ownerOf    int // 0 = own everything (sequential)
}

func newFoldState(schema *types.Schema, groupBy []algebra.Ref, aggs []algebra.AggSpec) (*foldState, error) {
	f := &foldState{
		gpos:   make([]int, len(groupBy)),
		apos:   make([]int, len(aggs)),
		aggs:   aggs,
		groups: make(map[string]*foldGroup),
	}
	for i, g := range groupBy {
		pos, ok := algebra.RefIndex(schema, g)
		if !ok {
			return nil, fmt.Errorf("vexec: unknown group-by attribute %s", g)
		}
		f.gpos[i] = pos
	}
	for i, a := range aggs {
		if a.Star {
			f.apos[i] = -1
			continue
		}
		pos, ok := algebra.RefIndex(schema, a.Attr)
		if !ok {
			return nil, fmt.Errorf("vexec: unknown aggregate attribute %s", a.Attr)
		}
		f.apos[i] = pos
	}
	return f, nil
}

// keyHash encodes the row's grouping values and hashes them (the spill
// and partition-owner distribution key).
func (f *foldState) keyHash(r types.Row) uint64 {
	f.enc.Reset()
	for _, p := range f.gpos {
		f.enc.Constant(r[p])
	}
	return fnvBytes(f.enc.Bytes())
}

// add folds one row; idx is its global input index (first-seen order for
// the parallel merge; sequential callers pass 0).
func (f *foldState) add(r types.Row, idx int) {
	f.enc.Reset()
	for _, p := range f.gpos {
		f.enc.Constant(r[p])
	}
	if f.ownerOf > 0 && int(fnvBytes(f.enc.Bytes())%uint64(f.ownerOf)) != f.owner {
		return
	}
	g, ok := f.groups[string(f.enc.Bytes())]
	if !ok {
		key := make(types.Row, len(f.gpos))
		for i, p := range f.gpos {
			key[i] = r[p]
		}
		g = &foldGroup{key: key, states: rowops.NewAggStates(f.aggs), first: idx}
		f.groups[string(f.enc.Bytes())] = g
		f.order = append(f.order, g)
	}
	for i := range f.aggs {
		v := types.Null
		if f.apos[i] >= 0 {
			v = r[f.apos[i]]
		}
		g.states[i].Add(v)
	}
}

// finish renders the groups in first-seen order, including the
// zero-group row an ungrouped aggregate over empty input produces.
func (f *foldState) finish() []types.Row {
	if len(f.gpos) == 0 && len(f.order) == 0 {
		f.order = append(f.order, &foldGroup{key: types.Row{}, states: rowops.NewAggStates(f.aggs)})
	}
	return renderGroups(f.order, f.aggs)
}

func renderGroups(groups []*foldGroup, aggs []algebra.AggSpec) []types.Row {
	out := make([]types.Row, 0, len(groups))
	for _, g := range groups {
		row := append(types.Row(nil), g.key...)
		for i := range aggs {
			row = append(row, g.states[i].Result())
		}
		out = append(out, row)
	}
	return out
}
