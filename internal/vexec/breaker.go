package vexec

import (
	"slices"

	"disco/internal/algebra"
	"disco/internal/rowops"
	"disco/internal/types"
)

// This file holds the two breakers without a spill path: sort and
// duplicate elimination. Both materialize their input (they must), and
// both produce exactly the sequential reference order under any worker
// count — see the package comment's determinism contract.

// sortOp materializes, sorts and streams. Workers > 1 stable-sorts
// contiguous chunks in parallel and merges pairwise with left-chunk tie
// priority, which reproduces the sequential stable sort bit for bit.
type sortOp struct {
	child  Op
	schema *types.Schema
	keys   []algebra.SortKey
	opts   Options
	size   int

	started bool
	rows    []types.Row
	pos     int
}

func (s *sortOp) Open() error { return s.child.Open() }

func (s *sortOp) Next(b *Batch) (bool, error) {
	if !s.started {
		if err := s.build(); err != nil {
			return false, err
		}
		s.started = true
	}
	return emitSlice(s.rows, &s.pos, s.size, b), nil
}

// emitSlice streams a materialized result in aliasing batches; it is the
// common drain of every breaker.
func emitSlice(rows []types.Row, pos *int, size int, b *Batch) bool {
	if *pos >= len(rows) {
		b.Rows = nil
		return false
	}
	n := len(rows) - *pos
	if n > size {
		n = size
	}
	b.Rows = rows[*pos : *pos+n]
	*pos += n
	return true
}

func (s *sortOp) build() error {
	rows, err := drainChild(s.child, s.size)
	if err != nil {
		return err
	}
	cmp, err := rowops.CompileComparator(s.schema, s.keys)
	if err != nil {
		return err
	}
	w := s.opts.workers()
	if w <= 1 || len(rows) < 2*morselRows {
		slices.SortStableFunc(rows, cmp.Compare)
		s.rows = rows
		return nil
	}
	s.rows = parallelStableSort(rows, cmp, w)
	return nil
}

func (s *sortOp) Close() error { return s.child.Close() }

// parallelStableSort stable-sorts w contiguous chunks concurrently and
// merges adjacent pairs (also concurrently) until one run remains. A
// stable merge that prefers the left run on ties yields exactly the
// sequential stable sort's order.
func parallelStableSort(rows []types.Row, cmp rowops.RowComparator, w int) []types.Row {
	chunks := chunkBounds(len(rows), w)
	runWorkers(len(chunks), func(i int) {
		c := chunks[i]
		slices.SortStableFunc(rows[c[0]:c[1]], cmp.Compare)
	})
	buf := make([]types.Row, len(rows))
	for len(chunks) > 1 {
		pairs := len(chunks) / 2
		next := make([][2]int, 0, (len(chunks)+1)/2)
		for p := 0; p < pairs; p++ {
			next = append(next, [2]int{chunks[2*p][0], chunks[2*p+1][1]})
		}
		if len(chunks)%2 == 1 {
			next = append(next, chunks[len(chunks)-1])
		}
		runWorkers(pairs, func(p int) {
			l, r := chunks[2*p], chunks[2*p+1]
			mergeStable(buf[l[0]:r[1]], rows[l[0]:l[1]], rows[r[0]:r[1]], cmp)
		})
		for p := 0; p < pairs; p++ {
			copy(rows[chunks[2*p][0]:chunks[2*p+1][1]], buf[chunks[2*p][0]:chunks[2*p+1][1]])
		}
		chunks = next
	}
	return rows
}

// mergeStable merges two sorted runs into dst, left run winning ties.
func mergeStable(dst, l, r []types.Row, cmp rowops.RowComparator) {
	i, j, k := 0, 0, 0
	for i < len(l) && j < len(r) {
		if cmp.Compare(l[i], r[j]) <= 0 {
			dst[k] = l[i]
			i++
		} else {
			dst[k] = r[j]
			j++
		}
		k++
	}
	k += copy(dst[k:], l[i:])
	copy(dst[k:], r[j:])
}

// dupElimOp removes duplicate rows keeping first occurrences in order.
// Sequentially it streams (the seen-set is the only state); with workers
// it materializes and uses partition-owner scanning: worker w encodes
// every row in order but only consults its own seen-set for rows hashing
// to its partition, recording survivors with their global index; a final
// index sort restores the exact first-seen order.
type dupElimOp struct {
	child Op
	opts  Options
	size  int

	// streaming state (workers <= 1)
	seen map[string]struct{}
	enc  rowops.KeyEncoder
	in   *Batch
	done bool

	// materialized state (workers > 1)
	started bool
	out     []types.Row
	pos     int
}

func (d *dupElimOp) Open() error {
	if d.opts.workers() <= 1 {
		d.seen = make(map[string]struct{})
		d.in = getBatch(d.size)
	}
	return d.child.Open()
}

func (d *dupElimOp) Next(b *Batch) (bool, error) {
	if d.opts.workers() > 1 {
		if !d.started {
			if err := d.buildParallel(); err != nil {
				return false, err
			}
			d.started = true
		}
		return emitSlice(d.out, &d.pos, d.size, b), nil
	}
	out := b.own()
	for !d.done {
		ok, err := d.child.Next(d.in)
		if err != nil {
			return false, err
		}
		if !ok {
			d.done = true
			break
		}
		for _, r := range d.in.Rows {
			d.enc.Reset()
			d.enc.Row(r)
			if _, dup := d.seen[string(d.enc.Bytes())]; dup {
				continue
			}
			d.seen[string(d.enc.Bytes())] = struct{}{}
			out = append(out, r)
		}
		if len(out) >= d.size/2 {
			b.emit(out)
			return true, nil
		}
	}
	b.emit(out)
	return len(out) > 0, nil
}

func (d *dupElimOp) buildParallel() error {
	// Workers consume the child's rows as the feeder publishes them —
	// the breaker no longer waits for the full input before scanning.
	// Each worker still encodes every row in global input order, so the
	// partition-owner determinism argument is unchanged.
	f := startFeeder(d.child, d.size)
	w := d.opts.workers()
	type survivor struct {
		row types.Row
		idx int
	}
	parts := make([][]survivor, w)
	errs := make([]error, w)
	runWorkers(w, func(p int) {
		var enc rowops.KeyEncoder
		seen := make(map[string]struct{})
		var mine []survivor
		i := 0
		for {
			rows, err := f.waitFor(i + 1)
			if err != nil {
				errs[p] = err
				return
			}
			if i >= len(rows) {
				break
			}
			for ; i < len(rows); i++ {
				r := rows[i]
				enc.Reset()
				enc.Row(r)
				if int(fnvBytes(enc.Bytes())%uint64(w)) != p {
					continue
				}
				if _, dup := seen[string(enc.Bytes())]; dup {
					continue
				}
				seen[string(enc.Bytes())] = struct{}{}
				mine = append(mine, survivor{row: r, idx: i})
			}
		}
		parts[p] = mine
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var all []survivor
	for _, p := range parts {
		all = append(all, p...)
	}
	slices.SortFunc(all, func(a, b survivor) int { return a.idx - b.idx })
	d.out = make([]types.Row, len(all))
	for i, s := range all {
		d.out[i] = s.row
	}
	return nil
}

func (d *dupElimOp) Close() error {
	putBatch(d.in)
	d.in = nil
	return d.child.Close()
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvBytes is the FNV-1a hash partition-owner breakers use to assign
// encoded keys to partitions.
func fnvBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}
