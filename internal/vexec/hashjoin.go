package vexec

import (
	"sync"
	"sync/atomic"

	"disco/internal/rowops"
	"disco/internal/types"
)

// hashJoinOp is the equi-join breaker. The right child is the build side
// and the left the probe side (matching rowops.HashJoin). Three modes:
//
//   - sequential in-memory: one hash table built in input order, probe
//     batches streamed through it — fully pipelined on the probe side
//     and bit-identical to the reference join.
//   - morsel-parallel in-memory (Workers > 1): the build table is
//     partitioned by hash across workers (each worker scans the full
//     build input in order, keeping its partition, so bucket lists stay
//     input-ordered); the probe side is split into morsels claimed off
//     an atomic cursor, each morsel's matches land in its own slot, and
//     slots concatenate in morsel order — still bit-identical.
//   - Grace spill (build side exceeds Options.MemBytes): both sides
//     partition to disk by join-key hash, partitions join independently
//     (recursing with the next hash window when one is still over
//     budget), and outputs concatenate partition-major — a
//     multiset-identical permutation.
type hashJoinOp struct {
	left, right Op
	lpos, rpos  int
	pred        pairPred
	// equiOnly short-circuits candidate verification when the predicate
	// is exactly the hashed equi conjunct: Constant.Equal on the two key
	// positions is what the compiled slot would compute (Equal is
	// symmetric, so conjunct orientation does not matter), minus the
	// slot loop and side dispatch.
	equiOnly bool
	opts     Options
	stat     *NodeStat
	size     int

	started bool
	// streaming probe state (sequential in-memory mode)
	streaming bool
	transient bool
	table     map[uint64][]types.Row
	in        *Batch
	done      bool
	arena     arena
	// materialized output (parallel and spill modes)
	out    []types.Row
	pos    int
	spills []*spillSet
}

func (o *hashJoinOp) Open() error {
	o.in = getBatch(o.size)
	if err := o.left.Open(); err != nil {
		return err
	}
	return o.right.Open()
}

func (o *hashJoinOp) Next(b *Batch) (bool, error) {
	if !o.started {
		if err := o.build(); err != nil {
			return false, err
		}
		o.started = true
	}
	if o.streaming {
		return o.probeStream(b)
	}
	return emitSlice(o.out, &o.pos, o.size, b), nil
}

func (o *hashJoinOp) Close() error {
	for _, s := range o.spills {
		s.cleanup()
	}
	o.spills = nil
	putBatch(o.in)
	o.in = nil
	err := o.left.Close()
	if err2 := o.right.Close(); err == nil {
		err = err2
	}
	return err
}

// build drains the build (right) side, switching to spill partitioning
// the moment the tracked bytes exceed the budget, then picks the probe
// mode.
func (o *hashJoinOp) build() error {
	b := getBatch(o.size)
	defer putBatch(b)
	budget := o.opts.MemBytes
	var buildRows []types.Row
	var bytes int64
	var bset *spillSet
	for {
		ok, err := o.right.Next(b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if bset != nil {
			for _, r := range b.Rows {
				if err := bset.add(rowops.JoinKeyHash(r[o.rpos]), r); err != nil {
					return err
				}
			}
			continue
		}
		buildRows = append(buildRows, b.Rows...)
		if budget > 0 {
			bytes += rowops.RowBytes(b.Rows)
			if bytes > budget {
				bset, err = newSpillSet(o.opts.SpillDir, 0)
				if err != nil {
					return err
				}
				o.spills = append(o.spills, bset)
				for _, r := range buildRows {
					if err := bset.add(rowops.JoinKeyHash(r[o.rpos]), r); err != nil {
						return err
					}
				}
				buildRows = nil
			}
		}
	}
	if bset != nil {
		o.stat.Spilled = true
		return o.spillJoin(bset)
	}
	if o.opts.workers() > 1 {
		return o.parallelJoin(buildRows)
	}
	o.table = buildSeqTable(buildRows, o.rpos)
	o.streaming = true
	return nil
}

// match verifies one candidate pair from a hash bucket.
func (o *hashJoinOp) match(l, r types.Row) bool {
	if o.equiOnly {
		return l[o.lpos].Equal(r[o.rpos])
	}
	return o.pred.eval(l, r)
}

func buildSeqTable(rows []types.Row, rpos int) map[uint64][]types.Row {
	t := make(map[uint64][]types.Row, len(rows))
	for _, r := range rows {
		h := rowops.JoinKeyHash(r[rpos])
		t[h] = append(t[h], r)
	}
	return t
}

// probeStream pipelines probe batches through the in-memory table.
func (o *hashJoinOp) probeStream(b *Batch) (bool, error) {
	if o.transient {
		o.arena.reset()
	}
	out := b.own()
	for !o.done {
		ok, err := o.left.Next(o.in)
		if err != nil {
			return false, err
		}
		if !ok {
			o.done = true
			break
		}
		if o.equiOnly {
			for _, l := range o.in.Rows {
				lk := l[o.lpos]
				for _, r := range o.table[rowops.JoinKeyHash(lk)] {
					if lk.Equal(r[o.rpos]) {
						out = append(out, o.arena.concat(l, r))
					}
				}
			}
		} else {
			for _, l := range o.in.Rows {
				for _, r := range o.table[rowops.JoinKeyHash(l[o.lpos])] {
					if o.pred.eval(l, r) {
						out = append(out, o.arena.concat(l, r))
					}
				}
			}
		}
		if len(out) >= o.size/2 {
			b.emit(out)
			return true, nil
		}
	}
	b.emit(out)
	return len(out) > 0, nil
}

// parallelJoin is the morsel-parallel in-memory mode.
func (o *hashJoinOp) parallelJoin(buildRows []types.Row) error {
	w := o.opts.workers()
	// Hash the build keys once, in parallel morsels (disjoint ranges).
	hashes := make([]uint64, len(buildRows))
	hq := newMorselQueue(len(buildRows))
	runWorkers(w, func(int) {
		for {
			lo, hi, _, ok := hq.claim()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				hashes[i] = rowops.JoinKeyHash(buildRows[i][o.rpos])
			}
		}
	})
	// Partition-owner build: worker p scans the full build input in
	// order, keeping rows hashing to its partition — bucket lists are
	// input-ordered exactly like the sequential table's.
	tables := make([]map[uint64][]types.Row, w)
	runWorkers(w, func(p int) {
		t := make(map[uint64][]types.Row, len(buildRows)/w+1)
		for i, r := range buildRows {
			if int(hashes[i]%uint64(w)) == p {
				t[hashes[i]] = append(t[hashes[i]], r)
			}
		}
		tables[p] = t
	})
	// Morsel-driven probe over the probe side as it streams in: workers
	// claim fixed-width morsel ordinals off an atomic cursor and wait for
	// the feeder to publish each morsel's row range, so probing overlaps
	// the probe child's own execution. Output slots still concatenate in
	// morsel order — the merge stays deterministic even though the total
	// morsel count is unknown until the stream ends.
	f := startFeeder(o.left, o.size)
	var next atomic.Int64
	var outsMu sync.Mutex
	var outs [][]types.Row
	errs := make([]error, w)
	arenas := make([]arena, w)
	runWorkers(w, func(wk int) {
		a := &arenas[wk]
		for {
			idx := int(next.Add(1)) - 1
			lo := idx * morselRows
			probeRows, err := f.waitFor(lo + morselRows)
			if err != nil {
				errs[wk] = err
				return
			}
			if lo >= len(probeRows) {
				return
			}
			hi := lo + morselRows
			if hi > len(probeRows) {
				hi = len(probeRows)
			}
			var slot []types.Row
			for i := lo; i < hi; i++ {
				l := probeRows[i]
				h := rowops.JoinKeyHash(l[o.lpos])
				for _, r := range tables[h%uint64(w)][h] {
					if o.match(l, r) {
						slot = append(slot, a.concat(l, r))
					}
				}
			}
			outsMu.Lock()
			for len(outs) <= idx {
				outs = append(outs, nil)
			}
			outs[idx] = slot
			outsMu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	total := 0
	for _, s := range outs {
		total += len(s)
	}
	o.out = make([]types.Row, 0, total)
	for _, s := range outs {
		o.out = append(o.out, s...)
	}
	return nil
}

// spillJoin partitions the probe side to disk and joins partition pairs.
func (o *hashJoinOp) spillJoin(bset *spillSet) error {
	pset, err := newSpillSet(o.opts.SpillDir, 0)
	if err != nil {
		return err
	}
	o.spills = append(o.spills, pset)
	b := getBatch(o.size)
	defer putBatch(b)
	for {
		ok, err := o.left.Next(b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, l := range b.Rows {
			if err := pset.add(rowops.JoinKeyHash(l[o.lpos]), l); err != nil {
				return err
			}
		}
	}
	for p := 0; p < spillFanout; p++ {
		if err := o.joinPartition(bset, pset, p); err != nil {
			return err
		}
	}
	return nil
}

// joinPartition joins one build/probe partition pair, repartitioning
// with the next hash window when the build partition alone still
// exceeds the budget.
func (o *hashJoinOp) joinPartition(bset, pset *spillSet, p int) error {
	build, err := bset.readAll(p)
	if err != nil {
		return err
	}
	level := bset.level
	if level+1 < maxSpillLevels && o.opts.MemBytes > 0 && rowops.RowBytes(build) > o.opts.MemBytes {
		bsub, err := newSpillSet(o.opts.SpillDir, level+1)
		if err != nil {
			return err
		}
		o.spills = append(o.spills, bsub)
		for _, r := range build {
			if err := bsub.add(rowops.JoinKeyHash(r[o.rpos]), r); err != nil {
				return err
			}
		}
		build = nil
		psub, err := newSpillSet(o.opts.SpillDir, level+1)
		if err != nil {
			return err
		}
		o.spills = append(o.spills, psub)
		pr, err := pset.parts[p].startRead()
		if err != nil {
			return err
		}
		for {
			l, ok, err := pr.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := psub.add(rowops.JoinKeyHash(l[o.lpos]), l); err != nil {
				return err
			}
		}
		for sp := 0; sp < spillFanout; sp++ {
			if err := o.joinPartition(bsub, psub, sp); err != nil {
				return err
			}
		}
		return nil
	}
	table := buildSeqTable(build, o.rpos)
	pr, err := pset.parts[p].startRead()
	if err != nil {
		return err
	}
	for {
		l, ok, err := pr.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, r := range table[rowops.JoinKeyHash(l[o.lpos])] {
			if o.match(l, r) {
				o.out = append(o.out, o.arena.concat(l, r))
			}
		}
	}
}
