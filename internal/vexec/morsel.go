package vexec

import (
	"sync"
	"sync/atomic"
)

// morselRows is the number of input rows one morsel covers. Morsels are
// the work-stealing unit inside pipeline breakers: workers claim them
// dynamically off a shared atomic cursor (arXiv 2501.08896's
// morsel-driven scheduling), while every per-morsel output lands in a
// slot indexed by the morsel's position so merges are deterministic no
// matter which worker ran which morsel.
const morselRows = 1024

// morselQueue hands out index ranges [lo,hi) over a total of n rows.
type morselQueue struct {
	next  atomic.Int64
	total int
}

func newMorselQueue(total int) *morselQueue {
	return &morselQueue{total: total}
}

// count is the number of morsels the queue will hand out in total.
func (q *morselQueue) count() int {
	return (q.total + morselRows - 1) / morselRows
}

// claim returns the next unclaimed morsel: its row range and its ordinal
// (the deterministic output slot).
func (q *morselQueue) claim() (lo, hi, idx int, ok bool) {
	i := int(q.next.Add(1)) - 1
	lo = i * morselRows
	if lo >= q.total {
		return 0, 0, 0, false
	}
	hi = lo + morselRows
	if hi > q.total {
		hi = q.total
	}
	return lo, hi, i, true
}

// runWorkers runs fn(0..n-1) on n goroutines (the calling goroutine is
// worker 0) and waits for all of them.
func runWorkers(n int, fn func(w int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// chunkBounds splits n items into at most w contiguous, near-equal
// chunks (the parallel sort's partitioning; never empty chunks).
func chunkBounds(n, w int) [][2]int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
