package costlang

import (
	"fmt"
	"strings"

	"disco/internal/stats"
	"disco/internal/types"
)

// Expr is a node of a formula expression tree.
type Expr interface {
	// String renders the expression in source syntax.
	String() string
}

// NumLit is a numeric literal.
type NumLit float64

// String implements Expr.
func (n NumLit) String() string { return types.Float(float64(n)).String() }

// StrLit is a string literal.
type StrLit string

// String implements Expr.
func (s StrLit) String() string { return types.Str(string(s)).String() }

// PathRef is a dotted parameter reference such as C.CountObject or
// Employee.salary.Min; a bare name has one segment. Resolution happens at
// evaluation time against the cost environment (paper Figure 7 naming
// scheme).
type PathRef []string

// String implements Expr.
func (p PathRef) String() string { return strings.Join(p, ".") }

// BinaryOp enumerates arithmetic operators.
type BinaryOp byte

// Arithmetic operators of the formula grammar.
const (
	OpAdd BinaryOp = '+'
	OpSub BinaryOp = '-'
	OpMul BinaryOp = '*'
	OpDiv BinaryOp = '/'
)

// Binary is L op R.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// Neg is unary minus.
type Neg struct{ X Expr }

// String implements Expr.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Call invokes a builtin or wrapper-defined function.
type Call struct {
	Name string
	Args []Expr
}

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Assign is one `name = expr;` statement in a rule body (or a `let`).
type Assign struct {
	Name string
	Expr Expr
}

// String renders the assignment.
func (a Assign) String() string { return a.Name + " = " + a.Expr.String() }

// ValueTerm is the value position of a rule-head comparison: either a
// constant or an identifier (classified as variable or constant later).
type ValueTerm struct {
	Ident  string // non-empty for identifier terms
	Forced bool   // identifier written as ?name — always a variable
	Const  types.Constant
}

// IsIdent reports whether the term is an identifier.
func (v ValueTerm) IsIdent() bool { return v.Ident != "" }

// String renders the term.
func (v ValueTerm) String() string {
	if v.Forced {
		return "?" + v.Ident
	}
	if v.Ident != "" {
		return v.Ident
	}
	return v.Const.String()
}

// HeadCmp is an attr-op-value comparison in a rule head, e.g.
// salary = V.
type HeadCmp struct {
	Attr       string
	AttrForced bool // attribute written as ?name
	Op         stats.CmpOp
	Value      ValueTerm
}

// String renders the comparison.
func (h HeadCmp) String() string {
	attr := h.Attr
	if h.AttrForced {
		attr = "?" + attr
	}
	return attr + " " + h.Op.String() + " " + h.Value.String()
}

// HeadTerm is one argument of a rule head: either a plain identifier
// (collection name or variable) or a comparison.
type HeadTerm struct {
	Ident  string
	Forced bool // ?name
	Cmp    *HeadCmp
}

// String renders the term.
func (h HeadTerm) String() string {
	if h.Cmp != nil {
		return h.Cmp.String()
	}
	if h.Forced {
		return "?" + h.Ident
	}
	return h.Ident
}

// RuleDef is one parsed cost rule: head operator, head arguments, local
// lets, and result assignments, in source order.
type RuleDef struct {
	Op      string // operator name, lower-cased
	Args    []HeadTerm
	Lets    []Assign
	Assigns []Assign
	Line    int
}

// String renders the rule in source syntax.
func (r *RuleDef) String() string {
	var b strings.Builder
	b.WriteString(r.Op)
	b.WriteByte('(')
	for i, a := range r.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(") {\n")
	for _, l := range r.Lets {
		b.WriteString("  let " + l.String() + ";\n")
	}
	for _, a := range r.Assigns {
		b.WriteString("  " + a.String() + ";\n")
	}
	b.WriteString("}")
	return b.String()
}

// FuncDef is a wrapper-defined function: def name(p1, p2) = expr;
type FuncDef struct {
	Name   string
	Params []string
	Body   Expr
	Line   int
}

// String renders the definition.
func (f *FuncDef) String() string {
	return "def " + f.Name + "(" + strings.Join(f.Params, ", ") + ") = " + f.Body.String() + ";"
}

// File is a parsed cost-rule source: global lets, function definitions,
// and rules, each in source order (source order is the tiebreak for rules
// matching at the same specificity, paper §3.3.2).
type File struct {
	Lets  []Assign
	Funcs []*FuncDef
	Rules []*RuleDef
}

// String renders the whole file.
func (f *File) String() string {
	var b strings.Builder
	for _, l := range f.Lets {
		b.WriteString("let " + l.String() + ";\n")
	}
	for _, fn := range f.Funcs {
		b.WriteString(fn.String() + "\n")
	}
	for _, r := range f.Rules {
		b.WriteString(r.String() + "\n")
	}
	return b.String()
}

// ResultVars lists the assignable result variables of the grammar
// (Figure 9) plus ObjectSize, which intermediate results carry. Assignments
// to other names inside a rule body are rejected by the parser unless they
// were introduced by a let.
var ResultVars = []string{"TotalTime", "TimeFirst", "TimeNext", "CountObject", "TotalSize", "ObjectSize"}

// IsResultVar reports whether name is one of the assignable results
// (case-insensitive).
func IsResultVar(name string) bool {
	for _, v := range ResultVars {
		if strings.EqualFold(v, name) {
			return true
		}
	}
	return false
}

// CanonicalResultVar normalizes the case of a result variable name;
// unknown names are returned unchanged.
func CanonicalResultVar(name string) string {
	for _, v := range ResultVars {
		if strings.EqualFold(v, name) {
			return v
		}
	}
	return name
}
