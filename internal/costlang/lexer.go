// Package costlang implements the cost communication language of paper §3:
// the declarative rule language in which a wrapper exports cost and size
// formulas to the mediator. It provides the lexer, the AST, and the parser
// for the Figure 9 grammar, extended with:
//
//   - all comparison operators in rule-head predicates (the paper grammar
//     has '=' only),
//   - `let name = expr;` wrapper-local constants and per-rule locals
//     (paper §3.3.1 mentions PageSize = 4000),
//   - `def name(args) = expr;` wrapper-defined functions (paper §3.3.2
//     mentions an ad-hoc selectivity(A, V) function),
//   - `?name` to force an identifier to be a free variable regardless of
//     the registered schema (head identifiers are otherwise classified as
//     collection/attribute constants or variables at integration time).
//
// Compilation to bytecode and evaluation live in internal/costvm.
package costlang

import (
	"fmt"
	"strings"
)

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokComma
	TokSemi
	TokDot
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokLT
	TokLE
	TokGT
	TokGE
	TokNE  // <> or !=
	TokEQQ // == (alias for = in predicate positions)
	TokQuestion
	TokLet
	TokDef
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokDot:
		return "'.'"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokLT:
		return "'<'"
	case TokLE:
		return "'<='"
	case TokGT:
		return "'>'"
	case TokGE:
		return "'>='"
	case TokNE:
		return "'<>'"
	case TokEQQ:
		return "'=='"
	case TokQuestion:
		return "'?'"
	case TokLet:
		return "'let'"
	case TokDef:
		return "'def'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Num  float64
	Line int
	Col  int
}

// Pos renders line:col for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

// lexer scans cost-rule source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("costlang: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '#':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		tok.Text = l.src[start:l.off]
		switch strings.ToLower(tok.Text) {
		case "let":
			tok.Kind = TokLet
		case "def":
			tok.Kind = TokDef
		default:
			tok.Kind = TokIdent
		}
		return tok, nil

	case isDigit(c) || (c == '.' && l.off+1 < len(l.src) && isDigit(l.src[l.off+1])):
		start := l.off
		seenDot, seenExp := false, false
		for l.off < len(l.src) {
			c := l.peekByte()
			switch {
			case isDigit(c):
				l.advance()
			case c == '.' && !seenDot && !seenExp:
				// Only treat '.' as part of the number when a digit
				// follows, so "3.Foo" lexes as 3 . Foo.
				if l.off+1 < len(l.src) && isDigit(l.src[l.off+1]) {
					seenDot = true
					l.advance()
				} else {
					goto done
				}
			case (c == 'e' || c == 'E') && !seenExp:
				if l.off+1 < len(l.src) && (isDigit(l.src[l.off+1]) ||
					((l.src[l.off+1] == '+' || l.src[l.off+1] == '-') && l.off+2 < len(l.src) && isDigit(l.src[l.off+2]))) {
					seenExp = true
					l.advance()
					if l.peekByte() == '+' || l.peekByte() == '-' {
						l.advance()
					}
				} else {
					goto done
				}
			default:
				goto done
			}
		}
	done:
		tok.Kind = TokNumber
		tok.Text = l.src[start:l.off]
		if _, err := fmt.Sscanf(tok.Text, "%g", &tok.Num); err != nil {
			return tok, l.errf("bad number %q", tok.Text)
		}
		return tok, nil

	case c == '"' || c == '\'':
		quote := l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return tok, l.errf("unterminated string")
			}
			ch := l.advance()
			if ch == quote {
				break
			}
			if ch == '\\' && l.off < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"', '\'':
					sb.WriteByte(esc)
				default:
					return tok, l.errf("bad escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = sb.String()
		return tok, nil
	}

	l.advance()
	switch c {
	case '(':
		tok.Kind = TokLParen
	case ')':
		tok.Kind = TokRParen
	case '{':
		tok.Kind = TokLBrace
	case '}':
		tok.Kind = TokRBrace
	case ',':
		tok.Kind = TokComma
	case ';':
		tok.Kind = TokSemi
	case '.':
		tok.Kind = TokDot
	case '+':
		tok.Kind = TokPlus
	case '-':
		tok.Kind = TokMinus
	case '*':
		tok.Kind = TokStar
	case '/':
		tok.Kind = TokSlash
	case '?':
		tok.Kind = TokQuestion
	case '=':
		if l.peekByte() == '=' {
			l.advance()
			tok.Kind = TokEQQ
		} else {
			tok.Kind = TokAssign
		}
	case '<':
		switch l.peekByte() {
		case '=':
			l.advance()
			tok.Kind = TokLE
		case '>':
			l.advance()
			tok.Kind = TokNE
		default:
			tok.Kind = TokLT
		}
	case '>':
		if l.peekByte() == '=' {
			l.advance()
			tok.Kind = TokGE
		} else {
			tok.Kind = TokGT
		}
	case '!':
		if l.peekByte() == '=' {
			l.advance()
			tok.Kind = TokNE
		} else {
			return tok, l.errf("unexpected '!'")
		}
	default:
		return tok, l.errf("unexpected character %q", string(c))
	}
	tok.Text = tok.Kind.String()
	return tok, nil
}

// Lex tokenizes src fully; mainly a test and tooling convenience.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
