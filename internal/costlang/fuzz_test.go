package costlang

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics drives the parser with adversarial random inputs:
// it must return an error or a file, never panic. Random bytes are mixed
// with grammar fragments so the generator reaches deep parser states.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"scan", "select", "(", ")", "{", "}", ";", "=", "<", ">", "<=",
		"TotalTime", "CountObject", "let", "def", ",", ".", "C", "A", "V",
		"1", "2.5", `"s"`, "+", "-", "*", "/", "exp", "?", "#c\n", "/*", "*/",
	}
	f := func(picks []uint8) bool {
		var src []byte
		for _, p := range picks {
			src = append(src, fragments[int(p)%len(fragments)]...)
			src = append(src, ' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(string(src)) // error or success both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzParse is the native fuzz target CI smoke-runs on every PR
// (go test -fuzz=FuzzParse -fuzztime=30s). Beyond never panicking, a
// successful parse must pretty-print to a source the parser accepts
// again — the round-trip property the registry relies on when it
// re-integrates wrapper rules.
func FuzzParse(f *testing.F) {
	f.Add(`scan(employee) { TotalTime = 120 + Employee.TotalSize * 12; }`)
	f.Add(`select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  TotalSize   = CountObject * C.ObjectSize;
  TotalTime   = C.TotalTime + C.TotalSize * 25;
}`)
	f.Add(`join(C1, C2) { TotalTime = C1.TotalTime + C2.TotalTime ? 1 : 2; }`)
	f.Add(`#comment
/* block */ scan(x) { a = .5e3 <= 2 ; }`)
	f.Add(`"unterminated`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil || file == nil {
			return
		}
		if _, err := Parse(file.String()); err != nil {
			t.Fatalf("accepted source %q pretty-prints to unparseable %q: %v", src, file.String(), err)
		}
	})
}

// TestLexNeverPanics feeds raw random bytes to the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Lex(string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
