package costlang

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics drives the parser with adversarial random inputs:
// it must return an error or a file, never panic. Random bytes are mixed
// with grammar fragments so the generator reaches deep parser states.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"scan", "select", "(", ")", "{", "}", ";", "=", "<", ">", "<=",
		"TotalTime", "CountObject", "let", "def", ",", ".", "C", "A", "V",
		"1", "2.5", `"s"`, "+", "-", "*", "/", "exp", "?", "#c\n", "/*", "*/",
	}
	f := func(picks []uint8) bool {
		var src []byte
		for _, p := range picks {
			src = append(src, fragments[int(p)%len(fragments)]...)
			src = append(src, ' ')
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Parse(string(src)) // error or success both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLexNeverPanics feeds raw random bytes to the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = Lex(string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
