package costlang_test

import (
	"fmt"

	"disco/internal/costlang"
)

// The paper's Figure 8 select rule, parsed and printed back.
func ExampleParse() {
	file, err := costlang.Parse(`
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  TotalSize   = CountObject * C.ObjectSize;
  TotalTime   = C.TotalTime + C.TotalSize * 25;
}`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(file)
	// Output:
	// select(C, A = V) {
	//   CountObject = (C.CountObject * selectivity(A, V));
	//   TotalSize = (CountObject * C.ObjectSize);
	//   TotalTime = (C.TotalTime + (C.TotalSize * 25));
	// }
}

func ExampleParseExpr() {
	e, err := costlang.ParseExpr(`IO * CountPage * (1 - exp(-1 * (k / CountPage)))`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(e)
	// Output:
	// ((IO * CountPage) * (1 - exp(((-1) * (k / CountPage)))))
}
