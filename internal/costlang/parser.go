package costlang

import (
	"fmt"
	"strings"

	"disco/internal/stats"
	"disco/internal/types"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lex *lexer
	tok Token // current token
}

// Parse parses a cost-rule source file.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	file := &File{}
	for p.tok.Kind != TokEOF {
		switch p.tok.Kind {
		case TokLet:
			a, err := p.parseLet()
			if err != nil {
				return nil, err
			}
			file.Lets = append(file.Lets, a)
		case TokDef:
			f, err := p.parseDef()
			if err != nil {
				return nil, err
			}
			file.Funcs = append(file.Funcs, f)
		case TokIdent:
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			file.Rules = append(file.Rules, r)
		default:
			return nil, p.errf("expected rule, 'let', or 'def', got %s", p.tok.Kind)
		}
	}
	return file, nil
}

// ParseExpr parses a standalone expression; used by tests and the costc
// tool.
func ParseExpr(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("trailing input after expression")
	}
	return e, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("costlang: %s: %s", p.tok.Pos(), fmt.Sprintf(format, args...))
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return p.tok, p.errf("expected %s, got %s", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.advance()
}

// parseLet parses `let name = expr ;`.
func (p *parser) parseLet() (Assign, error) {
	if _, err := p.expect(TokLet); err != nil {
		return Assign{}, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return Assign{}, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return Assign{}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return Assign{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return Assign{}, err
	}
	return Assign{Name: name.Text, Expr: e}, nil
}

// parseDef parses `def name(p1, p2) = expr ;`.
func (p *parser) parseDef() (*FuncDef, error) {
	line := p.tok.Line
	if _, err := p.expect(TokDef); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	for p.tok.Kind != TokRParen {
		id, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, id.Text)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &FuncDef{Name: name.Text, Params: params, Body: body, Line: line}, nil
}

// parseRule parses `op(args) { body }`.
func (p *parser) parseRule() (*RuleDef, error) {
	line := p.tok.Line
	op, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	rule := &RuleDef{Op: strings.ToLower(op.Text), Line: line}
	for p.tok.Kind != TokRParen {
		term, err := p.parseHeadTerm()
		if err != nil {
			return nil, err
		}
		rule.Args = append(rule.Args, term)
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokLet {
			a, err := p.parseLet()
			if err != nil {
				return nil, err
			}
			rule.Lets = append(rule.Lets, a)
			continue
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if !IsResultVar(name.Text) {
			return nil, fmt.Errorf("costlang: %d:%d: %q is not an assignable result (want one of %s; use 'let' for locals)",
				name.Line, name.Col, name.Text, strings.Join(ResultVars, ", "))
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		rule.Assigns = append(rule.Assigns, Assign{Name: CanonicalResultVar(name.Text), Expr: e})
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	if len(rule.Assigns) == 0 {
		return nil, fmt.Errorf("costlang: rule %s at line %d assigns no result variable", rule.Op, line)
	}
	return rule, nil
}

// parseHeadTerm parses either an identifier or an attr-op-value comparison.
func (p *parser) parseHeadTerm() (HeadTerm, error) {
	forced := false
	if p.tok.Kind == TokQuestion {
		forced = true
		if err := p.advance(); err != nil {
			return HeadTerm{}, err
		}
	}
	id, err := p.expect(TokIdent)
	if err != nil {
		return HeadTerm{}, err
	}
	op, isCmp := headCmpOp(p.tok.Kind)
	if !isCmp {
		return HeadTerm{Ident: id.Text, Forced: forced}, nil
	}
	if err := p.advance(); err != nil {
		return HeadTerm{}, err
	}
	val, err := p.parseValueTerm()
	if err != nil {
		return HeadTerm{}, err
	}
	return HeadTerm{Cmp: &HeadCmp{Attr: id.Text, AttrForced: forced, Op: op, Value: val}}, nil
}

func headCmpOp(k TokKind) (stats.CmpOp, bool) {
	switch k {
	case TokAssign, TokEQQ:
		return stats.CmpEQ, true
	case TokNE:
		return stats.CmpNE, true
	case TokLT:
		return stats.CmpLT, true
	case TokLE:
		return stats.CmpLE, true
	case TokGT:
		return stats.CmpGT, true
	case TokGE:
		return stats.CmpGE, true
	default:
		return 0, false
	}
}

// parseValueTerm parses the value side of a head comparison: a number,
// string, or identifier (optionally ?forced).
func (p *parser) parseValueTerm() (ValueTerm, error) {
	switch p.tok.Kind {
	case TokQuestion:
		if err := p.advance(); err != nil {
			return ValueTerm{}, err
		}
		id, err := p.expect(TokIdent)
		if err != nil {
			return ValueTerm{}, err
		}
		return ValueTerm{Ident: id.Text, Forced: true}, nil
	case TokIdent:
		id := p.tok
		if err := p.advance(); err != nil {
			return ValueTerm{}, err
		}
		return ValueTerm{Ident: id.Text}, nil
	case TokNumber:
		n := p.tok.Num
		if err := p.advance(); err != nil {
			return ValueTerm{}, err
		}
		return ValueTerm{Const: numConst(n)}, nil
	case TokMinus:
		if err := p.advance(); err != nil {
			return ValueTerm{}, err
		}
		n, err := p.expect(TokNumber)
		if err != nil {
			return ValueTerm{}, err
		}
		return ValueTerm{Const: numConst(-n.Num)}, nil
	case TokString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return ValueTerm{}, err
		}
		return ValueTerm{Const: types.Str(s)}, nil
	default:
		return ValueTerm{}, p.errf("expected value in rule head, got %s", p.tok.Kind)
	}
}

func numConst(f float64) types.Constant {
	if f == float64(int64(f)) {
		return types.Int(int64(f))
	}
	return types.Float(f)
}

// Expression grammar: expr := term (('+'|'-') term)*;
// term := factor (('*'|'/') factor)*; factor := number | string | path |
// call | '(' expr ')' | '-' factor.

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := OpAdd
		if p.tok.Kind == TokMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash {
		op := OpMul
		if p.tok.Kind == TokSlash {
			op = OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		n := NumLit(p.tok.Num)
		return n, p.advance()
	case TokString:
		s := StrLit(p.tok.Text)
		return s, p.advance()
	case TokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		first := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen { // function call
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &Call{Name: first}
			for p.tok.Kind != TokRParen {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.tok.Kind == TokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		path := PathRef{first}
		for p.tok.Kind == TokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			seg, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			path = append(path, seg.Text)
		}
		return path, nil
	default:
		return nil, p.errf("expected expression, got %s", p.tok.Kind)
	}
}
