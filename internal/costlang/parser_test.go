package costlang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disco/internal/stats"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`scan(employee) { TotalTime = 120 + C.TotalSize * 12; } // trailing`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIdent, TokLParen, TokIdent, TokRParen, TokLBrace,
		TokIdent, TokAssign, TokNumber, TokPlus, TokIdent, TokDot, TokIdent,
		TokStar, TokNumber, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperatorsAndStrings(t *testing.T) {
	toks, err := Lex(`<= >= <> != == ? "a\"b" 'c' 1.5e3 .5 #comment
/* block
comment */ x`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokLE, TokGE, TokNE, TokNE, TokEQQ, TokQuestion,
		TokString, TokString, TokNumber, TokNumber, TokIdent, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: %v, want %v (%v)", i, toks[i].Kind, k, toks[i])
		}
	}
	if toks[6].Text != `a"b` || toks[7].Text != "c" {
		t.Errorf("strings = %q %q", toks[6].Text, toks[7].Text)
	}
	if toks[8].Num != 1500 || toks[9].Num != 0.5 {
		t.Errorf("numbers = %v %v", toks[8].Num, toks[9].Num)
	}
}

func TestLexNumberDotIdent(t *testing.T) {
	// "3.Foo" must lex as number 3, dot, ident (path off a literal is
	// nonsense, but the number must not eat the dot).
	toks, err := Lex(`C.TotalSize*25`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[1].Kind != TokDot {
		t.Errorf("path lexing broken: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `/* unterminated`, `@`, `"bad \q escape"`, `!x`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestParsePaperScanRule(t *testing.T) {
	// The paper's Figure 8 scan rule.
	src := `
scan(employee) {
  TotalTime = 120 + Employee.TotalSize * 12 + Employee.CountObject / Employee.CountDistinct;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rules) != 1 {
		t.Fatalf("rules = %d", len(f.Rules))
	}
	r := f.Rules[0]
	if r.Op != "scan" || len(r.Args) != 1 || r.Args[0].Ident != "employee" {
		t.Errorf("rule head = %s(%v)", r.Op, r.Args)
	}
	if len(r.Assigns) != 1 || r.Assigns[0].Name != "TotalTime" {
		t.Errorf("assigns = %v", r.Assigns)
	}
}

func TestParsePaperSelectRule(t *testing.T) {
	// The paper's Figure 8 select rule: select(C, A = V) with three
	// formulas.
	src := `
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  TotalSize   = CountObject * C.ObjectSize;
  TotalTime   = C.TotalTime + C.TotalSize * 25;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rules[0]
	if len(r.Args) != 2 {
		t.Fatalf("args = %v", r.Args)
	}
	cmp := r.Args[1].Cmp
	if cmp == nil || cmp.Attr != "A" || cmp.Op != stats.CmpEQ || cmp.Value.Ident != "V" {
		t.Fatalf("head comparison = %v", r.Args[1])
	}
	if len(r.Assigns) != 3 {
		t.Errorf("assigns = %d", len(r.Assigns))
	}
	// Round-trip through String and re-parse.
	f2, err := Parse(f.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, f.String())
	}
	if len(f2.Rules) != 1 || len(f2.Rules[0].Assigns) != 3 {
		t.Errorf("round-trip lost content: %s", f2)
	}
}

func TestParseYaoRule(t *testing.T) {
	// The paper's Figure 13 rule, with a local let for CountPage.
	src := `
let PageSize = 4096;
let IO = 25;
let Output = 9;

select(Collection, Id = value) {
  let CountPage = Collection.TotalSize / PageSize;
  CountObject = Collection.CountObject * (value - Collection.Id.Min) / (Collection.Id.Max - Collection.Id.Min);
  TotalSize   = CountObject * Collection.ObjectSize;
  TotalTime   = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage))) + CountObject * Output;
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Lets) != 3 {
		t.Errorf("global lets = %d", len(f.Lets))
	}
	r := f.Rules[0]
	if len(r.Lets) != 1 || r.Lets[0].Name != "CountPage" {
		t.Errorf("rule lets = %v", r.Lets)
	}
	// The deep path Collection.Id.Min must parse as a 3-segment PathRef.
	found := false
	for _, a := range r.Assigns {
		if strings.Contains(a.Expr.String(), "Collection.Id.Min") {
			found = true
		}
	}
	if !found {
		t.Error("3-segment path not preserved")
	}
}

func TestParseDefFunction(t *testing.T) {
	src := `
def selectivity(a, v) = 1 / CountDistinct;
scan(C) { TotalTime = selectivity(1, 2) * 100; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 || f.Funcs[0].Name != "selectivity" || len(f.Funcs[0].Params) != 2 {
		t.Errorf("funcs = %v", f.Funcs)
	}
}

func TestParseForcedVariables(t *testing.T) {
	src := `select(?employee, ?attr = ?v) { TotalTime = 1; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rules[0]
	if !r.Args[0].Forced {
		t.Error("collection should be forced variable")
	}
	if !r.Args[1].Cmp.AttrForced || !r.Args[1].Cmp.Value.Forced {
		t.Error("attr and value should be forced variables")
	}
}

func TestParseHeadValueKinds(t *testing.T) {
	src := `
select(C, salary = 77) { TotalTime = 1; }
select(C, name = "Adiba") { TotalTime = 2; }
select(C, delta = -5) { TotalTime = 3; }
select(C, salary > V) { TotalTime = 4; }
select(C, salary <> 0) { TotalTime = 5; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rules[0].Args[1].Cmp.Value.Const.AsInt() != 77 {
		t.Error("int head value")
	}
	if f.Rules[1].Args[1].Cmp.Value.Const.AsString() != "Adiba" {
		t.Error("string head value")
	}
	if f.Rules[2].Args[1].Cmp.Value.Const.AsInt() != -5 {
		t.Error("negative head value")
	}
	if f.Rules[3].Args[1].Cmp.Op != stats.CmpGT {
		t.Error("GT head comparison")
	}
	if f.Rules[4].Args[1].Cmp.Op != stats.CmpNE {
		t.Error("NE head comparison")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`scan(C) { Bogus = 1; }`,            // not a result var
		`scan(C) { }`,                       // no assignments
		`scan(C) { TotalTime = ; }`,         // missing expr
		`scan(C { TotalTime = 1; }`,         // missing close paren
		`scan(C) TotalTime = 1;`,            // missing brace
		`let x 5;`,                          // missing =
		`def f(x) = ;`,                      // missing body
		`scan(C) { TotalTime = 1 + ; }`,     // dangling operator
		`scan(C) { TotalTime = foo(1,; }`,   // bad call
		`scan(C) { TotalTime = (1; }`,       // unbalanced paren
		`select(C, = 5) { TotalTime = 1; }`, // missing attr
		`42`,                                // not a rule
		`scan(C) { TotalTime = C..x; }`,     // empty path segment
		`scan(C) { let TotalTime = 1 }`,     // missing semicolon
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3 - 4 / 2`)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((1 + (2 * 3)) - (4 / 2))" {
		t.Errorf("precedence tree = %s", e)
	}
	e2, err := ParseExpr(`-(1 + 2) * x.y`)
	if err != nil {
		t.Fatal(err)
	}
	if e2.String() != "((-(1 + 2)) * x.y)" {
		t.Errorf("unary tree = %s", e2)
	}
	if _, err := ParseExpr(`1 + 2 extra`); err == nil {
		t.Error("trailing input should fail")
	}
}

func TestCanonicalResultVar(t *testing.T) {
	if CanonicalResultVar("totaltime") != "TotalTime" {
		t.Error("case normalization failed")
	}
	if CanonicalResultVar("zzz") != "zzz" {
		t.Error("unknown names pass through")
	}
	if !IsResultVar("COUNTOBJECT") || IsResultVar("nope") {
		t.Error("IsResultVar")
	}
}

func TestTestdataFilesParse(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected sample .cdl files, found %d", len(entries))
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := Parse(string(src))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if len(f.Rules) == 0 {
			t.Errorf("%s: no rules parsed", e.Name())
		}
	}
}
