package core

import (
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// Steady-state allocation regressions for the estimation hot path. The
// optimizer prices tens of thousands of candidates per search through
// EstimateRoot; after the estimator's scratch arena warms up, pricing a
// plan must not allocate at all. The budgets are hard ceilings enforced
// in CI (make ci) — raising them is a deliberate decision, not noise.

// allocPlan builds a moderately deep plan exercising selects, a join and
// a submit — the shapes candidate pricing sees.
func allocPlan(t testing.TB) *algebra.Node {
	t.Helper()
	left := algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(10000)))
	right := algebra.Scan("src1", "Manager")
	join := algebra.Join(
		algebra.Submit(left, "src1"), algebra.Submit(right, "src1"),
		algebra.NewJoinPred(ref("Employee", "id"), ref("Manager", "id")))
	return resolve(t, join)
}

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
}

func TestEstimateRootSteadyStateAllocFree(t *testing.T) {
	skipUnderRace(t)
	e := newTestEstimator(t)
	plan := allocPlan(t)
	// Warm the scratch arena (context pool, match pool, VM stack).
	if _, err := e.EstimateRoot(plan); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.EstimateRoot(plan); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("EstimateRoot steady state allocates %.1f objects/run, want 0", avg)
	}
}

func TestEstimateRootRequiredVarsAllocFree(t *testing.T) {
	skipUnderRace(t)
	e := newTestEstimator(t)
	e.Options.RequiredVarsOnly = true
	e.Options.RootVars = []string{"TotalTime"}
	plan := allocPlan(t)
	if _, err := e.EstimateRoot(plan); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.EstimateRoot(plan); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("EstimateRoot (RequiredVarsOnly) allocates %.1f objects/run, want 0", avg)
	}
}

// TestEstimateSteadyStateAllocBudget bounds the full Estimate path, which
// must still build the per-node result maps (they are the API) but nothing
// else: budget = a small constant per plan node.
func TestEstimateSteadyStateAllocBudget(t *testing.T) {
	skipUnderRace(t)
	e := newTestEstimator(t)
	plan := allocPlan(t)
	if _, err := e.Estimate(plan); err != nil {
		t.Fatal(err)
	}
	nodes := float64(plan.Count())
	avg := testing.AllocsPerRun(100, func() {
		if _, err := e.Estimate(plan); err != nil {
			t.Fatal(err)
		}
	})
	// PlanCost + ByNode map + one NodeCost and one Vars map per node, with
	// headroom for map-internal allocations.
	budget := 2 + 6*nodes
	if avg > budget {
		t.Errorf("Estimate steady state allocates %.1f objects/run, budget %.0f", avg, budget)
	}
}
