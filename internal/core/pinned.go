package core

import "disco/internal/algebra"

// PinnedVars fixes one plan node's result statistics to observed actuals.
// The adaptive re-optimizer pins the subtrees it has already executed and
// materialized: their cardinality and volume are no longer estimates but
// facts, and re-reading a materialized row set costs no source time — so
// the time variables are pinned to zero and only the *remaining* work
// differentiates candidate plans.
type PinnedVars struct {
	// Rows is the observed output cardinality (CountObject).
	Rows float64
	// Bytes is the observed output volume (TotalSize).
	Bytes float64
}

// Pin registers pinned actuals for a node, lazily allocating the map.
// The estimator must not be mid-estimation. Like Globals, the Pinned map
// is shared read-only across Clone — populate it before cloning, or pin
// on each clone independently.
func (e *Estimator) Pin(n *algebra.Node, pv PinnedVars) {
	if e.Pinned == nil {
		e.Pinned = make(map[*algebra.Node]PinnedVars)
	}
	e.Pinned[n] = pv
}

// pinned short-circuits estimation for a pinned node: every result
// variable is set from the recorded actuals and the subtree below it is
// not visited at all (its work is already done; its statistics could only
// disagree with the measured truth).
func pinCtx(ctx *nodeCtx, pv PinnedVars) {
	rows := pv.Rows
	if rows < 0 {
		rows = 0
	}
	bytes := pv.Bytes
	if bytes < 0 {
		bytes = 0
	}
	perObj := bytes
	if rows >= 1 {
		perObj = bytes / rows
	}
	ctx.vars[idxCountObject] = rows
	ctx.vars[idxObjectSize] = perObj
	ctx.vars[idxTotalSize] = bytes
	ctx.vars[idxTimeFirst] = 0
	ctx.vars[idxTotalTime] = 0
	ctx.vars[idxTimeNext] = 0
	ctx.varsSet = allVarSet
	ctx.need = allVarSet
}
