package core

import (
	"strings"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// fixtureView is a CatalogView fixture with the paper's Employee example
// (Figure 6: 10 000 objects of 120 bytes; salary indexed with 10 000
// distinct values in [1000, 30000]; Name indexed, Adiba..Valduriez) plus a
// Book collection on a second wrapper and a stats-less flat collection.
type fixtureView struct {
	extents map[string]stats.ExtentStats
	attrs   map[string]stats.AttributeStats
}

func newFixtureView() *fixtureView {
	return &fixtureView{
		extents: map[string]stats.ExtentStats{
			"src1/Employee": {CountObject: 10000, TotalSize: 1_200_000, ObjectSize: 120},
			"src1/Manager":  {CountObject: 500, TotalSize: 60_000, ObjectSize: 120},
			"src2/Book":     {CountObject: 50000, TotalSize: 10_000_000, ObjectSize: 200},
		},
		attrs: map[string]stats.AttributeStats{
			"src1/Employee/id":     {Indexed: true, CountDistinct: 10000, Min: types.Int(1), Max: types.Int(10000)},
			"src1/Employee/salary": {Indexed: true, CountDistinct: 10000, Min: types.Int(1000), Max: types.Int(30000)},
			"src1/Employee/name":   {Indexed: true, CountDistinct: 10000, Min: types.Str("Adiba"), Max: types.Str("Valduriez")},
			"src1/Employee/age":    {Indexed: false, CountDistinct: 50, Min: types.Int(18), Max: types.Int(67)},
			"src1/Manager/id":      {Indexed: true, CountDistinct: 500, Min: types.Int(1), Max: types.Int(500)},
			"src1/Manager/dept":    {Indexed: false, CountDistinct: 20, Min: types.Int(1), Max: types.Int(20)},
			"src2/Book/id":         {Indexed: true, CountDistinct: 50000, Min: types.Int(1), Max: types.Int(50000)},
			"src2/Book/author":     {Indexed: true, CountDistinct: 9000, Min: types.Int(1), Max: types.Int(10000)},
			"src2/Book/year":       {Indexed: false, CountDistinct: 100, Min: types.Int(1900), Max: types.Int(1999)},
		},
	}
}

func (f *fixtureView) HasCollection(wrapper, collection string) bool {
	_, ok := f.extents[wrapper+"/"+collection]
	return ok
}

func (f *fixtureView) HasAttribute(wrapper, collection, attr string) bool {
	if collection != "" {
		_, ok := f.attrs[wrapper+"/"+collection+"/"+attr]
		return ok
	}
	prefix := wrapper + "/"
	for k := range f.attrs {
		if strings.HasPrefix(k, prefix) && strings.EqualFold(k[strings.LastIndexByte(k, '/')+1:], attr) {
			return true
		}
	}
	return false
}

func (f *fixtureView) Extent(wrapper, collection string) (stats.ExtentStats, bool) {
	e, ok := f.extents[wrapper+"/"+collection]
	return e, ok
}

func (f *fixtureView) Attribute(wrapper, collection, attr string) (stats.AttributeStats, bool) {
	a, ok := f.attrs[wrapper+"/"+collection+"/"+strings.ToLower(attr)]
	if !ok {
		a, ok = f.attrs[wrapper+"/"+collection+"/"+attr]
	}
	return a, ok
}

// fixtureSchemas supplies row schemas for plan resolution.
func fixtureSchemas() algebra.FixedSchemas {
	return algebra.FixedSchemas{
		"src1/Employee": types.NewSchema(
			types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
			types.Field{Name: "name", Collection: "Employee", Type: types.KindString},
			types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
			types.Field{Name: "age", Collection: "Employee", Type: types.KindInt},
		),
		"src1/Manager": types.NewSchema(
			types.Field{Name: "id", Collection: "Manager", Type: types.KindInt},
			types.Field{Name: "dept", Collection: "Manager", Type: types.KindInt},
		),
		"src2/Book": types.NewSchema(
			types.Field{Name: "id", Collection: "Book", Type: types.KindInt},
			types.Field{Name: "title", Collection: "Book", Type: types.KindString},
			types.Field{Name: "author", Collection: "Book", Type: types.KindInt},
			types.Field{Name: "year", Collection: "Book", Type: types.KindInt},
		),
	}
}

func ref(coll, attr string) algebra.Ref { return algebra.Ref{Collection: coll, Attr: attr} }
