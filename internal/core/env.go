package core

import (
	"fmt"
	"strings"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// evalEnv implements costvm.Env for one (node, rule, match) combination.
// It realizes the paper's Figure 7 naming scheme:
//
//	C.CountObject        extent statistic or child result variable
//	C.A.Indexed          attribute statistic (A may be a bound variable)
//	CountObject          this node's already-computed result variable
//	PageSize             rule/wrapper/mediator global
//	Net.Latency          communication parameters of the executing wrapper
//	Arity, C.Arity       schema widths (extension)
type evalEnv struct {
	est   *Estimator
	ctx   *nodeCtx
	rule  *Rule
	match *matchResult
	// locals are the owning rule's evaluated lets (exact-name lookup, the
	// same rule the map they replace used for its keys).
	locals []letVal
}

// Lookup resolves a dotted path. Resolution order for the first segment:
// rule lets, self result variables, head bindings, wrapper globals,
// mediator globals, collection names of the executing wrapper, Net.
func (e *evalEnv) Lookup(path []string) (types.Constant, bool) {
	head := path[0]

	// Rule-local lets (per node, per rule).
	if len(path) == 1 {
		for i := range e.locals {
			if e.locals[i].name == head {
				return e.locals[i].val, true
			}
		}
	}
	// Self result variables, computed earlier in canonical order.
	if len(path) == 1 {
		if vi := varIndex(head); vi >= 0 {
			if e.ctx.varsSet.Has(vi) {
				return types.Float(e.ctx.vars[vi]), true
			}
			return types.Null, false
		}
	}
	// Self arity.
	if len(path) == 1 && strings.EqualFold(head, "Arity") {
		if s := e.ctx.node.OutSchema; s != nil {
			return types.Int(int64(s.Len())), true
		}
		return types.Null, false
	}
	// Head bindings.
	if b, ok := e.match.lookup(head); ok {
		return e.resolveBinding(b, path[1:])
	}
	// Wrapper globals, then mediator globals.
	if len(path) == 1 {
		if v, ok := e.rule.Globals[head]; ok {
			return v, true
		}
		if v, ok := e.est.Globals[head]; ok {
			return v, true
		}
	}
	// Net parameters of the executing site.
	if strings.EqualFold(head, "Net") && len(path) == 2 {
		switch {
		case strings.EqualFold(path[1], "latency"):
			return types.Float(e.est.Net.LatencyMS(e.ctx.wrapper)), true
		case strings.EqualFold(path[1], "perbyte"):
			return types.Float(e.est.Net.PerByteMS(e.ctx.wrapper)), true
		}
		return types.Null, false
	}
	// A collection name of the rule's wrapper (Figure 8's scan rule
	// references Employee.TotalSize directly).
	wrapper := e.rule.Wrapper
	if wrapper == "" {
		wrapper = e.ctx.wrapper
	}
	if len(path) >= 2 && wrapper != "" && e.est.View.HasCollection(wrapper, head) {
		return e.resolveBinding(binding{kind: bindColl, coll: head, wrapper: wrapper}, path[1:])
	}
	return types.Null, false
}

// resolveBinding resolves the tail of a path against a head binding.
func (e *evalEnv) resolveBinding(b binding, tail []string) (types.Constant, bool) {
	switch b.kind {
	case bindAttr:
		if len(tail) == 0 {
			return types.Str(b.str), true
		}
		return types.Null, false
	case bindValue:
		if len(tail) == 0 {
			return b.val, true
		}
		return types.Null, false
	case bindPred:
		return types.Null, false // predicates are only usable via predsel()
	case bindColl:
		return e.resolveCollPath(b, tail)
	default:
		return types.Null, false
	}
}

// resolveCollPath resolves C.<var-or-stat> and C.<attr>.<stat>.
func (e *evalEnv) resolveCollPath(b binding, tail []string) (types.Constant, bool) {
	switch len(tail) {
	case 0:
		return types.Null, false
	case 1:
		name := tail[0]
		// Child result variable (TotalTime of the input, etc.).
		if b.ctx != nil {
			if vi := varIndex(name); vi >= 0 && b.ctx.varsSet.Has(vi) {
				return types.Float(b.ctx.vars[vi]), true
			}
			// Fall through: an unestimated child (leaf collection
			// target) may still answer from base statistics.
		}
		if strings.EqualFold(name, "Arity") {
			if b.ctx != nil && b.ctx.node.OutSchema != nil {
				return types.Int(int64(b.ctx.node.OutSchema.Len())), true
			}
		}
		// Base collection statistics.
		ext, ok := e.extentOf(b)
		if !ok {
			return types.Null, false
		}
		switch {
		case strings.EqualFold(name, "countobject"):
			return types.Int(ext.CountObject), true
		case strings.EqualFold(name, "totalsize"):
			return types.Int(ext.TotalSize), true
		case strings.EqualFold(name, "objectsize"):
			return types.Int(ext.ObjectSize), true
		case strings.EqualFold(name, "countpage"):
			return types.Int(ext.CountPage(e.pageSize())), true
		default:
			return types.Null, false
		}
	case 2:
		attr := tail[0]
		// The attribute segment may itself be a bound head variable (the
		// C.A.Indexed indirection).
		if ab, ok := e.match.lookup(attr); ok && ab.kind == bindAttr {
			attr = ab.str
		}
		ast, ok := e.attrStats(b, attr)
		if !ok {
			return types.Null, false
		}
		switch {
		case strings.EqualFold(tail[1], "indexed"):
			return types.Bool(ast.Indexed), true
		case strings.EqualFold(tail[1], "clustered"):
			return types.Bool(ast.Clustered), true
		case strings.EqualFold(tail[1], "countdistinct"):
			return types.Int(ast.CountDistinct), true
		case strings.EqualFold(tail[1], "min"):
			if ast.Min.IsNull() {
				return types.Null, false
			}
			return ast.Min, true
		case strings.EqualFold(tail[1], "max"):
			if ast.Max.IsNull() {
				return types.Null, false
			}
			return ast.Max, true
		default:
			return types.Null, false
		}
	default:
		return types.Null, false
	}
}

func (e *evalEnv) pageSize() int64 {
	if v, ok := e.rule.Globals["PageSize"]; ok {
		return v.AsInt()
	}
	if v, ok := e.est.Globals["PageSize"]; ok {
		return v.AsInt()
	}
	return 4096
}

// extentOf returns extent statistics for a collection binding: the base
// collection's exported stats, or the default fallback.
func (e *evalEnv) extentOf(b binding) (stats.ExtentStats, bool) {
	if b.coll != "" && b.wrapper != "" {
		if ext, ok := e.est.View.Extent(b.wrapper, b.coll); ok {
			return ext, true
		}
		return DefaultExtent, true
	}
	// Intermediate result: answer from the child's computed variables.
	if b.ctx != nil {
		ext := stats.ExtentStats{}
		set := b.ctx.varsSet
		ok1, ok2, ok3 := set.Has(idxCountObject), set.Has(idxTotalSize), set.Has(idxObjectSize)
		co, ts, os := b.ctx.vars[idxCountObject], b.ctx.vars[idxTotalSize], b.ctx.vars[idxObjectSize]
		if !ok1 && !ok2 {
			return ext, false
		}
		if ok1 {
			ext.CountObject = int64(co)
		}
		if ok2 {
			ext.TotalSize = int64(ts)
		}
		if ok3 {
			ext.ObjectSize = int64(os)
		}
		if !ok3 && ok1 && ok2 && co > 0 {
			ext.ObjectSize = int64(ts / co)
		}
		return ext, true
	}
	return stats.ExtentStats{}, false
}

// attrStats resolves attribute statistics for a collection binding,
// searching the bound subtree's base collections when the binding is an
// intermediate result.
func (e *evalEnv) attrStats(b binding, attr string) (stats.AttributeStats, bool) {
	if b.coll != "" && b.wrapper != "" {
		if st, ok := e.est.View.Attribute(b.wrapper, b.coll, attr); ok {
			return st, true
		}
		return stats.AttributeStats{}, false
	}
	if b.ctx != nil {
		return attrStatsUnder(e.est.View, b.ctx.node, attr)
	}
	return stats.AttributeStats{}, false
}

// attrStatsUnder searches the scans under a node, in walk order, for one
// exporting statistics for the attribute (direct recursion rather than
// materializing the scan list — this runs per formula evaluation).
func attrStatsUnder(view CatalogView, n *algebra.Node, attr string) (stats.AttributeStats, bool) {
	if n.Kind == algebra.OpScan {
		return view.Attribute(n.Wrapper, n.Collection, attr)
	}
	for _, c := range n.Children {
		if st, ok := attrStatsUnder(view, c, attr); ok {
			return st, true
		}
	}
	return stats.AttributeStats{}, false
}

// Call resolves function invocations: the rule's registry (stdlib plus
// wrapper defs) first, then the contextual cost-model functions.
func (e *evalEnv) Call(name string, args []types.Constant) (types.Constant, error) {
	if e.rule.Funcs != nil && e.rule.Funcs.Has(name) {
		return e.rule.Funcs.Call(name, args)
	}
	switch {
	case strings.EqualFold(name, "selectivity"):
		return e.callSelectivity(args)
	case strings.EqualFold(name, "predsel"):
		return types.Float(e.predSelectivity(e.ctx.node.Pred)), nil
	case strings.EqualFold(name, "joinsel"):
		return types.Float(e.joinSelectivity()), nil
	case strings.EqualFold(name, "groups"):
		return types.Float(e.groupEstimate()), nil
	}
	return types.Null, fmt.Errorf("unknown function %q", name)
}

// callSelectivity implements the contextual selectivity(A, V) function:
// the fraction of the node's input satisfying the matched comparison. The
// comparison operator comes from the matched predicate (the head pattern
// constrains it).
func (e *evalEnv) callSelectivity(args []types.Constant) (types.Constant, error) {
	if len(args) != 2 {
		return types.Null, fmt.Errorf("selectivity expects 2 args (attribute, value)")
	}
	attr := args[0].AsString()
	value := args[1]
	op := stats.CmpEQ
	if e.match.hasSel {
		op = e.match.selOp
	}
	st, ok := e.inputAttrStats(attr)
	if !ok {
		st = DefaultAttribute
	}
	return types.Float(st.Selectivity(op, value)), nil
}

// inputAttrStats finds statistics for an attribute of the node's input(s).
func (e *evalEnv) inputAttrStats(attr string) (stats.AttributeStats, bool) {
	for _, child := range e.ctx.children {
		if st, ok := attrStatsUnder(e.est.View, child.node, attr); ok {
			return st, true
		}
	}
	if e.ctx.node.Kind == algebra.OpScan {
		return e.est.View.Attribute(e.ctx.node.Wrapper, e.ctx.node.Collection, attr)
	}
	return stats.AttributeStats{}, false
}

// predSelectivity estimates the selectivity of a whole predicate as the
// product of its conjuncts' selectivities (independence assumption).
func (e *evalEnv) predSelectivity(p *algebra.Predicate) float64 {
	if p == nil || len(p.Conjuncts) == 0 {
		return 1
	}
	sel := 1.0
	for _, c := range p.Conjuncts {
		if c.IsJoin() {
			l, okL := e.inputAttrStats(c.Left.Attr)
			r, okR := e.inputAttrStats(c.RightAttr.Attr)
			if !okL {
				l = DefaultAttribute
			}
			if !okR {
				r = DefaultAttribute
			}
			sel *= stats.JoinSelectivity(l, r)
			continue
		}
		st, ok := e.inputAttrStats(c.Left.Attr)
		if !ok {
			st = DefaultAttribute
		}
		sel *= st.Selectivity(c.Op, c.RightConst)
	}
	return sel
}

// joinSelectivity estimates the node's join predicate selectivity relative
// to the cross product.
func (e *evalEnv) joinSelectivity() float64 {
	p := e.ctx.node.Pred
	if p == nil {
		return 1 // cross product
	}
	sel := 1.0
	matched := false
	for i := range p.Conjuncts {
		c := &p.Conjuncts[i]
		if c.IsJoin() {
			l, okL := e.inputAttrStats(c.Left.Attr)
			r, okR := e.inputAttrStats(c.RightAttr.Attr)
			if !okL {
				l = DefaultAttribute
			}
			if !okR {
				r = DefaultAttribute
			}
			sel *= stats.JoinSelectivity(l, r)
		} else {
			st, ok := e.inputAttrStats(c.Left.Attr)
			if !ok {
				st = DefaultAttribute
			}
			sel *= st.Selectivity(c.Op, c.RightConst)
		}
		matched = true
	}
	if !matched {
		return 0.01
	}
	return sel
}

// groupEstimate estimates the number of groups an aggregate produces.
func (e *evalEnv) groupEstimate() float64 {
	n := e.ctx.node
	if n.Kind != algebra.OpAggregate || len(n.GroupBy) == 0 {
		return 1
	}
	childCount := 1e9
	if len(e.ctx.children) > 0 {
		if c := e.ctx.children[0]; c.varsSet.Has(idxCountObject) {
			childCount = c.vars[idxCountObject]
		}
	}
	groups := 1.0
	for _, g := range n.GroupBy {
		if st, ok := e.inputAttrStats(g.Attr); ok && st.CountDistinct > 0 {
			groups *= float64(st.CountDistinct)
		} else {
			groups *= 10 // default distinct factor
		}
	}
	if groups > childCount {
		groups = childCount
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}
