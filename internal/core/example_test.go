package core_test

import (
	"fmt"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/costlang"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// Example demonstrates the blending mechanism end to end: a wrapper
// exports a specific scan rule, the mediator's generic model covers the
// rest, and the estimate for a select-over-scan plan mixes both.
func Example() {
	// A small object database source.
	store := objstore.Open(objstore.DefaultConfig(), netsim.NewClock())
	schema := types.NewSchema(
		types.Field{Collection: "Employee", Name: "id", Type: types.KindInt},
		types.Field{Collection: "Employee", Name: "salary", Type: types.KindInt},
	)
	coll, _ := store.CreateCollection("Employee", schema, 100)
	for i := 0; i < 1000; i++ {
		coll.Insert(types.Row{types.Int(int64(i)), types.Int(int64(1000 + i))})
	}

	// Registration: catalog upload plus rule integration.
	w := wrapper.NewObjWrapper("src", store)
	cat := catalog.New()
	if err := cat.Register(w); err != nil {
		fmt.Println(err)
		return
	}
	reg := core.MustDefaultRegistry()
	rules, _ := costlang.Parse(`
scan(Employee) { TotalTime = 5000; }   # the implementor knows this scan costs 5s
`)
	if err := reg.IntegrateWrapper("src", rules, cat); err != nil {
		fmt.Println(err)
		return
	}

	// Estimate select(scan(Employee), salary = 1500).
	plan := algebra.Select(
		algebra.Scan("src", "Employee"),
		algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "salary"},
			stats.CmpEQ, types.Int(1500)))
	if err := algebra.Resolve(plan, cat); err != nil {
		fmt.Println(err)
		return
	}
	est := core.NewEstimator(reg, cat, core.UniformNet{})
	pc, err := est.Estimate(plan)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The scan's TotalTime comes from the wrapper rule (collection
	// scope); the select's cardinality comes from the generic model's
	// selectivity machinery (1 of 1000 distinct salaries).
	fmt.Printf("scan TotalTime: %.0f ms\n", pc.ByNode[plan.Children[0]].Var("TotalTime", -1))
	fmt.Printf("select CountObject: %.0f\n", pc.Root.Var("CountObject", -1))
	// Output:
	// scan TotalTime: 5000 ms
	// select CountObject: 1
}
