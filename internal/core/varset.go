package core

import "strings"

// NumVars is the number of canonical result variables (len(varOrder)).
const NumVars = 6

// Indexes into varOrder / the per-node variable arrays. The order is the
// evaluation order documented on varOrder.
const (
	idxCountObject = iota
	idxObjectSize
	idxTotalSize
	idxTimeFirst
	idxTotalTime
	idxTimeNext
)

// VarSet is a bitmask over the canonical result variables, indexed by
// position in varOrder. It replaces the map[string]bool need-sets of the
// estimation algorithm: closing a need-set under self-references and
// computing child requirements become pure bit operations.
type VarSet uint64

// allVarSet has every canonical variable present.
const allVarSet = VarSet(1<<NumVars - 1)

// Has reports whether variable index i is in the set.
func (s VarSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns the set with variable index i added.
func (s VarSet) With(i int) VarSet { return s | 1<<uint(i) }

// Empty reports whether no variable is in the set.
func (s VarSet) Empty() bool { return s == 0 }

// varIndex resolves a name to its canonical variable index, matching
// case-insensitively like the paper's parameter references; -1 when the
// name is not a result variable.
func varIndex(name string) int {
	for i, v := range varOrder {
		if strings.EqualFold(v, name) {
			return i
		}
	}
	return -1
}

// varIndexExact resolves a name by exact match, the comparison rule
// formulas use for their assignment targets; -1 when unknown.
func varIndexExact(name string) int {
	for i, v := range varOrder {
		if v == name {
			return i
		}
	}
	return -1
}

func isVarName(name string) bool { return varIndex(name) >= 0 }

func canonVar(name string) string {
	if i := varIndex(name); i >= 0 {
		return varOrder[i]
	}
	return name
}
