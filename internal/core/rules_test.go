package core

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/costlang"
	"disco/internal/stats"
	"disco/internal/types"
)

// tryMatch adapts matchRule's pooled-result signature for tests.
func tryMatch(r *Rule, ctx *nodeCtx) (*matchResult, bool) {
	m := &matchResult{}
	ok := matchRule(r, ctx, m)
	return m, ok
}

func mustParse(t *testing.T, src string) *costlang.File {
	t.Helper()
	f, err := costlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestIntegrateWrapperClassification(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	src := `
scan(C) { TotalTime = 1; }                            # wrapper scope
scan(Employee) { TotalTime = 2; }                     # collection scope
select(Employee, P) { TotalTime = 3; }                # collection scope
select(Employee, salary = V) { TotalTime = 4; }       # predicate scope (attr bound)
select(Employee, salary = 77) { TotalTime = 5; }      # predicate scope (attr+value)
select(C, A = V) { TotalTime = 6; }                   # wrapper scope... op bound
join(Employee, Manager, id = id2) { TotalTime = 7; }  # collection scope, id bound
`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	rules := reg.WrapperRules("src1")
	if len(rules) != 7 {
		t.Fatalf("rules = %d", len(rules))
	}
	// Rules are sorted most-specific-first.
	byTime := map[float64]*Rule{}
	for _, r := range rules {
		env := struct{}{}
		_ = env
		// Identify rules by their constant TotalTime body.
		v, err := r.Formulas[0].Prog.Eval(nullEnv{})
		if err != nil {
			t.Fatalf("eval %s: %v", r, err)
		}
		byTime[v.AsFloat()] = r
	}
	expectScope := map[float64]Scope{
		1: ScopeWrapper,
		2: ScopeCollection,
		3: ScopeCollection,
		4: ScopePredicate,
		5: ScopePredicate,
		6: ScopeWrapper,
		7: ScopePredicate, // attribute id bound
	}
	for tag, want := range expectScope {
		r := byTime[tag]
		if r == nil {
			t.Fatalf("rule %v not found", tag)
		}
		if r.Scope != want {
			t.Errorf("rule %v: scope = %s, want %s (%s)", tag, r.Scope, want, r)
		}
	}
	// Specificity ordering within predicate scope: value-bound rule (5)
	// must precede attr-only rule (4).
	pos := map[float64]int{}
	for i, r := range rules {
		v, _ := r.Formulas[0].Prog.Eval(nullEnv{})
		pos[v.AsFloat()] = i
	}
	if pos[5] > pos[4] {
		t.Errorf("bound-value rule should sort before bound-attr rule: %v", pos)
	}
	if pos[2] > pos[1] || pos[4] > pos[2] {
		t.Errorf("scope ordering violated: %v", pos)
	}
}

// nullEnv is an Env with no variables for constant-body rules.
type nullEnv struct{}

func (nullEnv) Lookup([]string) (types.Constant, bool) { return types.Null, false }
func (nullEnv) Call(string, []types.Constant) (types.Constant, error) {
	return types.Null, nil
}

func TestIntegrateErrors(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	cases := []string{
		`frobnicate(C) { TotalTime = 1; }`,    // unknown operator
		`select(C, A = A) { TotalTime = 1; }`, // duplicate head variable
		`join(C, C, P) { TotalTime = 1; }`,    // duplicate collection var
	}
	for _, src := range cases {
		if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err == nil {
			t.Errorf("IntegrateWrapper(%q) should fail", src)
		}
	}
	if err := reg.IntegrateWrapper("", mustParse(t, `scan(C) { TotalTime = 1; }`), view); err == nil {
		t.Error("empty wrapper name should fail")
	}
}

func TestIntegrateGlobalLets(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	src := `
let PageSize = 4096;
let TwoPages = PageSize * 2;
scan(C) { TotalTime = TwoPages; }`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	r := reg.WrapperRules("src1")[0]
	if r.Globals["TwoPages"].AsInt() != 8192 {
		t.Errorf("global let = %v", r.Globals["TwoPages"])
	}
}

func TestDropWrapper(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	if err := reg.IntegrateWrapper("src1", mustParse(t, `scan(C) { TotalTime = 1; }`), view); err != nil {
		t.Fatal(err)
	}
	if reg.RuleCount() != 1 {
		t.Fatalf("count = %d", reg.RuleCount())
	}
	reg.DropWrapper("src1")
	if reg.RuleCount() != 0 {
		t.Errorf("count after drop = %d", reg.RuleCount())
	}
}

func TestDefaultRegistryLoads(t *testing.T) {
	reg := MustDefaultRegistry()
	if reg.RuleCount() < 20 {
		t.Errorf("generic model has %d rules, expected a full operator set", reg.RuleCount())
	}
	// Defaults must cover every operator for TotalTime.
	ops := []algebra.OpKind{algebra.OpScan, algebra.OpSelect, algebra.OpProject,
		algebra.OpSort, algebra.OpJoin, algebra.OpUnion, algebra.OpDupElim,
		algebra.OpAggregate, algebra.OpSubmit}
	for _, op := range ops {
		found := false
		for _, r := range reg.DefaultRules() {
			if r.Op == op && r.Scope == ScopeDefault && r.Provides("TotalTime") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no default TotalTime rule for %s", op)
		}
	}
}

func TestMatchRuleScan(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	src := `
scan(Employee) { TotalTime = 1; }
scan(C) { TotalTime = 2; }`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	rules := reg.WrapperRules("src1")
	scanEmp := &nodeCtx{node: algebra.Scan("src1", "Employee")}
	scanMgr := &nodeCtx{node: algebra.Scan("src1", "Manager")}

	var collRule, varRule *Rule
	for _, r := range rules {
		if r.Scope == ScopeCollection {
			collRule = r
		} else {
			varRule = r
		}
	}
	if _, ok := tryMatch(collRule, scanEmp); !ok {
		t.Error("collection rule should match Employee scan")
	}
	if _, ok := tryMatch(collRule, scanMgr); ok {
		t.Error("collection rule should not match Manager scan")
	}
	if _, ok := tryMatch(varRule, scanMgr); !ok {
		t.Error("variable rule should match any scan")
	}
	if _, ok := tryMatch(varRule, &nodeCtx{node: algebra.DupElim(algebra.Scan("src1", "Employee")),
		children: []*nodeCtx{scanEmp}}); ok {
		t.Error("scan rule must not match dupelim node")
	}
}

func TestMatchRuleSelectPatterns(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	src := `
select(Employee, salary = 77) { TotalTime = 1; }
select(Employee, salary = V)  { TotalTime = 2; }
select(Employee, P)           { TotalTime = 3; }
select(C, A = V)              { TotalTime = 4; }
select(C, A > V)              { TotalTime = 5; }`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	rules := reg.WrapperRules("src1")
	tag := func(r *Rule) float64 {
		v, _ := r.Formulas[0].Prog.Eval(nullEnv{})
		return v.AsFloat()
	}

	scanCtx := &nodeCtx{node: algebra.Scan("src1", "Employee"),
		derivedColl: "Employee", derivedWrapper: "src1", wrapper: "src1"}
	mkSel := func(p *algebra.Predicate) *nodeCtx {
		return &nodeCtx{
			node:     algebra.Select(scanCtx.node, p),
			wrapper:  "src1",
			children: []*nodeCtx{scanCtx},
		}
	}
	sel77 := mkSel(algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(77)))
	sel99 := mkSel(algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(99)))
	selGT := mkSel(algebra.NewSelPred(ref("Employee", "salary"), stats.CmpGT, types.Int(10)))
	selName := mkSel(algebra.NewSelPred(ref("Employee", "name"), stats.CmpEQ, types.Str("Adiba")))

	expectMatch := map[float64]map[*nodeCtx]bool{
		1: {sel77: true, sel99: false, selGT: false, selName: false},
		2: {sel77: true, sel99: true, selGT: false, selName: false},
		3: {sel77: true, sel99: true, selGT: true, selName: true},
		4: {sel77: true, sel99: true, selGT: false, selName: true},
		5: {sel77: false, selGT: true},
	}
	names := map[*nodeCtx]string{sel77: "sel77", sel99: "sel99", selGT: "selGT", selName: "selName"}
	for _, r := range rules {
		want, ok := expectMatch[tag(r)]
		if !ok {
			continue
		}
		for ctx, expect := range want {
			if _, got := tryMatch(r, ctx); got != expect {
				t.Errorf("rule %v vs %s: match = %v, want %v", tag(r), names[ctx], got, expect)
			}
		}
	}
}

func TestMatchBindings(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	if err := reg.IntegrateWrapper("src1",
		mustParse(t, `select(C, A = V) { TotalTime = 1; }`), view); err != nil {
		t.Fatal(err)
	}
	rule := reg.WrapperRules("src1")[0]
	scanCtx := &nodeCtx{node: algebra.Scan("src1", "Employee"),
		derivedColl: "Employee", derivedWrapper: "src1", wrapper: "src1"}
	sel := &nodeCtx{
		node:     algebra.Select(scanCtx.node, algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(42))),
		wrapper:  "src1",
		children: []*nodeCtx{scanCtx},
	}
	m, ok := tryMatch(rule, sel)
	if !ok {
		t.Fatal("no match")
	}
	if b, ok := m.lookup("C"); !ok || b.kind != bindColl || b.coll != "Employee" || b.ctx != scanCtx {
		t.Errorf("C binding = %+v", b)
	}
	if b, ok := m.lookup("A"); !ok || b.kind != bindAttr || b.str != "salary" {
		t.Errorf("A binding = %+v", b)
	}
	if b, ok := m.lookup("V"); !ok || b.kind != bindValue || b.val.AsInt() != 42 {
		t.Errorf("V binding = %+v", b)
	}
	if !m.hasSel || m.selOp != stats.CmpEQ || m.selAttr != "salary" {
		t.Errorf("sel context = %+v", m)
	}
}

func TestMatchJoinFlipped(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	// id = author binds both attribute names (id is an attribute of src1
	// collections; author is not, so it stays a variable here... use the
	// default-style head with variables to test flipping).
	if err := reg.IntegrateWrapper("src1",
		mustParse(t, `join(C1, C2, A1 = A2) { TotalTime = 1; }`), view); err != nil {
		t.Fatal(err)
	}
	rule := reg.WrapperRules("src1")[0]
	empCtx := &nodeCtx{node: algebra.Scan("src1", "Employee"), derivedColl: "Employee", derivedWrapper: "src1"}
	mgrCtx := &nodeCtx{node: algebra.Scan("src1", "Manager"), derivedColl: "Manager", derivedWrapper: "src1"}
	join := &nodeCtx{
		node:     algebra.Join(empCtx.node, mgrCtx.node, algebra.NewJoinPred(ref("Employee", "id"), ref("Manager", "id"))),
		children: []*nodeCtx{empCtx, mgrCtx},
	}
	m, ok := tryMatch(rule, join)
	if !ok {
		t.Fatal("join rule should match")
	}
	if b, _ := m.lookup("A1"); b.str != "id" {
		t.Errorf("A1 = %q", b.str)
	}
	if b, _ := m.lookup("A2"); b.str != "id" {
		t.Errorf("A2 = %q", b.str)
	}
}

func TestSpecificityOrderingPaperExample(t *testing.T) {
	// The paper's §4.2 ordering example: more bound parameters sort
	// first.
	view := newFixtureView()
	reg := NewRegistry(nil)
	src := `
select(R, P) { TotalTime = 1; }
select(Employee, P) { TotalTime = 2; }
select(Employee, salary = A) { TotalTime = 3; }
select(Employee, salary = 77) { TotalTime = 4; }`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	rules := reg.WrapperRules("src1")
	var order []float64
	for _, r := range rules {
		v, _ := r.Formulas[0].Prog.Eval(nullEnv{})
		order = append(order, v.AsFloat())
	}
	want := []float64{4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ordering = %v, want %v", order, want)
		}
	}
}

func TestRuleString(t *testing.T) {
	view := newFixtureView()
	reg := NewRegistry(nil)
	if err := reg.IntegrateWrapper("src1",
		mustParse(t, `select(Employee, salary = V) { TotalTime = 1; CountObject = 2; }`), view); err != nil {
		t.Fatal(err)
	}
	s := reg.WrapperRules("src1")[0].String()
	for _, want := range []string{"predicate", "select(Employee, salary = ?V)", "TotalTime", "CountObject"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// TestAmbiguousJoinHeadsWithinScope documents the paper's §4.2 open case:
// for join(Employee, Manager, P), both join(Employee, R2, P) and
// join(R1, Manager, P) match at the same scope and specificity; all their
// formulas are evaluated and the lowest value wins, with registration
// order as the deterministic tiebreak.
func TestAmbiguousJoinHeadsWithinScope(t *testing.T) {
	view := newFixtureView()
	reg := MustDefaultRegistry()
	src := `
join(Employee, R2, P) { TotalTime = 400; }
join(R1, Manager, P)  { TotalTime = 300; }`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	e := NewEstimator(reg, view, UniformNet{})
	plan := resolve(t, algebra.Join(
		algebra.Scan("src1", "Employee"),
		algebra.Scan("src1", "Manager"),
		algebra.NewJoinPred(ref("Employee", "id"), ref("Manager", "id"))))
	pc, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ambiguous min", pc.Root.Vars["TotalTime"], 300, 0)
}
