package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"disco/internal/algebra"
	"disco/internal/types"
)

// The canonical result variables, in evaluation order. Size statistics are
// computed before times so that time formulas may reference them; TimeNext
// comes last so the generic model can derive it from TotalTime and
// TimeFirst. Formulas referencing a self variable that appears later in
// this order fail and fall back, which keeps evaluation well-founded.
var varOrder = []string{"CountObject", "ObjectSize", "TotalSize", "TimeFirst", "TotalTime", "TimeNext"}

// AllVars returns the canonical result variables in evaluation order.
func AllVars() []string { return append([]string(nil), varOrder...) }

// ErrOverBudget is returned by Estimate when branch-and-bound pruning
// aborted the estimation because a subplan already costs more than the
// best complete plan seen so far (paper §4.3.2).
var ErrOverBudget = errors.New("core: plan cost exceeds budget, estimation aborted")

// NetProvider supplies per-wrapper communication parameters for the
// submit operator's cost (paper assumes uniform communication costs; the
// netsim package provides non-uniform ones as an extension).
type NetProvider interface {
	// LatencyMS is the per-message overhead in milliseconds.
	LatencyMS(wrapper string) float64
	// PerByteMS is the transfer cost per byte in milliseconds.
	PerByteMS(wrapper string) float64
}

// UniformNet is the paper's uniform communication model.
type UniformNet struct {
	Latency float64
	PerByte float64
}

// LatencyMS implements NetProvider.
func (u UniformNet) LatencyMS(string) float64 { return u.Latency }

// PerByteMS implements NetProvider.
func (u UniformNet) PerByteMS(string) float64 { return u.PerByte }

// Options control the estimation algorithm's optional behaviours; the E6
// ablation toggles them.
type Options struct {
	// RequiredVarsOnly enables the paper's phase-1 optimization: only
	// formulas computing variables some ancestor consumes are selected,
	// and recursion into a child that owes nothing is cut (§4.2).
	RequiredVarsOnly bool
	// Budget, when positive, aborts estimation with ErrOverBudget as soon
	// as any node's TotalTime exceeds it (§4.3.2).
	Budget float64
	// RootVars restricts which variables the caller needs at the plan
	// root (nil means all). Only meaningful with RequiredVarsOnly.
	RootVars []string
	// Trace records which rule supplied each variable, for Explain.
	Trace bool
}

// NodeCost is the estimate computed for one plan node.
type NodeCost struct {
	// Vars holds the computed result variables (milliseconds for times,
	// objects and bytes for sizes). Only required variables are present
	// when RequiredVarsOnly is set.
	Vars map[string]float64
	// ChosenRules maps variable -> description of the rule that supplied
	// it (only with Options.Trace).
	ChosenRules map[string]string
}

// Var returns a computed variable, or def when it was not computed.
func (n *NodeCost) Var(name string, def float64) float64 {
	if v, ok := n.Vars[name]; ok {
		return v
	}
	return def
}

// TotalTime returns the node's TotalTime estimate in milliseconds.
func (n *NodeCost) TotalTime() float64 { return n.Var("TotalTime", 0) }

// PlanCost is the result of estimating a whole plan.
type PlanCost struct {
	Root   *NodeCost
	ByNode map[*algebra.Node]*NodeCost
	// Metrics of the estimation run (the E6 ablation reports them).
	NodesVisited int
	FormulaEvals int
	RulesMatched int
}

// TotalTime returns the root TotalTime in milliseconds.
func (p *PlanCost) TotalTime() float64 { return p.Root.TotalTime() }

// Estimator evaluates plan costs against the integrated rule hierarchy.
// An Estimator is cheap to construct and safe for sequential reuse; use
// one per goroutine — Clone makes an independent per-goroutine copy over
// the same (read-only) registry, view and network model.
type Estimator struct {
	Registry *Registry
	View     CatalogView
	Net      NetProvider
	// Globals are mediator-level coefficients resolvable from any formula
	// (PageSize, the generic model's calibrated constants, ...). Wrapper
	// globals shadow them.
	Globals map[string]types.Constant
	Options Options
}

// NewEstimator builds an estimator with the generic-model default
// coefficients.
func NewEstimator(reg *Registry, view CatalogView, net NetProvider) *Estimator {
	if net == nil {
		net = UniformNet{Latency: 10, PerByte: 0.0005}
	}
	return &Estimator{
		Registry: reg,
		View:     view,
		Net:      net,
		Globals:  DefaultCoefficients(),
	}
}

// Clone returns an independent estimator for use on another goroutine.
// The registry, catalog view, network model and globals are shared — they
// are read-only during estimation — while Options (including the mutable
// per-search pruning Budget) are copied, so concurrent estimations never
// observe each other's option state. The parallel plan search clones one
// estimator per worker.
func (e *Estimator) Clone() *Estimator {
	c := *e
	c.Options.RootVars = append([]string(nil), e.Options.RootVars...)
	return &c
}

// Reset clears the per-search option state (the branch-and-bound pruning
// budget) so a reused or pooled estimator starts its next search clean.
func (e *Estimator) Reset() { e.Options.Budget = 0 }

// nodeCtx is the per-node working state of one estimation pass.
type nodeCtx struct {
	node     *algebra.Node
	wrapper  string // executing site: "" = mediator
	children []*nodeCtx
	// derivedColl/-Wrapper identify the single base collection the node's
	// result derives from, when there is one (select/project/... chains
	// over one scan); joins and unions have none.
	derivedColl    string
	derivedWrapper string

	vars     map[string]float64 // computed result variables
	trace    map[string]string  // variable -> chosen rule (Options.Trace)
	letCache map[*Rule]map[string]types.Constant
	levels   []matchLevel // phase-1 association result
	need     map[string]bool
}

// matchLevel groups the matched rules of one (scope, specificity) level.
type matchLevel struct {
	scope       Scope
	specificity int
	rules       []*Rule
	matches     []*matchResult
}

// Estimate runs the two-phase algorithm of Figure 11 over a resolved plan
// and returns per-node costs. The plan must have been resolved
// (algebra.Resolve) so schemas are available.
func (e *Estimator) Estimate(plan *algebra.Node) (*PlanCost, error) {
	pc := &PlanCost{ByNode: make(map[*algebra.Node]*NodeCost)}
	root, err := e.buildCtx(plan, "")
	if err != nil {
		return nil, err
	}
	need := map[string]bool{}
	if e.Options.RequiredVarsOnly && len(e.Options.RootVars) > 0 {
		for _, v := range e.Options.RootVars {
			need[v] = true
		}
	} else {
		for _, v := range varOrder {
			need[v] = true
		}
	}
	if err := e.estimateNode(root, need, pc); err != nil {
		return nil, err
	}
	collect(root, pc)
	pc.Root = pc.ByNode[plan]
	return pc, nil
}

func collect(ctx *nodeCtx, pc *PlanCost) {
	nc := &NodeCost{Vars: ctx.vars, ChosenRules: ctx.trace}
	if nc.Vars == nil {
		nc.Vars = map[string]float64{}
	}
	pc.ByNode[ctx.node] = nc
	for _, c := range ctx.children {
		collect(c, pc)
	}
}

// buildCtx computes the static per-node context: executing wrapper and
// derived collection.
func (e *Estimator) buildCtx(n *algebra.Node, wrapper string) (*nodeCtx, error) {
	ctx := &nodeCtx{node: n, wrapper: wrapper}
	// A scan always executes at the wrapper that owns its collection,
	// whether or not a submit boundary has been placed above it yet; and
	// a submit node models the target wrapper's boundary (delivery and
	// shipping), so the target's rules — exported submit rules and
	// query-scope history rules — apply to it.
	if (n.Kind == algebra.OpScan || n.Kind == algebra.OpSubmit) && wrapper == "" {
		ctx.wrapper = n.Wrapper
	}
	childWrapper := wrapper
	if n.Kind == algebra.OpSubmit {
		childWrapper = n.Wrapper
	}
	for _, c := range n.Children {
		cc, err := e.buildCtx(c, childWrapper)
		if err != nil {
			return nil, err
		}
		ctx.children = append(ctx.children, cc)
	}
	// Site inference: an operator with no submit boundary above it
	// executes where its inputs live — if every child runs at the same
	// wrapper (and none is a submit, whose output is mediator-side), the
	// operator is co-located with them. Plans produced by the optimizer
	// carry explicit submits; inference covers hand-built access paths.
	if ctx.wrapper == "" && n.Kind != algebra.OpSubmit && len(ctx.children) > 0 {
		site := ctx.children[0].wrapper
		ok := site != "" && ctx.children[0].node.Kind != algebra.OpSubmit
		for _, c := range ctx.children[1:] {
			if c.wrapper != site || c.node.Kind == algebra.OpSubmit {
				ok = false
			}
		}
		if ok {
			ctx.wrapper = site
		}
	}
	switch n.Kind {
	case algebra.OpScan:
		ctx.derivedColl = n.Collection
		ctx.derivedWrapper = n.Wrapper
	case algebra.OpSelect, algebra.OpProject, algebra.OpSort,
		algebra.OpDupElim, algebra.OpSubmit:
		ctx.derivedColl = ctx.children[0].derivedColl
		ctx.derivedWrapper = ctx.children[0].derivedWrapper
	default:
		// joins, unions, aggregates derive from no single collection
	}
	return ctx, nil
}

// estimateNode is the recursive step of Figure 11: (1) associate formulas
// with the node, (2) recurse into children that owe variables, (3) apply
// the formulas bottom-up.
func (e *Estimator) estimateNode(ctx *nodeCtx, need map[string]bool, pc *PlanCost) error {
	pc.NodesVisited++
	// Step 1: associate cost formulas with node (most specific rules).
	e.associate(ctx, pc)

	// Close `need` under self-references: a needed variable's candidate
	// formulas may read earlier self variables.
	ctx.need = e.closeNeed(ctx, need)

	// Determine what each child must compute for the selected formulas.
	childNeeds := e.childRequirements(ctx)

	// Step 2: recursive traversal (cut when a child owes nothing).
	for i, child := range ctx.children {
		cn := childNeeds[i]
		if e.Options.RequiredVarsOnly && len(cn) == 0 {
			continue // traversal cut (§4.2 optimization ii)
		}
		if err := e.estimateNode(child, cn, pc); err != nil {
			return err
		}
	}

	// Step 3: apply formulas to node.
	if err := e.apply(ctx, pc); err != nil {
		return err
	}
	if e.Options.Budget > 0 {
		if t, ok := ctx.vars["TotalTime"]; ok && t > e.Options.Budget {
			return ErrOverBudget
		}
	}
	return nil
}

// associate matches the node against the rule hierarchy and stores the
// matching levels, most specific first (paper §4.2 Step 1).
func (e *Estimator) associate(ctx *nodeCtx, pc *PlanCost) {
	var candidates []*Rule
	if ctx.wrapper != "" {
		candidates = e.Registry.WrapperRulesFor(ctx.wrapper, ctx.node.Kind)
	}
	ctx.levels = ctx.levels[:0]
	appendMatches := func(rules []*Rule, skipLocal, skipDefaultSiteMismatch bool) {
		for _, r := range rules {
			if skipLocal && r.Scope == ScopeLocal {
				continue
			}
			_ = skipDefaultSiteMismatch
			m, ok := matchRule(r, ctx)
			pc.RulesMatched++
			if !ok {
				continue
			}
			n := len(ctx.levels)
			if n > 0 && ctx.levels[n-1].scope == r.Scope && ctx.levels[n-1].specificity == r.Specificity {
				ctx.levels[n-1].rules = append(ctx.levels[n-1].rules, r)
				ctx.levels[n-1].matches = append(ctx.levels[n-1].matches, m)
			} else {
				ctx.levels = append(ctx.levels, matchLevel{
					scope: r.Scope, specificity: r.Specificity,
					rules: []*Rule{r}, matches: []*matchResult{m},
				})
			}
		}
	}
	// Wrapper-site nodes consult the wrapper's own rules first, then the
	// defaults; mediator-site nodes consult local-scope then default.
	appendMatches(candidates, false, false)
	if ctx.wrapper != "" {
		appendMatches(e.Registry.DefaultRulesFor(ctx.node.Kind), true, false)
	} else {
		appendMatches(e.Registry.DefaultRulesFor(ctx.node.Kind), false, false)
	}
}

// closeNeed extends the needed-variable set with self-referenced earlier
// variables of the candidate formulas.
func (e *Estimator) closeNeed(ctx *nodeCtx, need map[string]bool) map[string]bool {
	out := make(map[string]bool, len(need))
	for v := range need {
		out[v] = true
	}
	if !e.Options.RequiredVarsOnly {
		for _, v := range varOrder {
			out[v] = true
		}
		return out
	}
	// A formula that fails at evaluation time falls through to lower
	// levels, so the closure must consider every level providing the
	// variable, not only the most specific one.
	for changed := true; changed; {
		changed = false
		for _, v := range varOrder {
			if !out[v] {
				continue
			}
			for li := range ctx.levels {
				for _, r := range ctx.levels[li].rules {
					if !r.Provides(v) {
						continue
					}
					for _, f := range r.Formulas {
						if f.Var != v {
							continue
						}
						for _, p := range f.Prog.Paths {
							if len(p) == 1 && isVarName(p[0]) && !out[canonVar(p[0])] {
								out[canonVar(p[0])] = true
								changed = true
							}
						}
					}
					for _, f := range r.Lets {
						for _, p := range f.Prog.Paths {
							if len(p) == 1 && isVarName(p[0]) && !out[canonVar(p[0])] {
								out[canonVar(p[0])] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return out
}

// childRequirements inspects the selected formulas' parameter paths and
// computes, for each child, the set of result variables the formulas will
// read from it (paper §4.2 optimization i).
func (e *Estimator) childRequirements(ctx *nodeCtx) []map[string]bool {
	reqs := make([]map[string]bool, len(ctx.children))
	for i := range reqs {
		reqs[i] = map[string]bool{}
	}
	if len(ctx.children) == 0 {
		return reqs
	}
	if !e.Options.RequiredVarsOnly {
		for i := range reqs {
			for _, v := range varOrder {
				reqs[i][v] = true
			}
		}
		return reqs
	}
	addPathReq := func(m *matchResult, p []string) {
		if len(p) != 2 || !isVarName(p[1]) {
			return
		}
		b, ok := m.lookup(p[0])
		if !ok || b.kind != bindColl || b.ctx == nil {
			return
		}
		for i, c := range ctx.children {
			if c == b.ctx {
				reqs[i][canonVar(p[1])] = true
			}
		}
	}
	// Union the references of every level a needed variable's evaluation
	// could fall through to: evaluation tries lower levels when a
	// formula fails (missing stats, unsatisfied require()), so lower
	// levels count too — until a level holds an infallible formula,
	// which is guaranteed to stop the fallback there.
	for _, v := range varOrder {
		if !ctx.need[v] {
			continue
		}
	levelLoop:
		for li := range ctx.levels {
			level := &ctx.levels[li]
			settled := false
			for ri, r := range level.rules {
				if !r.Provides(v) {
					continue
				}
				m := level.matches[ri]
				for _, f := range r.Formulas {
					if f.Var != v {
						continue
					}
					if formulaInfallible(f) && len(r.Lets) == 0 {
						settled = true
					}
					for _, p := range f.Prog.Paths {
						addPathReq(m, p)
					}
				}
				for _, f := range r.Lets {
					for _, p := range f.Prog.Paths {
						addPathReq(m, p)
					}
				}
			}
			if settled {
				break levelLoop
			}
		}
	}
	return reqs
}

// formulaInfallible reports whether a formula can never fail at
// evaluation time: it reads no parameters and performs no calls.
func formulaInfallible(f Formula) bool {
	return len(f.Prog.Paths) == 0 && len(f.Prog.Names) == 0
}

// apply evaluates the selected formulas in canonical variable order. For
// each variable, all formulas of the most specific providing level are
// evaluated and the lowest value is kept (paper §4.2 Step 3); formulas
// that fail (missing statistics, arithmetic errors) are skipped, and if a
// whole level fails the next, less specific level is tried. The default
// scope guarantees termination with a value for every variable.
func (e *Estimator) apply(ctx *nodeCtx, pc *PlanCost) error {
	ctx.vars = make(map[string]float64, len(varOrder))
	ctx.letCache = nil

	var trace map[string]string
	if e.Options.Trace {
		trace = make(map[string]string)
	}
	for _, v := range varOrder {
		if !ctx.need[v] {
			continue
		}
		best := 0.0
		found := false
		var src string
		// Walk levels most-specific-first; the first level where at
		// least one formula evaluates wins.
		for li := range ctx.levels {
			level := &ctx.levels[li]
			levelHas := false
			for ri, r := range level.rules {
				m := level.matches[ri]
				for _, f := range r.Formulas {
					if f.Var != v {
						continue
					}
					levelHas = true
					val, err := e.evalFormula(ctx, r, m, f, pc)
					if err != nil {
						continue
					}
					if !found || val < best {
						best = val
						src = r.String()
					}
					found = true
				}
			}
			if levelHas && found {
				break // more specific level supplied the value
			}
		}
		if found {
			ctx.vars[v] = best
			if trace != nil {
				trace[v] = src
			}
		}
	}
	ctx.trace = trace
	return nil
}

// evalFormula evaluates one formula against the node, lazily evaluating
// the owning rule's lets first.
func (e *Estimator) evalFormula(ctx *nodeCtx, r *Rule, m *matchResult, f Formula, pc *PlanCost) (float64, error) {
	env := &evalEnv{est: e, ctx: ctx, rule: r, match: m}
	// Per-rule lets, evaluated once per (node, rule) and cached so that
	// same-named lets of different rules cannot clash.
	if len(r.Lets) > 0 {
		if ctx.letCache == nil {
			ctx.letCache = make(map[*Rule]map[string]types.Constant)
		}
		locals, done := ctx.letCache[r]
		if !done {
			locals = make(map[string]types.Constant, len(r.Lets))
			env.locals = locals
			for _, let := range r.Lets {
				pc.FormulaEvals++
				v, err := let.Prog.Eval(env)
				if err != nil {
					return 0, err
				}
				locals[let.Var] = v
			}
			ctx.letCache[r] = locals
		}
		env.locals = locals
	}
	pc.FormulaEvals++
	v, err := f.Prog.Eval(env)
	if err != nil {
		return 0, err
	}
	if !v.IsNumeric() {
		return 0, fmt.Errorf("core: formula for %s returned non-numeric %s", f.Var, v)
	}
	x := v.AsFloat()
	if x < 0 {
		x = 0
	}
	return x, nil
}

func isVarName(name string) bool {
	for _, v := range varOrder {
		if strings.EqualFold(v, name) {
			return true
		}
	}
	return false
}

func canonVar(name string) string {
	for _, v := range varOrder {
		if strings.EqualFold(v, name) {
			return v
		}
	}
	return name
}

// Explain renders a per-node report of the estimate with the chosen rules;
// requires Options.Trace.
func (e *Estimator) Explain(plan *algebra.Node, pc *PlanCost) string {
	var b strings.Builder
	var visit func(n *algebra.Node, depth int)
	visit = func(n *algebra.Node, depth int) {
		nc := pc.ByNode[n]
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s", indent, strings.TrimSpace(strings.SplitN(n.String(), "\n", 2)[0]))
		if nc != nil {
			keys := make([]string, 0, len(nc.Vars))
			for k := range nc.Vars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%.4g", k, nc.Vars[k]))
			}
			fmt.Fprintf(&b, "  {%s}", strings.Join(parts, " "))
			if len(nc.ChosenRules) > 0 {
				if r, ok := nc.ChosenRules["TotalTime"]; ok {
					fmt.Fprintf(&b, "  via %s", r)
				}
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(plan, 0)
	return b.String()
}
