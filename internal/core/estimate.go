package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"disco/internal/algebra"
	"disco/internal/costvm"
	"disco/internal/types"
)

// The canonical result variables, in evaluation order. Size statistics are
// computed before times so that time formulas may reference them; TimeNext
// comes last so the generic model can derive it from TotalTime and
// TimeFirst. Formulas referencing a self variable that appears later in
// this order fail and fall back, which keeps evaluation well-founded.
var varOrder = []string{"CountObject", "ObjectSize", "TotalSize", "TimeFirst", "TotalTime", "TimeNext"}

// AllVars returns the canonical result variables in evaluation order.
func AllVars() []string { return append([]string(nil), varOrder...) }

// ErrOverBudget is returned by Estimate when branch-and-bound pruning
// aborted the estimation because a subplan already costs more than the
// best complete plan seen so far (paper §4.3.2).
var ErrOverBudget = errors.New("core: plan cost exceeds budget, estimation aborted")

// NetProvider supplies per-wrapper communication parameters for the
// submit operator's cost (paper assumes uniform communication costs; the
// netsim package provides non-uniform ones as an extension).
type NetProvider interface {
	// LatencyMS is the per-message overhead in milliseconds.
	LatencyMS(wrapper string) float64
	// PerByteMS is the transfer cost per byte in milliseconds.
	PerByteMS(wrapper string) float64
}

// UniformNet is the paper's uniform communication model.
type UniformNet struct {
	Latency float64
	PerByte float64
}

// LatencyMS implements NetProvider.
func (u UniformNet) LatencyMS(string) float64 { return u.Latency }

// PerByteMS implements NetProvider.
func (u UniformNet) PerByteMS(string) float64 { return u.PerByte }

// Options control the estimation algorithm's optional behaviours; the E6
// ablation toggles them.
type Options struct {
	// RequiredVarsOnly enables the paper's phase-1 optimization: only
	// formulas computing variables some ancestor consumes are selected,
	// and recursion into a child that owes nothing is cut (§4.2).
	RequiredVarsOnly bool
	// Budget, when positive, aborts estimation with ErrOverBudget as soon
	// as any node's TotalTime exceeds it (§4.3.2).
	Budget float64
	// RootVars restricts which variables the caller needs at the plan
	// root (nil means all). Only meaningful with RequiredVarsOnly.
	RootVars []string
	// Trace records which rule supplied each variable, for Explain.
	Trace bool
}

// NodeCost is the estimate computed for one plan node.
type NodeCost struct {
	// Vars holds the computed result variables (milliseconds for times,
	// objects and bytes for sizes). Only required variables are present
	// when RequiredVarsOnly is set.
	Vars map[string]float64
	// ChosenRules maps variable -> description of the rule that supplied
	// it (only with Options.Trace).
	ChosenRules map[string]string
}

// Var returns a computed variable, or def when it was not computed.
func (n *NodeCost) Var(name string, def float64) float64 {
	if v, ok := n.Vars[name]; ok {
		return v
	}
	return def
}

// TotalTime returns the node's TotalTime estimate in milliseconds.
func (n *NodeCost) TotalTime() float64 { return n.Var("TotalTime", 0) }

// PlanCost is the result of estimating a whole plan.
type PlanCost struct {
	Root   *NodeCost
	ByNode map[*algebra.Node]*NodeCost
	// Metrics of the estimation run (the E6 ablation reports them).
	NodesVisited int
	FormulaEvals int
	RulesMatched int
}

// TotalTime returns the root TotalTime in milliseconds.
func (p *PlanCost) TotalTime() float64 { return p.Root.TotalTime() }

// RootCost is the root-only result of EstimateRoot: the plan's computed
// result variables without the per-node maps of PlanCost. The optimizer's
// candidate pricing loop needs nothing more, and building it allocates
// nothing.
type RootCost struct {
	vars [NumVars]float64
	set  VarSet
}

// Var returns a computed root variable, or def when it was not computed.
func (r RootCost) Var(name string, def float64) float64 {
	if vi := varIndex(name); vi >= 0 && r.set.Has(vi) {
		return r.vars[vi]
	}
	return def
}

// TotalTime returns the root TotalTime estimate in milliseconds.
func (r RootCost) TotalTime() float64 {
	if r.set.Has(idxTotalTime) {
		return r.vars[idxTotalTime]
	}
	return 0
}

// TimeFirst returns the root TimeFirst estimate, falling back to
// TotalTime when it was not computed.
func (r RootCost) TimeFirst() float64 {
	if r.set.Has(idxTimeFirst) {
		return r.vars[idxTimeFirst]
	}
	return r.TotalTime()
}

// Estimator evaluates plan costs against the integrated rule hierarchy.
// An Estimator is cheap to construct and safe for sequential reuse; use
// one per goroutine — Clone makes an independent per-goroutine copy over
// the same (read-only) registry, view and network model. Reuse is what
// makes estimation fast: the estimator keeps a private scratch arena of
// node contexts, match results and VM stacks that reaches a steady state
// after the first few plans, after which estimation allocates nothing.
type Estimator struct {
	Registry *Registry
	View     CatalogView
	Net      NetProvider
	// Globals are mediator-level coefficients resolvable from any formula
	// (PageSize, the generic model's calibrated constants, ...). Wrapper
	// globals shadow them.
	Globals map[string]types.Constant
	Options Options
	// Pinned fixes nodes' result statistics to observed actuals (adaptive
	// re-optimization pins already-materialized subtrees). Nil — the
	// normal case — changes nothing. Shared read-only across Clone, like
	// Globals.
	Pinned map[*algebra.Node]PinnedVars

	// scr is the reusable per-estimator scratch arena; lazily initialized
	// so zero-value and literal-constructed estimators work.
	scr *scratch
}

// NewEstimator builds an estimator with the generic-model default
// coefficients.
func NewEstimator(reg *Registry, view CatalogView, net NetProvider) *Estimator {
	if net == nil {
		net = UniformNet{Latency: 10, PerByte: 0.0005}
	}
	return &Estimator{
		Registry: reg,
		View:     view,
		Net:      net,
		Globals:  DefaultCoefficients(),
	}
}

// Clone returns an independent estimator for use on another goroutine.
// The registry, catalog view, network model and globals are shared — they
// are read-only during estimation — while Options (including the mutable
// per-search pruning Budget) are copied and the scratch arena is dropped
// (each clone lazily grows its own), so concurrent estimations never
// observe each other's state. The parallel plan search clones one
// estimator per worker.
func (e *Estimator) Clone() *Estimator {
	c := *e
	c.scr = nil
	c.Options.RootVars = append([]string(nil), e.Options.RootVars...)
	return &c
}

// Reset clears the per-search option state (the branch-and-bound pruning
// budget) so a reused or pooled estimator starts its next search clean.
func (e *Estimator) Reset() { e.Options.Budget = 0 }

// scratch is the estimator's reusable working memory. Node contexts and
// match results are pooled behind stable pointers (used counters reset per
// estimation, the objects and their inner slice capacities survive), and
// one VM evaluation stack plus one eval environment are shared by every
// formula evaluation. Estimation metrics accumulate here and are copied
// into PlanCost at the end.
type scratch struct {
	ctxs    []*nodeCtx
	ctxUsed int

	matches   []*matchResult
	matchUsed int

	vmStack []types.Constant
	env     evalEnv

	nodesVisited int
	formulaEvals int
	rulesMatched int
}

func (s *scratch) reset() {
	s.ctxUsed = 0
	s.matchUsed = 0
	s.nodesVisited = 0
	s.formulaEvals = 0
	s.rulesMatched = 0
}

func (s *scratch) newCtx() *nodeCtx {
	if s.ctxUsed < len(s.ctxs) {
		c := s.ctxs[s.ctxUsed]
		s.ctxUsed++
		c.reset()
		return c
	}
	c := &nodeCtx{}
	s.ctxs = append(s.ctxs, c)
	s.ctxUsed++
	return c
}

// takeMatch hands out a reset pooled match result; untakeMatch returns
// the most recent one (a failed unification) to the pool.
func (s *scratch) takeMatch() *matchResult {
	if s.matchUsed < len(s.matches) {
		m := s.matches[s.matchUsed]
		s.matchUsed++
		m.reset()
		return m
	}
	m := &matchResult{}
	s.matches = append(s.matches, m)
	s.matchUsed++
	return m
}

func (s *scratch) untakeMatch() { s.matchUsed-- }

// nodeCtx is the per-node working state of one estimation pass. Contexts
// are pooled on the estimator scratch; reset keeps the slice capacities.
type nodeCtx struct {
	node     *algebra.Node
	wrapper  string // executing site: "" = mediator
	children []*nodeCtx
	// derivedColl/-Wrapper identify the single base collection the node's
	// result derives from, when there is one (select/project/... chains
	// over one scan); joins and unions have none.
	derivedColl    string
	derivedWrapper string

	vars    [NumVars]float64  // computed result variables, indexed like varOrder
	varsSet VarSet            // which entries of vars are computed
	trace   map[string]string // variable -> chosen rule (Options.Trace)
	need    VarSet

	// Phase-1 association result: matched (rule, bindings) pairs in
	// most-specific-first order, flat, with levels delimiting the runs of
	// equal (scope, specificity).
	levels   []matchLevel
	mrules   []*Rule
	mmatches []*matchResult

	// Per-rule evaluated lets of this node (small linear-scanned cache).
	lets []letEntry
}

func (c *nodeCtx) reset() {
	c.node = nil
	c.wrapper = ""
	c.children = c.children[:0]
	c.derivedColl = ""
	c.derivedWrapper = ""
	c.vars = [NumVars]float64{}
	c.varsSet = 0
	c.trace = nil
	c.need = 0
	c.levels = c.levels[:0]
	c.mrules = c.mrules[:0]
	c.mmatches = c.mmatches[:0]
	c.lets = c.lets[:0]
}

// matchLevel delimits the matched rules of one (scope, specificity) level:
// indexes [start, end) into the context's flat mrules/mmatches.
type matchLevel struct {
	scope       Scope
	specificity int
	start, end  int
}

// letEntry caches one rule's evaluated lets for the current node.
type letEntry struct {
	rule *Rule
	vals []letVal
}

// letVal is one evaluated let, keyed by its exact source spelling.
type letVal struct {
	name string
	val  types.Constant
}

// letsFor returns the cached lets of a rule, if already evaluated.
func (c *nodeCtx) letsFor(r *Rule) ([]letVal, bool) {
	for i := range c.lets {
		if c.lets[i].rule == r {
			return c.lets[i].vals, true
		}
	}
	return nil, false
}

// addLets appends a (reused-capacity) cache entry for a rule's lets.
func (c *nodeCtx) addLets(r *Rule) *letEntry {
	if len(c.lets) < cap(c.lets) {
		c.lets = c.lets[:len(c.lets)+1]
	} else {
		c.lets = append(c.lets, letEntry{})
	}
	e := &c.lets[len(c.lets)-1]
	e.rule = r
	e.vals = e.vals[:0]
	return e
}

// dropLastLets removes the entry addLets just created (a let failed to
// evaluate; failures are not cached, matching the fallback semantics).
func (c *nodeCtx) dropLastLets() { c.lets = c.lets[:len(c.lets)-1] }

// run executes the two-phase algorithm over a resolved plan and returns
// the root context; the context tree is valid until the estimator's next
// estimation.
func (e *Estimator) run(plan *algebra.Node) (*nodeCtx, error) {
	if e.scr == nil {
		e.scr = &scratch{}
	}
	sc := e.scr
	sc.reset()
	root := e.buildCtx(sc, plan, "")
	var need VarSet
	if e.Options.RequiredVarsOnly && len(e.Options.RootVars) > 0 {
		for _, v := range e.Options.RootVars {
			if vi := varIndex(v); vi >= 0 {
				need = need.With(vi)
			}
		}
	} else {
		need = allVarSet
	}
	if err := e.estimateNode(sc, root, need); err != nil {
		return nil, err
	}
	return root, nil
}

// Estimate runs the two-phase algorithm of Figure 11 over a resolved plan
// and returns per-node costs. The plan must have been resolved
// (algebra.Resolve) so schemas are available.
func (e *Estimator) Estimate(plan *algebra.Node) (*PlanCost, error) {
	root, err := e.run(plan)
	if err != nil {
		return nil, err
	}
	sc := e.scr
	pc := &PlanCost{
		ByNode:       make(map[*algebra.Node]*NodeCost, sc.ctxUsed),
		NodesVisited: sc.nodesVisited,
		FormulaEvals: sc.formulaEvals,
		RulesMatched: sc.rulesMatched,
	}
	collect(root, pc)
	pc.Root = pc.ByNode[plan]
	return pc, nil
}

// EstimateRoot estimates a resolved plan and returns only the root result
// variables. It is the optimizer's candidate-pricing fast path: the same
// algorithm as Estimate, without materializing the per-node cost maps —
// in steady state it performs no heap allocation at all.
func (e *Estimator) EstimateRoot(plan *algebra.Node) (RootCost, error) {
	root, err := e.run(plan)
	if err != nil {
		return RootCost{}, err
	}
	return RootCost{vars: root.vars, set: root.varsSet}, nil
}

// collect copies the pooled context tree into the long-lived PlanCost
// maps (the contexts themselves are reused by the next estimation).
func collect(ctx *nodeCtx, pc *PlanCost) {
	vars := make(map[string]float64, NumVars)
	for vi := 0; vi < NumVars; vi++ {
		if ctx.varsSet.Has(vi) {
			vars[varOrder[vi]] = ctx.vars[vi]
		}
	}
	pc.ByNode[ctx.node] = &NodeCost{Vars: vars, ChosenRules: ctx.trace}
	for _, c := range ctx.children {
		collect(c, pc)
	}
}

// buildCtx computes the static per-node context: executing wrapper and
// derived collection.
func (e *Estimator) buildCtx(sc *scratch, n *algebra.Node, wrapper string) *nodeCtx {
	ctx := sc.newCtx()
	ctx.node = n
	ctx.wrapper = wrapper
	// A scan always executes at the wrapper that owns its collection,
	// whether or not a submit boundary has been placed above it yet; and
	// a submit node models the target wrapper's boundary (delivery and
	// shipping), so the target's rules — exported submit rules and
	// query-scope history rules — apply to it.
	if (n.Kind == algebra.OpScan || n.Kind == algebra.OpSubmit) && wrapper == "" {
		ctx.wrapper = n.Wrapper
	}
	childWrapper := wrapper
	if n.Kind == algebra.OpSubmit {
		childWrapper = n.Wrapper
	}
	for _, c := range n.Children {
		ctx.children = append(ctx.children, e.buildCtx(sc, c, childWrapper))
	}
	// Site inference: an operator with no submit boundary above it
	// executes where its inputs live — if every child runs at the same
	// wrapper (and none is a submit, whose output is mediator-side), the
	// operator is co-located with them. Plans produced by the optimizer
	// carry explicit submits; inference covers hand-built access paths.
	if ctx.wrapper == "" && n.Kind != algebra.OpSubmit && len(ctx.children) > 0 {
		site := ctx.children[0].wrapper
		ok := site != "" && ctx.children[0].node.Kind != algebra.OpSubmit
		for _, c := range ctx.children[1:] {
			if c.wrapper != site || c.node.Kind == algebra.OpSubmit {
				ok = false
			}
		}
		if ok {
			ctx.wrapper = site
		}
	}
	switch n.Kind {
	case algebra.OpScan:
		ctx.derivedColl = n.Collection
		ctx.derivedWrapper = n.Wrapper
	case algebra.OpSelect, algebra.OpProject, algebra.OpSort,
		algebra.OpDupElim, algebra.OpSubmit:
		ctx.derivedColl = ctx.children[0].derivedColl
		ctx.derivedWrapper = ctx.children[0].derivedWrapper
	default:
		// joins, unions, aggregates derive from no single collection
	}
	return ctx
}

// estimateNode is the recursive step of Figure 11: (1) associate formulas
// with the node, (2) recurse into children that owe variables, (3) apply
// the formulas bottom-up.
func (e *Estimator) estimateNode(sc *scratch, ctx *nodeCtx, need VarSet) error {
	sc.nodesVisited++
	// Pinned nodes are facts, not estimates: their recorded actuals are
	// the answer and the subtree below them is never visited.
	if pv, ok := e.Pinned[ctx.node]; ok {
		pinCtx(ctx, pv)
		return nil
	}
	// Step 1: associate cost formulas with node (most specific rules).
	e.associate(sc, ctx)

	// Close `need` under self-references: a needed variable's candidate
	// formulas may read earlier self variables.
	ctx.need = e.closeNeed(ctx, need)

	// Determine what each child must compute for the selected formulas.
	var childNeeds [2]VarSet
	e.childRequirements(ctx, &childNeeds)

	// Step 2: recursive traversal (cut when a child owes nothing).
	for i, child := range ctx.children {
		cn := childNeeds[i]
		if e.Options.RequiredVarsOnly && cn.Empty() {
			continue // traversal cut (§4.2 optimization ii)
		}
		if err := e.estimateNode(sc, child, cn); err != nil {
			return err
		}
	}

	// Step 3: apply formulas to node.
	e.apply(sc, ctx)
	if e.Options.Budget > 0 &&
		ctx.varsSet.Has(idxTotalTime) && ctx.vars[idxTotalTime] > e.Options.Budget {
		return ErrOverBudget
	}
	return nil
}

// associate matches the node against the rule hierarchy and stores the
// matching levels, most specific first (paper §4.2 Step 1).
func (e *Estimator) associate(sc *scratch, ctx *nodeCtx) {
	ctx.levels = ctx.levels[:0]
	ctx.mrules = ctx.mrules[:0]
	ctx.mmatches = ctx.mmatches[:0]
	// Wrapper-site nodes consult the wrapper's own rules first, then the
	// defaults; mediator-site nodes consult local-scope then default.
	if ctx.wrapper != "" {
		e.appendMatches(sc, ctx, e.Registry.WrapperRulesFor(ctx.wrapper, ctx.node.Kind), false)
		e.appendMatches(sc, ctx, e.Registry.DefaultRulesFor(ctx.node.Kind), true)
	} else {
		e.appendMatches(sc, ctx, e.Registry.DefaultRulesFor(ctx.node.Kind), false)
	}
}

func (e *Estimator) appendMatches(sc *scratch, ctx *nodeCtx, rules []*Rule, skipLocal bool) {
	for _, r := range rules {
		if skipLocal && r.Scope == ScopeLocal {
			continue
		}
		m := sc.takeMatch()
		sc.rulesMatched++
		if !matchRule(r, ctx, m) {
			sc.untakeMatch()
			continue
		}
		n := len(ctx.levels)
		if n > 0 && ctx.levels[n-1].scope == r.Scope && ctx.levels[n-1].specificity == r.Specificity {
			ctx.levels[n-1].end++
		} else {
			ctx.levels = append(ctx.levels, matchLevel{
				scope: r.Scope, specificity: r.Specificity,
				start: len(ctx.mrules), end: len(ctx.mrules) + 1,
			})
		}
		ctx.mrules = append(ctx.mrules, r)
		ctx.mmatches = append(ctx.mmatches, m)
	}
}

// closeNeed extends the needed-variable set with self-referenced earlier
// variables of the candidate formulas. The per-rule closures are
// precomputed at integration time (Rule.Finalize), so the fixpoint is a
// handful of bitmask folds.
func (e *Estimator) closeNeed(ctx *nodeCtx, need VarSet) VarSet {
	if !e.Options.RequiredVarsOnly {
		return allVarSet
	}
	// A formula that fails at evaluation time falls through to lower
	// levels, so the closure must consider every level providing the
	// variable, not only the most specific one.
	out := need
	for changed := true; changed; {
		changed = false
		for _, r := range ctx.mrules {
			avail := r.provides & out
			for vi := 0; vi < NumVars; vi++ {
				if !avail.Has(vi) {
					continue
				}
				if nw := out | r.closure[vi]; nw != out {
					out = nw
					changed = true
				}
			}
		}
	}
	return out
}

// childRequirements inspects the selected formulas' parameter paths and
// computes, for each child, the set of result variables the formulas will
// read from it (paper §4.2 optimization i). Children number at most two,
// so the result lives in a caller-provided array.
func (e *Estimator) childRequirements(ctx *nodeCtx, reqs *[2]VarSet) {
	if len(ctx.children) == 0 {
		return
	}
	if !e.Options.RequiredVarsOnly {
		for i := range ctx.children {
			reqs[i] = allVarSet
		}
		return
	}
	// Union the references of every level a needed variable's evaluation
	// could fall through to: evaluation tries lower levels when a
	// formula fails (missing stats, unsatisfied require()), so lower
	// levels count too — until a level holds an infallible formula,
	// which is guaranteed to stop the fallback there.
	for vi := 0; vi < NumVars; vi++ {
		if !ctx.need.Has(vi) {
			continue
		}
		for li := range ctx.levels {
			lv := &ctx.levels[li]
			settled := false
			for ri := lv.start; ri < lv.end; ri++ {
				r := ctx.mrules[ri]
				if !r.provides.Has(vi) {
					continue
				}
				if r.settles.Has(vi) {
					settled = true
				}
				m := ctx.mmatches[ri]
				for _, cr := range r.childRefs[vi] {
					b, ok := m.lookup(cr.name)
					if !ok || b.kind != bindColl || b.ctx == nil {
						continue
					}
					for i, c := range ctx.children {
						if c == b.ctx {
							reqs[i] = reqs[i].With(cr.vi)
						}
					}
				}
			}
			if settled {
				break
			}
		}
	}
}

// formulaInfallible reports whether a formula can never fail at
// evaluation time: it reads no parameters and performs no calls.
func formulaInfallible(f Formula) bool {
	return len(f.Prog.Paths) == 0 && len(f.Prog.Names) == 0
}

// apply evaluates the selected formulas in canonical variable order. For
// each variable, all formulas of the most specific providing level are
// evaluated and the lowest value is kept (paper §4.2 Step 3); formulas
// that fail (missing statistics, arithmetic errors) are skipped, and if a
// whole level fails the next, less specific level is tried. The default
// scope guarantees termination with a value for every variable.
func (e *Estimator) apply(sc *scratch, ctx *nodeCtx) {
	ctx.varsSet = 0
	ctx.lets = ctx.lets[:0]

	var trace map[string]string
	if e.Options.Trace {
		trace = make(map[string]string)
	}
	for vi := 0; vi < NumVars; vi++ {
		if !ctx.need.Has(vi) {
			continue
		}
		best := 0.0
		found := false
		var src string
		// Walk levels most-specific-first; the first level where at
		// least one formula evaluates wins.
		for li := range ctx.levels {
			lv := &ctx.levels[li]
			levelHas := false
			for ri := lv.start; ri < lv.end; ri++ {
				r := ctx.mrules[ri]
				if !r.provides.Has(vi) {
					continue
				}
				m := ctx.mmatches[ri]
				for fi := range r.Formulas {
					f := &r.Formulas[fi]
					if f.varIdx != vi {
						continue
					}
					levelHas = true
					val, err := e.evalFormula(sc, ctx, r, m, f)
					if err != nil {
						continue
					}
					if !found || val < best {
						best = val
						if trace != nil {
							src = r.String()
						}
					}
					found = true
				}
			}
			if levelHas && found {
				break // more specific level supplied the value
			}
		}
		if found {
			ctx.vars[vi] = best
			ctx.varsSet = ctx.varsSet.With(vi)
			if trace != nil {
				trace[varOrder[vi]] = src
			}
		}
	}
	ctx.trace = trace
}

// evalFormula evaluates one formula against the node, lazily evaluating
// the owning rule's lets first. The eval environment and VM stack come
// from the estimator scratch, so steady-state evaluation is allocation
// free.
func (e *Estimator) evalFormula(sc *scratch, ctx *nodeCtx, r *Rule, m *matchResult, f *Formula) (float64, error) {
	env := &sc.env
	env.est = e
	env.ctx = ctx
	env.rule = r
	env.match = m
	env.locals = nil
	// Per-rule lets, evaluated once per (node, rule) and cached so that
	// same-named lets of different rules cannot clash. Failed lets are
	// not cached: the next formula of the rule retries (and fails the
	// same way), preserving the fallback semantics.
	if len(r.Lets) > 0 {
		if vals, ok := ctx.letsFor(r); ok {
			env.locals = vals
		} else {
			entry := ctx.addLets(r)
			for _, let := range r.Lets {
				sc.formulaEvals++
				v, err := e.evalProg(sc, env, let.Prog)
				if err != nil {
					ctx.dropLastLets()
					return 0, err
				}
				entry.vals = append(entry.vals, letVal{name: let.Var, val: v})
				// Later lets may reference earlier ones.
				env.locals = entry.vals
			}
			env.locals = entry.vals
		}
	}
	sc.formulaEvals++
	v, err := e.evalProg(sc, env, f.Prog)
	if err != nil {
		return 0, err
	}
	if !v.IsNumeric() {
		return 0, fmt.Errorf("core: formula for %s returned non-numeric %s", f.Var, v)
	}
	x := v.AsFloat()
	if x < 0 {
		x = 0
	}
	return x, nil
}

// evalProg runs a program on the scratch VM stack, growing it to the
// largest MaxStack seen so EvalStack never reallocates.
func (e *Estimator) evalProg(sc *scratch, env *evalEnv, p *costvm.Program) (types.Constant, error) {
	if cap(sc.vmStack) < p.MaxStack {
		sc.vmStack = make([]types.Constant, 0, p.MaxStack+8)
	}
	return p.EvalStack(env, sc.vmStack)
}

// Explain renders a per-node report of the estimate with the chosen rules;
// requires Options.Trace.
func (e *Estimator) Explain(plan *algebra.Node, pc *PlanCost) string {
	var b strings.Builder
	var visit func(n *algebra.Node, depth int)
	visit = func(n *algebra.Node, depth int) {
		nc := pc.ByNode[n]
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s", indent, strings.TrimSpace(strings.SplitN(n.String(), "\n", 2)[0]))
		if nc != nil {
			keys := make([]string, 0, len(nc.Vars))
			for k := range nc.Vars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%.4g", k, nc.Vars[k]))
			}
			fmt.Fprintf(&b, "  {%s}", strings.Join(parts, " "))
			if len(nc.ChosenRules) > 0 {
				if r, ok := nc.ChosenRules["TotalTime"]; ok {
					fmt.Fprintf(&b, "  via %s", r)
				}
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			visit(c, depth+1)
		}
	}
	visit(plan, 0)
	return b.String()
}
