// Package core implements the paper's primary contribution: the
// heterogeneous, extensible cost model of the DISCO mediator. Wrapper cost
// rules written in the cost communication language (internal/costlang) are
// integrated at registration time into a specialization hierarchy of
// scopes (paper Figure 10); during optimization the two-phase estimation
// algorithm (paper Figure 11) blends the most specific applicable formulas
// with the mediator's generic cost model, per result variable.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/algebra"
	"disco/internal/costlang"
	"disco/internal/costvm"
	"disco/internal/stats"
	"disco/internal/types"
)

// Scope is the applicability domain of a rule in the specialization
// hierarchy. Higher values are more specific and are matched first
// (paper §4.1/§4.2: query > predicate > collection > wrapper > local >
// default).
type Scope uint8

// The scope lattice of Figure 10 plus the mediator-side scopes.
const (
	// ScopeDefault holds the mediator's generic cost model: a rule for
	// every variable of every operator, guaranteed to match.
	ScopeDefault Scope = iota
	// ScopeLocal holds rules for operators executed by the mediator's own
	// engine (above submit boundaries).
	ScopeLocal
	// ScopeWrapper rules apply to any collection and predicate of one
	// data source.
	ScopeWrapper
	// ScopeCollection rules apply to one specific collection of a source.
	ScopeCollection
	// ScopePredicate rules apply to a specific collection with a specific
	// predicate shape (bound attribute and/or bound value).
	ScopePredicate
	// ScopeQuery rules record the observed cost of one exact subquery
	// (the historical extension of §4.3.1).
	ScopeQuery
	// ScopeCache prices a subplan whose materialized result the mediator
	// already holds (internal/resultcache): submit cost collapses to an
	// in-memory lookup and the cardinality is known exactly. It sits
	// above ScopeQuery — nothing is more specific than having the answer
	// — and is the result cache's slot in the paper's extensible
	// hierarchy; the optimizer applies it directly rather than through
	// integrated rules.
	ScopeCache
)

// String renders the scope name.
func (s Scope) String() string {
	switch s {
	case ScopeDefault:
		return "default"
	case ScopeLocal:
		return "local"
	case ScopeWrapper:
		return "wrapper"
	case ScopeCollection:
		return "collection"
	case ScopePredicate:
		return "predicate"
	case ScopeQuery:
		return "query"
	case ScopeCache:
		return "cache"
	default:
		return fmt.Sprintf("scope(%d)", uint8(s))
	}
}

// TermKind classifies one rule-head argument after integration.
type TermKind uint8

// Head-term kinds.
const (
	// TermVar is a free variable that unifies with anything in its
	// position.
	TermVar TermKind = iota
	// TermCollection is a bound collection name.
	TermCollection
	// TermCmp is an attribute-comparison pattern.
	TermCmp
)

// HeadTerm is one classified rule-head argument.
type HeadTerm struct {
	Kind TermKind
	// Name is the variable name (TermVar) or collection name
	// (TermCollection).
	Name string
	// Comparison pattern (TermCmp).
	Attr     string // bound attribute name; empty when AttrVar is set
	AttrVar  string // variable name binding the attribute
	Op       stats.CmpOp
	Value    types.Constant // bound value; meaningful when ValueVar is empty
	ValueVar string         // variable name binding the value
	BoundVal bool           // whether Value is a bound constant
	// ValueIsAttr marks a bound value that names an attribute (a
	// join-style head such as join(E, B, id = author)); it matches the
	// right-hand attribute of a join conjunct rather than a constant.
	ValueIsAttr bool
}

// String renders the classified term.
func (t HeadTerm) String() string {
	switch t.Kind {
	case TermVar:
		return "?" + t.Name
	case TermCollection:
		return t.Name
	case TermCmp:
		attr := t.Attr
		if attr == "" {
			attr = "?" + t.AttrVar
		}
		val := t.Value.String()
		if !t.BoundVal {
			val = "?" + t.ValueVar
		}
		return attr + " " + t.Op.String() + " " + val
	default:
		return "<bad term>"
	}
}

// Formula is one compiled assignment of a rule body.
type Formula struct {
	Var  string // canonical result-variable name
	Prog *costvm.Program

	// varIdx is Var's index in varOrder (-1 when Var is not a canonical
	// result variable), filled by Rule.Finalize.
	varIdx int
}

// Rule is a compiled, integrated cost rule. Rules are immutable after
// integration and shared across estimations.
type Rule struct {
	// Op is the operator kind the rule head names.
	Op algebra.OpKind
	// Terms are the classified head arguments.
	Terms []HeadTerm
	// Lets are per-rule local definitions, evaluated in order before the
	// formulas.
	Lets []Formula
	// Formulas are the result assignments, in source order.
	Formulas []Formula
	// Scope is the rule's position in the specialization hierarchy.
	Scope Scope
	// Wrapper is the owning data source; empty for default/local rules.
	Wrapper string
	// Specificity counts bound parameters in the head (collection names,
	// attribute names, values, operator): the within-scope ordering of
	// paper §3.3.2.
	Specificity int
	// Seq is the registration order; the earlier rule wins ties
	// ("we select the first one in the order given by the wrapper
	// implementor").
	Seq int
	// Exact, when non-nil, restricts the rule to nodes whose whole
	// subtree is structurally equal to this plan — the query scope of
	// §4.3.1, where a rule records the observed cost of one exact
	// subquery.
	Exact *algebra.Node
	// Funcs resolves function calls in this rule's formulas (stdlib plus
	// the owning wrapper's defs).
	Funcs *costvm.FuncRegistry
	// Globals are the owning wrapper's top-level lets, pre-evaluated.
	Globals map[string]types.Constant
	// Source describes where the rule came from, for Explain output.
	Source string

	// Matching metadata precomputed by Finalize so the estimation hot loop
	// runs on bitsets instead of re-scanning formula strings and parameter
	// paths per node. Every registry integration path finalizes; code that
	// mutates Formulas/Lets of a registered rule in place (the history
	// recorder) must call Finalize again.
	provides  VarSet              // variables some formula assigns
	settles   VarSet              // variables with an infallible formula (and no lets)
	closure   [NumVars]VarSet     // self result variables read when computing variable i
	childRefs [NumVars][]childRef // child result variables read when computing variable i
	exactHash algebra.Hash128     // Exact plan's structural hash (when Exact != nil)
}

// childRef is one precomputed child-variable reference of a rule body: the
// head-binding name whose bound child must supply result variable vi.
type childRef struct {
	name string
	vi   int
}

// Finalize computes the rule's derived matching metadata. Registry
// integration calls it for every rule; it must be called again after any
// in-place mutation of Formulas or Lets.
func (r *Rule) Finalize() {
	// Let bodies run before every formula of the rule, so their parameter
	// references count towards every provided variable.
	var letSelf VarSet
	var letChild []childRef
	for _, f := range r.Lets {
		for _, p := range f.Prog.Paths {
			if len(p) == 1 {
				if vi := varIndex(p[0]); vi >= 0 {
					letSelf = letSelf.With(vi)
				}
			} else if len(p) == 2 {
				if vi := varIndex(p[1]); vi >= 0 {
					letChild = addChildRef(letChild, p[0], vi)
				}
			}
		}
	}
	r.provides, r.settles = 0, 0
	for i := range r.closure {
		r.closure[i] = 0
		r.childRefs[i] = nil
	}
	for i := range r.Formulas {
		f := &r.Formulas[i]
		f.varIdx = varIndexExact(f.Var)
		vi := f.varIdx
		if vi < 0 {
			continue
		}
		r.provides = r.provides.With(vi)
		if formulaInfallible(*f) && len(r.Lets) == 0 {
			r.settles = r.settles.With(vi)
		}
		r.closure[vi] |= letSelf
		for _, c := range letChild {
			r.childRefs[vi] = addChildRef(r.childRefs[vi], c.name, c.vi)
		}
		for _, p := range f.Prog.Paths {
			if len(p) == 1 {
				if j := varIndex(p[0]); j >= 0 {
					r.closure[vi] = r.closure[vi].With(j)
				}
			} else if len(p) == 2 {
				if j := varIndex(p[1]); j >= 0 {
					r.childRefs[vi] = addChildRef(r.childRefs[vi], p[0], j)
				}
			}
		}
	}
	if r.Exact != nil {
		r.exactHash = r.Exact.StructuralHash()
	}
}

func addChildRef(refs []childRef, name string, vi int) []childRef {
	for _, c := range refs {
		if c.vi == vi && strings.EqualFold(c.name, name) {
			return refs
		}
	}
	return append(refs, childRef{name: name, vi: vi})
}

// Provides reports whether the rule has a formula for the named variable.
func (r *Rule) Provides(varName string) bool {
	for _, f := range r.Formulas {
		if f.Var == varName {
			return true
		}
	}
	return false
}

// Head renders the rule head for diagnostics.
func (r *Rule) Head() string {
	parts := make([]string, len(r.Terms))
	for i, t := range r.Terms {
		parts[i] = t.String()
	}
	return r.Op.String() + "(" + strings.Join(parts, ", ") + ")"
}

// String renders scope, head and provided variables.
func (r *Rule) String() string {
	vars := make([]string, 0, len(r.Formulas))
	seen := map[string]bool{}
	for _, f := range r.Formulas {
		if !seen[f.Var] {
			vars = append(vars, f.Var)
			seen[f.Var] = true
		}
	}
	return fmt.Sprintf("[%s/%d] %s -> {%s}", r.Scope, r.Specificity, r.Head(), strings.Join(vars, ", "))
}

// CatalogView is what rule integration and estimation need to know about
// registered sources: schema membership tests for head classification and
// statistics for formula evaluation. The mediator catalog implements it.
type CatalogView interface {
	// HasCollection reports whether the wrapper exports the collection.
	HasCollection(wrapper, collection string) bool
	// HasAttribute reports whether the collection (or, when collection is
	// empty, any collection of the wrapper) has the attribute.
	HasAttribute(wrapper, collection, attr string) bool
	// Extent returns extent statistics; ok is false when the wrapper
	// exported none (the estimator then falls back to DefaultExtent).
	Extent(wrapper, collection string) (stats.ExtentStats, bool)
	// Attribute returns attribute statistics; ok is false when unknown.
	Attribute(wrapper, collection, attr string) (stats.AttributeStats, bool)
}

// DefaultExtent is the "standard values given, as usual" fallback (paper
// §6) when a source exports no statistics.
var DefaultExtent = stats.ExtentStats{CountObject: 1000, TotalSize: 100_000, ObjectSize: 100}

// DefaultAttribute is the fallback attribute statistics.
var DefaultAttribute = stats.AttributeStats{Indexed: false, CountDistinct: 100}

// Registry holds all integrated rules, bucketed per wrapper, each bucket
// pre-sorted by (scope desc, specificity desc, seq asc) so that matching
// walks candidates most-specific-first. Per-operator dispatch tables (the
// paper's "own efficient [overriding mechanism] based on kind of virtual
// tables", §3.3.2) keep matching time independent of rules for other
// operators.
//
// The registry is safe for concurrent use: estimations read rule slices
// while registrations, re-registrations, outage-driven drops and the
// history recorder's query-scope injections mutate them. Mutators publish
// copy-on-write — they build fresh slices and index maps and swap them in
// under the write lock — so a reader that fetched a slice before a
// mutation keeps iterating its (now superseded) snapshot safely; published
// rules themselves are immutable, updates replace the rule pointer.
type Registry struct {
	mu           sync.RWMutex
	defaults     []*Rule // ScopeDefault and ScopeLocal
	defaultsByOp map[algebra.OpKind][]*Rule
	byWrapper    map[string][]*Rule
	byWrapperOp  map[string]map[algebra.OpKind][]*Rule
	seq          int
	baseFuncs    *costvm.FuncRegistry
}

// NewRegistry returns an empty registry whose rules share the given base
// function registry (nil means a fresh stdlib registry).
func NewRegistry(base *costvm.FuncRegistry) *Registry {
	if base == nil {
		base = costvm.NewFuncRegistry()
	}
	return &Registry{
		byWrapper:    make(map[string][]*Rule),
		byWrapperOp:  make(map[string]map[algebra.OpKind][]*Rule),
		defaultsByOp: make(map[algebra.OpKind][]*Rule),
		baseFuncs:    base,
	}
}

// BaseFuncs exposes the shared stdlib registry (for registering extra
// mediator builtins).
func (reg *Registry) BaseFuncs() *costvm.FuncRegistry { return reg.baseFuncs }

// RuleCount reports the total number of integrated rules.
func (reg *Registry) RuleCount() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	n := len(reg.defaults)
	for _, rs := range reg.byWrapper {
		n += len(rs)
	}
	return n
}

// WrapperRules returns the integrated rules of one wrapper (sorted
// most-specific-first); the slice must not be modified.
func (reg *Registry) WrapperRules(wrapper string) []*Rule {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.byWrapper[wrapper]
}

// DefaultRules returns the default- and local-scope rules.
func (reg *Registry) DefaultRules() []*Rule {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.defaults
}

// IntegrateDefaults compiles a cost-language file into default-scope (or,
// when local is true, local-scope) rules. Head identifiers are all treated
// as free variables — the generic model never names collections.
func (reg *Registry) IntegrateDefaults(file *costlang.File, local bool) error {
	scope := ScopeDefault
	if local {
		scope = ScopeLocal
	}
	funcs := reg.baseFuncs.Clone()
	globals, err := evalGlobals(file, funcs)
	if err != nil {
		return err
	}
	for _, def := range file.Funcs {
		if err := funcs.RegisterDef(def); err != nil {
			return err
		}
	}
	fresh := make([]*Rule, 0, len(file.Rules))
	for _, rd := range file.Rules {
		rule, err := compileRule(rd, "", scope, nil, funcs, globals)
		if err != nil {
			return err
		}
		rule.Source = fmt.Sprintf("%s-scope line %d", scope, rd.Line)
		rule.Finalize()
		fresh = append(fresh, rule)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, rule := range fresh {
		rule.Seq = reg.seq
		reg.seq++
	}
	defaults := append(append([]*Rule(nil), reg.defaults...), fresh...)
	sortRules(defaults)
	reg.defaults = defaults
	reg.defaultsByOp = indexByOp(defaults)
	return nil
}

// IntegrateWrapper compiles the cost-language file a wrapper exported at
// registration time (paper §4.1). Head identifiers are classified against
// the wrapper's registered schema: known collection names and attribute
// names become bound constants, everything else a free variable.
func (reg *Registry) IntegrateWrapper(wrapper string, file *costlang.File, view CatalogView) error {
	if wrapper == "" {
		return fmt.Errorf("core: wrapper rules need a wrapper name")
	}
	funcs := reg.baseFuncs.Clone()
	globals, err := evalGlobals(file, funcs)
	if err != nil {
		return err
	}
	for _, def := range file.Funcs {
		if err := funcs.RegisterDef(def); err != nil {
			return err
		}
	}
	fresh := make([]*Rule, 0, len(file.Rules))
	for _, rd := range file.Rules {
		classify := &wrapperClassifier{wrapper: wrapper, view: view}
		rule, err := compileRule(rd, wrapper, 0, classify, funcs, globals)
		if err != nil {
			return err
		}
		rule.Scope = classify.scopeOf(rule)
		rule.Source = fmt.Sprintf("wrapper %s line %d", wrapper, rd.Line)
		rule.Finalize()
		fresh = append(fresh, rule)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, rule := range fresh {
		rule.Seq = reg.seq
		reg.seq++
	}
	rules := append(append([]*Rule(nil), reg.byWrapper[wrapper]...), fresh...)
	sortRules(rules)
	reg.byWrapper[wrapper] = rules
	reg.byWrapperOp[wrapper] = indexByOp(rules)
	return nil
}

// AddQueryRule injects a query-scope rule recording observed costs for an
// exact subquery shape; the history package uses it (§4.3.1). The head
// matcher is the provided match function, evaluated against candidate
// nodes.
func (reg *Registry) AddQueryRule(wrapper string, rule *Rule) {
	rule.Scope = ScopeQuery
	rule.Wrapper = wrapper
	rule.Finalize()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	rule.Seq = reg.seq
	reg.seq++
	if rule.Funcs == nil {
		rule.Funcs = reg.baseFuncs
	}
	rules := append(append([]*Rule(nil), reg.byWrapper[wrapper]...), rule)
	sortRules(rules)
	reg.byWrapper[wrapper] = rules
	reg.byWrapperOp[wrapper] = indexByOp(rules)
}

// ReplaceQueryRule swaps a previously injected query-scope rule for a
// fresh one carrying updated formulas, keeping its position in the
// specialization order (the replacement inherits the old rule's sequence
// number). The history recorder uses it on repeat observations of the
// same subquery shape: published rules are immutable, so updating means
// replacing the pointer, never mutating formulas in place under readers.
// A rule not (or no longer) present — e.g. dropped by an intervening
// re-registration — is ignored and false is returned.
func (reg *Registry) ReplaceQueryRule(wrapper string, old, fresh *Rule) bool {
	fresh.Scope = ScopeQuery
	fresh.Wrapper = wrapper
	fresh.Finalize()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	bucket := reg.byWrapper[wrapper]
	for i, r := range bucket {
		if r != old {
			continue
		}
		fresh.Seq = old.Seq
		fresh.Specificity = old.Specificity
		if fresh.Funcs == nil {
			fresh.Funcs = old.Funcs
		}
		rules := append([]*Rule(nil), bucket...)
		rules[i] = fresh
		reg.byWrapper[wrapper] = rules
		reg.byWrapperOp[wrapper] = indexByOp(rules)
		return true
	}
	return false
}

// DropWrapper removes every rule of a wrapper (re-registration, paper
// §2.1's administrative interface).
func (reg *Registry) DropWrapper(wrapper string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	delete(reg.byWrapper, wrapper)
	delete(reg.byWrapperOp, wrapper)
}

// WrapperRulesFor returns a wrapper's rules for one operator kind,
// most-specific-first (the dispatch-table view the estimator matches
// against).
func (reg *Registry) WrapperRulesFor(wrapper string, op algebra.OpKind) []*Rule {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	m, ok := reg.byWrapperOp[wrapper]
	if !ok {
		return nil
	}
	return m[op]
}

// DefaultRulesFor returns the default/local rules for one operator kind.
func (reg *Registry) DefaultRulesFor(op algebra.OpKind) []*Rule {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.defaultsByOp[op]
}

// indexByOp buckets sorted rules by operator kind, preserving order.
func indexByOp(rules []*Rule) map[algebra.OpKind][]*Rule {
	out := make(map[algebra.OpKind][]*Rule)
	for _, r := range rules {
		out[r.Op] = append(out[r.Op], r)
	}
	return out
}

// sortRules orders a bucket most-specific-first. Callers finalize fresh
// rules before sorting: re-finalizing already-published rules here would
// write derived fields concurrent estimations are reading.
func sortRules(rules []*Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		a, b := rules[i], rules[j]
		if a.Scope != b.Scope {
			return a.Scope > b.Scope
		}
		if a.Specificity != b.Specificity {
			return a.Specificity > b.Specificity
		}
		return a.Seq < b.Seq
	})
}

func evalGlobals(file *costlang.File, funcs *costvm.FuncRegistry) (map[string]types.Constant, error) {
	if len(file.Lets) == 0 {
		return nil, nil
	}
	globals := make(map[string]types.Constant, len(file.Lets))
	env := &globalEnv{vars: globals, funcs: funcs}
	for _, let := range file.Lets {
		prog, err := costvm.Compile(let.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: compiling let %s: %w", let.Name, err)
		}
		v, err := prog.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating let %s: %w", let.Name, err)
		}
		globals[let.Name] = v
	}
	return globals, nil
}

// globalEnv resolves top-level lets against earlier lets only.
type globalEnv struct {
	vars  map[string]types.Constant
	funcs *costvm.FuncRegistry
}

func (e *globalEnv) Lookup(path []string) (types.Constant, bool) {
	if len(path) == 1 {
		v, ok := e.vars[path[0]]
		return v, ok
	}
	return types.Null, false
}

func (e *globalEnv) Call(name string, args []types.Constant) (types.Constant, error) {
	return e.funcs.Call(name, args)
}

// wrapperClassifier classifies head identifiers against a wrapper schema.
type wrapperClassifier struct {
	wrapper string
	view    CatalogView

	boundColl bool
	boundAttr bool
	boundVal  bool
}

func (c *wrapperClassifier) collectionTerm(t costlang.HeadTerm) HeadTerm {
	if !t.Forced && c.view != nil && c.view.HasCollection(c.wrapper, t.Ident) {
		c.boundColl = true
		return HeadTerm{Kind: TermCollection, Name: t.Ident}
	}
	return HeadTerm{Kind: TermVar, Name: t.Ident}
}

func (c *wrapperClassifier) cmpTerm(boundColl string, hc *costlang.HeadCmp) HeadTerm {
	out := HeadTerm{Kind: TermCmp, Op: hc.Op}
	if !hc.AttrForced && c.view != nil && c.view.HasAttribute(c.wrapper, boundColl, hc.Attr) {
		out.Attr = hc.Attr
		c.boundAttr = true
	} else {
		out.AttrVar = hc.Attr
	}
	switch {
	case hc.Value.IsIdent() && !hc.Value.Forced && c.view != nil &&
		c.view.HasAttribute(c.wrapper, "", hc.Value.Ident):
		// A bare identifier naming a known attribute is a bound
		// attribute constant (join-style head: id = author).
		out.Value = types.Str(hc.Value.Ident)
		out.BoundVal = true
		out.ValueIsAttr = true
	case hc.Value.IsIdent():
		out.ValueVar = hc.Value.Ident
	default:
		out.Value = hc.Value.Const
		out.BoundVal = true
	}
	if out.BoundVal {
		c.boundVal = true
	}
	return out
}

// scopeOf derives the scope from what got bound during classification.
func (c *wrapperClassifier) scopeOf(*Rule) Scope {
	switch {
	case c.boundAttr || c.boundVal:
		return ScopePredicate
	case c.boundColl:
		return ScopeCollection
	default:
		return ScopeWrapper
	}
}

// compileRule classifies a parsed rule's head and compiles its body.
// classify is nil for default/local rules (everything is a variable).
func compileRule(rd *costlang.RuleDef, wrapper string, scope Scope,
	classify *wrapperClassifier, funcs *costvm.FuncRegistry,
	globals map[string]types.Constant) (*Rule, error) {

	op, ok := algebra.OpKindByName(rd.Op)
	if !ok {
		return nil, fmt.Errorf("core: rule at line %d: unknown operator %q", rd.Line, rd.Op)
	}
	rule := &Rule{Op: op, Scope: scope, Wrapper: wrapper, Funcs: funcs, Globals: globals}

	// Classify head terms. The first TermCollection seen gives the
	// context for attribute classification in later comparison terms.
	boundColl := ""
	for _, arg := range rd.Args {
		var term HeadTerm
		switch {
		case arg.Cmp != nil:
			if classify != nil {
				term = classify.cmpTerm(boundColl, arg.Cmp)
			} else {
				term = HeadTerm{Kind: TermCmp, AttrVar: arg.Cmp.Attr, Op: arg.Cmp.Op}
				if arg.Cmp.Value.IsIdent() {
					term.ValueVar = arg.Cmp.Value.Ident
				} else {
					term.Value = arg.Cmp.Value.Const
					term.BoundVal = true
				}
			}
		default:
			if classify != nil {
				term = classify.collectionTerm(arg)
				if term.Kind == TermCollection && boundColl == "" {
					boundColl = term.Name
				}
			} else {
				term = HeadTerm{Kind: TermVar, Name: arg.Ident}
			}
		}
		rule.Terms = append(rule.Terms, term)
	}
	rule.Specificity = specificity(rule.Terms)

	// Duplicate variable names in one head would make bindings ambiguous.
	seen := map[string]bool{}
	for _, t := range rule.Terms {
		for _, name := range boundNames(t) {
			key := strings.ToLower(name)
			if seen[key] {
				return nil, fmt.Errorf("core: rule %s at line %d: duplicate head variable %q", rd.Op, rd.Line, name)
			}
			seen[key] = true
		}
	}

	for _, let := range rd.Lets {
		prog, err := costvm.Compile(let.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s line %d: compiling let %s: %w", rd.Op, rd.Line, let.Name, err)
		}
		rule.Lets = append(rule.Lets, Formula{Var: let.Name, Prog: prog})
	}
	for _, as := range rd.Assigns {
		prog, err := costvm.Compile(as.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: rule %s line %d: compiling %s: %w", rd.Op, rd.Line, as.Name, err)
		}
		rule.Formulas = append(rule.Formulas, Formula{Var: as.Name, Prog: prog})
	}
	return rule, nil
}

func boundNames(t HeadTerm) []string {
	var out []string
	if t.Kind == TermVar && t.Name != "" {
		out = append(out, t.Name)
	}
	if t.Kind == TermCmp {
		if t.AttrVar != "" {
			out = append(out, t.AttrVar)
		}
		if t.ValueVar != "" {
			out = append(out, t.ValueVar)
		}
	}
	return out
}

func specificity(terms []HeadTerm) int {
	n := 0
	for _, t := range terms {
		switch t.Kind {
		case TermCollection:
			n++
		case TermCmp:
			n++ // the operator itself is bound
			if t.Attr != "" {
				n++
			}
			if t.BoundVal {
				n++
			}
		}
	}
	return n
}
