package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"disco/internal/algebra"
	"disco/internal/costvm"
	"disco/internal/stats"
	"disco/internal/types"
)

// newTestEstimator wires the default registry to the fixture catalog.
func newTestEstimator(t testing.TB) *Estimator {
	t.Helper()
	reg := MustDefaultRegistry()
	return NewEstimator(reg, newFixtureView(), UniformNet{Latency: 10, PerByte: 0.0005})
}

func resolve(t testing.TB, plan *algebra.Node) *algebra.Node {
	t.Helper()
	if err := algebra.Resolve(plan, fixtureSchemas()); err != nil {
		t.Fatal(err)
	}
	return plan
}

func estimate(t *testing.T, e *Estimator, plan *algebra.Node) *PlanCost {
	t.Helper()
	pc, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestGenericScanEstimate(t *testing.T) {
	e := newTestEstimator(t)
	plan := resolve(t, algebra.Scan("src1", "Employee"))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	// CountPage = ceil(1_200_000/4096) = 293.
	// TotalTime = 120 + 293*25 + 10000*0.05 = 7945.
	approx(t, "CountObject", v["CountObject"], 10000, 0)
	approx(t, "ObjectSize", v["ObjectSize"], 120, 0)
	approx(t, "TotalSize", v["TotalSize"], 1_200_000, 0)
	approx(t, "TimeFirst", v["TimeFirst"], 120, 0)
	approx(t, "TotalTime", v["TotalTime"], 7945, 0.5)
	approx(t, "TimeNext", v["TimeNext"], (7945.0-120)/10000, 1e-6)
}

func TestGenericIndexSelect(t *testing.T) {
	e := newTestEstimator(t)
	// salary is indexed with 10 000 distinct values: equality selects 1
	// object; the generic index formula applies.
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(10000))))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	approx(t, "CountObject", v["CountObject"], 1, 1e-9)
	approx(t, "TotalSize", v["TotalSize"], 120, 1e-6)
	approx(t, "TimeFirst", v["TimeFirst"], 130, 0)
	approx(t, "TotalTime", v["TotalTime"], 130+1*9.4, 1e-6)
}

func TestGenericSeqSelectFallsBack(t *testing.T) {
	e := newTestEstimator(t)
	// age is NOT indexed: the index formulas' require() fails and the
	// sequential rule supplies the times, while CountObject still comes
	// from the more specific A=V rule's selectivity.
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "age"), stats.CmpEQ, types.Int(30))))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	// sel = 1/50 -> 200 objects.
	approx(t, "CountObject", v["CountObject"], 200, 1e-9)
	// Sequential: scan 7945 + 10000*0.2 = 9945 (delivery charged at the
	// submit boundary, not here).
	approx(t, "TotalTime", v["TotalTime"], 9945, 1)
	approx(t, "TimeFirst", v["TimeFirst"], 120, 0) // inherits scan TimeFirst
}

func TestGenericRangeSelect(t *testing.T) {
	e := newTestEstimator(t)
	// salary < 8250: uniform in [1000,30000] -> sel = 0.25.
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpLT, types.Int(8250))))
	pc := estimate(t, e, plan)
	approx(t, "CountObject", pc.Root.Vars["CountObject"], 2500, 1)
	// Index path: 130 + 2500*9.4 = 23630; sequential: 7945+2000+2500*9 =
	// 32445. The estimator reports the indexed one (more specific level).
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 130+2500*9.4, 20)
}

func TestSubmitAddsCommunication(t *testing.T) {
	e := newTestEstimator(t)
	inner := algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(10000)))
	plan := resolve(t, algebra.Submit(inner, "src1"))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	// Inner 139.4 + 1 object * 9 delivery + latency 10 + 120 bytes *
	// 0.0005 = 158.46.
	approx(t, "TotalTime", v["TotalTime"], 158.46, 0.01)
	approx(t, "CountObject", v["CountObject"], 1, 1e-9)
}

func TestMediatorLocalSelectUsesLocalScope(t *testing.T) {
	e := newTestEstimator(t)
	e.Options.Trace = true
	// A select ABOVE a submit runs at the mediator: its cost must come
	// from the local-scope rule (MedPerPred), not the wrapper-generic
	// one, and never the index path (no index access through a submit).
	sub := algebra.Submit(algebra.Scan("src1", "Employee"), "src1")
	plan := resolve(t, algebra.Select(sub,
		algebra.NewSelPred(ref("Employee", "age"), stats.CmpEQ, types.Int(30))))
	pc := estimate(t, e, plan)
	nc := pc.ByNode[plan]
	if r := nc.ChosenRules["TotalTime"]; !strings.Contains(r, "[local") {
		t.Errorf("mediator select TotalTime chosen from %q, want local scope", r)
	}
	subCost := pc.ByNode[sub].Vars["TotalTime"]
	// Local filter: submit + 10000 * 0.006.
	approx(t, "TotalTime", nc.Vars["TotalTime"], subCost+10000*0.006, 0.5)
}

func TestJoinGenericEstimate(t *testing.T) {
	e := newTestEstimator(t)
	left := algebra.Submit(algebra.Scan("src1", "Employee"), "src1")
	right := algebra.Submit(algebra.Scan("src2", "Book"), "src2")
	plan := resolve(t, algebra.Join(left, right,
		algebra.NewJoinPred(ref("Employee", "id"), ref("Book", "author"))))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	// joinsel = 1/max(10000, 9000) -> card = 10000*50000/10000 = 50000.
	approx(t, "CountObject", v["CountObject"], 50000, 1)
	// The mediator hash join must beat nested loops:
	// hash extra = (10000+50000)*0.012 + 50000*0.004 = 920;
	// NL extra = 10000*50000*0.004 = 2,000,000.
	leftT := pc.ByNode[left].Vars["TotalTime"]
	rightT := pc.ByNode[right].Vars["TotalTime"]
	approx(t, "TotalTime", v["TotalTime"], leftT+rightT+920, 5)
}

func TestWrapperRuleOverridesGeneric(t *testing.T) {
	e := newTestEstimator(t)
	// The wrapper exports the paper's Figure 8 select rule; its TotalTime
	// must replace the generic estimate, while ObjectSize (not provided)
	// still comes from the generic model.
	src := `
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  TotalSize   = CountObject * C.ObjectSize;
  TotalTime   = C.TotalTime + C.TotalSize * 0.025;
}`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(2000))))
	pc := estimate(t, e, plan)
	v := pc.Root.Vars
	// Wrapper rule: scanTime 7945 + 1_200_000*0.025 = 37945.
	approx(t, "TotalTime", v["TotalTime"], 37945, 1)
	approx(t, "CountObject", v["CountObject"], 1, 1e-9)
	// ObjectSize fell through to the generic rule.
	approx(t, "ObjectSize", v["ObjectSize"], 120, 1e-9)
}

func TestMalformedWrapperRuleFallsBackToGeneric(t *testing.T) {
	e := newTestEstimator(t)
	// A wrapper ships a rule whose formula divides by zero at evaluation
	// time (the `1 - 1` denominator folds to 0 only after the non-literal
	// numerator blocks compile-time folding). The estimator must treat the
	// failing formula like an inapplicable rule — degrade to the generic
	// model — not panic or poison the estimate.
	src := `
select(C, A = V) {
  TotalTime = C.TotalTime / (1 - 1);
}`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(10000))))
	pc := estimate(t, e, plan)
	// Same numbers as TestGenericIndexSelect: the broken wrapper rule
	// contributed nothing.
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 130+1*9.4, 1e-6)
	approx(t, "CountObject", pc.Root.Vars["CountObject"], 1, 1e-9)
}

func TestCollectionScopeBeatsWrapperScope(t *testing.T) {
	e := newTestEstimator(t)
	src := `
scan(C) { TotalTime = 1000; }
scan(Employee) { TotalTime = 500; }`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	emp := estimate(t, e, resolve(t, algebra.Scan("src1", "Employee")))
	mgr := estimate(t, e, resolve(t, algebra.Scan("src1", "Manager")))
	approx(t, "Employee TotalTime", emp.Root.Vars["TotalTime"], 500, 0)
	approx(t, "Manager TotalTime", mgr.Root.Vars["TotalTime"], 1000, 0)
}

func TestMinResolutionAcrossSameLevel(t *testing.T) {
	e := newTestEstimator(t)
	src := `
scan(Employee) { TotalTime = 700; }
scan(Employee) { TotalTime = 300; }
scan(Employee) { TotalTime = 900; }`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	pc := estimate(t, e, resolve(t, algebra.Scan("src1", "Employee")))
	approx(t, "min TotalTime", pc.Root.Vars["TotalTime"], 300, 0)
}

func TestWrapperRulesDontLeakAcrossWrappers(t *testing.T) {
	e := newTestEstimator(t)
	if err := e.Registry.IntegrateWrapper("src1",
		mustParse(t, `scan(C) { TotalTime = 42; }`), e.View); err != nil {
		t.Fatal(err)
	}
	pc1 := estimate(t, e, resolve(t, algebra.Scan("src1", "Employee")))
	pc2 := estimate(t, e, resolve(t, algebra.Scan("src2", "Book")))
	approx(t, "src1 TotalTime", pc1.Root.Vars["TotalTime"], 42, 0)
	if pc2.Root.Vars["TotalTime"] == 42 {
		t.Error("src2 scan must not use src1's rule")
	}
}

func TestPaperYaoRuleEstimate(t *testing.T) {
	// Register the paper's Figure 13 rule for a 70 000-object, 1000-page
	// collection and verify the closed form.
	view := newFixtureView()
	view.extents["src1/AtomicParts"] = stats.ExtentStats{
		CountObject: 70000, TotalSize: 4096 * 1000, ObjectSize: 56}
	view.attrs["src1/AtomicParts/id"] = stats.AttributeStats{
		Indexed: true, CountDistinct: 70000, Min: types.Int(0), Max: types.Int(70000)}
	reg := MustDefaultRegistry()
	e := NewEstimator(reg, view, UniformNet{})

	src := `
let PageSize = 4096;
let IO = 25;
let Output = 9;
select(AtomicParts, id < V) {
  let CountPage = AtomicParts.TotalSize / PageSize;
  CountObject = AtomicParts.CountObject * (V - AtomicParts.id.Min) / (AtomicParts.id.Max - AtomicParts.id.Min);
  TotalSize   = CountObject * AtomicParts.ObjectSize;
  TotalTime   = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage))) + CountObject * Output;
}`
	if err := reg.IntegrateWrapper("src1", mustParse(t, src), view); err != nil {
		t.Fatal(err)
	}
	schemas := fixtureSchemas()
	schemas["src1/AtomicParts"] = types.NewSchema(
		types.Field{Name: "id", Collection: "AtomicParts", Type: types.KindInt})

	plan := algebra.Select(algebra.Scan("src1", "AtomicParts"),
		algebra.NewSelPred(ref("AtomicParts", "id"), stats.CmpLT, types.Int(35000)))
	if err := algebra.Resolve(plan, schemas); err != nil {
		t.Fatal(err)
	}
	pc, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	v := pc.Root.Vars
	approx(t, "CountObject", v["CountObject"], 35000, 1)
	// 25*1000*(1-e^-35) + 35000*9 = 340000.
	approx(t, "TotalTime", v["TotalTime"], 340000, 5)
}

func TestRequiredVarsMatchesFull(t *testing.T) {
	// Property: with RequiredVarsOnly the variables that ARE computed
	// agree with the full estimation, across a family of plans.
	plans := []func() *algebra.Node{
		func() *algebra.Node { return algebra.Scan("src1", "Employee") },
		func() *algebra.Node {
			return algebra.Select(algebra.Scan("src1", "Employee"),
				algebra.NewSelPred(ref("Employee", "salary"), stats.CmpLT, types.Int(9000)))
		},
		func() *algebra.Node {
			return algebra.Submit(algebra.Project(algebra.Scan("src1", "Employee"), "Employee.name"), "src1")
		},
		func() *algebra.Node {
			return algebra.Join(
				algebra.Submit(algebra.Scan("src1", "Employee"), "src1"),
				algebra.Submit(algebra.Scan("src2", "Book"), "src2"),
				algebra.NewJoinPred(ref("Employee", "id"), ref("Book", "author")))
		},
		func() *algebra.Node {
			return algebra.Sort(
				algebra.DupElim(algebra.Submit(algebra.Scan("src2", "Book"), "src2")),
				algebra.SortKey{Attr: ref("Book", "year")})
		},
		func() *algebra.Node {
			return algebra.Aggregate(algebra.Submit(algebra.Scan("src1", "Employee"), "src1"),
				[]algebra.Ref{ref("Employee", "age")},
				[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}})
		},
	}
	for i, mk := range plans {
		full := newTestEstimator(t)
		opt := newTestEstimator(t)
		opt.Options.RequiredVarsOnly = true
		opt.Options.RootVars = []string{"TotalTime"}

		p1 := resolve(t, mk())
		p2 := resolve(t, mk())
		pcFull := estimate(t, full, p1)
		pcOpt := estimate(t, opt, p2)
		if math.Abs(pcFull.Root.TotalTime()-pcOpt.Root.TotalTime()) > 1e-6 {
			t.Errorf("plan %d: optimized TotalTime %v != full %v", i,
				pcOpt.Root.TotalTime(), pcFull.Root.TotalTime())
		}
		if pcOpt.FormulaEvals > pcFull.FormulaEvals {
			t.Errorf("plan %d: optimization evaluated MORE formulas (%d > %d)",
				i, pcOpt.FormulaEvals, pcFull.FormulaEvals)
		}
	}
}

func TestTraversalCutOnConstantRule(t *testing.T) {
	// A wrapper rule with a constant TotalTime at the submit boundary
	// means nothing is required from the subtree; with the optimization
	// on, the recursion is cut (paper §4.2 optimization ii).
	e := newTestEstimator(t)
	e.Options.RequiredVarsOnly = true
	e.Options.RootVars = []string{"TotalTime"}
	src := `
submit(C) { TotalTime = 77; TimeFirst = 1; TimeNext = 1; CountObject = 10; TotalSize = 100; ObjectSize = 10; }`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	// NOTE: submit executes at the mediator boundary; its ctx.wrapper is
	// "" until inside. The rule above registered for src1 applies to
	// wrapper-site nodes only, so use a nested submit to exercise it.
	inner := algebra.Submit(algebra.Scan("src1", "Employee"), "src1")
	outer := resolve(t, algebra.Submit(inner, "src1"))
	pc := estimate(t, e, outer)
	// The outer submit is already at the src1 boundary, so the constant
	// rule matches it directly and nothing below is visited.
	if pc.NodesVisited > 1 {
		t.Errorf("visited %d nodes, expected traversal cut below the constant rule", pc.NodesVisited)
	}
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 77, 0)
}

func TestBranchAndBound(t *testing.T) {
	e := newTestEstimator(t)
	e.Options.Budget = 100 // far below the ~8s scan
	plan := resolve(t, algebra.Scan("src1", "Employee"))
	if _, err := e.Estimate(plan); err != ErrOverBudget {
		t.Errorf("err = %v, want ErrOverBudget", err)
	}
	e.Options.Budget = 1e12
	if _, err := e.Estimate(plan); err != nil {
		t.Errorf("generous budget should pass: %v", err)
	}
}

func TestStatslessWrapperUsesDefaults(t *testing.T) {
	// A collection the catalog knows nothing about estimates through
	// DefaultExtent — the "standard values, as usual" path.
	e := newTestEstimator(t)
	schemas := fixtureSchemas()
	schemas["src3/Stuff"] = types.NewSchema(types.Field{Name: "x", Collection: "Stuff", Type: types.KindInt})
	plan := algebra.Scan("src3", "Stuff")
	if err := algebra.Resolve(plan, schemas); err != nil {
		t.Fatal(err)
	}
	pc := estimate(t, e, plan)
	approx(t, "CountObject", pc.Root.Vars["CountObject"], float64(DefaultExtent.CountObject), 0)
	if pc.Root.Vars["TotalTime"] <= 0 {
		t.Error("default estimate should be positive")
	}
}

func TestQueryScopeRuleWins(t *testing.T) {
	// A query-scope (historical) rule outranks even predicate-scope
	// rules.
	e := newTestEstimator(t)
	if err := e.Registry.IntegrateWrapper("src1",
		mustParse(t, `select(Employee, salary = 10) { TotalTime = 500; }`), e.View); err != nil {
		t.Fatal(err)
	}
	prog := mustCompileConst(t, 123)
	e.Registry.AddQueryRule("src1", &Rule{
		Op: algebra.OpSelect,
		Terms: []HeadTerm{
			{Kind: TermCollection, Name: "Employee"},
			{Kind: TermCmp, Attr: "salary", Op: stats.CmpEQ, Value: types.Int(10), BoundVal: true},
		},
		Formulas: []Formula{{Var: "TotalTime", Prog: prog}},
	})
	plan := resolve(t, algebra.Submit(algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(10))), "src1"))
	pc := estimate(t, e, plan)
	sel := plan.Children[0]
	approx(t, "TotalTime", pc.ByNode[sel].Vars["TotalTime"], 123, 0)
}

func mustCompileConst(t *testing.T, v float64) *costvm.Program {
	t.Helper()
	p, err := costvm.CompileString(types.Float(v).String())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExplainOutput(t *testing.T) {
	e := newTestEstimator(t)
	e.Options.Trace = true
	plan := resolve(t, algebra.Submit(algebra.Scan("src1", "Employee"), "src1"))
	pc := estimate(t, e, plan)
	out := e.Explain(plan, pc)
	for _, want := range []string{"submit(@src1)", "scan(Employee@src1)", "TotalTime="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// TestEstimateDeterministicAndFinite: the estimator is a pure function of
// the plan — repeated estimates agree, and every computed variable is
// finite and non-negative, across randomized predicates.
func TestEstimateDeterministicAndFinite(t *testing.T) {
	e := newTestEstimator(t)
	attrs := []string{"id", "salary", "age"}
	ops := []stats.CmpOp{stats.CmpEQ, stats.CmpLT, stats.CmpLE, stats.CmpGT, stats.CmpGE, stats.CmpNE}
	f := func(attrPick, opPick uint8, val int16, wrapInSubmit bool) bool {
		pred := algebra.NewSelPred(
			ref("Employee", attrs[int(attrPick)%len(attrs)]),
			ops[int(opPick)%len(ops)],
			types.Int(int64(val)))
		var plan *algebra.Node = algebra.Select(algebra.Scan("src1", "Employee"), pred)
		if wrapInSubmit {
			plan = algebra.Submit(plan, "src1")
		}
		if err := algebra.Resolve(plan, fixtureSchemas()); err != nil {
			return false
		}
		pc1, err := e.Estimate(plan)
		if err != nil {
			return false
		}
		pc2, err := e.Estimate(plan)
		if err != nil {
			return false
		}
		for _, v := range AllVars() {
			a, b := pc1.Root.Var(v, -1), pc2.Root.Var(v, -1)
			if a != b {
				return false
			}
			if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
