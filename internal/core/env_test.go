package core

import (
	"math"
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// TestNetPathResolution: submit rules read Net.Latency / Net.PerByte for
// the executing wrapper.
func TestNetPathResolution(t *testing.T) {
	e := newTestEstimator(t)
	src := `
submit(C) {
  CountObject = C.CountObject;
  TotalSize   = C.TotalSize;
  TotalTime   = C.TotalTime + Net.Latency * 3 + C.TotalSize * Net.PerByte;
}`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	plan := resolve(t, algebra.Submit(algebra.Scan("src1", "Employee"), "src1"))
	pc := estimate(t, e, plan)
	// scan 7945 + 3*10 latency + 1.2MB * 0.0005.
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 7945+30+600, 1)
}

// TestWrapperGlobalsShadowMediator: a wrapper's let PageSize overrides the
// mediator's PageSize for CountPage derivation.
func TestWrapperGlobalsShadowMediator(t *testing.T) {
	e := newTestEstimator(t)
	src := `
let PageSize = 8192;
scan(C) { TotalTime = C.CountPage; }`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	pc := estimate(t, e, resolve(t, algebra.Scan("src1", "Employee")))
	// 1_200_000 / 8192 rounded up = 147 (not the 293 pages of 4096B).
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 147, 0)
}

// TestSelectivityStringValue: the contextual selectivity() handles string
// attributes through the Fraction embedding.
func TestSelectivityStringValue(t *testing.T) {
	e := newTestEstimator(t)
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "name"), stats.CmpEQ, types.Str("Naacke"))))
	pc := estimate(t, e, plan)
	// name has 10000 distinct values: equality selects ~1.
	approx(t, "CountObject", pc.Root.Vars["CountObject"], 1, 1e-9)
}

// TestGroupsContextual: the aggregate group estimate uses distinct counts
// capped by input cardinality.
func TestGroupsContextual(t *testing.T) {
	e := newTestEstimator(t)
	// age has 50 distinct values -> 50 groups.
	plan := resolve(t, algebra.Aggregate(
		algebra.Submit(algebra.Scan("src1", "Employee"), "src1"),
		[]algebra.Ref{ref("Employee", "age")},
		[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}}))
	pc := estimate(t, e, plan)
	approx(t, "CountObject", pc.Root.Vars["CountObject"], 50, 1e-9)

	// Grouping by a near-key attribute caps at input cardinality.
	plan2 := resolve(t, algebra.Aggregate(
		algebra.Submit(algebra.Scan("src1", "Manager"), "src1"),
		[]algebra.Ref{ref("Manager", "id")},
		[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}}))
	pc2 := estimate(t, e, plan2)
	approx(t, "groups capped", pc2.Root.Vars["CountObject"], 500, 1e-9)
}

// TestUnionAndSortEstimates exercise the remaining generic rules.
func TestUnionAndSortEstimates(t *testing.T) {
	e := newTestEstimator(t)
	mk := func() *algebra.Node {
		return algebra.Submit(algebra.Scan("src1", "Manager"), "src1")
	}
	union := resolve(t, algebra.Union(mk(), mk()))
	pc := estimate(t, e, union)
	approx(t, "union CountObject", pc.Root.Vars["CountObject"], 1000, 1e-9)

	sorted := resolve(t, algebra.Sort(mk(), algebra.SortKey{Attr: ref("Manager", "id")}))
	pc2 := estimate(t, e, sorted)
	if pc2.Root.Vars["TimeFirst"] < pc2.ByNode[sorted.Children[0]].Vars["TotalTime"] {
		t.Error("a sort is blocking: TimeFirst should include the whole input")
	}

	dup := resolve(t, algebra.DupElim(mk()))
	pc3 := estimate(t, e, dup)
	approx(t, "dupelim CountObject", pc3.Root.Vars["CountObject"], 250, 1e-9) // 500 * 0.5
}

// TestDefProvidedSelectivityOverridesContextual: a wrapper def named
// selectivity wins over the contextual implementation (the paper's
// "ad-hoc function defined by the wrapper implementor").
func TestDefProvidedSelectivityOverridesContextual(t *testing.T) {
	e := newTestEstimator(t)
	src := `
def selectivity(a, v) = 0.5;
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  TotalTime = 1;
}`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(5000))))
	pc := estimate(t, e, plan)
	approx(t, "CountObject", pc.Root.Vars["CountObject"], 5000, 1e-6)
}

// TestHistogramImprovesSelectivity: attribute stats carrying an equi-depth
// histogram beat the uniform assumption on skewed data.
func TestHistogramImprovesSelectivity(t *testing.T) {
	view := newFixtureView()
	// Skewed age: 90% of employees are 20 (value 20), the rest uniform to
	// 67. Build a histogram reflecting that.
	var vals []types.Constant
	for i := 0; i < 9000; i++ {
		vals = append(vals, types.Int(20))
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, types.Int(21+int64(i%47)))
	}
	h := stats.NewEquiDepth(vals, 20)
	st := view.attrs["src1/Employee/age"]
	st.Histogram = h
	view.attrs["src1/Employee/age"] = st

	reg := MustDefaultRegistry()
	e := NewEstimator(reg, view, UniformNet{})
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "age"), stats.CmpLE, types.Int(20))))
	pc, err := e.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Truth: 90% of 10000 = 9000. Uniform assumption would say
	// (20-18)/(67-18) ~ 4%.
	got := pc.Root.Vars["CountObject"]
	if math.Abs(got-9000) > 500 {
		t.Errorf("histogram-based estimate = %v, want ~9000", got)
	}
}

// TestAmbiguousSameLevelUsesRegistrationOrder: the paper's tiebreak.
func TestAmbiguousSameLevelUsesRegistrationOrder(t *testing.T) {
	e := newTestEstimator(t)
	e.Options.Trace = true
	src := `
select(Employee, salary = V) { TotalTime = 111; }
select(Employee, salary = V) { TotalTime = 222; }`
	if err := e.Registry.IntegrateWrapper("src1", mustParse(t, src), e.View); err != nil {
		t.Fatal(err)
	}
	plan := resolve(t, algebra.Select(
		algebra.Scan("src1", "Employee"),
		algebra.NewSelPred(ref("Employee", "salary"), stats.CmpEQ, types.Int(1))))
	pc := estimate(t, e, plan)
	// Both match at the same level; min resolution yields 111 — and with
	// equal values, the first registered wins deterministically.
	approx(t, "TotalTime", pc.Root.Vars["TotalTime"], 111, 0)
}

// TestEstimateUnresolvedPlanUsesDefaults: estimation works on unresolved
// plans except where schemas are needed (Arity-based rules fail softly).
func TestEstimateWorksAfterClone(t *testing.T) {
	e := newTestEstimator(t)
	plan := resolve(t, algebra.Project(algebra.Scan("src1", "Employee"), "Employee.name"))
	pc1 := estimate(t, e, plan)
	pc2 := estimate(t, e, plan.Clone()) // Clone keeps schemas
	approx(t, "clone estimate", pc2.Root.TotalTime(), pc1.Root.TotalTime(), 1e-9)
}
