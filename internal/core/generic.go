package core

import (
	"disco/internal/costlang"
	"disco/internal/costvm"
	"disco/internal/types"
)

// DefaultCoefficients returns the mediator's generic-model coefficient
// table (paper §2.3: time parameters "buried in global cost formula
// parameters", established by calibration [GST96]). All times are in
// milliseconds; the wrapper-side constants default to the paper's
// ObjectStore measurements (IO = 25 ms/page, Output = 9 ms/object). The
// calibration package re-fits the Wr* entries per wrapper.
func DefaultCoefficients() map[string]types.Constant {
	return map[string]types.Constant{
		"PageSize": types.Int(4096),

		// Generic wrapper-side costs.
		"ScanFirst":     types.Float(120), // query start-up (Figure 8's constant)
		"WrIO":          types.Float(25),  // page fetch
		"WrPerObj":      types.Float(0.05),
		"OutPerObj":     types.Float(9), // per-object result delivery
		"SelPerObj":     types.Float(0.2),
		"IdxFirst":      types.Float(130),
		"IdxPerObj":     types.Float(9.4), // calibrated linear index-scan slope
		"IdxProbe":      types.Float(12),
		"JoinPerPair":   types.Float(0.01),
		"SortPerObj":    types.Float(0.08),
		"MergePerObj":   types.Float(0.05),
		"HashPerObj":    types.Float(0.05),
		"AggPerGroup":   types.Float(0.1),
		"UnionPerObj":   types.Float(0.02),
		"DupElimFactor": types.Float(0.5),

		// Mediator-side (local) costs: main-memory operator pipeline.
		"MedPerObj":      types.Float(0.004),
		"MedPerPred":     types.Float(0.006),
		"MedProjPerObj":  types.Float(0.003),
		"MedSortPerObj":  types.Float(0.010),
		"MedHashPerObj":  types.Float(0.012),
		"MedJoinPerPair": types.Float(0.004),
	}
}

// genericModelSrc is the mediator's generic cost model (paper §2.3)
// expressed in the cost communication language itself. Head identifiers
// are all free variables at default scope. Where the model considers
// several implementations of one operator (sequential vs. index scan,
// nested-loops vs. sort-merge vs. index join) it supplies several rules at
// the same specificity: all are evaluated and the lowest value wins, the
// paper's Step 3 resolution. Rules that only apply under a condition (an
// index exists) guard their formulas with require(), whose failure falls
// through to the next level.
const genericModelSrc = `
# ----- unary operators ------------------------------------------------

scan(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = ScanFirst;
  TotalTime   = ScanFirst + C.CountPage * WrIO + C.CountObject * WrPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Sequential selection: pay for the input, then filter every object.
# Result delivery is charged at the submit boundary, not here.
select(C, P) {
  CountObject = C.CountObject * predsel();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * SelPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Index selection (calibrated linear model): replaces the input scan when
# an index exists on the restricted attribute. This is the formula whose
# linearity Figure 12 shows failing for clustered page access.
select(C, A = V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IdxFirst);
  TotalTime   = require(C.A.Indexed, IdxFirst + CountObject * IdxPerObj);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A < V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IdxFirst);
  TotalTime   = require(C.A.Indexed, IdxFirst + CountObject * IdxPerObj);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A <= V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IdxFirst);
  TotalTime   = require(C.A.Indexed, IdxFirst + CountObject * IdxPerObj);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A > V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IdxFirst);
  TotalTime   = require(C.A.Indexed, IdxFirst + CountObject * IdxPerObj);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
select(C, A >= V) {
  CountObject = C.CountObject * selectivity(A, V);
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = require(C.A.Indexed, IdxFirst);
  TotalTime   = require(C.A.Indexed, IdxFirst + CountObject * IdxPerObj);
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

project(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize * Arity / max(C.Arity, 1);
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * WrPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

sort(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = C.TotalTime + C.CountObject * log2(C.CountObject + 2) * SortPerObj;
  TotalTime   = TimeFirst + CountObject * WrPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

dupelim(C) {
  CountObject = max(C.CountObject * DupElimFactor, min(C.CountObject, 1));
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * HashPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

aggregate(C) {
  CountObject = groups();
  ObjectSize  = 16 * Arity;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime + C.CountObject * HashPerObj;
  TotalTime   = TimeFirst + CountObject * AggPerGroup;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# ----- binary operators -----------------------------------------------

# Nested-loops join.
join(C1, C2, P) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TimeFirst;
  TotalTime   = C1.TotalTime + C2.TotalTime + C1.CountObject * C2.CountObject * JoinPerPair;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Sort-merge join: same head shape and specificity as nested loops, so
# both are evaluated and the cheaper estimate wins (paper 2.3: "the best
# of the two others is chosen").
join(C1, C2, P) {
  TotalTime = C1.TotalTime + C2.TotalTime
            + (C1.CountObject * log2(C1.CountObject + 2) + C2.CountObject * log2(C2.CountObject + 2)) * SortPerObj
            + (C1.CountObject + C2.CountObject) * MergePerObj;
}

# Index join: applies when the inner input carries an index on its join
# attribute ("when an index is existing, the index join formula is
# selected").
join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst;
  TotalTime   = require(C2.A2.Indexed,
                  C1.TotalTime + C1.CountObject * (IdxProbe + IdxPerObj * max(C2.CountObject / max(C2.A2.CountDistinct, 1), 1)));
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

union(C1, C2) {
  CountObject = C1.CountObject + C2.CountObject;
  ObjectSize  = (C1.ObjectSize + C2.ObjectSize) / 2;
  TotalSize   = C1.TotalSize + C2.TotalSize;
  TimeFirst   = min(C1.TimeFirst, C2.TimeFirst);
  TotalTime   = C1.TotalTime + C2.TotalTime + CountObject * UnionPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# ----- submit: the wrapper boundary ------------------------------------
# The source delivers each result object (OutPerObj) and the network ships
# the bytes.

submit(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = C.TimeFirst + Net.Latency;
  TotalTime   = C.TotalTime + C.CountObject * OutPerObj + Net.Latency + C.TotalSize * Net.PerByte;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
`

// localModelSrc holds the mediator's own operator costs (local scope,
// paper footnote 1: the mediator processes local operators with its own
// physical algebra). The mediator pipeline is main-memory, so its
// per-object constants are far below the generic wrapper ones.
const localModelSrc = `
select(C, P) {
  CountObject = C.CountObject * predsel();
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * MedPerPred;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

project(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize * Arity / max(C.Arity, 1);
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * MedProjPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

sort(C) {
  CountObject = C.CountObject;
  ObjectSize  = C.ObjectSize;
  TotalSize   = C.TotalSize;
  TimeFirst   = C.TotalTime + C.CountObject * log2(C.CountObject + 2) * MedSortPerObj;
  TotalTime   = TimeFirst + CountObject * MedPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

dupelim(C) {
  CountObject = max(C.CountObject * DupElimFactor, min(C.CountObject, 1));
  ObjectSize  = C.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TimeFirst;
  TotalTime   = C.TotalTime + C.CountObject * MedHashPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

aggregate(C) {
  CountObject = groups();
  ObjectSize  = 16 * Arity;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C.TotalTime + C.CountObject * MedHashPerObj;
  TotalTime   = TimeFirst + CountObject * MedPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Mediator nested-loops join (inner materialized in memory).
join(C1, C2, P) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TotalTime;
  TotalTime   = C1.TotalTime + C2.TotalTime + C1.CountObject * C2.CountObject * MedJoinPerPair;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

# Mediator hash join for equi-predicates: cheaper than nested loops on
# large inputs, min-resolution picks it when applicable.
join(C1, C2, A1 = A2) {
  CountObject = C1.CountObject * C2.CountObject * joinsel();
  ObjectSize  = C1.ObjectSize + C2.ObjectSize;
  TotalSize   = CountObject * ObjectSize;
  TimeFirst   = C1.TimeFirst + C2.TotalTime;
  TotalTime   = C1.TotalTime + C2.TotalTime
              + (C1.CountObject + C2.CountObject) * MedHashPerObj
              + CountObject * MedPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}

union(C1, C2) {
  CountObject = C1.CountObject + C2.CountObject;
  ObjectSize  = (C1.ObjectSize + C2.ObjectSize) / 2;
  TotalSize   = C1.TotalSize + C2.TotalSize;
  TimeFirst   = min(C1.TimeFirst, C2.TimeFirst);
  TotalTime   = C1.TotalTime + C2.TotalTime + CountObject * MedPerObj;
  TimeNext    = (TotalTime - TimeFirst) / max(CountObject, 1);
}
`

// NewDefaultRegistry builds a registry preloaded with the mediator's
// generic (default-scope) and local-scope cost models.
func NewDefaultRegistry() (*Registry, error) {
	reg := NewRegistry(costvm.NewFuncRegistry())
	generic, err := costlang.Parse(genericModelSrc)
	if err != nil {
		return nil, err
	}
	if err := reg.IntegrateDefaults(generic, false); err != nil {
		return nil, err
	}
	local, err := costlang.Parse(localModelSrc)
	if err != nil {
		return nil, err
	}
	if err := reg.IntegrateDefaults(local, true); err != nil {
		return nil, err
	}
	return reg, nil
}

// MustDefaultRegistry is NewDefaultRegistry panicking on error; the model
// sources are compile-time constants, so failure is a programming error.
func MustDefaultRegistry() *Registry {
	reg, err := NewDefaultRegistry()
	if err != nil {
		panic(err)
	}
	return reg
}
