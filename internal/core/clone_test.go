package core

import (
	"sync"
	"testing"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// TestCloneIsolatesOptions verifies the per-goroutine contract of Clone:
// option mutations (the pruning budget the optimizer sets per candidate)
// never leak between clones, and Reset clears them.
func TestCloneIsolatesOptions(t *testing.T) {
	e := newTestEstimator(t)
	e.Options.RequiredVarsOnly = true
	e.Options.RootVars = []string{"TotalTime"}

	c := e.Clone()
	c.Options.Budget = 42
	c.Options.RootVars[0] = "TimeFirst"
	if e.Options.Budget != 0 {
		t.Errorf("budget leaked to the original: %v", e.Options.Budget)
	}
	if e.Options.RootVars[0] != "TotalTime" {
		t.Errorf("RootVars backing array shared: %v", e.Options.RootVars)
	}
	if !c.Options.RequiredVarsOnly {
		t.Error("clone should inherit option flags")
	}
	c.Reset()
	if c.Options.Budget != 0 {
		t.Errorf("Reset should clear the budget, got %v", c.Options.Budget)
	}
}

// TestCloneConcurrentEstimatesAgree runs one estimation per clone across
// goroutines and checks every clone reproduces the sequential estimate
// bit for bit (run under -race to check the sharing contract).
func TestCloneConcurrentEstimatesAgree(t *testing.T) {
	e := newTestEstimator(t)
	mkPlan := func() *algebra.Node {
		return resolve(t, algebra.Submit(
			algebra.Select(algebra.Scan("src1", "Employee"),
				algebra.NewSelPred(ref("Employee", "salary"), stats.CmpLT, types.Int(2000))),
			"src1"))
	}
	want := estimate(t, e, mkPlan()).TotalTime()

	const workers = 8
	// Resolve all plans on the test goroutine (resolve may t.Fatal).
	plans := make([]*algebra.Node, workers)
	for i := range plans {
		plans[i] = mkPlan()
	}
	got := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := e.Clone()
			if i%2 == 1 {
				c.Options.Budget = want * 10 // a loose budget must not change the value
			}
			pc, err := c.Estimate(plans[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = pc.TotalTime()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("worker %d: TotalTime %v, sequential %v", i, got[i], want)
		}
	}
}
