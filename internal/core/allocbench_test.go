package core

import "testing"

// BenchmarkEstimateRootSteady measures the steady-state pricing loop the
// optimizer runs per candidate: same plan, warm scratch arena. The
// companion AllocsPerRun tests in alloc_test.go gate it at zero
// allocations; this benchmark tracks the time side.
func BenchmarkEstimateRootSteady(b *testing.B) {
	e := newTestEstimator(b)
	plan := allocPlan(b)
	if _, err := e.EstimateRoot(plan); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimateRoot(plan); err != nil {
			b.Fatal(err)
		}
	}
}
