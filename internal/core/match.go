package core

import (
	"strings"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// bindKind classifies what a head variable got bound to.
type bindKind uint8

const (
	bindColl  bindKind = iota // a collection term: child node and/or base collection
	bindAttr                  // an attribute name
	bindValue                 // a predicate constant
	bindPred                  // a whole predicate
)

// binding is the value a head variable unified with.
type binding struct {
	kind bindKind
	// Collection bindings: the child context (nil for scan targets) and
	// the base collection name the target derives from ("" when the
	// target is an intermediate result with no single base collection).
	ctx  *nodeCtx
	coll string
	// wrapper owning coll, for statistics lookups.
	wrapper string
	// Attribute / value bindings.
	str string
	val types.Constant
	// Predicate binding.
	pred *algebra.Predicate
}

// matchResult carries the unified bindings of one successful head match,
// plus the predicate components the match consumed (used by the contextual
// selectivity function even when the rule head bound them as constants).
// Results are pooled on the estimator's scratch space; bindings live in a
// small reused slice (heads have at most a handful of variables) searched
// case-insensitively, which replaces the per-match map and the lower-cased
// key allocations.
type matchResult struct {
	bindings []namedBinding
	selAttr  string
	selOp    stats.CmpOp
	selValue types.Constant
	hasSel   bool
}

// namedBinding is one head-variable binding, keyed by the variable's
// original spelling (lookups fold case).
type namedBinding struct {
	name string
	b    binding
}

// reset clears the result for reuse, keeping the bindings capacity.
func (m *matchResult) reset() {
	m.bindings = m.bindings[:0]
	m.selAttr = ""
	m.selOp = 0
	m.selValue = types.Null
	m.hasSel = false
}

func (m *matchResult) bind(name string, b binding) {
	if name == "" {
		return
	}
	for i := range m.bindings {
		if strings.EqualFold(m.bindings[i].name, name) {
			m.bindings[i].b = b
			return
		}
	}
	m.bindings = append(m.bindings, namedBinding{name: name, b: b})
}

func (m *matchResult) lookup(name string) (binding, bool) {
	for i := range m.bindings {
		if strings.EqualFold(m.bindings[i].name, name) {
			return m.bindings[i].b, true
		}
	}
	return binding{}, false
}

// collTarget is a position a collection term can unify with.
type collTarget struct {
	ctx     *nodeCtx // child context; nil when the target is the scanned base collection itself
	coll    string   // derived base collection name ("" when none)
	wrapper string
}

// matchRule unifies a rule head with a plan node (paper §3.3.2), writing
// the bindings into the caller-provided (pooled, reset) result; it reports
// whether the match succeeded.
func matchRule(rule *Rule, ctx *nodeCtx, m *matchResult) bool {
	if rule.Op != ctx.node.Kind {
		return false
	}
	if rule.Exact != nil {
		// The structural hash is a cheap prefilter for the deep equality
		// check: Equal implies equal hashes, so a hash mismatch rejects
		// without walking the trees.
		if ctx.node.StructuralHash() != rule.exactHash || !ctx.node.Equal(rule.Exact) {
			return false
		}
		if len(rule.Terms) == 0 {
			// An exact rule's formulas are observed constants; no
			// bindings are needed.
			return true
		}
	}
	node := ctx.node

	// Lay out the unification targets for this operator shape. A fixed
	// array keeps the hot path off the heap (operators have at most two
	// collection positions).
	var collArr [2]collTarget
	var pred *algebra.Predicate
	hasPredPosition := false
	nColls := 1
	switch node.Kind {
	case algebra.OpScan:
		collArr[0] = collTarget{coll: node.Collection, wrapper: node.Wrapper}
	case algebra.OpSelect:
		collArr[0] = childTarget(ctx, 0)
		pred = node.Pred
		hasPredPosition = true
	case algebra.OpJoin:
		collArr[0], collArr[1] = childTarget(ctx, 0), childTarget(ctx, 1)
		nColls = 2
		pred = node.Pred
		hasPredPosition = true
	case algebra.OpUnion:
		collArr[0], collArr[1] = childTarget(ctx, 0), childTarget(ctx, 1)
		nColls = 2
	case algebra.OpProject, algebra.OpSort, algebra.OpDupElim,
		algebra.OpAggregate, algebra.OpSubmit:
		collArr[0] = childTarget(ctx, 0)
	default:
		return false
	}
	colls := collArr[:nColls]

	terms := rule.Terms
	// Unify collection positions.
	for i, target := range colls {
		if i >= len(terms) {
			return false // head has fewer args than the operator shape
		}
		if !unifyColl(m, terms[i], target) {
			return false
		}
	}
	rest := terms[len(colls):]

	// Unify the predicate position, if the operator has one and the head
	// supplies a term for it.
	if len(rest) > 0 {
		if !hasPredPosition {
			return false // e.g. scan(C, X) can never match
		}
		if len(rest) > 1 {
			return false
		}
		if !unifyPred(m, rest[0], pred) {
			return false
		}
	}
	return true
}

func childTarget(ctx *nodeCtx, i int) collTarget {
	c := ctx.children[i]
	return collTarget{ctx: c, coll: c.derivedColl, wrapper: c.derivedWrapper}
}

func unifyColl(m *matchResult, t HeadTerm, target collTarget) bool {
	switch t.Kind {
	case TermVar:
		m.bind(t.Name, binding{kind: bindColl, ctx: target.ctx, coll: target.coll, wrapper: target.wrapper})
		return true
	case TermCollection:
		if !strings.EqualFold(t.Name, target.coll) {
			return false
		}
		m.bind(t.Name, binding{kind: bindColl, ctx: target.ctx, coll: target.coll, wrapper: target.wrapper})
		return true
	default:
		return false // a comparison cannot appear in a collection position
	}
}

// unifyPred unifies a head predicate term with a node predicate. A
// variable term matches any predicate; a comparison term matches a
// single-conjunct predicate (the optimizer cascades conjunctive selects,
// so wrapper-visible predicates are single comparisons).
func unifyPred(m *matchResult, t HeadTerm, pred *algebra.Predicate) bool {
	if t.Kind == TermVar {
		m.bind(t.Name, binding{kind: bindPred, pred: pred})
		if pred != nil && len(pred.Conjuncts) == 1 {
			recordSel(m, &pred.Conjuncts[0])
		}
		return true
	}
	if t.Kind != TermCmp {
		return false
	}
	if pred == nil || len(pred.Conjuncts) != 1 {
		return false
	}
	c := &pred.Conjuncts[0]
	if matchCmp(m, t, c) {
		recordSel(m, c)
		return true
	}
	// Equi-comparisons are symmetric: try the flipped conjunct so that a
	// head `a = b` also matches a node predicate `b = a`. The comparison is
	// passed as parts rather than a rebuilt Comparison so no local escapes.
	if c.IsJoin() {
		if matchCmpParts(m, t, c.RightAttr.Attr, c.Op.Flip(), true, c.Left.Attr, types.Null) {
			recordSel(m, c)
			return true
		}
	}
	return false
}

func recordSel(m *matchResult, c *algebra.Comparison) {
	if c.IsJoin() {
		return
	}
	m.selAttr = c.Left.Attr
	m.selOp = c.Op
	m.selValue = c.RightConst
	m.hasSel = true
}

func matchCmp(m *matchResult, t HeadTerm, c *algebra.Comparison) bool {
	if c.IsJoin() {
		return matchCmpParts(m, t, c.Left.Attr, c.Op, true, c.RightAttr.Attr, types.Null)
	}
	return matchCmpParts(m, t, c.Left.Attr, c.Op, false, "", c.RightConst)
}

// matchCmpParts unifies a head comparison term against a node comparison
// decomposed into its parts: leftAttr op rightAttr (join) or
// leftAttr op rightConst (selection).
func matchCmpParts(m *matchResult, t HeadTerm, leftAttr string, op stats.CmpOp,
	isJoin bool, rightAttr string, rightConst types.Constant) bool {
	if t.Op != op {
		return false
	}
	// Attribute side.
	if t.Attr != "" {
		if !strings.EqualFold(t.Attr, leftAttr) {
			return false
		}
	}
	// Value side.
	if isJoin {
		// The right-hand side is an attribute.
		if t.BoundVal {
			if !t.ValueIsAttr || !strings.EqualFold(t.Value.AsString(), rightAttr) {
				return false
			}
		}
	} else {
		// The right-hand side is a constant.
		if t.BoundVal {
			if t.ValueIsAttr || !t.Value.Equal(rightConst) {
				return false
			}
		}
	}
	// All constraints hold; produce bindings (after constraints so a
	// failed match leaves no partial bindings behind... bindings are
	// per-call anyway, but partial state would leak through the flipped
	// retry in unifyPred).
	if t.AttrVar != "" {
		m.bind(t.AttrVar, binding{kind: bindAttr, str: leftAttr})
	}
	if t.ValueVar != "" {
		if isJoin {
			m.bind(t.ValueVar, binding{kind: bindAttr, str: rightAttr})
		} else {
			m.bind(t.ValueVar, binding{kind: bindValue, val: rightConst})
		}
	}
	return true
}
