package core

import (
	"strings"

	"disco/internal/algebra"
	"disco/internal/stats"
	"disco/internal/types"
)

// bindKind classifies what a head variable got bound to.
type bindKind uint8

const (
	bindColl  bindKind = iota // a collection term: child node and/or base collection
	bindAttr                  // an attribute name
	bindValue                 // a predicate constant
	bindPred                  // a whole predicate
)

// binding is the value a head variable unified with.
type binding struct {
	kind bindKind
	// Collection bindings: the child context (nil for scan targets) and
	// the base collection name the target derives from ("" when the
	// target is an intermediate result with no single base collection).
	ctx  *nodeCtx
	coll string
	// wrapper owning coll, for statistics lookups.
	wrapper string
	// Attribute / value bindings.
	str string
	val types.Constant
	// Predicate binding.
	pred *algebra.Predicate
}

// matchResult carries the unified bindings of one successful head match,
// plus the predicate components the match consumed (used by the contextual
// selectivity function even when the rule head bound them as constants).
type matchResult struct {
	bindings map[string]binding
	selAttr  string
	selOp    stats.CmpOp
	selValue types.Constant
	hasSel   bool
}

func (m *matchResult) bind(name string, b binding) {
	if name == "" {
		return
	}
	if m.bindings == nil {
		m.bindings = make(map[string]binding, 4)
	}
	m.bindings[strings.ToLower(name)] = b
}

func (m *matchResult) lookup(name string) (binding, bool) {
	b, ok := m.bindings[strings.ToLower(name)]
	return b, ok
}

// collTarget is a position a collection term can unify with.
type collTarget struct {
	ctx     *nodeCtx // child context; nil when the target is the scanned base collection itself
	coll    string   // derived base collection name ("" when none)
	wrapper string
}

// matchRule unifies a rule head with a plan node (paper §3.3.2). It
// returns the bindings and true on success.
func matchRule(rule *Rule, ctx *nodeCtx) (*matchResult, bool) {
	if rule.Op != ctx.node.Kind {
		return nil, false
	}
	if rule.Exact != nil {
		if !ctx.node.Equal(rule.Exact) {
			return nil, false
		}
		if len(rule.Terms) == 0 {
			// An exact rule's formulas are observed constants; no
			// bindings are needed.
			return &matchResult{}, true
		}
	}
	m := &matchResult{}
	node := ctx.node

	// Lay out the unification targets for this operator shape.
	var colls []collTarget
	var pred *algebra.Predicate
	hasPredPosition := false
	switch node.Kind {
	case algebra.OpScan:
		colls = []collTarget{{coll: node.Collection, wrapper: node.Wrapper}}
	case algebra.OpSelect:
		colls = []collTarget{childTarget(ctx, 0)}
		pred = node.Pred
		hasPredPosition = true
	case algebra.OpJoin:
		colls = []collTarget{childTarget(ctx, 0), childTarget(ctx, 1)}
		pred = node.Pred
		hasPredPosition = true
	case algebra.OpUnion:
		colls = []collTarget{childTarget(ctx, 0), childTarget(ctx, 1)}
	case algebra.OpProject, algebra.OpSort, algebra.OpDupElim,
		algebra.OpAggregate, algebra.OpSubmit:
		colls = []collTarget{childTarget(ctx, 0)}
	default:
		return nil, false
	}

	terms := rule.Terms
	// Unify collection positions.
	for i, target := range colls {
		if i >= len(terms) {
			return nil, false // head has fewer args than the operator shape
		}
		if !unifyColl(m, terms[i], target) {
			return nil, false
		}
	}
	rest := terms[len(colls):]

	// Unify the predicate position, if the operator has one and the head
	// supplies a term for it.
	if len(rest) > 0 {
		if !hasPredPosition {
			return nil, false // e.g. scan(C, X) can never match
		}
		if len(rest) > 1 {
			return nil, false
		}
		if !unifyPred(m, rest[0], pred) {
			return nil, false
		}
	}
	return m, true
}

func childTarget(ctx *nodeCtx, i int) collTarget {
	c := ctx.children[i]
	return collTarget{ctx: c, coll: c.derivedColl, wrapper: c.derivedWrapper}
}

func unifyColl(m *matchResult, t HeadTerm, target collTarget) bool {
	switch t.Kind {
	case TermVar:
		m.bind(t.Name, binding{kind: bindColl, ctx: target.ctx, coll: target.coll, wrapper: target.wrapper})
		return true
	case TermCollection:
		if !strings.EqualFold(t.Name, target.coll) {
			return false
		}
		m.bind(t.Name, binding{kind: bindColl, ctx: target.ctx, coll: target.coll, wrapper: target.wrapper})
		return true
	default:
		return false // a comparison cannot appear in a collection position
	}
}

// unifyPred unifies a head predicate term with a node predicate. A
// variable term matches any predicate; a comparison term matches a
// single-conjunct predicate (the optimizer cascades conjunctive selects,
// so wrapper-visible predicates are single comparisons).
func unifyPred(m *matchResult, t HeadTerm, pred *algebra.Predicate) bool {
	if t.Kind == TermVar {
		m.bind(t.Name, binding{kind: bindPred, pred: pred})
		if pred != nil && len(pred.Conjuncts) == 1 {
			recordSel(m, pred.Conjuncts[0])
		}
		return true
	}
	if t.Kind != TermCmp {
		return false
	}
	if pred == nil || len(pred.Conjuncts) != 1 {
		return false
	}
	c := pred.Conjuncts[0]
	if matchCmp(m, t, c) {
		recordSel(m, c)
		return true
	}
	// Equi-comparisons are symmetric: try the flipped conjunct so that a
	// head `a = b` also matches a node predicate `b = a`.
	if c.IsJoin() {
		flipped := algebra.Comparison{
			Left:      *c.RightAttr,
			Op:        c.Op.Flip(),
			RightAttr: &c.Left,
		}
		if matchCmp(m, t, flipped) {
			recordSel(m, c)
			return true
		}
	}
	return false
}

func recordSel(m *matchResult, c algebra.Comparison) {
	if c.IsJoin() {
		return
	}
	m.selAttr = c.Left.Attr
	m.selOp = c.Op
	m.selValue = c.RightConst
	m.hasSel = true
}

func matchCmp(m *matchResult, t HeadTerm, c algebra.Comparison) bool {
	if t.Op != c.Op {
		return false
	}
	// Attribute side.
	if t.Attr != "" {
		if !strings.EqualFold(t.Attr, c.Left.Attr) {
			return false
		}
	}
	// Value side.
	switch {
	case c.IsJoin():
		// The right-hand side is an attribute.
		if t.BoundVal {
			if !t.ValueIsAttr || !strings.EqualFold(t.Value.AsString(), c.RightAttr.Attr) {
				return false
			}
		}
	default:
		// The right-hand side is a constant.
		if t.BoundVal {
			if t.ValueIsAttr || !t.Value.Equal(c.RightConst) {
				return false
			}
		}
	}
	// All constraints hold; produce bindings (after constraints so a
	// failed match leaves no partial bindings behind... bindings are
	// per-call anyway, but partial state would leak through the flipped
	// retry in unifyPred).
	if t.AttrVar != "" {
		m.bind(t.AttrVar, binding{kind: bindAttr, str: c.Left.Attr})
	}
	if t.ValueVar != "" {
		if c.IsJoin() {
			m.bind(t.ValueVar, binding{kind: bindAttr, str: c.RightAttr.Attr})
		} else {
			m.bind(t.ValueVar, binding{kind: bindValue, val: c.RightConst})
		}
	}
	return true
}
