// Package engine implements the mediator's physical execution engine
// (paper Figure 2 steps 4-6): it runs an optimized plan through the
// vectorized batch pipeline (internal/vexec), delegates submit subtrees
// to their wrappers, ships results over the simulated network, and
// combines subanswers with mediator-side operators, charging all work to
// the shared virtual clock. Measured (virtual) response times from this
// engine are the "Experiment" series of the reproduction.
//
// Virtual time is decoupled from the pipeline's wall-clock execution:
// submits charge the clock live (wrapper work, shipping, cache hits),
// while mediator-side operator time is charged analytically after the
// pipeline drains, from the per-operator row counts vexec reports. The
// analytic charges use exactly the formulas the row-at-a-time engine
// charged inline, so simulated response times — and the per-operator
// profile built from them — are preserved across the refactor, while
// wall-clock execution gets batching, morsel parallelism and spilling.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"disco/internal/algebra"
	"disco/internal/feedback"
	"disco/internal/netsim"
	"disco/internal/resultcache"
	"disco/internal/types"
	"disco/internal/vexec"
	"disco/internal/wrapper"
)

// MorselSpeedup models the simulated wall-clock speedup of the
// parallelizable breaker work (sort, hash, join pair matching) at a
// given worker count: near-linear with the standard 0.7 morsel
// efficiency factor. Workers <= 1 is exactly 1, keeping single-threaded
// simulated times bit-identical to the pre-vectorization engine. The
// mediator divides its Med* cost-model coefficients by the same factor
// so estimates and measurements stay aligned.
func MorselSpeedup(workers int) float64 {
	if workers <= 1 {
		return 1
	}
	return 1 + 0.7*float64(workers-1)
}

// Costs are the mediator's per-row processing times in milliseconds. They
// intentionally mirror the local-scope cost model's coefficients so that
// accurate cardinalities imply accurate mediator estimates.
type Costs struct {
	PerObj      float64
	PerPred     float64
	ProjPerObj  float64
	SortPerObj  float64
	HashPerObj  float64
	JoinPerPair float64
	// CachePerObj is the per-row charge for serving a submit from the
	// semantic result cache, behind the resultcache.HitFloorMS lookup
	// floor — the executed mirror of the ScopeCache pricing formula.
	CachePerObj float64
}

// DefaultCosts matches core.DefaultCoefficients' Med* entries; the cache
// charge matches resultcache.HitPerRowMS so estimate and execution agree.
func DefaultCosts() Costs {
	return Costs{
		PerObj:      0.004,
		PerPred:     0.006,
		ProjPerObj:  0.003,
		SortPerObj:  0.010,
		HashPerObj:  0.012,
		JoinPerPair: 0.004,
		CachePerObj: resultcache.HitPerRowMS,
	}
}

// SubmitCache serves and admits materialized submit results, keyed by the
// subtree's 128-bit structural hash. The mediator wires its semantic
// result cache in through this interface (nil disables it); the engine
// consults it at every submit boundary whose wrapper is up, and offers
// every complete wrapper answer back. Implementations must be safe for
// concurrent use.
//
// Callers sharing one plan across goroutines must pre-hash it (computing
// the root's StructuralHash fills every descendant's cache) — the
// mediator's Prepare does exactly that via Prepared.Hash.
type SubmitCache interface {
	// Begin snapshots the invalidation generation at execution start;
	// the engine passes it back through Put so inserts that raced an
	// invalidation (e.g. an outage mark) are refused.
	Begin() uint64
	// Get returns the cached rows for a live entry.
	Get(h algebra.Hash128) ([]types.Row, bool)
	// Put offers a complete (never partial/excluded) wrapper answer.
	Put(h algebra.Hash128, rows []types.Row, schema *types.Schema, bytes int64, gen uint64)
}

// Engine executes optimized plans.
type Engine struct {
	wrappers map[string]wrapper.Wrapper
	net      *netsim.Network
	clock    *netsim.Clock
	costs    Costs

	// downMu guards down: submits consult it, and a wrapper failing
	// mid-query updates it.
	downMu sync.Mutex
	down   map[string]bool

	// SubmitHook, when set, observes every executed wrapper subquery
	// with its measured virtual time; the history recorder (§4.3.1)
	// hangs off it.
	SubmitHook func(wrapper string, subplan *algebra.Node, elapsedMS float64, rows int, bytes int64)
	// OnUnavailable, when set, is notified the first time a wrapper is
	// marked down (submit failed with wrapper.ErrUnavailable). The
	// mediator uses it to drop the wrapper's cost rules so estimation
	// falls back to the generic model.
	OnUnavailable func(wrapper string)
	// Results, when set, is the semantic result cache consulted at submit
	// boundaries (see SubmitCache). Nil leaves execution bit-identical to
	// a build without the cache.
	Results SubmitCache
	// Exec configures the vectorized pipeline: morsel workers inside
	// breakers, the spill memory budget, spill directory and batch size.
	// The zero value (sequential, no spill) is the bit-identical mode.
	Exec vexec.Options
	// Adaptive configures mid-flight re-optimization (ExecuteAdaptive);
	// the zero value disables it and nothing below changes.
	Adaptive AdaptiveOptions
	// Replan, set by the mediator when Adaptive is on, re-costs the
	// remaining plan of a paused query with materialized subtrees pinned
	// as exact leaves. Nil disables adaptive switching even when enabled.
	Replan func(*ReplanRequest) (*ReplanResult, error)
}

// New builds an engine over the registered wrappers. All wrappers must
// share the engine's clock for measured response times to be meaningful;
// New enforces this. The wrapper map is snapshot-copied: an engine's view
// of the federation is immutable for its lifetime, so in-flight
// executions on a superseded engine stay race-free while a registration
// builds its replacement from the live map.
func New(clock *netsim.Clock, net *netsim.Network, wrappers map[string]wrapper.Wrapper, costs Costs) (*Engine, error) {
	ws := make(map[string]wrapper.Wrapper, len(wrappers))
	for name, w := range wrappers {
		if w.Clock() != clock {
			return nil, fmt.Errorf("engine: wrapper %s does not share the engine clock", name)
		}
		ws[name] = w
	}
	return &Engine{wrappers: ws, net: net, clock: clock, costs: costs, down: make(map[string]bool)}, nil
}

// Clock returns the shared virtual clock.
func (e *Engine) Clock() *netsim.Clock { return e.clock }

// MarkUnavailable records a wrapper as down: later submits to it are
// excluded (partial answers) without re-attempting the transport.
func (e *Engine) MarkUnavailable(name string) {
	e.downMu.Lock()
	already := e.down[name]
	e.down[name] = true
	e.downMu.Unlock()
	if !already && e.OnUnavailable != nil {
		e.OnUnavailable(name)
	}
}

// MarkAvailable clears a wrapper's down mark (an administrative revival;
// re-registration rebuilds the engine and clears marks anyway).
func (e *Engine) MarkAvailable(name string) {
	e.downMu.Lock()
	delete(e.down, name)
	e.downMu.Unlock()
}

// Unavailable lists the wrappers currently marked down, sorted.
func (e *Engine) Unavailable() []string {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	out := make([]string, 0, len(e.down))
	for n := range e.down {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) isDown(name string) bool {
	e.downMu.Lock()
	defer e.downMu.Unlock()
	return e.down[name]
}

// Result is a materialized query answer with its measured virtual time.
type Result struct {
	Rows      []types.Row
	Schema    *types.Schema
	ElapsedMS float64
	// Partial reports that at least one wrapper was unavailable and the
	// rows its subplans would have contributed are missing from the
	// answer (the paper's unavailable-source scenario: the mediator
	// answers with what the surviving sources provide).
	Partial bool
	// Excluded lists the unavailable wrappers, sorted.
	Excluded []string
	// Profile records the per-operator actuals of this run (output and
	// consumed cardinalities, virtual times, wrapper round-trips), keyed
	// by the executed plan's nodes. Submits excluded on the partial path
	// are recorded too — a degraded run's profile is never silently
	// empty.
	Profile *feedback.Profile
	// Replans counts mid-flight re-cost attempts by the adaptive
	// executor; PlanSwitches counts the ones that actually switched the
	// running plan. Both are zero on the non-adaptive path.
	Replans      int
	PlanSwitches int
	// ExecutedPlan is the plan that finished the query when it differs
	// from the submitted one (PlanSwitches > 0); nil otherwise. Profile
	// entries are keyed by this plan's nodes for the switched suffix.
	ExecutedPlan *algebra.Node
}

// submitFacts are the transport facts of one executed submit boundary,
// recorded while the pipeline's Leaf hook runs it and folded into the
// profile afterwards.
type submitFacts struct {
	trips     int
	bytes     int64
	excluded  bool
	cached    bool
	elapsedMS float64
}

// execState accumulates per-execution degradation facts, the profile
// under construction, and the per-submit transport facts.
type execState struct {
	excluded map[string]bool
	prof     *feedback.Profile
	submits  map[*algebra.Node]*submitFacts
	// cacheGen is the result cache's invalidation generation at execution
	// start; Put carries it so a mid-query invalidation voids the insert.
	cacheGen uint64
}

func (st *execState) exclude(name string) {
	if st.excluded == nil {
		st.excluded = make(map[string]bool)
	}
	st.excluded[name] = true
}

// Execute runs a resolved, optimized plan and returns the answer with the
// virtual time it took. A submit whose wrapper is (or becomes) unavailable
// does not fail the query: its subtree contributes no rows and the result
// is marked Partial with the wrapper listed in Excluded.
func (e *Engine) Execute(plan *algebra.Node) (*Result, error) {
	watch := netsim.StartWatch(e.clock)
	st := execState{prof: feedback.NewProfile(), submits: make(map[*algebra.Node]*submitFacts)}
	if e.Results != nil {
		st.cacheGen = e.Results.Begin()
	}
	counts := vexec.Counts{}
	rows, err := vexec.Run(plan, &vexec.Env{
		Opts:   e.Exec,
		Counts: counts,
		Leaf:   func(n *algebra.Node) ([]types.Row, bool, error) { return e.leaf(n, &st) },
	})
	if err != nil {
		return nil, err
	}
	e.charge(plan, counts, &st)
	res := &Result{Rows: rows, Schema: plan.OutSchema, ElapsedMS: watch.ElapsedMS(), Profile: st.prof}
	if len(st.excluded) > 0 {
		res.Partial = true
		res.Excluded = make([]string, 0, len(st.excluded))
		for n := range st.excluded {
			res.Excluded = append(res.Excluded, n)
		}
		sort.Strings(res.Excluded)
	}
	st.prof.ElapsedMS = res.ElapsedMS
	st.prof.Partial = res.Partial
	return res, nil
}

// leaf is the pipeline's Leaf hook: it executes submit boundaries
// (wrapper delegation, outage degradation, result cache, shipping) with
// live clock charging, rejects bare scans, and leaves every other node
// to the generic vectorized operators.
func (e *Engine) leaf(n *algebra.Node, st *execState) ([]types.Row, bool, error) {
	switch n.Kind {
	case algebra.OpSubmit:
		t0 := e.clock.Now()
		f := &submitFacts{}
		st.submits[n] = f
		rows, err := e.submit(n, st, f)
		f.elapsedMS = e.clock.Now() - t0
		return rows, true, err

	case algebra.OpScan:
		return nil, false, fmt.Errorf("engine: scan of %s@%s not placed under a submit", n.Collection, n.Wrapper)
	}
	return nil, false, nil
}

// submit executes one submit boundary exactly as the row-at-a-time
// engine did, recording the transport facts for the profile.
func (e *Engine) submit(n *algebra.Node, st *execState, f *submitFacts) ([]types.Row, error) {
	w, ok := e.wrappers[n.Wrapper]
	if !ok {
		return nil, fmt.Errorf("engine: submit to unknown wrapper %q", n.Wrapper)
	}
	if e.isDown(n.Wrapper) {
		// Known-dead source: exclude without touching the transport.
		// The down check comes before the cache — a cached answer must
		// never mask an outage into a silently complete result; the
		// mediator invalidated the cache when it marked the wrapper
		// down anyway.
		st.exclude(n.Wrapper)
		f.excluded = true
		return nil, nil
	}
	if e.Results != nil {
		if rows, ok := e.Results.Get(n.StructuralHash()); ok {
			// Serve the materialized subtree: charge the ScopeCache
			// formula instead of the wrapper and the wire.
			e.clock.Advance(resultcache.HitFloorMS + float64(len(rows))*e.costs.CachePerObj)
			f.cached = true
			return rows, nil
		}
	}
	start := e.clock.Now()
	f.trips = 1
	res, err := w.Execute(n.Children[0])
	if err != nil {
		if errors.Is(err, wrapper.ErrUnavailable) {
			// The source died mid-query: degrade to a partial answer
			// rather than failing, per the paper's unavailable-source
			// discussion.
			e.MarkUnavailable(n.Wrapper)
			st.exclude(n.Wrapper)
			f.excluded = true
			return nil, nil
		}
		return nil, fmt.Errorf("engine: wrapper %s: %w", n.Wrapper, err)
	}
	if e.net != nil {
		e.net.Ship(n.Wrapper, res.Bytes)
	}
	f.bytes = res.Bytes
	if e.SubmitHook != nil {
		e.SubmitHook(n.Wrapper, n.Children[0], e.clock.Now()-start, len(res.Rows), res.Bytes)
	}
	if e.Results != nil {
		// Only a complete wrapper answer is offered; the excluded paths
		// above return before reaching here, so a partial run can never
		// seed the cache (the partial-answer leakage guard).
		e.Results.Put(n.StructuralHash(), res.Rows, n.OutSchema, res.Bytes, st.cacheGen)
	}
	return res.Rows, nil
}

// charge replays the mediator-side operator costs analytically after the
// pipeline drains, advancing the virtual clock and building the profile
// in post-order. The per-operator formulas are identical to the charges
// the row-at-a-time engine made inline, so SubtreeMS/OwnMS decompose the
// same way they always did: a node's own share is its formula, its
// subtree time is that plus the children's. Submit boundaries carry the
// live-measured facts from the Leaf hook and are opaque below (the
// wrapper executed the subtree; there are no mediator charges under it).
// Breaker charges (sort, hash, pair matching) are divided by
// MorselSpeedup — the simulated benefit of intra-query parallelism.
func (e *Engine) charge(n *algebra.Node, counts vexec.Counts, st *execState) *feedback.OpActual {
	if n.Kind == algebra.OpSubmit {
		f := st.submits[n]
		if f == nil {
			f = &submitFacts{}
		}
		out := counts.Out(n)
		a := &feedback.OpActual{
			// The wrapper executes the subtree opaquely; the boundary's
			// consumed rows are the rows it delivered.
			RowsIn:     out,
			RowsOut:    out,
			SubtreeMS:  f.elapsedMS,
			OwnMS:      f.elapsedMS,
			Wrapper:    n.Wrapper,
			RoundTrips: f.trips,
			Bytes:      f.bytes,
			Excluded:   f.excluded,
			FromCache:  f.cached,
		}
		if f.cached {
			st.prof.CacheServed++
		}
		st.prof.ByNode[n] = a
		return a
	}
	var kidsMS float64
	var in int64
	for _, c := range n.Children {
		ca := e.charge(c, counts, st)
		kidsMS += ca.SubtreeMS
		in += ca.RowsOut
	}
	out := counts.Out(n)
	own := e.ownCharge(n, counts, in, out)
	e.clock.Advance(own)
	a := &feedback.OpActual{RowsIn: in, RowsOut: out, OwnMS: own, SubtreeMS: own + kidsMS}
	st.prof.ByNode[n] = a
	return a
}

// ownCharge is one mediator operator's virtual-time formula over its
// consumed and produced cardinalities.
func (e *Engine) ownCharge(n *algebra.Node, counts vexec.Counts, in, out int64) float64 {
	speed := MorselSpeedup(e.Exec.Workers)
	switch n.Kind {
	case algebra.OpSelect:
		return float64(in) * e.costs.PerPred
	case algebra.OpProject:
		return float64(in) * e.costs.ProjPerObj
	case algebra.OpSort:
		return nLogN(int(in)) * e.costs.SortPerObj / speed
	case algebra.OpDupElim:
		return float64(in) * e.costs.HashPerObj / speed
	case algebra.OpAggregate:
		return float64(in)*e.costs.HashPerObj/speed + float64(out)*e.costs.PerObj
	case algebra.OpUnion:
		return float64(out) * e.costs.PerObj
	case algebra.OpJoin:
		l := counts.Out(n.Children[0])
		r := counts.Out(n.Children[1])
		if counts.Stat(n).HashJoin {
			return float64(l+r)*e.costs.HashPerObj/speed + float64(out)*e.costs.PerObj
		}
		return float64(l*r) * e.costs.JoinPerPair / speed
	}
	return 0
}

func nLogN(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	f := float64(n)
	// log2 via the change of base; n log2(n+2) matches the cost model.
	l := 0.0
	for x := n + 2; x > 1; x >>= 1 {
		l++
	}
	return f * l
}
