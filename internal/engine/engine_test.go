package engine

import (
	"testing"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/relstore"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/wrapper"
)

type deployment struct {
	clock  *netsim.Clock
	net    *netsim.Network
	cat    *catalog.Catalog
	engine *Engine
}

func buildDeployment(t *testing.T) *deployment {
	t.Helper()
	clock := netsim.NewClock()
	net := netsim.NewNetwork(netsim.Link{LatencyMS: 10, PerByteMS: 0.0005}, clock)

	ostore := objstore.Open(objstore.DefaultConfig(), clock)
	emp, err := ostore.CreateCollection("Employee", types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Employee", Type: types.KindString},
		types.Field{Name: "dept", Collection: "Employee", Type: types.KindInt},
	), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		emp.Insert(types.Row{types.Int(int64(i)), types.Str("emp"), types.Int(int64(i % 10))})
	}
	if err := emp.CreateIndex("id", true); err != nil {
		t.Fatal(err)
	}

	rstore := relstore.Open(relstore.DefaultConfig(), clock)
	dept, err := rstore.CreateTable("Dept", types.NewSchema(
		types.Field{Name: "dno", Collection: "Dept", Type: types.KindInt},
		types.Field{Name: "dname", Collection: "Dept", Type: types.KindString},
	), 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		dept.Insert(types.Row{types.Int(int64(i)), types.Str("dept")})
	}

	wrappers := map[string]wrapper.Wrapper{
		"obj1": wrapper.NewObjWrapper("obj1", ostore),
		"rel1": wrapper.NewRelWrapper("rel1", rstore),
	}
	cat := catalog.New()
	for _, w := range wrappers {
		if err := cat.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(clock, net, wrappers, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return &deployment{clock: clock, net: net, cat: cat, engine: eng}
}

func (d *deployment) resolve(t *testing.T, plan *algebra.Node) *algebra.Node {
	t.Helper()
	if err := algebra.Resolve(plan, d.cat); err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestExecuteSubmit(t *testing.T) {
	d := buildDeployment(t)
	plan := d.resolve(t, algebra.Submit(
		algebra.Select(algebra.Scan("obj1", "Employee"),
			algebra.NewSelPred(algebra.Ref{Collection: "Employee", Attr: "id"}, stats.CmpLT, types.Int(20))),
		"obj1"))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.ElapsedMS <= 10 {
		t.Errorf("elapsed = %v, should include work and latency", res.ElapsedMS)
	}
}

func TestExecuteCrossSourceJoin(t *testing.T) {
	d := buildDeployment(t)
	plan := d.resolve(t, algebra.Project(
		algebra.Join(
			algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1"),
			algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1"),
			algebra.NewJoinPred(
				algebra.Ref{Collection: "Employee", Attr: "dept"},
				algebra.Ref{Collection: "Dept", Attr: "dno"})),
		"Employee.name", "Dept.dname"))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Errorf("join rows = %d, want 200", len(res.Rows))
	}
	if res.Schema.Len() != 2 {
		t.Errorf("projected schema = %v", res.Schema)
	}
}

func TestExecuteMediatorOps(t *testing.T) {
	d := buildDeployment(t)
	sub := algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1")
	plan := d.resolve(t, algebra.Sort(
		algebra.Aggregate(
			algebra.Select(sub, algebra.NewSelPred(algebra.Ref{Attr: "dept"}, stats.CmpLT, types.Int(5))),
			[]algebra.Ref{{Collection: "Employee", Attr: "dept"}},
			[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}}),
		algebra.SortKey{Attr: algebra.Ref{Attr: "dept"}, Desc: true}))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 4 || res.Rows[0][1].AsInt() != 20 {
		t.Errorf("first group = %v", res.Rows[0])
	}
}

func TestExecuteUnionDupElim(t *testing.T) {
	d := buildDeployment(t)
	mk := func(limit int64) *algebra.Node {
		return algebra.Submit(
			algebra.Select(algebra.Scan("obj1", "Employee"),
				algebra.NewSelPred(algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(limit))), "obj1")
	}
	plan := d.resolve(t, algebra.DupElim(algebra.Union(mk(10), mk(5))))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("distinct rows = %d, want 10", len(res.Rows))
	}
}

func TestExecuteErrors(t *testing.T) {
	d := buildDeployment(t)
	// Unknown wrapper.
	bad := algebra.Submit(algebra.Scan("zzz", "Employee"), "zzz")
	bad.OutSchema = types.NewSchema(types.Field{Name: "x", Type: types.KindInt})
	bad.Children[0].OutSchema = bad.OutSchema
	if _, err := d.engine.Execute(bad); err == nil {
		t.Error("unknown wrapper should fail")
	}
	// Unplaced scan.
	scan := d.resolve(t, algebra.Scan("obj1", "Employee"))
	if _, err := d.engine.Execute(scan); err == nil {
		t.Error("unplaced scan should fail")
	}
	// Unresolved plan.
	if _, err := d.engine.Execute(algebra.Scan("obj1", "Employee")); err == nil {
		t.Error("unresolved plan should fail")
	}
}

func TestEngineRequiresSharedClock(t *testing.T) {
	clock := netsim.NewClock()
	other := objstore.Open(objstore.DefaultConfig(), netsim.NewClock())
	_, err := New(clock, nil, map[string]wrapper.Wrapper{
		"w": wrapper.NewObjWrapper("w", other),
	}, DefaultCosts())
	if err == nil {
		t.Error("mismatched clocks should be rejected")
	}
}

func TestNetworkChargedOnShip(t *testing.T) {
	d := buildDeployment(t)
	plan := d.resolve(t, algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1"))
	before := d.clock.Now()
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// At minimum: 4 pages IO (200 rows * 64B -> 51 rows/page? whatever
	// the store computed) + 200 deliveries * 9 + latency.
	if d.clock.Now()-before < 200*9 {
		t.Errorf("elapsed %v should include delivery cost", res.ElapsedMS)
	}
}

func TestExecuteThetaJoinFallsToNestedLoop(t *testing.T) {
	d := buildDeployment(t)
	// Non-equi join predicate: hash join refuses, nested loops apply.
	pred := &algebra.Predicate{Conjuncts: []algebra.Comparison{{
		Left: algebra.Ref{Collection: "Employee", Attr: "dept"}, Op: stats.CmpLT,
		RightAttr: &algebra.Ref{Collection: "Dept", Attr: "dno"}}}}
	plan := d.resolve(t, algebra.Join(
		algebra.Submit(algebra.Select(algebra.Scan("obj1", "Employee"),
			algebra.NewSelPred(algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(10))), "obj1"),
		algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1"),
		pred))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// ids 0..9 have dept 0..9; dept < dno over dno 0..9:
	// for dept d there are 9-d matches -> sum = 45.
	if len(res.Rows) != 45 {
		t.Errorf("theta join rows = %d, want 45", len(res.Rows))
	}
}

func TestSubmitHookObservesExecutions(t *testing.T) {
	d := buildDeployment(t)
	var seen []string
	var rows int
	d.engine.SubmitHook = func(w string, subplan *algebra.Node, elapsed float64, n int, bytes int64) {
		seen = append(seen, w)
		rows += n
		if elapsed <= 0 || bytes <= 0 {
			t.Errorf("hook got elapsed=%v bytes=%v", elapsed, bytes)
		}
	}
	plan := d.resolve(t, algebra.Join(
		algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1"),
		algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1"),
		algebra.NewJoinPred(algebra.Ref{Collection: "Employee", Attr: "dept"},
			algebra.Ref{Collection: "Dept", Attr: "dno"})))
	if _, err := d.engine.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || rows != 210 {
		t.Errorf("hook saw %v wrappers, %d rows", seen, rows)
	}
}

func TestProfileRecordsOperators(t *testing.T) {
	d := buildDeployment(t)
	subEmp := algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1")
	subDept := algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1")
	join := algebra.Join(subEmp, subDept,
		algebra.NewJoinPred(algebra.Ref{Collection: "Employee", Attr: "dept"},
			algebra.Ref{Collection: "Dept", Attr: "dno"}))
	plan := d.resolve(t, algebra.Project(join, "Employee.name", "Dept.dname"))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("Execute should attach a profile")
	}
	// exec visits the mediator-side nodes plus the submit boundaries;
	// the scans run opaquely inside the wrappers.
	if got := res.Profile.Len(); got != 4 {
		t.Errorf("profile entries = %d, want 4", got)
	}
	checks := []struct {
		node            *algebra.Node
		rowsOut, rowsIn int64
	}{
		{plan, 200, 200},
		{join, 200, 210},
		{subEmp, 200, 200},
		{subDept, 10, 10},
	}
	for _, c := range checks {
		a, ok := res.Profile.Actual(c.node)
		if !ok {
			t.Fatalf("no actual for %s", c.node.Kind)
		}
		if a.RowsOut != c.rowsOut || a.RowsIn != c.rowsIn {
			t.Errorf("%s rows out/in = %d/%d, want %d/%d",
				c.node.Kind, a.RowsOut, a.RowsIn, c.rowsOut, c.rowsIn)
		}
		if a.OwnMS < 0 || a.SubtreeMS < a.OwnMS {
			t.Errorf("%s own=%v subtree=%v", c.node.Kind, a.OwnMS, a.SubtreeMS)
		}
	}
	for _, sub := range []*algebra.Node{subEmp, subDept} {
		a, _ := res.Profile.Actual(sub)
		if a.Wrapper == "" || a.RoundTrips != 1 || a.Bytes <= 0 || a.Excluded {
			t.Errorf("submit %s actual = %+v", sub.Wrapper, a)
		}
	}
	// The root's subtree time is the whole query's elapsed time.
	root, _ := res.Profile.Actual(plan)
	if root.SubtreeMS <= 0 || root.SubtreeMS > res.ElapsedMS+1e-9 {
		t.Errorf("root subtree = %v, elapsed = %v", root.SubtreeMS, res.ElapsedMS)
	}
	if res.Profile.Partial {
		t.Error("profile should not be partial")
	}
}

func TestProfileRecordsExcludedSubmit(t *testing.T) {
	d := buildDeployment(t)
	d.engine.MarkUnavailable("rel1")
	subEmp := algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1")
	subDept := algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1")
	plan := d.resolve(t, algebra.Join(subEmp, subDept,
		algebra.NewJoinPred(algebra.Ref{Collection: "Employee", Attr: "dept"},
			algebra.Ref{Collection: "Dept", Attr: "dno"})))
	res, err := d.engine.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !res.Profile.Partial {
		t.Fatal("down wrapper should yield a partial result and profile")
	}
	// The down submit still gets a profile entry -- degraded runs must
	// not produce silently empty feedback.
	a, ok := res.Profile.Actual(subDept)
	if !ok {
		t.Fatal("excluded submit missing from profile")
	}
	if !a.Excluded || a.Wrapper != "rel1" || a.RowsOut != 0 || a.RoundTrips != 0 {
		t.Errorf("excluded submit actual = %+v", a)
	}
	if live, ok := res.Profile.Actual(subEmp); !ok || live.Excluded || live.RowsOut != 200 {
		t.Errorf("live submit actual = %+v", live)
	}
}
