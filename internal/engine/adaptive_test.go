package engine

import (
	"testing"

	"disco/internal/algebra"
	"disco/internal/types"
)

// TestAdaptiveNextStageOrder pins the staging discipline of the adaptive
// executor: boundaries surface in post-order — submit leaves first, then
// a breaker once every boundary beneath it is materialized — and a fully
// materialized interior leaves only the final stage (nil).
func TestAdaptiveNextStageOrder(t *testing.T) {
	subA := &algebra.Node{Kind: algebra.OpSubmit}
	subB := &algebra.Node{Kind: algebra.OpSubmit}
	union := &algebra.Node{Kind: algebra.OpUnion, Children: []*algebra.Node{subA, subB}}
	sorted := &algebra.Node{Kind: algebra.OpSort, Children: []*algebra.Node{union}}
	root := &algebra.Node{Kind: algebra.OpProject, Children: []*algebra.Node{sorted}}

	mat := map[*algebra.Node][]types.Row{}
	want := []*algebra.Node{subA, subB, sorted}
	for i, w := range want {
		got := nextStage(root, mat)
		if got != w {
			t.Fatalf("stage %d: got %s, want %s", i, got.Kind, w.Kind)
		}
		mat[got] = nil
	}
	// The union and project are pipeline work, not boundaries: with every
	// boundary materialized, what remains is the single final stage.
	if s := nextStage(root, mat); s != nil {
		t.Fatalf("after all boundaries materialized, nextStage = %s, want nil", s.Kind)
	}
	// A materialized node contributes no further stages.
	mat[root] = nil
	if s := nextStage(root, mat); s != nil {
		t.Fatalf("materialized root still staged %s", s.Kind)
	}
}

// TestAdaptiveNextStageSubmitRoot: a plan that is one submit is its own
// first boundary; ExecuteAdaptive's stage loop breaks on stage == cur
// and runs it as the final stage.
func TestAdaptiveNextStageSubmitRoot(t *testing.T) {
	sub := &algebra.Node{Kind: algebra.OpSubmit}
	if got := nextStage(sub, map[*algebra.Node][]types.Row{}); got != sub {
		t.Fatalf("submit root staged %v, want itself", got)
	}
}
