package engine

import (
	"sort"

	"disco/internal/algebra"
	"disco/internal/feedback"
	"disco/internal/netsim"
	"disco/internal/rowops"
	"disco/internal/types"
	"disco/internal/vexec"
)

// Defaults of the adaptive executor's knobs, applied when the
// corresponding AdaptiveOptions field is left zero.
const (
	// DefaultAdaptiveThreshold is the cardinality q-error past which a
	// materialized boundary triggers a re-cost of the remaining plan.
	// 3x is well past estimation noise but well before the 10x errors a
	// stale registration produces.
	DefaultAdaptiveThreshold = 3.0
	// DefaultAdaptiveMargin is the hysteresis fraction: the re-costed
	// plan must beat the current remainder by this much before the
	// engine switches, so near-ties never cause churn.
	DefaultAdaptiveMargin = 0.2
	// DefaultAdaptiveMaxSwitches bounds switches per query: each switch
	// re-enumerates the suffix, and past a couple the remaining plan is
	// dominated by pinned facts anyway.
	DefaultAdaptiveMaxSwitches = 2
)

// AdaptiveOptions configure mid-flight adaptive re-optimization. The
// zero value disables it entirely: Execute is used unmodified and the
// engine behaves bit-identically to a build without this file.
type AdaptiveOptions struct {
	Enabled bool
	// Threshold is the observed-vs-predicted cardinality q-error that
	// triggers a re-cost (0 = DefaultAdaptiveThreshold).
	Threshold float64
	// Margin is the hysteresis fraction a candidate must win by
	// (0 = DefaultAdaptiveMargin).
	Margin float64
	// MaxSwitches bounds plan switches per query
	// (0 = DefaultAdaptiveMaxSwitches).
	MaxSwitches int
}

// PinnedActual is the observed output of one fully materialized subtree,
// handed to the re-optimizer as an exact, zero-cost leaf.
type PinnedActual struct {
	Rows  int64
	Bytes int64
}

// ReplanRequest asks the planner to re-cost the un-executed remainder of
// a running query. Remaining is the currently executing plan; every node
// in Pinned is already materialized, its subtree must be treated as an
// atomic leaf with the recorded actuals, and re-reading it costs
// nothing.
type ReplanRequest struct {
	Remaining *algebra.Node
	Pinned    map[*algebra.Node]PinnedActual
}

// ReplanResult is the planner's answer: the best remaining plan it
// found, the estimated cost of that plan and of the current remainder
// (both priced with the pins, so they are directly comparable), and the
// per-node predicted cardinalities of the new plan for later divergence
// checks.
type ReplanResult struct {
	Plan      *algebra.Node
	NewCost   float64
	OldCost   float64
	Predicted map[*algebra.Node]float64
}

// ExecuteAdaptive runs a plan in stages, pausing at every materialization
// boundary — submit leaves and pipeline breakers — to compare the
// observed cardinality against the optimizer's prediction. Past the
// q-error threshold it asks the Replan callback to re-cost the remaining
// plan with the materialized subtrees pinned as exact zero-cost leaves,
// and switches to the candidate when it wins by the hysteresis margin.
// With the feature disabled (or no Replan wired) it falls through to
// Execute, bit-identically.
//
// predicted maps plan nodes to the optimizer's estimated output
// cardinality (CountObject); nodes without an entry are never checked.
func (e *Engine) ExecuteAdaptive(plan *algebra.Node, predicted map[*algebra.Node]float64) (*Result, error) {
	if !e.Adaptive.Enabled || e.Replan == nil {
		return e.Execute(plan)
	}
	thresh := e.Adaptive.Threshold
	if thresh <= 1 {
		thresh = DefaultAdaptiveThreshold
	}
	margin := e.Adaptive.Margin
	if margin <= 0 {
		margin = DefaultAdaptiveMargin
	}
	maxSwitches := e.Adaptive.MaxSwitches
	if maxSwitches <= 0 {
		maxSwitches = DefaultAdaptiveMaxSwitches
	}

	watch := netsim.StartWatch(e.clock)
	st := execState{prof: feedback.NewProfile(), submits: make(map[*algebra.Node]*submitFacts)}
	if e.Results != nil {
		st.cacheGen = e.Results.Begin()
	}
	// mat holds the materialized output of every completed stage, keyed by
	// the stage's root node. A switched plan reuses the same leaf-unit
	// node pointers, so entries stay valid across switches.
	mat := make(map[*algebra.Node][]types.Row)
	leaf := func(n *algebra.Node) ([]types.Row, bool, error) {
		if rows, ok := mat[n]; ok {
			return rows, true, nil
		}
		return e.leaf(n, &st)
	}
	runStage := func(root *algebra.Node) ([]types.Row, error) {
		counts := vexec.Counts{}
		rows, err := vexec.Run(root, &vexec.Env{Opts: e.Exec, Counts: counts, Leaf: leaf})
		if err != nil {
			return nil, err
		}
		e.chargeStaged(root, counts, &st)
		return rows, nil
	}

	res := &Result{}
	cur := plan
	for {
		stage := nextStage(cur, mat)
		if stage == nil || stage == cur {
			break
		}
		rows, err := runStage(stage)
		if err != nil {
			return nil, err
		}
		mat[stage] = rows

		est, ok := predicted[stage]
		if !ok || res.PlanSwitches >= maxSwitches {
			continue
		}
		if feedback.QError(est, float64(len(rows)), 1) < thresh {
			continue
		}
		// The estimate is proven wrong at this boundary: re-cost the
		// remainder with every materialized subtree pinned to its facts.
		res.Replans++
		req := &ReplanRequest{Remaining: cur, Pinned: make(map[*algebra.Node]PinnedActual, len(mat))}
		for n, rs := range mat {
			req.Pinned[n] = PinnedActual{Rows: int64(len(rs)), Bytes: rowops.RowBytes(rs)}
		}
		rr, err := e.Replan(req)
		if err != nil || rr == nil || rr.Plan == nil {
			continue // replanning is best-effort; estimation failure keeps the current plan
		}
		if rr.Plan != cur && rr.NewCost < rr.OldCost*(1-margin) {
			cur = rr.Plan
			res.PlanSwitches++
			if rr.Predicted != nil {
				predicted = rr.Predicted
			}
		}
	}

	// Final stage: whatever remains of the (possibly switched) plan, with
	// every earlier stage served from its materialization.
	rows, err := runStage(cur)
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Schema = cur.OutSchema
	res.ElapsedMS = watch.ElapsedMS()
	res.Profile = st.prof
	if len(st.excluded) > 0 {
		res.Partial = true
		res.Excluded = make([]string, 0, len(st.excluded))
		for n := range st.excluded {
			res.Excluded = append(res.Excluded, n)
		}
		sort.Strings(res.Excluded)
	}
	st.prof.ElapsedMS = res.ElapsedMS
	st.prof.Partial = res.Partial
	if res.PlanSwitches > 0 {
		res.ExecutedPlan = cur
	}
	return res, nil
}

// nextStage returns the deepest un-materialized staging boundary of the
// plan in post-order: a submit leaf or a pipeline breaker all of whose
// inner boundaries are already materialized. Returning the root (or nil)
// means the rest of the plan is one final stage. Submit subtrees are
// opaque — the wrapper executes them whole.
func nextStage(n *algebra.Node, mat map[*algebra.Node][]types.Row) *algebra.Node {
	if _, done := mat[n]; done {
		return nil
	}
	if n.Kind == algebra.OpSubmit {
		return n
	}
	for _, c := range n.Children {
		if s := nextStage(c, mat); s != nil {
			return s
		}
	}
	if vexec.IsBreaker(n) {
		return n
	}
	return nil
}

// chargeStaged is charge() for staged execution: nodes charged in an
// earlier stage return their recorded actuals without advancing the
// clock again — re-reading a materialized row set is free — while newly
// executed nodes are charged exactly as the one-shot path charges them.
func (e *Engine) chargeStaged(n *algebra.Node, counts vexec.Counts, st *execState) *feedback.OpActual {
	if a, ok := st.prof.ByNode[n]; ok {
		return a
	}
	if n.Kind == algebra.OpSubmit {
		return e.charge(n, counts, st)
	}
	var kidsMS float64
	var in int64
	for _, c := range n.Children {
		ca := e.chargeStaged(c, counts, st)
		kidsMS += ca.SubtreeMS
		in += ca.RowsOut
	}
	out := counts.Out(n)
	own := e.ownCharge(n, counts, in, out)
	e.clock.Advance(own)
	a := &feedback.OpActual{RowsIn: in, RowsOut: out, OwnMS: own, SubtreeMS: own + kidsMS}
	st.prof.ByNode[n] = a
	return a
}
