package engine

import (
	"fmt"
	"reflect"
	"testing"

	"disco/internal/algebra"
	"disco/internal/netsim"
	"disco/internal/rowops"
	"disco/internal/stats"
	"disco/internal/types"
	"disco/internal/vexec"
)

// legacyExec is a faithful reimplementation of the engine's
// pre-vectorization row-at-a-time executor (materializing rowops calls
// with inline clock charges). The identity tests run it against
// Engine.Execute on identical fresh deployments: rows must match bit for
// bit and the virtual elapsed time must agree to float round-off.
func legacyExec(e *Engine, n *algebra.Node) ([]types.Row, error) {
	if n.OutSchema == nil {
		return nil, fmt.Errorf("legacy: unresolved plan node %s", n.Kind)
	}
	switch n.Kind {
	case algebra.OpSubmit:
		w, ok := e.wrappers[n.Wrapper]
		if !ok {
			return nil, fmt.Errorf("legacy: unknown wrapper %q", n.Wrapper)
		}
		res, err := w.Execute(n.Children[0])
		if err != nil {
			return nil, err
		}
		if e.net != nil {
			e.net.Ship(n.Wrapper, res.Bytes)
		}
		return res.Rows, nil
	case algebra.OpSelect:
		rows, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		e.clock.Advance(float64(len(rows)) * e.costs.PerPred)
		return rowops.Filter(n.OutSchema, rows, n.Pred), nil
	case algebra.OpProject:
		rows, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		e.clock.Advance(float64(len(rows)) * e.costs.ProjPerObj)
		return rowops.Project(n.Children[0].OutSchema, rows, n.Cols)
	case algebra.OpSort:
		rows, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		e.clock.Advance(nLogN(len(rows)) * e.costs.SortPerObj)
		return rowops.Sort(n.OutSchema, rows, n.Keys)
	case algebra.OpDupElim:
		rows, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		e.clock.Advance(float64(len(rows)) * e.costs.HashPerObj)
		return rowops.DupElim(rows), nil
	case algebra.OpAggregate:
		rows, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		e.clock.Advance(float64(len(rows)) * e.costs.HashPerObj)
		out, err := rowops.Aggregate(n.Children[0].OutSchema, rows, n.GroupBy, n.Aggs)
		if err != nil {
			return nil, err
		}
		e.clock.Advance(float64(len(out)) * e.costs.PerObj)
		return out, nil
	case algebra.OpUnion:
		left, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := legacyExec(e, n.Children[1])
		if err != nil {
			return nil, err
		}
		out := rowops.Union(left, right)
		e.clock.Advance(float64(len(out)) * e.costs.PerObj)
		return out, nil
	case algebra.OpJoin:
		left, err := legacyExec(e, n.Children[0])
		if err != nil {
			return nil, err
		}
		right, err := legacyExec(e, n.Children[1])
		if err != nil {
			return nil, err
		}
		ls, rs := n.Children[0].OutSchema, n.Children[1].OutSchema
		if out, ok := rowops.HashJoin(ls, rs, n.OutSchema, left, right, n.Pred, nil); ok {
			e.clock.Advance(float64(len(left)+len(right)) * e.costs.HashPerObj)
			e.clock.Advance(float64(len(out)) * e.costs.PerObj)
			return out, nil
		}
		out := rowops.NestedLoopJoin(n.OutSchema, left, right, n.Pred, nil)
		e.clock.Advance(float64(len(left)*len(right)) * e.costs.JoinPerPair)
		return out, nil
	default:
		return nil, fmt.Errorf("legacy: cannot execute operator %s", n.Kind)
	}
}

// identityPlans are the plan shapes the equivalence tests cover — every
// mediator operator over real wrapper submits.
func identityPlans(t *testing.T, d *deployment) map[string]*algebra.Node {
	t.Helper()
	subEmp := func() *algebra.Node { return algebra.Submit(algebra.Scan("obj1", "Employee"), "obj1") }
	subDept := func() *algebra.Node { return algebra.Submit(algebra.Scan("rel1", "Dept"), "rel1") }
	empDept := algebra.Ref{Collection: "Employee", Attr: "dept"}
	deptDno := algebra.Ref{Collection: "Dept", Attr: "dno"}
	thetaPred := &algebra.Predicate{Conjuncts: []algebra.Comparison{{
		Left: empDept, Op: stats.CmpLT, RightAttr: &deptDno}}}
	plans := map[string]*algebra.Node{
		"joinProject": algebra.Project(
			algebra.Join(subEmp(), subDept(), algebra.NewJoinPred(empDept, deptDno)),
			"Employee.name", "Dept.dname"),
		"sortAggSelect": algebra.Sort(
			algebra.Aggregate(
				algebra.Select(subEmp(), algebra.NewSelPred(algebra.Ref{Attr: "dept"}, stats.CmpLT, types.Int(5))),
				[]algebra.Ref{empDept},
				[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, As: "n"}}),
			algebra.SortKey{Attr: algebra.Ref{Attr: "dept"}, Desc: true}),
		"unionDupElim": algebra.DupElim(algebra.Union(
			algebra.Submit(algebra.Select(algebra.Scan("obj1", "Employee"),
				algebra.NewSelPred(algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(10))), "obj1"),
			algebra.Submit(algebra.Select(algebra.Scan("obj1", "Employee"),
				algebra.NewSelPred(algebra.Ref{Attr: "id"}, stats.CmpLT, types.Int(5))), "obj1"))),
		"thetaJoin": algebra.Join(subEmp(), subDept(), thetaPred),
	}
	for name, p := range plans {
		if err := algebra.Resolve(p, d.cat); err != nil {
			t.Fatalf("resolve %s: %v", name, err)
		}
	}
	return plans
}

// TestVectorizedMatchesLegacy: the vectorized engine at Workers<=1 with
// no spill budget must reproduce the row-at-a-time executor bit for bit
// — rows, order, and virtual elapsed time (to float round-off from
// charge-summation order).
func TestVectorizedMatchesLegacy(t *testing.T) {
	for name := range identityPlans(t, buildDeployment(t)) {
		t.Run(name, func(t *testing.T) {
			dLegacy := buildDeployment(t)
			legacyPlan := identityPlans(t, dLegacy)[name]
			watch := netsim.StartWatch(dLegacy.clock)
			wantRows, err := legacyExec(dLegacy.engine, legacyPlan)
			if err != nil {
				t.Fatal(err)
			}
			wantMS := watch.ElapsedMS()

			dNew := buildDeployment(t)
			res, err := dNew.engine.Execute(identityPlans(t, dNew)[name])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantRows, res.Rows) {
				if len(wantRows) != len(res.Rows) {
					t.Fatalf("rows = %d, legacy %d", len(res.Rows), len(wantRows))
				}
				for i := range wantRows {
					if !reflect.DeepEqual(wantRows[i], res.Rows[i]) {
						t.Fatalf("row %d = %s, legacy %s", i, res.Rows[i], wantRows[i])
					}
				}
			}
			if diff := res.ElapsedMS - wantMS; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("elapsed = %v, legacy %v", res.ElapsedMS, wantMS)
			}
		})
	}
}

// TestParallelWorkersPreserveRows: Workers>1 keeps the answer
// bit-identical while the simulated breaker time shrinks by
// MorselSpeedup.
func TestParallelWorkersPreserveRows(t *testing.T) {
	for name := range identityPlans(t, buildDeployment(t)) {
		t.Run(name, func(t *testing.T) {
			dSeq := buildDeployment(t)
			seq, err := dSeq.engine.Execute(identityPlans(t, dSeq)[name])
			if err != nil {
				t.Fatal(err)
			}
			dPar := buildDeployment(t)
			dPar.engine.Exec = vexec.Options{Workers: 4}
			par, err := dPar.engine.Execute(identityPlans(t, dPar)[name])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Rows, par.Rows) {
				t.Fatalf("parallel rows diverge from sequential (%d vs %d rows)", len(par.Rows), len(seq.Rows))
			}
			if par.ElapsedMS > seq.ElapsedMS+1e-9 {
				t.Fatalf("parallel elapsed %v exceeds sequential %v", par.ElapsedMS, seq.ElapsedMS)
			}
		})
	}
}

// TestMorselSpeedupFactor pins the simulated scaling model.
func TestMorselSpeedupFactor(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if got := MorselSpeedup(w); got != 1 {
			t.Errorf("MorselSpeedup(%d) = %v, want 1", w, got)
		}
	}
	for _, w := range []int{2, 4, 8} {
		want := 1 + 0.7*float64(w-1)
		if got := MorselSpeedup(w); got != want {
			t.Errorf("MorselSpeedup(%d) = %v, want %v", w, got, want)
		}
	}
}

// TestSpilledExecutionDegradesGracefully: a tiny memory budget forces
// mediator-side joins to spill; the answer must stay multiset-identical
// (here: identical after sorting, since the join output is unique rows).
func TestSpilledExecutionDegradesGracefully(t *testing.T) {
	dSeq := buildDeployment(t)
	seqRes, err := dSeq.engine.Execute(identityPlans(t, dSeq)["joinProject"])
	if err != nil {
		t.Fatal(err)
	}
	dSp := buildDeployment(t)
	dSp.engine.Exec = vexec.Options{MemBytes: 1 << 10, SpillDir: t.TempDir()}
	spRes, err := dSp.engine.Execute(identityPlans(t, dSp)["joinProject"])
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRes.Rows) != len(spRes.Rows) {
		t.Fatalf("spilled rows = %d, in-memory %d", len(spRes.Rows), len(seqRes.Rows))
	}
	seen := make(map[string]int)
	for _, r := range seqRes.Rows {
		seen[r.Key()]++
	}
	for _, r := range spRes.Rows {
		seen[r.Key()]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("multiset mismatch at key %q (%+d)", k, c)
		}
	}
}
