package mediator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"disco/internal/feedback"
	"disco/internal/netsim"
	"disco/internal/types"
)

// concurrencyQueries is a mixed query-only workload over the
// three-source fixture: point lookups, scans, a cross-source join and an
// aggregate. Every statement is deterministic, so concurrent and
// sequential runs must produce identical row multisets.
var concurrencyQueries = []string{
	`SELECT name, salary FROM Employee WHERE id < 10`,
	`SELECT name FROM Employee WHERE salary < 1050`,
	`SELECT dname FROM Dept`,
	`SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1020`,
	`SELECT COUNT(*) FROM Notes`,
	`SELECT name FROM Employee WHERE id = 421`,
}

// canonRows renders rows as a sorted multiset string for
// order-insensitive comparison across runs.
func canonRows(rows []types.Row) string {
	lines := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, c := range row {
			cells[j] = c.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestConcurrentQueriesMatchSequential runs the query-only workload from
// many goroutines and asserts every answer is identical to the
// sequential baseline: same row multiset for every statement, no errors.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	m := buildMediator(t, DefaultConfig())

	// Sequential baseline.
	want := make(map[string]string, len(concurrencyQueries))
	for _, sql := range concurrencyQueries {
		res, err := m.Query(sql)
		if err != nil {
			t.Fatalf("baseline %s: %v", sql, err)
		}
		want[sql] = canonRows(res.Rows)
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the statement order per worker.
				for i := range concurrencyQueries {
					sql := concurrencyQueries[(i+w+r)%len(concurrencyQueries)]
					res, err := m.Query(sql)
					if err != nil {
						errs <- fmt.Errorf("%s: %w", sql, err)
						return
					}
					if got := canonRows(res.Rows); got != want[sql] {
						errs <- fmt.Errorf("%s: concurrent rows diverge from sequential run", sql)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := m.Stats()
	if st.PlanCacheHits == 0 {
		t.Errorf("repeated statements should hit the plan cache, stats = %+v", st)
	}
}

// TestConcurrentMixedTraffic hammers the mediator with queries, explains
// and prepared executions while registrations and a mid-run source
// outage happen concurrently — the full serving surface under -race.
// Queries may see either federation state (and partial answers after the
// outage), but nothing may error, race, or deadlock.
func TestConcurrentMixedTraffic(t *testing.T) {
	m, _, _ := startFaultyDeployment(t, netsim.FaultPlan{UnavailableAfter: 30})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Query traffic: local statements must always succeed; statements
	// over the remote Parts source may degrade to partial answers after
	// the injected outage but must never fail.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + w) % 3 {
				case 0:
					if _, err := m.Query(`SELECT dname FROM Dept`); err != nil {
						report(fmt.Errorf("local query: %w", err))
						return
					}
				case 1:
					if _, err := m.Query(`SELECT pid FROM Parts WHERE pid < 20`); err != nil {
						report(fmt.Errorf("remote query: %w", err))
						return
					}
				case 2:
					if _, err := m.Explain(`SELECT name FROM Employee WHERE id < 50`); err != nil {
						report(fmt.Errorf("explain: %w", err))
						return
					}
				}
			}
		}(w)
	}

	// Prepare/ExecutePlan traffic racing the registrations below: stale
	// plans must transparently re-prepare, never error.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, err := m.Prepare(`SELECT name FROM Employee WHERE salary < 1010`)
			if err != nil {
				report(fmt.Errorf("prepare: %w", err))
				return
			}
			if _, err := m.ExecutePlan(p); err != nil {
				report(fmt.Errorf("execute prepared: %w", err))
				return
			}
		}
	}()

	// Availability polling (the satellite-1 regression surface).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Available("remoteparts")
			m.Unavailable()
		}
	}()

	// Re-registration churn: every registration bumps the catalog epoch
	// and invalidates every cached plan while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w, ok := m.Wrapper("rel1")
			if !ok {
				report(errors.New("rel1 disappeared"))
				return
			}
			if err := m.Register(w); err != nil {
				report(fmt.Errorf("re-register: %w", err))
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAvailableUnavailableRace is the regression test for the
// unsynchronized down-mark map: readers polling availability while the
// engine's outage callback marks wrappers down used to be a data race.
func TestAvailableUnavailableRace(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Available("obj1")
				m.Unavailable()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		// markUnavailable is what the engine's outage callback invokes
		// mid-execution; Register revives.
		m.markUnavailable("files")
		w, _ := m.Wrapper("files")
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Unavailable(); len(got) != 0 {
		t.Errorf("all wrappers revived, Unavailable() = %v", got)
	}
}

// TestExecutePlanReprepareAfterRegister pins the epoch discipline: a
// plan prepared before a re-registration re-prepares transparently at
// execution, and a SQL-less stale plan is rejected with ErrStalePlan.
func TestExecutePlanReprepareAfterRegister(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	sql := `SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`
	p, err := m.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash.Lo == 0 && p.Hash.Hi == 0 {
		t.Error("prepared plan should carry its structural hash")
	}
	epoch := p.Epoch

	// Re-register a wrapper between prepare and execute: the catalog
	// epoch bumps and the plan's generation is invalid.
	w, _ := m.Wrapper("rel1")
	if err := m.Register(w); err != nil {
		t.Fatal(err)
	}
	if m.Catalog.Epoch() == epoch {
		t.Fatal("re-registration must bump the catalog epoch")
	}

	res, err := m.ExecutePlan(p)
	if err != nil {
		t.Fatalf("stale plan with SQL must transparently re-prepare: %v", err)
	}
	if len(res.Rows) != 100 {
		t.Errorf("re-prepared execution rows = %d, want 100", len(res.Rows))
	}
	if st := m.Stats(); st.Reprepares != 1 {
		t.Errorf("Reprepares = %d, want 1", st.Reprepares)
	}

	// A stale plan without SQL text cannot be re-prepared.
	orphan := *p
	orphan.SQL = ""
	if err := m.Register(w); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecutePlan(&orphan); !errors.Is(err, ErrStalePlan) {
		t.Errorf("SQL-less stale plan: err = %v, want ErrStalePlan", err)
	}
}

// TestPlanCache pins the cache semantics: repeated statements hit,
// whitespace variants normalize to one entry, registrations invalidate
// by epoch, the LRU bound holds, and a negative size disables caching.
func TestPlanCache(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	sql := `SELECT name FROM Employee WHERE id < 10`

	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	// Whitespace variant shares the entry.
	if _, err := m.Query("SELECT   name\n FROM Employee  WHERE id < 10;"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.PlanCacheHits != 2 {
		t.Errorf("PlanCacheHits = %d, want 2 (repeat + normalized variant)", st.PlanCacheHits)
	}

	// Registration bumps the epoch; a fresh query re-plans.
	w, _ := m.Wrapper("obj1")
	if err := m.Register(w); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st = m.Stats(); st.PlanCacheHits != 2 {
		t.Errorf("post-registration query must miss, hits = %d", st.PlanCacheHits)
	}

	// LRU bound.
	cfg := DefaultConfig()
	cfg.PlanCacheSize = 2
	m2 := buildMediator(t, cfg)
	for _, q := range []string{
		`SELECT name FROM Employee WHERE id < 1`,
		`SELECT name FROM Employee WHERE id < 2`,
		`SELECT name FROM Employee WHERE id < 3`,
	} {
		if _, err := m2.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if n := m2.Stats().PlanCacheEntries; n > 2 {
		t.Errorf("cache entries = %d, want <= 2", n)
	}

	// Disabled cache never hits.
	cfg = DefaultConfig()
	cfg.PlanCacheSize = -1
	m3 := buildMediator(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := m3.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if st := m3.Stats(); st.PlanCacheHits != 0 || st.PlanCacheEntries != 0 {
		t.Errorf("disabled cache: stats = %+v", st)
	}
}

// TestAdmissionControl pins the load-shedding semantics of the
// max-in-flight semaphore.
func TestAdmissionControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	cfg.AdmissionTimeout = 25 * time.Millisecond
	m := buildMediator(t, cfg)
	sql := `SELECT dname FROM Dept`

	// Saturate the only slot; every query sheds after the queue timeout.
	if err := m.adm.acquire(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := m.Query(sql)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated mediator: err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Errorf("shed after %v, want the full queue timeout", waited)
	}
	if st := m.Stats(); st.Shed != 1 || st.InFlight != 1 {
		t.Errorf("stats = %+v, want Shed=1 InFlight=1", st)
	}

	// Releasing the slot restores service.
	m.adm.release()
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}

	// A queued query is admitted as soon as a slot frees within the
	// timeout.
	cfg.AdmissionTimeout = 2 * time.Second
	m2 := buildMediator(t, cfg)
	if err := m2.adm.acquire(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m2.Query(sql)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m2.adm.release()
	if err := <-done; err != nil {
		t.Errorf("queued query after release: %v", err)
	}
}

// countingStore wraps a feedback store, counting saves.
type countingStore struct {
	mu    sync.Mutex
	inner feedback.Store
	saves int
}

func (c *countingStore) Save(s *feedback.Snapshot) error {
	c.mu.Lock()
	c.saves++
	c.mu.Unlock()
	return c.inner.Save(s)
}
func (c *countingStore) Load() (*feedback.Snapshot, error) { return c.inner.Load() }
func (c *countingStore) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}

// TestFeedbackSaveDebounce pins the coalescing: N absorbed executions
// inside the save window produce far fewer writes than N, and Close
// flushes a final snapshot carrying the complete learned state.
func TestFeedbackSaveDebounce(t *testing.T) {
	store := &countingStore{inner: feedback.NewMemStore()}
	cfg := DefaultConfig()
	cfg.RecordHistory = false
	cfg.Feedback = true
	cfg.FeedbackStore = store
	cfg.FeedbackSaveInterval = time.Hour
	m := buildMediator(t, cfg)

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := m.Query(`SELECT name FROM Employee WHERE salary < 1050`); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.count(); got != 1 {
		t.Errorf("saves during the window = %d, want 1 (first absorb), for %d queries", got, n)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := store.count(); got != 2 {
		t.Errorf("saves after Close = %d, want 2", got)
	}

	// The flushed snapshot matches the live state, not the first query's.
	snap, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	live := feedback.Capture(m.Feedback, m.Adjuster, nil)
	if len(snap.Scopes) != len(live.Scopes) || len(snap.Cards) != len(live.Cards) {
		t.Errorf("flushed snapshot (scopes=%d cards=%d) != live capture (scopes=%d cards=%d)",
			len(snap.Scopes), len(snap.Cards), len(live.Scopes), len(live.Cards))
	}

	// Negative interval restores save-per-query.
	store2 := &countingStore{inner: feedback.NewMemStore()}
	cfg.FeedbackStore = store2
	cfg.FeedbackSaveInterval = -1
	m2 := buildMediator(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := m2.Query(`SELECT name FROM Employee WHERE salary < 1050`); err != nil {
			t.Fatal(err)
		}
	}
	if got := store2.count(); got != 5 {
		t.Errorf("negative interval saves = %d, want 5", got)
	}
}

// TestNormalizeSQL pins the cache-key canonicalization.
func TestNormalizeSQL(t *testing.T) {
	cases := map[string]string{
		"SELECT a FROM b":           "SELECT a FROM b",
		"  SELECT   a\n\tFROM  b ;": "SELECT a FROM b",
		"SELECT a FROM b;":          "SELECT a FROM b",
		"select a from b":           "select a from b",
		// Literal content is preserved byte-for-byte: embedded runs of
		// whitespace, leading/trailing spaces, tabs and newlines inside
		// quotes, and the other quote character as ordinary content (the
		// lexer has no escape mechanism — see NormalizeSQL).
		"SELECT a FROM b WHERE x = 'a  b'":        "SELECT a FROM b WHERE x = 'a  b'",
		"SELECT  a FROM b  WHERE x = ' a\t b ' ;": "SELECT a FROM b WHERE x = ' a\t b '",
		`SELECT a FROM b WHERE x = "it's  ok"`:    `SELECT a FROM b WHERE x = "it's  ok"`,
		"SELECT a FROM b WHERE x = 'multi\nline'": "SELECT a FROM b WHERE x = 'multi\nline'",
		// Outside-literal collapsing still applies around literals.
		"SELECT a FROM b WHERE x =   'a b'  AND y =  2": "SELECT a FROM b WHERE x = 'a b' AND y = 2",
		// An unterminated literal runs to the end of the statement; the
		// trailing "; " trim must not amputate its content.
		"SELECT a FROM b WHERE x = 'dangling  ;": "SELECT a FROM b WHERE x = 'dangling  ;",
	}
	for in, want := range cases {
		if got := NormalizeSQL(in); got != want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", in, got, want)
		}
	}
	if NormalizeSQL("SELECT 'a' FROM b") == NormalizeSQL("SELECT 'A' FROM b") {
		t.Error("case variants must not collide (string constants are case-sensitive)")
	}
	if NormalizeSQL("SELECT a FROM b WHERE x = 'a  b'") == NormalizeSQL("SELECT a FROM b WHERE x = 'a b'") {
		t.Error("literals differing only in embedded whitespace must not share a cache key")
	}
}

// TestPlanCacheStaleAccounting pins the stale-entry bookkeeping of
// planCache.get: an epoch-stale eviction is exactly one miss AND one
// stale — Stale is a subset of Misses, never a third disjoint outcome —
// and plain misses leave the stale counter alone.
func TestPlanCacheStaleAccounting(t *testing.T) {
	c := newPlanCache(4)
	c.put("q", &Prepared{SQL: "q", Epoch: 1})

	// Epoch bump between put and get: evicted on sight, one miss + one
	// stale.
	if _, ok := c.get("q", 2); ok {
		t.Fatal("epoch-stale plan served")
	}
	hits, misses, stale := c.counters()
	if hits != 0 || misses != 1 || stale != 1 {
		t.Errorf("after stale get: hits/misses/stale = %d/%d/%d, want 0/1/1", hits, misses, stale)
	}
	if c.len() != 0 {
		t.Errorf("stale entry not evicted: len = %d", c.len())
	}

	// A plain miss on an unknown key counts a miss only.
	if _, ok := c.get("q", 2); ok {
		t.Fatal("evicted plan served")
	}
	hits, misses, stale = c.counters()
	if hits != 0 || misses != 2 || stale != 1 {
		t.Errorf("after plain miss: hits/misses/stale = %d/%d/%d, want 0/2/1", hits, misses, stale)
	}

	// The refreshed entry hits under the new epoch.
	c.put("q", &Prepared{SQL: "q", Epoch: 2})
	if _, ok := c.get("q", 2); !ok {
		t.Fatal("refreshed plan missing")
	}
	hits, misses, stale = c.counters()
	if hits != 1 || misses != 2 || stale != 1 {
		t.Errorf("after refresh: hits/misses/stale = %d/%d/%d, want 1/2/1", hits, misses, stale)
	}

	// Stats() exposes the same counters with the same subset
	// relationship. (Register clears the cache outright, so a live
	// mediator sees the stale path only when an entry survives an epoch
	// bump — e.g. a get racing a registration; the unit part above pins
	// that path directly.)
	m := buildMediator(t, DefaultConfig())
	if _, err := m.Query(`SELECT name FROM Employee WHERE id < 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`SELECT name FROM Employee WHERE id < 5`); err != nil {
		t.Fatal(err)
	}
	w, _ := m.Wrapper("rel1")
	if err := m.Register(w); err != nil { // epoch bump + cache clear
		t.Fatal(err)
	}
	if _, err := m.Query(`SELECT name FROM Employee WHERE id < 5`); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.PlanCacheStale > s.PlanCacheMisses {
		t.Errorf("Stale (%d) exceeds Misses (%d): stale must be a miss subset", s.PlanCacheStale, s.PlanCacheMisses)
	}
	if s.PlanCacheHits != 1 || s.PlanCacheMisses != 2 {
		t.Errorf("stats = hits %d misses %d, want 1/2", s.PlanCacheHits, s.PlanCacheMisses)
	}
}
