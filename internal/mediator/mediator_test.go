package mediator

import (
	"net"
	"strings"
	"testing"

	"disco/internal/algebra"

	"disco/internal/filestore"
	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/relstore"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// buildMediator assembles a three-source deployment: employees in the
// object store, departments in the relational store, notes in flat files.
func buildMediator(t *testing.T, cfg Config) *Mediator {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock := m.Clock

	ostore := objstore.Open(objstore.DefaultConfig(), clock)
	emp, err := ostore.CreateCollection("Employee", types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "name", Collection: "Employee", Type: types.KindString},
		types.Field{Name: "dept", Collection: "Employee", Type: types.KindInt},
		types.Field{Name: "salary", Collection: "Employee", Type: types.KindInt},
	), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		emp.Insert(types.Row{types.Int(int64(i)),
			types.Str([]string{"ana", "bob", "cyd"}[i%3]),
			types.Int(int64(i % 10)), types.Int(int64(1000 + i%500))})
	}
	if err := emp.CreateIndex("id", true); err != nil {
		t.Fatal(err)
	}

	rstore := relstore.Open(relstore.DefaultConfig(), clock)
	dept, err := rstore.CreateTable("Dept", types.NewSchema(
		types.Field{Name: "dno", Collection: "Dept", Type: types.KindInt},
		types.Field{Name: "dname", Collection: "Dept", Type: types.KindString},
	), 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		dept.Insert(types.Row{types.Int(int64(i)), types.Str("dept" + string(rune('A'+i)))})
	}
	dept.CreateHashIndex("dno")

	fstore := filestore.Open(filestore.DefaultConfig(), clock)
	notes, err := fstore.CreateFile("Notes", types.NewSchema(
		types.Field{Name: "emp", Collection: "Notes", Type: types.KindInt},
		types.Field{Name: "text", Collection: "Notes", Type: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		notes.Append(types.Row{types.Int(int64(i * 7 % 1000)), types.Str("note")})
	}

	for _, w := range []wrapper.Wrapper{
		wrapper.NewObjWrapper("obj1", ostore),
		wrapper.NewRelWrapper("rel1", rstore),
		wrapper.NewFileWrapper("files", fstore),
	} {
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestQuerySingleSource(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT name, salary FROM Employee WHERE id < 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || res.Schema.Len() != 2 {
		t.Errorf("rows = %d schema = %v", len(res.Rows), res.Schema)
	}
	if res.ElapsedMS <= 0 {
		t.Error("virtual time should elapse")
	}
}

func TestQueryCrossSourceJoin(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 employees, salary = 1000 + i%500 < 1050 -> i%500 < 50 -> 100 rows.
	if len(res.Rows) != 100 {
		t.Errorf("rows = %d, want 100", len(res.Rows))
	}
}

func TestQueryThreeSources(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT name, text FROM Employee, Notes WHERE Employee.id = Notes.emp AND Employee.id < 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("expected some joined notes")
	}
	for _, r := range res.Rows {
		if r[1].AsString() != "note" {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT dept, count(*) AS n, avg(salary) AS avgsal FROM Employee GROUP BY dept ORDER BY dept`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 0 || res.Rows[0][1].AsInt() != 100 {
		t.Errorf("first group = %v", res.Rows[0])
	}
}

func TestQueryDistinctOrder(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT DISTINCT name FROM Employee ORDER BY name DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].AsString() != "cyd" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	cases := []string{
		`SELECT * FROM Nowhere`,
		`SELECT * FROM Employee@zzz`,
		`SELECT zzz FROM Employee`,
		`SELECT name, count(*) FROM Employee`,        // name not grouped
		`SELECT * , count(*) FROM Employee`,          // parse error actually
		`SELECT name FROM Employee GROUP BY name`,    // group without aggregates
		`SELECT *, name FROM Employee`,               // star mixed with columns
		`SELECT bogus FROM Employee WHERE bogus = 1`, // unknown attr
	}
	for _, sql := range cases {
		if _, err := m.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestAmbiguousCollectionNeedsPin(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	// Create a second wrapper exporting a collection named Employee.
	other := objstore.Open(objstore.DefaultConfig(), m.Clock)
	emp2, err := other.CreateCollection("Employee", types.NewSchema(
		types.Field{Name: "id", Collection: "Employee", Type: types.KindInt},
	), 16)
	if err != nil {
		t.Fatal(err)
	}
	emp2.Insert(types.Row{types.Int(1)})
	if err := m.Register(wrapper.NewObjWrapper("obj2", other)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`SELECT id FROM Employee`); err == nil ||
		!strings.Contains(err.Error(), "several wrappers") {
		t.Errorf("ambiguous collection: err = %v", err)
	}
	res, err := m.Query(`SELECT id FROM Employee@obj2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("pinned query rows = %d", len(res.Rows))
	}
}

func TestExplainShowsCosts(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	out, err := m.Explain(`SELECT name FROM Employee WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"estimated TotalTime", "scan(Employee@obj1)", "TotalTime="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestHistoryRecordsAndImproves(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	sql := `SELECT name FROM Employee WHERE dept = 3`
	p1, err := m.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	est1 := p1.Cost.TotalTime()
	res, err := m.ExecutePlan(p1)
	if err != nil {
		t.Fatal(err)
	}
	if m.History.Len() == 0 {
		t.Fatal("history should record the executed subquery")
	}
	// Second preparation of the identical query: the query-scope rule now
	// supplies the observed wrapper cost, so the estimate moves toward
	// the measurement.
	p2, err := m.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	est2 := p2.Cost.TotalTime()
	actual := res.ElapsedMS
	if diff1, diff2 := abs(est1-actual), abs(est2-actual); diff2 > diff1 {
		t.Errorf("history estimate %v should be closer to actual %v than first estimate %v", est2, actual, est1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWrapperRulesImproveEstimates(t *testing.T) {
	// The same deployment, with and without wrapper rules: the blended
	// estimate of a sequential-scan query must be closer to the measured
	// execution than the generic one. (The object store's real page cost
	// dominates; the generic model can only guess.)
	sql := `SELECT name FROM Employee WHERE salary >= 1450`

	run := func(useRules bool) (est, actual float64) {
		cfg := DefaultConfig()
		cfg.UseWrapperRules = useRules
		cfg.RecordHistory = false
		m := buildMediator(t, cfg)
		p, err := m.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.ExecutePlan(p)
		if err != nil {
			t.Fatal(err)
		}
		return p.Cost.TotalTime(), res.ElapsedMS
	}
	genEst, genActual := run(false)
	blendEst, blendActual := run(true)
	genErr := abs(genEst-genActual) / genActual
	blendErr := abs(blendEst-blendActual) / blendActual
	if blendErr >= genErr {
		t.Errorf("blended error %.3f should beat generic error %.3f (est %v/%v actual %v/%v)",
			blendErr, genErr, blendEst, genEst, blendActual, genActual)
	}
}

func TestRegisterRejectsForeignClock(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	other := objstore.Open(objstore.DefaultConfig(), netsim.NewClock())
	if _, err := other.CreateCollection("X", types.NewSchema(
		types.Field{Name: "a", Type: types.KindInt}), 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(wrapper.NewObjWrapper("w", other)); err == nil {
		t.Error("foreign clock should be rejected")
	}
}

func TestRemoteWrapperThroughMediator(t *testing.T) {
	// A full distributed query: the wrapper runs behind the wire protocol
	// (as cmd/wrapperd would host it) and the mediator registers it via
	// DialRemote, pulling schema, statistics and cost rules across.
	backendClock := netsim.NewClock()
	store := objstore.Open(objstore.DefaultConfig(), backendClock)
	parts, err := store.CreateCollection("Parts", types.NewSchema(
		types.Field{Name: "pid", Collection: "Parts", Type: types.KindInt},
		types.Field{Name: "weight", Collection: "Parts", Type: types.KindInt},
	), 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		parts.Insert(types.Row{types.Int(int64(i)), types.Int(int64(i % 90))})
	}
	if err := parts.CreateIndex("pid", true); err != nil {
		t.Fatal(err)
	}
	backend := wrapper.NewObjWrapper("remoteparts", store)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go wrapper.Serve(ln, backend)

	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wrapper.DialRemote(ln.Addr().String(), m.Clock)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if err := m.Register(rw); err != nil {
		t.Fatal(err)
	}
	// The remote's cost rules were integrated.
	if len(m.Registry.WrapperRules("remoteparts")) == 0 {
		t.Error("remote rules should be integrated at registration")
	}
	res, err := m.Query(`SELECT pid FROM Parts WHERE pid < 25`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.ElapsedMS <= 0 {
		t.Error("remote virtual time should merge into the mediator clock")
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT name, count(*) AS n FROM Employee GROUP BY name ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// 1000 rows over 3 names: 334 (ana), 333, 333 — descending by count.
	if res.Rows[0][1].AsInt() != 334 {
		t.Errorf("first group count = %v", res.Rows[0])
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].AsInt() > res.Rows[i-1][1].AsInt() {
			t.Errorf("not sorted by alias: %v", res.Rows)
		}
	}
}

func TestScalarAggregateNoGroupBy(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	res, err := m.Query(`SELECT count(*) AS n, min(salary) AS lo, max(salary) AS hi FROM Employee`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].AsInt() != 1000 || row[1].AsInt() != 1000 || row[2].AsInt() != 1499 {
		t.Errorf("aggregates = %v", row)
	}
}

func TestAggregateAtIncapableWrapperStaysAtMediator(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	// files cannot aggregate: the plan must hoist the aggregate above the
	// submit.
	p, err := m.Prepare(`SELECT count(*) AS n FROM Notes`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Plan.Kind != algebra.OpAggregate {
		t.Errorf("root should be a mediator aggregate:\n%s", p.Plan)
	}
	if p.Plan.Children[0].Kind != algebra.OpSubmit {
		t.Errorf("aggregate input should be the shipped scan:\n%s", p.Plan)
	}
	res, err := m.ExecutePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 100 {
		t.Errorf("count = %v", res.Rows[0])
	}
}

func TestAggregatePushedIntoCapableWrapper(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	// The object wrapper aggregates locally: the submit ships one row.
	p, err := m.Prepare(`SELECT count(*) AS n FROM Employee`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Plan.Kind != algebra.OpSubmit || p.Plan.Children[0].Kind != algebra.OpAggregate {
		t.Errorf("aggregate should be pushed into the wrapper:\n%s", p.Plan)
	}
}
