package mediator

import (
	"sort"
	"strings"
	"testing"

	"disco/internal/types"
	"disco/internal/wrapper"

	"disco/internal/objstore"
)

// TestPlanChoiceNeverChangesResults is the optimizer's semantic safety
// property: whatever plan the cost model picks, the answer must be the
// same. We run a query workload under three differently-informed cost
// models (generic, blended, blended+history) and require identical result
// multisets.
func TestPlanChoiceNeverChangesResults(t *testing.T) {
	queries := []string{
		`SELECT name, salary FROM Employee WHERE id < 50`,
		`SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1100`,
		`SELECT dept, count(*) AS n FROM Employee GROUP BY dept ORDER BY dept`,
		`SELECT DISTINCT name FROM Employee WHERE salary >= 1400 ORDER BY name`,
		`SELECT name, text FROM Employee, Notes WHERE Employee.id = Notes.emp AND Employee.id < 200`,
		`SELECT name, dname, text FROM Employee, Dept, Notes
		 WHERE dept = dno AND Employee.id = Notes.emp AND salary < 1250`,
	}

	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"generic", func() Config {
			c := DefaultConfig()
			c.UseWrapperRules = false
			c.RecordHistory = false
			return c
		}()},
		{"blended", func() Config {
			c := DefaultConfig()
			c.RecordHistory = false
			return c
		}()},
		{"blended+history", DefaultConfig()},
	}

	results := make(map[string][]string) // query -> canonical multiset per variant order
	for _, v := range variants {
		m := buildMediator(t, v.cfg)
		for _, q := range queries {
			res, err := m.Query(q)
			if err != nil {
				t.Fatalf("%s under %s: %v", q, v.name, err)
			}
			key := canonicalize(res.Rows)
			if prev, seen := results[q]; seen {
				if strings.Join(prev, "\n") != strings.Join(key, "\n") {
					t.Errorf("query %q: results differ between cost models (%s)", q, v.name)
				}
			} else {
				results[q] = key
			}
		}
	}
}

func canonicalize(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

// TestReRegistrationReplacesRulesAndStats is the paper's administrative
// interface: re-registering a wrapper (say after its statistics went
// stale) replaces its catalog entry and its integrated rules.
func TestReRegistrationReplacesRulesAndStats(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	before := m.Registry.RuleCount()

	// Grow the Employee collection and re-register: the catalog must see
	// the new cardinality, and the rule count must not accumulate.
	w, _ := m.Wrapper("obj1")
	ow := w.(*wrapper.ObjWrapper)
	coll, _ := ow.Store().Collection("Employee")
	for i := 1000; i < 3000; i++ {
		coll.Insert(types.Row{types.Int(int64(i)), types.Str("new"),
			types.Int(int64(i % 10)), types.Int(int64(1000 + i%500))})
	}
	if err := m.Register(ow); err != nil {
		t.Fatal(err)
	}
	if got := m.Registry.RuleCount(); got != before {
		t.Errorf("rule count after re-registration = %d, want %d (no duplicates)", got, before)
	}
	ext, ok := m.Catalog.Extent("obj1", "Employee")
	if !ok || ext.CountObject != 3000 {
		t.Errorf("refreshed extent = %+v", ext)
	}
	res, err := m.Query(`SELECT name FROM Employee WHERE id >= 2990`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(res.Rows))
	}
}

// TestSharedBufferAcrossQueries: the object store's buffer pool persists
// across queries within a session, so a repeated query is cheaper — and
// the measured times reflect it.
func TestSharedBufferAcrossQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordHistory = false
	m := buildMediator(t, cfg)
	sql := `SELECT name FROM Employee WHERE salary < 1010`
	w, _ := m.Wrapper("obj1")
	w.(*wrapper.ObjWrapper).Store().ResetBuffer()
	res1, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ElapsedMS >= res1.ElapsedMS {
		t.Errorf("warm run %v should be cheaper than cold run %v", res2.ElapsedMS, res1.ElapsedMS)
	}
	_ = objstore.DefaultConfig() // keep the import for clarity of intent
}
