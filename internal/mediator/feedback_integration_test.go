package mediator

import (
	"os"
	"path/filepath"
	"testing"

	"disco/internal/feedback"
)

// misregisterEmployee inflates the registered Employee extent by 10x,
// simulating a wrapper whose statistics went stale after registration
// (the staleness problem the feedback loop exists to repair).
func misregisterEmployee(t *testing.T, m *Mediator) {
	t.Helper()
	e, ok := m.Catalog.Entry("obj1")
	if !ok {
		t.Fatal("obj1 not registered")
	}
	info := e.Collections["Employee"]
	if info == nil || !info.HasExtent {
		t.Fatal("Employee extent missing")
	}
	perObj := info.Extent.TotalSize / info.Extent.CountObject
	info.Extent.CountObject = 10000
	info.Extent.TotalSize = 10000 * perObj
}

func employeeCount(t *testing.T, m *Mediator) int64 {
	t.Helper()
	ext, ok := m.Catalog.Extent("obj1", "Employee")
	if !ok {
		t.Fatal("Employee extent missing")
	}
	return ext.CountObject
}

// A mis-registered extent is pulled toward the observed cardinality by
// running ordinary queries through the real Query loop. History is off:
// its query-scope rules would repair the estimate for the repeated query
// after one round (masking the catalog-level correction this test is
// about), while the adjuster repairs the catalog for every future query.
func TestFeedbackCorrectsMisregisteredExtent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordHistory = false
	cfg.Feedback = true
	m := buildMediator(t, cfg)
	misregisterEmployee(t, m)
	if got := employeeCount(t, m); got != 10000 {
		t.Fatalf("inflated extent = %d, want 10000", got)
	}

	for i := 0; i < 10; i++ {
		if _, err := m.Query(`SELECT name FROM Employee`); err != nil {
			t.Fatal(err)
		}
	}
	got := employeeCount(t, m)
	if got < 800 || got > 1400 {
		t.Errorf("corrected extent = %d, want near the true 1000", got)
	}
	if m.Feedback == nil || len(m.Feedback.Scopes()) == 0 {
		t.Error("recorder should have accumulated scopes")
	}
	corr := m.Adjuster.Corrections()
	if len(corr) != 1 || corr[0].Wrapper != "obj1" || corr[0].Collection != "Employee" {
		t.Fatalf("corrections = %+v", corr)
	}
	if corr[0].Factor > 0.2 {
		t.Errorf("factor = %v, want close to 0.1", corr[0].Factor)
	}
}

// Learned corrections survive a restart: a second mediator constructed
// over the same snapshot file re-applies them after registration.
func TestFeedbackSnapshotPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	mk := func() *Mediator {
		cfg := DefaultConfig()
		cfg.RecordHistory = false
		cfg.Feedback = true
		cfg.FeedbackStore = feedback.NewFileStore(path)
		return buildMediator(t, cfg)
	}

	m1 := mk()
	misregisterEmployee(t, m1)
	for i := 0; i < 10; i++ {
		if _, err := m1.Query(`SELECT name FROM Employee`); err != nil {
			t.Fatal(err)
		}
	}
	factor := m1.Adjuster.Corrections()[0].Factor
	// Saves are debounced; Close flushes the final snapshot.
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}

	// Restart: the wrapper still claims the stale statistics, so the
	// second instance mis-registers the same way. Reapply installs the
	// learned factor without a single query having run.
	m2 := mk()
	misregisterEmployee(t, m2)
	if n := m2.Adjuster.Reapply(m2.Catalog); n != 1 {
		t.Fatalf("Reapply corrected %d extents, want 1", n)
	}
	got := employeeCount(t, m2)
	want := int64(float64(10000) * factor)
	if got < want-1 || got > want+1 {
		t.Errorf("reapplied extent = %d, want ~%d (factor %v)", got, want, factor)
	}
	if len(m2.Feedback.Scopes()) == 0 {
		t.Error("restored recorder should carry the learned scopes")
	}
}

// With feedback disabled nothing the executor measures leaks back into
// estimation: plans and estimates stay bit-identical no matter how many
// queries run. (History is off here: it is its own, separate feedback
// channel and is exercised elsewhere.)
func TestFeedbackOffLeavesEstimatesUntouched(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordHistory = false
	m := buildMediator(t, cfg)
	misregisterEmployee(t, m)

	sql := `SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`
	before, err := m.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	after, err := m.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("feedback off, but estimates drifted:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
	if got := employeeCount(t, m); got != 10000 {
		t.Errorf("extent changed to %d with feedback off", got)
	}
	if m.Feedback != nil || m.Adjuster != nil {
		t.Error("feedback machinery should be nil when disabled")
	}
}
