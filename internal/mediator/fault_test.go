package mediator

import (
	"net"
	"testing"
	"time"

	"disco/internal/netsim"
	"disco/internal/objstore"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// faultConfig enables the parallel plan search so the fault matrix also
// exercises the optimizer's worker pool under -race.
func faultConfig() Config {
	cfg := DefaultConfig()
	cfg.OptimizerOptions.Workers = 4
	return cfg
}

// testRetryPolicy keeps wall-clock waits tiny: backoff is virtual anyway,
// and the injected faults are deterministic, so short I/O deadlines only
// matter for genuinely stuck connections.
func testRetryPolicy() wrapper.RetryPolicy {
	return wrapper.RetryPolicy{MaxAttempts: 6, BackoffMS: 10, BackoffMult: 2, MaxBackoffMS: 100, IOTimeout: 2 * time.Second}
}

// startFaultyDeployment runs an object-store wrapper named "remoteparts"
// behind ServeFaulty with the given plan and registers it (plus the local
// three-source fixture) into a fresh mediator. The returned injector
// observes every request the server decided on.
func startFaultyDeployment(t *testing.T, plan netsim.FaultPlan) (*Mediator, *wrapper.RemoteWrapper, *netsim.Injector) {
	t.Helper()
	m := buildMediator(t, faultConfig())

	backendClock := netsim.NewClock()
	store := objstore.Open(objstore.DefaultConfig(), backendClock)
	parts, err := store.CreateCollection("Parts", types.NewSchema(
		types.Field{Name: "pid", Collection: "Parts", Type: types.KindInt},
		types.Field{Name: "owner", Collection: "Parts", Type: types.KindInt},
	), 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		parts.Insert(types.Row{types.Int(int64(i)), types.Int(int64(i % 1000))})
	}
	if err := parts.CreateIndex("pid", true); err != nil {
		t.Fatal(err)
	}
	backend := wrapper.NewObjWrapper("remoteparts", store)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	inj := netsim.NewInjector(plan)
	go wrapper.ServeFaulty(ln, backend, inj)

	rw, err := wrapper.DialRemotePolicy(ln.Addr().String(), m.Clock, testRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rw.Close() })
	if err := m.Register(rw); err != nil {
		t.Fatal(err)
	}
	return m, rw, inj
}

// queryParts runs one indexed query against the remote wrapper and
// asserts the full answer arrived.
func queryParts(t *testing.T, m *Mediator, lim int) {
	t.Helper()
	res, err := m.Query(`SELECT pid FROM Parts WHERE pid < ` + types.Int(int64(lim)).String())
	if err != nil {
		t.Fatalf("query pid < %d: %v", lim, err)
	}
	if len(res.Rows) != lim {
		t.Fatalf("query pid < %d: rows = %d", lim, len(res.Rows))
	}
	if res.Partial || len(res.Excluded) != 0 {
		t.Fatalf("query pid < %d: unexpectedly partial (excluded %v)", lim, res.Excluded)
	}
}

// TestFaultMatrix drives every injected failure mode through the full
// mediator pipeline: the system must recover (drops, transient errors,
// delays) or degrade to a partial answer (permanent unavailability) —
// never hang, panic, or wedge the session.
func TestFaultMatrix(t *testing.T) {
	t.Run("drop/recovers", func(t *testing.T) {
		m, rw, _ := startFaultyDeployment(t, netsim.FaultPlan{DropProb: 0.35, Seed: 7})
		for i := 1; i <= 8; i++ {
			queryParts(t, m, i*3)
		}
		st := rw.Stats()
		if st.Redials == 0 {
			t.Errorf("dropped connections should force redials, stats = %+v", st)
		}
	})

	t.Run("error/recovers", func(t *testing.T) {
		m, rw, _ := startFaultyDeployment(t, netsim.FaultPlan{ErrorProb: 0.4, Seed: 3})
		before := m.Clock.Now()
		for i := 1; i <= 8; i++ {
			queryParts(t, m, i*3)
		}
		st := rw.Stats()
		if st.Retries == 0 {
			t.Errorf("transient errors should force retries, stats = %+v", st)
		}
		if st.Redials != 0 {
			t.Errorf("error responses keep the connection; stats = %+v", st)
		}
		if m.Clock.Now() <= before {
			t.Error("retry backoff should bill virtual time")
		}
	})

	t.Run("delay/billed", func(t *testing.T) {
		m, _, _ := startFaultyDeployment(t, netsim.FaultPlan{DelayMS: 200, JitterMS: 5, Seed: 1})
		res, err := m.Query(`SELECT pid FROM Parts WHERE pid < 10`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 10 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
		if res.ElapsedMS < 200 {
			t.Errorf("injected delay must appear in measured time, elapsed = %v", res.ElapsedMS)
		}
	})

	t.Run("unavailable/partial", func(t *testing.T) {
		// Request 1 is the registration meta fetch, request 2 the first
		// execute; the wrapper dies permanently on request 3.
		m, _, inj := startFaultyDeployment(t, netsim.FaultPlan{UnavailableAfter: 2})
		queryParts(t, m, 10)

		res, err := m.Query(`SELECT pid FROM Parts WHERE pid < 10`)
		if err != nil {
			t.Fatalf("query against a dead source must degrade, not fail: %v", err)
		}
		if !res.Partial || len(res.Rows) != 0 {
			t.Fatalf("dead source should yield an empty partial answer, got %d rows partial=%v", len(res.Rows), res.Partial)
		}
		if len(res.Excluded) != 1 || res.Excluded[0] != "remoteparts" {
			t.Fatalf("Excluded = %v", res.Excluded)
		}
		if m.Available("remoteparts") {
			t.Error("wrapper should be marked unavailable")
		}
		if rules := m.Registry.WrapperRules("remoteparts"); len(rules) != 0 {
			t.Errorf("cost rules of a dead wrapper must be dropped, still have %d", len(rules))
		}

		// Later queries short-circuit at the engine: the dead source is
		// excluded without touching the transport again.
		reqs := inj.Requests()
		res2, err := m.Query(`SELECT pid FROM Parts WHERE pid < 5`)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Partial {
			t.Error("later queries stay partial")
		}
		if got := inj.Requests(); got != reqs {
			t.Errorf("known-dead wrapper re-contacted: requests %d -> %d", reqs, got)
		}

		// A join over the missing subtree degrades to an empty partial
		// answer; local-only queries are untouched.
		jr, err := m.Query(`SELECT name FROM Employee, Parts WHERE Employee.id = Parts.owner AND pid < 50`)
		if err != nil {
			t.Fatal(err)
		}
		if !jr.Partial || len(jr.Rows) != 0 {
			t.Errorf("join over dead source: rows = %d partial = %v", len(jr.Rows), jr.Partial)
		}
		lr, err := m.Query(`SELECT dname FROM Dept`)
		if err != nil {
			t.Fatal(err)
		}
		if lr.Partial || len(lr.Rows) != 10 {
			t.Errorf("local query after remote death: rows = %d partial = %v", len(lr.Rows), lr.Partial)
		}
	})

	t.Run("mixed/chaos", func(t *testing.T) {
		// Everything at once (drops, errors, delay, jitter): the answer
		// must stay exact on every query.
		m, rw, _ := startFaultyDeployment(t, netsim.FaultPlan{
			DropProb: 0.2, ErrorProb: 0.2, DelayMS: 10, JitterMS: 5, Seed: 42,
		})
		for i := 1; i <= 10; i++ {
			queryParts(t, m, i*2)
		}
		st := rw.Stats()
		if st.Retries == 0 {
			t.Errorf("chaos plan should have forced interventions, stats = %+v", st)
		}
	})
}

// TestFaultsDisabledIdentical pins the no-fault guarantee: serving through
// a zero-plan injector must be indistinguishable from serving with no
// injector at all — same rows, same virtual time, no transport
// interventions — so enabling the fault machinery cannot perturb
// baseline experiments.
func TestFaultsDisabledIdentical(t *testing.T) {
	type outcome struct {
		rows    int
		elapsed float64
		stats   wrapper.RemoteStats
	}
	run := func(plan netsim.FaultPlan) outcome {
		m, rw, _ := startFaultyDeployment(t, plan)
		res, err := m.Query(`SELECT pid FROM Parts WHERE pid < 40`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Fatal("fault-free query must not be partial")
		}
		return outcome{rows: len(res.Rows), elapsed: res.ElapsedMS, stats: rw.Stats()}
	}
	zero := run(netsim.FaultPlan{})
	seeded := run(netsim.FaultPlan{Seed: 99}) // seed alone injects nothing
	if zero != seeded {
		t.Errorf("zero plan %+v != seeded-but-empty plan %+v", zero, seeded)
	}
	if zero.rows != 40 {
		t.Errorf("rows = %d", zero.rows)
	}
	if zero.stats != (wrapper.RemoteStats{}) {
		t.Errorf("no-fault run should need no healing, stats = %+v", zero.stats)
	}
}
