package mediator

import (
	"fmt"
	"strings"
	"testing"
)

// adaptiveOffWorkload is a representative statement mix: point lookup,
// two-way join, three-way join across all three source kinds, and an
// aggregate — every execution shape the adaptive executor stages.
var adaptiveOffWorkload = []string{
	`SELECT name FROM Employee WHERE id = 5`,
	`SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`,
	`SELECT name, dname, text FROM Employee, Dept, Notes WHERE dept = dno AND Employee.id = Notes.emp AND Employee.id < 100`,
	`SELECT dept, count(*) AS n FROM Employee GROUP BY dept ORDER BY dept`,
}

// adaptiveOffTrace is everything one run of the workload observably
// produces: per-statement plan text, result rows, virtual elapsed time,
// EXPLAIN ANALYZE rendering, and the final feedback snapshot.
type adaptiveOffTrace struct {
	plans    []string
	rows     []string
	elapsed  []float64
	analyze  []string
	feedback string
	stats    Stats
}

func runAdaptiveOffWorkload(t *testing.T, workers int) adaptiveOffTrace {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ExecWorkers = workers
	cfg.Feedback = true
	cfg.Adaptive = false // the regression under test: off must mean off
	m := buildMediator(t, cfg)

	var tr adaptiveOffTrace
	for _, sql := range adaptiveOffWorkload {
		plan, err := m.Explain(sql)
		if err != nil {
			t.Fatalf("explain %q: %v", sql, err)
		}
		tr.plans = append(tr.plans, plan)
		res, err := m.Query(sql)
		if err != nil {
			t.Fatalf("query %q: %v", sql, err)
		}
		var rows strings.Builder
		for _, row := range res.Rows {
			fmt.Fprintln(&rows, row)
		}
		tr.rows = append(tr.rows, rows.String())
		tr.elapsed = append(tr.elapsed, res.ElapsedMS)
		an, err := m.ExplainAnalyze(sql)
		if err != nil {
			t.Fatalf("explain analyze %q: %v", sql, err)
		}
		tr.analyze = append(tr.analyze, an)
	}
	fb, err := m.FeedbackSummary()
	if err != nil {
		t.Fatalf("feedback summary: %v", err)
	}
	tr.feedback = fb
	tr.stats = m.Stats()
	return tr
}

// TestAdaptiveOffBitIdentical is the Adaptive=false regression gate: a
// mediator with the adaptive executor disabled must behave exactly like
// a build without the subsystem. Two independent runs of the same
// workload — at serial and at morsel-parallel execution — must agree
// bit-for-bit on plans, result rows, virtual elapsed times, EXPLAIN
// ANALYZE renderings, and feedback snapshots, with the adaptive counters
// pinned at zero. (The golden files of golden_test.go, which predate the
// adaptive subsystem and are unchanged, pin the same contract against
// the pre-adaptive rendering.) Run under -race, this also shakes out any
// shared state the adaptive path might leak into the off path.
func TestAdaptiveOffBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			a := runAdaptiveOffWorkload(t, workers)
			b := runAdaptiveOffWorkload(t, workers)
			for i, sql := range adaptiveOffWorkload {
				if a.plans[i] != b.plans[i] {
					t.Errorf("%q: plan drifted between identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", sql, a.plans[i], b.plans[i])
				}
				if a.rows[i] != b.rows[i] {
					t.Errorf("%q: result rows drifted between identical runs", sql)
				}
				if a.elapsed[i] != b.elapsed[i] {
					t.Errorf("%q: virtual elapsed drifted: %.6f vs %.6f ms", sql, a.elapsed[i], b.elapsed[i])
				}
				if a.analyze[i] != b.analyze[i] {
					t.Errorf("%q: EXPLAIN ANALYZE drifted between identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", sql, a.analyze[i], b.analyze[i])
				}
			}
			if a.feedback != b.feedback {
				t.Errorf("feedback snapshot drifted between identical runs:\n--- run A ---\n%s\n--- run B ---\n%s", a.feedback, b.feedback)
			}
			for _, tr := range []adaptiveOffTrace{a, b} {
				if tr.stats.AdaptiveReplans != 0 || tr.stats.AdaptiveSwitches != 0 {
					t.Errorf("adaptive counters moved with Adaptive=false: replans=%d switches=%d",
						tr.stats.AdaptiveReplans, tr.stats.AdaptiveSwitches)
				}
			}
		})
	}

	// Result rows are also invariant across the worker counts — morsel
	// parallelism changes timing, never answers.
	serial := runAdaptiveOffWorkload(t, 1)
	parallel := runAdaptiveOffWorkload(t, 4)
	for i, sql := range adaptiveOffWorkload {
		if serial.rows[i] != parallel.rows[i] {
			t.Errorf("%q: result rows differ between workers=1 and workers=4", sql)
		}
	}
}
