package mediator

import (
	"container/list"
	"strings"
	"sync"
	"unicode"
)

// DefaultPlanCacheSize bounds the prepared-plan cache when
// Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 256

// planCache is a bounded LRU of prepared plans keyed by normalized SQL.
// Every entry remembers the catalog epoch it was planned under; a lookup
// against a newer epoch evicts the entry instead of returning it, so a
// re-registration (new statistics, new cost rules, revived wrapper)
// implicitly invalidates every plan built on the old federation. The
// cache has its own mutex — it is touched from the read-locked query
// path, where the mediator's big lock admits many goroutines at once.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *planEntry, front = most recent
	byKey map[string]*list.Element

	hits   int64
	misses int64
	stale  int64 // misses caused by an epoch bump
}

type planEntry struct {
	key string
	p   *Prepared
}

// newPlanCache returns a cache bounded to capacity entries, or nil when
// capacity is negative (caching disabled).
func newPlanCache(capacity int) *planCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached plan for key if it was prepared under the given
// catalog epoch. Epoch-stale entries are evicted on sight.
func (c *planCache) get(key string, epoch uint64) (*Prepared, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.p.Epoch != epoch {
		c.lru.Remove(el)
		delete(c.byKey, key)
		c.stale++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.p, true
}

// put stores a prepared plan, evicting the least recently used entry at
// capacity. Cached Prepared values are shared across goroutines and must
// never be mutated after insertion.
func (c *planCache) put(key string, p *Prepared) {
	if c == nil || key == "" || p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		if oldest != nil {
			delete(c.byKey, oldest.Value.(*planEntry).key)
			c.lru.Remove(oldest)
		}
	}
	c.byKey[key] = c.lru.PushFront(&planEntry{key: key, p: p})
}

// clear drops every entry (federation change, model correction).
func (c *planCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.byKey = make(map[string]*list.Element, c.cap)
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// counters snapshots the hit/miss/stale counters.
func (c *planCache) counters() (hits, misses, stale int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.stale
}

// NormalizeSQL collapses whitespace runs to single spaces and trims the
// statement, so formatting variants of one query share a cache entry.
// Case is preserved: keywords are case-insensitive but string constants
// are not, and a cosmetic miss is cheaper than a wrong hit.
//
// Quoted string literals pass through verbatim: collapsing whitespace
// inside them would key `WHERE name = 'a  b'` and `WHERE name = 'a b'`
// to the same cache entry and serve one query's plan — with the wrong
// constant baked in — for the other. The literal rules mirror the
// lexer's (internal/sqlparser): ' or " opens a literal, the matching
// quote closes it, and there is no escape mechanism (the other quote
// character is ordinary content). An unterminated literal runs to the
// end of the statement, exactly as the lexer consumes it, so the
// trailing trim is skipped rather than amputating literal content.
//
// Exported because the federation router keys its consistent-hash ring
// on the same plan identity the replica caches use: routing a statement
// by NormalizeSQL pins each prepared plan (and its cached result) to one
// replica's caches.
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	space := false
	var quote rune // 0 = outside any literal
	for _, r := range sql {
		if quote != 0 {
			b.WriteRune(r)
			if r == quote {
				quote = 0
			}
			continue
		}
		if unicode.IsSpace(r) {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		if r == '\'' || r == '"' {
			quote = r
		}
		b.WriteRune(r)
	}
	if quote != 0 {
		return b.String()
	}
	return strings.TrimRight(b.String(), " ;")
}
