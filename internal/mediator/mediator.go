// Package mediator assembles the full DISCO system of the paper: the
// registration phase (Figure 1 — wrappers upload schema, capabilities,
// statistics and cost rules into the catalog and the cost-model registry)
// and the query phase (Figure 2 — parse the declarative query, bind it
// against the catalog, optimize it with the blending cost model, execute
// it across the wrappers, and compose the answer).
package mediator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/costlang"
	"disco/internal/engine"
	"disco/internal/feedback"
	"disco/internal/history"
	"disco/internal/netsim"
	"disco/internal/optimizer"
	"disco/internal/resultcache"
	"disco/internal/sqlparser"
	"disco/internal/types"
	"disco/internal/vexec"
	"disco/internal/wrapper"
)

// ErrStalePlan is returned by ExecutePlan when a prepared plan's catalog
// epoch no longer matches the federation and the plan carries no SQL
// text to re-prepare from.
var ErrStalePlan = errors.New("mediator: prepared plan is stale (federation changed since Prepare) and carries no SQL to re-prepare")

// Config sets up a mediator deployment.
type Config struct {
	// Clock is the shared virtual clock; nil allocates one. Every
	// registered wrapper must run on this clock.
	Clock *netsim.Clock
	// Net is the communication model; nil installs a default uniform
	// link (10 ms latency, 2 MB/s).
	Net *netsim.Network
	// EngineCosts are the mediator-side per-row costs; zero value uses
	// engine.DefaultCosts.
	EngineCosts engine.Costs
	// RecordHistory enables the §4.3.1 query-scope recorder.
	RecordHistory bool
	// UseWrapperRules controls whether registration integrates exported
	// cost rules (disabling it yields the generic-model-only baseline of
	// experiment E3).
	UseWrapperRules bool
	// Feedback enables the execution-feedback loop (DESIGN.md §8): every
	// executed query's per-operator actuals are joined against the
	// optimizer's predictions, per-scope q-error accumulators update, and
	// the adjuster refines catalog statistics and calibrated coefficients
	// toward the observations. Off by default: with feedback disabled the
	// mediator's plans and estimates are bit-identical to a build without
	// the subsystem.
	Feedback bool
	// FeedbackStore, when set with Feedback, persists learned corrections
	// across restarts (the snapshot loads at construction; saves are
	// debounced — see FeedbackSaveInterval — and flushed by Close).
	FeedbackStore feedback.Store
	// FeedbackWindow sizes the q-error accumulators' ring buffers
	// (<= 0 uses the package default).
	FeedbackWindow int
	// FeedbackSaveInterval debounces snapshot persistence: absorbed
	// executions inside the window coalesce into one deferred save,
	// written by the first absorption past the window or by Close. Zero
	// uses feedback.DefaultSaveInterval; negative saves after every
	// execution (the pre-debounce behaviour).
	FeedbackSaveInterval time.Duration
	// PlanCacheSize bounds the prepared-plan cache in entries. Zero uses
	// DefaultPlanCacheSize; negative disables caching. Cached plans are
	// invalidated by catalog epoch (any re-registration), by wrapper
	// outages, and by feedback corrections.
	PlanCacheSize int
	// ResultCache configures the semantic result cache
	// (internal/resultcache): materialized row sets keyed by the 128-bit
	// structural plan hash, served for whole plans and at submit
	// boundaries, and priced by the optimizer as a ScopeCache access
	// path. Off by default (the zero value); a disabled cache leaves
	// chosen plans and results bit-identical to a build without the
	// subsystem. Entries are invalidated by catalog epoch bumps, wrapper
	// outage marks and feedback adjustments — the same hooks that clear
	// the plan cache — and Result.Partial answers are never admitted.
	ResultCache resultcache.Config
	// MaxInFlight caps concurrently admitted queries (Query, ExecutePlan,
	// Explain, ExplainAnalyze). Zero means unlimited. Excess callers
	// queue for AdmissionTimeout and are then shed with ErrOverloaded.
	MaxInFlight int
	// AdmissionTimeout bounds the admission queue wait. Zero waits
	// indefinitely (no shedding); negative sheds immediately when
	// MaxInFlight queries are in flight.
	AdmissionTimeout time.Duration
	// OptimizerOptions tune the plan search.
	OptimizerOptions optimizer.Options
	// ExecWorkers is the morsel-driven parallelism inside the engine's
	// pipeline breakers (sort, hash join, aggregation, dup-elim). Values
	// below 2 run sequentially — the mode whose results and simulated
	// times are bit-identical to the pre-vectorization engine. With
	// workers, the Med* cost-model coefficients are divided by
	// engine.MorselSpeedup(ExecWorkers) so estimates track the faster
	// simulated breaker execution.
	ExecWorkers int
	// ExecMemBytes bounds the memory a mediator-side hash join build or
	// aggregation input may hold before Grace-spilling to disk. Zero
	// disables spilling.
	ExecMemBytes int64
	// ExecSpillDir is where spill partitions are written ("" uses the
	// OS temp dir).
	ExecSpillDir string
	// Adaptive enables mid-flight adaptive re-optimization (DESIGN.md
	// §14): execution pauses at materialization boundaries — submit
	// leaves and pipeline breakers — compares observed cardinalities
	// against the optimizer's predictions, and past the q-error
	// threshold re-costs the remaining plan with the materialized
	// subtrees pinned as exact zero-cost leaves, switching when the
	// candidate wins by the hysteresis margin. Off by default: with the
	// zero value the mediator's plans, results and timings are
	// bit-identical to a build without the subsystem.
	Adaptive bool
	// AdaptiveThreshold is the cardinality q-error that triggers a
	// re-cost (0 uses engine.DefaultAdaptiveThreshold).
	AdaptiveThreshold float64
	// AdaptiveMargin is the fraction a re-costed plan must win by before
	// the engine switches (0 uses engine.DefaultAdaptiveMargin).
	AdaptiveMargin float64
	// AdaptiveMaxSwitches bounds plan switches per query (0 uses
	// engine.DefaultAdaptiveMaxSwitches).
	AdaptiveMaxSwitches int
}

// DefaultConfig enables wrapper rules and history with default search
// options.
func DefaultConfig() Config {
	return Config{
		RecordHistory:    true,
		UseWrapperRules:  true,
		OptimizerOptions: optimizer.DefaultOptions(),
	}
}

// Mediator is one running mediator instance. It is safe for concurrent
// use: queries, explains and plan executions run in parallel under a
// read lock, while (re-)registration and feedback absorption take the
// write lock and drain in-flight queries first.
//
// Lock order (outermost first): mu → downMu → inner package locks
// (registry, recorder, adjuster, cache, buffer pools). The down-marks
// live under their own mutex because sources fail DURING read-locked
// execution — the engine's outage callback cannot upgrade to the write
// lock without deadlocking behind its own read hold.
type Mediator struct {
	cfg Config

	// mu is the serving lock. Read side: Prepare, Query, ExecutePlan,
	// Explain, ExplainAnalyze, accessors. Write side: Register, feedback
	// absorption, Close.
	mu sync.RWMutex
	// downMu guards unavailable; see the lock-order note above.
	downMu sync.Mutex

	Clock    *netsim.Clock
	Net      *netsim.Network
	Catalog  *catalog.Catalog
	Registry *core.Registry
	// Estimator is the template estimator holding the calibrated globals
	// and default options; every prepare clones it, so concurrent
	// searches never share scratch state. Mutate it only while no
	// queries are in flight (calibration, setup).
	Estimator *core.Estimator
	// Optimizer is a convenience instance over the template estimator
	// for tools and tests; the serving path builds a per-call optimizer
	// from a clone instead.
	Optimizer *optimizer.Optimizer
	Engine    *engine.Engine
	History   *history.Recorder
	// Feedback and Adjuster are the execution-feedback loop (nil unless
	// Config.Feedback).
	Feedback *feedback.Recorder
	Adjuster *feedback.Adjuster
	// LastReport is the feedback report of the most recently executed
	// query (nil until one runs, or when feedback is off). Guarded by mu.
	LastReport *feedback.Report

	wrappers map[string]wrapper.Wrapper
	// unavailable records wrappers that exhausted the transport's
	// self-healing (engine submits failed with wrapper.ErrUnavailable).
	// Their collections are excluded from answers (partial results),
	// binding prefers surviving owners, and their cost rules are dropped
	// so estimation falls back to the generic calibrated model — the
	// paper's behaviour for sources that are only partially registered.
	unavailable map[string]bool

	cache *planCache
	// rcache is the semantic result cache (nil unless
	// Config.ResultCache.Enabled). Internally synchronized like the plan
	// cache: it is read and written from the read-locked query path.
	rcache     *resultcache.Cache
	adm        *admission
	deb        *feedback.Debouncer
	reprepares atomic.Int64
	// Serving outcome counters (see Stats).
	served   atomic.Int64
	qerrors  atomic.Int64
	partials atomic.Int64
	// Adaptive re-optimization counters: re-cost attempts and the subset
	// that switched the running plan (always zero unless Config.Adaptive).
	replans      atomic.Int64
	planSwitches atomic.Int64
}

// New builds an empty mediator.
func New(cfg Config) (*Mediator, error) {
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewClock()
	}
	if cfg.Net == nil {
		cfg.Net = netsim.NewNetwork(netsim.Link{LatencyMS: 10, PerByteMS: 0.0005}, cfg.Clock)
	}
	if cfg.EngineCosts == (engine.Costs{}) {
		cfg.EngineCosts = engine.DefaultCosts()
	}
	reg, err := core.NewDefaultRegistry()
	if err != nil {
		return nil, err
	}
	if cfg.Feedback {
		// The recorder joins per-node predictions against actuals, so the
		// final costing of every chosen plan must capture all variables.
		cfg.OptimizerOptions.CapturePlanCosts = true
	}
	if cfg.Adaptive {
		// The adaptive executor checks divergence against per-node
		// predicted cardinalities, so it needs the same full capture.
		cfg.OptimizerOptions.CapturePlanCosts = true
	}
	m := &Mediator{
		cfg:         cfg,
		Clock:       cfg.Clock,
		Net:         cfg.Net,
		Catalog:     catalog.New(),
		Registry:    reg,
		wrappers:    make(map[string]wrapper.Wrapper),
		unavailable: make(map[string]bool),
		cache:       newPlanCache(cfg.PlanCacheSize),
		rcache:      resultcache.New(cfg.ResultCache, cfg.Clock.Now),
		adm:         newAdmission(cfg.MaxInFlight, cfg.AdmissionTimeout),
	}
	m.Estimator = core.NewEstimator(reg, m.Catalog, cfg.Net)
	if speed := engine.MorselSpeedup(cfg.ExecWorkers); speed != 1 {
		// The engine divides its breaker charges by the morsel speedup;
		// divide the matching estimator coefficients so predicted and
		// measured mediator times stay aligned. Factor 1 (the default)
		// leaves the globals untouched — bit-identical estimates.
		for _, g := range []string{"MedSortPerObj", "MedHashPerObj", "MedJoinPerPair"} {
			if v, ok := m.Estimator.Globals[g]; ok {
				m.Estimator.Globals[g] = types.Float(v.AsFloat() / speed)
			}
		}
	}
	m.Optimizer = optimizer.New(m.Catalog, m.Estimator, cfg.OptimizerOptions)
	if cfg.RecordHistory {
		m.History = history.NewRecorder(reg)
	}
	if cfg.Feedback {
		m.Feedback = feedback.NewRecorder(cfg.FeedbackWindow)
		m.Adjuster = feedback.NewAdjuster()
		if cfg.FeedbackStore != nil {
			// A missing or corrupt snapshot loads as empty; persisted
			// corrections are an optimization, never a startup gate.
			snap, err := cfg.FeedbackStore.Load()
			if err != nil {
				return nil, err
			}
			feedback.Restore(snap, m.Feedback, m.Adjuster)
			for name, v := range snap.Coeffs {
				if _, ok := m.Estimator.Globals[name]; ok && v > 0 {
					m.Estimator.Globals[name] = types.Float(v)
				}
			}
			m.deb = feedback.NewDebouncer(cfg.FeedbackStore, cfg.FeedbackSaveInterval)
		}
	}
	if err := m.rebuildEngine(); err != nil {
		return nil, err
	}
	return m, nil
}

// rebuildEngine publishes a fresh engine over the current wrapper set;
// the caller holds the write lock (or is still constructing). Superseded
// engines keep serving in-flight executions safely: engine.New snapshots
// the wrapper map.
func (m *Mediator) rebuildEngine() error {
	eng, err := engine.New(m.Clock, m.Net, m.wrappers, m.cfg.EngineCosts)
	if err != nil {
		return err
	}
	eng.Exec = vexec.Options{
		Workers:  m.cfg.ExecWorkers,
		MemBytes: m.cfg.ExecMemBytes,
		SpillDir: m.cfg.ExecSpillDir,
	}
	if m.History != nil {
		rec := m.History
		eng.SubmitHook = func(w string, subplan *algebra.Node, elapsed float64, rows int, bytes int64) {
			// Recording failures must not fail queries.
			_ = rec.Record(w, subplan, elapsed, int64(rows), bytes)
		}
	}
	eng.OnUnavailable = m.markUnavailable
	if m.rcache != nil {
		eng.Results = submitCacheAdapter{m}
	}
	if m.cfg.Adaptive {
		eng.Adaptive = engine.AdaptiveOptions{
			Enabled:     true,
			Threshold:   m.cfg.AdaptiveThreshold,
			Margin:      m.cfg.AdaptiveMargin,
			MaxSwitches: m.cfg.AdaptiveMaxSwitches,
		}
		eng.Replan = m.replan
	}
	m.Engine = eng
	return nil
}

// replan is the engine's mid-flight re-optimization callback: it re-costs
// the remaining plan of a paused query with the already-materialized
// subtrees pinned to their observed actuals. It runs during read-locked
// execution and must not touch mu (like markUnavailable); it clones the
// template estimator exactly as a concurrent prepare would, so the
// running search shares no scratch state with anything else.
func (m *Mediator) replan(req *engine.ReplanRequest) (*engine.ReplanResult, error) {
	est := m.Estimator.Clone()
	est.Reset()
	pins := make(map[*algebra.Node]core.PinnedVars, len(req.Pinned))
	for n, pa := range req.Pinned {
		pins[n] = core.PinnedVars{Rows: float64(pa.Rows), Bytes: float64(pa.Bytes)}
	}
	sr, err := optimizer.New(m.Catalog, est, m.cfg.OptimizerOptions).
		ReoptimizeSuffix(req.Remaining, pins)
	if err != nil {
		return nil, err
	}
	rr := &engine.ReplanResult{Plan: sr.Plan, NewCost: sr.NewCost, OldCost: sr.OldCost}
	if sr.Cost != nil {
		rr.Predicted = predictedRows(sr.Cost)
	}
	return rr, nil
}

// execute runs a prepared plan on the engine — adaptively when enabled,
// through the unmodified one-shot path otherwise — and rolls the
// adaptive counters. Callers hold the read lock.
func (m *Mediator) execute(eng *engine.Engine, p *Prepared) (*engine.Result, error) {
	if !m.cfg.Adaptive {
		return eng.Execute(p.Plan)
	}
	res, err := eng.ExecuteAdaptive(p.Plan, predictedRows(p.Cost))
	if res != nil {
		if res.Replans > 0 {
			m.replans.Add(int64(res.Replans))
		}
		if res.PlanSwitches > 0 {
			m.planSwitches.Add(int64(res.PlanSwitches))
		}
	}
	return res, err
}

// predictedRows extracts the optimizer's per-node cardinality
// predictions from a full-variable plan cost capture.
func predictedRows(pc *core.PlanCost) map[*algebra.Node]float64 {
	if pc == nil {
		return nil
	}
	out := make(map[*algebra.Node]float64, len(pc.ByNode))
	for n, nc := range pc.ByNode {
		out[n] = nc.Var("CountObject", 0)
	}
	return out
}

// submitCacheAdapter exposes the mediator's semantic result cache to the
// engine's submit boundaries. Lookups validate against the live catalog
// epoch; inserts stamp it. Engine executions run under the mediator's
// read lock, so the epoch reads here are properly synchronized against
// registrations.
type submitCacheAdapter struct{ m *Mediator }

func (a submitCacheAdapter) Begin() uint64 { return a.m.rcache.Gen() }

func (a submitCacheAdapter) Get(h algebra.Hash128) ([]types.Row, bool) {
	e, ok := a.m.rcache.Get(h, a.m.Catalog.Epoch())
	if !ok {
		return nil, false
	}
	return e.Rows, true
}

func (a submitCacheAdapter) Put(h algebra.Hash128, rows []types.Row, schema *types.Schema, bytes int64, gen uint64) {
	a.m.rcache.Put(h, rows, schema, a.m.Catalog.Epoch(), bytes, gen)
}

// markUnavailable degrades the mediator after a source outage: the
// wrapper's collections stop being preferred at bind time, its
// wrapper-specific cost rules are dropped so estimation over surviving
// copies falls back to the generic calibrated model, and cached plans —
// which may still route subqueries to the dead source — are invalidated.
// Called from engine callbacks while the read lock is held; it must not
// touch mu.
func (m *Mediator) markUnavailable(name string) {
	m.downMu.Lock()
	if m.unavailable[name] {
		m.downMu.Unlock()
		return
	}
	m.unavailable[name] = true
	m.downMu.Unlock()
	m.Registry.DropWrapper(name)
	m.cache.clear()
	// Results computed against the now-dead source are suspect, and the
	// generation bump refuses inserts from executions that raced this
	// outage — a Partial answer in flight can never seed the cache.
	m.rcache.Invalidate()
}

// Available reports whether a registered wrapper is currently usable.
func (m *Mediator) Available(name string) bool {
	m.mu.RLock()
	_, registered := m.wrappers[name]
	m.mu.RUnlock()
	m.downMu.Lock()
	down := m.unavailable[name]
	m.downMu.Unlock()
	return registered && !down
}

// Unavailable lists the wrappers marked down, sorted.
func (m *Mediator) Unavailable() []string {
	m.downMu.Lock()
	defer m.downMu.Unlock()
	out := make([]string, 0, len(m.unavailable))
	for n := range m.unavailable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// downedSnapshot copies the down-mark set for one bind pass.
func (m *Mediator) downedSnapshot() map[string]bool {
	m.downMu.Lock()
	defer m.downMu.Unlock()
	if len(m.unavailable) == 0 {
		return nil
	}
	out := make(map[string]bool, len(m.unavailable))
	for n, v := range m.unavailable {
		out[n] = v
	}
	return out
}

// Register runs the registration phase for one wrapper: catalog upload
// plus cost-rule integration (paper Figure 1). Re-registering a name
// replaces its catalog entry and rules (the paper's administrative
// re-registration interface). Registration takes the write lock — it
// drains in-flight queries, bumps the catalog epoch (invalidating every
// cached plan), and publishes a fresh engine.
func (m *Mediator) Register(w wrapper.Wrapper) error {
	if w.Clock() != m.Clock {
		return fmt.Errorf("mediator: wrapper %s does not share the mediator clock", w.Name())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.Catalog.Register(w); err != nil {
		return err
	}
	m.Registry.DropWrapper(w.Name())
	if m.cfg.UseWrapperRules {
		if src := w.CostRules(); src != "" {
			file, err := costlang.Parse(src)
			if err != nil {
				return fmt.Errorf("mediator: parsing %s cost rules: %w", w.Name(), err)
			}
			if err := m.Registry.IntegrateWrapper(w.Name(), file, m.Catalog); err != nil {
				return fmt.Errorf("mediator: integrating %s cost rules: %w", w.Name(), err)
			}
		}
	}
	m.wrappers[w.Name()] = w
	// (Re-)registration revives a wrapper previously marked unavailable:
	// the rebuilt engine starts with clean down-marks and the rules just
	// integrated above are live again.
	m.downMu.Lock()
	delete(m.unavailable, w.Name())
	m.downMu.Unlock()
	if m.Adjuster != nil {
		// Learned cardinality corrections outlive registrations: the fresh
		// entry becomes the new correction base and the factor re-applies.
		m.Adjuster.Reapply(m.Catalog)
	}
	m.cache.clear()
	// The epoch bump already invalidates lookups; an explicit clear
	// releases the memory eagerly and voids raced inserts too.
	m.rcache.Invalidate()
	return m.rebuildEngine()
}

// Wrapper returns a registered wrapper.
func (m *Mediator) Wrapper(name string) (wrapper.Wrapper, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	w, ok := m.wrappers[name]
	return w, ok
}

// Prepared is a bound and optimized query ready for execution. Prepared
// values may be shared by concurrent executions (the plan cache hands
// the same instance to every hit) and must not be mutated.
type Prepared struct {
	SQL   string
	Query *sqlparser.Query
	Block *optimizer.QueryBlock
	Plan  *algebra.Node
	Cost  *core.PlanCost
	// PlansCosted reports the optimizer's search effort.
	PlansCosted int
	// Epoch is the catalog epoch the plan was built under; ExecutePlan
	// re-prepares (or rejects) plans whose epoch no longer matches.
	Epoch uint64
	// Hash is the 128-bit structural hash of the chosen plan.
	Hash algebra.Hash128
}

// Prepare parses, binds and optimizes a query, serving repeated
// statements from the bounded plan cache.
func (m *Mediator) Prepare(sql string) (*Prepared, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.prepareCached(sql)
}

// prepareCached serves sql from the plan cache or plans it fresh and
// caches the result. Callers hold the read lock.
func (m *Mediator) prepareCached(sql string) (*Prepared, error) {
	key := NormalizeSQL(sql)
	epoch := m.Catalog.Epoch()
	if p, ok := m.cache.get(key, epoch); ok {
		return p, nil
	}
	p, _, err := m.prepareLocked(sql, false, false)
	if err != nil {
		return nil, err
	}
	m.cache.put(key, p)
	return p, nil
}

// prepareLocked plans one statement on private optimizer state: the
// template estimator is cloned and a per-call optimizer built over the
// clone, so concurrent prepares never share options, scratch arenas or
// pruning budgets. Callers hold the read lock (or the write lock).
// trace enables per-node estimation traces (Explain); capture forces a
// full per-node variable capture (ExplainAnalyze). The estimator used
// is returned for renderers that need it.
func (m *Mediator) prepareLocked(sql string, trace, capture bool) (*Prepared, *core.Estimator, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	block, err := m.bind(q)
	if err != nil {
		return nil, nil, err
	}
	est := m.Estimator.Clone()
	est.Reset()
	est.Options.Trace = trace
	opts := m.cfg.OptimizerOptions
	if capture {
		opts.CapturePlanCosts = true
	}
	// Price cache-hit access paths against a frozen snapshot of the
	// result cache: the live cache may churn mid-search, and the parallel
	// workers must all see one consistent view for the chosen plan to
	// stay deterministic. A nil view (cache disabled or empty) leaves the
	// search bit-identical to the cache-less build.
	if view := m.rcache.SnapshotView(m.Catalog.Epoch()); view != nil {
		opts.CacheView = view
	}
	res, err := optimizer.New(m.Catalog, est, opts).Optimize(block)
	if err != nil {
		return nil, nil, err
	}
	return &Prepared{
		SQL:         sql,
		Query:       q,
		Block:       block,
		Plan:        res.Plan,
		Cost:        res.Cost,
		PlansCosted: res.PlansCosted,
		Epoch:       m.Catalog.Epoch(),
		Hash:        res.Plan.StructuralHash(),
	}, est, nil
}

// Query runs the full pipeline: admission, prepare (cache-aware), then
// execute. With feedback enabled the execution is absorbed into the
// model before returning.
func (m *Mediator) Query(sql string) (*engine.Result, error) {
	if err := m.adm.acquire(); err != nil {
		return nil, err
	}
	defer m.adm.release()
	p, err := m.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return m.executeAdmitted(p)
}

// Warm primes the caches for a statement without a client waiting on
// the answer: it prepares sql (populating the plan cache) and, when the
// result cache is enabled but holds no live entry for the plan, executes
// it once to seed the answer. The returned bool reports whether an
// execution ran (false = the plan alone was warmed, or the result was
// already cached). Warming goes through admission like any query so a
// gossip-driven warm storm cannot starve real clients.
func (m *Mediator) Warm(sql string) (bool, error) {
	if err := m.adm.acquire(); err != nil {
		return false, err
	}
	defer m.adm.release()
	p, err := m.Prepare(sql)
	if err != nil {
		return false, err
	}
	if m.rcache == nil || m.rcache.Peek(p.Hash, p.Epoch) {
		return false, nil
	}
	if _, err := m.executeAdmitted(p); err != nil {
		return false, err
	}
	return true, nil
}

// ExecutePlan executes a previously prepared plan, feeding the actuals
// back into the model when feedback is enabled. A plan prepared under an
// older catalog epoch is transparently re-prepared from its SQL text
// (ErrStalePlan when it has none): plans never execute against a
// federation they were not costed for.
func (m *Mediator) ExecutePlan(p *Prepared) (*engine.Result, error) {
	if err := m.adm.acquire(); err != nil {
		return nil, err
	}
	defer m.adm.release()
	return m.executeAdmitted(p)
}

// executeAdmitted runs a prepared plan under the read lock. The lock is
// held across execution, so a registration (write lock) drains every
// in-flight query first and a plan can never run concurrently with the
// federation change that would invalidate it.
func (m *Mediator) executeAdmitted(p *Prepared) (*engine.Result, error) {
	m.mu.RLock()
	if p == nil || p.Plan == nil {
		m.mu.RUnlock()
		return nil, fmt.Errorf("mediator: ExecutePlan needs a prepared plan")
	}
	if p.Epoch != m.Catalog.Epoch() {
		if p.SQL == "" {
			m.mu.RUnlock()
			return nil, ErrStalePlan
		}
		fresh, err := m.prepareCached(p.SQL)
		if err != nil {
			m.mu.RUnlock()
			return nil, fmt.Errorf("mediator: re-preparing stale plan: %w", err)
		}
		m.reprepares.Add(1)
		p = fresh
	}
	if m.rcache != nil {
		if e, ok := m.rcache.Get(p.Hash, p.Epoch); ok {
			// Whole-plan hit: serve the materialized answer, charging the
			// ScopeCache formula to the virtual clock. No profile is
			// attached — there is nothing here the feedback loop should
			// learn source behaviour from.
			ms := resultcache.HitCostMS(int64(len(e.Rows)))
			m.Clock.Advance(ms)
			res := &engine.Result{Rows: e.Rows, Schema: e.Schema, ElapsedMS: ms}
			m.mu.RUnlock()
			m.served.Add(1)
			return res, nil
		}
	}
	gen := m.rcache.Gen()
	eng := m.Engine
	res, err := m.execute(eng, p)
	if err == nil && res != nil && !res.Partial && m.rcache != nil {
		// Admit the complete answer under the read lock (no registration
		// can interleave, so the epoch stamp is the one the plan ran
		// under). Partial answers are refused here, and gen — snapshotted
		// before execution — voids the insert if an outage mark or
		// feedback adjustment invalidated the cache mid-run.
		m.rcache.Put(p.Hash, res.Rows, res.Schema, p.Epoch, 0, gen)
	}
	m.mu.RUnlock()
	if err != nil {
		m.qerrors.Add(1)
	} else {
		m.served.Add(1)
		if res != nil && res.Partial {
			m.partials.Add(1)
		}
	}
	if err == nil && m.Feedback != nil {
		m.mu.Lock()
		m.absorbLocked(p, res)
		m.mu.Unlock()
	}
	return res, err
}

// absorbLocked closes the feedback loop for one execution: the profile
// is joined against the plan's predicted costs, q-error accumulators
// update, the adjuster refines statistics and coefficients, and the
// snapshot save is scheduled (debounced). Callers hold the write lock.
// Returns the joined report (nil when feedback is off or the run carries
// no usable profile).
func (m *Mediator) absorbLocked(p *Prepared, res *engine.Result) *feedback.Report {
	if m.Feedback == nil || p == nil || p.Cost == nil || res == nil || res.Profile == nil {
		return nil
	}
	if res.PlanSwitches > 0 {
		// The adaptive executor switched plans mid-query: the profile is
		// keyed by the executed plan's nodes, which no longer join the
		// prepared plan's predictions pointer-for-pointer. The switch
		// itself already corrected this query; absorbing a mismatched
		// join would teach the model noise.
		return nil
	}
	if res.Profile.CacheServed > 0 {
		// Cache-served submits measured an in-memory lookup, not the
		// source; absorbing them would teach the adjuster that wrappers
		// are nearly free. (Whole-plan cache hits carry no profile at all
		// and never reach this point.)
		return nil
	}
	rep := m.Feedback.Observe(p.Plan, p.Cost, res.Profile)
	m.LastReport = rep
	if m.Adjuster != nil {
		if adj := m.Adjuster.Apply(rep, m.Catalog, m.Estimator.Globals); len(adj) > 0 {
			// The corrections changed the model cached plans were costed
			// against; drop them so the next prepare re-plans.
			m.cache.clear()
			// Materialized results are dropped only for catalog-touching
			// corrections: a statistics fix means observations contradicted
			// the model, so re-executing is the conservative move. Pure
			// time-coefficient refits are exempt — they change nothing
			// about what a plan returns and fire on almost every absorbed
			// execution, so honoring them would starve the result cache
			// under feedback.
			for _, ad := range adj {
				if !ad.CostOnly() {
					m.rcache.Invalidate()
					break
				}
			}
		}
	}
	if m.deb != nil {
		// Persisting corrections must never fail the query that produced
		// them; a failed save means relearning after the next restart.
		_ = m.deb.Mark(func() *feedback.Snapshot {
			return feedback.Capture(m.Feedback, m.Adjuster, m.Adjuster.FittedCoeffs(m.Estimator.Globals))
		})
	}
	return rep
}

// Close flushes deferred state — the debounced feedback snapshot — so
// shutdown never loses absorbed executions. The mediator remains usable
// afterwards.
func (m *Mediator) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.deb != nil {
		return m.deb.Flush()
	}
	return nil
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	// PlanCacheHits/Misses/Stale count cache lookups; Stale is the
	// subset of misses caused by a catalog epoch bump.
	PlanCacheHits   int64
	PlanCacheMisses int64
	PlanCacheStale  int64
	// PlanCacheEntries is the current cache population.
	PlanCacheEntries int
	// Result-cache counters (all zero when Config.ResultCache is
	// disabled). Hits and misses count lookups at whole-plan and submit
	// granularity; Stale and Expired are the miss subsets evicted by an
	// epoch bump or the TTL. Evictions counts budget displacements,
	// Invalidations whole-cache clears (registration, outage, feedback
	// adjustment), Rejected refused inserts (raced invalidations,
	// over-budget results).
	ResultCacheHits          int64
	ResultCacheMisses        int64
	ResultCacheStale         int64
	ResultCacheExpired       int64
	ResultCacheEvictions     int64
	ResultCacheInvalidations int64
	ResultCacheRejected      int64
	// ResultCacheEntries/Bytes are the current population and its
	// estimated memory footprint.
	ResultCacheEntries int
	ResultCacheBytes   int64
	// Reprepares counts stale plans transparently re-planned by
	// ExecutePlan.
	Reprepares int64
	// Shed counts queries rejected by admission control.
	Shed int64
	// InFlight is the number of currently admitted queries (0 when
	// admission control is off).
	InFlight int
	// FeedbackSaves counts snapshot writes that reached the store.
	FeedbackSaves int64
	// QueriesServed counts executions that completed successfully
	// (partial answers included); QueryErrors counts executions that
	// failed. Neither includes shed queries or prepare-time failures.
	QueriesServed int64
	QueryErrors   int64
	// PartialAnswers is the subset of QueriesServed that excluded one or
	// more unavailable wrappers.
	PartialAnswers int64
	// AdaptiveReplans counts mid-flight re-cost attempts and
	// AdaptiveSwitches the subset that switched the running plan (both
	// always zero unless Config.Adaptive).
	AdaptiveReplans  int64
	AdaptiveSwitches int64
	// Epoch is the catalog registration epoch at snapshot time.
	Epoch uint64
}

// Stats reports the serving counters. It takes the read lock briefly
// for the catalog epoch, so it serializes against registrations.
func (m *Mediator) Stats() Stats {
	m.mu.RLock()
	epoch := m.Catalog.Epoch()
	m.mu.RUnlock()
	h, mi, st := m.cache.counters()
	rc := m.rcache.Counters()
	s := Stats{
		PlanCacheHits:    h,
		PlanCacheMisses:  mi,
		PlanCacheStale:   st,
		PlanCacheEntries: m.cache.len(),

		ResultCacheHits:          rc.Hits,
		ResultCacheMisses:        rc.Misses,
		ResultCacheStale:         rc.Stale,
		ResultCacheExpired:       rc.Expired,
		ResultCacheEvictions:     rc.Evictions,
		ResultCacheInvalidations: rc.Invalidations,
		ResultCacheRejected:      rc.Rejected,
		ResultCacheEntries:       rc.Entries,
		ResultCacheBytes:         rc.Bytes,

		Reprepares:       m.reprepares.Load(),
		Shed:             m.adm.shedCount(),
		InFlight:         m.adm.inFlight(),
		QueriesServed:    m.served.Load(),
		QueryErrors:      m.qerrors.Load(),
		PartialAnswers:   m.partials.Load(),
		AdaptiveReplans:  m.replans.Load(),
		AdaptiveSwitches: m.planSwitches.Load(),
		Epoch:            epoch,
	}
	if m.deb != nil {
		s.FeedbackSaves = m.deb.Saves()
	}
	return s
}

// Explain renders the chosen plan with its cost annotations. Explains
// bypass the plan cache: the trace must come from a fresh estimation.
func (m *Mediator) Explain(sql string) (string, error) {
	if err := m.adm.acquire(); err != nil {
		return "", err
	}
	defer m.adm.release()
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, est, err := m.prepareLocked(sql, true, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", sql)
	fmt.Fprintf(&b, "-- estimated TotalTime: %.3f ms (%d candidate estimations)\n",
		p.Cost.TotalTime(), p.PlansCosted)
	b.WriteString(est.Explain(p.Plan, p.Cost))
	return b.String(), nil
}

// ExplainAnalyze prepares, executes and renders a query's plan tree with
// each node annotated `est=… act=… q=…` — the estimator's predicted
// cardinality and subtree time against the measured actuals, with their
// q-errors. Operators below a submit execute opaquely inside the wrapper
// and show estimates only; an excluded submit (unavailable wrapper) is
// marked. With feedback enabled the execution is absorbed into the model
// like any other query. Bypasses the plan cache: the rendering needs a
// private plan with a full per-node variable capture.
func (m *Mediator) ExplainAnalyze(sql string) (string, error) {
	if err := m.adm.acquire(); err != nil {
		return "", err
	}
	defer m.adm.release()
	m.mu.RLock()
	p, _, err := m.prepareLocked(sql, false, true)
	if err != nil {
		m.mu.RUnlock()
		return "", err
	}
	eng := m.Engine
	res, err := m.execute(eng, p)
	m.mu.RUnlock()
	if err != nil {
		return "", err
	}
	if m.Feedback != nil {
		m.mu.Lock()
		m.absorbLocked(p, res)
		m.mu.Unlock()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", sql)
	fmt.Fprintf(&b, "-- estimated TotalTime: %.3f ms, actual: %.3f ms (q=%.2f), %d rows",
		p.Cost.TotalTime(), res.ElapsedMS,
		feedback.QError(p.Cost.TotalTime(), res.ElapsedMS, 0.01), len(res.Rows))
	if res.Partial {
		fmt.Fprintf(&b, " [PARTIAL: excluded %s]", strings.Join(res.Excluded, ", "))
	}
	b.WriteByte('\n')
	plan := p.Plan
	if res.Replans > 0 {
		fmt.Fprintf(&b, "-- adaptive: %d replan(s), %d plan switch(es) mid-flight\n",
			res.Replans, res.PlanSwitches)
	}
	if res.ExecutedPlan != nil {
		// Render the plan that actually finished the query. Subtrees
		// materialized before the switch keep their original nodes (and
		// estimates); the switched suffix is new and shows actuals only.
		plan = res.ExecutedPlan
	}
	renderAnalyze(&b, plan, 0, p.Cost, res.Profile)
	return b.String(), nil
}

// renderAnalyze prints one node of the annotated plan tree and recurses.
func renderAnalyze(b *strings.Builder, n *algebra.Node, depth int, pc *core.PlanCost, prof *feedback.Profile) {
	indent := strings.Repeat("  ", depth)
	head := strings.TrimSpace(strings.SplitN(n.String(), "\n", 2)[0])
	fmt.Fprintf(b, "%s%s", indent, head)
	est, okE := pc.ByNode[n]
	act, okA := prof.Actual(n)
	switch {
	case okE && okA && act.Excluded:
		fmt.Fprintf(b, "  est=%.4g rows %.4g ms  act: EXCLUDED (wrapper %s unavailable)",
			est.Var("CountObject", 0), est.TotalTime(), act.Wrapper)
	case okE && okA:
		fmt.Fprintf(b, "  est=%.4g act=%d q=%.2f rows | est=%.4g act=%.4g q=%.2f ms",
			est.Var("CountObject", 0), act.RowsOut,
			feedback.QError(est.Var("CountObject", 0), float64(act.RowsOut), 1),
			est.TotalTime(), act.SubtreeMS,
			feedback.QError(est.TotalTime(), act.SubtreeMS, 0.01))
		if n.Kind == algebra.OpSubmit {
			fmt.Fprintf(b, " | %d round-trip(s) %d B", act.RoundTrips, act.Bytes)
		}
	case okE:
		fmt.Fprintf(b, "  est=%.4g rows %.4g ms (wrapper-resident: no actuals)",
			est.Var("CountObject", 0), est.TotalTime())
	case okA:
		fmt.Fprintf(b, "  act=%d rows %.4g ms", act.RowsOut, act.SubtreeMS)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderAnalyze(b, c, depth+1, pc, prof)
	}
}

// FeedbackSummary renders the execution-feedback state: the per-scope
// q-error table, the learned extent corrections and the re-fitted cost
// coefficients. It errors when feedback is disabled.
func (m *Mediator) FeedbackSummary() (string, error) {
	if m.Feedback == nil || m.Adjuster == nil {
		return "", fmt.Errorf("mediator: feedback is disabled (Config.Feedback)")
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	var b strings.Builder
	b.WriteString(m.Feedback.Summary())
	if corr := m.Adjuster.Corrections(); len(corr) > 0 {
		b.WriteString("\nextent corrections:\n")
		for _, c := range corr {
			fmt.Fprintf(&b, "  %s/%s: claimed %d x %.4g (%d samples)\n",
				c.Wrapper, c.Collection, c.Base, c.Factor, c.Samples)
		}
	}
	if coeffs := m.Adjuster.FittedCoeffs(m.Estimator.Globals); len(coeffs) > 0 {
		b.WriteString("\nre-fitted coefficients:\n")
		names := make([]string, 0, len(coeffs))
		for n := range coeffs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %s = %.6g\n", n, coeffs[n])
		}
	}
	return b.String(), nil
}

// bind resolves a parsed query against the catalog into an optimizer
// query block (the paper's step "transforms the query, written with
// respect to a global view, into a query over local schemas"). Callers
// hold at least the read lock.
func (m *Mediator) bind(q *sqlparser.Query) (*optimizer.QueryBlock, error) {
	down := m.downedSnapshot()
	rels := make([]optimizer.Rel, 0, len(q.From))
	for _, tr := range q.From {
		wrapperName := tr.Wrapper
		if wrapperName == "" {
			owners := m.Catalog.FindCollection(tr.Collection)
			// Prefer surviving owners: a replica at a live wrapper
			// disambiguates away the dead ones. Only when no owner is
			// alive does the unfiltered list apply (the engine will then
			// return a partial answer with the dead wrapper excluded).
			if alive := availableOwners(owners, down); len(alive) > 0 {
				owners = alive
			}
			switch len(owners) {
			case 0:
				return nil, fmt.Errorf("mediator: unknown collection %q", tr.Collection)
			case 1:
				wrapperName = owners[0]
			default:
				return nil, fmt.Errorf("mediator: collection %q exists at several wrappers (%s); pin one with %s@wrapper",
					tr.Collection, strings.Join(owners, ", "), tr.Collection)
			}
		} else if !m.Catalog.HasCollection(wrapperName, tr.Collection) {
			return nil, fmt.Errorf("mediator: unknown collection %s@%s", tr.Collection, wrapperName)
		}
		rels = append(rels, optimizer.Rel{Wrapper: wrapperName, Collection: tr.Collection})
	}

	rels, joins, err := optimizer.SplitPredicate(m.Catalog, rels, q.Where)
	if err != nil {
		return nil, err
	}
	block := &optimizer.QueryBlock{
		Relations: rels,
		JoinPreds: joins,
		Distinct:  q.Distinct,
		Sort:      q.OrderBy,
	}

	// Select list: aggregates switch the block into grouping mode.
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		block.GroupBy = q.GroupBy
		for _, it := range q.Items {
			switch {
			case it.Agg != nil:
				block.Aggs = append(block.Aggs, *it.Agg)
			case it.Star:
				return nil, fmt.Errorf("mediator: cannot mix * with aggregates")
			default:
				if !inGroupBy(q.GroupBy, it.Ref) {
					return nil, fmt.Errorf("mediator: %s must appear in GROUP BY", it.Ref)
				}
			}
		}
	} else {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("mediator: GROUP BY without aggregates")
		}
		star := false
		var cols []string
		for _, it := range q.Items {
			if it.Star {
				star = true
				continue
			}
			cols = append(cols, it.Ref.String())
		}
		if star && len(cols) > 0 {
			return nil, fmt.Errorf("mediator: cannot mix * with named columns")
		}
		if !star {
			block.Projection = cols
		}
	}
	return block, nil
}

// availableOwners filters a FindCollection result down to live wrappers.
func availableOwners(owners []string, unavailable map[string]bool) []string {
	if len(unavailable) == 0 {
		return owners
	}
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if !unavailable[o] {
			out = append(out, o)
		}
	}
	return out
}

func inGroupBy(groupBy []algebra.Ref, r algebra.Ref) bool {
	for _, g := range groupBy {
		if strings.EqualFold(g.Attr, r.Attr) &&
			(g.Collection == "" || r.Collection == "" || strings.EqualFold(g.Collection, r.Collection)) {
			return true
		}
	}
	return false
}
