// Package mediator assembles the full DISCO system of the paper: the
// registration phase (Figure 1 — wrappers upload schema, capabilities,
// statistics and cost rules into the catalog and the cost-model registry)
// and the query phase (Figure 2 — parse the declarative query, bind it
// against the catalog, optimize it with the blending cost model, execute
// it across the wrappers, and compose the answer).
package mediator

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/costlang"
	"disco/internal/engine"
	"disco/internal/history"
	"disco/internal/netsim"
	"disco/internal/optimizer"
	"disco/internal/sqlparser"
	"disco/internal/wrapper"
)

// Config sets up a mediator deployment.
type Config struct {
	// Clock is the shared virtual clock; nil allocates one. Every
	// registered wrapper must run on this clock.
	Clock *netsim.Clock
	// Net is the communication model; nil installs a default uniform
	// link (10 ms latency, 2 MB/s).
	Net *netsim.Network
	// EngineCosts are the mediator-side per-row costs; zero value uses
	// engine.DefaultCosts.
	EngineCosts engine.Costs
	// RecordHistory enables the §4.3.1 query-scope recorder.
	RecordHistory bool
	// UseWrapperRules controls whether registration integrates exported
	// cost rules (disabling it yields the generic-model-only baseline of
	// experiment E3).
	UseWrapperRules bool
	// OptimizerOptions tune the plan search.
	OptimizerOptions optimizer.Options
}

// DefaultConfig enables wrapper rules and history with default search
// options.
func DefaultConfig() Config {
	return Config{
		RecordHistory:    true,
		UseWrapperRules:  true,
		OptimizerOptions: optimizer.DefaultOptions(),
	}
}

// Mediator is one running mediator instance. It is not safe for
// concurrent use; create one per session.
type Mediator struct {
	cfg Config

	Clock     *netsim.Clock
	Net       *netsim.Network
	Catalog   *catalog.Catalog
	Registry  *core.Registry
	Estimator *core.Estimator
	Optimizer *optimizer.Optimizer
	Engine    *engine.Engine
	History   *history.Recorder

	wrappers map[string]wrapper.Wrapper
	// unavailable records wrappers that exhausted the transport's
	// self-healing (engine submits failed with wrapper.ErrUnavailable).
	// Their collections are excluded from answers (partial results),
	// binding prefers surviving owners, and their cost rules are dropped
	// so estimation falls back to the generic calibrated model — the
	// paper's behaviour for sources that are only partially registered.
	unavailable map[string]bool
}

// New builds an empty mediator.
func New(cfg Config) (*Mediator, error) {
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewClock()
	}
	if cfg.Net == nil {
		cfg.Net = netsim.NewNetwork(netsim.Link{LatencyMS: 10, PerByteMS: 0.0005}, cfg.Clock)
	}
	if cfg.EngineCosts == (engine.Costs{}) {
		cfg.EngineCosts = engine.DefaultCosts()
	}
	reg, err := core.NewDefaultRegistry()
	if err != nil {
		return nil, err
	}
	m := &Mediator{
		cfg:         cfg,
		Clock:       cfg.Clock,
		Net:         cfg.Net,
		Catalog:     catalog.New(),
		Registry:    reg,
		wrappers:    make(map[string]wrapper.Wrapper),
		unavailable: make(map[string]bool),
	}
	m.Estimator = core.NewEstimator(reg, m.Catalog, cfg.Net)
	m.Optimizer = optimizer.New(m.Catalog, m.Estimator, cfg.OptimizerOptions)
	if cfg.RecordHistory {
		m.History = history.NewRecorder(reg)
	}
	if err := m.rebuildEngine(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Mediator) rebuildEngine() error {
	eng, err := engine.New(m.Clock, m.Net, m.wrappers, m.cfg.EngineCosts)
	if err != nil {
		return err
	}
	if m.History != nil {
		rec := m.History
		eng.SubmitHook = func(w string, subplan *algebra.Node, elapsed float64, rows int, bytes int64) {
			// Recording failures must not fail queries.
			_ = rec.Record(w, subplan, elapsed, int64(rows), bytes)
		}
	}
	eng.OnUnavailable = m.markUnavailable
	m.Engine = eng
	return nil
}

// markUnavailable degrades the mediator after a source outage: the
// wrapper's collections stop being preferred at bind time and its
// wrapper-specific cost rules are dropped, so estimation for plans over
// surviving copies falls back to the generic calibrated model.
func (m *Mediator) markUnavailable(name string) {
	if m.unavailable[name] {
		return
	}
	m.unavailable[name] = true
	m.Registry.DropWrapper(name)
}

// Available reports whether a registered wrapper is currently usable.
func (m *Mediator) Available(name string) bool {
	_, registered := m.wrappers[name]
	return registered && !m.unavailable[name]
}

// Unavailable lists the wrappers marked down, sorted.
func (m *Mediator) Unavailable() []string {
	out := make([]string, 0, len(m.unavailable))
	for n := range m.unavailable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register runs the registration phase for one wrapper: catalog upload
// plus cost-rule integration (paper Figure 1). Re-registering a name
// replaces its catalog entry and rules (the paper's administrative
// re-registration interface).
func (m *Mediator) Register(w wrapper.Wrapper) error {
	if w.Clock() != m.Clock {
		return fmt.Errorf("mediator: wrapper %s does not share the mediator clock", w.Name())
	}
	if err := m.Catalog.Register(w); err != nil {
		return err
	}
	m.Registry.DropWrapper(w.Name())
	if m.cfg.UseWrapperRules {
		if src := w.CostRules(); src != "" {
			file, err := costlang.Parse(src)
			if err != nil {
				return fmt.Errorf("mediator: parsing %s cost rules: %w", w.Name(), err)
			}
			if err := m.Registry.IntegrateWrapper(w.Name(), file, m.Catalog); err != nil {
				return fmt.Errorf("mediator: integrating %s cost rules: %w", w.Name(), err)
			}
		}
	}
	m.wrappers[w.Name()] = w
	// (Re-)registration revives a wrapper previously marked unavailable:
	// the rebuilt engine starts with clean down-marks and the rules just
	// integrated above are live again.
	delete(m.unavailable, w.Name())
	return m.rebuildEngine()
}

// Wrapper returns a registered wrapper.
func (m *Mediator) Wrapper(name string) (wrapper.Wrapper, bool) {
	w, ok := m.wrappers[name]
	return w, ok
}

// Prepared is a bound and optimized query ready for execution.
type Prepared struct {
	SQL   string
	Query *sqlparser.Query
	Block *optimizer.QueryBlock
	Plan  *algebra.Node
	Cost  *core.PlanCost
	// PlansCosted reports the optimizer's search effort.
	PlansCosted int
}

// Prepare parses, binds and optimizes a query.
func (m *Mediator) Prepare(sql string) (*Prepared, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	block, err := m.bind(q)
	if err != nil {
		return nil, err
	}
	res, err := m.Optimizer.Optimize(block)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		SQL:         sql,
		Query:       q,
		Block:       block,
		Plan:        res.Plan,
		Cost:        res.Cost,
		PlansCosted: res.PlansCosted,
	}, nil
}

// Query runs the full pipeline: prepare then execute.
func (m *Mediator) Query(sql string) (*engine.Result, error) {
	p, err := m.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return m.Engine.Execute(p.Plan)
}

// ExecutePlan executes a previously prepared plan.
func (m *Mediator) ExecutePlan(p *Prepared) (*engine.Result, error) {
	return m.Engine.Execute(p.Plan)
}

// Explain renders the chosen plan with its cost annotations.
func (m *Mediator) Explain(sql string) (string, error) {
	saved := m.Estimator.Options.Trace
	m.Estimator.Options.Trace = true
	defer func() { m.Estimator.Options.Trace = saved }()
	p, err := m.Prepare(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", sql)
	fmt.Fprintf(&b, "-- estimated TotalTime: %.3f ms (%d candidate estimations)\n",
		p.Cost.TotalTime(), p.PlansCosted)
	b.WriteString(m.Estimator.Explain(p.Plan, p.Cost))
	return b.String(), nil
}

// bind resolves a parsed query against the catalog into an optimizer
// query block (the paper's step "transforms the query, written with
// respect to a global view, into a query over local schemas").
func (m *Mediator) bind(q *sqlparser.Query) (*optimizer.QueryBlock, error) {
	rels := make([]optimizer.Rel, 0, len(q.From))
	for _, tr := range q.From {
		wrapperName := tr.Wrapper
		if wrapperName == "" {
			owners := m.Catalog.FindCollection(tr.Collection)
			// Prefer surviving owners: a replica at a live wrapper
			// disambiguates away the dead ones. Only when no owner is
			// alive does the unfiltered list apply (the engine will then
			// return a partial answer with the dead wrapper excluded).
			if alive := availableOwners(owners, m.unavailable); len(alive) > 0 {
				owners = alive
			}
			switch len(owners) {
			case 0:
				return nil, fmt.Errorf("mediator: unknown collection %q", tr.Collection)
			case 1:
				wrapperName = owners[0]
			default:
				return nil, fmt.Errorf("mediator: collection %q exists at several wrappers (%s); pin one with %s@wrapper",
					tr.Collection, strings.Join(owners, ", "), tr.Collection)
			}
		} else if !m.Catalog.HasCollection(wrapperName, tr.Collection) {
			return nil, fmt.Errorf("mediator: unknown collection %s@%s", tr.Collection, wrapperName)
		}
		rels = append(rels, optimizer.Rel{Wrapper: wrapperName, Collection: tr.Collection})
	}

	rels, joins, err := optimizer.SplitPredicate(m.Catalog, rels, q.Where)
	if err != nil {
		return nil, err
	}
	block := &optimizer.QueryBlock{
		Relations: rels,
		JoinPreds: joins,
		Distinct:  q.Distinct,
		Sort:      q.OrderBy,
	}

	// Select list: aggregates switch the block into grouping mode.
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		block.GroupBy = q.GroupBy
		for _, it := range q.Items {
			switch {
			case it.Agg != nil:
				block.Aggs = append(block.Aggs, *it.Agg)
			case it.Star:
				return nil, fmt.Errorf("mediator: cannot mix * with aggregates")
			default:
				if !inGroupBy(q.GroupBy, it.Ref) {
					return nil, fmt.Errorf("mediator: %s must appear in GROUP BY", it.Ref)
				}
			}
		}
	} else {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("mediator: GROUP BY without aggregates")
		}
		star := false
		var cols []string
		for _, it := range q.Items {
			if it.Star {
				star = true
				continue
			}
			cols = append(cols, it.Ref.String())
		}
		if star && len(cols) > 0 {
			return nil, fmt.Errorf("mediator: cannot mix * with named columns")
		}
		if !star {
			block.Projection = cols
		}
	}
	return block, nil
}

// availableOwners filters a FindCollection result down to live wrappers.
func availableOwners(owners []string, unavailable map[string]bool) []string {
	if len(unavailable) == 0 {
		return owners
	}
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if !unavailable[o] {
			out = append(out, o)
		}
	}
	return out
}

func inGroupBy(groupBy []algebra.Ref, r algebra.Ref) bool {
	for _, g := range groupBy {
		if strings.EqualFold(g.Attr, r.Attr) &&
			(g.Collection == "" || r.Collection == "" || strings.EqualFold(g.Collection, r.Collection)) {
			return true
		}
	}
	return false
}
