// Package mediator assembles the full DISCO system of the paper: the
// registration phase (Figure 1 — wrappers upload schema, capabilities,
// statistics and cost rules into the catalog and the cost-model registry)
// and the query phase (Figure 2 — parse the declarative query, bind it
// against the catalog, optimize it with the blending cost model, execute
// it across the wrappers, and compose the answer).
package mediator

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/algebra"
	"disco/internal/catalog"
	"disco/internal/core"
	"disco/internal/costlang"
	"disco/internal/engine"
	"disco/internal/feedback"
	"disco/internal/history"
	"disco/internal/netsim"
	"disco/internal/optimizer"
	"disco/internal/sqlparser"
	"disco/internal/types"
	"disco/internal/wrapper"
)

// Config sets up a mediator deployment.
type Config struct {
	// Clock is the shared virtual clock; nil allocates one. Every
	// registered wrapper must run on this clock.
	Clock *netsim.Clock
	// Net is the communication model; nil installs a default uniform
	// link (10 ms latency, 2 MB/s).
	Net *netsim.Network
	// EngineCosts are the mediator-side per-row costs; zero value uses
	// engine.DefaultCosts.
	EngineCosts engine.Costs
	// RecordHistory enables the §4.3.1 query-scope recorder.
	RecordHistory bool
	// UseWrapperRules controls whether registration integrates exported
	// cost rules (disabling it yields the generic-model-only baseline of
	// experiment E3).
	UseWrapperRules bool
	// Feedback enables the execution-feedback loop (DESIGN.md §8): every
	// executed query's per-operator actuals are joined against the
	// optimizer's predictions, per-scope q-error accumulators update, and
	// the adjuster refines catalog statistics and calibrated coefficients
	// toward the observations. Off by default: with feedback disabled the
	// mediator's plans and estimates are bit-identical to a build without
	// the subsystem.
	Feedback bool
	// FeedbackStore, when set with Feedback, persists learned corrections
	// across restarts (the snapshot loads at construction and is saved
	// after every absorbed execution). Nil keeps corrections in memory.
	FeedbackStore feedback.Store
	// FeedbackWindow sizes the q-error accumulators' ring buffers
	// (<= 0 uses the package default).
	FeedbackWindow int
	// OptimizerOptions tune the plan search.
	OptimizerOptions optimizer.Options
}

// DefaultConfig enables wrapper rules and history with default search
// options.
func DefaultConfig() Config {
	return Config{
		RecordHistory:    true,
		UseWrapperRules:  true,
		OptimizerOptions: optimizer.DefaultOptions(),
	}
}

// Mediator is one running mediator instance. It is not safe for
// concurrent use; create one per session.
type Mediator struct {
	cfg Config

	Clock     *netsim.Clock
	Net       *netsim.Network
	Catalog   *catalog.Catalog
	Registry  *core.Registry
	Estimator *core.Estimator
	Optimizer *optimizer.Optimizer
	Engine    *engine.Engine
	History   *history.Recorder
	// Feedback and Adjuster are the execution-feedback loop (nil unless
	// Config.Feedback).
	Feedback *feedback.Recorder
	Adjuster *feedback.Adjuster
	// LastReport is the feedback report of the most recently executed
	// query (nil until one runs, or when feedback is off).
	LastReport *feedback.Report

	wrappers map[string]wrapper.Wrapper
	// unavailable records wrappers that exhausted the transport's
	// self-healing (engine submits failed with wrapper.ErrUnavailable).
	// Their collections are excluded from answers (partial results),
	// binding prefers surviving owners, and their cost rules are dropped
	// so estimation falls back to the generic calibrated model — the
	// paper's behaviour for sources that are only partially registered.
	unavailable map[string]bool
}

// New builds an empty mediator.
func New(cfg Config) (*Mediator, error) {
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewClock()
	}
	if cfg.Net == nil {
		cfg.Net = netsim.NewNetwork(netsim.Link{LatencyMS: 10, PerByteMS: 0.0005}, cfg.Clock)
	}
	if cfg.EngineCosts == (engine.Costs{}) {
		cfg.EngineCosts = engine.DefaultCosts()
	}
	reg, err := core.NewDefaultRegistry()
	if err != nil {
		return nil, err
	}
	if cfg.Feedback {
		// The recorder joins per-node predictions against actuals, so the
		// final costing of every chosen plan must capture all variables.
		cfg.OptimizerOptions.CapturePlanCosts = true
	}
	m := &Mediator{
		cfg:         cfg,
		Clock:       cfg.Clock,
		Net:         cfg.Net,
		Catalog:     catalog.New(),
		Registry:    reg,
		wrappers:    make(map[string]wrapper.Wrapper),
		unavailable: make(map[string]bool),
	}
	m.Estimator = core.NewEstimator(reg, m.Catalog, cfg.Net)
	m.Optimizer = optimizer.New(m.Catalog, m.Estimator, cfg.OptimizerOptions)
	if cfg.RecordHistory {
		m.History = history.NewRecorder(reg)
	}
	if cfg.Feedback {
		m.Feedback = feedback.NewRecorder(cfg.FeedbackWindow)
		m.Adjuster = feedback.NewAdjuster()
		if cfg.FeedbackStore != nil {
			// A missing or corrupt snapshot loads as empty; persisted
			// corrections are an optimization, never a startup gate.
			snap, err := cfg.FeedbackStore.Load()
			if err != nil {
				return nil, err
			}
			feedback.Restore(snap, m.Feedback, m.Adjuster)
			for name, v := range snap.Coeffs {
				if _, ok := m.Estimator.Globals[name]; ok && v > 0 {
					m.Estimator.Globals[name] = types.Float(v)
				}
			}
		}
	}
	if err := m.rebuildEngine(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Mediator) rebuildEngine() error {
	eng, err := engine.New(m.Clock, m.Net, m.wrappers, m.cfg.EngineCosts)
	if err != nil {
		return err
	}
	if m.History != nil {
		rec := m.History
		eng.SubmitHook = func(w string, subplan *algebra.Node, elapsed float64, rows int, bytes int64) {
			// Recording failures must not fail queries.
			_ = rec.Record(w, subplan, elapsed, int64(rows), bytes)
		}
	}
	eng.OnUnavailable = m.markUnavailable
	m.Engine = eng
	return nil
}

// markUnavailable degrades the mediator after a source outage: the
// wrapper's collections stop being preferred at bind time and its
// wrapper-specific cost rules are dropped, so estimation for plans over
// surviving copies falls back to the generic calibrated model.
func (m *Mediator) markUnavailable(name string) {
	if m.unavailable[name] {
		return
	}
	m.unavailable[name] = true
	m.Registry.DropWrapper(name)
}

// Available reports whether a registered wrapper is currently usable.
func (m *Mediator) Available(name string) bool {
	_, registered := m.wrappers[name]
	return registered && !m.unavailable[name]
}

// Unavailable lists the wrappers marked down, sorted.
func (m *Mediator) Unavailable() []string {
	out := make([]string, 0, len(m.unavailable))
	for n := range m.unavailable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Register runs the registration phase for one wrapper: catalog upload
// plus cost-rule integration (paper Figure 1). Re-registering a name
// replaces its catalog entry and rules (the paper's administrative
// re-registration interface).
func (m *Mediator) Register(w wrapper.Wrapper) error {
	if w.Clock() != m.Clock {
		return fmt.Errorf("mediator: wrapper %s does not share the mediator clock", w.Name())
	}
	if err := m.Catalog.Register(w); err != nil {
		return err
	}
	m.Registry.DropWrapper(w.Name())
	if m.cfg.UseWrapperRules {
		if src := w.CostRules(); src != "" {
			file, err := costlang.Parse(src)
			if err != nil {
				return fmt.Errorf("mediator: parsing %s cost rules: %w", w.Name(), err)
			}
			if err := m.Registry.IntegrateWrapper(w.Name(), file, m.Catalog); err != nil {
				return fmt.Errorf("mediator: integrating %s cost rules: %w", w.Name(), err)
			}
		}
	}
	m.wrappers[w.Name()] = w
	// (Re-)registration revives a wrapper previously marked unavailable:
	// the rebuilt engine starts with clean down-marks and the rules just
	// integrated above are live again.
	delete(m.unavailable, w.Name())
	if m.Adjuster != nil {
		// Learned cardinality corrections outlive registrations: the fresh
		// entry becomes the new correction base and the factor re-applies.
		m.Adjuster.Reapply(m.Catalog)
	}
	return m.rebuildEngine()
}

// Wrapper returns a registered wrapper.
func (m *Mediator) Wrapper(name string) (wrapper.Wrapper, bool) {
	w, ok := m.wrappers[name]
	return w, ok
}

// Prepared is a bound and optimized query ready for execution.
type Prepared struct {
	SQL   string
	Query *sqlparser.Query
	Block *optimizer.QueryBlock
	Plan  *algebra.Node
	Cost  *core.PlanCost
	// PlansCosted reports the optimizer's search effort.
	PlansCosted int
}

// Prepare parses, binds and optimizes a query.
func (m *Mediator) Prepare(sql string) (*Prepared, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	block, err := m.bind(q)
	if err != nil {
		return nil, err
	}
	res, err := m.Optimizer.Optimize(block)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		SQL:         sql,
		Query:       q,
		Block:       block,
		Plan:        res.Plan,
		Cost:        res.Cost,
		PlansCosted: res.PlansCosted,
	}, nil
}

// Query runs the full pipeline: prepare then execute. With feedback
// enabled the execution is absorbed into the model before returning.
func (m *Mediator) Query(sql string) (*engine.Result, error) {
	p, err := m.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return m.ExecutePlan(p)
}

// ExecutePlan executes a previously prepared plan, feeding the actuals
// back into the model when feedback is enabled.
func (m *Mediator) ExecutePlan(p *Prepared) (*engine.Result, error) {
	res, err := m.Engine.Execute(p.Plan)
	if err == nil {
		m.absorb(p, res)
	}
	return res, err
}

// absorb closes the feedback loop for one execution: the profile is
// joined against the plan's predicted costs, q-error accumulators update,
// the adjuster refines statistics and coefficients, and the snapshot is
// persisted. Returns the joined report (nil when feedback is off or the
// run carries no usable profile).
func (m *Mediator) absorb(p *Prepared, res *engine.Result) *feedback.Report {
	if m.Feedback == nil || p == nil || p.Cost == nil || res == nil || res.Profile == nil {
		return nil
	}
	rep := m.Feedback.Observe(p.Plan, p.Cost, res.Profile)
	m.LastReport = rep
	if m.Adjuster != nil {
		m.Adjuster.Apply(rep, m.Catalog, m.Estimator.Globals)
	}
	if m.cfg.FeedbackStore != nil {
		// Persisting corrections must never fail the query that produced
		// them; a failed save means relearning after the next restart.
		_ = m.cfg.FeedbackStore.Save(feedback.Capture(
			m.Feedback, m.Adjuster, m.Adjuster.FittedCoeffs(m.Estimator.Globals)))
	}
	return rep
}

// Explain renders the chosen plan with its cost annotations.
func (m *Mediator) Explain(sql string) (string, error) {
	saved := m.Estimator.Options.Trace
	m.Estimator.Options.Trace = true
	defer func() { m.Estimator.Options.Trace = saved }()
	p, err := m.Prepare(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", sql)
	fmt.Fprintf(&b, "-- estimated TotalTime: %.3f ms (%d candidate estimations)\n",
		p.Cost.TotalTime(), p.PlansCosted)
	b.WriteString(m.Estimator.Explain(p.Plan, p.Cost))
	return b.String(), nil
}

// ExplainAnalyze prepares, executes and renders a query's plan tree with
// each node annotated `est=… act=… q=…` — the estimator's predicted
// cardinality and subtree time against the measured actuals, with their
// q-errors. Operators below a submit execute opaquely inside the wrapper
// and show estimates only; an excluded submit (unavailable wrapper) is
// marked. With feedback enabled the execution is absorbed into the model
// like any other query.
func (m *Mediator) ExplainAnalyze(sql string) (string, error) {
	// Per-node predictions for the whole tree, regardless of the search
	// options in effect.
	savedCapture := m.Optimizer.Opt.CapturePlanCosts
	m.Optimizer.Opt.CapturePlanCosts = true
	defer func() { m.Optimizer.Opt.CapturePlanCosts = savedCapture }()
	p, err := m.Prepare(sql)
	if err != nil {
		return "", err
	}
	res, err := m.ExecutePlan(p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n", sql)
	fmt.Fprintf(&b, "-- estimated TotalTime: %.3f ms, actual: %.3f ms (q=%.2f), %d rows",
		p.Cost.TotalTime(), res.ElapsedMS,
		feedback.QError(p.Cost.TotalTime(), res.ElapsedMS, 0.01), len(res.Rows))
	if res.Partial {
		fmt.Fprintf(&b, " [PARTIAL: excluded %s]", strings.Join(res.Excluded, ", "))
	}
	b.WriteByte('\n')
	renderAnalyze(&b, p.Plan, 0, p.Cost, res.Profile)
	return b.String(), nil
}

// renderAnalyze prints one node of the annotated plan tree and recurses.
func renderAnalyze(b *strings.Builder, n *algebra.Node, depth int, pc *core.PlanCost, prof *feedback.Profile) {
	indent := strings.Repeat("  ", depth)
	head := strings.TrimSpace(strings.SplitN(n.String(), "\n", 2)[0])
	fmt.Fprintf(b, "%s%s", indent, head)
	est, okE := pc.ByNode[n]
	act, okA := prof.Actual(n)
	switch {
	case okE && okA && act.Excluded:
		fmt.Fprintf(b, "  est=%.4g rows %.4g ms  act: EXCLUDED (wrapper %s unavailable)",
			est.Var("CountObject", 0), est.TotalTime(), act.Wrapper)
	case okE && okA:
		fmt.Fprintf(b, "  est=%.4g act=%d q=%.2f rows | est=%.4g act=%.4g q=%.2f ms",
			est.Var("CountObject", 0), act.RowsOut,
			feedback.QError(est.Var("CountObject", 0), float64(act.RowsOut), 1),
			est.TotalTime(), act.SubtreeMS,
			feedback.QError(est.TotalTime(), act.SubtreeMS, 0.01))
		if n.Kind == algebra.OpSubmit {
			fmt.Fprintf(b, " | %d round-trip(s) %d B", act.RoundTrips, act.Bytes)
		}
	case okE:
		fmt.Fprintf(b, "  est=%.4g rows %.4g ms (wrapper-resident: no actuals)",
			est.Var("CountObject", 0), est.TotalTime())
	case okA:
		fmt.Fprintf(b, "  act=%d rows %.4g ms", act.RowsOut, act.SubtreeMS)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderAnalyze(b, c, depth+1, pc, prof)
	}
}

// FeedbackSummary renders the execution-feedback state: the per-scope
// q-error table, the learned extent corrections and the re-fitted cost
// coefficients. It errors when feedback is disabled.
func (m *Mediator) FeedbackSummary() (string, error) {
	if m.Feedback == nil || m.Adjuster == nil {
		return "", fmt.Errorf("mediator: feedback is disabled (Config.Feedback)")
	}
	var b strings.Builder
	b.WriteString(m.Feedback.Summary())
	if corr := m.Adjuster.Corrections(); len(corr) > 0 {
		b.WriteString("\nextent corrections:\n")
		for _, c := range corr {
			fmt.Fprintf(&b, "  %s/%s: claimed %d x %.4g (%d samples)\n",
				c.Wrapper, c.Collection, c.Base, c.Factor, c.Samples)
		}
	}
	if coeffs := m.Adjuster.FittedCoeffs(m.Estimator.Globals); len(coeffs) > 0 {
		b.WriteString("\nre-fitted coefficients:\n")
		names := make([]string, 0, len(coeffs))
		for n := range coeffs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %s = %.6g\n", n, coeffs[n])
		}
	}
	return b.String(), nil
}

// bind resolves a parsed query against the catalog into an optimizer
// query block (the paper's step "transforms the query, written with
// respect to a global view, into a query over local schemas").
func (m *Mediator) bind(q *sqlparser.Query) (*optimizer.QueryBlock, error) {
	rels := make([]optimizer.Rel, 0, len(q.From))
	for _, tr := range q.From {
		wrapperName := tr.Wrapper
		if wrapperName == "" {
			owners := m.Catalog.FindCollection(tr.Collection)
			// Prefer surviving owners: a replica at a live wrapper
			// disambiguates away the dead ones. Only when no owner is
			// alive does the unfiltered list apply (the engine will then
			// return a partial answer with the dead wrapper excluded).
			if alive := availableOwners(owners, m.unavailable); len(alive) > 0 {
				owners = alive
			}
			switch len(owners) {
			case 0:
				return nil, fmt.Errorf("mediator: unknown collection %q", tr.Collection)
			case 1:
				wrapperName = owners[0]
			default:
				return nil, fmt.Errorf("mediator: collection %q exists at several wrappers (%s); pin one with %s@wrapper",
					tr.Collection, strings.Join(owners, ", "), tr.Collection)
			}
		} else if !m.Catalog.HasCollection(wrapperName, tr.Collection) {
			return nil, fmt.Errorf("mediator: unknown collection %s@%s", tr.Collection, wrapperName)
		}
		rels = append(rels, optimizer.Rel{Wrapper: wrapperName, Collection: tr.Collection})
	}

	rels, joins, err := optimizer.SplitPredicate(m.Catalog, rels, q.Where)
	if err != nil {
		return nil, err
	}
	block := &optimizer.QueryBlock{
		Relations: rels,
		JoinPreds: joins,
		Distinct:  q.Distinct,
		Sort:      q.OrderBy,
	}

	// Select list: aggregates switch the block into grouping mode.
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		block.GroupBy = q.GroupBy
		for _, it := range q.Items {
			switch {
			case it.Agg != nil:
				block.Aggs = append(block.Aggs, *it.Agg)
			case it.Star:
				return nil, fmt.Errorf("mediator: cannot mix * with aggregates")
			default:
				if !inGroupBy(q.GroupBy, it.Ref) {
					return nil, fmt.Errorf("mediator: %s must appear in GROUP BY", it.Ref)
				}
			}
		}
	} else {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("mediator: GROUP BY without aggregates")
		}
		star := false
		var cols []string
		for _, it := range q.Items {
			if it.Star {
				star = true
				continue
			}
			cols = append(cols, it.Ref.String())
		}
		if star && len(cols) > 0 {
			return nil, fmt.Errorf("mediator: cannot mix * with named columns")
		}
		if !star {
			block.Projection = cols
		}
	}
	return block, nil
}

// availableOwners filters a FindCollection result down to live wrappers.
func availableOwners(owners []string, unavailable map[string]bool) []string {
	if len(unavailable) == 0 {
		return owners
	}
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if !unavailable[o] {
			out = append(out, o)
		}
	}
	return out
}

func inGroupBy(groupBy []algebra.Ref, r algebra.Ref) bool {
	for _, g := range groupBy {
		if strings.EqualFold(g.Attr, r.Attr) &&
			(g.Collection == "" || r.Collection == "" || strings.EqualFold(g.Collection, r.Collection)) {
			return true
		}
	}
	return false
}
