package mediator

import (
	"fmt"
	"sync"
	"testing"

	"disco/internal/resultcache"
	"disco/internal/types"
)

func resultCacheConfig() Config {
	cfg := DefaultConfig()
	cfg.ResultCache = resultcache.Config{Enabled: true}
	return cfg
}

func rowsKey(rows []types.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out[i] = s
	}
	// Queries here are deterministic single plans: row order is stable,
	// so a positional join is a fair comparison.
	key := ""
	for _, s := range out {
		key += s + "\n"
	}
	return key
}

func TestResultCacheServesRepeatedQuery(t *testing.T) {
	m := buildMediator(t, resultCacheConfig())
	const sql = `SELECT name, salary FROM Employee WHERE id < 25`

	first, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(first.Rows))
	}
	second, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(second.Rows) != rowsKey(first.Rows) {
		t.Error("cache-served answer differs from the executed answer")
	}
	if second.Partial {
		t.Error("cache-served answer marked Partial")
	}
	// A whole-plan hit is charged the near-zero ScopeCache time, far
	// below a real execution over the simulated network.
	if second.ElapsedMS >= first.ElapsedMS {
		t.Errorf("hit elapsed %.4f ms, miss elapsed %.4f ms — hit should be cheaper",
			second.ElapsedMS, first.ElapsedMS)
	}
	st := m.Stats()
	if st.ResultCacheHits == 0 {
		t.Error("no result-cache hits recorded")
	}
	if st.ResultCacheEntries == 0 || st.ResultCacheBytes <= 0 {
		t.Errorf("entries = %d bytes = %d, want populated cache",
			st.ResultCacheEntries, st.ResultCacheBytes)
	}
}

// TestResultCacheDisabledBitIdentical pins the off-by-default discipline:
// with the zero-value config the result cache does not exist — every
// counter stays zero, repeated executions cost identical virtual time
// (nothing is served from memory), and the chosen plan matches what an
// enabled-but-empty cache mediator picks (an empty cache contributes no
// ScopeCache candidates).
func TestResultCacheDisabledBitIdentical(t *testing.T) {
	queries := []string{
		`SELECT name, salary FROM Employee WHERE id < 25`,
		`SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`,
		`SELECT name FROM Employee WHERE dept = 3`,
	}
	off := buildMediator(t, DefaultConfig())
	on := buildMediator(t, resultCacheConfig())

	for _, sql := range queries {
		pOff, err := off.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		pOn, err := on.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		if pOff.Plan.Signature() != pOn.Plan.Signature() {
			t.Errorf("empty-cache plan differs for %q:\noff: %s\non:  %s",
				sql, pOff.Plan.Signature(), pOn.Plan.Signature())
		}

		r1, err := off.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := off.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(r1.Rows) != rowsKey(r2.Rows) {
			t.Errorf("disabled cache: repeated query %q changed its answer", sql)
		}
		// The repeat re-executes against the sources: its virtual time
		// stays orders of magnitude above the ScopeCache hit floor.
		// (Exact equality would overreach — source-side buffer pools warm
		// between runs, with or without this subsystem.)
		if r2.ElapsedMS < 100*resultcache.HitFloorMS {
			t.Errorf("disabled cache: repeat of %q took %.4f ms — served from memory?", sql, r2.ElapsedMS)
		}

		rOn, err := on.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(rOn.Rows) != rowsKey(r1.Rows) {
			t.Errorf("enabled cache changed the answer for %q", sql)
		}
	}

	st := off.Stats()
	if st.ResultCacheHits != 0 || st.ResultCacheMisses != 0 || st.ResultCacheEntries != 0 ||
		st.ResultCacheBytes != 0 || st.ResultCacheInvalidations != 0 {
		t.Errorf("disabled result cache leaked counters: %+v", st)
	}
}

func TestResultCacheInvalidatedByReregister(t *testing.T) {
	m := buildMediator(t, resultCacheConfig())
	const sql = `SELECT name FROM Employee WHERE id < 30`

	first, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ResultCacheHits == 0 {
		t.Fatal("warm-up queries never hit")
	}

	w, ok := m.Wrapper("obj1")
	if !ok {
		t.Fatal("obj1 not registered")
	}
	if err := m.Register(w); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ResultCacheInvalidations == 0 {
		t.Error("re-registration did not invalidate the result cache")
	}
	if st.ResultCacheEntries != 0 {
		t.Errorf("entries = %d after re-registration, want 0", st.ResultCacheEntries)
	}

	hitsBefore := st.ResultCacheHits
	again, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(again.Rows) != rowsKey(first.Rows) {
		t.Error("post-registration answer differs")
	}
	if got := m.Stats().ResultCacheHits; got != hitsBefore {
		t.Errorf("first query after invalidation hit the cache (hits %d -> %d)", hitsBefore, got)
	}
}

// TestResultCachePartialOutageGuard is the partial-answer leakage guard:
// a Result.Partial produced while a wrapper is down is never admitted to
// the result cache, a stale complete answer is never served during the
// outage, and recovery invalidates so the revived source is re-queried.
func TestResultCachePartialOutageGuard(t *testing.T) {
	m := buildMediator(t, resultCacheConfig())
	const sql = `SELECT name, salary FROM Employee WHERE id < 20`

	full, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || len(full.Rows) != 20 {
		t.Fatalf("warm-up: partial=%v rows=%d, want complete 20", full.Partial, len(full.Rows))
	}
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}

	// The outage: the cached complete answer must die with the source.
	m.Engine.MarkUnavailable("obj1")
	for i := 0; i < 2; i++ {
		res, err := m.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatalf("query %d during outage not Partial — a cached complete answer leaked", i)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("query %d during outage returned %d rows from a dead source", i, len(res.Rows))
		}
	}
	if st := m.Stats(); st.ResultCacheEntries != 0 {
		t.Errorf("outage admitted %d Partial entries to the cache", st.ResultCacheEntries)
	}

	// Recovery re-registers the wrapper; the first query must re-execute
	// against the revived source, not surface any pre-outage entry.
	w, _ := m.Wrapper("obj1")
	if err := m.Register(w); err != nil {
		t.Fatal(err)
	}
	recovered, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Partial || len(recovered.Rows) != 20 {
		t.Fatalf("after recovery: partial=%v rows=%d, want complete 20",
			recovered.Partial, len(recovered.Rows))
	}
	if rowsKey(recovered.Rows) != rowsKey(full.Rows) {
		t.Error("post-recovery answer differs from pre-outage answer")
	}
}

// TestResultCachePartialOutageGuardConcurrent races queries against
// outage/recovery flips. The invariant (checked under -race by
// ci-resultcache): every answer is either marked Partial or is the
// complete 20-row result — a Partial row set must never be served as a
// complete cached answer, in flight or after recovery.
func TestResultCachePartialOutageGuardConcurrent(t *testing.T) {
	m := buildMediator(t, resultCacheConfig())
	const sql = `SELECT name, salary FROM Employee WHERE id < 20`
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := m.Query(sql)
				if err != nil {
					errs <- err
					return
				}
				if !res.Partial && len(res.Rows) != 20 {
					errs <- fmt.Errorf("complete answer with %d rows, want 20", len(res.Rows))
					return
				}
				if res.Partial && len(res.Rows) != 0 {
					errs <- fmt.Errorf("partial answer carries %d rows from a dead source", len(res.Rows))
					return
				}
			}
		}()
	}

	w, _ := m.Wrapper("obj1")
	for i := 0; i < 10; i++ {
		m.Engine.MarkUnavailable("obj1")
		if err := m.Register(w); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced and recovered: the answer must be complete again.
	res, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Rows) != 20 {
		t.Fatalf("after final recovery: partial=%v rows=%d", res.Partial, len(res.Rows))
	}
}

// TestResultCacheFeedbackInteraction: cache-served executions carry no
// fresh wrapper timings, so the feedback loop must not absorb them —
// repeated hits leave the learned state exactly where the first real
// execution put it.
func TestResultCacheFeedbackInteraction(t *testing.T) {
	cfg := resultCacheConfig()
	cfg.Feedback = true
	m := buildMediator(t, cfg)
	const sql = `SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`

	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	observations := func() int64 {
		var n int64
		for _, s := range m.Feedback.Scopes() {
			n += s.Count
		}
		return n
	}
	absorbedAfterFirst := observations()
	for i := 0; i < 3; i++ {
		if _, err := m.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.ResultCacheHits == 0 {
		t.Fatal("repeats never hit the cache")
	}
	if got := observations(); got != absorbedAfterFirst {
		t.Errorf("feedback absorbed cache-served executions (%d -> %d observations)",
			absorbedAfterFirst, got)
	}
}
