package mediator

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the .golden files under testdata")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set. Explain output is deterministic: the stores,
// the optimizer search and the virtual clock all are.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (run with -update if intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name, sql string
	}{
		{"explain_point", `SELECT name FROM Employee WHERE id = 5`},
		{"explain_join", `SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`},
		{"explain_three_way", `SELECT name, dname, text FROM Employee, Dept, Notes WHERE dept = dno AND Employee.id = Notes.emp AND Employee.id < 100`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := buildMediator(t, DefaultConfig())
			out, err := m.Explain(c.sql)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, out)
		})
	}
}

func TestExplainAnalyzeGolden(t *testing.T) {
	cases := []struct {
		name, sql string
	}{
		{"analyze_point", `SELECT name FROM Employee WHERE id = 5`},
		{"analyze_join", `SELECT name, dname FROM Employee, Dept WHERE dept = dno AND salary < 1050`},
		{"analyze_agg", `SELECT dept, count(*) AS n FROM Employee GROUP BY dept ORDER BY dept`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Feedback stays off: the annotated actuals must not feed
			// back into the estimates, so reruns are reproducible.
			m := buildMediator(t, DefaultConfig())
			out, err := m.ExplainAnalyze(c.sql)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, out)
		})
	}
}

// The partial case: a query over a collection whose only owner is down
// still renders, with the dead submit marked EXCLUDED and the header
// carrying the PARTIAL tag.
func TestExplainAnalyzePartialGolden(t *testing.T) {
	m := buildMediator(t, DefaultConfig())
	m.Engine.MarkUnavailable("files")
	out, err := m.ExplainAnalyze(`SELECT text FROM Notes WHERE emp < 50`)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "analyze_partial", out)
}
