package mediator

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when admission control sheds a query: every
// in-flight slot stayed occupied for the whole queue timeout. Callers
// (discod) surface it distinctly so clients can back off and retry
// instead of treating it as a query failure.
var ErrOverloaded = errors.New("mediator: overloaded, query shed after admission timeout")

// admission is a counting semaphore bounding concurrently served
// queries. A nil *admission admits everything (Config.MaxInFlight 0).
type admission struct {
	slots   chan struct{}
	timeout time.Duration
	shed    atomic.Int64
}

// newAdmission builds a semaphore with max slots; max <= 0 disables
// admission control (returns nil). timeout > 0 bounds the queue wait,
// timeout == 0 waits indefinitely, timeout < 0 sheds immediately when
// saturated.
func newAdmission(max int, timeout time.Duration) *admission {
	if max <= 0 {
		return nil
	}
	return &admission{slots: make(chan struct{}, max), timeout: timeout}
}

// acquire claims a slot or returns ErrOverloaded after the queue
// timeout. The caller must release() the slot on every acquired path.
func (a *admission) acquire() error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.timeout < 0 {
		a.shed.Add(1)
		return ErrOverloaded
	}
	if a.timeout == 0 {
		a.slots <- struct{}{}
		return nil
	}
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		a.shed.Add(1)
		return ErrOverloaded
	}
}

// release frees a slot claimed by acquire.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.slots
}

// inFlight reports the number of currently admitted queries.
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

// shedCount reports how many queries were shed.
func (a *admission) shedCount() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}
