// Package relstore implements a heap-file relational engine with hash
// indexes — the second data-source class of the reproduction. Its cost
// behaviour differs from the object store on purpose: faster page I/O,
// equality-only (hash) indexes, no range index scans. A mediator relying
// on one generic cost model mispredicts one of the two source classes;
// blending per-wrapper rules fixes that (the paper's central claim).
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/netsim"
	"disco/internal/stats"
	"disco/internal/types"
)

// Config holds the physical and timing parameters.
type Config struct {
	PageSize     int
	BufferPages  int
	IOTimeMS     float64 // per page fetch
	CPUTimeMS    float64 // per tuple examined
	HashProbeMS  float64 // per hash-index probe
	OutputTimeMS float64 // per tuple delivered
}

// DefaultConfig returns a profile distinctly cheaper per page than the
// object store (a cached relational server).
func DefaultConfig() Config {
	return Config{
		PageSize:     8192,
		BufferPages:  512,
		IOTimeMS:     8,
		CPUTimeMS:    0.005,
		HashProbeMS:  0.01,
		OutputTimeMS: 1.5,
	}
}

// Store is a set of tables sharing a clock and timing profile.
type Store struct {
	cfg    Config
	clock  *netsim.Clock
	tables map[string]*Table
	// Buffer accounting is per-store, approximated per table page set.
	// cacheMu makes the accounting safe under concurrent scans — the
	// mediator executes many queries at once against one store.
	cacheMu sync.Mutex
	cached  map[string]map[int]struct{}
}

// Open creates a store on the clock (nil allocates one).
func Open(cfg Config, clock *netsim.Clock) *Store {
	if clock == nil {
		clock = netsim.NewClock()
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 8192
	}
	return &Store{cfg: cfg, clock: clock, tables: make(map[string]*Table),
		cached: make(map[string]map[int]struct{})}
}

// Clock returns the store's virtual clock.
func (s *Store) Clock() *netsim.Clock { return s.clock }

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// ResetBuffer drops all cached pages (cold-start measurements).
func (s *Store) ResetBuffer() {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.cached = make(map[string]map[int]struct{})
}

// Tables lists table names, sorted.
func (s *Store) Tables() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table returns a table by name.
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Table is one heap file with optional hash indexes.
type Table struct {
	store    *Store
	name     string
	schema   *types.Schema
	rows     []types.Row
	rowSize  int
	perPage  int
	hashIdx  map[string]map[string][]int // attr -> key -> row positions
	idxAttrs map[string]int              // attr -> field position
}

// CreateTable adds an empty table; rowSize 0 derives a default from the
// schema.
func (s *Store) CreateTable(name string, schema *types.Schema, rowSize int) (*Table, error) {
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("relstore: table %q needs a schema", name)
	}
	if rowSize <= 0 {
		rowSize = 0
		for i := 0; i < schema.Len(); i++ {
			if schema.Field(i).Type == types.KindString {
				rowSize += 32
			} else {
				rowSize += 8
			}
		}
	}
	perPage := s.cfg.PageSize / rowSize
	if perPage < 1 {
		perPage = 1
	}
	t := &Table{store: s, name: name, schema: schema, rowSize: rowSize, perPage: perPage,
		hashIdx: make(map[string]map[string][]int), idxAttrs: make(map[string]int)}
	s.tables[name] = t
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the row schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Count reports the number of rows.
func (t *Table) Count() int { return len(t.rows) }

// PageCount reports how many heap pages the table occupies.
func (t *Table) PageCount() int { return (len(t.rows) + t.perPage - 1) / t.perPage }

// RowSize reports the declared bytes per row.
func (t *Table) RowSize() int { return t.rowSize }

// Insert appends a row (bulk load; no clock cost).
func (t *Table) Insert(row types.Row) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("relstore: %s: row arity %d, schema %d", t.name, len(row), t.schema.Len())
	}
	pos := len(t.rows)
	t.rows = append(t.rows, row)
	for attr, fi := range t.idxAttrs {
		key := t.rows[pos][fi].Kind().String() + ":" + t.rows[pos][fi].String()
		t.hashIdx[attr][key] = append(t.hashIdx[attr][key], pos)
	}
	return nil
}

// CreateHashIndex builds an equality index on the attribute.
func (t *Table) CreateHashIndex(attr string) error {
	fi, ok := t.schema.Lookup(attr)
	if !ok {
		return fmt.Errorf("relstore: %s has no attribute %q", t.name, attr)
	}
	key := strings.ToLower(attr)
	if _, dup := t.hashIdx[key]; dup {
		return fmt.Errorf("relstore: %s already has an index on %q", t.name, attr)
	}
	m := make(map[string][]int)
	for pos, row := range t.rows {
		k := row[fi].Kind().String() + ":" + row[fi].String()
		m[k] = append(m[k], pos)
	}
	t.hashIdx[key] = m
	t.idxAttrs[key] = fi
	return nil
}

// HasIndex reports whether attr has a hash index.
func (t *Table) HasIndex(attr string) bool {
	_, ok := t.hashIdx[strings.ToLower(attr)]
	return ok
}

// touchPage charges a page fetch unless cached.
func (t *Table) touchPage(pageNo int) {
	t.store.cacheMu.Lock()
	pages := t.store.cached[t.name]
	if pages == nil {
		pages = make(map[int]struct{})
		t.store.cached[t.name] = pages
	}
	if _, hit := pages[pageNo]; hit {
		t.store.cacheMu.Unlock()
		return
	}
	// Evict-free approximation: the relational server's cache is large;
	// capacity pressure is modelled only across ResetBuffer boundaries.
	if len(pages) < t.store.cfg.BufferPages {
		pages[pageNo] = struct{}{}
	}
	t.store.cacheMu.Unlock()
	t.store.clock.Advance(t.store.cfg.IOTimeMS)
}

// Iter is a sequential or probe iterator over the table.
type Iter struct {
	table *Table
	pos   []int // explicit positions (probe); nil = sequential
	i     int
}

// Scan starts a full table scan.
func (t *Table) Scan() *Iter { return &Iter{table: t} }

// Probe starts a hash-index probe for attr = value; it fails when no hash
// index exists (hash indexes serve equality only).
func (t *Table) Probe(attr string, op stats.CmpOp, value types.Constant) (*Iter, error) {
	if op != stats.CmpEQ {
		return nil, fmt.Errorf("relstore: hash index on %q serves equality only", attr)
	}
	idx, ok := t.hashIdx[strings.ToLower(attr)]
	if !ok {
		return nil, fmt.Errorf("relstore: %s has no index on %q", t.name, attr)
	}
	t.store.clock.Advance(t.store.cfg.HashProbeMS)
	key := value.Kind().String() + ":" + value.String()
	positions := idx[key]
	if positions == nil {
		positions = []int{}
	}
	return &Iter{table: t, pos: positions}, nil
}

// Next returns the next row.
func (it *Iter) Next() (types.Row, bool) {
	t := it.table
	if it.pos != nil {
		if it.i >= len(it.pos) {
			return nil, false
		}
		p := it.pos[it.i]
		it.i++
		t.touchPage(p / t.perPage)
		t.store.clock.Advance(t.store.cfg.CPUTimeMS)
		return t.rows[p], true
	}
	if it.i >= len(t.rows) {
		return nil, false
	}
	if it.i%t.perPage == 0 {
		t.touchPage(it.i / t.perPage)
	}
	row := t.rows[it.i]
	it.i++
	t.store.clock.Advance(t.store.cfg.CPUTimeMS)
	return row, true
}

// DeliverOutput charges per-tuple delivery for n result rows.
func (s *Store) DeliverOutput(n int) {
	s.clock.Advance(float64(n) * s.cfg.OutputTimeMS)
}

// ExtentStats exports the table's extent statistics.
func (t *Table) ExtentStats() stats.ExtentStats {
	return stats.ExtentStats{
		CountObject: int64(len(t.rows)),
		TotalSize:   int64(t.PageCount() * t.store.cfg.PageSize),
		ObjectSize:  int64(t.rowSize),
	}
}

// AttributeStats exports statistics for one attribute; buckets > 0 adds an
// equi-depth histogram over numeric values.
func (t *Table) AttributeStats(attr string, buckets int) (stats.AttributeStats, error) {
	fi, ok := t.schema.Lookup(attr)
	if !ok {
		return stats.AttributeStats{}, fmt.Errorf("relstore: %s has no attribute %q", t.name, attr)
	}
	out := stats.AttributeStats{Indexed: t.HasIndex(attr)}
	distinct := make(map[string]struct{})
	var values []types.Constant
	for i, row := range t.rows {
		v := row[fi]
		distinct[v.Kind().String()+":"+v.String()] = struct{}{}
		if i == 0 || v.Less(out.Min) {
			out.Min = v
		}
		if i == 0 || out.Max.Less(v) {
			out.Max = v
		}
		if buckets > 0 && v.IsNumeric() {
			values = append(values, v)
		}
	}
	out.CountDistinct = int64(len(distinct))
	if buckets > 0 && len(values) > 0 {
		out.Histogram = stats.NewEquiDepth(values, buckets)
	}
	return out, nil
}
